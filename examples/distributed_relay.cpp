// A distributed feed delivery network (paper §3): Bistro servers acting
// as subscribers of other Bistro servers.
//
// Topology: sources -> headquarters server -> regional relay server ->
// two local subscribers, over a simulated WAN where the HQ-to-region
// link is slow. The relay pattern means the big transfer crosses the
// slow pipe once, not once per subscriber.
//
//   ./build/examples/distributed_relay

#include <cstdio>

#include "common/strings.h"
#include "config/parser.h"
#include "core/server.h"
#include "sim/sources.h"
#include "vfs/memfs.h"

using namespace bistro;

int main() {
  TimePoint start = FromCivil(CivilTime{2011, 6, 12});
  SimClock clock(start);
  EventLoop loop(&clock);
  InMemoryFileSystem fs;
  Rng rng(5);
  SimNetwork network(&rng);
  SimTransport transport(&loop, &network);
  CallbackInvoker invoker;
  Logger logger(&clock);
  logger.SetMinLevel(LogLevel::kError);
  logger.AddSink(std::make_shared<StderrSink>());

  // Slow WAN pipe to the region; fast LAN links inside the region.
  LinkSpec wan;
  wan.bandwidth_bytes_per_sec = 200 * 1000;  // 1.6 Mbit/s
  wan.latency = 80 * kMillisecond;
  network.SetLink("regional_relay", wan);
  network.SetLink("analyst_a", LinkSpec::Fast());
  network.SetLink("analyst_b", LinkSpec::Fast());

  // Headquarters server: receives source feeds, relays SNMP to region.
  auto hq_config = ParseConfig(R"(
feed SNMP_CPU { pattern "CPU_POLL%i_%Y%m%d%H%M.txt"; }
subscriber regional_relay { feeds SNMP_CPU; method push; }
)");
  BistroServer::Options hq_opts;
  hq_opts.landing_root = "/hq/landing";
  hq_opts.staging_root = "/hq/staging";
  hq_opts.db_dir = "/hq/db";
  auto hq = BistroServer::Create(hq_opts, *hq_config, &fs, &transport, &loop,
                                 &invoker, &logger);
  if (!hq.ok()) {
    std::fprintf(stderr, "%s\n", hq.status().ToString().c_str());
    return 1;
  }

  // Regional relay: a full Bistro server subscribed upstream; its own
  // subscribers sit on the regional LAN.
  auto relay_config = ParseConfig(R"(
feed SNMP_CPU { pattern "CPU_POLL%i_%Y%m%d%H%M.txt"; }
subscriber analyst_a { feeds SNMP_CPU; method push; }
subscriber analyst_b { feeds SNMP_CPU; method push; }
)");
  BistroServer::Options relay_opts;
  relay_opts.landing_root = "/region/landing";
  relay_opts.staging_root = "/region/staging";
  relay_opts.db_dir = "/region/db";
  auto relay = BistroServer::Create(relay_opts, *relay_config, &fs, &transport,
                                    &loop, &invoker, &logger);
  if (!relay.ok()) {
    std::fprintf(stderr, "%s\n", relay.status().ToString().c_str());
    return 1;
  }
  transport.Register("regional_relay", relay->get());

  FileSinkEndpoint analyst_a(&fs, "/analyst_a");
  FileSinkEndpoint analyst_b(&fs, "/analyst_b");
  transport.Register("analyst_a", &analyst_a);
  transport.Register("analyst_b", &analyst_b);

  // Sources feed HQ for two hours.
  PollerFleet::Options fleet_opts;
  fleet_opts.metric = "CPU";
  fleet_opts.num_pollers = 3;
  fleet_opts.period = 5 * kMinute;
  fleet_opts.file_size = 50 * 1000;
  PollerFleet fleet(&loop, &rng, fleet_opts,
                    [&](const std::string& source, const std::string& name,
                        std::string content) {
                      Status s = (*hq)->Deposit(source, name, std::move(content));
                      if (!s.ok()) {
                        std::fprintf(stderr, "deposit: %s\n",
                                     s.ToString().c_str());
                      }
                    });
  fleet.ScheduleInterval(start, start + 2 * kHour);

  loop.RunUntil(start + 2 * kHour + 10 * kMinute);
  loop.RunUntilIdle();

  std::printf("=== distributed relay, two simulated hours ===\n");
  std::printf("HQ ingested %llu files, pushed %llu over the slow WAN link\n",
              (unsigned long long)(*hq)->stats().files_received,
              (unsigned long long)(*hq)->delivery_stats().files_delivered);
  std::printf("relay ingested %llu files, fanned out %llu on the LAN\n",
              (unsigned long long)(*relay)->stats().files_received,
              (unsigned long long)(*relay)->delivery_stats().files_delivered);
  std::printf("analyst_a received %llu, analyst_b received %llu\n",
              (unsigned long long)analyst_a.files_received(),
              (unsigned long long)analyst_b.files_received());
  std::printf("WAN bytes: %s (once), LAN bytes: %s + %s\n",
              HumanBytes(network.BytesSent("regional_relay")).c_str(),
              HumanBytes(network.BytesSent("analyst_a")).c_str(),
              HumanBytes(network.BytesSent("analyst_b")).c_str());
  std::printf("late deliveries at HQ: %llu of %llu\n",
              (unsigned long long)(*hq)->scheduler_metrics().late,
              (unsigned long long)(*hq)->scheduler_metrics().completed);
  return 0;
}

// The paper's introduction scenario: a shipping company's feeds.
//
// Four source feeds — package drop-off logs, barcode scans, truck GPS
// readings, and delivery signatures — flow into one Bistro server.
// Three analyst groups subscribe: Atlanta marketing (drop-offs only),
// Dallas operations (scans + GPS), and the corporate warehouse (all
// feeds, batch-triggered loads). The GPS source's handheld uplink drops
// offline mid-run and is backfilled automatically when it returns.
//
//   ./build/examples/shipping_company

#include <cstdio>

#include "common/strings.h"
#include "config/parser.h"
#include "core/server.h"
#include "vfs/memfs.h"

using namespace bistro;

int main() {
  TimePoint start = FromCivil(CivilTime{2011, 6, 12, 8, 0, 0});
  SimClock clock(start);
  EventLoop loop(&clock);
  InMemoryFileSystem fs;
  LoopbackTransport transport(&loop);
  CallbackInvoker invoker;
  Logger logger(&clock);
  logger.SetMinLevel(LogLevel::kInfo);
  logger.AddSink(std::make_shared<StderrSink>());
  Rng rng(7);

  auto config = ParseConfig(R"(
group SHIPPING {
  feed DROPOFF   { pattern "dropoff_center%i_%Y%m%d%H%M.log"; }
  feed BARCODE   { pattern "scan_%s_%Y%m%d%H%M.csv"; compress lz; }
  feed GPS       { pattern "gps_truck%i_%Y%m%d%H%M.nmea"; tardiness 30s; }
  feed SIGNATURE { pattern "sig_%s_%Y%m%d.dat"; }
}
subscriber atlanta_marketing {
  feeds SHIPPING.DROPOFF;
  method push;
}
subscriber dallas_operations {
  feeds SHIPPING.BARCODE, SHIPPING.GPS;
  method push;
  trigger file exec "realtime_alert";
}
subscriber corporate_warehouse {
  feeds SHIPPING;
  method push;
  trigger batch count 6 timeout 10m exec "warehouse_load";
  window 1d;
}
)");
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }

  FileSinkEndpoint atlanta(&fs, "/atlanta");
  FileSinkEndpoint dallas(&fs, "/dallas");
  FileSinkEndpoint corporate(&fs, "/corporate");
  transport.Register("atlanta_marketing", &atlanta);
  transport.Register("dallas_operations", &dallas);
  transport.Register("corporate_warehouse", &corporate);

  uint64_t alerts = 0, loads = 0;
  invoker.Register("realtime_alert", [&](const BatchEvent&) {
    ++alerts;
    return Status::OK();
  });
  invoker.Register("warehouse_load", [&](const BatchEvent&) {
    ++loads;
    return Status::OK();
  });

  auto server = BistroServer::Create(BistroServer::Options(), *config, &fs,
                                     &transport, &loop, &invoker, &logger);
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
    return 1;
  }

  // Generate a business day of feed files every 10 minutes.
  auto deposit = [&](std::string name, std::string payload) {
    Status s = (*server)->Deposit("operations", name, std::move(payload));
    if (!s.ok()) std::fprintf(stderr, "deposit: %s\n", s.ToString().c_str());
  };
  const Duration kPeriod = 10 * kMinute;
  const int kIntervals = 6 * 6;  // six hours
  for (int i = 0; i < kIntervals; ++i) {
    TimePoint t = start + i * kPeriod;
    CivilTime c = ToCivil(t);
    loop.PostAt(t, [&, c, i] {
      std::string stamp = StrFormat("%04d%02d%02d%02d%02d", c.year, c.month,
                                    c.day, c.hour, c.minute);
      deposit(StrFormat("dropoff_center%d_%s.log", 1 + i % 3, stamp.c_str()),
              "pkg,drop\n");
      deposit(StrFormat("scan_hub%c_%s.csv", 'a' + i % 2, stamp.c_str()),
              std::string(500, 's'));
      deposit(StrFormat("gps_truck%d_%s.nmea", 10 + i % 5, stamp.c_str()),
              "$GPGGA,...\n");
      if (c.minute == 0) {
        deposit(StrFormat("sig_batch%d_%04d%02d%02d.dat", i, c.year, c.month,
                          c.day),
                "signature-blob");
      }
    });
  }

  // The Dallas uplink fails two hours in and recovers an hour later.
  loop.PostAt(start + 2 * kHour, [&] {
    std::fprintf(stderr, "--- dallas uplink goes down ---\n");
    dallas.SetFailing(true);
  });
  loop.PostAt(start + 3 * kHour, [&] {
    std::fprintf(stderr, "--- dallas uplink restored ---\n");
    dallas.SetFailing(false);
  });

  loop.RunUntil(start + 7 * kHour);
  (*server)->delivery()->FlushBatches();
  loop.RunUntilIdle();

  const ServerStats& stats = (*server)->stats();
  const DeliveryStats& d = (*server)->delivery_stats();
  std::printf("=== shipping company, six business hours ===\n");
  std::printf("files received %llu, classified %llu\n",
              (unsigned long long)stats.files_received,
              (unsigned long long)stats.files_classified);
  std::printf("atlanta received   %llu files (drop-offs only)\n",
              (unsigned long long)atlanta.files_received());
  std::printf("dallas received    %llu files (scans+gps; offline 1h, "
              "backfilled %llu)\n",
              (unsigned long long)dallas.files_received(),
              (unsigned long long)d.backfilled);
  std::printf("corporate received %llu files (everything)\n",
              (unsigned long long)corporate.files_received());
  std::printf("real-time alerts: %llu, warehouse loads: %llu\n",
              (unsigned long long)alerts, (unsigned long long)loads);
  std::printf("offline episodes detected: %llu, retries: %llu\n",
              (unsigned long long)d.offline_transitions,
              (unsigned long long)d.retries);
  return 0;
}

// The paper's running example at scale: an SNMP measurement pipeline.
//
// Simulates a fleet of SNMP pollers producing CPU / MEMORY / BPS
// statistics every 5 minutes (with dropouts and late files), a Bistro
// server classifying and delivering them, and two subscribers: a
// streaming warehouse with combined count+time batch triggers and a
// real-time dashboard using per-file notifications. Runs four hours of
// simulated feed traffic deterministically, then prints a report.
//
//   ./build/examples/snmp_pipeline

#include <cstdio>

#include "common/strings.h"
#include "config/parser.h"
#include "core/server.h"
#include "sim/sources.h"
#include "warehouse/warehouse.h"
#include "vfs/memfs.h"

using namespace bistro;

int main() {
  TimePoint start = FromCivil(CivilTime{2010, 9, 25, 0, 0, 0});
  SimClock clock(start);
  EventLoop loop(&clock);
  InMemoryFileSystem fs;
  LoopbackTransport transport(&loop);
  CallbackInvoker invoker;
  Logger logger(&clock);
  logger.SetMinLevel(LogLevel::kWarning);
  logger.AddSink(std::make_shared<StderrSink>());
  Rng rng(2011);

  auto config = ParseConfig(R"(
group SNMP {
  feed CPU    { pattern "CPU_POLL%i_%Y%m%d%H%M.txt";    tardiness 60s; }
  feed MEMORY { pattern "MEMORY_POLL%i_%Y%m%d%H%M.txt"; tardiness 60s; compress lz; }
  feed BPS    { pattern "BPS_POLL%i_%Y%m%d%H%M.txt";    tardiness 30s; }
}
subscriber warehouse {
  feeds SNMP;
  method push;
  trigger batch count 4 timeout 2m exec "update_partitions";
}
subscriber dashboard {
  feeds SNMP.CPU, SNMP.BPS;
  method notify;
}
)");
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }

  // The warehouse subscriber is a real (miniature) streaming data
  // warehouse: 5-minute partitions recomputed when its batch trigger
  // fires — the paper's motivating application (§2.3).
  StreamWarehouse warehouse(5 * kMinute);
  FileSinkEndpoint dashboard(&fs, "/dashboard");
  transport.Register("warehouse", &warehouse);
  transport.Register("dashboard", &dashboard);

  invoker.Register("update_partitions", [&](const BatchEvent& batch) {
    (void)batch;
    warehouse.RecomputeDirty();
    return Status::OK();
  });

  auto server = BistroServer::Create(BistroServer::Options(), *config, &fs,
                                     &transport, &loop, &invoker, &logger);
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
    return 1;
  }
  (*server)->StartMaintenanceTimer();

  // Three poller fleets, one per statistic. 4 pollers each, 5-minute
  // intervals, 2% dropout, occasional late files.
  auto deposit = [&](const std::string& source, const std::string& name,
                     std::string content) {
    Status s = (*server)->Deposit(source, name, std::move(content));
    if (!s.ok()) std::fprintf(stderr, "deposit: %s\n", s.ToString().c_str());
  };
  std::vector<std::unique_ptr<PollerFleet>> fleets;
  for (const char* metric : {"CPU", "MEMORY", "BPS"}) {
    PollerFleet::Options opts;
    opts.metric = metric;
    opts.source = std::string(metric) + "_pollers";
    opts.num_pollers = 4;
    opts.period = 5 * kMinute;
    opts.dropout_prob = 0.02;
    opts.late_prob = 0.01;
    opts.max_delay = 20 * kSecond;
    opts.file_size = 2000;
    fleets.push_back(
        std::make_unique<PollerFleet>(&loop, &rng, opts, deposit));
  }
  const Duration kRun = 4 * kHour;
  for (auto& fleet : fleets) fleet->ScheduleInterval(start, start + kRun);

  loop.RunUntil(start + kRun + 10 * kMinute);
  (*server)->delivery()->FlushBatches();
  // Bounded drain: the periodic maintenance timer re-posts itself, so the
  // loop never reaches "idle" — run one more minute instead.
  loop.RunUntil(start + kRun + 11 * kMinute);

  // ---- Report ----
  const ServerStats& stats = (*server)->stats();
  const DeliveryStats& d = (*server)->delivery_stats();
  const SchedulerMetrics& sched = (*server)->scheduler_metrics();
  std::printf("=== SNMP pipeline: %s of simulated traffic ===\n",
              FormatDuration(kRun).c_str());
  std::printf("files received:      %llu (%s)\n",
              (unsigned long long)stats.files_received,
              HumanBytes(stats.bytes_received).c_str());
  std::printf("classified:          %llu   unmatched: %llu\n",
              (unsigned long long)stats.files_classified,
              (unsigned long long)stats.files_unmatched);
  std::printf("deliveries (push):   %llu   notifications: %llu\n",
              (unsigned long long)d.files_delivered,
              (unsigned long long)d.notifications_sent);
  std::printf("batches closed:      %llu   partition recomputations: %llu "
              "(%zu partitions)\n",
              (unsigned long long)d.batches_closed,
              (unsigned long long)warehouse.total_recomputes(),
              warehouse.partition_count());
  std::printf("late deliveries:     %llu / %llu (%.2f%%), max tardiness %s\n",
              (unsigned long long)sched.late,
              (unsigned long long)sched.completed,
              100.0 * sched.LateFraction(),
              FormatDuration(sched.max_tardiness).c_str());
  // One sample warehouse partition, proving rows flowed end to end.
  auto sample = warehouse.View(start + kHour);
  if (sample.ok()) {
    std::printf("sample warehouse partition %s: %llu rows from %llu files, "
                "%zu entities\n",
                FormatTime(sample->start).c_str(),
                (unsigned long long)sample->rows,
                (unsigned long long)sample->raw_files,
                sample->by_entity.size());
  }
  std::printf("\nper-feed progress (monitor; STALLED flags are expected —\n"
              "traffic stopped 11 minutes before this snapshot):\n");
  for (const auto& p : (*server)->monitor()->AllProgress()) {
    std::printf("  %-12s %5llu files  %9s  period ~%s%s\n", p.feed.c_str(),
                (unsigned long long)p.files, HumanBytes(p.bytes).c_str(),
                FormatDuration(p.est_period).c_str(),
                p.stalled ? "  [STALLED]" : "");
  }
  return 0;
}

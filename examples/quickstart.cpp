// Quickstart: the smallest useful Bistro deployment.
//
// Defines one feed and one subscriber in the Bistro configuration
// language, starts a server over the local filesystem in a temporary
// directory, deposits three files as a data source would, and shows the
// delivery results. Runs live under the real clock.
//
//   ./build/examples/quickstart

#include <cstdio>
#include <cstdlib>

#include "common/strings.h"
#include "config/parser.h"
#include "core/server.h"
#include "vfs/localfs.h"

using namespace bistro;

int main() {
  // 1. A workspace on the real filesystem.
  char tmpl[] = "/tmp/bistro_quickstart_XXXXXX";
  std::string root = mkdtemp(tmpl);
  std::printf("workspace: %s\n", root.c_str());

  // 2. Configuration: one CPU-measurement feed, one warehouse subscriber
  //    with a count-based batch trigger.
  std::string config_text = R"(
feed CPU {
  pattern "CPU_POLL%i_%Y%m%d%H%M.txt";
  normalize "%Y/%m/%d/CPU_POLL%i_%H%M.txt";
  tardiness 30s;
}
subscriber warehouse {
  feeds CPU;
  method push;
  trigger batch count 3 timeout 1m exec "load_partitions";
}
)";
  auto config = ParseConfig(config_text);
  if (!config.ok()) {
    std::fprintf(stderr, "config error: %s\n", config.status().ToString().c_str());
    return 1;
  }

  // 3. Wire the server: local filesystem, in-process transport, real time.
  LocalFileSystem fs;
  RealClock clock;
  EventLoop loop(&clock);
  LoopbackTransport transport(&loop);
  CallbackInvoker invoker;
  Logger logger(&clock);
  logger.AddSink(std::make_shared<StderrSink>());

  invoker.Register("load_partitions", [](const BatchEvent& batch) {
    std::printf(">>> trigger: load %zu files for interval %s into %s\n",
                batch.files.size(), FormatTime(batch.batch_time).c_str(),
                batch.subscriber.c_str());
    return Status::OK();
  });

  FileSinkEndpoint warehouse(&fs, path::Join(root, "warehouse"));
  transport.Register("warehouse", &warehouse);

  BistroServer::Options options;
  options.landing_root = path::Join(root, "landing");
  options.staging_root = path::Join(root, "staging");
  options.db_dir = path::Join(root, "db");
  auto server = BistroServer::Create(options, *config, &fs, &transport, &loop,
                                     &invoker, &logger);
  if (!server.ok()) {
    std::fprintf(stderr, "server error: %s\n", server.status().ToString().c_str());
    return 1;
  }

  // 4. A data source deposits three poller files (the cooperating-source
  //    protocol: deposit + notify in one call).
  for (int poller = 1; poller <= 3; ++poller) {
    std::string name = StrFormat("CPU_POLL%d_201009250400.txt", poller);
    std::string payload = StrFormat("router_a,cpu,%d\n", 40 + poller);
    Status s = (*server)->Deposit("poller_fleet", name, payload);
    if (!s.ok()) {
      std::fprintf(stderr, "deposit failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("deposited %s\n", name.c_str());
  }

  // 5. Drain the event loop: classification, staging, delivery, trigger.
  //    (Bounded drain: under a real clock the batcher's 1-minute timeout
  //    tick is queued in the future; the count trigger fires immediately.)
  loop.RunUntil(clock.Now() + 2 * kSecond);

  // 6. Inspect the results.
  const ServerStats& stats = (*server)->stats();
  const DeliveryStats& delivery = (*server)->delivery_stats();
  std::printf("\nclassified %llu / %llu files, delivered %llu, batches %llu\n",
              (unsigned long long)stats.files_classified,
              (unsigned long long)stats.files_received,
              (unsigned long long)delivery.files_delivered,
              (unsigned long long)delivery.batches_closed);
  auto delivered = fs.ListRecursive(path::Join(root, "warehouse"));
  if (delivered.ok()) {
    std::printf("warehouse now holds:\n");
    for (const auto& info : *delivered) {
      std::printf("  %s (%llu bytes)\n", info.path.c_str(),
                  (unsigned long long)info.size);
    }
  }
  std::printf("\n(cleanup: rm -rf %s)\n", root.c_str());
  return 0;
}

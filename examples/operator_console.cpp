// The operator's view: a running server with the analyzer daemon and the
// status report (paper §3.2: extensive logging, progress monitoring,
// alarms; §5: continuous analysis).
//
// One feed stalls mid-run (its poller dies) — the monitor raises an
// alarm; a new unknown subfeed appears — the analyzer daemon suggests a
// definition; a subscriber drops offline and recovers — the report shows
// both states. Everything an operator would see, in one run.
//
//   ./build/examples/operator_console

#include <cstdio>

#include "analyzer/daemon.h"
#include "common/strings.h"
#include "config/parser.h"
#include "core/admin.h"
#include "core/server.h"
#include "sim/sources.h"
#include "vfs/memfs.h"

using namespace bistro;

int main() {
  TimePoint start = FromCivil(CivilTime{2010, 9, 25, 6, 0, 0});
  SimClock clock(start);
  EventLoop loop(&clock);
  InMemoryFileSystem fs;
  LoopbackTransport transport(&loop);
  CallbackInvoker invoker;
  Logger logger(&clock);
  logger.SetMinLevel(LogLevel::kWarning);  // operators see WARN+ on stderr
  logger.AddSink(std::make_shared<StderrSink>());
  Rng rng(1);

  auto config = ParseConfig(R"(
group SNMP {
  feed CPU { pattern "CPU_POLL%i_%Y%m%d%H%M.txt"; }
  feed BPS { pattern "BPS_POLL%i_%Y%m%d%H%M.txt"; }
}
subscriber warehouse { feeds SNMP; method push; }
)");
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }
  FileSinkEndpoint warehouse(&fs, "/warehouse");
  transport.Register("warehouse", &warehouse);
  auto server = BistroServer::Create(BistroServer::Options(), *config, &fs,
                                     &transport, &loop, &invoker, &logger);
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
    return 1;
  }
  (*server)->StartMaintenanceTimer();

  AnalyzerDaemon::Options daemon_opts;
  daemon_opts.interval = 15 * kMinute;
  daemon_opts.analyzer.discovery.min_support = 3;
  AnalyzerDaemon daemon(server->get(), &loop, &logger, daemon_opts);
  daemon.Start();

  auto deposit = [&](const std::string& src, const std::string& name,
                     std::string content) {
    (void)(*server)->Deposit(src, name, std::move(content));
  };

  // CPU pollers run the whole time; BPS's poller dies after 40 minutes.
  PollerFleet::Options cpu_opts;
  cpu_opts.metric = "CPU";
  cpu_opts.num_pollers = 2;
  cpu_opts.period = 5 * kMinute;
  PollerFleet cpu(&loop, &rng, cpu_opts, deposit);
  cpu.ScheduleInterval(start, start + 2 * kHour);

  PollerFleet::Options bps_opts;
  bps_opts.metric = "BPS";
  bps_opts.num_pollers = 2;
  bps_opts.period = 5 * kMinute;
  PollerFleet bps(&loop, &rng, bps_opts, deposit);
  bps.ScheduleInterval(start, start + 40 * kMinute);  // then silence -> alarm

  // An undocumented subfeed starts appearing 30 minutes in.
  for (int i = 0; i < 8; ++i) {
    TimePoint t = start + 30 * kMinute + i * 10 * kMinute;
    CivilTime c = ToCivil(t);
    std::string name =
        StrFormat("LINKLOSS_POLL%d_%04d%02d%02d%02d%02d.csv", 1 + i % 2,
                  c.year, c.month, c.day, c.hour, c.minute);
    loop.PostAt(t, [&, name] { deposit("unknown_src", name, "loss=0.01"); });
  }

  // The warehouse link flaps for 10 minutes around t+70m.
  loop.PostAt(start + 70 * kMinute, [&] { warehouse.SetFailing(true); });
  loop.PostAt(start + 80 * kMinute, [&] { warehouse.SetFailing(false); });

  loop.RunUntil(start + 2 * kHour);

  std::printf("\n%s\n", RenderStatusReport(server->get()).c_str());

  std::printf("analyzer daemon after %zu passes:\n", daemon.passes());
  for (const auto& s : daemon.new_feed_suggestions()) {
    std::printf("  suggested new feed: %-40s (%zu files, period %s)\n",
                s.feed.pattern.c_str(), s.feed.file_count,
                FormatDuration(s.feed.est_period).c_str());
  }
  for (const auto& r : daemon.false_negatives()) {
    std::printf("  suspected false negatives for %s: %zu files like %s\n",
                r.feed.c_str(), r.files.size(), r.generalized.c_str());
  }
  if (daemon.new_feed_suggestions().empty() &&
      daemon.false_negatives().empty()) {
    std::printf("  (no findings)\n");
  }
  return 0;
}

// Feed analyzer walkthrough (paper §5): new-feed discovery, false
// negatives, and false positives — on the paper's own examples.
//
// 1. A mixed stream of unlabelled files is clustered into atomic feeds
//    and turned into ready-to-review feed definitions.
// 2. A source renames "poller" to "Poller"; the analyzer flags the
//    unmatched files as probable false negatives of the MEMORY feed.
// 3. A too-generic wildcard feed starts swallowing PPS files; the
//    analyzer flags the foreign subgroup as probable false positives.
//
//   ./build/examples/feed_discovery

#include <cstdio>

#include "analyzer/analyzer.h"
#include "analyzer/grouping.h"
#include "common/strings.h"
#include "config/parser.h"

using namespace bistro;

int main() {
  Logger logger;
  logger.SetMinLevel(LogLevel::kAlarm);  // keep stderr quiet; we print

  // ---------------------------------------------------------- discovery
  std::printf("=== 1. new feed discovery (the paper's Section 5.1 stream) ===\n");
  std::vector<FileObservation> stream;
  TimePoint start = FromCivil(CivilTime{2010, 9, 25, 4, 0, 0});
  for (int i = 0; i < 24; ++i) {
    TimePoint t = start + i * 5 * kMinute;
    CivilTime c = ToCivil(t);
    for (int p = 1; p <= 2; ++p) {
      stream.push_back(
          {StrFormat("MEMORY_POLLER%d_%04d%02d%02d%02d_%02d.csv.gz", p, c.year,
                     c.month, c.day, c.hour, c.minute),
           t});
      stream.push_back(
          {StrFormat("CPU_POLL%d_%04d%02d%02d%02d%02d.txt", p, c.year, c.month,
                     c.day, c.hour, c.minute),
           t});
    }
  }
  auto empty_config = ParseConfig("");
  auto empty_registry = FeedRegistry::Create(*empty_config);
  FeedAnalyzer discoverer(empty_registry->get(), &logger);
  auto suggestions = (*empty_registry)->feeds().empty()
                         ? discoverer.DiscoverNewFeeds(stream)
                         : std::vector<NewFeedSuggestion>{};
  for (const auto& s : suggestions) {
    std::printf("  discovered: %-40s  %zu files, every %s, ~%.0f files/interval\n",
                s.feed.pattern.c_str(), s.feed.file_count,
                FormatDuration(s.feed.est_period).c_str(),
                s.feed.files_per_interval);
    for (const auto& field : s.feed.fields) {
      if (field.type == InferredField::Type::kCategorical) {
        std::string domain;
        for (const auto& v : field.domain) {
          if (!domain.empty()) domain += ",";
          domain += v;
        }
        std::printf("      categorical field domain {%s}\n", domain.c_str());
      }
    }
  }
  std::printf("  suggested config for review:\n");
  ServerConfig suggested;
  for (const auto& s : suggestions) suggested.feeds.push_back(s.suggested_spec);
  std::printf("%s", FormatConfig(suggested).c_str());

  // ----------------------------------------------------- false negatives
  std::printf("\n=== 2. false negatives (Section 5.2: poller -> Poller) ===\n");
  auto config = ParseConfig(R"(
feed MEMORY { pattern "MEMORY_poller%i_%Y%m%d.gz"; }
feed TRAP   { pattern "TRAP__%Y%m%d_DCTAGN_klpi.txt"; }
)");
  auto registry = FeedRegistry::Create(*config);
  FeedAnalyzer analyzer(registry->get(), &logger);
  std::vector<FileObservation> unmatched = {
      {"MEMORY_Poller1_20100926.gz", 0},
      {"MEMORY_Poller2_20100926.gz", 0},
      {"MEMORY_Poller1_20100927.gz", 0},
      {"TRAP_2010030817_UVIPTV-PER-BAN-DSPS-IPTV_MOM-rcsntxsqlcv122_9234SEC_klpi.txt",
       0},
  };
  for (const auto& report : analyzer.DetectFalseNegatives(unmatched)) {
    std::printf("  %zu file(s) generalize to %s\n", report.files.size(),
                report.generalized.c_str());
    std::printf("    -> probably belong to feed %-8s (pattern %s), "
                "similarity %.2f\n",
                report.feed.c_str(), report.feed_pattern.c_str(),
                report.similarity);
  }
  std::printf("  (note: raw edit distance between the TRAP file and its "
              "pattern is %zu — useless as a signal, as the paper observes)\n",
              EditDistance("TRAP_2010030817_UVIPTV-PER-BAN-DSPS-IPTV_"
                           "MOM-rcsntxsqlcv122_9234SEC_klpi.txt",
                           "TRAP__%Y%m%d_DCTAGN_klpi.txt"));

  // ----------------------------------------------------- false positives
  std::printf("\n=== 3. false positives (Section 5.3: wildcard too broad) ===\n");
  auto wc_config = ParseConfig(R"(feed BPS { pattern "%s_%Y%m%d%H.csv"; })");
  auto wc_registry = FeedRegistry::Create(*wc_config);
  FeedAnalyzer wc_analyzer(wc_registry->get(), &logger);
  std::vector<FileObservation> matched;
  for (int i = 0; i < 48; ++i) {
    CivilTime c = ToCivil(start + i * kHour);
    matched.push_back({StrFormat("BPS_poller_%04d%02d%02d%02d.csv", c.year,
                                 c.month, c.day, c.hour),
                       0});
  }
  for (int i = 0; i < 4; ++i) {
    CivilTime c = ToCivil(start + i * kHour);
    matched.push_back({StrFormat("PPSx_%04d%02d%02d%02d.csv", c.year, c.month,
                                 c.day, c.hour),
                       0});
  }
  for (const auto& report : wc_analyzer.DetectFalsePositives("BPS", matched)) {
    std::printf("  feed BPS mostly matches %s\n", report.dominant_pattern.c_str());
    std::printf("    but %zu file(s) of shape %s slipped in — review "
                "suggested\n",
                report.outlier.file_count, report.outlier.pattern.c_str());
  }

  // ------------------------------------------------ grouping (future work)
  std::printf("\n=== 4. grouping atomic feeds (the paper's future work) ===\n");
  std::vector<AtomicFeed> atomic;
  for (const char* pattern :
       {"CPU_POLL%i_%Y%m%d%H%M.txt", "CPU_UTIL%i_%Y%m%d%H%M.txt",
        "MEMORY_POLL%i_%Y%m%d%H_%M.csv.gz", "MEMORY_FREE%i_%Y%m%d%H_%M.csv.gz",
        "BPS_%s_%Y%m%d%H.csv"}) {
    AtomicFeed f;
    f.pattern = pattern;
    atomic.push_back(f);
  }
  for (const auto& group : SuggestFeedGroups(atomic)) {
    std::printf("  suggested group %-8s (cohesion %.2f):\n", group.name.c_str(),
                group.cohesion);
    for (const auto& member : group.member_patterns) {
      std::printf("    %s\n", member.c_str());
    }
  }
  return 0;
}

#include "common/random.h"

#include <cmath>

namespace bistro {

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t n) { return n == 0 ? 0 : Next() % n; }

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  if (hi <= lo) return lo;
  return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

double Rng::Exponential(double mean) {
  double u = NextDouble();
  if (u <= 0.0) u = 1e-18;
  return -mean * std::log(u);
}

double Rng::Normal(double mean, double stddev) {
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0.0) u1 = 1e-18;
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

std::string Rng::AlnumString(size_t n) {
  static const char kChars[] = "abcdefghijklmnopqrstuvwxyz0123456789";
  std::string out(n, '\0');
  for (auto& c : out) c = kChars[Uniform(sizeof(kChars) - 1)];
  return out;
}

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, Rng* rng)
    : n_(n), theta_(theta), rng_(rng) {
  double zetan = 0;
  for (uint64_t i = 1; i <= n_; ++i) zetan += 1.0 / std::pow(double(i), theta_);
  zetan_ = zetan;
  double zeta2 = 0;
  for (uint64_t i = 1; i <= 2 && i <= n_; ++i) {
    zeta2 += 1.0 / std::pow(double(i), theta_);
  }
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / double(n_), 1.0 - theta_)) / (1.0 - zeta2 / zetan_);
}

uint64_t ZipfGenerator::Next() {
  double u = rng_->NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  uint64_t v = static_cast<uint64_t>(
      double(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return v >= n_ ? n_ - 1 : v;
}

}  // namespace bistro

#include "common/hash.h"

#include <array>

namespace bistro {

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& CrcTable() {
  static const std::array<uint32_t, 256> table = MakeCrcTable();
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  const auto& table = CrcTable();
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint32_t Crc32(std::string_view s) { return Crc32(s.data(), s.size()); }

uint64_t Fnv1a64(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace bistro

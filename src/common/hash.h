#ifndef BISTRO_COMMON_HASH_H_
#define BISTRO_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace bistro {

/// CRC32 (IEEE polynomial, reflected). Used to frame WAL and codec records.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);
uint32_t Crc32(std::string_view s);

/// FNV-1a 64-bit hash; fast non-cryptographic hashing of names and keys.
uint64_t Fnv1a64(std::string_view s);

}  // namespace bistro

#endif  // BISTRO_COMMON_HASH_H_

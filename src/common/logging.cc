#include "common/logging.h"

#include <cstdio>

namespace bistro {

std::string_view LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kAlarm:
      return "ALARM";
  }
  return "?";
}

std::string LogRecord::ToString() const {
  std::string out = FormatTime(time);
  out += " [";
  out += LogLevelName(level);
  out += "] ";
  out += component;
  out += ": ";
  out += message;
  return out;
}

void StderrSink::Write(const LogRecord& record) {
  std::string line = record.ToString();
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

void MemorySink::Write(const LogRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  records_.push_back(record);
}

std::vector<LogRecord> MemorySink::TakeRecords() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<LogRecord> out;
  out.swap(records_);
  return out;
}

size_t MemorySink::Count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

size_t MemorySink::CountAtLeast(LogLevel level) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& r : records_) {
    if (r.level >= level) ++n;
  }
  return n;
}

void Logger::AddSink(std::shared_ptr<LogSink> sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sinks_.push_back(std::move(sink));
}

void Logger::Log(LogLevel level, std::string component, std::string message) {
  if (level < min_level_) return;
  LogRecord record;
  record.time = clock_->Now();
  record.level = level;
  record.component = std::move(component);
  record.message = std::move(message);
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& sink : sinks_) sink->Write(record);
}

Logger* Logger::Default() {
  static Logger* logger = [] {
    auto* l = new Logger();
    l->AddSink(std::make_shared<StderrSink>());
    return l;
  }();
  return logger;
}

}  // namespace bistro

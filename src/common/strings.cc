#include "common/strings.h"

#include <algorithm>
#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace bistro {

std::vector<std::string> Split(std::string_view input, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitSkipEmpty(std::string_view input, char sep) {
  std::vector<std::string> out;
  for (auto& piece : Split(input, sep)) {
    if (!piece.empty()) out.push_back(std::move(piece));
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return out;
}

std::optional<int64_t> ParseInt(std::string_view s) {
  if (s.empty()) return std::nullopt;
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return std::nullopt;
  return static_cast<int64_t>(v);
}

std::optional<double> ParseDouble(std::string_view s) {
  if (s.empty()) return std::nullopt;
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return std::nullopt;
  return v;
}

std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  if (n < 0) {
    va_end(ap2);
    return {};
  }
  std::string out(static_cast<size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  va_end(ap2);
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  if (unit == 0) return StrFormat("%llu B", static_cast<unsigned long long>(bytes));
  return StrFormat("%.1f %s", v, kUnits[unit]);
}

bool IsDigit(char c) { return c >= '0' && c <= '9'; }
bool IsAlpha(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}
bool IsAlnum(char c) { return IsDigit(c) || IsAlpha(c); }

size_t EditDistance(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);
  // b is the shorter string; roll a single row.
  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t prev_diag = row[0];
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t cur = row[j];
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, prev_diag + cost});
      prev_diag = cur;
    }
  }
  return row[b.size()];
}

}  // namespace bistro

#ifndef BISTRO_COMMON_RANDOM_H_
#define BISTRO_COMMON_RANDOM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace bistro {

/// Deterministic, seedable PRNG (xoshiro256**). Every randomized component
/// in Bistro's simulators takes an explicit Rng so runs are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  uint64_t Next();
  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n);
  /// Uniform in [lo, hi].
  int64_t UniformRange(int64_t lo, int64_t hi);
  /// Uniform double in [0, 1).
  double NextDouble();
  /// True with probability p.
  bool Bernoulli(double p);
  /// Exponentially distributed with the given mean.
  double Exponential(double mean);
  /// Normal via Box-Muller.
  double Normal(double mean, double stddev);
  /// Random lowercase-alnum string of length n.
  std::string AlnumString(size_t n);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      std::swap((*v)[i - 1], (*v)[Uniform(i)]);
    }
  }

 private:
  uint64_t s_[4];
};

/// Zipf-distributed sampler over {0, ..., n-1} with exponent `theta`;
/// used to model skewed feed popularity and file-size distributions.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, Rng* rng);
  uint64_t Next();

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  Rng* rng_;
};

}  // namespace bistro

#endif  // BISTRO_COMMON_RANDOM_H_

#ifndef BISTRO_COMMON_STATUS_H_
#define BISTRO_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace bistro {

/// Machine-readable error category carried by every non-OK Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kIoError,
  kCorruption,
  kTimedOut,
  kUnavailable,
  kResourceExhausted,
  kFailedPrecondition,
  kAborted,
  kUnimplemented,
  kInternal,
};

/// Returns a stable human-readable name for a StatusCode ("NotFound", ...).
std::string_view StatusCodeName(StatusCode code);

/// Error-or-success value used across all Bistro public APIs.
///
/// The library does not throw exceptions across API boundaries: fallible
/// operations return a Status (or a Result<T>, below). OK statuses carry no
/// allocation; error statuses carry a code and a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsTimedOut() const { return code_ == StatusCode::kTimedOut; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Prepends context to the error message; no-op on OK statuses.
  Status WithContext(std::string_view context) const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// A value of type T, or the Status explaining why it is absent.
template <typename T>
class Result {
 public:
  /// Implicit from value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT
  /// Implicit from error status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Precondition: ok().
  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value, or `fallback` if this Result holds an error.
  T ValueOr(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace bistro

/// Propagates a non-OK Status to the caller.
#define BISTRO_RETURN_IF_ERROR(expr)                  \
  do {                                                \
    ::bistro::Status _bistro_st = (expr);             \
    if (!_bistro_st.ok()) return _bistro_st;          \
  } while (0)

#define BISTRO_CONCAT_IMPL(a, b) a##b
#define BISTRO_CONCAT(a, b) BISTRO_CONCAT_IMPL(a, b)

/// Evaluates a Result<T> expression; on error returns its Status, otherwise
/// moves the value into `lhs` (which may be a declaration).
#define BISTRO_ASSIGN_OR_RETURN(lhs, expr)                              \
  BISTRO_ASSIGN_OR_RETURN_IMPL(BISTRO_CONCAT(_bistro_res_, __LINE__),   \
                               lhs, expr)

#define BISTRO_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value();

#endif  // BISTRO_COMMON_STATUS_H_

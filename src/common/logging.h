#ifndef BISTRO_COMMON_LOGGING_H_
#define BISTRO_COMMON_LOGGING_H_

#include <functional>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "common/time.h"

namespace bistro {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kAlarm = 4 };

std::string_view LogLevelName(LogLevel level);

/// A structured log record. The Bistro server logs every feed event
/// (arrival, classification, delivery, trigger, alarm) through this type so
/// monitoring tools can consume the stream programmatically.
struct LogRecord {
  TimePoint time = 0;
  LogLevel level = LogLevel::kInfo;
  std::string component;  // e.g. "classifier", "delivery", "analyzer"
  std::string message;

  std::string ToString() const;
};

/// Receives every record emitted through a Logger.
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void Write(const LogRecord& record) = 0;
};

/// Sink writing human-readable lines to stderr.
class StderrSink : public LogSink {
 public:
  void Write(const LogRecord& record) override;
};

/// Sink buffering records in memory; used by tests and the monitor.
class MemorySink : public LogSink {
 public:
  void Write(const LogRecord& record) override;
  std::vector<LogRecord> TakeRecords();
  size_t Count() const;
  /// Number of records at `level` or above.
  size_t CountAtLeast(LogLevel level) const;

 private:
  mutable std::mutex mu_;
  std::vector<LogRecord> records_;
};

/// The Bistro logging subsystem (paper Fig. 2). Thread-safe, fan-out to any
/// number of sinks, with a minimum-level filter.
class Logger {
 public:
  explicit Logger(const Clock* clock = RealClock::Get()) : clock_(clock) {}

  void AddSink(std::shared_ptr<LogSink> sink);
  void SetMinLevel(LogLevel level) { min_level_ = level; }
  LogLevel min_level() const { return min_level_; }

  void Log(LogLevel level, std::string component, std::string message);

  void Debug(std::string component, std::string message) {
    Log(LogLevel::kDebug, std::move(component), std::move(message));
  }
  void Info(std::string component, std::string message) {
    Log(LogLevel::kInfo, std::move(component), std::move(message));
  }
  void Warning(std::string component, std::string message) {
    Log(LogLevel::kWarning, std::move(component), std::move(message));
  }
  void Error(std::string component, std::string message) {
    Log(LogLevel::kError, std::move(component), std::move(message));
  }
  /// Alarms are the highest severity: the server raises one when it detects
  /// a condition it cannot correct itself (paper §3.2).
  void Alarm(std::string component, std::string message) {
    Log(LogLevel::kAlarm, std::move(component), std::move(message));
  }

  /// Process-wide default logger (stderr sink attached, Info level).
  static Logger* Default();

 private:
  const Clock* clock_;
  LogLevel min_level_ = LogLevel::kInfo;
  std::mutex mu_;
  std::vector<std::shared_ptr<LogSink>> sinks_;
};

}  // namespace bistro

#endif  // BISTRO_COMMON_LOGGING_H_

#include "common/time.h"

#include <chrono>
#include <thread>

#include "common/strings.h"

namespace bistro {

namespace {

// Days since epoch for a civil date, using the classic Howard Hinnant
// algorithm (valid for a far wider range than we need).
int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);            // [0, 399]
  const unsigned doy = (153u * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;  // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;            // [0, 146096]
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int* y, int* m, int* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);          // [0, 146096]
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;             // [0, 399]
  const int64_t yy = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);          // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                               // [0, 11]
  const unsigned dd = doy - (153 * mp + 2) / 5 + 1;                      // [1, 31]
  const unsigned mm = mp + (mp < 10 ? 3 : -9);                           // [1, 12]
  *y = static_cast<int>(yy + (mm <= 2));
  *m = static_cast<int>(mm);
  *d = static_cast<int>(dd);
}

}  // namespace

TimePoint FromCivil(const CivilTime& c) {
  // Normalize month into [1,12], carrying into the year.
  int y = c.year;
  int m = c.month;
  if (m < 1 || m > 12) {
    int months = y * 12 + (m - 1);
    y = months / 12;
    m = months % 12 + 1;
    if (m < 1) {
      m += 12;
      y -= 1;
    }
  }
  int64_t days = DaysFromCivil(y, m, c.day);
  int64_t secs = days * 86400 + c.hour * 3600 + c.minute * 60 + c.second;
  return secs * kSecond;
}

CivilTime ToCivil(TimePoint t) {
  int64_t secs = t / kSecond;
  if (t < 0 && t % kSecond != 0) --secs;  // floor division
  int64_t days = secs / 86400;
  int64_t sod = secs % 86400;
  if (sod < 0) {
    sod += 86400;
    --days;
  }
  CivilTime c;
  CivilFromDays(days, &c.year, &c.month, &c.day);
  c.hour = static_cast<int>(sod / 3600);
  c.minute = static_cast<int>((sod % 3600) / 60);
  c.second = static_cast<int>(sod % 60);
  return c;
}

std::string FormatTime(TimePoint t) {
  CivilTime c = ToCivil(t);
  return StrFormat("%04d-%02d-%02d %02d:%02d:%02d", c.year, c.month, c.day,
                   c.hour, c.minute, c.second);
}

std::string FormatDuration(Duration d) {
  bool neg = d < 0;
  if (neg) d = -d;
  std::string out;
  if (d < kMillisecond) {
    out = StrFormat("%lldus", static_cast<long long>(d));
  } else if (d < kSecond) {
    out = StrFormat("%.1fms", static_cast<double>(d) / kMillisecond);
  } else if (d < kMinute) {
    out = StrFormat("%.2fs", static_cast<double>(d) / kSecond);
  } else if (d < kHour) {
    out = StrFormat("%lldm%llds", static_cast<long long>(d / kMinute),
                    static_cast<long long>((d % kMinute) / kSecond));
  } else {
    out = StrFormat("%lldh%lldm", static_cast<long long>(d / kHour),
                    static_cast<long long>((d % kHour) / kMinute));
  }
  return neg ? "-" + out : out;
}

std::optional<TimePoint> ParseTime(std::string_view s) {
  CivilTime c;
  int n = 0;
  std::string buf(s);
  int matched = std::sscanf(buf.c_str(), "%d-%d-%d %d:%d:%d%n", &c.year,
                            &c.month, &c.day, &c.hour, &c.minute, &c.second,
                            &n);
  if (matched == 6 && static_cast<size_t>(n) == buf.size()) return FromCivil(c);
  c = CivilTime{};
  matched = std::sscanf(buf.c_str(), "%d-%d-%d%n", &c.year, &c.month, &c.day, &n);
  if (matched == 3 && static_cast<size_t>(n) == buf.size()) return FromCivil(c);
  return std::nullopt;
}

std::optional<Duration> ParseDuration(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return std::nullopt;
  size_t i = 0;
  while (i < s.size() && (IsDigit(s[i]) || s[i] == '.' || s[i] == '-')) ++i;
  auto num = ParseDouble(s.substr(0, i));
  if (!num) return std::nullopt;
  std::string_view unit = s.substr(i);
  double scale;
  if (unit == "us") {
    scale = kMicrosecond;
  } else if (unit == "ms") {
    scale = kMillisecond;
  } else if (unit == "s" || unit.empty()) {
    scale = kSecond;
  } else if (unit == "m" || unit == "min") {
    scale = kMinute;
  } else if (unit == "h") {
    scale = kHour;
  } else if (unit == "d") {
    scale = kDay;
  } else {
    return std::nullopt;
  }
  return static_cast<Duration>(*num * scale);
}

TimePoint RealClock::Now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

void RealClock::SleepFor(Duration d) {
  if (d > 0) std::this_thread::sleep_for(std::chrono::microseconds(d));
}

RealClock* RealClock::Get() {
  static RealClock clock;
  return &clock;
}

TimePoint SimClock::Now() const {
  std::lock_guard<std::mutex> lock(mu_);
  return now_;
}

void SimClock::SleepFor(Duration d) {
  std::unique_lock<std::mutex> lock(mu_);
  TimePoint deadline = now_ + d;
  cv_.wait(lock, [&] { return now_ >= deadline; });
}

void SimClock::AdvanceTo(TimePoint t) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (t > now_) now_ = t;
  }
  cv_.notify_all();
}

void SimClock::Advance(Duration d) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    now_ += d;
  }
  cv_.notify_all();
}

}  // namespace bistro

#ifndef BISTRO_COMMON_TIME_H_
#define BISTRO_COMMON_TIME_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

namespace bistro {

/// Microseconds since the Unix epoch. All Bistro timestamps use this unit.
using TimePoint = int64_t;
/// Microseconds.
using Duration = int64_t;

constexpr Duration kMicrosecond = 1;
constexpr Duration kMillisecond = 1000;
constexpr Duration kSecond = 1000 * kMillisecond;
constexpr Duration kMinute = 60 * kSecond;
constexpr Duration kHour = 60 * kMinute;
constexpr Duration kDay = 24 * kHour;

/// Broken-down civil time (UTC). Used by the pattern language to assemble
/// timestamps from filename fields and by the normalizer to render them.
struct CivilTime {
  int year = 1970;
  int month = 1;  // 1..12
  int day = 1;    // 1..31
  int hour = 0;
  int minute = 0;
  int second = 0;

  bool operator==(const CivilTime&) const = default;
};

/// Converts civil UTC time to a TimePoint. Out-of-range fields are
/// normalized arithmetically (e.g. month 13 -> next year's January).
TimePoint FromCivil(const CivilTime& c);

/// Converts a TimePoint to civil UTC time (drops sub-second precision).
CivilTime ToCivil(TimePoint t);

/// Formats as "YYYY-MM-DD HH:MM:SS" (UTC).
std::string FormatTime(TimePoint t);

/// Formats a duration in adaptive units ("1.5s", "230ms", "3m12s").
std::string FormatDuration(Duration d);

/// Parses "YYYY-MM-DD HH:MM:SS" or "YYYY-MM-DD".
std::optional<TimePoint> ParseTime(std::string_view s);

/// Parses a config-style duration: "500ms", "30s", "5m", "2h", "1d".
std::optional<Duration> ParseDuration(std::string_view s);

/// Clock abstraction so every Bistro component can run under real time
/// (examples, live deployments) or simulated time (tests, benchmarks).
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time.
  virtual TimePoint Now() const = 0;
  /// Blocks (or advances simulated time) for `d`.
  virtual void SleepFor(Duration d) = 0;
};

/// Wall-clock implementation.
class RealClock : public Clock {
 public:
  TimePoint Now() const override;
  void SleepFor(Duration d) override;

  /// Process-wide shared instance.
  static RealClock* Get();
};

/// Manually advanced clock for deterministic tests and simulations.
///
/// Thread-safe: SleepFor() blocks the calling thread until another thread
/// advances the clock past the wakeup point, which lets multi-threaded
/// components run under simulated time.
class SimClock : public Clock {
 public:
  explicit SimClock(TimePoint start = 0) : now_(start) {}

  TimePoint Now() const override;
  void SleepFor(Duration d) override;

  /// Advances the clock, waking any sleepers whose deadline passed.
  void AdvanceTo(TimePoint t);
  void Advance(Duration d);

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  TimePoint now_;
};

}  // namespace bistro

#endif  // BISTRO_COMMON_TIME_H_

#ifndef BISTRO_COMMON_STRINGS_H_
#define BISTRO_COMMON_STRINGS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace bistro {

/// Splits `input` on `sep`, returning all pieces (including empties).
std::vector<std::string> Split(std::string_view input, char sep);

/// Splits `input` on `sep`, skipping empty pieces.
std::vector<std::string> SplitSkipEmpty(std::string_view input, char sep);

/// Joins `pieces` with `sep`.
std::string Join(const std::vector<std::string>& pieces, std::string_view sep);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);

/// Parses a base-10 signed integer occupying the whole of `s`.
std::optional<int64_t> ParseInt(std::string_view s);

/// Parses a base-10 double occupying the whole of `s`.
std::optional<double> ParseDouble(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Human-readable byte count ("1.5 MiB").
std::string HumanBytes(uint64_t bytes);

bool IsDigit(char c);
bool IsAlpha(char c);
bool IsAlnum(char c);

/// Levenshtein edit distance between two strings (unit costs).
size_t EditDistance(std::string_view a, std::string_view b);

}  // namespace bistro

#endif  // BISTRO_COMMON_STRINGS_H_

#ifndef BISTRO_COMMON_QUEUE_H_
#define BISTRO_COMMON_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace bistro {

/// Unbounded MPMC blocking queue. Close() unblocks all waiters; Pop()
/// returns nullopt once the queue is closed and drained.
template <typename T>
class BlockingQueue {
 public:
  BlockingQueue() = default;
  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Returns false if the queue has been closed.
  bool Push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed+drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  size_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  bool Closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace bistro

#endif  // BISTRO_COMMON_QUEUE_H_

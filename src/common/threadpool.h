#ifndef BISTRO_COMMON_THREADPOOL_H_
#define BISTRO_COMMON_THREADPOOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bistro {

/// Fixed-size worker pool. Used by the delivery scheduler to model a
/// partition's dedicated CPU share: each scheduling partition owns its own
/// pool, so a slow partition cannot consume another partition's workers.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; returns false if the pool is shutting down.
  bool Submit(std::function<void()> task);

  /// Blocks until the queue is empty and all workers are idle.
  void Wait();

  /// Stops accepting tasks, drains the queue, joins workers.
  void Shutdown();

  size_t num_threads() const { return threads_.size(); }
  size_t QueueDepth() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  size_t active_ = 0;
  bool shutdown_ = false;
};

}  // namespace bistro

#endif  // BISTRO_COMMON_THREADPOOL_H_

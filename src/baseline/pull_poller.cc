#include "baseline/pull_poller.h"

#include <algorithm>

namespace bistro {

PullPoller::PullPoller(FileSystem* remote, std::string remote_root,
                       FileSystem* local, std::string local_root,
                       Options options)
    : remote_(remote),
      remote_root_(std::move(remote_root)),
      local_(local),
      local_root_(std::move(local_root)),
      options_(options) {}

Result<size_t> PullPoller::Poll(TimePoint now) {
  (void)now;
  // The full recursive listing is the unavoidable cost of pull: without
  // provider-side notifications there is no other way to learn what is
  // new, and the listing touches every entry of the stored history.
  BISTRO_ASSIGN_OR_RETURN(auto entries, remote_->ListRecursive(remote_root_));
  size_t fetched = 0;
  for (const FileInfo& info : entries) {
    newest_seen_ = std::max(newest_seen_, info.mtime);
  }
  for (const FileInfo& info : entries) {
    if (seen_.count(info.path) != 0) continue;
    if (options_.lookback > 0 && info.mtime < newest_seen_ - options_.lookback) {
      // Outside the lookback cap: the poller will never fetch this file.
      ++missed_;
      seen_.insert(info.path);  // stop re-counting it every cycle
      continue;
    }
    BISTRO_ASSIGN_OR_RETURN(std::string content, remote_->ReadFile(info.path));
    std::string_view rel(info.path);
    if (rel.size() > remote_root_.size()) rel.remove_prefix(remote_root_.size());
    BISTRO_RETURN_IF_ERROR(
        local_->WriteFile(path::Join(local_root_, rel), content));
    seen_.insert(info.path);
    ++fetched_total_;
    ++fetched;
  }
  return fetched;
}

}  // namespace bistro

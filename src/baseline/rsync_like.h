#ifndef BISTRO_BASELINE_RSYNC_LIKE_H_
#define BISTRO_BASELINE_RSYNC_LIKE_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "vfs/filesystem.h"

namespace bistro {

/// Statistics of one rsync-style synchronization cycle.
struct SyncStats {
  uint64_t source_entries_scanned = 0;
  uint64_t dest_entries_scanned = 0;
  uint64_t files_copied = 0;
  uint64_t bytes_copied = 0;
  uint64_t files_skipped_unchanged = 0;  // size+mtime matched
  uint64_t files_delta_patched = 0;      // content differed, delta applied
  uint64_t literal_bytes_in_deltas = 0;  // bytes not covered by block reuse
};

/// A faithful miniature of the rsync push baseline (paper §2.2.2): makes
/// `dest_root` mirror `source_root`.
///
/// Mechanics mirror real rsync: both trees are fully scanned each run
/// (rsync stores no state); files whose size and mtime match are skipped;
/// changed files are transferred with a rolling-checksum block delta so
/// only literal differences move. The structural drawbacks the paper
/// lists are intentional and observable:
///  1. no subscriber notification — consumers must scan the destination;
///  2. stateless: scan cost grows with history on BOTH sides;
///  3. destination mirrors the full source history (no landing zone, no
///     smaller subscriber window).
class RsyncLike {
 public:
  struct Options {
    Options() {}
    size_t block_size = 1024;  // delta block granularity
  };

  RsyncLike(FileSystem* source, std::string source_root, FileSystem* dest,
            std::string dest_root, Options options = Options());

  /// One synchronization cycle.
  Result<SyncStats> Sync();

  /// Cumulative stats over all cycles.
  const SyncStats& total() const { return total_; }

 private:
  Status SyncFile(const FileInfo& src_info, const std::string& dest_path,
                  SyncStats* stats);

  FileSystem* source_;
  std::string source_root_;
  FileSystem* dest_;
  std::string dest_root_;
  Options options_;
  SyncStats total_;
};

/// A cron-style fixed-interval job runner (paper §2.2.2 item 4): fires a
/// job every `interval` of simulated time with NO awareness of whether
/// the previous run finished — overlapping runs are launched anyway and
/// counted, reproducing cron's "step on previously unfinished tasks"
/// behaviour.
class CronRunner {
 public:
  /// `job` returns how long the run took (so overlap can be detected
  /// under simulated time, where the job body executes instantly).
  CronRunner(Duration interval, std::function<Duration(TimePoint)> job)
      : interval_(interval), job_(std::move(job)) {}

  /// Advances cron through [from, to), firing scheduled slots.
  void AdvanceTo(TimePoint to);

  uint64_t runs() const { return runs_; }
  /// Runs launched while a previous run was still executing.
  uint64_t overlapping_runs() const { return overlapping_; }

 private:
  Duration interval_;
  std::function<Duration(TimePoint)> job_;
  TimePoint next_fire_ = 0;
  TimePoint busy_until_ = 0;
  uint64_t runs_ = 0;
  uint64_t overlapping_ = 0;
};

}  // namespace bistro

#endif  // BISTRO_BASELINE_RSYNC_LIKE_H_

#ifndef BISTRO_BASELINE_PULL_POLLER_H_
#define BISTRO_BASELINE_PULL_POLLER_H_

#include <set>
#include <string>

#include "common/time.h"
#include "vfs/filesystem.h"

namespace bistro {

/// The pull-based delivery baseline (paper §2.2.1): a subscriber-side
/// agent that periodically lists the provider's feed directories, works
/// out which files are new, and retrieves them.
///
/// It exhibits exactly the pathologies the paper describes:
///  - every poll lists directories whose size grows with stored history,
///    so metadata cost grows linearly with history;
///  - N subscribers each run their own scans against the provider;
///  - out-of-order arrivals force either full-history scans or a lookback
///    cap that silently drops late data.
class PullPoller {
 public:
  struct Options {
    Options() {}
    /// Only examine files with mtime within this window of the newest
    /// seen (0 = scan everything, the safe-but-expensive setting).
    Duration lookback = 0;
  };

  /// `remote` is the feed provider's filesystem (where scans cost),
  /// `local` the subscriber's own storage.
  PullPoller(FileSystem* remote, std::string remote_root, FileSystem* local,
             std::string local_root, Options options = Options());

  /// One polling cycle: scan, diff against what we have, fetch new files.
  /// Returns the number of files retrieved.
  Result<size_t> Poll(TimePoint now);

  /// Files this subscriber has retrieved so far.
  size_t files_retrieved() const { return fetched_total_; }
  /// Files skipped because they fell outside the lookback window.
  size_t files_missed() const { return missed_; }

 private:
  FileSystem* remote_;
  std::string remote_root_;
  FileSystem* local_;
  std::string local_root_;
  Options options_;
  std::set<std::string> seen_;  // remote paths already fetched or skipped
  TimePoint newest_seen_ = 0;
  size_t fetched_total_ = 0;
  size_t missed_ = 0;
};

}  // namespace bistro

#endif  // BISTRO_BASELINE_PULL_POLLER_H_

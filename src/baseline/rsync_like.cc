#include "baseline/rsync_like.h"

#include <map>

#include "common/hash.h"

namespace bistro {

namespace {
// Adler-32-style rolling checksum over a block (we only need per-block
// hashing, not the rolling update, because our miniature compares
// block-aligned positions like rsync's sender does on unchanged offsets).
uint32_t BlockChecksum(std::string_view block) { return Crc32(block); }
}  // namespace

RsyncLike::RsyncLike(FileSystem* source, std::string source_root,
                     FileSystem* dest, std::string dest_root, Options options)
    : source_(source),
      source_root_(std::move(source_root)),
      dest_(dest),
      dest_root_(std::move(dest_root)),
      options_(options) {}

Result<SyncStats> RsyncLike::Sync() {
  SyncStats stats;
  // rsync scans BOTH trees every run — it has no memory of prior runs.
  BISTRO_ASSIGN_OR_RETURN(auto src_entries, source_->ListRecursive(source_root_));
  stats.source_entries_scanned = src_entries.size();
  auto dest_entries = dest_->ListRecursive(dest_root_);
  std::map<std::string, FileInfo> dest_by_rel;
  if (dest_entries.ok()) {
    stats.dest_entries_scanned = dest_entries->size();
    for (auto& info : *dest_entries) {
      std::string_view rel(info.path);
      if (rel.size() > dest_root_.size()) rel.remove_prefix(dest_root_.size() + 1);
      dest_by_rel.emplace(std::string(rel), std::move(info));
    }
  }
  for (const FileInfo& src : src_entries) {
    std::string_view rel(src.path);
    if (rel.size() > source_root_.size()) rel.remove_prefix(source_root_.size() + 1);
    std::string dest_path = path::Join(dest_root_, rel);
    auto it = dest_by_rel.find(std::string(rel));
    if (it != dest_by_rel.end() && it->second.size == src.size &&
        it->second.mtime >= src.mtime) {
      stats.files_skipped_unchanged++;
      continue;
    }
    BISTRO_RETURN_IF_ERROR(SyncFile(src, dest_path, &stats));
  }
  total_.source_entries_scanned += stats.source_entries_scanned;
  total_.dest_entries_scanned += stats.dest_entries_scanned;
  total_.files_copied += stats.files_copied;
  total_.bytes_copied += stats.bytes_copied;
  total_.files_skipped_unchanged += stats.files_skipped_unchanged;
  total_.files_delta_patched += stats.files_delta_patched;
  total_.literal_bytes_in_deltas += stats.literal_bytes_in_deltas;
  return stats;
}

Status RsyncLike::SyncFile(const FileInfo& src_info,
                           const std::string& dest_path, SyncStats* stats) {
  BISTRO_ASSIGN_OR_RETURN(std::string src_data, source_->ReadFile(src_info.path));
  auto dest_data = dest_->ReadFile(dest_path);
  if (!dest_data.ok()) {
    // New file: full copy.
    BISTRO_RETURN_IF_ERROR(dest_->WriteFile(dest_path, src_data));
    stats->files_copied++;
    stats->bytes_copied += src_data.size();
    return Status::OK();
  }
  // Delta transfer: the receiver's block checksums tell the sender which
  // blocks it can reuse; only literal (changed) bytes count as network
  // traffic.
  const size_t block = options_.block_size;
  std::map<uint32_t, size_t> dest_blocks;  // checksum -> offset
  for (size_t off = 0; off + block <= dest_data->size(); off += block) {
    dest_blocks.emplace(
        BlockChecksum(std::string_view(*dest_data).substr(off, block)), off);
  }
  uint64_t literal = 0;
  for (size_t off = 0; off < src_data.size(); off += block) {
    size_t len = std::min(block, src_data.size() - off);
    if (len == block) {
      auto it =
          dest_blocks.find(BlockChecksum(std::string_view(src_data).substr(off, len)));
      if (it != dest_blocks.end() &&
          std::string_view(*dest_data).substr(it->second, block) ==
              std::string_view(src_data).substr(off, len)) {
        continue;  // block reused, no bytes on the wire
      }
    }
    literal += len;
  }
  BISTRO_RETURN_IF_ERROR(dest_->WriteFile(dest_path, src_data));
  stats->files_delta_patched++;
  stats->bytes_copied += literal;
  stats->literal_bytes_in_deltas += literal;
  return Status::OK();
}

void CronRunner::AdvanceTo(TimePoint to) {
  while (next_fire_ < to) {
    TimePoint fire = next_fire_;
    next_fire_ += interval_;
    if (fire < busy_until_) {
      // cron fires regardless; this run overlaps the previous one.
      ++overlapping_;
    }
    Duration took = job_(fire);
    ++runs_;
    TimePoint end = fire + took;
    if (end > busy_until_) busy_until_ = end;
  }
}

}  // namespace bistro

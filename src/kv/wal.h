#ifndef BISTRO_KV_WAL_H_
#define BISTRO_KV_WAL_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "vfs/filesystem.h"

namespace bistro {

/// Append-only write-ahead log with CRC-framed records.
///
/// Record layout: crc32(4) | length varint | payload. Replay stops cleanly
/// at the first truncated or corrupt record (a torn tail after a crash is
/// expected and not an error); corruption *before* the tail is reported.
class WriteAheadLog {
 public:
  WriteAheadLog(FileSystem* fs, std::string path);

  /// Registers append/replay counters in `registry`. Several logs may
  /// share one registry; their counts aggregate. Optional.
  void AttachMetrics(MetricsRegistry* registry);

  /// When enabled, every Append is followed by FileSystem::Sync so a
  /// committed record survives a crash (at the cost of one fsync per
  /// append).
  void set_sync_on_append(bool sync) { sync_on_append_ = sync; }
  bool sync_on_append() const { return sync_on_append_; }

  /// Appends one record (buffered in the underlying FS append unless
  /// sync_on_append is set). On any failure — torn append or failed
  /// sync — the log is rolled back to the last committed length, so a
  /// record the caller saw fail can never resurface at recovery (and a
  /// torn tail cannot turn into mid-log corruption for later appends).
  Status Append(std::string_view record);

  /// Appends several records as one group: every record is framed into a
  /// single buffer, written with one FileSystem::AppendFile and (when
  /// sync_on_append is set) made durable with one Sync — the fsync cost
  /// is amortized over the whole group. On failure the log rolls back to
  /// the committed prefix, so either the group's bytes are entirely
  /// rolled back or they are all in the file. A crash mid-append can
  /// still tear the group; because records are framed individually,
  /// recovery then keeps a clean *prefix* of the group's records (callers
  /// order records so a surviving prefix is always consistent — e.g. the
  /// receipt database commits its sequence bump first).
  Status AppendBatch(const std::vector<std::string>& records);

  /// Rewrites the log to its longest intact prefix of records, dropping a
  /// torn or corrupt tail. Called after a failed append and after a
  /// recovery that found a torn tail, so subsequent appends never land
  /// behind garbage (which replay would report as mid-log corruption).
  Status RepairTail();

  /// Replays every intact record in order. If the log ends with a torn
  /// record, replay succeeds and `truncated_tail` (if non-null) is set.
  Status Replay(const std::function<void(std::string_view)>& apply,
                bool* truncated_tail = nullptr) const;

  /// Deletes the log file (after a checkpoint makes it redundant).
  Status Truncate();

  /// Bytes currently in the log file (0 if absent).
  uint64_t SizeBytes() const;

  const std::string& log_path() const { return path_; }

 private:
  /// Rewrites the log to its first `len` bytes (used to undo a failed
  /// append). Requires len <= current size.
  Status TruncateTo(uint64_t len);

  FileSystem* fs_;
  std::string path_;
  bool sync_on_append_ = false;
  /// Length of the committed record prefix; lazily initialised from the
  /// file size on first Append, maintained thereafter so failed appends
  /// can be rolled back precisely.
  std::optional<uint64_t> committed_len_;
  Counter* appends_ = nullptr;
  Counter* append_bytes_ = nullptr;
  Counter* replayed_records_ = nullptr;
  Counter* truncations_ = nullptr;
  Counter* syncs_ = nullptr;
  Counter* tail_repairs_ = nullptr;
};

}  // namespace bistro

#endif  // BISTRO_KV_WAL_H_

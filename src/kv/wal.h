#ifndef BISTRO_KV_WAL_H_
#define BISTRO_KV_WAL_H_

#include <functional>
#include <string>

#include "common/status.h"
#include "obs/metrics.h"
#include "vfs/filesystem.h"

namespace bistro {

/// Append-only write-ahead log with CRC-framed records.
///
/// Record layout: crc32(4) | length varint | payload. Replay stops cleanly
/// at the first truncated or corrupt record (a torn tail after a crash is
/// expected and not an error); corruption *before* the tail is reported.
class WriteAheadLog {
 public:
  WriteAheadLog(FileSystem* fs, std::string path);

  /// Registers append/replay counters in `registry`. Several logs may
  /// share one registry; their counts aggregate. Optional.
  void AttachMetrics(MetricsRegistry* registry);

  /// Appends one record (buffered in the underlying FS append).
  Status Append(std::string_view record);

  /// Replays every intact record in order. If the log ends with a torn
  /// record, replay succeeds and `truncated_tail` (if non-null) is set.
  Status Replay(const std::function<void(std::string_view)>& apply,
                bool* truncated_tail = nullptr) const;

  /// Deletes the log file (after a checkpoint makes it redundant).
  Status Truncate();

  /// Bytes currently in the log file (0 if absent).
  uint64_t SizeBytes() const;

  const std::string& log_path() const { return path_; }

 private:
  FileSystem* fs_;
  std::string path_;
  Counter* appends_ = nullptr;
  Counter* append_bytes_ = nullptr;
  Counter* replayed_records_ = nullptr;
  Counter* truncations_ = nullptr;
};

}  // namespace bistro

#endif  // BISTRO_KV_WAL_H_

#ifndef BISTRO_KV_KVSTORE_H_
#define BISTRO_KV_KVSTORE_H_

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "kv/wal.h"

namespace bistro {

/// Durable, transactional key-value store backing Bistro's receipt
/// databases (paper §4.2).
///
/// Design: an ordered in-memory table, a CRC-framed write-ahead log, and a
/// periodic full checkpoint. Every mutation (or batch) is logged before it
/// is applied; Open() loads the latest checkpoint then replays the log, so
/// the store recovers to the last committed batch after a crash. Batches
/// are atomic: a batch is one WAL record, and a torn batch at the log tail
/// is discarded in full.
class KvStore {
 public:
  struct Options {
    Options() {}
    /// Checkpoint when the WAL exceeds this many bytes (0 = never auto).
    uint64_t checkpoint_wal_bytes = 4 * 1024 * 1024;
    /// fsync the WAL after every append: a committed batch then survives
    /// a crash (not just a clean shutdown). Off by default to preserve
    /// the historical buffered behavior; the server enables it for
    /// crash-consistent receipt databases.
    bool sync_wal = false;
  };

  /// Opens (and recovers) a store rooted at `dir` on `fs`.
  static Result<std::unique_ptr<KvStore>> Open(FileSystem* fs, std::string dir,
                                               Options options = Options());

  /// One write in a batch.
  struct Write {
    std::string key;
    std::optional<std::string> value;  // nullopt = delete

    static Write Put(std::string k, std::string v) {
      return Write{std::move(k), std::move(v)};
    }
    static Write Del(std::string k) { return Write{std::move(k), std::nullopt}; }
  };

  /// Applies a batch atomically and durably.
  Status Apply(const std::vector<Write>& batch);

  /// Group commit: applies several batches in one WAL append + one fsync
  /// (when sync_wal is set), amortizing the durability cost over the
  /// group. Each batch keeps its individual atomicity (one WAL record per
  /// batch); on failure the whole group is rolled back and none of the
  /// batches is applied. A crash can still make a *prefix* of the group
  /// durable — callers must order batches so any prefix is consistent.
  Status ApplyMulti(const std::vector<std::vector<Write>>& batches);

  Status Put(std::string key, std::string value);
  Status Delete(std::string key);

  Result<std::string> Get(const std::string& key) const;
  bool Contains(const std::string& key) const;

  /// All (key, value) pairs whose key starts with `prefix`, in key order.
  std::vector<std::pair<std::string, std::string>> ScanPrefix(
      const std::string& prefix) const;

  /// Number of live keys.
  size_t Size() const;

  /// Forces a checkpoint: writes the full table, then truncates the WAL.
  Status Checkpoint();

  /// Bytes currently in the WAL (drives auto-checkpoint).
  uint64_t WalBytes() const;

  /// True if recovery found a torn record at the WAL tail.
  bool recovered_torn_tail() const { return torn_tail_; }

  /// The store's write-ahead log (e.g. to attach metrics).
  WriteAheadLog* wal() { return &wal_; }

 private:
  KvStore(FileSystem* fs, std::string dir, Options options);

  Status Recover();
  Status ApplyLocked(const std::vector<Write>& batch);
  void ApplyToTableLocked(const std::vector<Write>& batch);
  void MaybeAutoCheckpointLocked();
  static std::string EncodeBatch(const std::vector<Write>& batch);
  static Status DecodeBatch(std::string_view record, std::vector<Write>* batch);

  FileSystem* fs_;
  std::string dir_;
  Options options_;
  WriteAheadLog wal_;
  mutable std::mutex mu_;
  std::map<std::string, std::string> table_;
  bool torn_tail_ = false;
};

}  // namespace bistro

#endif  // BISTRO_KV_KVSTORE_H_

#include "kv/kvstore.h"

#include <cstring>

#include "common/hash.h"
#include "common/strings.h"

namespace bistro {

namespace {
constexpr char kWalFile[] = "wal.log";
constexpr char kCheckpointFile[] = "checkpoint.db";
constexpr char kCheckpointTmp[] = "checkpoint.tmp";

void PutVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

bool GetVarint(std::string_view* in, uint64_t* v) {
  *v = 0;
  int shift = 0;
  while (!in->empty() && shift <= 63) {
    uint8_t byte = static_cast<uint8_t>(in->front());
    in->remove_prefix(1);
    *v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return true;
    shift += 7;
  }
  return false;
}

void PutLengthPrefixed(std::string* out, std::string_view s) {
  PutVarint(out, s.size());
  out->append(s.data(), s.size());
}

bool GetLengthPrefixed(std::string_view* in, std::string_view* s) {
  uint64_t len;
  if (!GetVarint(in, &len) || in->size() < len) return false;
  *s = in->substr(0, len);
  in->remove_prefix(len);
  return true;
}
}  // namespace

Result<std::unique_ptr<KvStore>> KvStore::Open(FileSystem* fs, std::string dir,
                                               Options options) {
  std::unique_ptr<KvStore> store(
      new KvStore(fs, std::move(dir), options));
  BISTRO_RETURN_IF_ERROR(store->Recover());
  return store;
}

KvStore::KvStore(FileSystem* fs, std::string dir, Options options)
    : fs_(fs),
      dir_(std::move(dir)),
      options_(options),
      wal_(fs, path::Join(dir_, kWalFile)) {
  wal_.set_sync_on_append(options_.sync_wal);
}

Status KvStore::Recover() {
  std::lock_guard<std::mutex> lock(mu_);
  BISTRO_RETURN_IF_ERROR(fs_->MkDirs(dir_));
  // 1. Load checkpoint if present. Format: repeated (key, value) pairs,
  //    length-prefixed, with a trailing CRC of everything before it.
  auto ckpt = fs_->ReadFile(path::Join(dir_, kCheckpointFile));
  if (ckpt.ok()) {
    std::string_view in(*ckpt);
    if (in.size() < 4) return Status::Corruption("checkpoint too small");
    std::string_view body = in.substr(0, in.size() - 4);
    uint32_t crc;
    std::memcpy(&crc, in.data() + body.size(), 4);
    if (Crc32(body) != crc) return Status::Corruption("checkpoint crc mismatch");
    while (!body.empty()) {
      std::string_view k, v;
      if (!GetLengthPrefixed(&body, &k) || !GetLengthPrefixed(&body, &v)) {
        return Status::Corruption("checkpoint truncated entry");
      }
      table_.emplace(std::string(k), std::string(v));
    }
  } else if (!ckpt.status().IsNotFound()) {
    return ckpt.status();
  }
  // 2. Replay WAL batches on top.
  Status replay = wal_.Replay(
      [this](std::string_view record) {
        std::vector<Write> batch;
        if (!DecodeBatch(record, &batch).ok()) return;  // skip bad record
        for (auto& w : batch) {
          if (w.value.has_value()) {
            table_[w.key] = *w.value;
          } else {
            table_.erase(w.key);
          }
        }
      },
      &torn_tail_);
  if (!replay.ok()) return replay;
  // Appending behind a torn tail would read back as mid-log corruption on
  // the next recovery; rewrite the log to its intact prefix first.
  if (torn_tail_) BISTRO_RETURN_IF_ERROR(wal_.RepairTail());
  return Status::OK();
}

std::string KvStore::EncodeBatch(const std::vector<Write>& batch) {
  std::string out;
  PutVarint(&out, batch.size());
  for (const auto& w : batch) {
    out.push_back(w.value.has_value() ? 1 : 0);
    PutLengthPrefixed(&out, w.key);
    if (w.value.has_value()) PutLengthPrefixed(&out, *w.value);
  }
  return out;
}

Status KvStore::DecodeBatch(std::string_view record, std::vector<Write>* batch) {
  uint64_t n;
  if (!GetVarint(&record, &n)) return Status::Corruption("batch count");
  batch->clear();
  batch->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (record.empty()) return Status::Corruption("batch op");
    uint8_t op = static_cast<uint8_t>(record.front());
    record.remove_prefix(1);
    std::string_view k;
    if (!GetLengthPrefixed(&record, &k)) return Status::Corruption("batch key");
    if (op == 1) {
      std::string_view v;
      if (!GetLengthPrefixed(&record, &v)) return Status::Corruption("batch val");
      batch->push_back(Write::Put(std::string(k), std::string(v)));
    } else {
      batch->push_back(Write::Del(std::string(k)));
    }
  }
  return Status::OK();
}

Status KvStore::Apply(const std::vector<Write>& batch) {
  std::lock_guard<std::mutex> lock(mu_);
  return ApplyLocked(batch);
}

Status KvStore::ApplyLocked(const std::vector<Write>& batch) {
  BISTRO_RETURN_IF_ERROR(wal_.Append(EncodeBatch(batch)));
  ApplyToTableLocked(batch);
  MaybeAutoCheckpointLocked();
  return Status::OK();
}

Status KvStore::ApplyMulti(const std::vector<std::vector<Write>>& batches) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> records;
  records.reserve(batches.size());
  for (const auto& batch : batches) records.push_back(EncodeBatch(batch));
  BISTRO_RETURN_IF_ERROR(wal_.AppendBatch(records));
  for (const auto& batch : batches) ApplyToTableLocked(batch);
  MaybeAutoCheckpointLocked();
  return Status::OK();
}

void KvStore::ApplyToTableLocked(const std::vector<Write>& batch) {
  for (const auto& w : batch) {
    if (w.value.has_value()) {
      table_[w.key] = *w.value;
    } else {
      table_.erase(w.key);
    }
  }
}

void KvStore::MaybeAutoCheckpointLocked() {
  if (options_.checkpoint_wal_bytes == 0 ||
      wal_.SizeBytes() <= options_.checkpoint_wal_bytes) {
    return;
  }
  // Best-effort background-style checkpoint; failure leaves WAL intact.
  std::string body;
  for (const auto& [k, v] : table_) {
    PutLengthPrefixed(&body, k);
    PutLengthPrefixed(&body, v);
  }
  uint32_t crc = Crc32(body);
  char crc_buf[4];
  std::memcpy(crc_buf, &crc, 4);
  body.append(crc_buf, 4);
  std::string tmp = path::Join(dir_, kCheckpointTmp);
  Status s = fs_->WriteFile(tmp, body);
  if (s.ok()) s = fs_->Rename(tmp, path::Join(dir_, kCheckpointFile));
  if (s.ok()) s = wal_.Truncate();
  // Swallow checkpoint failures: durability is unaffected.
}

Status KvStore::Put(std::string key, std::string value) {
  return Apply({Write::Put(std::move(key), std::move(value))});
}

Status KvStore::Delete(std::string key) {
  return Apply({Write::Del(std::move(key))});
}

Result<std::string> KvStore::Get(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = table_.find(key);
  if (it == table_.end()) return Status::NotFound("key: " + key);
  return it->second;
}

bool KvStore::Contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return table_.count(key) != 0;
}

std::vector<std::pair<std::string, std::string>> KvStore::ScanPrefix(
    const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::string>> out;
  for (auto it = table_.lower_bound(prefix);
       it != table_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    out.emplace_back(it->first, it->second);
  }
  return out;
}

size_t KvStore::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return table_.size();
}

Status KvStore::Checkpoint() {
  std::lock_guard<std::mutex> lock(mu_);
  std::string body;
  for (const auto& [k, v] : table_) {
    PutLengthPrefixed(&body, k);
    PutLengthPrefixed(&body, v);
  }
  uint32_t crc = Crc32(body);
  char crc_buf[4];
  std::memcpy(crc_buf, &crc, 4);
  body.append(crc_buf, 4);
  std::string tmp = path::Join(dir_, kCheckpointTmp);
  BISTRO_RETURN_IF_ERROR(fs_->WriteFile(tmp, body));
  BISTRO_RETURN_IF_ERROR(fs_->Rename(tmp, path::Join(dir_, kCheckpointFile)));
  return wal_.Truncate();
}

uint64_t KvStore::WalBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return wal_.SizeBytes();
}

}  // namespace bistro

#include "kv/wal.h"

#include <cstring>

#include "common/hash.h"

namespace bistro {

namespace {
void PutVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

bool GetVarint(std::string_view* in, uint64_t* v) {
  *v = 0;
  int shift = 0;
  while (!in->empty() && shift <= 63) {
    uint8_t byte = static_cast<uint8_t>(in->front());
    in->remove_prefix(1);
    *v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return true;
    shift += 7;
  }
  return false;
}
}  // namespace

WriteAheadLog::WriteAheadLog(FileSystem* fs, std::string path)
    : fs_(fs), path_(std::move(path)) {}

void WriteAheadLog::AttachMetrics(MetricsRegistry* registry) {
  appends_ = registry->GetCounter("bistro_wal_appends_total",
                                  "Records appended across all WALs");
  append_bytes_ = registry->GetCounter("bistro_wal_append_bytes_total",
                                       "Framed bytes appended across all WALs");
  replayed_records_ = registry->GetCounter("bistro_wal_replayed_records_total",
                                           "Records replayed at recovery");
  truncations_ = registry->GetCounter("bistro_wal_truncations_total",
                                      "WAL truncations after checkpoints");
  syncs_ = registry->GetCounter("bistro_wal_syncs_total",
                                "fsyncs issued after appends");
  tail_repairs_ = registry->GetCounter(
      "bistro_wal_tail_repairs_total",
      "Torn/corrupt tails dropped by RepairTail");
}

namespace {
void FrameRecord(std::string* out, std::string_view record) {
  uint32_t crc = Crc32(record);
  char crc_buf[4];
  std::memcpy(crc_buf, &crc, 4);
  out->append(crc_buf, 4);
  PutVarint(out, record.size());
  out->append(record.data(), record.size());
}
}  // namespace

Status WriteAheadLog::Append(std::string_view record) {
  if (!committed_len_.has_value()) {
    // First append through this instance: establish the committed length
    // by scanning for the longest intact record prefix (and dropping any
    // torn tail a crash left), so we never append behind garbage.
    BISTRO_RETURN_IF_ERROR(RepairTail());
  }
  if (SizeBytes() != *committed_len_) {
    // A previous failed append could not be rolled back (its cleanup
    // write failed too). Retry the rollback before appending anything
    // new, so an uncommitted record never becomes durable.
    BISTRO_RETURN_IF_ERROR(TruncateTo(*committed_len_));
  }
  std::string framed;
  framed.reserve(record.size() + 10);
  FrameRecord(&framed, record);
  if (appends_ != nullptr) {
    appends_->Increment();
    append_bytes_->Increment(framed.size());
  }
  Status s = fs_->AppendFile(path_, framed);
  if (!s.ok()) {
    // The append may have landed partially (torn write). Roll back to
    // the committed prefix; the caller sees the failure and must not
    // consider the record committed.
    (void)TruncateTo(*committed_len_);
    return s;
  }
  if (sync_on_append_) {
    if (syncs_ != nullptr) syncs_->Increment();
    Status synced = fs_->Sync(path_);
    if (!synced.ok()) {
      // The record is in the file but not durable, and the caller will
      // treat it as failed. Remove it: if it stayed, a later successful
      // sync would make it durable and recovery would replay a record
      // the caller believes was never committed.
      (void)TruncateTo(*committed_len_);
      return synced;
    }
  }
  *committed_len_ += framed.size();
  return Status::OK();
}

Status WriteAheadLog::AppendBatch(const std::vector<std::string>& records) {
  if (records.empty()) return Status::OK();
  if (!committed_len_.has_value()) {
    BISTRO_RETURN_IF_ERROR(RepairTail());
  }
  if (SizeBytes() != *committed_len_) {
    BISTRO_RETURN_IF_ERROR(TruncateTo(*committed_len_));
  }
  std::string framed;
  size_t total = 0;
  for (const std::string& r : records) total += r.size() + 10;
  framed.reserve(total);
  for (const std::string& r : records) FrameRecord(&framed, r);
  if (appends_ != nullptr) {
    appends_->Increment(records.size());
    append_bytes_->Increment(framed.size());
  }
  Status s = fs_->AppendFile(path_, framed);
  if (!s.ok()) {
    // The group may have landed partially; roll the whole group back so
    // the caller's "the group failed" view matches recovery.
    (void)TruncateTo(*committed_len_);
    return s;
  }
  if (sync_on_append_) {
    if (syncs_ != nullptr) syncs_->Increment();
    Status synced = fs_->Sync(path_);
    if (!synced.ok()) {
      (void)TruncateTo(*committed_len_);
      return synced;
    }
  }
  *committed_len_ += framed.size();
  return Status::OK();
}

Status WriteAheadLog::TruncateTo(uint64_t len) {
  auto data = fs_->ReadFile(path_);
  if (!data.ok()) {
    if (data.status().IsNotFound() && len == 0) return Status::OK();
    return data.status();
  }
  if (data->size() < len) {
    return Status::Corruption("wal shrank below committed length: " + path_);
  }
  if (data->size() == len) return Status::OK();
  if (tail_repairs_ != nullptr) tail_repairs_->Increment();
  BISTRO_RETURN_IF_ERROR(
      fs_->WriteFile(path_, std::string_view(*data).substr(0, len)));
  if (sync_on_append_) return fs_->Sync(path_);
  return Status::OK();
}

Status WriteAheadLog::RepairTail() {
  auto data = fs_->ReadFile(path_);
  if (!data.ok()) {
    if (data.status().IsNotFound()) {
      committed_len_ = 0;
      return Status::OK();  // nothing to repair
    }
    return data.status();
  }
  // Walk intact records; `good` is the byte length of the valid prefix.
  std::string_view in(*data);
  size_t good = 0;
  while (!in.empty()) {
    if (in.size() < 4) break;
    uint32_t crc;
    std::memcpy(&crc, in.data(), 4);
    std::string_view rest = in.substr(4);
    uint64_t len;
    if (!GetVarint(&rest, &len) || rest.size() < len) break;
    if (Crc32(rest.substr(0, len)) != crc) break;
    rest.remove_prefix(len);
    good = data->size() - rest.size();
    in = rest;
  }
  if (good == data->size()) {
    committed_len_ = good;
    return Status::OK();  // already clean
  }
  if (tail_repairs_ != nullptr) tail_repairs_->Increment();
  BISTRO_RETURN_IF_ERROR(
      fs_->WriteFile(path_, std::string_view(*data).substr(0, good)));
  committed_len_ = good;
  if (sync_on_append_) return fs_->Sync(path_);
  return Status::OK();
}

Status WriteAheadLog::Replay(
    const std::function<void(std::string_view)>& apply,
    bool* truncated_tail) const {
  if (truncated_tail != nullptr) *truncated_tail = false;
  auto data = fs_->ReadFile(path_);
  if (!data.ok()) {
    if (data.status().IsNotFound()) return Status::OK();  // empty log
    return data.status();
  }
  std::string_view in(*data);
  while (!in.empty()) {
    if (in.size() < 4) {
      if (truncated_tail != nullptr) *truncated_tail = true;
      return Status::OK();
    }
    uint32_t crc;
    std::memcpy(&crc, in.data(), 4);
    std::string_view rest = in.substr(4);
    uint64_t len;
    if (!GetVarint(&rest, &len) || rest.size() < len) {
      if (truncated_tail != nullptr) *truncated_tail = true;
      return Status::OK();
    }
    std::string_view record = rest.substr(0, len);
    if (Crc32(record) != crc) {
      // A bad CRC on the very last record is a torn write; earlier it is
      // real corruption. We can only be sure it is the tail if nothing
      // follows the declared record.
      if (rest.size() == len) {
        if (truncated_tail != nullptr) *truncated_tail = true;
        return Status::OK();
      }
      return Status::Corruption("wal record crc mismatch: " + path_);
    }
    apply(record);
    if (replayed_records_ != nullptr) replayed_records_->Increment();
    in = rest.substr(len);
  }
  return Status::OK();
}

Status WriteAheadLog::Truncate() {
  if (truncations_ != nullptr) truncations_->Increment();
  committed_len_ = 0;
  Status s = fs_->Delete(path_);
  if (s.IsNotFound()) return Status::OK();
  return s;
}

uint64_t WriteAheadLog::SizeBytes() const {
  auto info = fs_->Stat(path_);
  return info.ok() ? info->size : 0;
}

}  // namespace bistro

#ifndef BISTRO_KV_RECEIPTS_H_
#define BISTRO_KV_RECEIPTS_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/types.h"
#include "kv/kvstore.h"
#include "obs/metrics.h"

namespace bistro {

/// One row of the arrival_receipts database (paper §4.2): a file the
/// server received, with the feeds it was classified into.
struct ArrivalReceipt {
  FileId file_id = 0;
  std::string name;
  std::string staged_path;
  std::string rel_path;  // staging-root-relative path (subscriber dest)
  uint64_t size = 0;
  TimePoint arrival_time = 0;
  TimePoint data_time = 0;
  std::vector<FeedName> feeds;
};

/// The transactional receipt database: arrival receipts plus delivery
/// receipts, in one or more KvStores so a (arrival, delivery...) history
/// survives crashes and delivery queues can always be recomputed.
///
/// Key space:
///   a/<file_id16x>            -> encoded ArrivalReceipt
///   f/<feed>/<file_id16x>     -> ""            (per-feed index)
///   n/<name>                  -> file_id16x    (latest arrival by name;
///                                lets the landing-zone scan skip files a
///                                crash left behind after their receipt
///                                committed)
///   d/<subscriber>/<file_id16x> -> delivery time (decimal)
///   seq                       -> last assigned file id
///
/// Sharding (`shards` > 1): receipt I/O must scale with shard count, not
/// fanout, so keys hash-partition across independent KvStores (each with
/// its own WAL + group commit):
///
///   - a/, f/ and n/ rows live in shard `file_id % shards`. Colocating a
///     file's three rows keeps an arrival a single atomic batch in one
///     WAL — a torn group still loses only a record *suffix*, exactly as
///     in the single-store layout. FindIdByName consults every shard and
///     returns the highest id found (same-name re-arrivals may land in
///     different shards).
///   - d/ rows live in shard `hash(subscriber) % shards`, so a delivery
///     group commit partitions by subscriber and fsyncs only the shards
///     it touched, and one subscriber's Delivered lookups stay in one
///     store.
///   - `seq` lives in shard 0, bumped first as before: burned ids are
///     never reassigned no matter which shard's commit a crash severs.
///
/// shards == 1 (the default) keeps the seed's exact on-disk layout in
/// `dir` itself; shards > 1 use `dir/shard-<i>`.
class ReceiptDatabase {
 public:
  static Result<std::unique_ptr<ReceiptDatabase>> Open(
      FileSystem* fs, std::string dir,
      KvStore::Options options = KvStore::Options(), int shards = 1);

  /// Registers receipt counters (arrivals, deliveries, expiries) and the
  /// underlying WALs' counters in `registry`. Optional.
  void AttachMetrics(MetricsRegistry* registry);

  /// Assigns the next FileId (durable: survives restart without reuse).
  Result<FileId> NextFileId();

  /// Records an arrival receipt (and its per-feed index entries)
  /// atomically. `receipt.file_id` must already be assigned.
  Status RecordArrival(const ArrivalReceipt& receipt);

  /// Group commit (the ingest pipeline's receipt stage): assigns each
  /// receipt the next FileId and records the whole group with one WAL
  /// append + fsync per *touched shard*, amortizing the durability cost
  /// over the group. The sequence bump is shard 0's first record and
  /// shard 0 commits first, so a torn group (a crash mid-commit
  /// preserves a per-shard record prefix) can only burn ids — it can
  /// never reassign an id a surviving receipt already uses. On success
  /// every receipt's file_id is filled in, ascending in input order.
  Status RecordArrivalGroup(std::vector<ArrivalReceipt>* receipts);

  /// The latest arrival recorded under `name`, via the n/<name> index.
  /// NotFound when the name was never recorded (or predates the index).
  Result<FileId> FindIdByName(const std::string& name) const;

  /// Records that `file_id` was delivered to `subscriber` at `when`.
  Status RecordDelivery(const SubscriberName& subscriber, FileId file_id,
                        TimePoint when);

  /// One delivery receipt of a group commit.
  struct DeliveryRecord {
    SubscriberName subscriber;
    FileId file_id = 0;
    TimePoint when = 0;
  };

  /// Group commit for delivery receipts (mirror of RecordArrivalGroup):
  /// the group partitions by subscriber shard and rides one WAL append +
  /// one fsync per touched shard. Unlike arrivals there is no sequence to
  /// bump — a torn group simply loses a suffix of some shard's receipts,
  /// which at worst causes those files to be re-delivered after recovery;
  /// subscriber-side FileId dedupe absorbs the repeats, so grouping never
  /// weakens exactly-once.
  Status RecordDeliveryGroup(const std::vector<DeliveryRecord>& records);

  /// Whether the file has been delivered to the subscriber.
  bool Delivered(const SubscriberName& subscriber, FileId file_id) const;

  Result<ArrivalReceipt> GetArrival(FileId file_id) const;

  /// All file ids recorded for `feed`, ascending (merged across shards).
  std::vector<FileId> FilesInFeed(const FeedName& feed) const;

  /// Computes a subscriber's delivery queue: every file in any of `feeds`
  /// with arrival_time >= window_start that has no delivery receipt for
  /// `subscriber`. This is the paper's core reliability mechanism — queues
  /// are derived from receipts, so subscriber restarts, new subscriptions
  /// and feed redefinitions all reduce to recomputing this set.
  std::vector<ArrivalReceipt> ComputeDeliveryQueue(
      const SubscriberName& subscriber, const std::vector<FeedName>& feeds,
      TimePoint window_start = 0) const;

  /// Deletes all receipts for files with arrival_time < cutoff, returning
  /// the staged paths of expunged files (for the window cleaner).
  Result<std::vector<std::string>> ExpireBefore(TimePoint cutoff);

  /// Number of arrival receipts (summed across shards).
  size_t ArrivalCount() const;

  /// Shard 0's store (the only shard when sharding is off).
  KvStore* kv() { return kvs_[0].get(); }
  KvStore* kv(size_t shard) { return kvs_[shard].get(); }
  size_t shard_count() const { return kvs_.size(); }

 private:
  explicit ReceiptDatabase(std::vector<std::unique_ptr<KvStore>> kvs);

  size_t ShardOfId(FileId id) const {
    return static_cast<size_t>(id) % kvs_.size();
  }
  size_t ShardOfSubscriber(const SubscriberName& subscriber) const;

  std::vector<std::unique_ptr<KvStore>> kvs_;
  std::mutex seq_mu_;
  Counter* arrivals_recorded_ = nullptr;
  Counter* deliveries_recorded_ = nullptr;
  Counter* files_expired_ = nullptr;
  Counter* group_commits_ = nullptr;
  Counter* group_commit_files_ = nullptr;
  Counter* delivery_group_commits_ = nullptr;
  Counter* delivery_group_files_ = nullptr;
  Counter* shard_commits_ = nullptr;
};

}  // namespace bistro

#endif  // BISTRO_KV_RECEIPTS_H_

#include "kv/receipts.h"

#include <algorithm>

#include "common/strings.h"

namespace bistro {

namespace {

std::string FileIdKey(FileId id) { return StrFormat("%016llx", (unsigned long long)id); }

Result<FileId> ParseFileIdKey(std::string_view hex) {
  FileId id = 0;
  if (hex.size() != 16) return Status::Corruption("bad file id key");
  for (char c : hex) {
    id <<= 4;
    if (c >= '0' && c <= '9') {
      id |= static_cast<FileId>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      id |= static_cast<FileId>(c - 'a' + 10);
    } else {
      return Status::Corruption("bad file id key");
    }
  }
  return id;
}

// Receipt encoding: '\x1f'-separated fields (filenames never contain 0x1f).
constexpr char kSep = '\x1f';

std::string EncodeArrival(const ArrivalReceipt& r) {
  std::string out;
  out += r.name;
  out += kSep;
  out += r.staged_path;
  out += kSep;
  out += r.rel_path;
  out += kSep;
  out += std::to_string(r.size);
  out += kSep;
  out += std::to_string(r.arrival_time);
  out += kSep;
  out += std::to_string(r.data_time);
  out += kSep;
  for (size_t i = 0; i < r.feeds.size(); ++i) {
    if (i > 0) out += ',';
    out += r.feeds[i];
  }
  return out;
}

Result<ArrivalReceipt> DecodeArrival(FileId id, std::string_view enc) {
  auto fields = Split(enc, kSep);
  if (fields.size() != 7) return Status::Corruption("bad arrival receipt");
  ArrivalReceipt r;
  r.file_id = id;
  r.name = fields[0];
  r.staged_path = fields[1];
  r.rel_path = fields[2];
  auto size = ParseInt(fields[3]);
  auto at = ParseInt(fields[4]);
  auto dt = ParseInt(fields[5]);
  if (!size || !at || !dt) return Status::Corruption("bad arrival receipt ints");
  r.size = static_cast<uint64_t>(*size);
  r.arrival_time = *at;
  r.data_time = *dt;
  if (!fields[6].empty()) r.feeds = Split(fields[6], ',');
  return r;
}

uint64_t Fnv1a(std::string_view s) {
  uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

Result<std::unique_ptr<ReceiptDatabase>> ReceiptDatabase::Open(
    FileSystem* fs, std::string dir, KvStore::Options options, int shards) {
  if (shards < 1) {
    return Status::InvalidArgument("receipt shards must be at least 1");
  }
  std::vector<std::unique_ptr<KvStore>> kvs;
  if (shards == 1) {
    // The seed's layout, byte for byte: the store lives in `dir` itself.
    BISTRO_ASSIGN_OR_RETURN(auto kv, KvStore::Open(fs, std::move(dir), options));
    kvs.push_back(std::move(kv));
  } else {
    for (int i = 0; i < shards; ++i) {
      BISTRO_ASSIGN_OR_RETURN(
          auto kv,
          KvStore::Open(fs, dir + StrFormat("/shard-%03d", i), options));
      kvs.push_back(std::move(kv));
    }
  }
  return std::unique_ptr<ReceiptDatabase>(new ReceiptDatabase(std::move(kvs)));
}

ReceiptDatabase::ReceiptDatabase(std::vector<std::unique_ptr<KvStore>> kvs)
    : kvs_(std::move(kvs)) {}

size_t ReceiptDatabase::ShardOfSubscriber(
    const SubscriberName& subscriber) const {
  return kvs_.size() == 1 ? 0 : Fnv1a(subscriber) % kvs_.size();
}

Result<FileId> ReceiptDatabase::NextFileId() {
  std::lock_guard<std::mutex> lock(seq_mu_);
  FileId next = 1;
  auto cur = kvs_[0]->Get("seq");
  if (cur.ok()) {
    auto parsed = ParseInt(*cur);
    if (!parsed) return Status::Corruption("bad seq value");
    next = static_cast<FileId>(*parsed) + 1;
  }
  BISTRO_RETURN_IF_ERROR(kvs_[0]->Put("seq", std::to_string(next)));
  return next;
}

void ReceiptDatabase::AttachMetrics(MetricsRegistry* registry) {
  arrivals_recorded_ = registry->GetCounter(
      "bistro_receipts_arrivals_total", "Arrival receipts recorded");
  group_commits_ = registry->GetCounter(
      "bistro_receipts_group_commits_total",
      "Arrival receipt groups committed (one fsync per touched shard)");
  group_commit_files_ = registry->GetCounter(
      "bistro_receipts_group_commit_files_total",
      "Arrival receipts committed through groups");
  deliveries_recorded_ = registry->GetCounter(
      "bistro_receipts_deliveries_total", "Delivery receipts recorded");
  delivery_group_commits_ = registry->GetCounter(
      "bistro_receipts_delivery_group_commits_total",
      "Delivery receipt groups committed");
  delivery_group_files_ = registry->GetCounter(
      "bistro_receipts_delivery_group_files_total",
      "Delivery receipts committed through groups");
  files_expired_ = registry->GetCounter(
      "bistro_receipts_expired_total",
      "Receipts expunged by the history-window cleaner");
  shard_commits_ = registry->GetCounter(
      "bistro_receipts_shard_commits_total",
      "Per-shard WAL group commits (one fsync each)");
  registry->GetGauge("bistro_receipts_shards", "Receipt store shard count")
      ->Set(static_cast<int64_t>(kvs_.size()));
  // Shards share one WAL counter set; the series sum across stores.
  for (auto& kv : kvs_) kv->wal()->AttachMetrics(registry);
}

namespace {
std::vector<KvStore::Write> ArrivalBatch(const ArrivalReceipt& receipt) {
  std::vector<KvStore::Write> batch;
  std::string idkey = FileIdKey(receipt.file_id);
  batch.push_back(KvStore::Write::Put("a/" + idkey, EncodeArrival(receipt)));
  batch.push_back(KvStore::Write::Put("n/" + receipt.name, idkey));
  for (const auto& feed : receipt.feeds) {
    batch.push_back(KvStore::Write::Put("f/" + feed + "/" + idkey, ""));
  }
  return batch;
}
}  // namespace

Status ReceiptDatabase::RecordArrival(const ArrivalReceipt& receipt) {
  BISTRO_RETURN_IF_ERROR(
      kvs_[ShardOfId(receipt.file_id)]->Apply(ArrivalBatch(receipt)));
  if (arrivals_recorded_ != nullptr) arrivals_recorded_->Increment();
  return Status::OK();
}

Status ReceiptDatabase::RecordArrivalGroup(
    std::vector<ArrivalReceipt>* receipts) {
  if (receipts->empty()) return Status::OK();
  std::lock_guard<std::mutex> lock(seq_mu_);
  FileId seq = 0;
  auto cur = kvs_[0]->Get("seq");
  if (cur.ok()) {
    auto parsed = ParseInt(*cur);
    if (!parsed) return Status::Corruption("bad seq value");
    seq = static_cast<FileId>(*parsed);
  } else if (!cur.status().IsNotFound()) {
    return cur.status();
  }
  // Per-shard batch lists. The sequence bump is shard 0's first record
  // and shard 0 commits first: a torn group keeps a per-shard record
  // prefix, so the bump outlives any surviving receipt and the burned
  // ids are never reassigned after recovery. A file's a/, n/ and f/
  // rows are colocated in its id's shard, so each arrival stays one
  // atomic batch no matter how the group is severed.
  std::vector<std::vector<std::vector<KvStore::Write>>> by_shard(kvs_.size());
  by_shard[0].push_back({KvStore::Write::Put(
      "seq", std::to_string(seq + receipts->size()))});
  for (ArrivalReceipt& r : *receipts) {
    r.file_id = ++seq;
    by_shard[ShardOfId(r.file_id)].push_back(ArrivalBatch(r));
  }
  for (size_t i = 0; i < kvs_.size(); ++i) {
    if (by_shard[i].empty()) continue;
    BISTRO_RETURN_IF_ERROR(kvs_[i]->ApplyMulti(by_shard[i]));
    if (shard_commits_ != nullptr) shard_commits_->Increment();
  }
  if (arrivals_recorded_ != nullptr) {
    arrivals_recorded_->Increment(receipts->size());
  }
  if (group_commits_ != nullptr) {
    group_commits_->Increment();
    group_commit_files_->Increment(receipts->size());
  }
  return Status::OK();
}

Result<FileId> ReceiptDatabase::FindIdByName(const std::string& name) const {
  // Same-name re-arrivals may land in different shards; the newest wins,
  // so take the highest id across every shard's n/ index.
  std::optional<FileId> best;
  for (const auto& kv : kvs_) {
    auto idkey = kv->Get("n/" + name);
    if (!idkey.ok()) {
      if (idkey.status().IsNotFound()) continue;
      return idkey.status();
    }
    BISTRO_ASSIGN_OR_RETURN(FileId id, ParseFileIdKey(*idkey));
    if (!best || id > *best) best = id;
  }
  if (!best) return Status::NotFound("no arrival named " + name);
  return *best;
}

Status ReceiptDatabase::RecordDelivery(const SubscriberName& subscriber,
                                       FileId file_id, TimePoint when) {
  BISTRO_RETURN_IF_ERROR(kvs_[ShardOfSubscriber(subscriber)]->Put(
      "d/" + subscriber + "/" + FileIdKey(file_id), std::to_string(when)));
  if (deliveries_recorded_ != nullptr) deliveries_recorded_->Increment();
  return Status::OK();
}

Status ReceiptDatabase::RecordDeliveryGroup(
    const std::vector<DeliveryRecord>& records) {
  if (records.empty()) return Status::OK();
  // One batch per receipt, partitioned by subscriber shard: a torn group
  // (crash mid-commit keeps a per-shard batch prefix) loses only a
  // suffix of some shard's receipts, never corrupts one. Each touched
  // shard pays one WAL append + fsync regardless of fanout within it.
  std::vector<std::vector<std::vector<KvStore::Write>>> by_shard(kvs_.size());
  for (const DeliveryRecord& r : records) {
    by_shard[ShardOfSubscriber(r.subscriber)].push_back(
        {KvStore::Write::Put("d/" + r.subscriber + "/" + FileIdKey(r.file_id),
                             std::to_string(r.when))});
  }
  for (size_t i = 0; i < kvs_.size(); ++i) {
    if (by_shard[i].empty()) continue;
    BISTRO_RETURN_IF_ERROR(kvs_[i]->ApplyMulti(by_shard[i]));
    if (shard_commits_ != nullptr) shard_commits_->Increment();
  }
  if (deliveries_recorded_ != nullptr) {
    deliveries_recorded_->Increment(records.size());
  }
  if (delivery_group_commits_ != nullptr) {
    delivery_group_commits_->Increment();
    delivery_group_files_->Increment(records.size());
  }
  return Status::OK();
}

bool ReceiptDatabase::Delivered(const SubscriberName& subscriber,
                                FileId file_id) const {
  return kvs_[ShardOfSubscriber(subscriber)]->Contains(
      "d/" + subscriber + "/" + FileIdKey(file_id));
}

Result<ArrivalReceipt> ReceiptDatabase::GetArrival(FileId file_id) const {
  BISTRO_ASSIGN_OR_RETURN(std::string enc,
                          kvs_[ShardOfId(file_id)]->Get("a/" + FileIdKey(file_id)));
  return DecodeArrival(file_id, enc);
}

std::vector<FileId> ReceiptDatabase::FilesInFeed(const FeedName& feed) const {
  std::vector<FileId> out;
  std::string prefix = "f/" + feed + "/";
  for (const auto& kv : kvs_) {
    for (const auto& [key, _] : kv->ScanPrefix(prefix)) {
      auto id = ParseFileIdKey(std::string_view(key).substr(prefix.size()));
      if (id.ok()) out.push_back(*id);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<ArrivalReceipt> ReceiptDatabase::ComputeDeliveryQueue(
    const SubscriberName& subscriber, const std::vector<FeedName>& feeds,
    TimePoint window_start) const {
  std::vector<FileId> candidates;
  for (const auto& feed : feeds) {
    auto ids = FilesInFeed(feed);
    candidates.insert(candidates.end(), ids.begin(), ids.end());
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  std::vector<ArrivalReceipt> queue;
  for (FileId id : candidates) {
    if (Delivered(subscriber, id)) continue;
    auto receipt = GetArrival(id);
    if (!receipt.ok()) continue;  // feed index may outlive expired receipts
    if (receipt->arrival_time < window_start) continue;
    queue.push_back(std::move(*receipt));
  }
  return queue;
}

Result<std::vector<std::string>> ReceiptDatabase::ExpireBefore(TimePoint cutoff) {
  std::vector<std::string> expunged_paths;
  for (const auto& kv : kvs_) {
    // A file's a/, f/ and n/ rows are colocated, so each shard expires
    // independently with one atomic batch.
    std::vector<KvStore::Write> batch;
    for (const auto& [key, value] : kv->ScanPrefix("a/")) {
      auto id = ParseFileIdKey(std::string_view(key).substr(2));
      if (!id.ok()) continue;
      auto receipt = DecodeArrival(*id, value);
      if (!receipt.ok() || receipt->arrival_time >= cutoff) continue;
      expunged_paths.push_back(receipt->staged_path);
      batch.push_back(KvStore::Write::Del(key));
      std::string idkey = FileIdKey(*id);
      for (const auto& feed : receipt->feeds) {
        batch.push_back(KvStore::Write::Del("f/" + feed + "/" + idkey));
      }
      // Drop the name-index entry only if it still points at this id; a
      // newer same-name arrival owns the key now and must keep it.
      auto named = kv->Get("n/" + receipt->name);
      if (named.ok() && *named == idkey) {
        batch.push_back(KvStore::Write::Del("n/" + receipt->name));
      }
    }
    if (!batch.empty()) BISTRO_RETURN_IF_ERROR(kv->Apply(batch));
  }
  if (files_expired_ != nullptr) {
    files_expired_->Increment(expunged_paths.size());
  }
  return expunged_paths;
}

size_t ReceiptDatabase::ArrivalCount() const {
  size_t total = 0;
  for (const auto& kv : kvs_) total += kv->ScanPrefix("a/").size();
  return total;
}

}  // namespace bistro

#include "fault/injector.h"

namespace bistro {

FaultInjector::FaultInjector(FaultPlan plan, MetricsRegistry* metrics)
    : plan_(std::move(plan)), rng_(plan_.seed) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  vfs_write_errors_ =
      metrics->GetCounter("bistro_fault_vfs_write_errors_total",
                          "Injected clean write failures");
  vfs_torn_writes_ = metrics->GetCounter("bistro_fault_vfs_torn_writes_total",
                                         "Injected torn (partial) writes");
  vfs_sync_errors_ = metrics->GetCounter("bistro_fault_vfs_sync_errors_total",
                                         "Injected fsync failures");
  net_send_failures_ =
      metrics->GetCounter("bistro_fault_net_send_failures_total",
                          "Injected transient send failures");
  net_corruptions_ = metrics->GetCounter("bistro_fault_net_corruptions_total",
                                         "Injected payload corruptions");
  net_ack_losses_ = metrics->GetCounter("bistro_fault_net_ack_losses_total",
                                        "Injected acknowledgement losses");
  link_flaps_ = metrics->GetCounter("bistro_fault_link_flaps_total",
                                    "Scheduled link down transitions fired");
}

bool FaultInjector::InScope(const std::string& path) const {
  const std::string& scope = plan_.vfs.scope;
  return scope.empty() || path.compare(0, scope.size(), scope) == 0;
}

bool FaultInjector::InjectWriteError(const std::string& path) {
  if (!InScope(path) || !rng_.Bernoulli(plan_.vfs.write_error_prob)) {
    return false;
  }
  vfs_write_errors_->Increment();
  return true;
}

bool FaultInjector::InjectTornWrite(const std::string& path) {
  if (!InScope(path) || !rng_.Bernoulli(plan_.vfs.torn_write_prob)) {
    return false;
  }
  vfs_torn_writes_->Increment();
  return true;
}

bool FaultInjector::InjectSyncError(const std::string& path) {
  if (!InScope(path) || !rng_.Bernoulli(plan_.vfs.sync_error_prob)) {
    return false;
  }
  vfs_sync_errors_->Increment();
  return true;
}

bool FaultInjector::InjectSendFailure(const std::string& endpoint) {
  (void)endpoint;
  if (!rng_.Bernoulli(plan_.net.send_failure_prob)) return false;
  net_send_failures_->Increment();
  return true;
}

bool FaultInjector::InjectCorruption(const std::string& endpoint) {
  (void)endpoint;
  if (!rng_.Bernoulli(plan_.net.corrupt_prob)) return false;
  net_corruptions_->Increment();
  return true;
}

bool FaultInjector::InjectAckLoss(const std::string& endpoint) {
  (void)endpoint;
  if (!rng_.Bernoulli(plan_.net.ack_loss_prob)) return false;
  net_ack_losses_->Increment();
  return true;
}

void FaultInjector::CorruptPayload(std::string* payload) {
  if (payload->empty()) return;
  size_t at = static_cast<size_t>(rng_.Uniform(payload->size()));
  // XOR with a nonzero mask guarantees the byte actually changes.
  (*payload)[at] = static_cast<char>((*payload)[at] ^ 0x5A);
}

void FaultInjector::Arm(EventLoop* loop, SimNetwork* network) {
  for (const LinkDegrade& d : plan_.net.degrades) {
    network->DegradeLink(d.endpoint, d.factor);
  }
  for (const LinkFlap& f : plan_.net.flaps) {
    loop->PostAt(f.down_at, [this, network, endpoint = f.endpoint] {
      link_flaps_->Increment();
      network->SetOnline(endpoint, false);
    });
    loop->PostAt(f.up_at, [network, endpoint = f.endpoint] {
      network->SetOnline(endpoint, true);
    });
  }
}

uint64_t FaultInjector::injected() const {
  return vfs_write_errors_->value() + vfs_torn_writes_->value() +
         vfs_sync_errors_->value() + net_send_failures_->value() +
         net_corruptions_->value() + net_ack_losses_->value() +
         link_flaps_->value();
}

}  // namespace bistro

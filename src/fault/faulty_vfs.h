#ifndef BISTRO_FAULT_FAULTY_VFS_H_
#define BISTRO_FAULT_FAULTY_VFS_H_

#include <map>
#include <string>

#include "fault/injector.h"
#include "vfs/filesystem.h"

namespace bistro {

/// FileSystem decorator that injects write/sync faults per the injector's
/// plan and models crash durability for appended files.
///
/// Fault modes on mutating operations (scoped by the plan):
///  - clean write error: nothing lands, the caller sees IoError;
///  - torn write (AppendFile only): the first half of the data lands,
///    then IoError — the WAL-tail failure mode. A torn WriteFile instead
///    degrades to a clean error, because full-file writes model the
///    atomic write-tmp + rename pattern and never expose partial bytes;
///  - sync error: Sync reports IoError and the data stays volatile.
///
/// Crash model: for files mutated through AppendFile, the decorator
/// tracks the durable (last-synced) length; SimulateCrash() truncates
/// each such file back to it, discarding unsynced tail bytes — exactly
/// what a machine crash does to a buffered log. WriteFile and Rename are
/// treated as atomic and immediately durable (a deliberate
/// simplification: Bistro's full-file writes go through the
/// write-tmp + rename pattern, whose crash window the checkpoint logic
/// already tolerates; see DESIGN.md §8).
class FaultyFileSystem : public FileSystem {
 public:
  FaultyFileSystem(FileSystem* base, FaultInjector* injector)
      : base_(base), injector_(injector) {}

  Status WriteFile(const std::string& path, std::string_view data) override;
  Status AppendFile(const std::string& path, std::string_view data) override;
  Result<std::string> ReadFile(const std::string& path) override {
    return base_->ReadFile(path);
  }
  Result<FileInfo> Stat(const std::string& path) override {
    return base_->Stat(path);
  }
  Result<std::vector<FileInfo>> ListDir(const std::string& path) override {
    return base_->ListDir(path);
  }
  Status Rename(const std::string& from, const std::string& to) override;
  Status Delete(const std::string& path) override;
  Status Sync(const std::string& path) override;
  Status MkDirs(const std::string& path) override {
    return base_->MkDirs(path);
  }
  bool Exists(const std::string& path) override { return base_->Exists(path); }
  FsOpStats stats() const override { return base_->stats(); }
  void ResetStats() override { base_->ResetStats(); }

  /// Discards every unsynced appended byte, as a power loss would, and
  /// forgets the durability bookkeeping. The underlying filesystem
  /// survives; reopen stores on it to model a restart.
  Status SimulateCrash();

 private:
  /// Durable length of `path` right now: the synced length if tracked,
  /// otherwise the file's current size (pre-existing bytes count as
  /// durable — they were there before we started injecting).
  uint64_t DurableLength(const std::string& path);

  FileSystem* base_;
  FaultInjector* injector_;
  /// path -> durable (synced) length, for files touched by AppendFile.
  std::map<std::string, uint64_t> synced_len_;
};

}  // namespace bistro

#endif  // BISTRO_FAULT_FAULTY_VFS_H_

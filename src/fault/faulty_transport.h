#ifndef BISTRO_FAULT_FAULTY_TRANSPORT_H_
#define BISTRO_FAULT_FAULTY_TRANSPORT_H_

#include <string>

#include "fault/injector.h"
#include "net/transport.h"
#include "sim/event_loop.h"

namespace bistro {

/// Transport decorator injecting per-send faults from the injector's plan:
///
///  - send failure: the message never reaches the wire; the callback
///    fires with IoError (transient — retry should succeed eventually);
///  - payload corruption (kFileData only): one payload byte flips before
///    encoding, so the frame CRC still passes and only the end-to-end
///    payload CRC at the endpoint catches it (delivery NACKs Corruption);
///  - ack loss: the message is delivered and handled, but the sender's
///    callback reports IoError — the sender will redeliver, which the
///    endpoint's FileId dedupe must absorb for exactly-once semantics.
///
/// Link flaps/degradations are not injected here: they live in SimNetwork
/// (armed by FaultInjector::Arm), so they also affect probe traffic.
class FaultyTransport : public Transport {
 public:
  FaultyTransport(Transport* base, EventLoop* loop, FaultInjector* injector)
      : base_(base), loop_(loop), injector_(injector) {}

  void Send(const std::string& endpoint, const Message& msg,
            SendCallback done) override;
  /// Coalesced frames draw faults per item: dropped items NACK alone,
  /// corrupted/ack-lost items keep riding the frame, and the survivors
  /// are forwarded as one (smaller) bundle.
  void SendBundle(const std::string& endpoint,
                  std::vector<BundleItem> items) override;
  Duration EstimateCost(const std::string& endpoint,
                        uint64_t bytes) const override {
    return base_->EstimateCost(endpoint, bytes);
  }

 private:
  Transport* base_;
  EventLoop* loop_;
  FaultInjector* injector_;
};

}  // namespace bistro

#endif  // BISTRO_FAULT_FAULTY_TRANSPORT_H_

#ifndef BISTRO_FAULT_PLAN_H_
#define BISTRO_FAULT_PLAN_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/time.h"

namespace bistro {

/// Filesystem fault probabilities (per mutating operation).
struct VfsFaultSpec {
  /// A WriteFile/AppendFile fails cleanly: nothing lands, IoError.
  double write_error_prob = 0.0;
  /// A WriteFile/AppendFile lands a torn prefix, then reports IoError —
  /// the failure mode the WAL's CRC framing exists for.
  double torn_write_prob = 0.0;
  /// A Sync reports IoError (the data stays volatile).
  double sync_error_prob = 0.0;
  /// Only paths with this prefix are injected ("" = everything). Lets a
  /// plan target the receipt database without starving the landing zone.
  std::string scope;

  bool operator==(const VfsFaultSpec&) const = default;
};

/// One scheduled link outage: the endpoint goes offline at `down_at` and
/// heals at `up_at` (simulation time).
struct LinkFlap {
  std::string endpoint;
  TimePoint down_at = 0;
  TimePoint up_at = 0;

  bool operator==(const LinkFlap&) const = default;
};

/// Permanent link degradation: bandwidth / factor, latency * factor.
struct LinkDegrade {
  std::string endpoint;
  double factor = 1.0;

  bool operator==(const LinkDegrade&) const = default;
};

/// One scheduled fault on the link between two named transport parties
/// (real sockets, applied by PartitionableTransport; see fault/partition.h).
///
///   partition  severs the link both ways at `at`: established relays
///              close and new connections are accepted-then-closed, so
///              the sender sees resets and reconnect failures.
///   blackhole  silently discards bytes flowing `from` -> `to` from `at`
///              on; connections stay up, so the sender only learns via
///              ack timeouts — the half-open failure mode.
///   slow_link  adds `delay` to every forwarded chunk (both directions).
struct LinkFault {
  enum class Kind { kPartition, kBlackhole, kSlowLink };
  Kind kind = Kind::kPartition;
  std::string from;
  std::string to;
  Duration delay = 0;  // kSlowLink only
  TimePoint at = 0;

  bool operator==(const LinkFault&) const = default;
};

/// Scheduled heal of every fault on the `from`/`to` link at `at`.
struct LinkHeal {
  std::string from;
  std::string to;
  TimePoint at = 0;

  bool operator==(const LinkHeal&) const = default;
};

/// Network fault probabilities (per send) and scheduled link events.
struct NetFaultSpec {
  /// A send fails before reaching the wire (transient IoError).
  double send_failure_prob = 0.0;
  /// A kFileData payload is corrupted in flight (one byte flipped); the
  /// frame CRC is recomputed so only the end-to-end payload CRC catches it.
  double corrupt_prob = 0.0;
  /// Delivery succeeds but the acknowledgement is lost: the endpoint
  /// handles the message, the sender sees IoError and will redeliver —
  /// the case receipt/endpoint dedupe must absorb.
  double ack_loss_prob = 0.0;
  std::vector<LinkFlap> flaps;
  std::vector<LinkDegrade> degrades;
  std::vector<LinkFault> link_faults;
  std::vector<LinkHeal> link_heals;

  bool operator==(const NetFaultSpec&) const = default;
};

/// A complete, deterministic fault-injection plan. The same plan + seed
/// reproduces the same fault sequence byte-for-byte.
///
/// Syntax (config-style; see DESIGN.md §8):
///
///   fault_plan {
///     seed 42;
///     vfs {
///       write_error 0.02; torn_write 0.01; sync_error 0.005;
///       scope "/bistro/db";
///     }
///     net {
///       send_failure 0.1; corrupt 0.03; ack_loss 0.01;
///       flap "sub0" down 10m up 35m;
///       degrade "sub1" 4.0;
///       partition "up" "down" at 2s;
///       blackhole "down" "up" at 2s;
///       slow_link "up" "down" 200ms at 0s;
///       heal "up" "down" at 6s;
///     }
///   }
struct FaultPlan {
  uint64_t seed = 1;
  VfsFaultSpec vfs;
  NetFaultSpec net;

  bool operator==(const FaultPlan&) const = default;
};

/// Parses the fault-plan syntax above.
Result<FaultPlan> ParseFaultPlan(std::string_view text);

/// Emits a plan in the syntax ParseFaultPlan accepts (round-trips).
std::string FormatFaultPlan(const FaultPlan& plan);

}  // namespace bistro

#endif  // BISTRO_FAULT_PLAN_H_

#include "fault/plan.h"

#include <cctype>

#include "common/strings.h"

namespace bistro {

namespace {

// Token stream sharing the config language's lexical shape: identifiers,
// quoted strings, numbers with optional unit suffix, and {};, with '#'
// comments. Kept separate from config/parser.cc because fault plans are a
// test/ops artifact, not part of the server configuration.
enum class TokKind { kIdent, kString, kNumber, kPunct, kEof };

struct Token {
  TokKind kind = TokKind::kEof;
  std::string text;
  int line = 0;
};

Result<std::vector<Token>> Lex(std::string_view src) {
  std::vector<Token> out;
  size_t pos = 0;
  int line = 1;
  auto alpha = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) != 0;
  };
  auto digit = [](char c) {
    return std::isdigit(static_cast<unsigned char>(c)) != 0;
  };
  while (pos < src.size()) {
    char c = src[pos];
    if (c == '\n') {
      ++line;
      ++pos;
    } else if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos;
    } else if (c == '#') {
      while (pos < src.size() && src[pos] != '\n') ++pos;
    } else if (c == '"') {
      ++pos;
      std::string text;
      while (pos < src.size() && src[pos] != '"' && src[pos] != '\n') {
        text += src[pos++];
      }
      if (pos >= src.size() || src[pos] != '"') {
        return Status::InvalidArgument(
            StrFormat("fault plan line %d: unterminated string", line));
      }
      ++pos;
      out.push_back(Token{TokKind::kString, std::move(text), line});
    } else if (alpha(c) || c == '_') {
      size_t start = pos;
      while (pos < src.size() &&
             (alpha(src[pos]) || digit(src[pos]) || src[pos] == '_')) {
        ++pos;
      }
      out.push_back(
          Token{TokKind::kIdent, std::string(src.substr(start, pos - start)),
                line});
    } else if (digit(c) || c == '.' || c == '-') {
      size_t start = pos;
      if (src[pos] == '-') ++pos;
      while (pos < src.size() && (digit(src[pos]) || src[pos] == '.')) ++pos;
      while (pos < src.size() && alpha(src[pos])) ++pos;  // unit suffix
      out.push_back(
          Token{TokKind::kNumber, std::string(src.substr(start, pos - start)),
                line});
    } else if (c == '{' || c == '}' || c == ';') {
      out.push_back(Token{TokKind::kPunct, std::string(1, c), line});
      ++pos;
    } else {
      return Status::InvalidArgument(
          StrFormat("fault plan line %d: unexpected character '%c'", line, c));
    }
  }
  out.push_back(Token{TokKind::kEof, "", line});
  return out;
}

class PlanParser {
 public:
  explicit PlanParser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<FaultPlan> Run() {
    FaultPlan plan;
    BISTRO_RETURN_IF_ERROR(ExpectIdent("fault_plan"));
    BISTRO_RETURN_IF_ERROR(ExpectPunct("{"));
    while (!IsPunct("}")) {
      if (AtEof()) return Err("unterminated fault_plan");
      BISTRO_ASSIGN_OR_RETURN(std::string attr, TakeIdent());
      if (attr == "seed") {
        BISTRO_ASSIGN_OR_RETURN(int64_t v, TakeInt());
        plan.seed = static_cast<uint64_t>(v);
        BISTRO_RETURN_IF_ERROR(ExpectPunct(";"));
      } else if (attr == "vfs") {
        BISTRO_RETURN_IF_ERROR(ParseVfs(&plan.vfs));
      } else if (attr == "net") {
        BISTRO_RETURN_IF_ERROR(ParseNet(&plan.net));
      } else {
        return Err("unknown fault_plan attribute '" + attr + "'");
      }
    }
    ++pos_;  // consume '}'
    if (!AtEof()) return Err("trailing input after fault_plan");
    return plan;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  bool AtEof() const { return Peek().kind == TokKind::kEof; }
  bool IsPunct(std::string_view p) const {
    return Peek().kind == TokKind::kPunct && Peek().text == p;
  }

  Status Err(const std::string& what) const {
    return Status::InvalidArgument(
        StrFormat("fault plan line %d: %s (got '%s')", Peek().line,
                  what.c_str(), Peek().text.c_str()));
  }

  Status ExpectIdent(std::string_view word) {
    if (Peek().kind != TokKind::kIdent || Peek().text != word) {
      return Err("expected '" + std::string(word) + "'");
    }
    ++pos_;
    return Status::OK();
  }

  Status ExpectPunct(std::string_view p) {
    if (!IsPunct(p)) return Err("expected '" + std::string(p) + "'");
    ++pos_;
    return Status::OK();
  }

  Result<std::string> TakeIdent() {
    if (Peek().kind != TokKind::kIdent) return Err("expected identifier");
    return tokens_[pos_++].text;
  }

  Result<std::string> TakeString() {
    if (Peek().kind != TokKind::kString) return Err("expected quoted string");
    return tokens_[pos_++].text;
  }

  Result<int64_t> TakeInt() {
    if (Peek().kind != TokKind::kNumber) return Err("expected integer");
    auto v = ParseInt(Peek().text);
    if (!v) return Err("bad integer");
    ++pos_;
    return *v;
  }

  Result<double> TakeProb() {
    if (Peek().kind != TokKind::kNumber) return Err("expected probability");
    auto v = ParseDouble(Peek().text);
    if (!v || *v < 0.0 || *v > 1.0) return Err("probability must be in [0,1]");
    ++pos_;
    return *v;
  }

  Result<double> TakeDouble() {
    if (Peek().kind != TokKind::kNumber) return Err("expected number");
    auto v = ParseDouble(Peek().text);
    if (!v) return Err("bad number");
    ++pos_;
    return *v;
  }

  Result<Duration> TakeDuration() {
    if (Peek().kind != TokKind::kNumber) return Err("expected duration");
    auto v = ParseDuration(Peek().text);
    if (!v) return Err("bad duration");
    ++pos_;
    return *v;
  }

  Status ParseVfs(VfsFaultSpec* vfs) {
    BISTRO_RETURN_IF_ERROR(ExpectPunct("{"));
    while (!IsPunct("}")) {
      if (AtEof()) return Err("unterminated vfs block");
      BISTRO_ASSIGN_OR_RETURN(std::string attr, TakeIdent());
      if (attr == "write_error") {
        BISTRO_ASSIGN_OR_RETURN(vfs->write_error_prob, TakeProb());
      } else if (attr == "torn_write") {
        BISTRO_ASSIGN_OR_RETURN(vfs->torn_write_prob, TakeProb());
      } else if (attr == "sync_error") {
        BISTRO_ASSIGN_OR_RETURN(vfs->sync_error_prob, TakeProb());
      } else if (attr == "scope") {
        BISTRO_ASSIGN_OR_RETURN(vfs->scope, TakeString());
      } else {
        return Err("unknown vfs attribute '" + attr + "'");
      }
      BISTRO_RETURN_IF_ERROR(ExpectPunct(";"));
    }
    ++pos_;  // consume '}'
    return Status::OK();
  }

  Status ParseNet(NetFaultSpec* net) {
    BISTRO_RETURN_IF_ERROR(ExpectPunct("{"));
    while (!IsPunct("}")) {
      if (AtEof()) return Err("unterminated net block");
      BISTRO_ASSIGN_OR_RETURN(std::string attr, TakeIdent());
      if (attr == "send_failure") {
        BISTRO_ASSIGN_OR_RETURN(net->send_failure_prob, TakeProb());
      } else if (attr == "corrupt") {
        BISTRO_ASSIGN_OR_RETURN(net->corrupt_prob, TakeProb());
      } else if (attr == "ack_loss") {
        BISTRO_ASSIGN_OR_RETURN(net->ack_loss_prob, TakeProb());
      } else if (attr == "flap") {
        LinkFlap flap;
        BISTRO_ASSIGN_OR_RETURN(flap.endpoint, TakeString());
        BISTRO_RETURN_IF_ERROR(ExpectIdent("down"));
        BISTRO_ASSIGN_OR_RETURN(flap.down_at, TakeDuration());
        BISTRO_RETURN_IF_ERROR(ExpectIdent("up"));
        BISTRO_ASSIGN_OR_RETURN(flap.up_at, TakeDuration());
        if (flap.up_at <= flap.down_at) return Err("flap must heal after it fails");
        net->flaps.push_back(std::move(flap));
      } else if (attr == "degrade") {
        LinkDegrade deg;
        BISTRO_ASSIGN_OR_RETURN(deg.endpoint, TakeString());
        BISTRO_ASSIGN_OR_RETURN(deg.factor, TakeDouble());
        if (deg.factor < 1.0) return Err("degrade factor must be >= 1");
        net->degrades.push_back(std::move(deg));
      } else if (attr == "partition" || attr == "blackhole" ||
                 attr == "slow_link") {
        LinkFault fault;
        fault.kind = attr == "partition"   ? LinkFault::Kind::kPartition
                     : attr == "blackhole" ? LinkFault::Kind::kBlackhole
                                           : LinkFault::Kind::kSlowLink;
        BISTRO_ASSIGN_OR_RETURN(fault.from, TakeString());
        BISTRO_ASSIGN_OR_RETURN(fault.to, TakeString());
        if (fault.from == fault.to) {
          return Err(attr + " endpoints must differ");
        }
        if (fault.kind == LinkFault::Kind::kSlowLink) {
          BISTRO_ASSIGN_OR_RETURN(fault.delay, TakeDuration());
          if (fault.delay <= 0) return Err("slow_link delay must be positive");
        }
        BISTRO_RETURN_IF_ERROR(ExpectIdent("at"));
        BISTRO_ASSIGN_OR_RETURN(fault.at, TakeDuration());
        net->link_faults.push_back(std::move(fault));
      } else if (attr == "heal") {
        LinkHeal heal;
        BISTRO_ASSIGN_OR_RETURN(heal.from, TakeString());
        BISTRO_ASSIGN_OR_RETURN(heal.to, TakeString());
        if (heal.from == heal.to) return Err("heal endpoints must differ");
        BISTRO_RETURN_IF_ERROR(ExpectIdent("at"));
        BISTRO_ASSIGN_OR_RETURN(heal.at, TakeDuration());
        net->link_heals.push_back(std::move(heal));
      } else {
        return Err("unknown net attribute '" + attr + "'");
      }
      BISTRO_RETURN_IF_ERROR(ExpectPunct(";"));
    }
    ++pos_;  // consume '}'
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

std::string DurationLiteral(Duration d) {
  if (d % kHour == 0 && d != 0) return StrFormat("%lldh", (long long)(d / kHour));
  if (d % kMinute == 0 && d != 0) {
    return StrFormat("%lldm", (long long)(d / kMinute));
  }
  if (d % kSecond == 0) return StrFormat("%llds", (long long)(d / kSecond));
  if (d % kMillisecond == 0) {
    return StrFormat("%lldms", (long long)(d / kMillisecond));
  }
  return StrFormat("%lldus", (long long)d);
}

}  // namespace

Result<FaultPlan> ParseFaultPlan(std::string_view text) {
  BISTRO_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  PlanParser parser(std::move(tokens));
  return parser.Run();
}

std::string FormatFaultPlan(const FaultPlan& plan) {
  std::string out = "fault_plan {\n";
  out += StrFormat("  seed %llu;\n", (unsigned long long)plan.seed);
  const VfsFaultSpec& v = plan.vfs;
  if (v != VfsFaultSpec{}) {
    out += "  vfs {\n";
    if (v.write_error_prob > 0) {
      out += StrFormat("    write_error %g;\n", v.write_error_prob);
    }
    if (v.torn_write_prob > 0) {
      out += StrFormat("    torn_write %g;\n", v.torn_write_prob);
    }
    if (v.sync_error_prob > 0) {
      out += StrFormat("    sync_error %g;\n", v.sync_error_prob);
    }
    if (!v.scope.empty()) out += "    scope \"" + v.scope + "\";\n";
    out += "  }\n";
  }
  const NetFaultSpec& n = plan.net;
  if (n != NetFaultSpec{}) {
    out += "  net {\n";
    if (n.send_failure_prob > 0) {
      out += StrFormat("    send_failure %g;\n", n.send_failure_prob);
    }
    if (n.corrupt_prob > 0) {
      out += StrFormat("    corrupt %g;\n", n.corrupt_prob);
    }
    if (n.ack_loss_prob > 0) {
      out += StrFormat("    ack_loss %g;\n", n.ack_loss_prob);
    }
    for (const LinkFlap& f : n.flaps) {
      out += "    flap \"" + f.endpoint + "\" down " +
             DurationLiteral(f.down_at) + " up " + DurationLiteral(f.up_at) +
             ";\n";
    }
    for (const LinkDegrade& d : n.degrades) {
      out += "    degrade \"" + d.endpoint + "\" " +
             StrFormat("%g", d.factor) + ";\n";
    }
    for (const LinkFault& f : n.link_faults) {
      const char* verb = f.kind == LinkFault::Kind::kPartition ? "partition"
                         : f.kind == LinkFault::Kind::kBlackhole
                             ? "blackhole"
                             : "slow_link";
      out += std::string("    ") + verb + " \"" + f.from + "\" \"" + f.to +
             "\"";
      if (f.kind == LinkFault::Kind::kSlowLink) {
        out += " " + DurationLiteral(f.delay);
      }
      out += " at " + DurationLiteral(f.at) + ";\n";
    }
    for (const LinkHeal& h : n.link_heals) {
      out += "    heal \"" + h.from + "\" \"" + h.to + "\" at " +
             DurationLiteral(h.at) + ";\n";
    }
    out += "  }\n";
  }
  out += "}\n";
  return out;
}

}  // namespace bistro

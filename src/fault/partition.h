#ifndef BISTRO_FAULT_PARTITION_H_
#define BISTRO_FAULT_PARTITION_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fault/plan.h"
#include "net/socket_transport.h"

namespace bistro {

/// Deterministic network-partition chaos harness for the real TCP
/// transport — no root, no iptables, usable from tests and benches.
///
/// For each peer a shim listener is interposed on 127.0.0.1: the inner
/// SocketTransport connects to the shim, the shim relays bytes to the
/// peer's real address, and fault directives act on the relay:
///
///   Partition  severs the link both ways: established relays close
///              (the sender sees a reset) and new connections are
///              accepted-then-closed (reconnect attempts keep failing),
///              so the peer looks dead at the TCP level.
///   Blackhole  silently discards bytes in one direction while the
///              connection stays established — the half-open failure
///              mode only ack timeouts can detect. Dropping the
///              peer->self direction loses acks after delivery, the
///              duplicate-generating case receipt dedupe must absorb.
///   SlowLink   delays every forwarded chunk by a fixed duration.
///   Heal       restores clean forwarding.
///
/// Everything runs on the owning (real-clock) EventLoop's thread, like
/// the SocketTransport itself; directives are plain method calls or are
/// scheduled from a FaultPlan's `partition`/`blackhole`/`slow_link`/
/// `heal` entries via Arm(), so a partition matrix is a parseable,
/// seedable artifact rather than ad-hoc test code.
///
/// The class is also a Transport that delegates to the inner
/// SocketTransport, so a server wired through it is bit-for-bit the
/// production wiring plus an interposed wire.
class PartitionableTransport : public Transport {
 public:
  /// `self_name` is this side's name in FaultPlan link directives (e.g.
  /// "up"); the other end of each directive names a shimmed peer.
  PartitionableTransport(EventLoop* loop, SocketTransport* inner,
                         std::string self_name);
  ~PartitionableTransport() override;

  PartitionableTransport(const PartitionableTransport&) = delete;
  PartitionableTransport& operator=(const PartitionableTransport&) = delete;

  /// Interposes a shim in front of `target_address` and returns the
  /// shim's own "127.0.0.1:port" — point the inner transport (or the
  /// peer's config entry) at it. Idempotent per name: re-shimming an
  /// existing peer re-targets it and keeps the shim address.
  Result<std::string> ShimPeer(const std::string& name,
                               const std::string& target_address);

  /// ShimPeer + inner->AddPeer(name, shim address) in one step.
  Status AddPeer(const std::string& name, const std::string& target_address);

  /// Shim address for a shimmed peer ("" when unknown).
  std::string ShimAddress(const std::string& name) const;

  // ------------------------------------------------------- directives
  void Partition(const std::string& peer);
  /// Discards bytes flowing self->peer (`to_peer` true) or peer->self.
  void Blackhole(const std::string& peer, bool to_peer);
  void SlowLink(const std::string& peer, Duration delay);
  void Heal(const std::string& peer);

  /// Schedules every link directive of `plan.net` that names self on one
  /// side and a shimmed peer on the other, relative to now. Directives
  /// for unknown parties are ignored (the same plan can arm several
  /// harnesses). Call after the peers are shimmed.
  void Arm(const FaultPlan& plan);

  /// Closes every shim and relay. Called by the destructor.
  void Shutdown();

  // ------------------------------------------- introspection (tests)
  SocketTransport* inner() { return inner_; }
  /// Relay connections accepted and immediately closed while severed.
  uint64_t severed_rejects() const { return severed_rejects_; }
  /// Bytes discarded by blackholes.
  uint64_t dropped_bytes() const { return dropped_bytes_; }
  /// Chunks forwarded late by slow links.
  uint64_t delayed_chunks() const { return delayed_chunks_; }
  /// Live relay connections through all shims.
  size_t relay_count() const { return relays_.size(); }

  // ----------------------------------------------------- Transport API
  void Send(const std::string& endpoint, const Message& msg,
            SendCallback done) override {
    inner_->Send(endpoint, msg, std::move(done));
  }
  void SendBundle(const std::string& endpoint,
                  std::vector<BundleItem> items) override {
    inner_->SendBundle(endpoint, std::move(items));
  }
  Duration EstimateCost(const std::string& endpoint,
                        uint64_t bytes) const override {
    return inner_->EstimateCost(endpoint, bytes);
  }
  void AttachMetrics(MetricsRegistry* registry) override {
    inner_->AttachMetrics(registry);
  }

 private:
  struct Shim;

  /// One client<->server byte relay through a shim. Either side closing
  /// (or a connect failure) tears the whole relay down; the inner
  /// transport observes an ordinary TCP disconnect.
  struct Relay {
    uint64_t id = 0;
    Shim* shim = nullptr;
    int cfd = -1;  // accepted inner-transport side
    int sfd = -1;  // outbound side toward the real peer
    bool server_connecting = false;
    bool cfd_want_write = false;
    bool sfd_want_write = false;
    /// Pending chunks per direction; the head chunk may be partially
    /// written (head offset bytes already sent).
    std::deque<std::string> to_server, to_client;
    size_t to_server_head = 0, to_client_head = 0;
  };

  struct Shim {
    std::string peer;
    std::string target;
    int listen_fd = -1;
    int port = -1;
    bool severed = false;
    bool drop_to_peer = false;    // discard client->server bytes
    bool drop_from_peer = false;  // discard server->client bytes
    Duration delay = 0;
    std::vector<uint64_t> relay_ids;
  };

  void OnShimAccept(const std::string& peer);
  void OnRelayEvent(uint64_t id, bool client_side, bool readable,
                    bool writable);
  /// Reads one side until EAGAIN, routing chunks per the shim's fault
  /// state. Returns false when the side died (caller destroys).
  bool PumpReads(Relay* relay, bool client_side);
  void DeliverChunk(Relay* relay, bool to_server, std::string chunk);
  /// Writes queued chunks for one direction until EAGAIN or empty.
  /// Returns false on a dead socket.
  bool FlushSide(Relay* relay, bool to_server);
  void DestroyRelay(uint64_t id);
  void DestroyShimRelays(Shim* shim);

  EventLoop* loop_;
  SocketTransport* inner_;
  std::string self_name_;

  std::map<std::string, std::unique_ptr<Shim>> shims_;
  std::map<uint64_t, std::unique_ptr<Relay>> relays_;
  uint64_t next_relay_id_ = 1;
  bool shut_down_ = false;
  /// Liveness token for loop timers (slow-link deliveries, armed plan
  /// directives): they no-op once the harness is gone.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);

  uint64_t severed_rejects_ = 0;
  uint64_t dropped_bytes_ = 0;
  uint64_t delayed_chunks_ = 0;
};

}  // namespace bistro

#endif  // BISTRO_FAULT_PARTITION_H_

#include "fault/faulty_vfs.h"

namespace bistro {

uint64_t FaultyFileSystem::DurableLength(const std::string& path) {
  auto it = synced_len_.find(path);
  if (it != synced_len_.end()) return it->second;
  auto info = base_->Stat(path);
  return info.ok() ? info->size : 0;
}

Status FaultyFileSystem::WriteFile(const std::string& path,
                                   std::string_view data) {
  if (injector_->InjectWriteError(path)) {
    return Status::IoError("injected write error: " + path);
  }
  if (injector_->InjectTornWrite(path)) {
    // WriteFile models the write-tmp + rename pattern (see the class
    // comment), so a torn full-file write never exposes half-written
    // bytes: the replace simply does not happen and the old content —
    // a committed WAL prefix, say — stays fully intact.
    return Status::IoError("injected torn write: " + path);
  }
  Status s = base_->WriteFile(path, data);
  // A full rewrite resets append-durability tracking for the path.
  if (s.ok()) synced_len_.erase(path);
  return s;
}

Status FaultyFileSystem::AppendFile(const std::string& path,
                                    std::string_view data) {
  if (injector_->InjectWriteError(path)) {
    return Status::IoError("injected append error: " + path);
  }
  // Record the durable baseline before the first tracked append, so a
  // crash can roll back to it.
  uint64_t durable = DurableLength(path);
  if (injector_->InjectTornWrite(path)) {
    (void)base_->AppendFile(path, data.substr(0, data.size() / 2));
    synced_len_[path] = durable;
    return Status::IoError("injected torn append: " + path);
  }
  Status s = base_->AppendFile(path, data);
  if (s.ok()) synced_len_[path] = durable;  // new bytes are volatile
  return s;
}

Status FaultyFileSystem::Rename(const std::string& from, const std::string& to) {
  if (injector_->InjectWriteError(to)) {
    return Status::IoError("injected rename error: " + to);
  }
  Status s = base_->Rename(from, to);
  if (s.ok()) {
    synced_len_.erase(from);
    synced_len_.erase(to);  // renamed-in contents are treated as durable
  }
  return s;
}

Status FaultyFileSystem::Delete(const std::string& path) {
  Status s = base_->Delete(path);
  if (s.ok()) synced_len_.erase(path);
  return s;
}

Status FaultyFileSystem::Sync(const std::string& path) {
  if (injector_->InjectSyncError(path)) {
    return Status::IoError("injected sync error: " + path);
  }
  BISTRO_RETURN_IF_ERROR(base_->Sync(path));
  auto it = synced_len_.find(path);
  if (it != synced_len_.end()) {
    auto info = base_->Stat(path);
    if (info.ok()) it->second = info->size;
  }
  return Status::OK();
}

Status FaultyFileSystem::SimulateCrash() {
  for (const auto& [path, durable] : synced_len_) {
    auto data = base_->ReadFile(path);
    if (!data.ok()) continue;  // deleted since; nothing to roll back
    if (data->size() <= durable) continue;
    BISTRO_RETURN_IF_ERROR(
        base_->WriteFile(path, std::string_view(*data).substr(0, durable)));
  }
  synced_len_.clear();
  return Status::OK();
}

}  // namespace bistro

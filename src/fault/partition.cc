#include "fault/partition.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace bistro {

namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

PartitionableTransport::PartitionableTransport(EventLoop* loop,
                                               SocketTransport* inner,
                                               std::string self_name)
    : loop_(loop), inner_(inner), self_name_(std::move(self_name)) {}

PartitionableTransport::~PartitionableTransport() { Shutdown(); }

Result<std::string> PartitionableTransport::ShimPeer(
    const std::string& name, const std::string& target_address) {
  BISTRO_ASSIGN_OR_RETURN(auto target, ParseInetAddress(target_address));
  (void)target;  // validated; the relay re-parses per connect
  auto it = shims_.find(name);
  if (it != shims_.end()) {
    // Re-targeted (peer restarted on a fresh port): keep the shim address
    // stable so the inner transport's peer entry stays valid.
    it->second->target = target_address;
    return "127.0.0.1:" + std::to_string(it->second->port);
  }

  int fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return Status::IoError(Errno("shim socket"));
  sockaddr_in sin{};
  sin.sin_family = AF_INET;
  sin.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  sin.sin_port = 0;
  if (bind(fd, reinterpret_cast<sockaddr*>(&sin), sizeof(sin)) != 0 ||
      listen(fd, SOMAXCONN) != 0) {
    Status s = Status::IoError(Errno("shim bind/listen"));
    close(fd);
    return s;
  }
  socklen_t len = sizeof(sin);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&sin), &len) != 0) {
    Status s = Status::IoError(Errno("shim getsockname"));
    close(fd);
    return s;
  }

  auto shim = std::make_unique<Shim>();
  shim->peer = name;
  shim->target = target_address;
  shim->listen_fd = fd;
  shim->port = ntohs(sin.sin_port);
  loop_->WatchFd(fd, [this, name](bool readable, bool) {
    if (readable) OnShimAccept(name);
  });
  int port = shim->port;
  shims_[name] = std::move(shim);
  return "127.0.0.1:" + std::to_string(port);
}

Status PartitionableTransport::AddPeer(const std::string& name,
                                       const std::string& target_address) {
  BISTRO_ASSIGN_OR_RETURN(std::string shim_addr,
                          ShimPeer(name, target_address));
  inner_->AddPeer(name, shim_addr);
  return Status::OK();
}

std::string PartitionableTransport::ShimAddress(const std::string& name) const {
  auto it = shims_.find(name);
  if (it == shims_.end()) return "";
  return "127.0.0.1:" + std::to_string(it->second->port);
}

void PartitionableTransport::Shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  *alive_ = false;
  std::vector<uint64_t> ids;
  for (const auto& [id, relay] : relays_) ids.push_back(id);
  for (uint64_t id : ids) DestroyRelay(id);
  for (auto& [name, shim] : shims_) {
    if (shim->listen_fd >= 0) {
      loop_->UnwatchFd(shim->listen_fd);
      close(shim->listen_fd);
      shim->listen_fd = -1;
    }
  }
}

// ---------------------------------------------------------- directives

void PartitionableTransport::Partition(const std::string& peer) {
  auto it = shims_.find(peer);
  if (it == shims_.end()) return;
  it->second->severed = true;
  DestroyShimRelays(it->second.get());
}

void PartitionableTransport::Blackhole(const std::string& peer, bool to_peer) {
  auto it = shims_.find(peer);
  if (it == shims_.end()) return;
  if (to_peer) {
    it->second->drop_to_peer = true;
  } else {
    it->second->drop_from_peer = true;
  }
}

void PartitionableTransport::SlowLink(const std::string& peer,
                                      Duration delay) {
  auto it = shims_.find(peer);
  if (it == shims_.end()) return;
  it->second->delay = delay;
}

void PartitionableTransport::Heal(const std::string& peer) {
  auto it = shims_.find(peer);
  if (it == shims_.end()) return;
  Shim* shim = it->second.get();
  shim->severed = false;
  shim->drop_to_peer = false;
  shim->drop_from_peer = false;
  shim->delay = 0;
}

void PartitionableTransport::Arm(const FaultPlan& plan) {
  std::weak_ptr<bool> alive = alive_;
  for (const LinkFault& fault : plan.net.link_faults) {
    std::string peer;
    bool to_peer = true;
    if (fault.from == self_name_ && shims_.count(fault.to) != 0) {
      peer = fault.to;
    } else if (fault.to == self_name_ && shims_.count(fault.from) != 0) {
      peer = fault.from;
      to_peer = false;
    } else {
      continue;  // some other harness's link
    }
    LinkFault::Kind kind = fault.kind;
    Duration delay = fault.delay;
    loop_->PostAfter(fault.at, [this, alive, peer, kind, to_peer, delay] {
      auto self = alive.lock();
      if (self == nullptr || !*self) return;
      switch (kind) {
        case LinkFault::Kind::kPartition:
          Partition(peer);
          break;
        case LinkFault::Kind::kBlackhole:
          Blackhole(peer, to_peer);
          break;
        case LinkFault::Kind::kSlowLink:
          SlowLink(peer, delay);
          break;
      }
    });
  }
  for (const LinkHeal& heal : plan.net.link_heals) {
    std::string peer;
    if (heal.from == self_name_ && shims_.count(heal.to) != 0) {
      peer = heal.to;
    } else if (heal.to == self_name_ && shims_.count(heal.from) != 0) {
      peer = heal.from;
    } else {
      continue;
    }
    loop_->PostAfter(heal.at, [this, alive, peer] {
      auto self = alive.lock();
      if (self == nullptr || !*self) return;
      Heal(peer);
    });
  }
}

// --------------------------------------------------------------- relays

void PartitionableTransport::OnShimAccept(const std::string& peer) {
  auto sit = shims_.find(peer);
  if (sit == shims_.end()) return;
  Shim* shim = sit->second.get();
  for (;;) {
    int cfd = accept4(shim->listen_fd, nullptr, nullptr,
                      SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (cfd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient accept error
    }
    if (shim->severed) {
      // The deterministic partition: the kernel completed the TCP
      // handshake from the backlog, but the connection dies before a
      // byte flows — the inner transport sees an immediate reset and
      // schedules a reconnect that will fail the same way.
      close(cfd);
      ++severed_rejects_;
      continue;
    }
    auto target = ParseInetAddress(shim->target);
    if (!target.ok()) {
      close(cfd);
      continue;
    }
    int sfd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (sfd < 0) {
      close(cfd);
      continue;
    }
    sockaddr_in sin{};
    sin.sin_family = AF_INET;
    sin.sin_addr.s_addr = target->first;
    sin.sin_port = htons(target->second);
    int rc = connect(sfd, reinterpret_cast<sockaddr*>(&sin), sizeof(sin));
    if (rc != 0 && errno != EINPROGRESS) {
      close(cfd);
      close(sfd);
      continue;
    }

    auto relay = std::make_unique<Relay>();
    relay->id = next_relay_id_++;
    relay->shim = shim;
    relay->cfd = cfd;
    relay->sfd = sfd;
    relay->server_connecting = rc != 0;
    uint64_t id = relay->id;
    shim->relay_ids.push_back(id);
    relays_[id] = std::move(relay);
    loop_->WatchFd(cfd, [this, id](bool readable, bool writable) {
      OnRelayEvent(id, /*client_side=*/true, readable, writable);
    });
    loop_->WatchFd(sfd, [this, id](bool readable, bool writable) {
      OnRelayEvent(id, /*client_side=*/false, readable, writable);
    });
    if (relays_[id]->server_connecting) {
      relays_[id]->sfd_want_write = true;
      loop_->SetFdWriteInterest(sfd, true);
    }
  }
}

void PartitionableTransport::OnRelayEvent(uint64_t id, bool client_side,
                                          bool readable, bool writable) {
  auto it = relays_.find(id);
  if (it == relays_.end()) return;
  Relay* relay = it->second.get();

  if (!client_side && relay->server_connecting) {
    int err = 0;
    socklen_t len = sizeof(err);
    if (getsockopt(relay->sfd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      err = errno;
    }
    if (err != 0) {
      DestroyRelay(id);
      return;
    }
    relay->server_connecting = false;
    if (!FlushSide(relay, /*to_server=*/true)) {
      DestroyRelay(id);
      return;
    }
  }

  if (writable) {
    // cfd drains the to_client queue, sfd the to_server queue.
    if (!FlushSide(relay, /*to_server=*/!client_side)) {
      DestroyRelay(id);
      return;
    }
  }
  if (readable) {
    if (!PumpReads(relay, client_side)) {
      DestroyRelay(id);
      return;
    }
  }
}

bool PartitionableTransport::PumpReads(Relay* relay, bool client_side) {
  Shim* shim = relay->shim;
  const bool to_server = client_side;  // client bytes head toward the peer
  int fd = client_side ? relay->cfd : relay->sfd;
  char buf[65536];
  for (;;) {
    ssize_t n = read(fd, buf, sizeof(buf));
    if (n > 0) {
      if ((to_server && shim->drop_to_peer) ||
          (!to_server && shim->drop_from_peer)) {
        dropped_bytes_ += static_cast<uint64_t>(n);
        continue;
      }
      std::string chunk(buf, static_cast<size_t>(n));
      if (shim->delay > 0) {
        ++delayed_chunks_;
        uint64_t id = relay->id;
        std::weak_ptr<bool> alive = alive_;
        loop_->PostAfter(
            shim->delay,
            [this, alive, id, to_server, chunk = std::move(chunk)]() mutable {
              auto self = alive.lock();
              if (self == nullptr || !*self) return;
              auto it = relays_.find(id);
              if (it == relays_.end()) return;  // relay died while delayed
              Relay* r = it->second.get();
              DeliverChunk(r, to_server, std::move(chunk));
              if (!FlushSide(r, to_server)) DestroyRelay(id);
            });
        continue;
      }
      DeliverChunk(relay, to_server, std::move(chunk));
      if (!FlushSide(relay, to_server)) return false;
      continue;
    }
    if (n == 0) return false;  // clean close: tear down both sides
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    return false;
  }
}

void PartitionableTransport::DeliverChunk(Relay* relay, bool to_server,
                                          std::string chunk) {
  if (to_server) {
    relay->to_server.push_back(std::move(chunk));
  } else {
    relay->to_client.push_back(std::move(chunk));
  }
}

bool PartitionableTransport::FlushSide(Relay* relay, bool to_server) {
  if (to_server && relay->server_connecting) return true;  // queued for later
  int fd = to_server ? relay->sfd : relay->cfd;
  std::deque<std::string>& q = to_server ? relay->to_server : relay->to_client;
  size_t& head = to_server ? relay->to_server_head : relay->to_client_head;
  bool& want_write =
      to_server ? relay->sfd_want_write : relay->cfd_want_write;
  while (!q.empty()) {
    const std::string& chunk = q.front();
    size_t left = chunk.size() - head;
    ssize_t n = send(fd, chunk.data() + head, left, MSG_NOSIGNAL);
    if (n > 0) {
      head += static_cast<size_t>(n);
      if (head == chunk.size()) {
        q.pop_front();
        head = 0;
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!want_write) {
        want_write = true;
        loop_->SetFdWriteInterest(fd, true);
      }
      return true;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  if (want_write) {
    want_write = false;
    loop_->SetFdWriteInterest(fd, false);
  }
  return true;
}

void PartitionableTransport::DestroyRelay(uint64_t id) {
  auto it = relays_.find(id);
  if (it == relays_.end()) return;
  Relay* relay = it->second.get();
  if (relay->cfd >= 0) {
    loop_->UnwatchFd(relay->cfd);
    close(relay->cfd);
  }
  if (relay->sfd >= 0) {
    loop_->UnwatchFd(relay->sfd);
    close(relay->sfd);
  }
  Shim* shim = relay->shim;
  for (auto rit = shim->relay_ids.begin(); rit != shim->relay_ids.end();
       ++rit) {
    if (*rit == id) {
      shim->relay_ids.erase(rit);
      break;
    }
  }
  relays_.erase(it);
}

void PartitionableTransport::DestroyShimRelays(Shim* shim) {
  std::vector<uint64_t> ids = shim->relay_ids;
  for (uint64_t id : ids) DestroyRelay(id);
}

}  // namespace bistro

#ifndef BISTRO_FAULT_INJECTOR_H_
#define BISTRO_FAULT_INJECTOR_H_

#include <memory>
#include <string>

#include "common/random.h"
#include "fault/plan.h"
#include "obs/metrics.h"
#include "sim/event_loop.h"
#include "sim/network.h"

namespace bistro {

/// Central fault decision-maker: owns the plan, a dedicated Rng seeded
/// from it, and the injection counters. FaultyFileSystem and
/// FaultyTransport consult it per operation; Arm() schedules the plan's
/// link flaps and applies degradations. One injector + one seed =>
/// one reproducible fault sequence.
class FaultInjector {
 public:
  /// `metrics` may be null: the injector then owns a private registry so
  /// the counters always exist (mirrors DeliveryEngine).
  explicit FaultInjector(FaultPlan plan, MetricsRegistry* metrics = nullptr);

  const FaultPlan& plan() const { return plan_; }
  Rng* rng() { return &rng_; }

  /// Applies the plan's scheduled network events: degradations now, flap
  /// down/up transitions posted on the loop. Call once after links exist.
  void Arm(EventLoop* loop, SimNetwork* network);

  // ------------------------------------------------- per-op decisions
  /// Each returns true when the fault fires (and counts it). Path-scoped
  /// vfs decisions return false outside the plan's scope.
  bool InjectWriteError(const std::string& path);
  bool InjectTornWrite(const std::string& path);
  bool InjectSyncError(const std::string& path);
  bool InjectSendFailure(const std::string& endpoint);
  bool InjectCorruption(const std::string& endpoint);
  bool InjectAckLoss(const std::string& endpoint);

  /// Flips one random byte of `payload` (no-op on empty payloads).
  void CorruptPayload(std::string* payload);

  /// Total faults injected so far (all kinds).
  uint64_t injected() const;

 private:
  bool InScope(const std::string& path) const;

  FaultPlan plan_;
  Rng rng_;
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  Counter* vfs_write_errors_;
  Counter* vfs_torn_writes_;
  Counter* vfs_sync_errors_;
  Counter* net_send_failures_;
  Counter* net_corruptions_;
  Counter* net_ack_losses_;
  Counter* link_flaps_;
};

}  // namespace bistro

#endif  // BISTRO_FAULT_INJECTOR_H_

#include "fault/faulty_transport.h"

namespace bistro {

void FaultyTransport::Send(const std::string& endpoint, const Message& msg,
                           SendCallback done) {
  if (injector_->InjectSendFailure(endpoint)) {
    loop_->Post([done] {
      done(Status::IoError("injected send failure"));
    });
    return;
  }
  if (msg.type == MessageType::kFileData &&
      injector_->InjectCorruption(endpoint)) {
    Message corrupted = msg;
    injector_->CorruptPayload(&corrupted.payload);
    base_->Send(endpoint, corrupted, std::move(done));
    return;
  }
  if (injector_->InjectAckLoss(endpoint)) {
    // Deliver for real, then lie to the sender about the outcome.
    base_->Send(endpoint, msg, [done](const Status&) {
      done(Status::IoError("injected ack loss"));
    });
    return;
  }
  base_->Send(endpoint, msg, std::move(done));
}

}  // namespace bistro

#include "fault/faulty_transport.h"

namespace bistro {

void FaultyTransport::Send(const std::string& endpoint, const Message& msg,
                           SendCallback done) {
  if (injector_->InjectSendFailure(endpoint)) {
    loop_->Post([done] {
      done(Status::IoError("injected send failure"));
    });
    return;
  }
  if (msg.type == MessageType::kFileData &&
      injector_->InjectCorruption(endpoint)) {
    Message corrupted = msg;
    // mutable_str() detaches from the shared buffer first, so the flip
    // never leaks into other messages aliasing the same payload.
    injector_->CorruptPayload(&corrupted.payload.mutable_str());
    base_->Send(endpoint, corrupted, std::move(done));
    return;
  }
  if (injector_->InjectAckLoss(endpoint)) {
    // Deliver for real, then lie to the sender about the outcome.
    base_->Send(endpoint, msg, [done](const Status&) {
      done(Status::IoError("injected ack loss"));
    });
    return;
  }
  base_->Send(endpoint, msg, std::move(done));
}

void FaultyTransport::SendBundle(const std::string& endpoint,
                                 std::vector<BundleItem> items) {
  std::vector<BundleItem> survivors;
  survivors.reserve(items.size());
  for (BundleItem& item : items) {
    if (injector_->InjectSendFailure(endpoint)) {
      loop_->Post([done = std::move(item.done)] {
        done(Status::IoError("injected send failure"));
      });
      continue;
    }
    if (item.msg.type == MessageType::kFileData &&
        injector_->InjectCorruption(endpoint)) {
      injector_->CorruptPayload(&item.msg.payload.mutable_str());
    }
    if (injector_->InjectAckLoss(endpoint)) {
      item.done = [done = std::move(item.done)](const Status&) {
        done(Status::IoError("injected ack loss"));
      };
    }
    survivors.push_back(std::move(item));
  }
  if (survivors.empty()) return;
  base_->SendBundle(endpoint, std::move(survivors));
}

}  // namespace bistro

#include "delivery/engine.h"

#include "ingest/plan.h"

#include <algorithm>

#include "common/hash.h"
#include "common/strings.h"

namespace bistro {

DeliveryEngine::DeliveryEngine(EventLoop* loop, FeedRegistry* registry,
                               ReceiptDatabase* receipts,
                               FileSystem* staging_fs, Transport* transport,
                               DeliveryScheduler* scheduler,
                               TriggerInvoker* invoker, Logger* logger,
                               Options options, MetricsRegistry* metrics,
                               FileTracer* tracer)
    : loop_(loop),
      registry_(registry),
      index_(registry),
      receipts_(receipts),
      staging_fs_(staging_fs),
      transport_(transport),
      scheduler_(scheduler),
      invoker_(invoker),
      logger_(logger),
      options_(options),
      backoff_rng_(options.backoff_seed),
      tracer_(tracer),
      payload_cache_(staging_fs, options.cache_bytes) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  scheduler_->SetSubscriberWindow(options_.window);
  payload_cache_.AttachMetrics(metrics);
  index_.AttachMetrics(metrics);
  jobs_submitted_ = metrics->GetCounter("bistro_delivery_jobs_submitted_total",
                                        "Transfer jobs handed to the scheduler");
  files_delivered_ = metrics->GetCounter(
      "bistro_delivery_files_delivered_total",
      "Successful push deliveries (file, subscriber pairs)");
  notifications_sent_ = metrics->GetCounter(
      "bistro_delivery_notifications_sent_total",
      "Successful notify-mode deliveries");
  send_failures_ = metrics->GetCounter("bistro_delivery_send_failures_total",
                                       "Failed delivery attempts");
  retries_ = metrics->GetCounter("bistro_delivery_retries_total",
                                 "Jobs requeued after a transient failure");
  parked_ = metrics->GetCounter(
      "bistro_delivery_parked_total",
      "Jobs dropped because the subscriber is offline (backfill recovers them)");
  dead_lettered_ = metrics->GetCounter(
      "bistro_delivery_dead_letter_total",
      "Jobs parked in the dead-letter queue after exhausting retries");
  backfilled_ = metrics->GetCounter(
      "bistro_delivery_backfilled_total",
      "Jobs submitted by receipt-driven queue recomputation");
  staging_reads_ = metrics->GetCounter("bistro_delivery_staging_reads_total",
                                       "Staged files read from the filesystem");
  staging_cache_hits_ = metrics->GetCounter(
      "bistro_delivery_staging_cache_hits_total",
      "Staged reads served from the payload cache");
  coalesced_files_ = metrics->GetCounter(
      "bistro_delivery_coalesced_files_total",
      "Files sent inside multi-file coalesced frames");
  coalesced_frames_ = metrics->GetCounter(
      "bistro_delivery_coalesced_frames_total",
      "Multi-file coalesced frames sent");
  receipt_group_flushes_ = metrics->GetCounter(
      "bistro_delivery_receipt_group_flushes_total",
      "Delivery-receipt group commits flushed by the engine");
  inflight_gauge_ = metrics->GetGauge(
      "bistro_delivery_inflight",
      "Transfer jobs currently in flight (window-limited sends)");
  receipt_buffer_gauge_ = metrics->GetGauge(
      "bistro_delivery_receipt_buffer",
      "Delivery receipts buffered for the next group commit");
  batches_closed_ = metrics->GetCounter("bistro_delivery_batches_closed_total",
                                        "Batches closed across all batchers");
  triggers_invoked_ = metrics->GetCounter(
      "bistro_delivery_triggers_invoked_total", "Trigger invocations");
  trigger_failures_ = metrics->GetCounter(
      "bistro_delivery_trigger_failures_total", "Failed trigger invocations");
  offline_transitions_ = metrics->GetCounter(
      "bistro_delivery_offline_transitions_total",
      "Subscribers flagged offline");
  pending_evicted_ = metrics->GetCounter(
      "bistro_delivery_pending_evicted_total",
      "Pending-dedupe pairs evicted by the size cap");
  pending_pairs_ = metrics->GetGauge(
      "bistro_delivery_pending_pairs",
      "(file, subscriber) pairs currently queued or in flight");
}

void DeliveryEngine::InsertPending(
    const std::pair<FileId, SubscriberName>& key) {
  pending_.insert(key);
  pending_order_.push_back(key);
  // Over the cap: forget the oldest tracked pair. Its job (if any) still
  // runs; only the dedupe memory is lost, so the worst case is one wasted
  // duplicate submit that the receipt check absorbs.
  while (pending_.size() > options_.max_pending_pairs &&
         !pending_order_.empty()) {
    auto oldest = pending_order_.front();
    pending_order_.pop_front();
    if (oldest != key && pending_.erase(oldest) > 0) {
      pending_evicted_->Increment();
    }
  }
  pending_pairs_->Set(static_cast<int64_t>(pending_.size()));
}

void DeliveryEngine::ErasePending(
    const std::pair<FileId, SubscriberName>& key) {
  pending_.erase(key);
  // Lazy compaction: drop dead entries from the front so the order queue
  // tracks the live set instead of all-time insertions.
  while (!pending_order_.empty() &&
         pending_.count(pending_order_.front()) == 0) {
    pending_order_.pop_front();
  }
  pending_pairs_->Set(static_cast<int64_t>(pending_.size()));
}

DeliveryStats DeliveryEngine::stats() const {
  DeliveryStats s;
  s.jobs_submitted = jobs_submitted_->value();
  s.files_delivered = files_delivered_->value();
  s.notifications_sent = notifications_sent_->value();
  s.send_failures = send_failures_->value();
  s.retries = retries_->value();
  s.parked = parked_->value();
  s.dead_lettered = dead_lettered_->value();
  s.backfilled = backfilled_->value();
  s.staging_reads = staging_reads_->value();
  s.staging_cache_hits = staging_cache_hits_->value();
  s.cache_evictions = payload_cache_.evictions();
  s.coalesced_files = coalesced_files_->value();
  s.coalesced_frames = coalesced_frames_->value();
  s.receipt_group_flushes = receipt_group_flushes_->value();
  s.batches_closed = batches_closed_->value();
  s.triggers_invoked = triggers_invoked_->value();
  s.trigger_failures = trigger_failures_->value();
  s.offline_transitions = offline_transitions_->value();
  return s;
}

namespace {
std::string EndpointOf(const SubscriberSpec& sub) {
  return sub.host.empty() ? sub.name : sub.host;
}
}  // namespace

std::function<void()> DeliveryEngine::Guard(std::function<void()> fn) {
  return [weak = std::weak_ptr<char>(alive_), fn = std::move(fn)] {
    if (weak.lock()) fn();
  };
}

void DeliveryEngine::SubmitStagedFile(const StagedFile& file) {
  if (tracer_ != nullptr) {
    tracer_->Mark(file.id, PipelineStage::kSchedule, loop_->Now());
  }
  for (const FeedName& feed : file.feeds) {
    const RegisteredFeed* rf = registry_->FindFeed(feed);
    Duration tardiness = rf != nullptr ? rf->spec.tardiness : kDefaultTardiness;
    if (plans_ != nullptr) tardiness = plans_->TardinessFor(feed, tardiness);
    for (const SubscriberSpec* sub : index_.PostingsFor(feed)) {
      if (plans_ != nullptr &&
          !plans_->AllowsDelivery(feed, file.name, sub->name)) {
        continue;
      }
      auto key = std::make_pair(file.id, sub->name);
      if (pending_.count(key) != 0) continue;
      if (offline_.count(sub->name) != 0) {
        // Receipts remember the file; the probe-triggered backfill will
        // pick it up when the subscriber returns.
        parked_->Increment();
        continue;
      }
      TransferJob job;
      job.file_id = file.id;
      job.subscriber = sub->name;
      job.feed = feed;
      job.name = file.name;
      job.staged_path = file.staged_path;
      job.dest_path = file.rel_path.empty() ? file.name : file.rel_path;
      job.size = file.size;
      job.arrival_time = file.arrival_time;
      job.data_time = file.data_time;
      job.deadline = file.arrival_time + tardiness;
      InsertPending(key);
      jobs_submitted_->Increment();
      scheduler_->Submit(std::move(job));
    }
  }
  Pump();
}

void DeliveryEngine::Pump() {
  // Drain every runnable slot (and, with windows, every open window) in
  // rounds: a round's fast-failures (offline subscriber, lost staged
  // file) complete synchronously and can free slots for the next round.
  for (;;) {
    std::vector<TransferJob> round;
    while (auto job = scheduler_->Dequeue()) {
      round.push_back(std::move(*job));
    }
    if (round.empty()) break;
    DispatchRound(std::move(round));
  }
  inflight_gauge_->Set(static_cast<int64_t>(scheduler_->in_flight()));
}

std::optional<DeliveryEngine::PreparedJob> DeliveryEngine::PrepareJob(
    TransferJob job) {
  const SubscriberSpec* sub = registry_->FindSubscriber(job.subscriber);
  TimePoint started = loop_->Now();
  if (sub == nullptr || offline_.count(job.subscriber) != 0) {
    // Subscriber vanished or went offline while the job was queued.
    ErasePending({job.file_id, job.subscriber});
    parked_->Increment();
    scheduler_->OnComplete(job, /*success=*/false, started, 0);
    return std::nullopt;
  }
  PreparedJob p;
  p.msg.file_id = job.file_id;
  p.msg.feed = job.feed;
  p.msg.name = job.name;
  p.msg.dest_path = job.dest_path;
  p.msg.data_time = job.data_time;
  if (sub->method == DeliveryMethod::kPush) {
    uint64_t hits_before = payload_cache_.hits();
    auto entry = payload_cache_.Get(job.staged_path);
    if (!entry.ok()) {
      // Staged file expired or lost: give up on this job.
      logger_->Error("delivery",
                     "staged file unreadable: " + job.staged_path + " (" +
                         entry.status().ToString() + ")");
      ErasePending({job.file_id, job.subscriber});
      scheduler_->OnComplete(job, /*success=*/false, started, 0);
      return std::nullopt;
    }
    if (payload_cache_.hits() > hits_before) {
      staging_cache_hits_->Increment();
    } else {
      staging_reads_->Increment();
    }
    // The whole fan-out aliases one immutable buffer, and the end-to-end
    // checksum was computed once at cache insert; the endpoint verifies
    // it and NACKs (Corruption) if the payload was damaged in flight.
    p.msg.payload = SharedPayload(entry->payload);
    p.msg.payload_crc = entry->crc;
    p.msg.type = MessageType::kFileData;
  } else {
    p.msg.type = MessageType::kFileNotify;
  }
  if (tracer_ != nullptr) {
    tracer_->Mark(job.file_id, PipelineStage::kSend, loop_->Now());
  }
  p.endpoint = EndpointOf(*sub);
  p.job = std::move(job);
  return p;
}

SendCallback DeliveryEngine::DoneCallback(TransferJob job, TimePoint started) {
  return [weak = std::weak_ptr<char>(alive_), this, job = std::move(job),
          started](const Status& s) mutable {
    if (!weak.lock()) return;
    OnJobDone(std::move(job), started, s);
  };
}

void DeliveryEngine::DispatchRound(std::vector<TransferJob> round) {
  TimePoint started = loop_->Now();
  if (options_.coalesce_bytes == 0) {
    for (TransferJob& job : round) StartJob(std::move(job));
    return;
  }
  // Group the round's sendable jobs by endpoint (dispatch order is
  // preserved within an endpoint; endpoints interleave anyway on
  // independent links).
  std::vector<std::string> order;
  std::map<std::string, std::vector<PreparedJob>> by_endpoint;
  for (TransferJob& job : round) {
    auto p = PrepareJob(std::move(job));
    if (!p.has_value()) continue;
    auto [it, inserted] = by_endpoint.try_emplace(p->endpoint);
    if (inserted) order.push_back(p->endpoint);
    it->second.push_back(std::move(*p));
  }
  for (const std::string& endpoint : order) {
    std::vector<PreparedJob>& group = by_endpoint[endpoint];
    size_t i = 0;
    while (i < group.size()) {
      // Greedy frame: take file-data messages while the payload total
      // stays under coalesce_bytes. A file larger than the budget (or a
      // notify/first message) always ships; it just ships alone.
      size_t j = i;
      uint64_t frame_bytes = 0;
      while (j < group.size() &&
             group[j].msg.type == MessageType::kFileData &&
             (j == i ||
              frame_bytes + group[j].msg.payload.size() <=
                  options_.coalesce_bytes)) {
        frame_bytes += group[j].msg.payload.size();
        ++j;
        if (frame_bytes >= options_.coalesce_bytes) break;
      }
      if (j == i) j = i + 1;  // non-coalescible message ships alone
      if (j - i > 1) {
        std::vector<BundleItem> items;
        items.reserve(j - i);
        for (size_t k = i; k < j; ++k) {
          BundleItem item;
          item.msg = std::move(group[k].msg);
          item.done = DoneCallback(std::move(group[k].job), started);
          items.push_back(std::move(item));
        }
        coalesced_frames_->Increment();
        coalesced_files_->Increment(j - i);
        transport_->SendBundle(endpoint, std::move(items));
      } else {
        transport_->Send(endpoint, group[i].msg,
                         DoneCallback(std::move(group[i].job), started));
      }
      i = j;
    }
  }
}

void DeliveryEngine::StartJob(TransferJob job) {
  TimePoint started = loop_->Now();
  auto p = PrepareJob(std::move(job));
  if (!p.has_value()) return;
  transport_->Send(p->endpoint, p->msg,
                   DoneCallback(std::move(p->job), started));
}

void DeliveryEngine::OnJobDone(TransferJob job, TimePoint started,
                               const Status& status) {
  TimePoint now = loop_->Now();
  scheduler_->OnComplete(job, status.ok(), now, now - started);
  if (status.ok()) {
    ErasePending({job.file_id, job.subscriber});
    RecordDeliveryReceipt(job, now);
    if (tracer_ != nullptr) {
      tracer_->Mark(job.file_id, PipelineStage::kDeliveryReceipt, now);
    }
    const SubscriberSpec* sub = registry_->FindSubscriber(job.subscriber);
    if (sub != nullptr && sub->method == DeliveryMethod::kPush) {
      files_delivered_->Increment();
    } else {
      notifications_sent_->Increment();
    }
    if (sub != nullptr) {
      FeedBatcher(*sub, job.feed, job.file_id, job.data_time);
    }
  } else {
    HandleFailure(std::move(job));
  }
  Pump();
}

void DeliveryEngine::RecordDeliveryReceipt(const TransferJob& job,
                                           TimePoint now) {
  if (options_.receipt_group <= 1) {
    // Legacy mode: one durable receipt write per ack.
    Status rec = receipts_->RecordDelivery(job.subscriber, job.file_id, now);
    if (!rec.ok()) {
      logger_->Error("delivery",
                     "failed to record delivery receipt: " + rec.ToString());
      // The file reached the subscriber but the receipt did not commit
      // (e.g. a transient WAL write error). Without the receipt the file
      // stays in the recomputed delivery queue and would be redelivered
      // after every restart, so keep retrying the receipt write; the
      // endpoint's dedupe absorbs any redelivery that races with it.
      RetryDeliveryReceipt(job.subscriber, job.file_id, now);
    }
    return;
  }
  // Group commit: buffer until the group fills, the engine goes
  // ack-quiescent (this ack was the last in flight, so no later ack will
  // piggyback the fsync), or the flush timer fires. A crash loses at most
  // the buffered tail — those files get re-delivered after recovery and
  // the subscriber's FileId dedupe absorbs the repeats.
  receipt_buffer_.push_back({job.subscriber, job.file_id, now});
  receipt_buffer_gauge_->Set(static_cast<int64_t>(receipt_buffer_.size()));
  if (receipt_buffer_.size() >= options_.receipt_group ||
      scheduler_->in_flight() == 0) {
    FlushDeliveryReceipts();
  } else if (!receipt_flush_timer_armed_) {
    receipt_flush_timer_armed_ = true;
    loop_->PostAfter(options_.receipt_flush_interval, Guard([this] {
                       receipt_flush_timer_armed_ = false;
                       FlushDeliveryReceipts();
                     }));
  }
}

void DeliveryEngine::FlushDeliveryReceipts() {
  if (receipt_buffer_.empty()) return;
  std::vector<ReceiptDatabase::DeliveryRecord> records =
      std::move(receipt_buffer_);
  receipt_buffer_.clear();
  receipt_buffer_gauge_->Set(0);
  Status s = receipts_->RecordDeliveryGroup(records);
  if (s.ok()) {
    receipt_group_flushes_->Increment();
    return;
  }
  logger_->Error("delivery",
                 "failed to group-commit delivery receipts: " + s.ToString());
  // Same rationale as the legacy path: without receipts these files would
  // be redelivered after every restart, so retry each one (individually —
  // a persistent fault in one record must not wedge the whole group).
  for (const auto& r : records) {
    RetryDeliveryReceipt(r.subscriber, r.file_id, r.when);
  }
}

void DeliveryEngine::RetryDeliveryReceipt(const SubscriberName& sub,
                                          FileId file_id, TimePoint when) {
  loop_->PostAfter(options_.retry_backoff,
                   Guard([this, sub, file_id, when] {
                     Status rec = receipts_->RecordDelivery(sub, file_id, when);
                     if (!rec.ok()) RetryDeliveryReceipt(sub, file_id, when);
                   }));
}

void DeliveryEngine::HandleFailure(TransferJob job) {
  send_failures_->Increment();
  const SubscriberName sub = job.subscriber;
  if (scheduler_->tracker()->ConsecutiveFailures(sub) >=
          options_.offline_after_failures &&
      offline_.count(sub) == 0) {
    offline_.insert(sub);
    offline_transitions_->Increment();
    logger_->Warning("delivery",
                     "subscriber flagged offline after repeated failures: " + sub);
    ErasePending({job.file_id, sub});
    loop_->PostAfter(options_.probe_interval,
                     Guard([this, sub] { ProbeOffline(sub); }));
    return;
  }
  if (offline_.count(sub) != 0) {
    ErasePending({job.file_id, sub});
    parked_->Increment();
    return;
  }
  job.attempts++;
  if (job.attempts >= options_.max_attempts) {
    logger_->Error(
        "delivery",
        StrFormat("dead-lettering file %llu to %s after %d attempts",
                  (unsigned long long)job.file_id, sub.c_str(), job.attempts));
    ErasePending({job.file_id, sub});
    dead_lettered_->Increment();
    dead_letter_.push_back(std::move(job));
    return;
  }
  retries_->Increment();
  Duration backoff = NextBackoff(&job);
  loop_->PostAfter(backoff, Guard([this, job = std::move(job)]() mutable {
                     scheduler_->Submit(job);
                     Pump();
                   }));
}

Duration DeliveryEngine::NextBackoff(TransferJob* job) {
  const Duration base = std::max<Duration>(options_.retry_backoff, 1);
  const Duration cap = std::max<Duration>(options_.retry_backoff_max, base);
  Duration next;
  if (job->last_backoff <= 0) {
    next = base;  // first retry always waits exactly the base
  } else {
    double grown = static_cast<double>(job->last_backoff) *
                   std::max(options_.retry_backoff_multiplier, 1.0);
    next = grown >= static_cast<double>(cap) ? cap
                                             : static_cast<Duration>(grown);
  }
  if (options_.retry_jitter && next > base) {
    // Decorrelated jitter (next grows from the previous *draw*, not the
    // deterministic envelope): uniform in [base, next].
    next = base + static_cast<Duration>(backoff_rng_.Uniform(
                      static_cast<uint64_t>(next - base) + 1));
  }
  job->last_backoff = next;
  return next;
}

void DeliveryEngine::RedriveDeadLetters() {
  std::vector<TransferJob> jobs = std::move(dead_letter_);
  dead_letter_.clear();
  for (TransferJob& job : jobs) {
    auto key = std::make_pair(job.file_id, job.subscriber);
    // A backfill may have requeued (or already delivered) the file while
    // it sat in the dead-letter queue; receipts + endpoint dedupe make a
    // duplicate submit harmless, but skip the obvious case.
    if (pending_.count(key) != 0) continue;
    job.attempts = 0;
    job.last_backoff = 0;
    InsertPending(key);
    jobs_submitted_->Increment();
    scheduler_->Submit(std::move(job));
  }
  Pump();
}

void DeliveryEngine::ProbeOffline(const SubscriberName& sub_name) {
  if (offline_.count(sub_name) == 0) return;
  const SubscriberSpec* sub = registry_->FindSubscriber(sub_name);
  if (sub == nullptr) {
    offline_.erase(sub_name);
    return;
  }
  Message probe;
  probe.type = MessageType::kHeartbeat;
  transport_->Send(
      EndpointOf(*sub), probe,
      [weak = std::weak_ptr<char>(alive_), this, sub_name](const Status& s) {
        if (!weak.lock()) return;
        if (s.ok()) {
          offline_.erase(sub_name);
          scheduler_->tracker()->Reset(sub_name);
          logger_->Info("delivery", "subscriber back online: " + sub_name);
          Backfill(sub_name);
        } else {
          loop_->PostAfter(options_.probe_interval,
                           Guard([this, sub_name] { ProbeOffline(sub_name); }));
        }
      });
}

void DeliveryEngine::SubmitJobsFor(const SubscriberSpec& sub,
                                   const std::vector<ArrivalReceipt>& queue,
                                   bool backfill) {
  auto subscribed = registry_->SubscribedFeeds(sub);
  for (const ArrivalReceipt& receipt : queue) {
    auto key = std::make_pair(receipt.file_id, sub.name);
    if (pending_.count(key) != 0) continue;
    // Pick the first of the file's feeds this subscriber follows — and
    // that plan routing permits, so backfill never resurrects a delivery
    // the real-time path filtered out.
    FeedName feed;
    for (const auto& f : receipt.feeds) {
      if (std::find(subscribed.begin(), subscribed.end(), f) ==
          subscribed.end()) {
        continue;
      }
      if (plans_ != nullptr &&
          !plans_->AllowsDelivery(f, receipt.name, sub.name)) {
        continue;
      }
      feed = f;
      break;
    }
    if (feed.empty()) continue;
    const RegisteredFeed* rf = registry_->FindFeed(feed);
    Duration tardiness = rf != nullptr ? rf->spec.tardiness : kDefaultTardiness;
    if (plans_ != nullptr) tardiness = plans_->TardinessFor(feed, tardiness);
    TransferJob job;
    job.file_id = receipt.file_id;
    job.subscriber = sub.name;
    job.feed = feed;
    job.name = receipt.name;
    job.staged_path = receipt.staged_path;
    job.dest_path = receipt.rel_path.empty() ? receipt.name : receipt.rel_path;
    job.size = receipt.size;
    job.arrival_time = receipt.arrival_time;
    job.data_time = receipt.data_time;
    job.deadline = receipt.arrival_time + tardiness;
    job.backfill = backfill;
    InsertPending(key);
    jobs_submitted_->Increment();
    if (backfill) backfilled_->Increment();
    scheduler_->Submit(std::move(job));
  }
  Pump();
}

void DeliveryEngine::Backfill(const SubscriberName& sub_name) {
  const SubscriberSpec* sub = registry_->FindSubscriber(sub_name);
  if (sub == nullptr || offline_.count(sub_name) != 0) return;
  // Buffered receipts are deliveries that already happened; commit them
  // first so the recomputed queue does not resubmit those files.
  FlushDeliveryReceipts();
  auto feeds = registry_->SubscribedFeeds(*sub);
  TimePoint window_start =
      sub->window > 0 ? loop_->Now() - sub->window : 0;
  if (window_start < 0) window_start = 0;
  auto queue = receipts_->ComputeDeliveryQueue(sub_name, feeds, window_start);
  SubmitJobsFor(*sub, queue, /*backfill=*/true);
}

void DeliveryEngine::BackfillFeed(const FeedName& feed) {
  // Copy the names first: Backfill may mutate registry state behind the
  // postings vector (it aliases registry storage).
  std::vector<SubscriberName> names;
  for (const SubscriberSpec* sub : index_.PostingsFor(feed)) {
    names.push_back(sub->name);
  }
  for (const SubscriberName& name : names) Backfill(name);
}

void DeliveryEngine::RerouteUndelivered(const SubscriberName& from,
                                        const SubscriberName& to) {
  const SubscriberSpec* from_sub = registry_->FindSubscriber(from);
  const SubscriberSpec* to_sub = registry_->FindSubscriber(to);
  if (from_sub == nullptr || to_sub == nullptr) return;
  if (offline_.count(to) != 0) return;  // the replica is down too
  FlushDeliveryReceipts();
  auto feeds = registry_->SubscribedFeeds(*from_sub);
  TimePoint window_start =
      from_sub->window > 0 ? loop_->Now() - from_sub->window : 0;
  if (window_start < 0) window_start = 0;
  auto queue = receipts_->ComputeDeliveryQueue(from, feeds, window_start);
  // Files the replica already holds would only waste wire bytes (the
  // downstream dedupe absorbs them regardless); skip them here.
  std::vector<ArrivalReceipt> missing;
  missing.reserve(queue.size());
  for (ArrivalReceipt& receipt : queue) {
    if (!receipts_->Delivered(to, receipt.file_id)) {
      missing.push_back(std::move(receipt));
    }
  }
  SubmitJobsFor(*to_sub, missing, /*backfill=*/true);
}

bool DeliveryEngine::IsOffline(const SubscriberName& subscriber) const {
  return offline_.count(subscriber) != 0;
}

void DeliveryEngine::SetOffline(const SubscriberName& subscriber,
                                bool offline) {
  if (offline) {
    if (offline_.insert(subscriber).second) {
      offline_transitions_->Increment();
      loop_->PostAfter(options_.probe_interval,
                       Guard([this, subscriber] { ProbeOffline(subscriber); }));
    }
  } else if (offline_.erase(subscriber) != 0) {
    scheduler_->tracker()->Reset(subscriber);
    Backfill(subscriber);
  }
}

Batcher* DeliveryEngine::GetBatcher(const SubscriberSpec& sub,
                                    const FeedName& feed) {
  auto key = std::make_pair(sub.name, feed);
  auto it = batchers_.find(key);
  if (it == batchers_.end()) {
    it = batchers_
             .emplace(key, std::make_unique<Batcher>(feed, sub.name,
                                                     sub.trigger.batch))
             .first;
  }
  return it->second.get();
}

void DeliveryEngine::FeedBatcher(const SubscriberSpec& sub,
                                 const FeedName& feed, FileId file,
                                 TimePoint data_time) {
  Batcher* batcher = GetBatcher(sub, feed);
  auto event = batcher->OnFileDelivered(file, data_time, loop_->Now());
  if (event.has_value()) EmitBatch(sub, std::move(*event));
  ScheduleBatchTick(sub.name, feed);
}

void DeliveryEngine::ScheduleBatchTick(const SubscriberName& sub_name,
                                       const FeedName& feed) {
  auto it = batchers_.find({sub_name, feed});
  if (it == batchers_.end()) return;
  auto deadline = it->second->NextDeadline();
  if (!deadline.has_value()) return;
  loop_->PostAt(*deadline, Guard([this, sub_name, feed] {
    auto bit = batchers_.find({sub_name, feed});
    if (bit == batchers_.end()) return;
    auto event = bit->second->OnTick(loop_->Now());
    if (event.has_value()) {
      const SubscriberSpec* sub = registry_->FindSubscriber(sub_name);
      if (sub != nullptr) EmitBatch(*sub, std::move(*event));
    }
  }));
}

void DeliveryEngine::EmitBatch(const SubscriberSpec& sub, BatchEvent event) {
  batches_closed_->Increment();
  if (tracer_ != nullptr) {
    for (FileId file : event.files) {
      tracer_->Mark(file, PipelineStage::kTrigger, loop_->Now());
    }
  }
  const TriggerSpec& trigger = sub.trigger;
  if (trigger.remote) {
    // Invoke on the subscriber's site: ship an end-of-batch message; the
    // subscriber-side agent runs the registered program.
    Message msg;
    msg.type = MessageType::kEndOfBatch;
    msg.feed = event.feed;
    msg.batch_time = event.batch_time;
    msg.batch_count = event.files.size();
    transport_->Send(EndpointOf(sub), msg, [this](const Status& s) {
      if (s.ok()) {
        triggers_invoked_->Increment();
      } else {
        trigger_failures_->Increment();
      }
    });
    return;
  }
  if (trigger.command.empty()) return;
  Status s = invoker_->Invoke(trigger.command, event);
  if (s.ok()) {
    triggers_invoked_->Increment();
  } else {
    trigger_failures_->Increment();
    logger_->Error("trigger", "trigger failed for " + sub.name + ": " +
                                  s.ToString());
  }
}

void DeliveryEngine::OnSourcePunctuation(const FeedName& feed,
                                         TimePoint batch_time) {
  (void)batch_time;
  for (const SubscriberSpec* sub : index_.PostingsFor(feed)) {
    if (sub->trigger.batch.mode != BatchSpec::Mode::kPunctuation) continue;
    Batcher* batcher = GetBatcher(*sub, feed);
    auto event = batcher->OnPunctuation(loop_->Now());
    if (event.has_value()) EmitBatch(*sub, std::move(*event));
  }
}

void DeliveryEngine::FlushBatches() {
  FlushDeliveryReceipts();
  for (auto& [key, batcher] : batchers_) {
    auto event = batcher->Flush(loop_->Now());
    if (!event.has_value()) continue;
    const SubscriberSpec* sub = registry_->FindSubscriber(key.first);
    if (sub != nullptr) EmitBatch(*sub, std::move(*event));
  }
}

}  // namespace bistro

#include "delivery/engine.h"

#include <algorithm>

#include "common/hash.h"
#include "common/strings.h"

namespace bistro {

DeliveryEngine::DeliveryEngine(EventLoop* loop, FeedRegistry* registry,
                               ReceiptDatabase* receipts,
                               FileSystem* staging_fs, Transport* transport,
                               DeliveryScheduler* scheduler,
                               TriggerInvoker* invoker, Logger* logger,
                               Options options, MetricsRegistry* metrics,
                               FileTracer* tracer)
    : loop_(loop),
      registry_(registry),
      receipts_(receipts),
      staging_fs_(staging_fs),
      transport_(transport),
      scheduler_(scheduler),
      invoker_(invoker),
      logger_(logger),
      options_(options),
      backoff_rng_(options.backoff_seed),
      tracer_(tracer) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  jobs_submitted_ = metrics->GetCounter("bistro_delivery_jobs_submitted_total",
                                        "Transfer jobs handed to the scheduler");
  files_delivered_ = metrics->GetCounter(
      "bistro_delivery_files_delivered_total",
      "Successful push deliveries (file, subscriber pairs)");
  notifications_sent_ = metrics->GetCounter(
      "bistro_delivery_notifications_sent_total",
      "Successful notify-mode deliveries");
  send_failures_ = metrics->GetCounter("bistro_delivery_send_failures_total",
                                       "Failed delivery attempts");
  retries_ = metrics->GetCounter("bistro_delivery_retries_total",
                                 "Jobs requeued after a transient failure");
  parked_ = metrics->GetCounter(
      "bistro_delivery_parked_total",
      "Jobs dropped because the subscriber is offline (backfill recovers them)");
  dead_lettered_ = metrics->GetCounter(
      "bistro_delivery_dead_letter_total",
      "Jobs parked in the dead-letter queue after exhausting retries");
  backfilled_ = metrics->GetCounter(
      "bistro_delivery_backfilled_total",
      "Jobs submitted by receipt-driven queue recomputation");
  staging_reads_ = metrics->GetCounter("bistro_delivery_staging_reads_total",
                                       "Staged files read from the filesystem");
  staging_cache_hits_ = metrics->GetCounter(
      "bistro_delivery_staging_cache_hits_total",
      "Staged reads served from the hot-file cache");
  batches_closed_ = metrics->GetCounter("bistro_delivery_batches_closed_total",
                                        "Batches closed across all batchers");
  triggers_invoked_ = metrics->GetCounter(
      "bistro_delivery_triggers_invoked_total", "Trigger invocations");
  trigger_failures_ = metrics->GetCounter(
      "bistro_delivery_trigger_failures_total", "Failed trigger invocations");
  offline_transitions_ = metrics->GetCounter(
      "bistro_delivery_offline_transitions_total",
      "Subscribers flagged offline");
  pending_evicted_ = metrics->GetCounter(
      "bistro_delivery_pending_evicted_total",
      "Pending-dedupe pairs evicted by the size cap");
  pending_pairs_ = metrics->GetGauge(
      "bistro_delivery_pending_pairs",
      "(file, subscriber) pairs currently queued or in flight");
}

void DeliveryEngine::InsertPending(
    const std::pair<FileId, SubscriberName>& key) {
  pending_.insert(key);
  pending_order_.push_back(key);
  // Over the cap: forget the oldest tracked pair. Its job (if any) still
  // runs; only the dedupe memory is lost, so the worst case is one wasted
  // duplicate submit that the receipt check absorbs.
  while (pending_.size() > options_.max_pending_pairs &&
         !pending_order_.empty()) {
    auto oldest = pending_order_.front();
    pending_order_.pop_front();
    if (oldest != key && pending_.erase(oldest) > 0) {
      pending_evicted_->Increment();
    }
  }
  pending_pairs_->Set(static_cast<int64_t>(pending_.size()));
}

void DeliveryEngine::ErasePending(
    const std::pair<FileId, SubscriberName>& key) {
  pending_.erase(key);
  // Lazy compaction: drop dead entries from the front so the order queue
  // tracks the live set instead of all-time insertions.
  while (!pending_order_.empty() &&
         pending_.count(pending_order_.front()) == 0) {
    pending_order_.pop_front();
  }
  pending_pairs_->Set(static_cast<int64_t>(pending_.size()));
}

DeliveryStats DeliveryEngine::stats() const {
  DeliveryStats s;
  s.jobs_submitted = jobs_submitted_->value();
  s.files_delivered = files_delivered_->value();
  s.notifications_sent = notifications_sent_->value();
  s.send_failures = send_failures_->value();
  s.retries = retries_->value();
  s.parked = parked_->value();
  s.dead_lettered = dead_lettered_->value();
  s.backfilled = backfilled_->value();
  s.staging_reads = staging_reads_->value();
  s.staging_cache_hits = staging_cache_hits_->value();
  s.batches_closed = batches_closed_->value();
  s.triggers_invoked = triggers_invoked_->value();
  s.trigger_failures = trigger_failures_->value();
  s.offline_transitions = offline_transitions_->value();
  return s;
}

namespace {
std::string EndpointOf(const SubscriberSpec& sub) {
  return sub.host.empty() ? sub.name : sub.host;
}
}  // namespace

std::function<void()> DeliveryEngine::Guard(std::function<void()> fn) {
  return [weak = std::weak_ptr<char>(alive_), fn = std::move(fn)] {
    if (weak.lock()) fn();
  };
}

void DeliveryEngine::SubmitStagedFile(const StagedFile& file) {
  if (tracer_ != nullptr) {
    tracer_->Mark(file.id, PipelineStage::kSchedule, loop_->Now());
  }
  for (const FeedName& feed : file.feeds) {
    const RegisteredFeed* rf = registry_->FindFeed(feed);
    Duration tardiness = rf != nullptr ? rf->spec.tardiness : kDefaultTardiness;
    for (const SubscriberSpec* sub : registry_->SubscribersOf(feed)) {
      auto key = std::make_pair(file.id, sub->name);
      if (pending_.count(key) != 0) continue;
      if (offline_.count(sub->name) != 0) {
        // Receipts remember the file; the probe-triggered backfill will
        // pick it up when the subscriber returns.
        parked_->Increment();
        continue;
      }
      TransferJob job;
      job.file_id = file.id;
      job.subscriber = sub->name;
      job.feed = feed;
      job.name = file.name;
      job.staged_path = file.staged_path;
      job.dest_path = file.rel_path.empty() ? file.name : file.rel_path;
      job.size = file.size;
      job.arrival_time = file.arrival_time;
      job.data_time = file.data_time;
      job.deadline = file.arrival_time + tardiness;
      InsertPending(key);
      jobs_submitted_->Increment();
      scheduler_->Submit(std::move(job));
    }
  }
  Pump();
}

void DeliveryEngine::Pump() {
  while (auto job = scheduler_->Dequeue()) {
    StartJob(std::move(*job));
  }
}

void DeliveryEngine::StartJob(TransferJob job) {
  const SubscriberSpec* sub = registry_->FindSubscriber(job.subscriber);
  TimePoint started = loop_->Now();
  if (sub == nullptr || offline_.count(job.subscriber) != 0) {
    // Subscriber vanished or went offline while the job was queued.
    ErasePending({job.file_id, job.subscriber});
    parked_->Increment();
    scheduler_->OnComplete(job, /*success=*/false, started, 0);
    return;
  }
  Message msg;
  msg.file_id = job.file_id;
  msg.feed = job.feed;
  msg.name = job.name;
  msg.dest_path = job.dest_path;
  msg.data_time = job.data_time;
  if (sub->method == DeliveryMethod::kPush) {
    if (job.staged_path == cached_staged_path_) {
      staging_cache_hits_->Increment();
      msg.payload = cached_staged_content_;
    } else {
      auto content = staging_fs_->ReadFile(job.staged_path);
      if (!content.ok()) {
        // Staged file expired or lost: give up on this job.
        logger_->Error("delivery",
                       "staged file unreadable: " + job.staged_path + " (" +
                           content.status().ToString() + ")");
        ErasePending({job.file_id, job.subscriber});
        scheduler_->OnComplete(job, /*success=*/false, started, 0);
        return;
      }
      staging_reads_->Increment();
      cached_staged_path_ = job.staged_path;
      cached_staged_content_ = *content;
      msg.payload = std::move(*content);
    }
    // End-to-end checksum of the staged bytes; the endpoint verifies it
    // and NACKs (Corruption) if the payload was damaged in flight.
    msg.payload_crc = Crc32(msg.payload);
    msg.type = MessageType::kFileData;
  } else {
    msg.type = MessageType::kFileNotify;
  }
  if (tracer_ != nullptr) {
    tracer_->Mark(job.file_id, PipelineStage::kSend, loop_->Now());
  }
  std::string endpoint = EndpointOf(*sub);
  transport_->Send(
      endpoint, msg,
      [weak = std::weak_ptr<char>(alive_), this, job = std::move(job),
       started](const Status& s) mutable {
        if (!weak.lock()) return;
        OnJobDone(std::move(job), started, s);
      });
}

void DeliveryEngine::OnJobDone(TransferJob job, TimePoint started,
                               const Status& status) {
  TimePoint now = loop_->Now();
  scheduler_->OnComplete(job, status.ok(), now, now - started);
  if (status.ok()) {
    ErasePending({job.file_id, job.subscriber});
    Status rec = receipts_->RecordDelivery(job.subscriber, job.file_id, now);
    if (!rec.ok()) {
      logger_->Error("delivery",
                     "failed to record delivery receipt: " + rec.ToString());
      // The file reached the subscriber but the receipt did not commit
      // (e.g. a transient WAL write error). Without the receipt the file
      // stays in the recomputed delivery queue and would be redelivered
      // after every restart, so keep retrying the receipt write; the
      // endpoint's dedupe absorbs any redelivery that races with it.
      RetryDeliveryReceipt(job.subscriber, job.file_id, now);
    }
    if (tracer_ != nullptr) {
      tracer_->Mark(job.file_id, PipelineStage::kDeliveryReceipt, now);
    }
    const SubscriberSpec* sub = registry_->FindSubscriber(job.subscriber);
    if (sub != nullptr && sub->method == DeliveryMethod::kPush) {
      files_delivered_->Increment();
    } else {
      notifications_sent_->Increment();
    }
    if (sub != nullptr) {
      FeedBatcher(*sub, job.feed, job.file_id, job.data_time);
    }
  } else {
    HandleFailure(std::move(job));
  }
  Pump();
}

void DeliveryEngine::RetryDeliveryReceipt(const SubscriberName& sub,
                                          FileId file_id, TimePoint when) {
  loop_->PostAfter(options_.retry_backoff,
                   Guard([this, sub, file_id, when] {
                     Status rec = receipts_->RecordDelivery(sub, file_id, when);
                     if (!rec.ok()) RetryDeliveryReceipt(sub, file_id, when);
                   }));
}

void DeliveryEngine::HandleFailure(TransferJob job) {
  send_failures_->Increment();
  const SubscriberName sub = job.subscriber;
  if (scheduler_->tracker()->ConsecutiveFailures(sub) >=
          options_.offline_after_failures &&
      offline_.count(sub) == 0) {
    offline_.insert(sub);
    offline_transitions_->Increment();
    logger_->Warning("delivery",
                     "subscriber flagged offline after repeated failures: " + sub);
    ErasePending({job.file_id, sub});
    loop_->PostAfter(options_.probe_interval,
                     Guard([this, sub] { ProbeOffline(sub); }));
    return;
  }
  if (offline_.count(sub) != 0) {
    ErasePending({job.file_id, sub});
    parked_->Increment();
    return;
  }
  job.attempts++;
  if (job.attempts >= options_.max_attempts) {
    logger_->Error(
        "delivery",
        StrFormat("dead-lettering file %llu to %s after %d attempts",
                  (unsigned long long)job.file_id, sub.c_str(), job.attempts));
    ErasePending({job.file_id, sub});
    dead_lettered_->Increment();
    dead_letter_.push_back(std::move(job));
    return;
  }
  retries_->Increment();
  Duration backoff = NextBackoff(&job);
  loop_->PostAfter(backoff, Guard([this, job = std::move(job)]() mutable {
                     scheduler_->Submit(job);
                     Pump();
                   }));
}

Duration DeliveryEngine::NextBackoff(TransferJob* job) {
  const Duration base = std::max<Duration>(options_.retry_backoff, 1);
  const Duration cap = std::max<Duration>(options_.retry_backoff_max, base);
  Duration next;
  if (job->last_backoff <= 0) {
    next = base;  // first retry always waits exactly the base
  } else {
    double grown = static_cast<double>(job->last_backoff) *
                   std::max(options_.retry_backoff_multiplier, 1.0);
    next = grown >= static_cast<double>(cap) ? cap
                                             : static_cast<Duration>(grown);
  }
  if (options_.retry_jitter && next > base) {
    // Decorrelated jitter (next grows from the previous *draw*, not the
    // deterministic envelope): uniform in [base, next].
    next = base + static_cast<Duration>(backoff_rng_.Uniform(
                      static_cast<uint64_t>(next - base) + 1));
  }
  job->last_backoff = next;
  return next;
}

void DeliveryEngine::RedriveDeadLetters() {
  std::vector<TransferJob> jobs = std::move(dead_letter_);
  dead_letter_.clear();
  for (TransferJob& job : jobs) {
    auto key = std::make_pair(job.file_id, job.subscriber);
    // A backfill may have requeued (or already delivered) the file while
    // it sat in the dead-letter queue; receipts + endpoint dedupe make a
    // duplicate submit harmless, but skip the obvious case.
    if (pending_.count(key) != 0) continue;
    job.attempts = 0;
    job.last_backoff = 0;
    InsertPending(key);
    jobs_submitted_->Increment();
    scheduler_->Submit(std::move(job));
  }
  Pump();
}

void DeliveryEngine::ProbeOffline(const SubscriberName& sub_name) {
  if (offline_.count(sub_name) == 0) return;
  const SubscriberSpec* sub = registry_->FindSubscriber(sub_name);
  if (sub == nullptr) {
    offline_.erase(sub_name);
    return;
  }
  Message probe;
  probe.type = MessageType::kHeartbeat;
  transport_->Send(
      EndpointOf(*sub), probe,
      [weak = std::weak_ptr<char>(alive_), this, sub_name](const Status& s) {
        if (!weak.lock()) return;
        if (s.ok()) {
          offline_.erase(sub_name);
          scheduler_->tracker()->Reset(sub_name);
          logger_->Info("delivery", "subscriber back online: " + sub_name);
          Backfill(sub_name);
        } else {
          loop_->PostAfter(options_.probe_interval,
                           Guard([this, sub_name] { ProbeOffline(sub_name); }));
        }
      });
}

void DeliveryEngine::SubmitJobsFor(const SubscriberSpec& sub,
                                   const std::vector<ArrivalReceipt>& queue,
                                   bool backfill) {
  auto subscribed = registry_->SubscribedFeeds(sub);
  for (const ArrivalReceipt& receipt : queue) {
    auto key = std::make_pair(receipt.file_id, sub.name);
    if (pending_.count(key) != 0) continue;
    // Pick the first of the file's feeds this subscriber follows.
    FeedName feed;
    for (const auto& f : receipt.feeds) {
      if (std::find(subscribed.begin(), subscribed.end(), f) !=
          subscribed.end()) {
        feed = f;
        break;
      }
    }
    if (feed.empty()) continue;
    const RegisteredFeed* rf = registry_->FindFeed(feed);
    Duration tardiness = rf != nullptr ? rf->spec.tardiness : kDefaultTardiness;
    TransferJob job;
    job.file_id = receipt.file_id;
    job.subscriber = sub.name;
    job.feed = feed;
    job.name = receipt.name;
    job.staged_path = receipt.staged_path;
    job.dest_path = receipt.rel_path.empty() ? receipt.name : receipt.rel_path;
    job.size = receipt.size;
    job.arrival_time = receipt.arrival_time;
    job.data_time = receipt.data_time;
    job.deadline = receipt.arrival_time + tardiness;
    job.backfill = backfill;
    InsertPending(key);
    jobs_submitted_->Increment();
    if (backfill) backfilled_->Increment();
    scheduler_->Submit(std::move(job));
  }
  Pump();
}

void DeliveryEngine::Backfill(const SubscriberName& sub_name) {
  const SubscriberSpec* sub = registry_->FindSubscriber(sub_name);
  if (sub == nullptr || offline_.count(sub_name) != 0) return;
  auto feeds = registry_->SubscribedFeeds(*sub);
  TimePoint window_start =
      sub->window > 0 ? loop_->Now() - sub->window : 0;
  if (window_start < 0) window_start = 0;
  auto queue = receipts_->ComputeDeliveryQueue(sub_name, feeds, window_start);
  SubmitJobsFor(*sub, queue, /*backfill=*/true);
}

void DeliveryEngine::BackfillFeed(const FeedName& feed) {
  for (const SubscriberSpec* sub : registry_->SubscribersOf(feed)) {
    Backfill(sub->name);
  }
}

bool DeliveryEngine::IsOffline(const SubscriberName& subscriber) const {
  return offline_.count(subscriber) != 0;
}

void DeliveryEngine::SetOffline(const SubscriberName& subscriber,
                                bool offline) {
  if (offline) {
    if (offline_.insert(subscriber).second) {
      offline_transitions_->Increment();
      loop_->PostAfter(options_.probe_interval,
                       Guard([this, subscriber] { ProbeOffline(subscriber); }));
    }
  } else if (offline_.erase(subscriber) != 0) {
    scheduler_->tracker()->Reset(subscriber);
    Backfill(subscriber);
  }
}

Batcher* DeliveryEngine::GetBatcher(const SubscriberSpec& sub,
                                    const FeedName& feed) {
  auto key = std::make_pair(sub.name, feed);
  auto it = batchers_.find(key);
  if (it == batchers_.end()) {
    it = batchers_
             .emplace(key, std::make_unique<Batcher>(feed, sub.name,
                                                     sub.trigger.batch))
             .first;
  }
  return it->second.get();
}

void DeliveryEngine::FeedBatcher(const SubscriberSpec& sub,
                                 const FeedName& feed, FileId file,
                                 TimePoint data_time) {
  Batcher* batcher = GetBatcher(sub, feed);
  auto event = batcher->OnFileDelivered(file, data_time, loop_->Now());
  if (event.has_value()) EmitBatch(sub, std::move(*event));
  ScheduleBatchTick(sub.name, feed);
}

void DeliveryEngine::ScheduleBatchTick(const SubscriberName& sub_name,
                                       const FeedName& feed) {
  auto it = batchers_.find({sub_name, feed});
  if (it == batchers_.end()) return;
  auto deadline = it->second->NextDeadline();
  if (!deadline.has_value()) return;
  loop_->PostAt(*deadline, Guard([this, sub_name, feed] {
    auto bit = batchers_.find({sub_name, feed});
    if (bit == batchers_.end()) return;
    auto event = bit->second->OnTick(loop_->Now());
    if (event.has_value()) {
      const SubscriberSpec* sub = registry_->FindSubscriber(sub_name);
      if (sub != nullptr) EmitBatch(*sub, std::move(*event));
    }
  }));
}

void DeliveryEngine::EmitBatch(const SubscriberSpec& sub, BatchEvent event) {
  batches_closed_->Increment();
  if (tracer_ != nullptr) {
    for (FileId file : event.files) {
      tracer_->Mark(file, PipelineStage::kTrigger, loop_->Now());
    }
  }
  const TriggerSpec& trigger = sub.trigger;
  if (trigger.remote) {
    // Invoke on the subscriber's site: ship an end-of-batch message; the
    // subscriber-side agent runs the registered program.
    Message msg;
    msg.type = MessageType::kEndOfBatch;
    msg.feed = event.feed;
    msg.batch_time = event.batch_time;
    msg.batch_count = event.files.size();
    transport_->Send(EndpointOf(sub), msg, [this](const Status& s) {
      if (s.ok()) {
        triggers_invoked_->Increment();
      } else {
        trigger_failures_->Increment();
      }
    });
    return;
  }
  if (trigger.command.empty()) return;
  Status s = invoker_->Invoke(trigger.command, event);
  if (s.ok()) {
    triggers_invoked_->Increment();
  } else {
    trigger_failures_->Increment();
    logger_->Error("trigger", "trigger failed for " + sub.name + ": " +
                                  s.ToString());
  }
}

void DeliveryEngine::OnSourcePunctuation(const FeedName& feed,
                                         TimePoint batch_time) {
  (void)batch_time;
  for (const SubscriberSpec* sub : registry_->SubscribersOf(feed)) {
    if (sub->trigger.batch.mode != BatchSpec::Mode::kPunctuation) continue;
    Batcher* batcher = GetBatcher(*sub, feed);
    auto event = batcher->OnPunctuation(loop_->Now());
    if (event.has_value()) EmitBatch(*sub, std::move(*event));
  }
}

void DeliveryEngine::FlushBatches() {
  for (auto& [key, batcher] : batchers_) {
    auto event = batcher->Flush(loop_->Now());
    if (!event.has_value()) continue;
    const SubscriberSpec* sub = registry_->FindSubscriber(key.first);
    if (sub != nullptr) EmitBatch(*sub, std::move(*event));
  }
}

}  // namespace bistro

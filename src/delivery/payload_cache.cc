#include "delivery/payload_cache.h"

#include "common/hash.h"

namespace bistro {

void StagedPayloadCache::AttachMetrics(MetricsRegistry* registry) {
  hits_counter_ = registry->GetCounter(
      "bistro_delivery_cache_hits_total",
      "Staged-payload cache hits (fan-out sends reusing shared bytes)");
  misses_counter_ = registry->GetCounter(
      "bistro_delivery_cache_misses_total",
      "Staged-payload cache misses (staging reads + CRC computes)");
  evictions_counter_ = registry->GetCounter(
      "bistro_delivery_cache_evictions_total",
      "Staged payloads evicted by the LRU byte budget");
  bytes_gauge_ = registry->GetGauge("bistro_delivery_cache_bytes",
                                    "Bytes resident in the payload cache");
}

Result<StagedPayloadCache::Entry> StagedPayloadCache::Get(
    const std::string& staged_path) {
  auto it = index_.find(staged_path);
  if (it != index_.end()) {
    ++hits_;
    if (hits_counter_ != nullptr) hits_counter_->Increment();
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->entry;
  }
  ++misses_;
  if (misses_counter_ != nullptr) misses_counter_->Increment();
  BISTRO_ASSIGN_OR_RETURN(std::string content, fs_->ReadFile(staged_path));
  Entry entry;
  entry.crc = Crc32(content);
  entry.payload = std::make_shared<const std::string>(std::move(content));
  if (byte_budget_ == 0) return entry;  // ablation: never retain
  bytes_ += entry.payload->size();
  lru_.push_front(Node{staged_path, entry});
  index_[staged_path] = lru_.begin();
  EvictToBudget();
  if (bytes_gauge_ != nullptr) bytes_gauge_->Set(static_cast<double>(bytes_));
  return entry;
}

void StagedPayloadCache::EvictToBudget() {
  // The just-inserted entry is never evicted, even when it alone exceeds
  // the budget: the caller is about to fan it out, so dropping it would
  // re-read the file once per subscriber.
  while (bytes_ > byte_budget_ && lru_.size() > 1) {
    Node& victim = lru_.back();
    bytes_ -= victim.entry.payload->size();
    index_.erase(victim.path);
    lru_.pop_back();
    ++evictions_;
    if (evictions_counter_ != nullptr) evictions_counter_->Increment();
  }
}

void StagedPayloadCache::Invalidate(const std::string& staged_path) {
  auto it = index_.find(staged_path);
  if (it == index_.end()) return;
  bytes_ -= it->second->entry.payload->size();
  lru_.erase(it->second);
  index_.erase(it);
  if (bytes_gauge_ != nullptr) bytes_gauge_->Set(static_cast<double>(bytes_));
}

void StagedPayloadCache::Clear() {
  lru_.clear();
  index_.clear();
  bytes_ = 0;
  if (bytes_gauge_ != nullptr) bytes_gauge_->Set(0);
}

}  // namespace bistro

#include "delivery/archiver.h"

#include "common/strings.h"

namespace bistro {

ArchiverEndpoint::ArchiverEndpoint(FileSystem* fs, std::string root)
    : fs_(fs), root_(std::move(root)) {}

Status ArchiverEndpoint::HandleMessage(const Message& msg) {
  switch (msg.type) {
    case MessageType::kFileData: {
      std::string dest;
      if (msg.data_time != 0) {
        CivilTime c = ToCivil(msg.data_time);
        dest = path::Join(
            root_, StrFormat("%04d/%02d/%02d/%s", c.year, c.month, c.day,
                             msg.name.c_str()));
      } else {
        dest = path::Join(root_, msg.name);
      }
      BISTRO_RETURN_IF_ERROR(fs_->WriteFile(dest, msg.payload));
      ++files_archived_;
      bytes_archived_ += msg.payload.size();
      return Status::OK();
    }
    default:
      // Notifications / batch markers / heartbeats need no archival.
      return Status::OK();
  }
}

Status ArchiverEndpoint::StoreReceiptState(std::string_view snapshot_name,
                                           std::string_view bytes) {
  std::string dest =
      path::Join(path::Join(root_, "_receipt_state"), std::string(snapshot_name));
  BISTRO_RETURN_IF_ERROR(fs_->WriteFile(dest, bytes));
  ++receipt_snapshots_;
  return Status::OK();
}

namespace {
// Snapshot format: repeated (path-suffix, contents) pairs, length-prefixed.
void PutChunk(std::string* out, std::string_view s) {
  uint64_t v = s.size();
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
  out->append(s.data(), s.size());
}

bool GetChunk(std::string_view* in, std::string_view* s) {
  uint64_t len = 0;
  int shift = 0;
  while (!in->empty() && shift <= 63) {
    uint8_t byte = static_cast<uint8_t>(in->front());
    in->remove_prefix(1);
    len |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      if (in->size() < len) return false;
      *s = in->substr(0, len);
      in->remove_prefix(len);
      return true;
    }
    shift += 7;
  }
  return false;
}
}  // namespace

Result<uint64_t> ShipReceiptState(FileSystem* fs, const std::string& db_dir,
                                  ArchiverEndpoint* archiver,
                                  std::string_view snapshot_name) {
  BISTRO_ASSIGN_OR_RETURN(auto entries, fs->ListRecursive(db_dir));
  std::string snapshot;
  for (const FileInfo& info : entries) {
    BISTRO_ASSIGN_OR_RETURN(std::string contents, fs->ReadFile(info.path));
    std::string_view rel(info.path);
    rel.remove_prefix(db_dir.size());
    while (!rel.empty() && rel.front() == '/') rel.remove_prefix(1);
    PutChunk(&snapshot, rel);
    PutChunk(&snapshot, contents);
  }
  uint64_t size = snapshot.size();
  BISTRO_RETURN_IF_ERROR(
      archiver->StoreReceiptState(snapshot_name, snapshot));
  return size;
}

Status RestoreReceiptState(FileSystem* archive_fs,
                           const ArchiverEndpoint& archiver,
                           std::string_view snapshot_name, FileSystem* fs,
                           const std::string& db_dir) {
  std::string src = path::Join(path::Join(archiver.root(), "_receipt_state"),
                               std::string(snapshot_name));
  BISTRO_ASSIGN_OR_RETURN(std::string snapshot, archive_fs->ReadFile(src));
  std::string_view in(snapshot);
  while (!in.empty()) {
    std::string_view rel, contents;
    if (!GetChunk(&in, &rel) || !GetChunk(&in, &contents)) {
      return Status::Corruption("truncated receipt-state snapshot");
    }
    BISTRO_RETURN_IF_ERROR(
        fs->WriteFile(path::Join(db_dir, std::string(rel)), contents));
  }
  return Status::OK();
}

}  // namespace bistro

#ifndef BISTRO_DELIVERY_ENGINE_H_
#define BISTRO_DELIVERY_ENGINE_H_

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "config/registry.h"
#include "core/types.h"
#include "delivery/payload_cache.h"
#include "fanout/subscription_index.h"
#include "kv/receipts.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sched/scheduler.h"
#include "sim/event_loop.h"
#include "trigger/trigger.h"
#include "vfs/filesystem.h"

namespace bistro {

class PlanRuntime;

/// Snapshot of the delivery subsystem's counters. The registry's
/// `bistro_delivery_*` counters are the source of truth; this struct is
/// the by-value view `stats()` assembles from them.
struct DeliveryStats {
  uint64_t jobs_submitted = 0;
  uint64_t files_delivered = 0;   // successful (file, subscriber) sends
  uint64_t notifications_sent = 0;
  uint64_t send_failures = 0;
  uint64_t retries = 0;
  uint64_t parked = 0;            // jobs dropped because subscriber offline
  uint64_t dead_lettered = 0;     // jobs parked after exhausting retries
  uint64_t backfilled = 0;        // jobs submitted by queue recomputation
  uint64_t staging_reads = 0;       // staged files read from the filesystem
  uint64_t staging_cache_hits = 0;  // served from the payload cache
  uint64_t cache_evictions = 0;     // payloads evicted by the byte budget
  uint64_t coalesced_files = 0;     // files sent inside multi-file frames
  uint64_t coalesced_frames = 0;    // multi-file frames sent
  uint64_t receipt_group_flushes = 0;  // delivery-receipt group commits
  uint64_t batches_closed = 0;
  uint64_t triggers_invoked = 0;
  uint64_t trigger_failures = 0;
  uint64_t offline_transitions = 0;
};

/// The Bistro feed delivery subsystem (paper §4): takes staged files,
/// fans them out to subscribers through the scheduler and transport,
/// persists delivery receipts, detects subscriber failures, backfills
/// returning subscribers from the receipt database, and drives the
/// batching/trigger machinery.
///
/// Single-threaded: all work runs on the EventLoop, which makes the whole
/// subsystem deterministic under simulated time.
class DeliveryEngine {
 public:
  struct Options {
    Options() {}
    /// Consecutive failures after which a subscriber is flagged offline.
    int offline_after_failures = 3;
    /// Base (minimum) retry backoff. This used to be a fixed delay; it is
    /// now the floor of the exponential schedule, and the first retry
    /// always waits exactly this long.
    Duration retry_backoff = 5 * kSecond;
    /// Ceiling of the exponential retry schedule.
    Duration retry_backoff_max = 2 * kMinute;
    /// Per-retry growth factor of the schedule.
    double retry_backoff_multiplier = 3.0;
    /// Apply decorrelated jitter: each retry sleeps a uniform draw from
    /// [base, min(cap, last_sleep * multiplier)] instead of the
    /// deterministic envelope, de-synchronizing retry storms across jobs.
    bool retry_jitter = true;
    /// Seed for the jitter Rng (determinism under simulation).
    uint64_t backoff_seed = 0x42;
    /// Cadence of probes to offline subscribers (§4.2 "transmissions are
    /// periodically retried").
    Duration probe_interval = 30 * kSecond;
    /// Max delivery attempts per job per online episode; a job that
    /// exhausts them moves to the dead-letter queue.
    int max_attempts = 10;
    /// Bound on the (file, subscriber) pending-dedupe set. Above it, the
    /// oldest tracked pair is forgotten: a later backfill may then
    /// resubmit that delivery, which the delivery receipt check and the
    /// endpoint's dedupe absorb — memory stays bounded, exactly-once is
    /// preserved, only a wasted duplicate submit is possible.
    size_t max_pending_pairs = 1 << 20;
    /// Pipelined send window: at most this many of one subscriber's jobs
    /// in flight at once, acks completing out of the event loop instead
    /// of send→await-ack→next. 0 = unlimited (bounded only by scheduler
    /// slots, the legacy behavior); 1 = strict lockstep.
    size_t window = 0;
    /// Coalesce small queued push files to the same subscriber into one
    /// multi-file wire frame while the frame's payload total stays under
    /// this many bytes. 0 = off (one frame per file, legacy).
    size_t coalesce_bytes = 0;
    /// Byte budget of the staged-payload LRU cache. Payloads are shared
    /// (zero copies, CRC computed once) across a fan-out regardless;
    /// the budget controls retention *across* files. 0 disables
    /// retention — every file is read and CRC'd once per dispatch round
    /// (the bench_delivery lockstep-baseline ablation).
    size_t cache_bytes = 64u << 20;
    /// Delivery receipts per group commit: completed deliveries buffer
    /// until the group fills, the engine goes ack-quiescent, or
    /// receipt_flush_interval elapses — one WAL append + one fsync per
    /// group. 1 = legacy immediate per-ack receipt writes.
    size_t receipt_group = 1;
    /// Time bound on how long a buffered delivery receipt may wait for
    /// its group to fill.
    Duration receipt_flush_interval = 100 * kMillisecond;
  };

  /// `metrics` may be null (the engine then owns a private registry so
  /// counters always exist); `tracer` may be null (lifecycle marks are
  /// skipped).
  DeliveryEngine(EventLoop* loop, FeedRegistry* registry,
                 ReceiptDatabase* receipts, FileSystem* staging_fs,
                 Transport* transport, DeliveryScheduler* scheduler,
                 TriggerInvoker* invoker, Logger* logger,
                 Options options = Options(),
                 MetricsRegistry* metrics = nullptr,
                 FileTracer* tracer = nullptr);

  /// Attaches the compiled ingestion-plan table (may be null: no plans,
  /// exact legacy behavior). Plans restrict fan-out (route lists, A/B
  /// split arms) and scale delivery deadlines by SLO class; the same
  /// rules apply to real-time submission and receipt-driven backfill, so
  /// a recomputed queue never resubmits a filtered delivery.
  void AttachPlans(PlanRuntime* plans) { plans_ = plans; }

  /// Fans a freshly staged file out to every subscriber of its feeds.
  void SubmitStagedFile(const StagedFile& file);

  /// Propagates a source end-of-batch marker to punctuation-mode
  /// subscribers of `feed`.
  void OnSourcePunctuation(const FeedName& feed, TimePoint batch_time);

  /// Recomputes the delivery queue for one subscriber from receipts and
  /// submits every undelivered file (new subscriber joining, subscriber
  /// back online, or feed definition revised — §4.2).
  void Backfill(const SubscriberName& subscriber);

  /// Recomputes queues for every subscriber of `feed` (after revision).
  void BackfillFeed(const FeedName& feed);

  /// Failover re-route: submits to `to` every file in `from`'s feeds
  /// that has no delivery receipt for `from` — the backlog a down
  /// primary is sitting on — skipping files `to` already holds. The
  /// caller must have subscribed `to` to the relevant feeds first; any
  /// duplicate this creates is absorbed downstream by receipt dedupe.
  void RerouteUndelivered(const SubscriberName& from,
                          const SubscriberName& to);

  bool IsOffline(const SubscriberName& subscriber) const;
  /// Force an offline/online transition (tests, admin).
  void SetOffline(const SubscriberName& subscriber, bool offline);

  /// Commits any buffered delivery receipts now (one group commit).
  /// Called internally on quiescence/size/time triggers; public for
  /// shutdown paths and tests.
  void FlushDeliveryReceipts();
  /// Delivery receipts buffered and not yet group-committed.
  size_t buffered_receipts() const { return receipt_buffer_.size(); }

  DeliveryStats stats() const;
  const SchedulerMetrics& scheduler_metrics() const {
    return scheduler_->metrics();
  }
  /// Closes all open batches (shutdown).
  void FlushBatches();

  /// Jobs that exhausted max_attempts, parked for operator inspection.
  /// They stay out of the retry path until redriven; receipts still list
  /// the files as undelivered, so a backfill can also recover them.
  const std::vector<TransferJob>& dead_letters() const { return dead_letter_; }
  /// Resubmits every dead-lettered job with a fresh attempt budget.
  void RedriveDeadLetters();

  /// The per-feed subscription index the hot paths resolve fan-out
  /// through (exposed for startup backfill and tests).
  fanout::SubscriptionIndex* subscription_index() { return &index_; }

 private:
  /// A job resolved and ready to hand to the transport.
  struct PreparedJob {
    TransferJob job;
    Message msg;
    std::string endpoint;
  };

  void Pump();
  /// Sends one round of dequeued jobs, coalescing same-endpoint runs of
  /// small push files into multi-file frames when enabled.
  void DispatchRound(std::vector<TransferJob> round);
  /// Resolves subscriber/payload for a dequeued job. Returns nullopt when
  /// the job failed fast (subscriber gone/offline, staged file lost); the
  /// scheduler has then already been told.
  std::optional<PreparedJob> PrepareJob(TransferJob job);
  /// Completion callback shared by single sends and bundle items.
  SendCallback DoneCallback(TransferJob job, TimePoint started);
  /// Next sleep for a failed job (exponential, capped, optionally
  /// jittered); records the draw in job->last_backoff.
  Duration NextBackoff(TransferJob* job);
  void StartJob(TransferJob job);
  void OnJobDone(TransferJob job, TimePoint started, const Status& status);
  /// Buffers (or, in legacy mode, immediately writes) the delivery
  /// receipt for a successful send.
  void RecordDeliveryReceipt(const TransferJob& job, TimePoint now);
  /// Keeps retrying a delivery-receipt write that failed after a
  /// successful send (a lost receipt would cause redelivery after every
  /// restart).
  void RetryDeliveryReceipt(const SubscriberName& sub, FileId file_id,
                            TimePoint when);
  void HandleFailure(TransferJob job);
  void ProbeOffline(const SubscriberName& subscriber);
  void FeedBatcher(const SubscriberSpec& sub, const FeedName& feed,
                   FileId file, TimePoint data_time);
  Batcher* GetBatcher(const SubscriberSpec& sub, const FeedName& feed);
  void EmitBatch(const SubscriberSpec& sub, BatchEvent event);
  void ScheduleBatchTick(const SubscriberName& sub_name, const FeedName& feed);
  void SubmitJobsFor(const SubscriberSpec& sub,
                     const std::vector<ArrivalReceipt>& receipts,
                     bool backfill);
  /// pending_ bookkeeping: inserts/erases keep the size-capped order
  /// queue and the depth gauge in step with the set.
  void InsertPending(const std::pair<FileId, SubscriberName>& key);
  void ErasePending(const std::pair<FileId, SubscriberName>& key);

  EventLoop* loop_;
  FeedRegistry* registry_;
  /// Inverted feed -> subscribers index; replaces SubscribersOf scans on
  /// the delivery, punctuation and backfill paths.
  fanout::SubscriptionIndex index_;
  ReceiptDatabase* receipts_;
  FileSystem* staging_fs_;
  Transport* transport_;
  DeliveryScheduler* scheduler_;
  TriggerInvoker* invoker_;
  Logger* logger_;
  Options options_;
  PlanRuntime* plans_ = nullptr;  // optional; see AttachPlans

  /// Wraps a callback so it becomes a no-op if this engine has been
  /// destroyed before the event loop runs it (restart safety: retry,
  /// probe and batch-tick events may outlive the engine).
  std::function<void()> Guard(std::function<void()> fn);

  /// Lifetime token observed by Guard().
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);

  /// Backing registry when none is injected through the constructor.
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  FileTracer* tracer_ = nullptr;
  Counter* jobs_submitted_;
  Counter* files_delivered_;
  Counter* notifications_sent_;
  Counter* send_failures_;
  Counter* retries_;
  Counter* parked_;
  Counter* dead_lettered_;
  Counter* backfilled_;
  Counter* staging_reads_;
  Counter* staging_cache_hits_;
  Counter* coalesced_files_;
  Counter* coalesced_frames_;
  Counter* receipt_group_flushes_;
  Gauge* inflight_gauge_;
  Gauge* receipt_buffer_gauge_;
  Counter* batches_closed_;
  Counter* triggers_invoked_;
  Counter* trigger_failures_;
  Counter* offline_transitions_;
  /// Jitter source for retry backoff (seeded; see Options::backoff_seed).
  Rng backoff_rng_;
  std::vector<TransferJob> dead_letter_;
  std::set<SubscriberName> offline_;
  /// (file, subscriber) pairs queued or in flight, to dedupe backfill
  /// against real-time submission. Bounded to max_pending_pairs; see
  /// InsertPending for the eviction contract.
  std::set<std::pair<FileId, SubscriberName>> pending_;
  /// Insertion order of pending_ entries (lazily compacted), so the cap
  /// evicts oldest-first.
  std::deque<std::pair<FileId, SubscriberName>> pending_order_;
  Counter* pending_evicted_;
  Gauge* pending_pairs_;
  std::map<std::pair<SubscriberName, FeedName>, std::unique_ptr<Batcher>>
      batchers_;
  /// LRU byte-budget cache of staged payloads: staged files are immutable
  /// until expiry, so one read + one CRC serves the whole fan-out (and,
  /// within the budget, later backfills of the same file).
  StagedPayloadCache payload_cache_;
  /// Delivery receipts awaiting their group commit (receipt_group > 1).
  std::vector<ReceiptDatabase::DeliveryRecord> receipt_buffer_;
  bool receipt_flush_timer_armed_ = false;
};

}  // namespace bistro

#endif  // BISTRO_DELIVERY_ENGINE_H_

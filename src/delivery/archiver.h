#ifndef BISTRO_DELIVERY_ARCHIVER_H_
#define BISTRO_DELIVERY_ARCHIVER_H_

#include <string>

#include "kv/kvstore.h"
#include "net/transport.h"
#include "vfs/filesystem.h"

namespace bistro {

/// An archiver node (paper §4.2): a special subscriber responsible for
/// long-term feed history on bulk storage, plus copies of the server's
/// receipt-database state, giving the system a recovery path after a
/// catastrophic server storage failure.
///
/// It is wired like any subscriber (subscribe it to the feed groups to
/// archive, register it as a transport endpoint); in addition it accepts
/// receipt-log shipments (see ShipReceiptState below).
class ArchiverEndpoint : public Endpoint {
 public:
  /// Files are stored under `root`/<YYYY>/<MM>/<DD>/<name>, dated by the
  /// file's data timestamp (falling back to flat storage without one).
  ArchiverEndpoint(FileSystem* fs, std::string root);

  Status HandleMessage(const Message& msg) override;

  /// Stores a shipped copy of the upstream receipt-database state.
  Status StoreReceiptState(std::string_view snapshot_name,
                           std::string_view bytes);

  uint64_t files_archived() const { return files_archived_; }
  uint64_t bytes_archived() const { return bytes_archived_; }
  uint64_t receipt_snapshots() const { return receipt_snapshots_; }

  const std::string& root() const { return root_; }

 private:
  FileSystem* fs_;
  std::string root_;
  uint64_t files_archived_ = 0;
  uint64_t bytes_archived_ = 0;
  uint64_t receipt_snapshots_ = 0;
};

/// Ships the server's receipt-database state (checkpoint + WAL bytes) to
/// an archiver. `db_dir` is the ReceiptDatabase directory on `fs`;
/// returns the number of bytes shipped. Used both for periodic archival
/// and before risky maintenance.
Result<uint64_t> ShipReceiptState(FileSystem* fs, const std::string& db_dir,
                                  ArchiverEndpoint* archiver,
                                  std::string_view snapshot_name);

/// Restores a previously shipped receipt-state snapshot into `db_dir`
/// (the disaster-recovery path: rebuild a dead server's receipt database
/// from the archiver's copy).
Status RestoreReceiptState(FileSystem* archive_fs,
                           const ArchiverEndpoint& archiver,
                           std::string_view snapshot_name, FileSystem* fs,
                           const std::string& db_dir);

}  // namespace bistro

#endif  // BISTRO_DELIVERY_ARCHIVER_H_

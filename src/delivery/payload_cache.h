#ifndef BISTRO_DELIVERY_PAYLOAD_CACHE_H_
#define BISTRO_DELIVERY_PAYLOAD_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>

#include "obs/metrics.h"
#include "vfs/filesystem.h"

namespace bistro {

/// LRU cache of staged-file payloads keyed by staged path, with a byte
/// budget. One entry holds the immutable bytes (shared with every
/// in-flight Message that aliases them) plus the end-to-end CRC computed
/// once at insert — so an N-subscriber fan-out costs one staging read,
/// one CRC, and zero copies, however large N is (paper §4: per-subscriber
/// marginal delivery cost must be near zero for fan-out to scale).
///
/// Eviction drops the cache's reference only; in-flight messages keep the
/// payload alive through their own shared_ptr until the last ack.
class StagedPayloadCache {
 public:
  struct Entry {
    std::shared_ptr<const std::string> payload;
    uint32_t crc = 0;
  };

  /// `byte_budget` 0 disables caching entirely (every Get re-reads and
  /// re-CRCs — the lockstep-baseline ablation for bench_delivery).
  explicit StagedPayloadCache(FileSystem* fs, size_t byte_budget)
      : fs_(fs), byte_budget_(byte_budget) {}

  /// Returns the cached entry for `staged_path`, reading + CRC-ing the
  /// file on a miss. Errors come from the filesystem read.
  Result<Entry> Get(const std::string& staged_path);

  /// Drops one path (e.g. after the staged file is rewritten) or all.
  void Invalidate(const std::string& staged_path);
  void Clear();

  void AttachMetrics(MetricsRegistry* registry);

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }
  size_t bytes() const { return bytes_; }
  size_t entries() const { return lru_.size(); }

 private:
  void EvictToBudget();

  FileSystem* fs_;
  size_t byte_budget_;
  size_t bytes_ = 0;
  // Most-recently-used at the front; map values point into the list.
  struct Node {
    std::string path;
    Entry entry;
  };
  std::list<Node> lru_;
  std::map<std::string, std::list<Node>::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  Counter* hits_counter_ = nullptr;
  Counter* misses_counter_ = nullptr;
  Counter* evictions_counter_ = nullptr;
  Gauge* bytes_gauge_ = nullptr;
};

}  // namespace bistro

#endif  // BISTRO_DELIVERY_PAYLOAD_CACHE_H_

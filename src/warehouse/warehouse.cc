#include "warehouse/warehouse.h"

#include "common/strings.h"
#include "compress/codec.h"

namespace bistro {

Status StreamWarehouse::HandleMessage(const Message& msg) {
  switch (msg.type) {
    case MessageType::kFileData: {
      // Files without a data timestamp go to the epoch partition rather
      // than being dropped (they still carry rows).
      TimePoint start = PartitionStart(msg.data_time);
      Partition& p = partitions_[start];
      // Feeds may deliver compressed staging copies; expand transparently.
      BISTRO_ASSIGN_OR_RETURN(std::string content, AutoDecompress(msg.payload));
      p.raw[msg.name] = std::move(content);
      dirty_.insert(start);
      ++files_received_;
      return Status::OK();
    }
    default:
      return Status::OK();  // notifications/batch markers need no storage
  }
}

size_t StreamWarehouse::RecomputeDirty() {
  size_t recomputed = 0;
  for (TimePoint start : dirty_) {
    auto it = partitions_.find(start);
    if (it == partitions_.end()) continue;
    Recompute(start, &it->second);
    ++recomputed;
  }
  dirty_.clear();
  return recomputed;
}

void StreamWarehouse::Recompute(TimePoint start, Partition* p) {
  // Full recomputation from the partition's raw files — the paper's
  // "simpler method of recalculating [a] small set of affected recent
  // partitions" in place of incremental view maintenance.
  PartitionView view;
  view.start = start;
  view.recomputes = p->view.recomputes + 1;
  view.raw_files = p->raw.size();
  for (const auto& [name, content] : p->raw) {
    (void)name;
    for (const auto& line : Split(content, '\n')) {
      if (Trim(line).empty()) continue;
      auto fields = Split(line, ',');
      if (fields.size() < 2) {
        view.bad_rows++;
        continue;
      }
      // Last numeric field is the value.
      std::optional<double> value;
      for (auto it = fields.rbegin(); it != fields.rend(); ++it) {
        value = ParseDouble(Trim(*it));
        if (value) break;
      }
      if (!value) {
        view.bad_rows++;
        continue;
      }
      auto& [count, sum] = view.by_entity[fields[0]];
      count++;
      sum += *value;
      view.rows++;
    }
  }
  p->view = std::move(view);
  p->computed = true;
  ++total_recomputes_;
}

Result<PartitionView> StreamWarehouse::View(TimePoint t) const {
  auto it = partitions_.find(PartitionStart(t));
  if (it == partitions_.end() || !it->second.computed) {
    return Status::NotFound(
        StrFormat("no computed partition at %s", FormatTime(t).c_str()));
  }
  return it->second.view;
}

}  // namespace bistro

#ifndef BISTRO_WAREHOUSE_WAREHOUSE_H_
#define BISTRO_WAREHOUSE_WAREHOUSE_H_

#include <map>
#include <set>
#include <string>

#include "common/status.h"
#include "net/transport.h"

namespace bistro {

/// Aggregate view of one time partition: per-entity row counts and value
/// sums computed from the raw feed files that landed in the partition.
struct PartitionView {
  TimePoint start = 0;
  uint64_t raw_files = 0;
  uint64_t rows = 0;
  uint64_t bad_rows = 0;  // unparseable lines skipped
  /// entity -> (row count, value sum).
  std::map<std::string, std::pair<uint64_t, double>> by_entity;
  /// How many times this partition has been (re)computed.
  uint64_t recomputes = 0;
};

/// A miniature streaming data warehouse — the paper's motivating
/// subscriber (§2.3; DataDepot [7]): maintains time-partitioned
/// materialized views over raw feed files and, instead of incremental
/// view maintenance, *recomputes the affected recent partitions* when its
/// trigger fires.
///
/// Wired as a transport Endpoint: pushed files are filed into their data
/// partition and the partition is marked dirty; the subscriber's Bistro
/// trigger (ideally batch-based) calls RecomputeDirty(). The recompute
/// counter is exactly the cost the paper's batching discussion is about:
/// per-file triggers recompute a partition once per file, batch triggers
/// once per batch.
///
/// Raw row format: CSV lines whose first field is the entity and whose
/// last numeric field is the value ("router_7,cpu,poller2,...,42").
class StreamWarehouse : public Endpoint {
 public:
  explicit StreamWarehouse(Duration partition_duration = 5 * kMinute)
      : partition_duration_(partition_duration) {}

  // Endpoint: receives pushed feed files.
  Status HandleMessage(const Message& msg) override;

  /// Recomputes every dirty partition; returns how many were recomputed.
  /// This is what a subscriber registers as its Bistro trigger.
  size_t RecomputeDirty();

  /// The partition containing `t` (must have been computed).
  Result<PartitionView> View(TimePoint t) const;

  /// Start of the partition containing `t`.
  TimePoint PartitionStart(TimePoint t) const {
    TimePoint p = t - (t % partition_duration_);
    if (t < 0 && t % partition_duration_ != 0) p -= partition_duration_;
    return p;
  }

  size_t partition_count() const { return partitions_.size(); }
  size_t dirty_count() const { return dirty_.size(); }
  /// Total partition recomputations since construction (the cost metric).
  uint64_t total_recomputes() const { return total_recomputes_; }
  uint64_t files_received() const { return files_received_; }

 private:
  struct Partition {
    std::map<std::string, std::string> raw;  // filename -> contents
    PartitionView view;
    bool computed = false;
  };

  void Recompute(TimePoint start, Partition* p);

  Duration partition_duration_;
  std::map<TimePoint, Partition> partitions_;
  std::set<TimePoint> dirty_;
  uint64_t total_recomputes_ = 0;
  uint64_t files_received_ = 0;
};

}  // namespace bistro

#endif  // BISTRO_WAREHOUSE_WAREHOUSE_H_

#include "vfs/filesystem.h"

#include <deque>

namespace bistro {

Result<std::vector<FileInfo>> FileSystem::ListRecursive(const std::string& root) {
  std::vector<FileInfo> out;
  std::deque<std::string> pending{root};
  while (!pending.empty()) {
    std::string dir = std::move(pending.front());
    pending.pop_front();
    auto listing = ListDir(dir);
    if (!listing.ok()) {
      if (listing.status().IsNotFound()) continue;
      return listing.status();
    }
    for (auto& entry : *listing) {
      if (entry.is_directory) {
        pending.push_back(entry.path);
      } else {
        out.push_back(std::move(entry));
      }
    }
  }
  return out;
}

namespace path {

std::string Join(std::string_view a, std::string_view b) {
  if (a.empty()) return std::string(b);
  if (b.empty()) return std::string(a);
  std::string out(a);
  if (out.back() != '/') out += '/';
  size_t skip = 0;
  while (skip < b.size() && b[skip] == '/') ++skip;
  out += b.substr(skip);
  return out;
}

std::string_view Basename(std::string_view p) {
  size_t pos = p.find_last_of('/');
  return pos == std::string_view::npos ? p : p.substr(pos + 1);
}

std::string_view Dirname(std::string_view p) {
  size_t pos = p.find_last_of('/');
  if (pos == std::string_view::npos) return std::string_view();
  if (pos == 0) return p.substr(0, 1);  // root
  return p.substr(0, pos);
}

std::string Normalize(std::string_view p) {
  std::string out;
  out.reserve(p.size());
  bool prev_slash = false;
  for (char c : p) {
    if (c == '/') {
      if (!prev_slash) out += c;
      prev_slash = true;
    } else {
      out += c;
      prev_slash = false;
    }
  }
  while (out.size() > 1 && out.back() == '/') out.pop_back();
  return out;
}

}  // namespace path
}  // namespace bistro

#include "vfs/memfs.h"

#include <algorithm>

namespace bistro {

FsCostModel FsCostModel::RemoteFileServer() {
  FsCostModel m;
  m.list_base = 2 * kMillisecond;
  m.list_per_entry = 50 * kMicrosecond;
  m.stat_cost = 500 * kMicrosecond;
  m.open_cost = 1 * kMillisecond;
  m.per_byte = 0;  // data path assumed fast relative to metadata
  return m;
}

FsCostModel FsCostModel::Free() { return FsCostModel{}; }

InMemoryFileSystem::InMemoryFileSystem(SimClock* clock, FsCostModel cost)
    : clock_(clock), cost_(cost) {
  dirs_.insert("/");
}

void InMemoryFileSystem::Charge(Duration d) {
  if (clock_ != nullptr && d > 0) clock_->Advance(d);
}

TimePoint InMemoryFileSystem::NowLocked() const {
  return clock_ != nullptr ? clock_->Now() : 0;
}

void InMemoryFileSystem::AddParentsLocked(const std::string& p) {
  std::string_view dir = path::Dirname(p);
  while (!dir.empty() && dirs_.insert(std::string(dir)).second) {
    dir = path::Dirname(dir);
  }
}

Status InMemoryFileSystem::WriteFile(const std::string& raw, std::string_view data) {
  std::string p = path::Normalize(raw);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (dirs_.count(p) != 0) {
      return Status::InvalidArgument("is a directory: " + p);
    }
    Node& node = files_[p];
    node.data.assign(data.data(), data.size());
    node.mtime = NowLocked();
    AddParentsLocked(p);
    stats_.writes++;
    stats_.bytes_written += data.size();
  }
  Charge(cost_.open_cost + cost_.per_byte * static_cast<Duration>(data.size()));
  return Status::OK();
}

Status InMemoryFileSystem::AppendFile(const std::string& raw, std::string_view data) {
  std::string p = path::Normalize(raw);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (dirs_.count(p) != 0) {
      return Status::InvalidArgument("is a directory: " + p);
    }
    Node& node = files_[p];
    node.data.append(data.data(), data.size());
    node.mtime = NowLocked();
    AddParentsLocked(p);
    stats_.writes++;
    stats_.bytes_written += data.size();
  }
  Charge(cost_.open_cost + cost_.per_byte * static_cast<Duration>(data.size()));
  return Status::OK();
}

Result<std::string> InMemoryFileSystem::ReadFile(const std::string& raw) {
  std::string p = path::Normalize(raw);
  std::string data;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(p);
    if (it == files_.end()) return Status::NotFound("no such file: " + p);
    data = it->second.data;
    stats_.reads++;
    stats_.bytes_read += data.size();
  }
  Charge(cost_.open_cost + cost_.per_byte * static_cast<Duration>(data.size()));
  return data;
}

Result<FileInfo> InMemoryFileSystem::Stat(const std::string& raw) {
  std::string p = path::Normalize(raw);
  FileInfo info;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.stats++;
    auto it = files_.find(p);
    if (it != files_.end()) {
      info.path = p;
      info.size = it->second.data.size();
      info.mtime = it->second.mtime;
      info.is_directory = false;
    } else if (dirs_.count(p) != 0) {
      info.path = p;
      info.is_directory = true;
    } else {
      Charge(cost_.stat_cost);
      return Status::NotFound("no such path: " + p);
    }
  }
  Charge(cost_.stat_cost);
  return info;
}

Result<std::vector<FileInfo>> InMemoryFileSystem::ListDir(const std::string& raw) {
  std::string p = path::Normalize(raw);
  std::vector<FileInfo> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.lists++;
    if (dirs_.count(p) == 0) {
      Charge(cost_.list_base);
      return Status::NotFound("no such directory: " + p);
    }
    std::string prefix = p == "/" ? "/" : p + "/";
    // Immediate file children.
    for (auto it = files_.lower_bound(prefix);
         it != files_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
         ++it) {
      std::string_view rest(it->first);
      rest.remove_prefix(prefix.size());
      if (rest.find('/') != std::string_view::npos) continue;
      FileInfo info;
      info.path = it->first;
      info.size = it->second.data.size();
      info.mtime = it->second.mtime;
      out.push_back(std::move(info));
    }
    // Immediate directory children.
    for (auto it = dirs_.lower_bound(prefix);
         it != dirs_.end() && it->compare(0, prefix.size(), prefix) == 0; ++it) {
      std::string_view rest(*it);
      rest.remove_prefix(prefix.size());
      if (rest.empty() || rest.find('/') != std::string_view::npos) continue;
      FileInfo info;
      info.path = *it;
      info.is_directory = true;
      out.push_back(std::move(info));
    }
    std::sort(out.begin(), out.end(),
              [](const FileInfo& a, const FileInfo& b) { return a.path < b.path; });
    stats_.list_entries += out.size();
  }
  Charge(cost_.list_base +
         cost_.list_per_entry * static_cast<Duration>(out.size()));
  return out;
}

Status InMemoryFileSystem::Rename(const std::string& raw_from,
                                  const std::string& raw_to) {
  std::string from = path::Normalize(raw_from);
  std::string to = path::Normalize(raw_to);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(from);
    if (it == files_.end()) return Status::NotFound("no such file: " + from);
    Node node = std::move(it->second);
    files_.erase(it);
    node.mtime = NowLocked();
    files_[to] = std::move(node);
    AddParentsLocked(to);
    stats_.renames++;
  }
  Charge(cost_.open_cost);
  return Status::OK();
}

Status InMemoryFileSystem::Delete(const std::string& raw) {
  std::string p = path::Normalize(raw);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(p);
    if (it == files_.end()) return Status::NotFound("no such file: " + p);
    files_.erase(it);
    stats_.deletes++;
  }
  Charge(cost_.open_cost);
  return Status::OK();
}

Status InMemoryFileSystem::Sync(const std::string& raw) {
  std::string p = path::Normalize(raw);
  std::lock_guard<std::mutex> lock(mu_);
  if (files_.count(p) == 0) return Status::NotFound("no such file: " + p);
  stats_.syncs++;
  return Status::OK();
}

Status InMemoryFileSystem::MkDirs(const std::string& raw) {
  std::string p = path::Normalize(raw);
  std::lock_guard<std::mutex> lock(mu_);
  if (files_.count(p) != 0) {
    return Status::AlreadyExists("file exists at: " + p);
  }
  dirs_.insert(p);
  AddParentsLocked(p);
  return Status::OK();
}

bool InMemoryFileSystem::Exists(const std::string& raw) {
  std::string p = path::Normalize(raw);
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(p) != 0 || dirs_.count(p) != 0;
}

FsOpStats InMemoryFileSystem::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void InMemoryFileSystem::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = FsOpStats{};
}

uint64_t InMemoryFileSystem::TotalBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [_, node] : files_) total += node.data.size();
  return total;
}

size_t InMemoryFileSystem::FileCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.size();
}

}  // namespace bistro

#ifndef BISTRO_VFS_MEMFS_H_
#define BISTRO_VFS_MEMFS_H_

#include <map>
#include <mutex>
#include <set>
#include <string>

#include "vfs/filesystem.h"

namespace bistro {

/// Cost model charged against a Clock for each filesystem operation.
///
/// Real file servers serve data quickly but bottleneck on metadata
/// (paper §2.1.2/§2.2.1: "serving file metadata is always a bottleneck");
/// the default costs reflect that: listings cost a base latency plus a
/// per-entry cost, so scanning a directory holding a large feed history is
/// expensive while data reads are comparatively cheap.
struct FsCostModel {
  Duration list_base = 0;        // per ListDir call
  Duration list_per_entry = 0;   // per entry returned
  Duration stat_cost = 0;        // per Stat
  Duration open_cost = 0;        // per read/write/rename/delete
  Duration per_byte = 0;         // per byte read or written

  /// A model approximating a loaded NFS-style file server.
  static FsCostModel RemoteFileServer();
  /// Zero-cost model (default).
  static FsCostModel Free();
};

/// Thread-safe in-memory filesystem with operation counters and an optional
/// latency cost model. When a SimClock is supplied, each operation advances
/// simulated time according to the cost model, which lets experiments
/// measure how metadata load grows with history size without real disks.
class InMemoryFileSystem : public FileSystem {
 public:
  /// `clock` may be null (no latency charged). If non-null it must be a
  /// SimClock when used for deterministic experiments.
  explicit InMemoryFileSystem(SimClock* clock = nullptr,
                              FsCostModel cost = FsCostModel::Free());

  Status WriteFile(const std::string& path, std::string_view data) override;
  Status AppendFile(const std::string& path, std::string_view data) override;
  Result<std::string> ReadFile(const std::string& path) override;
  Result<FileInfo> Stat(const std::string& path) override;
  Result<std::vector<FileInfo>> ListDir(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Delete(const std::string& path) override;
  Status Sync(const std::string& path) override;
  Status MkDirs(const std::string& path) override;
  bool Exists(const std::string& path) override;

  FsOpStats stats() const override;
  void ResetStats() override;

  /// Total bytes stored across all files.
  uint64_t TotalBytes() const;
  /// Number of regular files.
  size_t FileCount() const;

 private:
  struct Node {
    std::string data;
    TimePoint mtime = 0;
  };

  void Charge(Duration d);
  TimePoint NowLocked() const;
  // Registers all ancestor directories of `path`.
  void AddParentsLocked(const std::string& path);

  SimClock* clock_;
  FsCostModel cost_;
  mutable std::mutex mu_;
  std::map<std::string, Node> files_;   // normalized path -> contents
  std::set<std::string> dirs_;          // normalized dir paths
  FsOpStats stats_;
};

}  // namespace bistro

#endif  // BISTRO_VFS_MEMFS_H_

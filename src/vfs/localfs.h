#ifndef BISTRO_VFS_LOCALFS_H_
#define BISTRO_VFS_LOCALFS_H_

#include <atomic>
#include <mutex>

#include "vfs/filesystem.h"

namespace bistro {

/// POSIX-backed filesystem used by live deployments and the runnable
/// examples. Paths are passed to the OS unchanged.
class LocalFileSystem : public FileSystem {
 public:
  LocalFileSystem() = default;

  Status WriteFile(const std::string& path, std::string_view data) override;
  Status AppendFile(const std::string& path, std::string_view data) override;
  Result<std::string> ReadFile(const std::string& path) override;
  Result<FileInfo> Stat(const std::string& path) override;
  Result<std::vector<FileInfo>> ListDir(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Delete(const std::string& path) override;
  Status Sync(const std::string& path) override;
  Status MkDirs(const std::string& path) override;
  bool Exists(const std::string& path) override;

  FsOpStats stats() const override;
  void ResetStats() override;

 private:
  mutable std::mutex mu_;
  FsOpStats stats_;
};

}  // namespace bistro

#endif  // BISTRO_VFS_LOCALFS_H_

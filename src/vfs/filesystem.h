#ifndef BISTRO_VFS_FILESYSTEM_H_
#define BISTRO_VFS_FILESYSTEM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/time.h"

namespace bistro {

/// Metadata for one filesystem entry.
struct FileInfo {
  std::string path;       // full path
  uint64_t size = 0;      // bytes (0 for directories)
  TimePoint mtime = 0;    // modification time
  bool is_directory = false;
};

/// Counters for filesystem operations. The pull-vs-push experiments (E1/E2)
/// hinge on how many *metadata* operations a delivery strategy issues, so
/// every FileSystem implementation tracks them.
struct FsOpStats {
  uint64_t lists = 0;          // directory listings
  uint64_t list_entries = 0;   // total entries returned by listings
  uint64_t stats = 0;          // Stat() calls
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t renames = 0;
  uint64_t deletes = 0;
  uint64_t syncs = 0;          // Sync() calls
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;

  /// Metadata operations only (lists weighted by entries served).
  uint64_t MetadataOps() const { return lists + list_entries + stats + renames + deletes; }
};

/// Filesystem abstraction, in the spirit of the RocksDB Env / Arrow
/// FileSystem layers. All Bistro components perform file I/O through this
/// interface so the whole server can run against an in-memory filesystem in
/// tests and benchmarks, or the local POSIX filesystem in deployments.
///
/// Paths use '/' separators. Parent directories are created implicitly by
/// WriteFile/Rename (matching the landing-zone usage pattern).
class FileSystem {
 public:
  virtual ~FileSystem() = default;

  /// Writes (creates or truncates) a file with the given contents.
  virtual Status WriteFile(const std::string& path, std::string_view data) = 0;

  /// Appends to a file, creating it if absent.
  virtual Status AppendFile(const std::string& path, std::string_view data) = 0;

  /// Reads the whole file.
  virtual Result<std::string> ReadFile(const std::string& path) = 0;

  /// Stats one entry.
  virtual Result<FileInfo> Stat(const std::string& path) = 0;

  /// Lists immediate children of a directory (non-recursive), sorted by name.
  virtual Result<std::vector<FileInfo>> ListDir(const std::string& path) = 0;

  /// Atomically renames a file (the landing->staging move).
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  /// Deletes a file (not a directory).
  virtual Status Delete(const std::string& path) = 0;

  /// Flushes a file's contents to durable storage (fsync). Data written
  /// but not yet synced may be lost on a crash; the WAL's fsync option and
  /// the fault injector's crash model build on this. The default is a
  /// no-op (an in-memory filesystem is trivially "durable").
  virtual Status Sync(const std::string& path) {
    (void)path;
    return Status::OK();
  }

  /// Creates a directory (and parents).
  virtual Status MkDirs(const std::string& path) = 0;

  /// True if the path exists.
  virtual bool Exists(const std::string& path) = 0;

  /// Operation counters accumulated since construction / last Reset.
  virtual FsOpStats stats() const = 0;
  virtual void ResetStats() = 0;

  /// Recursively lists all files (not directories) under `root`.
  Result<std::vector<FileInfo>> ListRecursive(const std::string& root);
};

/// Path helpers (pure string manipulation; no I/O).
namespace path {

/// Joins two path segments with exactly one '/'.
std::string Join(std::string_view a, std::string_view b);

/// "a/b/c.txt" -> "c.txt".
std::string_view Basename(std::string_view p);

/// "a/b/c.txt" -> "a/b"; "" if no directory component.
std::string_view Dirname(std::string_view p);

/// Normalizes: collapses duplicate '/', removes trailing '/'.
std::string Normalize(std::string_view p);

}  // namespace path

}  // namespace bistro

#endif  // BISTRO_VFS_FILESYSTEM_H_

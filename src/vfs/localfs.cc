#include "vfs/localfs.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/strings.h"

namespace bistro {

namespace {
Status Errno(const std::string& op, const std::string& p) {
  int err = errno;
  std::string msg = op + " " + p + ": " + std::strerror(err);
  if (err == ENOENT) return Status::NotFound(std::move(msg));
  if (err == EEXIST) return Status::AlreadyExists(std::move(msg));
  return Status::IoError(std::move(msg));
}

Status MkDirsImpl(const std::string& p) {
  if (p.empty() || p == "/") return Status::OK();
  struct stat st;
  if (::stat(p.c_str(), &st) == 0) {
    if (S_ISDIR(st.st_mode)) return Status::OK();
    return Status::AlreadyExists("file exists at: " + p);
  }
  std::string parent(path::Dirname(p));
  if (!parent.empty()) BISTRO_RETURN_IF_ERROR(MkDirsImpl(parent));
  if (::mkdir(p.c_str(), 0775) != 0 && errno != EEXIST) {
    return Errno("mkdir", p);
  }
  return Status::OK();
}

Status WriteImpl(const std::string& p, std::string_view data, const char* mode) {
  std::string parent(path::Dirname(p));
  if (!parent.empty()) BISTRO_RETURN_IF_ERROR(MkDirsImpl(parent));
  FILE* f = std::fopen(p.c_str(), mode);
  if (f == nullptr) return Errno("open", p);
  size_t written = data.empty() ? 0 : std::fwrite(data.data(), 1, data.size(), f);
  int close_rc = std::fclose(f);
  if (written != data.size() || close_rc != 0) {
    return Status::IoError("short write: " + p);
  }
  return Status::OK();
}
}  // namespace

Status LocalFileSystem::WriteFile(const std::string& p, std::string_view data) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.writes++;
    stats_.bytes_written += data.size();
  }
  return WriteImpl(p, data, "wb");
}

Status LocalFileSystem::AppendFile(const std::string& p, std::string_view data) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.writes++;
    stats_.bytes_written += data.size();
  }
  return WriteImpl(p, data, "ab");
}

Result<std::string> LocalFileSystem::ReadFile(const std::string& p) {
  FILE* f = std::fopen(p.c_str(), "rb");
  if (f == nullptr) return Errno("open", p);
  std::string data;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.append(buf, n);
  }
  bool err = std::ferror(f) != 0;
  std::fclose(f);
  if (err) return Status::IoError("read failed: " + p);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.reads++;
    stats_.bytes_read += data.size();
  }
  return data;
}

Result<FileInfo> LocalFileSystem::Stat(const std::string& p) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.stats++;
  }
  struct stat st;
  if (::stat(p.c_str(), &st) != 0) return Errno("stat", p);
  FileInfo info;
  info.path = p;
  info.is_directory = S_ISDIR(st.st_mode);
  info.size = info.is_directory ? 0 : static_cast<uint64_t>(st.st_size);
  info.mtime = static_cast<TimePoint>(st.st_mtime) * kSecond;
  return info;
}

Result<std::vector<FileInfo>> LocalFileSystem::ListDir(const std::string& p) {
  DIR* dir = ::opendir(p.c_str());
  if (dir == nullptr) return Errno("opendir", p);
  std::vector<FileInfo> out;
  struct dirent* ent;
  while ((ent = ::readdir(dir)) != nullptr) {
    std::string_view name(ent->d_name);
    if (name == "." || name == "..") continue;
    std::string full = path::Join(p, name);
    struct stat st;
    if (::stat(full.c_str(), &st) != 0) continue;  // raced with deletion
    FileInfo info;
    info.path = std::move(full);
    info.is_directory = S_ISDIR(st.st_mode);
    info.size = info.is_directory ? 0 : static_cast<uint64_t>(st.st_size);
    info.mtime = static_cast<TimePoint>(st.st_mtime) * kSecond;
    out.push_back(std::move(info));
  }
  ::closedir(dir);
  std::sort(out.begin(), out.end(),
            [](const FileInfo& a, const FileInfo& b) { return a.path < b.path; });
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.lists++;
    stats_.list_entries += out.size();
  }
  return out;
}

Status LocalFileSystem::Rename(const std::string& from, const std::string& to) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.renames++;
  }
  std::string parent(path::Dirname(to));
  if (!parent.empty()) BISTRO_RETURN_IF_ERROR(MkDirsImpl(parent));
  if (::rename(from.c_str(), to.c_str()) != 0) return Errno("rename", from);
  return Status::OK();
}

Status LocalFileSystem::Delete(const std::string& p) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.deletes++;
  }
  if (::unlink(p.c_str()) != 0) return Errno("unlink", p);
  return Status::OK();
}

Status LocalFileSystem::Sync(const std::string& p) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.syncs++;
  }
  int fd = ::open(p.c_str(), O_WRONLY);
  if (fd < 0) return Errno("open", p);
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Errno("fsync", p);
  return Status::OK();
}

Status LocalFileSystem::MkDirs(const std::string& p) { return MkDirsImpl(p); }

bool LocalFileSystem::Exists(const std::string& p) {
  struct stat st;
  return ::stat(p.c_str(), &st) == 0;
}

FsOpStats LocalFileSystem::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void LocalFileSystem::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = FsOpStats{};
}

}  // namespace bistro

#include "sim/network.h"

#include <algorithm>

namespace bistro {

void SimNetwork::SetLink(const std::string& subscriber, LinkSpec spec) {
  links_[subscriber].spec = spec;
}

bool SimNetwork::HasLink(const std::string& subscriber) const {
  return links_.count(subscriber) != 0;
}

void SimNetwork::SetOnline(const std::string& subscriber, bool online) {
  auto it = links_.find(subscriber);
  if (it != links_.end()) it->second.online = online;
}

bool SimNetwork::IsOnline(const std::string& subscriber) const {
  auto it = links_.find(subscriber);
  return it != links_.end() && it->second.online;
}

Result<Duration> SimNetwork::TransferDuration(const std::string& subscriber,
                                              uint64_t bytes) const {
  auto it = links_.find(subscriber);
  if (it == links_.end()) {
    return Status::Unavailable("no link to subscriber: " + subscriber);
  }
  const LinkSpec& spec = it->second.spec;
  uint64_t bw = std::max<uint64_t>(spec.bandwidth_bytes_per_sec, 1);
  Duration serialization =
      static_cast<Duration>((static_cast<double>(bytes) / bw) * kSecond);
  return spec.latency + serialization;
}

Result<TimePoint> SimNetwork::ScheduleTransfer(const std::string& subscriber,
                                               uint64_t bytes, TimePoint now) {
  auto it = links_.find(subscriber);
  if (it == links_.end()) {
    return Status::Unavailable("no link to subscriber: " + subscriber);
  }
  Link& link = it->second;
  if (!link.online) {
    return Status::Unavailable("subscriber offline: " + subscriber);
  }
  TimePoint start = std::max(now, link.busy_until);
  if (rng_->Bernoulli(link.spec.failure_prob)) {
    // A failed attempt still burns the setup latency on the link.
    link.busy_until = start + link.spec.latency;
    return Status::IoError("transfer failed to: " + subscriber);
  }
  BISTRO_ASSIGN_OR_RETURN(Duration d, TransferDuration(subscriber, bytes));
  link.busy_until = start + d;
  link.bytes_sent += bytes;
  return link.busy_until;
}

uint64_t SimNetwork::BytesSent(const std::string& subscriber) const {
  auto it = links_.find(subscriber);
  return it == links_.end() ? 0 : it->second.bytes_sent;
}

}  // namespace bistro

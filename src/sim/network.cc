#include "sim/network.h"

#include <algorithm>

namespace bistro {

void SimNetwork::AttachMetrics(MetricsRegistry* registry) {
  transfers_ = registry->GetCounter("bistro_simnet_transfers_total",
                                    "Transfers scheduled on simulated links");
  failures_ = registry->GetCounter(
      "bistro_simnet_failures_total",
      "Transfers rejected (offline/unknown link) or failed in flight");
  bytes_counter_ = registry->GetCounter("bistro_simnet_bytes_total",
                                        "Bytes scheduled on simulated links");
  duration_hist_ = registry->GetHistogram(
      "bistro_simnet_transfer_duration_us",
      "Per-transfer wire time including link queueing");
}

void SimNetwork::SetLink(const std::string& subscriber, LinkSpec spec) {
  links_[subscriber].spec = spec;
}

bool SimNetwork::HasLink(const std::string& subscriber) const {
  return links_.count(subscriber) != 0;
}

void SimNetwork::SetOnline(const std::string& subscriber, bool online) {
  auto it = links_.find(subscriber);
  if (it != links_.end()) it->second.online = online;
}

void SimNetwork::DegradeLink(const std::string& subscriber, double factor) {
  auto it = links_.find(subscriber);
  if (it == links_.end() || factor <= 0) return;
  LinkSpec& spec = it->second.spec;
  spec.bandwidth_bytes_per_sec = std::max<uint64_t>(
      1, static_cast<uint64_t>(spec.bandwidth_bytes_per_sec / factor));
  spec.latency = static_cast<Duration>(spec.latency * factor);
}

bool SimNetwork::IsOnline(const std::string& subscriber) const {
  auto it = links_.find(subscriber);
  return it != links_.end() && it->second.online;
}

Result<Duration> SimNetwork::TransferDuration(const std::string& subscriber,
                                              uint64_t bytes) const {
  auto it = links_.find(subscriber);
  if (it == links_.end()) {
    return Status::Unavailable("no link to subscriber: " + subscriber);
  }
  const LinkSpec& spec = it->second.spec;
  uint64_t bw = std::max<uint64_t>(spec.bandwidth_bytes_per_sec, 1);
  Duration serialization =
      static_cast<Duration>((static_cast<double>(bytes) / bw) * kSecond);
  return spec.latency + serialization;
}

Result<TimePoint> SimNetwork::ScheduleTransfer(const std::string& subscriber,
                                               uint64_t bytes, TimePoint now) {
  auto it = links_.find(subscriber);
  if (it == links_.end()) {
    if (failures_ != nullptr) failures_->Increment();
    return Status::Unavailable("no link to subscriber: " + subscriber);
  }
  Link& link = it->second;
  if (!link.online) {
    if (failures_ != nullptr) failures_->Increment();
    return Status::Unavailable("subscriber offline: " + subscriber);
  }
  TimePoint start = std::max(now, link.busy_until);
  if (rng_->Bernoulli(link.spec.failure_prob)) {
    // A failed attempt still burns the setup latency on the link.
    link.busy_until = start + link.spec.latency;
    if (failures_ != nullptr) failures_->Increment();
    return Status::IoError("transfer failed to: " + subscriber);
  }
  BISTRO_ASSIGN_OR_RETURN(Duration d, TransferDuration(subscriber, bytes));
  TimePoint completion;
  if (pipelined_acks_) {
    // Link is held for serialization only; the ack returns one propagation
    // latency after the last byte leaves. Successive windowed sends thus
    // overlap their latencies instead of queueing behind them.
    Duration serialization = d - link.spec.latency;
    link.busy_until = start + serialization;
    completion = link.busy_until + link.spec.latency;
  } else {
    link.busy_until = start + d;
    completion = link.busy_until;
  }
  link.bytes_sent += bytes;
  if (transfers_ != nullptr) {
    transfers_->Increment();
    bytes_counter_->Increment(bytes);
    duration_hist_->Record(completion - now);
  }
  return completion;
}

uint64_t SimNetwork::BytesSent(const std::string& subscriber) const {
  auto it = links_.find(subscriber);
  return it == links_.end() ? 0 : it->second.bytes_sent;
}

}  // namespace bistro

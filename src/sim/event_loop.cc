#include "sim/event_loop.h"

namespace bistro {

void EventLoop::PostAt(TimePoint t, std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  TimePoint now = clock_->Now();
  if (t < now) t = now;
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

void EventLoop::AdvanceTo(TimePoint t) {
  TimePoint now = clock_->Now();
  if (t <= now) return;
  if (auto* sim = dynamic_cast<SimClock*>(clock_)) {
    sim->AdvanceTo(t);
  } else {
    clock_->SleepFor(t - now);
  }
}

bool EventLoop::RunOne() {
  Event event;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
  }
  AdvanceTo(event.due);
  event.fn();
  ++executed_;
  return true;
}

void EventLoop::RunUntilIdle() {
  stopped_ = false;
  while (!stopped_ && RunOne()) {
  }
}

void EventLoop::RunUntil(TimePoint until) {
  stopped_ = false;
  while (!stopped_) {
    Event event;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (queue_.empty() || queue_.top().due > until) break;
      event = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
    }
    AdvanceTo(event.due);
    event.fn();
    ++executed_;
  }
  AdvanceTo(until);
}

size_t EventLoop::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace bistro

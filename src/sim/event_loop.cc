#include "sim/event_loop.h"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <cerrno>

namespace bistro {

EventLoop::EventLoop(Clock* clock) : clock_(clock) {
  // The wakeup pipe exists regardless of clock type (cheap, and the clock
  // can in principle differ per run of the same wiring); only real-clock
  // waits ever block on it.
  if (pipe(wake_fds_) == 0) {
    for (int fd : wake_fds_) {
      int flags = fcntl(fd, F_GETFL, 0);
      if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
      int fdflags = fcntl(fd, F_GETFD, 0);
      if (fdflags >= 0) fcntl(fd, F_SETFD, fdflags | FD_CLOEXEC);
    }
  } else {
    wake_fds_[0] = wake_fds_[1] = -1;
  }
}

EventLoop::~EventLoop() {
  for (int fd : wake_fds_) {
    if (fd >= 0) close(fd);
  }
}

void EventLoop::PostAt(TimePoint t, std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    TimePoint now = clock_->Now();
    if (t < now) t = now;
    queue_.push(Event{t, next_seq_++, std::move(fn)});
  }
  // Interrupt a blocked poll so cross-thread posts run promptly instead
  // of waiting out the current timer. The relaxed load keeps the common
  // same-thread Post free of syscalls.
  if (polling_.load(std::memory_order_relaxed)) Wake();
}

void EventLoop::Wake() {
  if (wake_fds_[1] < 0) return;
  char byte = 0;
  // Nonblocking: a full pipe already guarantees a pending wakeup.
  ssize_t ignored = write(wake_fds_[1], &byte, 1);
  (void)ignored;
}

void EventLoop::WatchFd(int fd, FdCallback cb) {
  std::lock_guard<std::mutex> lock(mu_);
  FdWatch watch;
  watch.cb = std::make_shared<FdCallback>(std::move(cb));
  fds_[fd] = std::move(watch);
}

void EventLoop::SetFdWriteInterest(int fd, bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = fds_.find(fd);
  if (it != fds_.end()) it->second.want_write = enabled;
}

void EventLoop::UnwatchFd(int fd) {
  std::lock_guard<std::mutex> lock(mu_);
  fds_.erase(fd);
}

size_t EventLoop::watched_fds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fds_.size();
}

void EventLoop::AdvanceTo(TimePoint t) {
  TimePoint now = clock_->Now();
  if (t <= now) return;
  if (auto* sim = dynamic_cast<SimClock*>(clock_)) {
    sim->AdvanceTo(t);
  } else {
    WaitReal(t);
  }
}

void EventLoop::WaitReal(TimePoint t) {
  if (wake_fds_[0] < 0) {
    // No pipe (construction failed): legacy timer-granularity sleep.
    TimePoint now = clock_->Now();
    if (t > now) clock_->SleepFor(t - now);
    return;
  }
  std::vector<pollfd> pfds;
  int timeout_ms;
  {
    // Everything that decides how long to sleep happens inside the same
    // critical section PostAt uses, and polling_ is set before the lock
    // is released: a poster that pushed before this block shortened the
    // computed timeout; one that pushes after it observes polling_ and
    // writes the wakeup byte (which persists even if poll() has not
    // started yet). Either way no wakeup is lost.
    std::lock_guard<std::mutex> lock(mu_);
    TimePoint now = clock_->Now();
    if (now >= t) return;
    if (!queue_.empty() && queue_.top().due < t) t = queue_.top().due;
    Duration remaining = t > now ? t - now : 0;
    timeout_ms =
        static_cast<int>((remaining + kMillisecond - 1) / kMillisecond);
    if (timeout_ms < 0) timeout_ms = 0;
    pfds.push_back(pollfd{wake_fds_[0], POLLIN, 0});
    for (const auto& [fd, watch] : fds_) {
      short events = POLLIN;
      if (watch.want_write) events |= POLLOUT;
      pfds.push_back(pollfd{fd, events, 0});
    }
    polling_.store(true, std::memory_order_relaxed);
  }
  int n = poll(pfds.data(), pfds.size(), timeout_ms);
  polling_.store(false, std::memory_order_relaxed);
  if (n <= 0) return;  // timeout or EINTR: caller re-examines the queue

  if (pfds[0].revents != 0) {
    char drain[64];
    while (read(wake_fds_[0], drain, sizeof(drain)) > 0) {
    }
  }
  // Dispatch fd readiness. Callbacks may watch/unwatch fds (including
  // themselves), so re-resolve each one under the lock right before the
  // call; the shared_ptr keeps an invoked callback alive even if it
  // unwatches itself mid-call.
  for (size_t i = 1; i < pfds.size(); ++i) {
    short revents = pfds[i].revents;
    if (revents == 0) continue;
    bool readable = (revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL)) != 0;
    bool writable = (revents & POLLOUT) != 0;
    std::shared_ptr<FdCallback> cb;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = fds_.find(pfds[i].fd);
      if (it != fds_.end()) cb = it->second.cb;
    }
    if (cb) (*cb)(readable, writable);
  }
}

bool EventLoop::PopDue(std::function<void()>* fn, TimePoint* next_due) {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.empty()) {
    *next_due = 0;
    return false;
  }
  TimePoint due = queue_.top().due;
  if (due > clock_->Now()) {
    *next_due = due;
    return false;
  }
  *fn = std::move(const_cast<Event&>(queue_.top()).fn);
  queue_.pop();
  return true;
}

bool EventLoop::RunOne() {
  for (;;) {
    std::function<void()> fn;
    TimePoint next_due = 0;
    if (PopDue(&fn, &next_due)) {
      fn();
      ++executed_;
      return true;
    }
    if (next_due == 0) return false;  // idle
    // Wait (or advance simulated time) to the earliest due event, then
    // re-examine: a cross-thread post or an fd callback may have queued
    // something earlier in the meantime.
    AdvanceTo(next_due);
  }
}

void EventLoop::RunUntilIdle() {
  stopped_ = false;
  while (!stopped_ && RunOne()) {
  }
}

void EventLoop::RunUntil(TimePoint until) {
  stopped_ = false;
  while (!stopped_) {
    std::function<void()> fn;
    TimePoint next_due = 0;
    if (PopDue(&fn, &next_due)) {
      fn();
      ++executed_;
      continue;
    }
    if (next_due == 0 || next_due > until) break;
    AdvanceTo(next_due);
  }
  AdvanceTo(until);
}

void EventLoop::RunFor(Duration d) {
  TimePoint deadline = clock_->Now() + d;
  stopped_ = false;
  while (!stopped_) {
    std::function<void()> fn;
    TimePoint next_due = 0;
    if (PopDue(&fn, &next_due)) {
      fn();
      ++executed_;
      continue;
    }
    TimePoint now = clock_->Now();
    if (now >= deadline) break;
    TimePoint wait = deadline;
    if (next_due != 0 && next_due < wait) wait = next_due;
    AdvanceTo(wait);
  }
}

size_t EventLoop::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace bistro

#ifndef BISTRO_SIM_NETWORK_H_
#define BISTRO_SIM_NETWORK_H_

#include <map>
#include <string>

#include "common/random.h"
#include "common/status.h"
#include "common/time.h"
#include "obs/metrics.h"

namespace bistro {

/// Capacity and reliability of the network path to one subscriber.
struct LinkSpec {
  uint64_t bandwidth_bytes_per_sec = 100 * 1000 * 1000;  // ~1 Gbit/s
  Duration latency = 10 * kMillisecond;                  // per transfer setup
  double failure_prob = 0.0;  // chance one transfer attempt fails

  static LinkSpec Fast() { return LinkSpec{}; }
  static LinkSpec Slow() {
    return LinkSpec{1 * 1000 * 1000, 50 * kMillisecond, 0.0};
  }
  static LinkSpec Flaky(double p) {
    LinkSpec l;
    l.failure_prob = p;
    return l;
  }
};

/// Simulated network connecting a Bistro server to its subscribers
/// (substitute for the paper's production WAN; see DESIGN.md §2).
///
/// Each subscriber has one serial link: concurrent transfers to the same
/// subscriber queue behind each other (busy-until tracking), which models
/// the per-subscriber bandwidth constraint of §4.3. Links can be marked
/// offline to model subscriber failures.
class SimNetwork {
 public:
  explicit SimNetwork(Rng* rng) : rng_(rng) {}

  /// Pipelined-ack link model (off by default, preserving the legacy
  /// lockstep timing). When on, a transfer occupies the link only for its
  /// serialization time — the sender can push the next frame as soon as
  /// the last byte of the previous one leaves — while the completion
  /// (ack) still arrives a full propagation latency later. This is what
  /// lets a windowed sender overlap latency: with the legacy model the
  /// link is held for latency + serialization, so back-to-back sends
  /// serialize on latency no matter the window.
  void SetPipelinedAcks(bool on) { pipelined_acks_ = on; }
  bool pipelined_acks() const { return pipelined_acks_; }

  /// Registers WAN-level counters (transfers, failures, bytes) and a
  /// per-transfer duration histogram in `registry`. Optional.
  void AttachMetrics(MetricsRegistry* registry);

  void SetLink(const std::string& subscriber, LinkSpec spec);
  /// True if the subscriber has a configured link (online or not).
  bool HasLink(const std::string& subscriber) const;

  void SetOnline(const std::string& subscriber, bool online);
  bool IsOnline(const std::string& subscriber) const;

  /// Degrades a link by `factor` (>1): bandwidth is divided and latency
  /// multiplied by it. Models brownouts / congested paths in fault plans;
  /// factor <= 1 restores nothing special, it just applies the math.
  void DegradeLink(const std::string& subscriber, double factor);

  /// Reserves the link for a transfer of `bytes` starting no earlier than
  /// `now`; returns the completion time. Errors: Unavailable if the link
  /// is offline or unknown; IoError (with probability failure_prob) for a
  /// transient failure, which still occupies the link for the latency.
  Result<TimePoint> ScheduleTransfer(const std::string& subscriber,
                                     uint64_t bytes, TimePoint now);

  /// Time a transfer would take on an idle link (latency + serialization).
  Result<Duration> TransferDuration(const std::string& subscriber,
                                    uint64_t bytes) const;

  /// Total bytes successfully scheduled per subscriber.
  uint64_t BytesSent(const std::string& subscriber) const;

 private:
  struct Link {
    LinkSpec spec;
    bool online = true;
    TimePoint busy_until = 0;
    uint64_t bytes_sent = 0;
  };

  Rng* rng_;
  bool pipelined_acks_ = false;
  std::map<std::string, Link> links_;
  Counter* transfers_ = nullptr;
  Counter* failures_ = nullptr;
  Counter* bytes_counter_ = nullptr;
  Histogram* duration_hist_ = nullptr;
};

}  // namespace bistro

#endif  // BISTRO_SIM_NETWORK_H_

#ifndef BISTRO_SIM_SOURCES_H_
#define BISTRO_SIM_SOURCES_H_

#include <functional>
#include <string>
#include <vector>

#include "analyzer/infer.h"
#include "common/random.h"
#include "common/time.h"
#include "obs/metrics.h"
#include "sim/event_loop.h"

namespace bistro {

/// Callback through which simulated sources deposit files:
/// (source id, filename, content).
using DepositFn =
    std::function<void(const std::string&, const std::string&, std::string)>;

/// Callback for source end-of-batch punctuation: (interval time).
using PunctuationFn = std::function<void(TimePoint)>;

/// A fleet of SNMP-style pollers generating one file per poller per
/// measurement interval (the paper's running example). Substitute for
/// AT&T's production pollers; reproduces their arrival structure:
/// periodic intervals, per-poller dropout, deposit latency jitter,
/// occasional heavily-late (out-of-order) files, and fleet growth.
class PollerFleet {
 public:
  struct Options {
    Options() {}
    std::string metric = "CPU";    // filename stem
    std::string source = "pollers";  // landing-zone source id
    std::string extension = "txt";
    int num_pollers = 3;
    Duration period = 5 * kMinute;
    /// Probability a poller produces nothing for an interval.
    double dropout_prob = 0.0;
    /// Uniform extra deposit delay in [0, max_delay] after the interval.
    Duration max_delay = 10 * kSecond;
    /// Probability a file is delayed by 1..3 extra periods (arrives
    /// out of order).
    double late_prob = 0.0;
    /// Bytes of synthetic payload per file.
    uint64_t file_size = 1000;
    /// If >0, a new poller joins the fleet every `growth_every` intervals
    /// (the §2.1.3 "more sources are contributing to a feed" evolution).
    int growth_every = 0;
    /// Emit punctuation when the last on-time file of an interval lands.
    bool punctuate = false;
  };

  PollerFleet(EventLoop* loop, Rng* rng, Options options, DepositFn deposit,
              PunctuationFn punctuation = nullptr);

  /// Exports the generated/dropped/late counters and a fleet-size gauge
  /// through `registry` so source-side loss shows up next to delivery
  /// metrics in the same scrape. Optional; call before ScheduleInterval.
  void AttachMetrics(MetricsRegistry* registry);

  /// Schedules file generation for all intervals in [start, end).
  void ScheduleInterval(TimePoint start, TimePoint end);

  /// Filename a poller emits for an interval:
  /// "<METRIC>_POLL<i>_<YYYYMMDDHHMM>.<ext>".
  std::string FileName(int poller, TimePoint interval) const;

  uint64_t files_generated() const { return files_generated_; }
  uint64_t files_dropped() const { return files_dropped_; }
  uint64_t files_late() const { return files_late_; }
  int current_pollers() const { return current_pollers_; }

 private:
  std::string MakePayload(int poller, TimePoint interval);

  EventLoop* loop_;
  Rng* rng_;
  Options options_;
  DepositFn deposit_;
  PunctuationFn punctuation_;
  uint64_t files_generated_ = 0;
  uint64_t files_dropped_ = 0;
  uint64_t files_late_ = 0;
  int current_pollers_ = 0;
  Counter* generated_counter_ = nullptr;
  Counter* dropped_counter_ = nullptr;
  Counter* late_counter_ = nullptr;
  Gauge* pollers_gauge_ = nullptr;
};

/// Ground-truth labelled filename corpora for analyzer experiments (E7):
/// each corpus mixes several synthetic atomic feeds (with known
/// patterns), naming-convention drift, and foreign junk files.
class CorpusGenerator {
 public:
  /// Specification of one synthetic atomic feed in a corpus.
  struct FeedTemplate {
    std::string metric;       // e.g. "MEMORY"
    int pollers = 2;          // id domain
    Duration period = 5 * kMinute;
    int intervals = 12;
    enum class Style {
      kWideStamp,      // METRIC_POLLERi_YYYYMMDDHHMM.csv.gz
      kSplitStamp,     // METRIC_POLLERi_YYYYMMDDHH_MM.csv.gz
      kSeparatedDate,  // METRICi_YYYY_MM_DD_HH.csv
    };
    Style style = Style::kWideStamp;
  };

  explicit CorpusGenerator(Rng* rng) : rng_(rng) {}

  /// One labelled observation.
  struct Labelled {
    FileObservation obs;
    int truth = -1;  // index of the generating template, -1 = junk
  };

  /// Generates a corpus covering `templates`, plus `junk` random files,
  /// shuffled. `start` anchors the timestamps.
  std::vector<Labelled> Generate(const std::vector<FeedTemplate>& templates,
                                 size_t junk, TimePoint start);

  /// The exact Bistro pattern a template's files follow (ground truth).
  static std::string TruthPattern(const FeedTemplate& t);

  /// Large streaming corpora for the incremental-analyzer experiments
  /// (E12): `total` names drawn from `num_templates` synthetic feeds in
  /// arrival order, mixed with a junk fraction. At the halfway point a
  /// `drift_fraction` of the templates mutate their naming convention
  /// (lower-cased metric, '_' separators become '-'), so late names stop
  /// folding into the old clusters — the production drift an analyzer
  /// has to keep up with.
  struct DriftOptions {
    DriftOptions() {}
    size_t total = 100000;
    int num_templates = 50;
    int pollers = 4;
    Duration period = 5 * kMinute;
    double junk_fraction = 0.01;
    double drift_fraction = 0.25;
  };
  std::vector<FileObservation> GenerateDrifting(const DriftOptions& options,
                                                TimePoint start);

 private:
  Rng* rng_;
};

}  // namespace bistro

#endif  // BISTRO_SIM_SOURCES_H_

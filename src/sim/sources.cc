#include "sim/sources.h"

#include <cctype>

#include "common/strings.h"

namespace bistro {

PollerFleet::PollerFleet(EventLoop* loop, Rng* rng, Options options,
                         DepositFn deposit, PunctuationFn punctuation)
    : loop_(loop),
      rng_(rng),
      options_(std::move(options)),
      deposit_(std::move(deposit)),
      punctuation_(std::move(punctuation)),
      current_pollers_(options_.num_pollers) {}

void PollerFleet::AttachMetrics(MetricsRegistry* registry) {
  generated_counter_ = registry->GetCounter(
      "bistro_source_files_generated_total",
      "Files the simulated source fleet scheduled for deposit");
  dropped_counter_ =
      registry->GetCounter("bistro_source_files_dropped_total",
                           "Poller intervals that produced nothing (dropout)");
  late_counter_ = registry->GetCounter(
      "bistro_source_files_late_total",
      "Files delayed past their interval (out-of-order deposits)");
  pollers_gauge_ = registry->GetGauge("bistro_source_pollers",
                                      "Current simulated poller fleet size");
  pollers_gauge_->Set(static_cast<int64_t>(current_pollers_));
}

std::string PollerFleet::FileName(int poller, TimePoint interval) const {
  CivilTime c = ToCivil(interval);
  return StrFormat("%s_POLL%d_%04d%02d%02d%02d%02d.%s",
                   options_.metric.c_str(), poller, c.year, c.month, c.day,
                   c.hour, c.minute, options_.extension.c_str());
}

std::string PollerFleet::MakePayload(int poller, TimePoint interval) {
  std::string payload;
  payload.reserve(options_.file_size + 64);
  while (payload.size() < options_.file_size) {
    payload += StrFormat("router_%llu,%s,poller%d,%llu,%llu\n",
                         (unsigned long long)rng_->Uniform(100),
                         options_.metric.c_str(), poller,
                         (unsigned long long)(interval / kSecond),
                         (unsigned long long)rng_->Uniform(1000000));
  }
  payload.resize(options_.file_size);
  return payload;
}

void PollerFleet::ScheduleInterval(TimePoint start, TimePoint end) {
  int interval_index = 0;
  for (TimePoint t = start; t < end; t += options_.period, ++interval_index) {
    if (options_.growth_every > 0 && interval_index > 0 &&
        interval_index % options_.growth_every == 0) {
      ++current_pollers_;
      if (pollers_gauge_ != nullptr) {
        pollers_gauge_->Set(static_cast<int64_t>(current_pollers_));
      }
    }
    int pollers = current_pollers_;
    TimePoint latest_on_time = t;
    for (int p = 1; p <= pollers; ++p) {
      if (rng_->Bernoulli(options_.dropout_prob)) {
        ++files_dropped_;
        if (dropped_counter_ != nullptr) dropped_counter_->Increment();
        continue;
      }
      Duration delay =
          options_.max_delay > 0
              ? static_cast<Duration>(rng_->Uniform(
                    static_cast<uint64_t>(options_.max_delay)))
              : 0;
      bool late = rng_->Bernoulli(options_.late_prob);
      if (late) {
        delay += options_.period * static_cast<Duration>(1 + rng_->Uniform(3));
        ++files_late_;
        if (late_counter_ != nullptr) late_counter_->Increment();
      }
      TimePoint deposit_at = t + delay;
      if (!late && deposit_at > latest_on_time) latest_on_time = deposit_at;
      std::string name = FileName(p, t);
      loop_->PostAt(deposit_at, [this, p, t, name = std::move(name)] {
        deposit_(options_.source, name, MakePayload(p, t));
      });
      ++files_generated_;
      if (generated_counter_ != nullptr) generated_counter_->Increment();
    }
    if (options_.punctuate && punctuation_) {
      loop_->PostAt(latest_on_time + kMillisecond,
                    [this, t] { punctuation_(t); });
    }
  }
}

std::string CorpusGenerator::TruthPattern(const FeedTemplate& t) {
  switch (t.style) {
    case FeedTemplate::Style::kWideStamp:
      return t.metric + "_POLLER%i_%Y%m%d%H%M.csv.gz";
    case FeedTemplate::Style::kSplitStamp:
      return t.metric + "_POLLER%i_%Y%m%d%H_%M.csv.gz";
    case FeedTemplate::Style::kSeparatedDate:
      return t.metric + "%i_%Y_%m_%d_%H.csv";
  }
  return "";
}

std::vector<CorpusGenerator::Labelled> CorpusGenerator::Generate(
    const std::vector<FeedTemplate>& templates, size_t junk, TimePoint start) {
  std::vector<Labelled> out;
  for (size_t ti = 0; ti < templates.size(); ++ti) {
    const FeedTemplate& t = templates[ti];
    for (int interval = 0; interval < t.intervals; ++interval) {
      TimePoint when = start + interval * t.period;
      CivilTime c = ToCivil(when);
      for (int p = 1; p <= t.pollers; ++p) {
        std::string name;
        switch (t.style) {
          case FeedTemplate::Style::kWideStamp:
            name = StrFormat("%s_POLLER%d_%04d%02d%02d%02d%02d.csv.gz",
                             t.metric.c_str(), p, c.year, c.month, c.day,
                             c.hour, c.minute);
            break;
          case FeedTemplate::Style::kSplitStamp:
            name = StrFormat("%s_POLLER%d_%04d%02d%02d%02d_%02d.csv.gz",
                             t.metric.c_str(), p, c.year, c.month, c.day,
                             c.hour, c.minute);
            break;
          case FeedTemplate::Style::kSeparatedDate:
            name = StrFormat("%s%d_%04d_%02d_%02d_%02d.csv", t.metric.c_str(),
                             p, c.year, c.month, c.day, c.hour);
            break;
        }
        Labelled l;
        l.obs.name = std::move(name);
        l.obs.arrival_time = when;
        l.truth = static_cast<int>(ti);
        out.push_back(std::move(l));
      }
    }
  }
  for (size_t j = 0; j < junk; ++j) {
    Labelled l;
    l.obs.name = rng_->AlnumString(8 + rng_->Uniform(12)) + "." +
                 rng_->AlnumString(3);
    l.obs.arrival_time = start + static_cast<Duration>(rng_->Uniform(
                                     static_cast<uint64_t>(kDay)));
    l.truth = -1;
    out.push_back(std::move(l));
  }
  rng_->Shuffle(&out);
  return out;
}

std::vector<FileObservation> CorpusGenerator::GenerateDrifting(
    const DriftOptions& options, TimePoint start) {
  std::vector<FileObservation> out;
  out.reserve(options.total);
  // Per-template emission counters keep (template, interval, poller)
  // triples — and therefore names — unique across the whole stream.
  std::vector<size_t> emitted(options.num_templates, 0);
  const size_t drift_at = options.total / 2;
  const int drifted =
      static_cast<int>(options.num_templates * options.drift_fraction);
  size_t junk_serial = 0;
  for (size_t i = 0; i < options.total; ++i) {
    if (rng_->Bernoulli(options.junk_fraction)) {
      FileObservation obs;
      obs.name = rng_->AlnumString(6 + rng_->Uniform(10)) + "_" +
                 std::to_string(junk_serial++) + "." + rng_->AlnumString(3);
      obs.arrival_time = start + static_cast<Duration>(i) * kSecond;
      out.push_back(std::move(obs));
      continue;
    }
    int t = static_cast<int>(rng_->Uniform(options.num_templates));
    size_t seq = emitted[t]++;
    int poller = 1 + static_cast<int>(seq % options.pollers);
    TimePoint when =
        start + static_cast<Duration>(seq / options.pollers) * options.period;
    CivilTime c = ToCivil(when);
    // Two-letter alphabetic metric stems: a trailing digit would merge
    // structurally identical templates into one cluster.
    std::string metric =
        StrFormat("METRIC%c%c", 'A' + t % 26, 'A' + t / 26 % 26);
    char sep = '_';
    if (i >= drift_at && t < drifted) {
      // The drifted convention: lower-cased stem, dashed separators.
      for (char& ch : metric) ch = static_cast<char>(std::tolower(ch));
      sep = '-';
    }
    FileObservation obs;
    obs.name = StrFormat("%s%cPOLLER%d%c%04d%02d%02d%02d%02d.csv.gz",
                         metric.c_str(), sep, poller, sep, c.year, c.month,
                         c.day, c.hour, c.minute);
    obs.arrival_time = when;
    out.push_back(std::move(obs));
  }
  return out;
}

}  // namespace bistro

#ifndef BISTRO_SIM_EVENT_LOOP_H_
#define BISTRO_SIM_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <vector>

#include "common/time.h"

namespace bistro {

/// Discrete-event loop driving Bistro components under simulated or real
/// time.
///
/// With a SimClock, RunUntilIdle() advances the clock straight to each
/// event's due time, so a simulated day of feed traffic executes in
/// milliseconds and is fully deterministic (ties break by posting order).
/// With a RealClock, the loop waits until events come due, which lets the
/// same server wiring run live in the examples and the daemon.
///
/// Real-clock waits block in poll(2) on a wakeup pipe plus any watched
/// file descriptors, so a Post() from another thread (Wake()) or socket
/// readiness interrupts the wait immediately instead of riding out a
/// timer interval. Fd watching is the integration point for the TCP
/// socket transport; it is a no-op under simulated time (a SimClock loop
/// never blocks, and simulated deployments use simulated transports).
class EventLoop {
 public:
  explicit EventLoop(Clock* clock);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Schedules `fn` at the current time (runs after already-due events
  /// posted earlier). Thread-safe; wakes a blocked real-clock wait.
  void Post(std::function<void()> fn) { PostAt(clock_->Now(), std::move(fn)); }

  /// Schedules `fn` at absolute time `t` (clamped to now if in the past).
  void PostAt(TimePoint t, std::function<void()> fn);

  /// Schedules `fn` after `d`.
  void PostAfter(Duration d, std::function<void()> fn) {
    PostAt(clock_->Now() + d, std::move(fn));
  }

  /// Runs events until the queue is empty or Stop() is called.
  void RunUntilIdle();

  /// Runs events with due time <= `until`, advancing the clock to `until`
  /// at the end. Later events stay queued.
  void RunUntil(TimePoint until);

  /// Runs due events and fd callbacks for up to `d`, blocking in poll()
  /// between events under a real clock (a cross-thread Post or fd
  /// readiness ends the wait early; the loop then services it and keeps
  /// going until the deadline). Under a SimClock this is equivalent to
  /// RunUntil(Now() + d). The daemon's main loop is built on this.
  void RunFor(Duration d);

  /// Runs a single event if one is queued. Returns false when idle.
  bool RunOne();

  /// Makes RunUntilIdle()/RunUntil()/RunFor() return after the current
  /// event.
  void Stop() { stopped_ = true; }

  /// Interrupts a blocked real-clock wait from any thread. Harmless when
  /// the loop is not waiting (or runs under simulated time).
  void Wake();

  // ------------------------------------------------------ Fd readiness

  /// Callback invoked on the loop when a watched fd becomes readable
  /// and/or writable (error/hangup conditions report as readable so the
  /// owner's read() observes them).
  using FdCallback = std::function<void(bool readable, bool writable)>;

  /// Watches `fd` for readability (always) and, when write interest is
  /// enabled, writability. Real-clock loops only: under a SimClock the
  /// loop never blocks and watched fds are never polled. Call from the
  /// loop thread.
  void WatchFd(int fd, FdCallback cb);

  /// Enables/disables POLLOUT interest for a watched fd (owners enable it
  /// only while they have queued bytes, the standard level-triggered
  /// idiom). No-op for unwatched fds.
  void SetFdWriteInterest(int fd, bool enabled);

  /// Stops watching `fd`. The caller closes the descriptor.
  void UnwatchFd(int fd);

  /// Number of fds currently watched (tests, introspection).
  size_t watched_fds() const;

  TimePoint Now() const { return clock_->Now(); }
  Clock* clock() const { return clock_; }

  size_t pending() const;
  uint64_t executed() const { return executed_; }

 private:
  struct Event {
    TimePoint due;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.due != b.due ? a.due > b.due : a.seq > b.seq;
    }
  };
  struct FdWatch {
    std::shared_ptr<FdCallback> cb;
    bool want_write = false;
  };

  void AdvanceTo(TimePoint t);
  /// Real-clock wait until `t`, poll-based when the wakeup pipe exists.
  /// Returns after dispatching fd events or being woken, so callers
  /// re-examine the queue.
  void WaitReal(TimePoint t);
  /// Pops one due event if any; returns false when none is due yet (in
  /// which case *next_due is the earliest due time, or 0 if empty).
  bool PopDue(std::function<void()>* fn, TimePoint* next_due);

  Clock* clock_;
  mutable std::mutex mu_;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::map<int, FdWatch> fds_;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  bool stopped_ = false;
  /// Wakeup pipe (read end, write end); {-1, -1} when unavailable
  /// (creation failed), in which case real-clock waits fall back to
  /// plain sleeps and cross-thread wakeups ride the sleep granularity.
  int wake_fds_[2] = {-1, -1};
  /// True while the loop thread is blocked in poll(); Wake() only pays
  /// the pipe write when someone is actually waiting.
  std::atomic<bool> polling_{false};
};

}  // namespace bistro

#endif  // BISTRO_SIM_EVENT_LOOP_H_

#ifndef BISTRO_SIM_EVENT_LOOP_H_
#define BISTRO_SIM_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <vector>

#include "common/time.h"

namespace bistro {

/// Discrete-event loop driving Bistro components under simulated or real
/// time.
///
/// With a SimClock, RunUntilIdle() advances the clock straight to each
/// event's due time, so a simulated day of feed traffic executes in
/// milliseconds and is fully deterministic (ties break by posting order).
/// With a RealClock, the loop sleeps until events come due, which lets the
/// same server wiring run live in the examples.
class EventLoop {
 public:
  explicit EventLoop(Clock* clock) : clock_(clock) {}

  /// Schedules `fn` at the current time (runs after already-due events
  /// posted earlier).
  void Post(std::function<void()> fn) { PostAt(clock_->Now(), std::move(fn)); }

  /// Schedules `fn` at absolute time `t` (clamped to now if in the past).
  void PostAt(TimePoint t, std::function<void()> fn);

  /// Schedules `fn` after `d`.
  void PostAfter(Duration d, std::function<void()> fn) {
    PostAt(clock_->Now() + d, std::move(fn));
  }

  /// Runs events until the queue is empty or Stop() is called.
  void RunUntilIdle();

  /// Runs events with due time <= `until`, advancing the clock to `until`
  /// at the end. Later events stay queued.
  void RunUntil(TimePoint until);

  /// Runs a single event if one is queued. Returns false when idle.
  bool RunOne();

  /// Makes RunUntilIdle()/RunUntil() return after the current event.
  void Stop() { stopped_ = true; }

  TimePoint Now() const { return clock_->Now(); }
  Clock* clock() const { return clock_; }

  size_t pending() const;
  uint64_t executed() const { return executed_; }

 private:
  struct Event {
    TimePoint due;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.due != b.due ? a.due > b.due : a.seq > b.seq;
    }
  };

  void AdvanceTo(TimePoint t);

  Clock* clock_;
  mutable std::mutex mu_;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  bool stopped_ = false;
};

}  // namespace bistro

#endif  // BISTRO_SIM_EVENT_LOOP_H_

#ifndef BISTRO_TRIGGER_TRIGGER_H_
#define BISTRO_TRIGGER_TRIGGER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "trigger/batcher.h"

namespace bistro {

/// Invokes subscriber-registered trigger programs when files or batches
/// become available (paper §3.1 item 3, §4.1).
///
/// Two invocation styles exist in Bistro: a lightweight program run on the
/// subscriber's site (remote), or a script run locally on the server.
/// This interface abstracts "run the thing"; implementations decide what
/// that means.
class TriggerInvoker {
 public:
  virtual ~TriggerInvoker() = default;

  /// Invokes `command` for a closed batch. Invocation failures are
  /// reported but must not block feed delivery.
  virtual Status Invoke(const std::string& command,
                        const BatchEvent& batch) = 0;
};

/// Dispatches to C++ callbacks registered per command name. The form used
/// by embedded applications, examples and tests.
class CallbackInvoker : public TriggerInvoker {
 public:
  using Callback = std::function<Status(const BatchEvent&)>;

  void Register(const std::string& command, Callback cb);
  Status Invoke(const std::string& command, const BatchEvent& batch) override;

 private:
  std::map<std::string, Callback> callbacks_;
};

/// Runs the command as a shell process (the deployment form: trigger
/// scripts like "load_partition.sh"). Batch metadata is passed through
/// environment-style trailing arguments:
///   <command> <feed> <subscriber> <batch_time_us> <file_count>
class CommandInvoker : public TriggerInvoker {
 public:
  explicit CommandInvoker(Logger* logger = Logger::Default())
      : logger_(logger) {}

  Status Invoke(const std::string& command, const BatchEvent& batch) override;

 private:
  Logger* logger_;
};

/// Records invocations for tests and experiments.
class RecordingInvoker : public TriggerInvoker {
 public:
  Status Invoke(const std::string& command, const BatchEvent& batch) override {
    invocations_.push_back({command, batch});
    return Status::OK();
  }

  struct Invocation {
    std::string command;
    BatchEvent batch;
  };
  const std::vector<Invocation>& invocations() const { return invocations_; }
  void Clear() { invocations_.clear(); }

 private:
  std::vector<Invocation> invocations_;
};

}  // namespace bistro

#endif  // BISTRO_TRIGGER_TRIGGER_H_

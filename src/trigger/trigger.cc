#include "trigger/trigger.h"

#include <cstdlib>

#include "common/strings.h"

namespace bistro {

void CallbackInvoker::Register(const std::string& command, Callback cb) {
  callbacks_[command] = std::move(cb);
}

Status CallbackInvoker::Invoke(const std::string& command,
                               const BatchEvent& batch) {
  auto it = callbacks_.find(command);
  if (it == callbacks_.end()) {
    return Status::NotFound("no trigger callback registered: " + command);
  }
  return it->second(batch);
}

Status CommandInvoker::Invoke(const std::string& command,
                              const BatchEvent& batch) {
  std::string full = StrFormat(
      "%s '%s' '%s' %lld %zu", command.c_str(), batch.feed.c_str(),
      batch.subscriber.c_str(), static_cast<long long>(batch.batch_time),
      batch.files.size());
  int rc = std::system(full.c_str());
  if (rc != 0) {
    logger_->Error("trigger",
                   StrFormat("trigger command failed (rc=%d): %s", rc,
                             full.c_str()));
    return Status::Internal(StrFormat("trigger exited with %d", rc));
  }
  return Status::OK();
}

}  // namespace bistro

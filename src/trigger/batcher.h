#ifndef BISTRO_TRIGGER_BATCHER_H_
#define BISTRO_TRIGGER_BATCHER_H_

#include <map>
#include <optional>
#include <vector>

#include "config/spec.h"
#include "core/types.h"

namespace bistro {

/// A closed batch: the unit on which a subscriber's trigger fires.
struct BatchEvent {
  FeedName feed;
  SubscriberName subscriber;
  /// Files in the batch, in delivery order.
  std::vector<FileId> files;
  /// Data-interval timestamp shared by the batch (0 if unknown).
  TimePoint batch_time = 0;
  /// When the batch was opened (first file delivered) and closed.
  TimePoint open_time = 0;
  TimePoint close_time = 0;
  /// Why the batch closed.
  enum class Reason { kPerFile, kCount, kTimeout, kPunctuation, kIntervalRollover };
  Reason reason = Reason::kPerFile;
};

/// Groups delivered files into logical batches per (subscriber, feed)
/// according to a BatchSpec (paper §2.3, §4.1).
///
/// Count-based batches close after N files of the same data interval.
/// Time-based batches close when the batch has been open for `timeout`.
/// Combined mode closes on whichever comes first — the configuration the
/// paper found robust in practice. Punctuation mode closes only on
/// explicit end-of-batch markers from the source. In every mode, a file
/// from a *newer* data interval rolls over any open batch of an older
/// interval (a straggler-tolerant boundary, like stream punctuation).
class Batcher {
 public:
  Batcher(FeedName feed, SubscriberName subscriber, BatchSpec spec);

  /// Reports a delivered file; returns the batch it closed, if any.
  /// In kPerFile mode every call returns a single-file batch.
  std::optional<BatchEvent> OnFileDelivered(FileId file, TimePoint data_time,
                                            TimePoint now);

  /// Reports an end-of-batch punctuation from the source.
  std::optional<BatchEvent> OnPunctuation(TimePoint now);

  /// Advances time; closes an open batch whose timeout expired.
  std::optional<BatchEvent> OnTick(TimePoint now);

  /// Closes and returns any open batch (e.g. on shutdown).
  std::optional<BatchEvent> Flush(TimePoint now);

  /// Earliest time OnTick could close the open batch (nullopt if none or
  /// the mode has no timeout). Lets the server schedule its tick.
  std::optional<TimePoint> NextDeadline() const;

  const BatchSpec& spec() const { return spec_; }

 private:
  BatchEvent CloseBatch(TimePoint now, BatchEvent::Reason reason);

  FeedName feed_;
  SubscriberName subscriber_;
  BatchSpec spec_;
  std::vector<FileId> open_files_;
  TimePoint open_time_ = 0;
  TimePoint batch_time_ = 0;  // data interval of the open batch
  bool has_open_ = false;
};

}  // namespace bistro

#endif  // BISTRO_TRIGGER_BATCHER_H_

#include "trigger/batcher.h"

namespace bistro {

Batcher::Batcher(FeedName feed, SubscriberName subscriber, BatchSpec spec)
    : feed_(std::move(feed)),
      subscriber_(std::move(subscriber)),
      spec_(spec) {}

BatchEvent Batcher::CloseBatch(TimePoint now, BatchEvent::Reason reason) {
  BatchEvent event;
  event.feed = feed_;
  event.subscriber = subscriber_;
  event.files = std::move(open_files_);
  event.batch_time = batch_time_;
  event.open_time = open_time_;
  event.close_time = now;
  event.reason = reason;
  open_files_.clear();
  has_open_ = false;
  return event;
}

std::optional<BatchEvent> Batcher::OnFileDelivered(FileId file,
                                                   TimePoint data_time,
                                                   TimePoint now) {
  if (spec_.mode == BatchSpec::Mode::kPerFile) {
    open_files_ = {file};
    open_time_ = now;
    batch_time_ = data_time;
    has_open_ = true;
    return CloseBatch(now, BatchEvent::Reason::kPerFile);
  }
  std::optional<BatchEvent> rolled;
  if (has_open_ && data_time > batch_time_ &&
      spec_.mode != BatchSpec::Mode::kPunctuation) {
    // A file for a newer interval arrived: the old interval's batch is
    // logically complete even if the count never filled (a poller was
    // down — the scenario that breaks pure count-based batching, §2.3).
    rolled = CloseBatch(now, BatchEvent::Reason::kIntervalRollover);
  }
  if (!has_open_) {
    open_time_ = now;
    batch_time_ = data_time;
    has_open_ = true;
  }
  open_files_.push_back(file);
  if (batch_time_ == 0) batch_time_ = data_time;

  bool count_hit =
      (spec_.mode == BatchSpec::Mode::kCount ||
       spec_.mode == BatchSpec::Mode::kCountOrTime) &&
      spec_.count > 0 && open_files_.size() >= static_cast<size_t>(spec_.count);
  if (count_hit) {
    // If a rollover also fired, the caller gets the rollover first and
    // the count batch via the next call; in practice both cannot happen
    // in one call because rollover empties the batch. Keep it simple:
    if (rolled.has_value()) return rolled;
    return CloseBatch(now, BatchEvent::Reason::kCount);
  }
  if (rolled.has_value()) return rolled;
  // Time-based closing happens in OnTick; but if the timeout already
  // passed (e.g. coarse tick cadence), close now.
  return OnTick(now);
}

std::optional<BatchEvent> Batcher::OnPunctuation(TimePoint now) {
  if (!has_open_) return std::nullopt;
  return CloseBatch(now, BatchEvent::Reason::kPunctuation);
}

std::optional<BatchEvent> Batcher::OnTick(TimePoint now) {
  if (!has_open_) return std::nullopt;
  bool timed = spec_.mode == BatchSpec::Mode::kTime ||
               spec_.mode == BatchSpec::Mode::kCountOrTime;
  if (!timed || spec_.timeout <= 0) return std::nullopt;
  if (now - open_time_ >= spec_.timeout) {
    return CloseBatch(now, BatchEvent::Reason::kTimeout);
  }
  return std::nullopt;
}

std::optional<BatchEvent> Batcher::Flush(TimePoint now) {
  if (!has_open_) return std::nullopt;
  return CloseBatch(now, BatchEvent::Reason::kTimeout);
}

std::optional<TimePoint> Batcher::NextDeadline() const {
  if (!has_open_) return std::nullopt;
  bool timed = spec_.mode == BatchSpec::Mode::kTime ||
               spec_.mode == BatchSpec::Mode::kCountOrTime;
  if (!timed || spec_.timeout <= 0) return std::nullopt;
  return open_time_ + spec_.timeout;
}

}  // namespace bistro

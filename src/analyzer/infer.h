#ifndef BISTRO_ANALYZER_INFER_H_
#define BISTRO_ANALYZER_INFER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyzer/tokenizer.h"
#include "common/time.h"

namespace bistro {

/// One observed file, the analyzer's unit of input.
struct FileObservation {
  std::string name;
  TimePoint arrival_time = 0;
  /// Stable identity of the observation (FileId for server-fed streams,
  /// a name hash for unmatched files that never got a receipt; 0 =
  /// unknown). Lets the streaming corpus dedupe files that are re-seen
  /// across landing-zone scans.
  uint64_t id = 0;
  /// Pre-computed tokenization (empty = not tokenized yet). The server
  /// fills this when it records an unmatched file — the same table-driven
  /// scan the classifier automaton uses — so the analyzer's fold never
  /// re-walks the name.
  std::vector<NameToken> tokens = {};
};

/// Inferred type of one variable (digit) field within an atomic feed.
struct InferredField {
  enum class Type {
    kConstant,     // every sample had the same value
    kCategorical,  // small closed domain (poller ids, versions)
    kInteger,      // open-ended integer (%i)
    kTimestamp,    // part of a recognized date/time group
  };
  Type type = Type::kInteger;
  /// Token index within the tokenized name.
  size_t token_index = 0;
  /// Observed domain (capped) for constants/categoricals.
  std::set<std::string> domain;
  /// For kTimestamp: the pattern specifiers this token expands to
  /// ("%Y%m%d%H", "%M", ...).
  std::string time_spec;

  bool operator==(const InferredField&) const = default;
};

/// A discovered atomic feed (paper §5.1): a homogeneous group of files
/// produced by one data-generating program with a consistent naming
/// convention, plus everything the analyzer inferred about it.
struct AtomicFeed {
  /// Bistro pattern describing the group ("MEMORY_POLLER%i_%Y%m%d%H_%M.csv.gz").
  std::string pattern;
  /// Files observed in this group.
  size_t file_count = 0;
  /// One example filename.
  std::string example;
  /// Typed variable fields.
  std::vector<InferredField> fields;
  /// Estimated generation period from data timestamps (0 = unknown):
  /// median gap between distinct data intervals.
  Duration est_period = 0;
  /// Files per data interval (batch size estimate; 0 = unknown).
  double files_per_interval = 0;
  /// Fraction of the input this group covers.
  double support = 0;

  bool operator==(const AtomicFeed&) const = default;
};

/// Options for feed discovery.
struct DiscoveryOptions {
  DiscoveryOptions() {}
  /// Domains up to this size are categorical; beyond it, %i.
  size_t max_categorical_domain = 8;
  /// Groups with fewer files than this are reported as outliers.
  size_t min_support = 3;
};

/// Result of running discovery over a set of observations.
struct DiscoveryResult {
  std::vector<AtomicFeed> feeds;     // sorted by support, descending
  std::vector<AtomicFeed> outliers;  // groups below min_support
};

/// Clusters observations into atomic feeds and infers field types,
/// timestamp structure and arrival patterns (paper §5.1).
DiscoveryResult DiscoverFeeds(const std::vector<FileObservation>& observations,
                              const DiscoveryOptions& options = DiscoveryOptions());

/// Generalizes a single filename into a pattern (each digit run becomes a
/// field, timestamps recognized when unambiguous). The building block of
/// false-negative detection (§5.2).
std::string GeneralizeName(const std::string& name);

/// GeneralizeName over an already-tokenized name — the streaming fold
/// path (stream.cc) calls this once per observation, so it skips the
/// full discovery machinery and runs only the timestamp heuristics.
/// Guaranteed to agree with GeneralizeName on the same name.
std::string GeneralizeTokens(const std::vector<NameToken>& tokens);

}  // namespace bistro

#endif  // BISTRO_ANALYZER_INFER_H_

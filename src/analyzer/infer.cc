#include "analyzer/infer.h"

#include <algorithm>
#include <map>

#include "analyzer/induction.h"
#include "common/strings.h"

namespace bistro {

namespace {

// ----------------------------------------------------- date heuristics

bool AllInRange(const std::vector<int>& values, int lo, int hi) {
  for (int v : values) {
    if (v < lo || v > hi) return false;
  }
  return true;
}

int SliceInt(const std::string& s, size_t pos, size_t width) {
  int v = 0;
  for (size_t i = pos; i < pos + width; ++i) v = v * 10 + (s[i] - '0');
  return v;
}

std::vector<int> SliceAll(const std::vector<std::string>& values, size_t pos,
                          size_t width) {
  std::vector<int> out;
  out.reserve(values.size());
  for (const auto& v : values) out.push_back(SliceInt(v, pos, width));
  return out;
}

constexpr int kMinYear = 1990;
constexpr int kMaxYear = 2035;

/// Tries to interpret a fixed-width digit token (same width across all
/// samples) as a packed timestamp; returns the spec ("%Y%m%d%H") or "".
std::string TryWideTimestamp(size_t width, const std::vector<std::string>& values) {
  auto valid_prefix = [&](bool with_hour, bool with_min, bool with_sec) {
    if (!AllInRange(SliceAll(values, 0, 4), kMinYear, kMaxYear)) return false;
    if (!AllInRange(SliceAll(values, 4, 2), 1, 12)) return false;
    if (!AllInRange(SliceAll(values, 6, 2), 1, 31)) return false;
    if (with_hour && !AllInRange(SliceAll(values, 8, 2), 0, 23)) return false;
    if (with_min && !AllInRange(SliceAll(values, 10, 2), 0, 59)) return false;
    if (with_sec && !AllInRange(SliceAll(values, 12, 2), 0, 59)) return false;
    return true;
  };
  switch (width) {
    case 14:
      return valid_prefix(true, true, true) ? "%Y%m%d%H%M%S" : "";
    case 12:
      return valid_prefix(true, true, false) ? "%Y%m%d%H%M" : "";
    case 10:
      return valid_prefix(true, false, false) ? "%Y%m%d%H" : "";
    case 8:
      return valid_prefix(false, false, false) ? "%Y%m%d" : "";
    default:
      return "";
  }
}

// ----------------------------------------------------- cluster analysis

/// Assigns time specs to digit positions: wide packed stamps, separated
/// component sequences (%Y _ %m _ %d ...), and unit continuations after a
/// stamp (..%H followed by a 2-digit 0-59 token -> %M).
std::map<size_t, std::string> AssignTimeSpecs(const ClusterEvidence& ev) {
  std::map<size_t, std::string> specs;  // token_index -> spec
  auto find_digit = [&](size_t token_index) -> const ClusterEvidence::Digit* {
    for (const auto& dp : ev.digits) {
      if (dp.token_index == token_index) return &dp;
    }
    return nullptr;
  };

  const auto& shape = ev.shape;
  // Pass 1: wide packed stamps and separated component runs.
  for (size_t i = 0; i < shape.size(); ++i) {
    if (shape[i].kind != NameToken::Kind::kDigits) continue;
    if (specs.count(i) != 0) continue;
    const ClusterEvidence::Digit* dp = find_digit(i);
    if (dp == nullptr || dp->fixed_width == 0) continue;
    std::string wide = TryWideTimestamp(dp->fixed_width, dp->values);
    if (!wide.empty()) {
      specs[i] = wide;
      continue;
    }
    // Separated run: width-4 year, then (sep, width-2) components.
    if (dp->fixed_width == 4 &&
        AllInRange(SliceAll(dp->values, 0, 4), kMinYear, kMaxYear)) {
      static const struct {
        const char* spec;
        int lo, hi;
      } kComponents[] = {
          {"%m", 1, 12}, {"%d", 1, 31}, {"%H", 0, 23}, {"%M", 0, 59},
          {"%S", 0, 59}};
      std::vector<std::pair<size_t, std::string>> run = {{i, "%Y"}};
      size_t pos = i;
      for (const auto& comp : kComponents) {
        if (pos + 2 >= shape.size()) break;
        if (shape[pos + 1].kind != NameToken::Kind::kSep) break;
        const ClusterEvidence::Digit* next = find_digit(pos + 2);
        if (next == nullptr || next->fixed_width != 2) break;
        if (!AllInRange(SliceAll(next->values, 0, 2), comp.lo, comp.hi)) break;
        run.emplace_back(pos + 2, comp.spec);
        pos += 2;
      }
      if (run.size() >= 3) {  // at least %Y %m %d
        for (auto& [idx, spec] : run) specs[idx] = spec;
      }
    }
  }
  // Pass 2: unit continuations after an assigned stamp (paper example:
  // MEMORY_POLLER1_2010092504_51 -> %Y%m%d%H then _%M).
  static const std::map<char, std::pair<std::string, std::pair<int, int>>>
      kNextUnit = {{'d', {"%H", {0, 23}}},
                   {'H', {"%M", {0, 59}}},
                   {'M', {"%S", {0, 59}}}};
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [idx, spec] : specs) {
      char last = spec.back();
      auto it = kNextUnit.find(last);
      if (it == kNextUnit.end()) continue;
      size_t next_idx = idx + 2;
      if (next_idx >= shape.size()) continue;
      if (shape[idx + 1].kind != NameToken::Kind::kSep) continue;
      if (specs.count(next_idx) != 0) continue;
      const ClusterEvidence::Digit* next = find_digit(next_idx);
      if (next == nullptr || next->fixed_width != 2) continue;
      if (!AllInRange(SliceAll(next->values, 0, 2), it->second.second.first,
                      it->second.second.second)) {
        continue;
      }
      specs[next_idx] = it->second.first;
      changed = true;
      break;
    }
  }
  return specs;
}

/// Parses a token's digits according to its time spec into civil fields.
void ApplySpec(const std::string& spec, const std::string& value, CivilTime* c) {
  size_t pos = 0;
  for (size_t i = 0; i + 1 < spec.size(); i += 2) {
    char f = spec[i + 1];
    size_t width = (f == 'Y') ? 4 : 2;
    if (pos + width > value.size()) return;
    int v = SliceInt(value, pos, width);
    switch (f) {
      case 'Y':
        c->year = v;
        break;
      case 'y':
        c->year = 2000 + v;
        break;
      case 'm':
        c->month = v;
        break;
      case 'd':
        c->day = v;
        break;
      case 'H':
        c->hour = v;
        break;
      case 'M':
        c->minute = v;
        break;
      case 'S':
        c->second = v;
        break;
    }
    pos += width;
  }
}

}  // namespace

std::string EscapePatternLiteral(const std::string& text) {
  std::string out;
  for (char c : text) {
    if (c == '%') out += "%%";
    else out += c;
  }
  return out;
}

AtomicFeed AnalyzeClusterEvidence(const ClusterEvidence& ev, size_t total_files,
                                  const DiscoveryOptions& options,
                                  size_t* stamp_count) {
  if (stamp_count != nullptr) *stamp_count = 0;
  AtomicFeed feed;
  feed.file_count = ev.file_count;
  feed.example = ev.names.front();
  feed.support =
      static_cast<double>(feed.file_count) / static_cast<double>(total_files);

  auto time_specs = AssignTimeSpecs(ev);

  // Build the pattern and the field list.
  size_t digit_cursor = 0;
  for (size_t i = 0; i < ev.shape.size(); ++i) {
    const NameToken& tok = ev.shape[i];
    if (tok.kind != NameToken::Kind::kDigits) {
      feed.pattern += EscapePatternLiteral(tok.text);
      continue;
    }
    const ClusterEvidence::Digit& dp = ev.digits[digit_cursor++];
    InferredField field;
    field.token_index = i;
    auto ts = time_specs.find(i);
    if (ts != time_specs.end()) {
      field.type = InferredField::Type::kTimestamp;
      field.time_spec = ts->second;
      feed.pattern += ts->second;
    } else {
      std::set<std::string> domain(dp.values.begin(), dp.values.end());
      if (domain.size() == 1) {
        field.type = InferredField::Type::kConstant;
        field.domain = domain;
      } else if (domain.size() <= options.max_categorical_domain) {
        field.type = InferredField::Type::kCategorical;
        field.domain = domain;
      } else {
        field.type = InferredField::Type::kInteger;
      }
      feed.pattern += "%i";
    }
    feed.fields.push_back(std::move(field));
  }

  // Arrival-pattern inference from extracted data timestamps. Rows are
  // the retained exemplars; file_count (the true population) sets the
  // batch-size numerator so sampling thins the stamp set, not the count.
  if (!time_specs.empty()) {
    std::vector<TimePoint> stamps;
    for (size_t f = 0; f < ev.names.size(); ++f) {
      CivilTime civil;
      size_t dc = 0;
      for (size_t i = 0; i < ev.shape.size(); ++i) {
        if (ev.shape[i].kind != NameToken::Kind::kDigits) continue;
        auto ts = time_specs.find(i);
        if (ts != time_specs.end()) {
          ApplySpec(ts->second, ev.digits[dc].values[f], &civil);
        }
        ++dc;
      }
      stamps.push_back(FromCivil(civil));
    }
    std::sort(stamps.begin(), stamps.end());
    stamps.erase(std::unique(stamps.begin(), stamps.end()), stamps.end());
    if (stamps.size() >= 2) {
      std::vector<Duration> gaps;
      for (size_t i = 1; i < stamps.size(); ++i) {
        gaps.push_back(stamps[i] - stamps[i - 1]);
      }
      std::nth_element(gaps.begin(), gaps.begin() + gaps.size() / 2, gaps.end());
      feed.est_period = gaps[gaps.size() / 2];
    }
    if (!stamps.empty()) {
      feed.files_per_interval = static_cast<double>(ev.file_count) /
                                static_cast<double>(stamps.size());
    }
    if (stamp_count != nullptr) *stamp_count = stamps.size();
  }
  return feed;
}

DiscoveryResult DiscoverFeeds(const std::vector<FileObservation>& observations,
                              const DiscoveryOptions& options) {
  DiscoveryResult result;
  if (observations.empty()) return result;

  // 1. Tokenize and cluster by structural signature. The batch path keeps
  // every observation as an exemplar row, so induction sees the full
  // population (the streaming path feeds the same code a bounded sample).
  std::map<std::string, ClusterEvidence> clusters;
  for (const auto& obs : observations) {
    auto tokens = TokenizeName(obs.name);
    std::string sig = NameSignature(tokens);
    ClusterEvidence& cluster = clusters[sig];
    if (cluster.names.empty()) {
      cluster.shape = tokens;
      for (size_t i = 0; i < tokens.size(); ++i) {
        if (tokens[i].kind == NameToken::Kind::kDigits) {
          cluster.digits.push_back({i, tokens[i].text.size(), {}});
        }
      }
    }
    cluster.names.push_back(obs.name);
    ++cluster.file_count;
    size_t dc = 0;
    for (size_t i = 0; i < tokens.size(); ++i) {
      if (tokens[i].kind != NameToken::Kind::kDigits) continue;
      ClusterEvidence::Digit& dp = cluster.digits[dc++];
      if (dp.fixed_width != tokens[i].text.size()) dp.fixed_width = 0;
      dp.values.push_back(tokens[i].text);
    }
  }

  // 2. Analyze each cluster into an atomic feed.
  for (auto& [sig, cluster] : clusters) {
    AtomicFeed feed =
        AnalyzeClusterEvidence(cluster, observations.size(), options);
    if (feed.file_count < options.min_support) {
      result.outliers.push_back(std::move(feed));
    } else {
      result.feeds.push_back(std::move(feed));
    }
  }
  auto by_support = [](const AtomicFeed& a, const AtomicFeed& b) {
    return a.file_count != b.file_count ? a.file_count > b.file_count
                                        : a.pattern < b.pattern;
  };
  std::sort(result.feeds.begin(), result.feeds.end(), by_support);
  std::sort(result.outliers.begin(), result.outliers.end(), by_support);
  return result;
}

std::string GeneralizeTokens(const std::vector<NameToken>& tokens) {
  // Single-file generalization: every digit run is a field; timestamps
  // are recognized from this one sample, constants are meaningless and
  // widen to %i. Runs once per observation on the streaming fold path,
  // so it feeds the timestamp heuristics directly instead of going
  // through the full discovery machinery — same decision, less work.
  ClusterEvidence ev;
  ev.shape = tokens;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].kind == NameToken::Kind::kDigits) {
      ev.digits.push_back({i, tokens[i].text.size(), {tokens[i].text}});
    }
  }
  auto time_specs = AssignTimeSpecs(ev);
  std::string pattern;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].kind != NameToken::Kind::kDigits) {
      pattern += EscapePatternLiteral(tokens[i].text);
      continue;
    }
    auto ts = time_specs.find(i);
    pattern += ts != time_specs.end() ? ts->second : "%i";
  }
  return pattern;
}

std::string GeneralizeName(const std::string& name) {
  auto tokens = TokenizeName(name);
  if (tokens.empty()) return name;
  return GeneralizeTokens(tokens);
}

}  // namespace bistro

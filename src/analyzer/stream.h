#ifndef BISTRO_ANALYZER_STREAM_H_
#define BISTRO_ANALYZER_STREAM_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analyzer/analyzer.h"
#include "analyzer/induction.h"
#include "common/random.h"
#include "common/threadpool.h"
#include "obs/metrics.h"

namespace bistro {

/// A bounded, sharded, incrementally maintained corpus of filename
/// observations — the streaming replacement for re-clustering the whole
/// unmatched history every analysis cycle (DESIGN.md §11).
///
/// Names are tokenized, field-typed and folded into template clusters
/// *as they arrive*: a name whose structural signature matches an
/// existing cluster folds into it in O(tokens) (a width check plus a
/// reservoir update); otherwise it opens a new candidate cluster. The
/// signature lookup is per-shard, keyed by the filename's leading
/// alphabetic stem, so induction for one stem never contends with
/// another and a worker pool can fold shards in parallel.
///
/// Memory is bounded twice over: each cluster retains at most
/// `max_exemplars` exemplar rows (uniform reservoir sample, deterministic
/// seed), and the corpus as a whole retains at most `max_corpus` names
/// (FIFO: the oldest observation is shed first, and the shed count is
/// surfaced as a metric). A runaway unmatched stream therefore degrades
/// estimate resolution, not RSS.
///
/// Whenever neither bound has triggered, induction over this corpus is
/// *exactly* DiscoverFeeds over the same observations in the same order
/// — both hand identical ClusterEvidence to AnalyzeClusterEvidence. The
/// golden-equivalence tests pin that property.
class IncrementalCorpus {
 public:
  struct Options {
    Options() {}
    /// Stem-keyed shards (cluster lookups and folds are per-shard).
    size_t shards = 16;
    /// Retained-name budget for the whole corpus (FIFO shed).
    size_t max_corpus = 100000;
    /// Per-cluster exemplar reservoir size.
    size_t max_exemplars = 512;
    /// Reservoir seed: sampling is deterministic per (seed, shard).
    uint64_t seed = 0xB157A0;
  };

  /// Cumulative corpus activity (monotonic; survives eviction).
  struct Stats {
    uint64_t folds = 0;         // names folded into an existing cluster
    uint64_t new_clusters = 0;  // names that opened a candidate cluster
    uint64_t shed = 0;          // names evicted by the retention budget
    uint64_t duplicates = 0;    // re-observations dropped by id/name
  };

  explicit IncrementalCorpus(Options options = Options());

  /// Folds one observation into the corpus. Returns false (and counts a
  /// duplicate) when the observation's id or name is already retained —
  /// this is what stops unmatched files, which stay in the landing zone
  /// and are re-seen by every scan, from being double counted.
  bool Observe(const FileObservation& obs);

  /// Folds a batch. With a pool, shards fold concurrently; the result is
  /// bit-identical to the inline path (each cluster lives in exactly one
  /// shard and shard state is only ever touched by its owner). Budget
  /// eviction runs once, after the batch. Returns the number admitted.
  size_t ObserveBatch(const std::vector<FileObservation>& batch,
                      ThreadPool* pool = nullptr);

  /// Retained names.
  size_t size() const { return by_name_.size(); }
  /// Live template clusters.
  size_t cluster_count() const;
  /// Cumulative activity (fold counters live per shard, so this sums).
  Stats stats() const;

  /// Induces an AtomicFeed per live cluster — same result contract as
  /// DiscoverFeeds (feeds/outliers split by min_support, each sorted by
  /// file count descending then pattern). With a pool, shards induce
  /// concurrently.
  DiscoveryResult Induce(const DiscoveryOptions& options,
                         ThreadPool* pool = nullptr) const;

  /// Induction over the retained names NOT in `exclude` — the daemon
  /// discovers new feeds over files not already explained as false
  /// negatives. Clusters containing no excluded name reuse their
  /// incremental state; affected clusters are rebuilt from the retained
  /// names (both against the reduced population total).
  DiscoveryResult InduceExcluding(const std::set<std::string>& exclude,
                                  const DiscoveryOptions& options) const;

  /// All retained names grouped by their single-name generalization, each
  /// group in arrival order — the false-negative detector's affected-file
  /// index. Computed on demand (one pass over the retained corpus, which
  /// the retention budget bounds); the hot fold path stays free of
  /// per-name generalization cost.
  std::map<std::string, std::vector<std::string>> GeneralizedBuckets() const;
  /// One bucket of the above.
  std::vector<std::string> GeneralizedBucket(const std::string& pattern) const;

 private:
  struct Exemplar {
    std::string name;
    std::vector<std::string> digit_values;  // one per digit position
  };
  struct Cluster {
    std::vector<NameToken> shape;
    struct DigitMeta {
      size_t token_index = 0;
      size_t fixed_width = 0;  // tracked across ALL folds, 0 = divergent
    };
    std::vector<DigitMeta> digits;
    std::vector<Exemplar> exemplars;  // reservoir, <= max_exemplars
    std::unordered_map<std::string, size_t> exemplar_slot;  // name -> index
    size_t file_count = 0;  // retained members (decremented on shed)
    uint64_t folds = 0;     // lifetime members (reservoir counter)

    /// Bumped whenever the analysis *inputs* change: shape creation, a
    /// width divergence, any exemplar admission/replacement/removal.
    /// A bare file_count change does NOT bump it — the cached result
    /// below is re-scaled instead (support and files_per_interval are
    /// the only outputs that depend on it).
    uint64_t version = 0;
    /// Memoized AnalyzeClusterEvidence result (valid while
    /// analyzed_version == version and the domain cap matches).
    mutable AtomicFeed analyzed;
    mutable uint64_t analyzed_version = ~0ull;
    mutable size_t analyzed_domain_cap = 0;
    mutable size_t analyzed_stamps = 0;  // distinct data intervals seen
  };
  struct Shard {
    /// Hash map on purpose: signature strings share long prefixes, so
    /// ordered-map probes degenerate into expensive compares. Induction
    /// output stays deterministic because results are sorted at the end.
    std::unordered_map<std::string, Cluster> clusters;  // signature -> cluster
    Rng rng{0};
    uint64_t folds = 0;         // shard-local so parallel folds don't race
    uint64_t new_clusters = 0;
  };
  struct Retained {
    TimePoint arrival = 0;
    uint64_t id = 0;
    uint32_t shard = 0;
    /// Key of the owning cluster (stable: unordered_map nodes don't move,
    /// and a cluster outlives its members by construction).
    const std::string* signature = nullptr;
  };

  uint32_t ShardOf(const std::string& name) const;
  /// Tokenize + fold into the owning shard; returns the owning cluster's
  /// signature key. Only touches shard state.
  const std::string* FoldIntoShard(uint32_t shard, const FileObservation& obs);
  void EvictOldest();
  ClusterEvidence ToEvidence(const Cluster& cluster) const;
  /// AnalyzeClusterEvidence through the per-cluster memo: clusters whose
  /// evidence is unchanged since the last cycle reuse the cached feed
  /// with file_count/support/files_per_interval re-scaled (bit-identical
  /// to a fresh analysis — those are the only count-dependent outputs).
  AtomicFeed AnalyzeCluster(const Cluster& cluster, size_t total,
                            const DiscoveryOptions& options) const;

  Options options_;
  Stats stats_;  // shed + duplicates only; fold counters live per shard
  std::vector<Shard> shards_;
  std::unordered_map<std::string, Retained> by_name_;
  std::unordered_set<uint64_t> ids_;
  /// Arrival order, front = oldest; points at by_name_ keys (stable).
  std::deque<const std::string*> fifo_;
};

/// Streaming counterpart of FeedAnalyzer: same reports, produced from an
/// IncrementalCorpus instead of per-cycle re-analysis. Both analyzers
/// share the report builders in analyzer.h, so on an unsheared corpus the
/// outputs are identical (tested); the difference is cost — a cycle here
/// is O(live clusters), not O(retained names × registered groups).
class IncrementalAnalyzer {
 public:
  struct Options {
    Options() {}
    /// Thresholds shared with the batch analyzer.
    FeedAnalyzer::Options analyzer;
    /// Corpus bounds (shards, retention budget, reservoir).
    IncrementalCorpus::Options corpus;
    /// Worker threads folding and inducing shards. 0 = inline (the
    /// deterministic default; results are identical either way).
    size_t workers = 0;
  };

  /// `metrics` may be null (no instrumentation).
  IncrementalAnalyzer(const FeedRegistry* registry, Logger* logger,
                      MetricsRegistry* metrics, Options options = Options());
  ~IncrementalAnalyzer();

  /// Feeds unmatched names; duplicates (by id / name) are dropped.
  /// Returns the number admitted into the corpus.
  size_t ObserveUnmatched(const std::vector<FileObservation>& batch);
  bool ObserveUnmatched(const FileObservation& obs);

  /// Feeds names classified into `feed`, for false-positive analysis.
  void ObserveMatched(const FeedName& feed, const FileObservation& obs);

  struct CycleResult {
    std::vector<NewFeedSuggestion> new_feeds;
    std::vector<FalseNegativeReport> false_negatives;
    std::vector<FalsePositiveReport> false_positives;
  };
  /// One full analysis cycle (the daemon's composition): FN detection,
  /// then new-feed discovery over the names *not* explained as false
  /// negatives, then FP reports per observed feed.
  CycleResult RunCycle();

  // Piecewise API mirroring FeedAnalyzer.
  std::vector<NewFeedSuggestion> DiscoverNewFeeds();
  std::vector<FalseNegativeReport> DetectFalseNegatives();
  std::vector<FalsePositiveReport> DetectFalsePositives(const FeedName& feed);

  const IncrementalCorpus& corpus() const { return unmatched_; }
  const Options& options() const { return options_; }

 private:
  ThreadPool* pool() { return pool_.get(); }
  void PublishMetrics();

  const FeedRegistry* registry_;
  Logger* logger_;
  Options options_;
  IncrementalCorpus unmatched_;
  /// Per-feed matched-sample corpora (std::map: deterministic FP order).
  std::map<FeedName, IncrementalCorpus> matched_;
  std::unique_ptr<ThreadPool> pool_;

  Counter* folds_counter_ = nullptr;
  Counter* new_clusters_counter_ = nullptr;
  Counter* shed_counter_ = nullptr;
  Counter* duplicates_counter_ = nullptr;
  Gauge* corpus_gauge_ = nullptr;
  Histogram* cycle_hist_ = nullptr;
  IncrementalCorpus::Stats reported_;  // last published (counter deltas)
};

}  // namespace bistro

#endif  // BISTRO_ANALYZER_STREAM_H_

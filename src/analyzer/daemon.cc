#include "analyzer/daemon.h"

#include "common/hash.h"
#include "common/strings.h"

namespace bistro {

namespace {

IncrementalAnalyzer::Options StreamOptions(const AnalyzerDaemon::Options& o) {
  IncrementalAnalyzer::Options stream;
  stream.analyzer = o.analyzer;
  stream.workers = o.workers;
  stream.corpus.shards = o.shards;
  stream.corpus.max_corpus = o.max_corpus;
  stream.corpus.max_exemplars = o.max_exemplars;
  return stream;
}

}  // namespace

void AnalyzerDaemon::Options::ApplyTuning(const AnalyzerTuningSpec& tuning) {
  if (tuning.workers) workers = static_cast<size_t>(*tuning.workers);
  if (tuning.max_corpus) max_corpus = static_cast<size_t>(*tuning.max_corpus);
  if (tuning.shards) shards = static_cast<size_t>(*tuning.shards);
  if (tuning.cycle_interval) interval = *tuning.cycle_interval;
}

AnalyzerDaemon::AnalyzerDaemon(BistroServer* server, EventLoop* loop,
                               Logger* logger, Options options)
    : server_(server),
      loop_(loop),
      logger_(logger),
      options_(options),
      incremental_(server->registry(), logger, server->metrics(),
                   StreamOptions(options)) {
  MetricsRegistry* metrics = server->metrics();
  passes_counter_ = metrics->GetCounter("bistro_analyzer_passes_total",
                                        "Analysis passes completed");
  suggestions_counter_ = metrics->GetCounter(
      "bistro_analyzer_suggestions_total",
      "New-feed, false-negative and false-positive reports generated");
  unmatched_gauge_ = metrics->GetGauge(
      "bistro_analyzer_unmatched_retained",
      "Unmatched file observations currently retained");
}

AnalyzerDaemon::~AnalyzerDaemon() = default;

void AnalyzerDaemon::Start() {
  if (started_) return;
  started_ = true;
  loop_->PostAfter(options_.interval,
                   [weak = std::weak_ptr<char>(alive_), this] {
                     if (!weak.lock()) return;
                     RunOnce();
                     started_ = false;
                     Start();
                   });
}

void AnalyzerDaemon::ObserveMatched(const FeedName& feed,
                                    const std::string& name, TimePoint when) {
  incremental_.ObserveMatched(feed, {name, when, Fnv1a64(name)});
}

void AnalyzerDaemon::RunOnce() {
  ++passes_;
  // The drained stream may re-deliver names already folded in (unmatched
  // files survive in the landing zone and are re-scanned every tick);
  // the corpus dedupes them by FileId.
  incremental_.ObserveUnmatched(server_->DrainUnmatched());
  IncrementalAnalyzer::CycleResult cycle = incremental_.RunCycle();
  new_feeds_ = std::move(cycle.new_feeds);
  false_negatives_ = std::move(cycle.false_negatives);
  false_positives_ = std::move(cycle.false_positives);
  passes_counter_->Increment();
  suggestions_counter_->Increment(new_feeds_.size() + false_negatives_.size() +
                                  false_positives_.size());
  unmatched_gauge_->Set(static_cast<int64_t>(incremental_.corpus().size()));
  logger_->Info(
      "analyzer",
      StrFormat("analysis pass %zu: %zu new-feed suggestions, %zu FN "
                "reports, %zu FP reports (%zu unmatched files retained)",
                passes_, new_feeds_.size(), false_negatives_.size(),
                false_positives_.size(), incremental_.corpus().size()));
}

}  // namespace bistro

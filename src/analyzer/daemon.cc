#include "analyzer/daemon.h"

#include "common/strings.h"

namespace bistro {

AnalyzerDaemon::AnalyzerDaemon(BistroServer* server, EventLoop* loop,
                               Logger* logger, Options options)
    : server_(server),
      loop_(loop),
      logger_(logger),
      options_(options),
      analyzer_(server->registry(), logger, options.analyzer) {
  MetricsRegistry* metrics = server->metrics();
  passes_counter_ = metrics->GetCounter("bistro_analyzer_passes_total",
                                        "Analysis passes completed");
  suggestions_counter_ = metrics->GetCounter(
      "bistro_analyzer_suggestions_total",
      "New-feed, false-negative and false-positive reports generated");
  unmatched_gauge_ = metrics->GetGauge(
      "bistro_analyzer_unmatched_retained",
      "Unmatched file observations currently retained");
}

AnalyzerDaemon::~AnalyzerDaemon() = default;

void AnalyzerDaemon::Start() {
  if (started_) return;
  started_ = true;
  loop_->PostAfter(options_.interval,
                   [weak = std::weak_ptr<char>(alive_), this] {
                     if (!weak.lock()) return;
                     RunOnce();
                     started_ = false;
                     Start();
                   });
}

void AnalyzerDaemon::ObserveMatched(const FeedName& feed,
                                    const std::string& name, TimePoint when) {
  auto& sample = matched_samples_[feed];
  sample.push_back({name, when});
  if (sample.size() > options_.max_unmatched) {
    sample.erase(sample.begin(), sample.begin() + sample.size() / 2);
  }
}

void AnalyzerDaemon::RunOnce() {
  ++passes_;
  for (auto& [name, when] : server_->DrainUnmatched()) {
    unmatched_history_.push_back({std::move(name), when});
  }
  if (unmatched_history_.size() > options_.max_unmatched) {
    unmatched_history_.erase(
        unmatched_history_.begin(),
        unmatched_history_.begin() +
            (unmatched_history_.size() - options_.max_unmatched));
  }
  false_negatives_ = analyzer_.DetectFalseNegatives(unmatched_history_);
  // New-feed discovery runs on unmatched files NOT explained as false
  // negatives of an existing feed — those are new subfeeds.
  std::set<std::string> explained;
  for (const auto& report : false_negatives_) {
    for (const auto& f : report.files) explained.insert(f);
  }
  std::vector<FileObservation> unexplained;
  for (const auto& obs : unmatched_history_) {
    if (explained.count(obs.name) == 0) unexplained.push_back(obs);
  }
  new_feeds_ = analyzer_.DiscoverNewFeeds(unexplained);
  false_positives_.clear();
  for (const auto& [feed, sample] : matched_samples_) {
    auto reports = analyzer_.DetectFalsePositives(feed, sample);
    for (auto& r : reports) false_positives_.push_back(std::move(r));
  }
  passes_counter_->Increment();
  suggestions_counter_->Increment(new_feeds_.size() + false_negatives_.size() +
                                  false_positives_.size());
  unmatched_gauge_->Set(static_cast<int64_t>(unmatched_history_.size()));
  logger_->Info(
      "analyzer",
      StrFormat("analysis pass %zu: %zu new-feed suggestions, %zu FN "
                "reports, %zu FP reports (%zu unmatched files retained)",
                passes_, new_feeds_.size(), false_negatives_.size(),
                false_positives_.size(), unmatched_history_.size()));
}

}  // namespace bistro

#include "analyzer/tokenizer.h"

namespace bistro {

namespace {
constexpr std::array<NameCharKind, 256> BuildNameCharClass() {
  std::array<NameCharKind, 256> t{};
  for (int c = 0; c < 256; ++c) {
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')) {
      t[static_cast<size_t>(c)] = NameCharKind::kAlpha;
    } else if (c >= '0' && c <= '9') {
      t[static_cast<size_t>(c)] = NameCharKind::kDigit;
    } else {
      t[static_cast<size_t>(c)] = NameCharKind::kSep;
    }
  }
  return t;
}
}  // namespace

const std::array<NameCharKind, 256> kNameCharClass = BuildNameCharClass();

std::vector<NameToken> TokenizeName(std::string_view name) {
  std::vector<NameToken> tokens;
  size_t i = 0;
  while (i < name.size()) {
    NameCharKind k = kNameCharClass[static_cast<uint8_t>(name[i])];
    if (k == NameCharKind::kSep) {
      tokens.push_back({NameToken::Kind::kSep, std::string(1, name[i])});
      ++i;
      continue;
    }
    size_t start = i;
    while (i < name.size() &&
           kNameCharClass[static_cast<uint8_t>(name[i])] == k) {
      ++i;
    }
    tokens.push_back({k == NameCharKind::kAlpha ? NameToken::Kind::kAlpha
                                                : NameToken::Kind::kDigits,
                      std::string(name.substr(start, i - start))});
  }
  return tokens;
}

std::string NameSignature(const std::vector<NameToken>& tokens) {
  std::string sig;
  for (const auto& t : tokens) {
    switch (t.kind) {
      case NameToken::Kind::kAlpha:
        sig += 'A';
        sig += t.text;
        break;
      case NameToken::Kind::kDigits:
        sig += '#';  // digit runs abstracted
        break;
      case NameToken::Kind::kSep:
        sig += 'S';
        sig += t.text;
        break;
    }
    sig += '\x1f';
  }
  return sig;
}

}  // namespace bistro

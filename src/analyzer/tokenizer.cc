#include "analyzer/tokenizer.h"

#include "common/strings.h"

namespace bistro {

std::vector<NameToken> TokenizeName(std::string_view name) {
  std::vector<NameToken> tokens;
  size_t i = 0;
  while (i < name.size()) {
    char c = name[i];
    if (IsAlpha(c)) {
      size_t start = i;
      while (i < name.size() && IsAlpha(name[i])) ++i;
      tokens.push_back(
          {NameToken::Kind::kAlpha, std::string(name.substr(start, i - start))});
    } else if (IsDigit(c)) {
      size_t start = i;
      while (i < name.size() && IsDigit(name[i])) ++i;
      tokens.push_back({NameToken::Kind::kDigits,
                        std::string(name.substr(start, i - start))});
    } else {
      tokens.push_back({NameToken::Kind::kSep, std::string(1, c)});
      ++i;
    }
  }
  return tokens;
}

std::string NameSignature(const std::vector<NameToken>& tokens) {
  std::string sig;
  for (const auto& t : tokens) {
    switch (t.kind) {
      case NameToken::Kind::kAlpha:
        sig += 'A';
        sig += t.text;
        break;
      case NameToken::Kind::kDigits:
        sig += '#';  // digit runs abstracted
        break;
      case NameToken::Kind::kSep:
        sig += 'S';
        sig += t.text;
        break;
    }
    sig += '\x1f';
  }
  return sig;
}

}  // namespace bistro

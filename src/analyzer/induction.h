#ifndef BISTRO_ANALYZER_INDUCTION_H_
#define BISTRO_ANALYZER_INDUCTION_H_

#include <string>
#include <vector>

#include "analyzer/infer.h"
#include "analyzer/tokenizer.h"

namespace bistro {

/// Evidence about one structural cluster, sufficient to run field typing,
/// timestamp recognition and arrival-pattern estimation. This is the
/// representation shared by the batch path (DiscoverFeeds, which stores
/// every observed name) and the streaming path (IncrementalCorpus, which
/// stores a bounded exemplar sample): induction itself cannot tell the
/// two apart, which is what makes the incremental analyzer's output
/// provably identical to batch whenever nothing has been sampled away
/// (DESIGN.md §11).
struct ClusterEvidence {
  /// Tokens of the first member (cluster structure; digit texts are the
  /// first member's and are only used for token kinds/separators).
  std::vector<NameToken> shape;

  struct Digit {
    /// Token index within `shape`.
    size_t token_index = 0;
    /// Width if consistent across *all* folded members (not just the
    /// retained exemplars), else 0.
    size_t fixed_width = 0;
    /// One value per exemplar row (row r belongs to names[r]).
    std::vector<std::string> values;
  };
  /// One entry per digit token of `shape`, in token order.
  std::vector<Digit> digits;

  /// Exemplar names, row-parallel with Digit::values.
  std::vector<std::string> names;

  /// True member count (>= names.size(); larger when exemplars were
  /// reservoir-sampled).
  size_t file_count = 0;
};

/// Induces an AtomicFeed from cluster evidence: assigns time specs (wide
/// packed stamps, separated component runs, unit continuations), types
/// the remaining digit fields (constant / categorical / integer), builds
/// the pattern, and estimates period and batch size from extracted data
/// timestamps. `total_files` is the population the cluster was drawn
/// from (for the support fraction). `stamp_count`, when non-null,
/// receives the number of distinct data intervals seen (0 when the
/// cluster has no timestamp fields) — the one piece of derived state a
/// caller needs to re-scale files_per_interval for a changed file_count
/// without re-analyzing (IncrementalCorpus caches per-cluster results).
AtomicFeed AnalyzeClusterEvidence(const ClusterEvidence& evidence,
                                  size_t total_files,
                                  const DiscoveryOptions& options,
                                  size_t* stamp_count = nullptr);

/// Escapes '%' in literal text so it survives as a pattern literal.
std::string EscapePatternLiteral(const std::string& text);

}  // namespace bistro

#endif  // BISTRO_ANALYZER_INDUCTION_H_

#include "analyzer/similarity.h"

#include <algorithm>
#include <vector>

#include "common/strings.h"

namespace bistro {

namespace {

// A pattern spec token for similarity purposes.
struct SpecToken {
  enum class Kind { kLiteralAlpha, kLiteralSep, kString, kInt, kTime };
  Kind kind;
  std::string text;  // literal text only
};

// Splits a pattern spec into tokens: literal alpha runs, single literal
// separators, and field specifiers collapsed by class.
std::vector<SpecToken> TokenizeSpec(const std::string& spec) {
  std::vector<SpecToken> out;
  size_t i = 0;
  auto push_literal_char = [&](char c) {
    if (IsAlpha(c)) {
      if (!out.empty() && out.back().kind == SpecToken::Kind::kLiteralAlpha) {
        out.back().text += c;
      } else {
        out.push_back({SpecToken::Kind::kLiteralAlpha, std::string(1, c)});
      }
    } else if (IsDigit(c)) {
      // Literal digits are rare in specs; treat them like an int field so
      // "poller1" and "poller%i" stay similar.
      if (out.empty() || out.back().kind != SpecToken::Kind::kInt) {
        out.push_back({SpecToken::Kind::kInt, ""});
      }
    } else {
      out.push_back({SpecToken::Kind::kLiteralSep, std::string(1, c)});
    }
  };
  while (i < spec.size()) {
    char c = spec[i];
    if (c == '%' && i + 1 < spec.size()) {
      char f = spec[i + 1];
      i += 2;
      switch (f) {
        case '%':
          push_literal_char('%');
          break;
        case 's':
          out.push_back({SpecToken::Kind::kString, ""});
          break;
        case 'i':
          out.push_back({SpecToken::Kind::kInt, ""});
          break;
        case 'Y':
        case 'y':
        case 'm':
        case 'd':
        case 'H':
        case 'M':
        case 'S':
          // Collapse adjacent time components into one time token:
          // "%Y%m%d%H" and "%Y_%m_%d" should align as time+seps.
          out.push_back({SpecToken::Kind::kTime, ""});
          break;
        default:
          push_literal_char(f);
      }
    } else {
      push_literal_char(c);
      ++i;
    }
  }
  // Merge adjacent time tokens.
  std::vector<SpecToken> merged;
  for (auto& t : out) {
    if (t.kind == SpecToken::Kind::kTime && !merged.empty() &&
        merged.back().kind == SpecToken::Kind::kTime) {
      continue;
    }
    merged.push_back(std::move(t));
  }
  return merged;
}

double TokenMatch(const SpecToken& a, const SpecToken& b) {
  if (a.kind != b.kind) {
    // Fields of different numeric classes are still weakly related.
    auto numeric = [](SpecToken::Kind k) {
      return k == SpecToken::Kind::kInt || k == SpecToken::Kind::kTime;
    };
    if (numeric(a.kind) && numeric(b.kind)) return 0.5;
    return 0.0;
  }
  if (a.kind == SpecToken::Kind::kLiteralAlpha) {
    if (a.text == b.text) return 1.0;
    // Case-insensitive match is a near-hit (the paper's Poller/poller
    // false-negative scenario).
    if (ToLower(a.text) == ToLower(b.text)) return 0.9;
    // Otherwise scale by character-level similarity.
    size_t dist = EditDistance(a.text, b.text);
    size_t len = std::max(a.text.size(), b.text.size());
    double sim = len == 0 ? 1.0 : 1.0 - static_cast<double>(dist) / len;
    return sim >= 0.5 ? sim * 0.8 : 0.0;
  }
  if (a.kind == SpecToken::Kind::kLiteralSep) {
    return a.text == b.text ? 1.0 : 0.5;  // '_' vs '-' are near-equivalent
  }
  return 1.0;  // same field class
}

}  // namespace

double PatternSimilarity(const std::string& spec_a, const std::string& spec_b) {
  auto a = TokenizeSpec(spec_a);
  auto b = TokenizeSpec(spec_b);
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  // Weighted LCS via dynamic programming (alignment score).
  std::vector<std::vector<double>> dp(a.size() + 1,
                                      std::vector<double>(b.size() + 1, 0.0));
  for (size_t i = 1; i <= a.size(); ++i) {
    for (size_t j = 1; j <= b.size(); ++j) {
      double match = TokenMatch(a[i - 1], b[j - 1]);
      dp[i][j] = std::max({dp[i - 1][j], dp[i][j - 1],
                           dp[i - 1][j - 1] + match});
    }
  }
  // Normalize by the SHORTER sequence: the question is containment —
  // "does the feed pattern's structure appear in the file's structure?" —
  // not symmetric equality. A false-negative file often carries extra
  // fields its feed pattern lacks (the paper's TRAP example), which a
  // max-normalized score would punish.
  double sim = dp[a.size()][b.size()] /
               static_cast<double>(std::min(a.size(), b.size()));
  if (sim > 1.0) sim = 1.0;
  // Stem weighting: measurement feeds are named by their leading literal
  // ("CPU_...", "MEMORY_..."). Two conventions can be structurally
  // parallel (POLL + id + stamp) yet belong to unrelated feeds; an
  // unrelated stem discounts the structural score so such files surface
  // as NEW feeds rather than false negatives of an existing one.
  const SpecToken* stem_a = nullptr;
  const SpecToken* stem_b = nullptr;
  for (const auto& t : a) {
    if (t.kind == SpecToken::Kind::kLiteralAlpha) {
      stem_a = &t;
      break;
    }
  }
  for (const auto& t : b) {
    if (t.kind == SpecToken::Kind::kLiteralAlpha) {
      stem_b = &t;
      break;
    }
  }
  if (stem_a != nullptr && stem_b != nullptr) {
    double stem = TokenMatch(*stem_a, *stem_b);
    sim *= 0.6 + 0.4 * stem;
  }
  return sim;
}

double EditDistanceSimilarity(const std::string& name, const std::string& spec) {
  size_t dist = EditDistance(name, spec);
  size_t len = std::max(name.size(), spec.size());
  if (len == 0) return 1.0;
  double sim = 1.0 - static_cast<double>(dist) / static_cast<double>(len);
  return sim < 0.0 ? 0.0 : sim;
}

}  // namespace bistro

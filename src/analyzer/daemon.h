#ifndef BISTRO_ANALYZER_DAEMON_H_
#define BISTRO_ANALYZER_DAEMON_H_

#include <memory>
#include <vector>

#include "analyzer/analyzer.h"
#include "core/server.h"
#include "sim/event_loop.h"

namespace bistro {

/// Continuous feed analysis (paper §3.2/§5: the analyzer "continuously
/// monitors a stream of incoming data files ... and periodically
/// generates a list of new feed definitions").
///
/// Every `interval` the daemon drains the server's unmatched-file stream,
/// accumulates it, and regenerates three report sets: new-feed
/// suggestions, false-negative reports (with ready-to-apply revised
/// specs) and — for each registered feed, from a sample of its matched
/// names — false-positive reports. Reports are never applied
/// automatically; they are exposed for subscriber review (§3.2).
class AnalyzerDaemon {
 public:
  struct Options {
    Options() {}
    Duration interval = 10 * kMinute;
    FeedAnalyzer::Options analyzer;
    /// Cap on retained unmatched history (oldest dropped first).
    size_t max_unmatched = 100000;
  };

  AnalyzerDaemon(BistroServer* server, EventLoop* loop, Logger* logger,
                 Options options = Options());
  ~AnalyzerDaemon();

  /// Starts the periodic analysis timer.
  void Start();

  /// Runs one analysis pass now (also usable without Start()).
  void RunOnce();

  /// Feeds classified names for FP analysis (the server does not retain
  /// matched names; callers tap them in, e.g. from a delivery hook).
  void ObserveMatched(const FeedName& feed, const std::string& name,
                      TimePoint when);

  const std::vector<NewFeedSuggestion>& new_feed_suggestions() const {
    return new_feeds_;
  }
  const std::vector<FalseNegativeReport>& false_negatives() const {
    return false_negatives_;
  }
  const std::vector<FalsePositiveReport>& false_positives() const {
    return false_positives_;
  }
  size_t passes() const { return passes_; }

 private:
  BistroServer* server_;
  EventLoop* loop_;
  Logger* logger_;
  Options options_;
  FeedAnalyzer analyzer_;
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
  bool started_ = false;

  Counter* passes_counter_;
  Counter* suggestions_counter_;
  Gauge* unmatched_gauge_;

  std::vector<FileObservation> unmatched_history_;
  std::map<FeedName, std::vector<FileObservation>> matched_samples_;
  std::vector<NewFeedSuggestion> new_feeds_;
  std::vector<FalseNegativeReport> false_negatives_;
  std::vector<FalsePositiveReport> false_positives_;
  size_t passes_ = 0;
};

}  // namespace bistro

#endif  // BISTRO_ANALYZER_DAEMON_H_

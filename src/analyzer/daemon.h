#ifndef BISTRO_ANALYZER_DAEMON_H_
#define BISTRO_ANALYZER_DAEMON_H_

#include <memory>
#include <vector>

#include "analyzer/analyzer.h"
#include "analyzer/stream.h"
#include "core/server.h"
#include "sim/event_loop.h"

namespace bistro {

/// Continuous feed analysis (paper §3.2/§5: the analyzer "continuously
/// monitors a stream of incoming data files ... and periodically
/// generates a list of new feed definitions").
///
/// Every `interval` the daemon drains the server's unmatched-file stream
/// into an IncrementalCorpus — names fold into their template clusters as
/// they arrive, deduplicated by FileId (unmatched files stay in the
/// landing zone and are re-seen by every scan) — and regenerates three
/// report sets: new-feed suggestions, false-negative reports (with
/// ready-to-apply revised specs) and — for each registered feed, from a
/// sample of its matched names — false-positive reports. A cycle costs
/// O(new names + live clusters) rather than re-clustering the retained
/// history, and memory is bounded by the corpus retention budget
/// (DESIGN.md §11). Reports are never applied automatically; they are
/// exposed for subscriber review (§3.2).
class AnalyzerDaemon {
 public:
  struct Options {
    Options() {}
    Duration interval = 10 * kMinute;
    FeedAnalyzer::Options analyzer;
    /// Retention budget: names kept in the unmatched corpus (and per
    /// matched-feed sample), oldest shed first.
    size_t max_corpus = 100000;
    /// Worker threads folding/inducing shards; 0 = inline deterministic.
    size_t workers = 0;
    /// Stem-keyed corpus shards.
    size_t shards = 16;
    /// Per-cluster exemplar reservoir size.
    size_t max_exemplars = 512;

    /// Applies a parsed `analyzer { ... }` config block: set keys
    /// override the fields above, unset keys leave them untouched (the
    /// same contract as the delivery/ingest tuning blocks).
    void ApplyTuning(const AnalyzerTuningSpec& tuning);
  };

  AnalyzerDaemon(BistroServer* server, EventLoop* loop, Logger* logger,
                 Options options = Options());
  ~AnalyzerDaemon();

  /// Starts the periodic analysis timer.
  void Start();

  /// Runs one analysis pass now (also usable without Start()).
  void RunOnce();

  /// Feeds classified names for FP analysis (the server does not retain
  /// matched names; callers tap them in, e.g. from a delivery hook).
  void ObserveMatched(const FeedName& feed, const std::string& name,
                      TimePoint when);

  const std::vector<NewFeedSuggestion>& new_feed_suggestions() const {
    return new_feeds_;
  }
  const std::vector<FalseNegativeReport>& false_negatives() const {
    return false_negatives_;
  }
  const std::vector<FalsePositiveReport>& false_positives() const {
    return false_positives_;
  }
  size_t passes() const { return passes_; }
  /// Names currently retained in the unmatched corpus.
  size_t corpus_size() const { return incremental_.corpus().size(); }

 private:
  BistroServer* server_;
  EventLoop* loop_;
  Logger* logger_;
  Options options_;
  IncrementalAnalyzer incremental_;
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
  bool started_ = false;

  Counter* passes_counter_;
  Counter* suggestions_counter_;
  Gauge* unmatched_gauge_;

  std::vector<NewFeedSuggestion> new_feeds_;
  std::vector<FalseNegativeReport> false_negatives_;
  std::vector<FalsePositiveReport> false_positives_;
  size_t passes_ = 0;
};

}  // namespace bistro

#endif  // BISTRO_ANALYZER_DAEMON_H_

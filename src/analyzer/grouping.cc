#include "analyzer/grouping.h"

#include <algorithm>
#include <map>

#include "analyzer/similarity.h"
#include "common/strings.h"

namespace bistro {

namespace {
// Leading alphabetic stem of a pattern ("CPU_POLL%i..." -> "CPU";
// separators split the stem, digits/fields end it).
std::string StemOf(const std::string& pattern) {
  std::string stem;
  for (size_t i = 0; i < pattern.size(); ++i) {
    char c = pattern[i];
    if (c == '%') break;
    if (IsAlpha(c)) {
      stem += c;
    } else {
      break;
    }
  }
  return ToUpper(stem);
}
}  // namespace

std::vector<FeedGroupSuggestion> SuggestFeedGroups(
    const std::vector<AtomicFeed>& feeds, const GroupingOptions& options) {
  std::map<std::string, std::vector<const AtomicFeed*>> by_stem;
  for (const AtomicFeed& feed : feeds) {
    std::string stem = StemOf(feed.pattern);
    if (stem.empty()) continue;
    by_stem[stem].push_back(&feed);
  }
  std::vector<FeedGroupSuggestion> out;
  for (auto& [stem, members] : by_stem) {
    if (members.size() < options.min_members) continue;
    // Cohesion: mean pairwise structural similarity.
    double total = 0;
    size_t pairs = 0;
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        total += PatternSimilarity(members[i]->pattern, members[j]->pattern);
        ++pairs;
      }
    }
    double cohesion = pairs == 0 ? 1.0 : total / static_cast<double>(pairs);
    if (cohesion < options.min_cohesion) continue;
    FeedGroupSuggestion suggestion;
    suggestion.name = stem;
    suggestion.cohesion = cohesion;
    for (const AtomicFeed* m : members) {
      suggestion.member_patterns.push_back(m->pattern);
    }
    std::sort(suggestion.member_patterns.begin(),
              suggestion.member_patterns.end());
    out.push_back(std::move(suggestion));
  }
  std::sort(out.begin(), out.end(),
            [](const FeedGroupSuggestion& a, const FeedGroupSuggestion& b) {
              return a.member_patterns.size() != b.member_patterns.size()
                         ? a.member_patterns.size() > b.member_patterns.size()
                         : a.name < b.name;
            });
  return out;
}

}  // namespace bistro

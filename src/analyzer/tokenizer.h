#ifndef BISTRO_ANALYZER_TOKENIZER_H_
#define BISTRO_ANALYZER_TOKENIZER_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace bistro {

/// Character class of one filename byte. One shared 256-entry table
/// drives both TokenizeName below and the classifier automaton's fused
/// classify+tokenize scan (classify/automaton.h), so the two
/// segmentations cannot drift apart. Matches IsAlpha/IsDigit from
/// common/strings.h.
enum class NameCharKind : uint8_t {
  kSep = 0,
  kAlpha = 1,
  kDigit = 2,
};

extern const std::array<NameCharKind, 256> kNameCharClass;

/// One lexical token of a filename.
///
/// Filenames are segmented at separator characters and at transitions
/// between alphabetic and numeric runs — the paper's §5.1 heuristic for
/// finding field boundaries when names use fixed-width fields instead of
/// separators ("MEMORY_POLLER1_2010092504_51.csv.gz" ->
/// MEMORY _ POLLER 1 _ 2010092504 _ 51 . csv . gz).
struct NameToken {
  enum class Kind {
    kAlpha,   // run of letters
    kDigits,  // run of decimal digits
    kSep,     // single separator character (_ - . / , = etc.)
  };
  Kind kind = Kind::kAlpha;
  std::string text;

  bool operator==(const NameToken&) const = default;
};

/// Tokenizes a filename.
std::vector<NameToken> TokenizeName(std::string_view name);

/// The structural signature of a tokenized name: token kinds plus the
/// exact text of alpha and separator tokens, with digit runs abstracted.
/// Two filenames with equal signatures are candidates for the same atomic
/// feed. (Digit widths are intentionally *not* part of the signature so
/// that POLLER9/POLLER10 unify.)
std::string NameSignature(const std::vector<NameToken>& tokens);

}  // namespace bistro

#endif  // BISTRO_ANALYZER_TOKENIZER_H_

#ifndef BISTRO_ANALYZER_ANALYZER_H_
#define BISTRO_ANALYZER_ANALYZER_H_

#include <functional>
#include <string>
#include <vector>

#include "analyzer/infer.h"
#include "analyzer/similarity.h"
#include "common/logging.h"
#include "config/registry.h"

namespace bistro {

/// A suggested new feed definition (new-feed discovery, §5.1).
struct NewFeedSuggestion {
  AtomicFeed feed;
  /// A ready-to-review feed spec the subscriber can approve.
  FeedSpec suggested_spec;

  bool operator==(const NewFeedSuggestion&) const = default;
};

/// A potential false negative (§5.2): unmatched files whose generalized
/// pattern closely resembles a registered feed's pattern.
struct FalseNegativeReport {
  FeedName feed;                 // the feed the files probably belong to
  std::string feed_pattern;      // its current (best-matching) pattern
  std::string generalized;       // pattern generalizing the unmatched files
  double similarity = 0;         // PatternSimilarity(generalized, pattern)
  std::vector<std::string> files;  // affected filenames
  /// Ready-to-apply revision: the feed's spec with `generalized` appended
  /// as an alternative pattern. Subscribers approve it, administrators
  /// feed it to BistroServer::ReviseFeed (§5.2's suggestion loop).
  FeedSpec suggested_spec;

  bool operator==(const FalseNegativeReport&) const = default;
};

/// A potential false positive (§5.3): an atomic feed inside a feed's
/// matched stream that does not share structure with the dominant traffic.
struct FalsePositiveReport {
  FeedName feed;
  AtomicFeed outlier;            // the suspicious subgroup
  std::string dominant_pattern;  // what most of the feed looks like

  bool operator==(const FalsePositiveReport&) const = default;
};

/// The Bistro feed analyzer (paper §5): watches classification decisions
/// and proactively reports new feeds, suspected false negatives and
/// suspected false positives. It NEVER changes feed definitions itself —
/// every output is a suggestion for subscribers to approve (§3.2).
class FeedAnalyzer {
 public:
  struct Options {
    Options() {}
    DiscoveryOptions discovery;
    /// Similarity threshold above which an unmatched group is reported as
    /// a false negative of the most similar feed.
    double fn_threshold = 0.75;
    /// A matched subgroup is a false-positive suspect when it covers at
    /// most this fraction of the feed's files.
    double fp_max_support = 0.1;
  };

  FeedAnalyzer(const FeedRegistry* registry, Logger* logger,
               Options options = Options());

  /// New-feed discovery over the unmatched-file stream: clusters into
  /// atomic feeds and emits one suggested definition per group (outlier
  /// groups below min_support are withheld until more evidence arrives).
  std::vector<NewFeedSuggestion> DiscoverNewFeeds(
      const std::vector<FileObservation>& unmatched) const;

  /// False-negative detection: generalizes unmatched files and reports
  /// groups whose pattern is similar to a registered feed's. One report
  /// per (generalized pattern, feed), not per file — the paper's
  /// warning-deduplication property.
  std::vector<FalseNegativeReport> DetectFalseNegatives(
      const std::vector<FileObservation>& unmatched) const;

  /// False-positive detection: clusters the files *matched* to `feed`
  /// and flags low-support subgroups that diverge from the dominant
  /// structure.
  std::vector<FalsePositiveReport> DetectFalsePositives(
      const FeedName& feed,
      const std::vector<FileObservation>& matched) const;

  const Options& options() const { return options_; }

 private:
  const FeedRegistry* registry_;
  Logger* logger_;
  Options options_;
};

// ------------------------------------------------------- shared builders
//
// The report-assembly logic is shared between the batch FeedAnalyzer and
// the streaming IncrementalAnalyzer (stream.h): both produce AtomicFeed
// groups — batch by re-clustering the whole corpus, streaming from its
// incrementally maintained clusters — and hand them to the builders
// below. One code path is what makes the two analyzers' reports
// bit-identical (the golden-equivalence property, DESIGN.md §11).

/// Turns discovered groups (already sorted by support) into named,
/// ready-to-review feed suggestions.
std::vector<NewFeedSuggestion> BuildNewFeedSuggestions(
    std::vector<AtomicFeed> feeds, Logger* logger);

/// Matches each generalized group against every registered feed pattern
/// (primary + alternates) and reports those above `fn_threshold`.
/// `collect_files` returns the affected filenames of a group — batch
/// re-generalizes the whole corpus, streaming looks the bucket up.
std::vector<FalseNegativeReport> BuildFalseNegativeReports(
    const std::vector<AtomicFeed>& groups,
    const std::function<std::vector<std::string>(const AtomicFeed&)>&
        collect_files,
    const FeedRegistry& registry, double fn_threshold, Logger* logger);

/// Flags low-support subgroups of a feed's matched traffic. `groups` is
/// every structural group of the feed, sorted by support descending.
std::vector<FalsePositiveReport> BuildFalsePositiveReports(
    const FeedName& feed, std::vector<AtomicFeed> groups,
    double fp_max_support, Logger* logger);

}  // namespace bistro

#endif  // BISTRO_ANALYZER_ANALYZER_H_

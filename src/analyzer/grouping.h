#ifndef BISTRO_ANALYZER_GROUPING_H_
#define BISTRO_ANALYZER_GROUPING_H_

#include <string>
#include <vector>

#include "analyzer/infer.h"

namespace bistro {

/// A suggested feed group: structurally or nominally related atomic feeds
/// that probably belong under one group node in the feed hierarchy.
struct FeedGroupSuggestion {
  /// Suggested group name, derived from the members' shared name stem
  /// ("CPU" for CPU_POLL.../CPU_UTIL...; "SNMP" only if the stem says so).
  std::string name;
  /// Patterns of the member atomic feeds.
  std::vector<std::string> member_patterns;
  /// Mean pairwise structural similarity of the members.
  double cohesion = 0;
};

/// Options for group suggestion.
struct GroupingOptions {
  GroupingOptions() {}
  /// Minimum members for a suggested group.
  size_t min_members = 2;
  /// Minimum mean pairwise PatternSimilarity for a stem group to be
  /// suggested (filters accidental stem collisions).
  double min_cohesion = 0.4;
};

/// Groups discovered atomic feeds into suggested feed groups — the
/// paper's stated future work ("developing tools for automatic grouping
/// of related or structurally similar atomic feeds into more complex
/// logical feed groups", §5.1), implemented here as an extension.
///
/// Heuristic: feeds sharing a leading alphabetic name stem (after
/// stripping digits) form candidate groups; candidates must clear a
/// structural-cohesion bar. Like every analyzer output, suggestions are
/// for human review, never auto-applied.
std::vector<FeedGroupSuggestion> SuggestFeedGroups(
    const std::vector<AtomicFeed>& feeds,
    const GroupingOptions& options = GroupingOptions());

}  // namespace bistro

#endif  // BISTRO_ANALYZER_GROUPING_H_

#ifndef BISTRO_ANALYZER_SIMILARITY_H_
#define BISTRO_ANALYZER_SIMILARITY_H_

#include <string>

namespace bistro {

/// Structural similarity between two Bistro pattern specs in [0, 1]:
/// the normalized longest-common-subsequence over *pattern tokens*
/// (literal runs compared by text, field specifiers by kind, with all
/// timestamp components treated as one mutually similar class).
///
/// This is the comparison Bistro's false-negative detector uses (§5.2):
/// an unmatched filename is generalized into a pattern and compared
/// against registered feed patterns. Unlike raw string edit distance —
/// which the paper shows can reach 51 for an obviously related file —
/// pattern similarity is insensitive to the *length* of variable fields.
double PatternSimilarity(const std::string& spec_a, const std::string& spec_b);

/// The baseline the paper argues against: plain string edit distance
/// between a filename and a pattern spec, normalized to [0, 1] where 1 is
/// identical. Kept for experiment E7's comparison.
double EditDistanceSimilarity(const std::string& name, const std::string& spec);

}  // namespace bistro

#endif  // BISTRO_ANALYZER_SIMILARITY_H_

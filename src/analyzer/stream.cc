#include "analyzer/stream.h"

#include <algorithm>
#include <chrono>

#include "common/hash.h"
#include "common/strings.h"

namespace bistro {

namespace {

/// Observation identity: the server's FileId when it assigned one, else a
/// stable name hash (unmatched files never get a receipt, but their names
/// are unique per §3.1 — the same assumption the scan-dedupe in
/// ScanLandingZone relies on).
uint64_t ObservationId(const FileObservation& obs) {
  return obs.id != 0 ? obs.id : Fnv1a64(obs.name);
}

bool BySupport(const AtomicFeed& a, const AtomicFeed& b) {
  return a.file_count != b.file_count ? a.file_count > b.file_count
                                      : a.pattern < b.pattern;
}

/// Splits induced groups into feeds/outliers and sorts both — the same
/// result contract DiscoverFeeds has.
DiscoveryResult SplitAndSort(std::vector<AtomicFeed> groups,
                             const DiscoveryOptions& options) {
  DiscoveryResult result;
  for (AtomicFeed& feed : groups) {
    if (feed.file_count < options.min_support) {
      result.outliers.push_back(std::move(feed));
    } else {
      result.feeds.push_back(std::move(feed));
    }
  }
  std::sort(result.feeds.begin(), result.feeds.end(), BySupport);
  std::sort(result.outliers.begin(), result.outliers.end(), BySupport);
  return result;
}

}  // namespace

// ===================================================== IncrementalCorpus

IncrementalCorpus::IncrementalCorpus(Options options) : options_(options) {
  if (options_.shards == 0) options_.shards = 1;
  if (options_.max_exemplars == 0) options_.max_exemplars = 1;
  shards_.resize(options_.shards);
  for (size_t i = 0; i < shards_.size(); ++i) {
    shards_[i].rng = Rng(options_.seed ^ (0x9E3779B97F4A7C15ull * (i + 1)));
  }
  // Size the dedupe indexes for the retention budget up front (capped, in
  // case the budget is effectively unbounded) — growth rehashes are pure
  // overhead on the hot fold path.
  const size_t reserve = std::min<size_t>(options_.max_corpus, 1 << 20);
  by_name_.reserve(reserve);
  ids_.reserve(reserve);
}

uint32_t IncrementalCorpus::ShardOf(const std::string& name) const {
  // Shard key: the leading alphabetic stem ("MEMORY" of
  // "MEMORY_POLLER1_..."). Every member of a cluster shares its full
  // alpha/separator text, so a cluster always lives in exactly one shard.
  size_t begin = 0;
  while (begin < name.size() && !std::isalpha(static_cast<unsigned char>(name[begin]))) {
    ++begin;
  }
  size_t end = begin;
  while (end < name.size() && std::isalpha(static_cast<unsigned char>(name[end]))) {
    ++end;
  }
  return static_cast<uint32_t>(
      Fnv1a64(std::string_view(name).substr(begin, end - begin)) %
      shards_.size());
}

const std::string* IncrementalCorpus::FoldIntoShard(uint32_t shard_index,
                                                    const FileObservation& obs) {
  // Observations from the server carry the classifier's tokenization;
  // only bare observations (tests, replayed corpora) re-tokenize here.
  std::vector<NameToken> scratch;
  if (obs.tokens.empty()) scratch = TokenizeName(obs.name);
  const std::vector<NameToken>& tokens =
      obs.tokens.empty() ? scratch : obs.tokens;
  std::string signature = NameSignature(tokens);

  Shard& shard = shards_[shard_index];
  auto [it, created] = shard.clusters.try_emplace(std::move(signature));
  Cluster& cluster = it->second;
  if (created) {
    cluster.shape = tokens;
    for (size_t i = 0; i < tokens.size(); ++i) {
      if (tokens[i].kind == NameToken::Kind::kDigits) {
        cluster.digits.push_back({i, tokens[i].text.size()});
      }
    }
    ++shard.new_clusters;
    ++cluster.version;
  } else {
    ++shard.folds;
  }
  ++cluster.file_count;
  ++cluster.folds;

  // Reservoir decision first (Algorithm R: keep with probability
  // max_exemplars / folds), so the common rejected fold never pays for
  // assembling an exemplar row it would throw away.
  size_t slot = cluster.exemplars.size();
  bool admit = slot < options_.max_exemplars;
  if (!admit) {
    uint64_t j = shard.rng.Uniform(cluster.folds);
    if (j < cluster.exemplars.size()) {
      admit = true;
      slot = static_cast<size_t>(j);
    }
  }

  // Fold the digit values: width consistency is tracked across every
  // member ever folded (cheap), exemplar rows only for admitted samples.
  Exemplar exemplar;
  if (admit) {
    exemplar.name = obs.name;
    exemplar.digit_values.reserve(cluster.digits.size());
  }
  size_t dc = 0;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].kind != NameToken::Kind::kDigits) continue;
    Cluster::DigitMeta& dm = cluster.digits[dc++];
    if (dm.fixed_width != tokens[i].text.size() && dm.fixed_width != 0) {
      dm.fixed_width = 0;
      ++cluster.version;
    }
    if (admit) exemplar.digit_values.push_back(std::move(tokens[i].text));
  }
  if (admit) {
    if (slot == cluster.exemplars.size()) {
      cluster.exemplar_slot[exemplar.name] = slot;
      cluster.exemplars.push_back(std::move(exemplar));
    } else {
      cluster.exemplar_slot.erase(cluster.exemplars[slot].name);
      cluster.exemplar_slot[exemplar.name] = slot;
      cluster.exemplars[slot] = std::move(exemplar);
    }
    ++cluster.version;
  }
  return &it->first;
}

bool IncrementalCorpus::Observe(const FileObservation& obs) {
  uint64_t id = ObservationId(obs);
  if (ids_.count(id) != 0) {
    ++stats_.duplicates;
    return false;
  }
  auto [it, inserted] = by_name_.try_emplace(obs.name);
  if (!inserted) {
    ++stats_.duplicates;
    return false;
  }
  Retained& retained = it->second;
  retained.arrival = obs.arrival_time;
  retained.id = id;
  retained.shard = ShardOf(obs.name);
  retained.signature = FoldIntoShard(retained.shard, obs);
  fifo_.push_back(&it->first);
  ids_.insert(id);
  while (fifo_.size() > options_.max_corpus) EvictOldest();
  return true;
}

size_t IncrementalCorpus::ObserveBatch(
    const std::vector<FileObservation>& batch, ThreadPool* pool) {
  if (pool == nullptr || pool->num_threads() == 0) {
    size_t admitted = 0;
    for (const auto& obs : batch) {
      if (Observe(obs)) ++admitted;
    }
    return admitted;
  }

  // Parallel fold. Phase 1 (serial): dedupe, shard, and commit the global
  // index in arrival order (fold results are not needed for any of that).
  // Phase 2: one task per shard folds that shard's names in arrival order
  // — shard state, including its fold counters and reservoir rng, is only
  // ever touched by its owner, so the result is identical to the inline
  // path. Phase 3 (serial): enforce the retention budget once for the
  // whole batch (FIFO eviction sheds the same oldest names either way).
  struct Pending {
    const FileObservation* obs;
    Retained* retained;
  };
  std::vector<std::vector<Pending>> per_shard(shards_.size());
  size_t admitted = 0;
  for (const auto& obs : batch) {
    uint64_t id = ObservationId(obs);
    if (ids_.count(id) != 0) {
      ++stats_.duplicates;
      continue;
    }
    auto [it, inserted] = by_name_.try_emplace(obs.name);
    if (!inserted) {
      ++stats_.duplicates;
      continue;
    }
    Retained& retained = it->second;
    retained.arrival = obs.arrival_time;
    retained.id = id;
    retained.shard = ShardOf(obs.name);
    fifo_.push_back(&it->first);
    ids_.insert(id);
    per_shard[retained.shard].push_back({&obs, &retained});
    ++admitted;
  }

  for (size_t s = 0; s < shards_.size(); ++s) {
    if (per_shard[s].empty()) continue;
    pool->Submit([this, s, &per_shard] {
      for (Pending& p : per_shard[s]) {
        p.retained->signature =
            FoldIntoShard(static_cast<uint32_t>(s), *p.obs);
      }
    });
  }
  pool->Wait();

  while (fifo_.size() > options_.max_corpus) EvictOldest();
  return admitted;
}

void IncrementalCorpus::EvictOldest() {
  const std::string* name = fifo_.front();
  fifo_.pop_front();
  auto rit = by_name_.find(*name);
  Retained& retained = rit->second;

  Shard& shard = shards_[retained.shard];
  auto cit = shard.clusters.find(*retained.signature);
  Cluster& cluster = cit->second;
  --cluster.file_count;
  auto slot_it = cluster.exemplar_slot.find(*name);
  if (slot_it != cluster.exemplar_slot.end()) {
    size_t slot = slot_it->second;
    cluster.exemplar_slot.erase(slot_it);
    size_t last = cluster.exemplars.size() - 1;
    if (slot != last) {
      cluster.exemplars[slot] = std::move(cluster.exemplars[last]);
      cluster.exemplar_slot[cluster.exemplars[slot].name] = slot;
    }
    cluster.exemplars.pop_back();
    ++cluster.version;
  }
  if (cluster.file_count == 0) shard.clusters.erase(cit);

  ids_.erase(retained.id);
  by_name_.erase(rit);
  ++stats_.shed;
}

size_t IncrementalCorpus::cluster_count() const {
  size_t n = 0;
  for (const Shard& shard : shards_) n += shard.clusters.size();
  return n;
}

IncrementalCorpus::Stats IncrementalCorpus::stats() const {
  Stats s = stats_;
  for (const Shard& shard : shards_) {
    s.folds += shard.folds;
    s.new_clusters += shard.new_clusters;
  }
  return s;
}

ClusterEvidence IncrementalCorpus::ToEvidence(const Cluster& cluster) const {
  ClusterEvidence ev;
  ev.shape = cluster.shape;
  ev.file_count = cluster.file_count;
  ev.digits.reserve(cluster.digits.size());
  for (const auto& dm : cluster.digits) {
    ClusterEvidence::Digit digit;
    digit.token_index = dm.token_index;
    digit.fixed_width = dm.fixed_width;
    digit.values.reserve(cluster.exemplars.size());
    ev.digits.push_back(std::move(digit));
  }
  ev.names.reserve(cluster.exemplars.size());
  for (const Exemplar& ex : cluster.exemplars) {
    ev.names.push_back(ex.name);
    for (size_t d = 0; d < ex.digit_values.size(); ++d) {
      ev.digits[d].values.push_back(ex.digit_values[d]);
    }
  }
  return ev;
}

AtomicFeed IncrementalCorpus::AnalyzeCluster(
    const Cluster& cluster, size_t total,
    const DiscoveryOptions& options) const {
  if (cluster.analyzed_version != cluster.version ||
      cluster.analyzed_domain_cap != options.max_categorical_domain) {
    cluster.analyzed = AnalyzeClusterEvidence(ToEvidence(cluster), total,
                                              options,
                                              &cluster.analyzed_stamps);
    cluster.analyzed_version = cluster.version;
    cluster.analyzed_domain_cap = options.max_categorical_domain;
    return cluster.analyzed;
  }
  // Evidence unchanged since the memoized analysis: only the population
  // counts can differ (reservoir-rejected folds, non-exemplar evictions,
  // a different corpus total). Re-derive the count-dependent outputs with
  // the exact expressions AnalyzeClusterEvidence uses.
  AtomicFeed feed = cluster.analyzed;
  feed.file_count = cluster.file_count;
  feed.support =
      static_cast<double>(feed.file_count) / static_cast<double>(total);
  if (cluster.analyzed_stamps > 0) {
    feed.files_per_interval =
        static_cast<double>(feed.file_count) /
        static_cast<double>(cluster.analyzed_stamps);
  }
  return feed;
}

DiscoveryResult IncrementalCorpus::Induce(const DiscoveryOptions& options,
                                          ThreadPool* pool) const {
  const size_t total = size();
  if (total == 0) return {};

  std::vector<std::vector<AtomicFeed>> per_shard(shards_.size());
  auto induce_shard = [this, total, &options, &per_shard](size_t s) {
    for (const auto& [sig, cluster] : shards_[s].clusters) {
      per_shard[s].push_back(AnalyzeCluster(cluster, total, options));
    }
  };
  if (pool != nullptr && pool->num_threads() > 0) {
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (shards_[s].clusters.empty()) continue;
      pool->Submit([&induce_shard, s] { induce_shard(s); });
    }
    pool->Wait();
  } else {
    for (size_t s = 0; s < shards_.size(); ++s) induce_shard(s);
  }

  std::vector<AtomicFeed> all;
  for (auto& groups : per_shard) {
    for (auto& feed : groups) all.push_back(std::move(feed));
  }
  return SplitAndSort(std::move(all), options);
}

DiscoveryResult IncrementalCorpus::InduceExcluding(
    const std::set<std::string>& exclude,
    const DiscoveryOptions& options) const {
  // Which clusters actually contain an excluded name? Untouched clusters
  // reuse their incremental state against the reduced population.
  size_t excluded_retained = 0;
  std::set<std::string> affected;
  for (const auto& name : exclude) {
    auto it = by_name_.find(name);
    if (it == by_name_.end()) continue;
    ++excluded_retained;
    affected.insert(*it->second.signature);
  }
  if (excluded_retained == 0) return Induce(options);
  const size_t total = size() - excluded_retained;
  if (total == 0) return {};

  std::vector<AtomicFeed> all;
  for (const Shard& shard : shards_) {
    for (const auto& [sig, cluster] : shard.clusters) {
      if (affected.count(sig) != 0) continue;
      all.push_back(AnalyzeCluster(cluster, total, options));
    }
  }
  // Rebuild affected clusters from their surviving retained names, in
  // arrival order — exactly the cluster the batch path would form over
  // the unexplained subset.
  std::map<std::string, ClusterEvidence> rebuilt;
  for (const std::string* name_ptr : fifo_) {
    const std::string& name = *name_ptr;
    if (exclude.count(name) != 0) continue;
    const Retained& retained = by_name_.at(name);
    if (affected.count(*retained.signature) == 0) continue;
    auto tokens = TokenizeName(name);
    ClusterEvidence& ev = rebuilt[*retained.signature];
    if (ev.names.empty()) {
      ev.shape = tokens;
      for (size_t i = 0; i < tokens.size(); ++i) {
        if (tokens[i].kind == NameToken::Kind::kDigits) {
          ev.digits.push_back({i, tokens[i].text.size(), {}});
        }
      }
    }
    ev.names.push_back(name);
    ++ev.file_count;
    size_t dc = 0;
    for (size_t i = 0; i < tokens.size(); ++i) {
      if (tokens[i].kind != NameToken::Kind::kDigits) continue;
      ClusterEvidence::Digit& dp = ev.digits[dc++];
      if (dp.fixed_width != tokens[i].text.size()) dp.fixed_width = 0;
      dp.values.push_back(std::move(tokens[i].text));
    }
  }
  for (const auto& [sig, ev] : rebuilt) {
    all.push_back(AnalyzeClusterEvidence(ev, total, options));
  }
  return SplitAndSort(std::move(all), options);
}

std::map<std::string, std::vector<std::string>>
IncrementalCorpus::GeneralizedBuckets() const {
  std::map<std::string, std::vector<std::string>> buckets;
  for (const std::string* name : fifo_) {
    buckets[GeneralizeName(*name)].push_back(*name);
  }
  return buckets;
}

std::vector<std::string> IncrementalCorpus::GeneralizedBucket(
    const std::string& pattern) const {
  std::vector<std::string> bucket;
  for (const std::string* name : fifo_) {
    if (GeneralizeName(*name) == pattern) bucket.push_back(*name);
  }
  return bucket;
}

// ==================================================== IncrementalAnalyzer

IncrementalAnalyzer::IncrementalAnalyzer(const FeedRegistry* registry,
                                         Logger* logger,
                                         MetricsRegistry* metrics,
                                         Options options)
    : registry_(registry),
      logger_(logger),
      options_(options),
      unmatched_(options.corpus) {
  if (options_.workers > 0) {
    pool_ = std::make_unique<ThreadPool>(options_.workers);
  }
  if (metrics != nullptr) {
    folds_counter_ = metrics->GetCounter(
        "bistro_analyzer_folds_total",
        "Unmatched names folded into an existing template cluster");
    new_clusters_counter_ = metrics->GetCounter(
        "bistro_analyzer_new_clusters_total",
        "Unmatched names that opened a new candidate cluster");
    shed_counter_ = metrics->GetCounter(
        "bistro_analyzer_shed_total",
        "Names evicted from the analyzer corpus by the retention budget");
    duplicates_counter_ = metrics->GetCounter(
        "bistro_analyzer_duplicates_total",
        "Re-observed unmatched names dropped by FileId dedupe");
    corpus_gauge_ = metrics->GetGauge(
        "bistro_analyzer_corpus_retained",
        "Names retained in the incremental unmatched corpus");
    cycle_hist_ = metrics->GetHistogram("bistro_analyzer_cycle_us",
                                        "Incremental analysis cycle latency");
  }
}

IncrementalAnalyzer::~IncrementalAnalyzer() {
  if (pool_ != nullptr) pool_->Shutdown();
}

void IncrementalAnalyzer::PublishMetrics() {
  if (corpus_gauge_ == nullptr) return;
  const IncrementalCorpus::Stats s = unmatched_.stats();
  folds_counter_->Increment(s.folds - reported_.folds);
  new_clusters_counter_->Increment(s.new_clusters - reported_.new_clusters);
  shed_counter_->Increment(s.shed - reported_.shed);
  duplicates_counter_->Increment(s.duplicates - reported_.duplicates);
  corpus_gauge_->Set(static_cast<int64_t>(unmatched_.size()));
  reported_ = s;
}

size_t IncrementalAnalyzer::ObserveUnmatched(
    const std::vector<FileObservation>& batch) {
  size_t admitted = unmatched_.ObserveBatch(batch, pool());
  PublishMetrics();
  return admitted;
}

bool IncrementalAnalyzer::ObserveUnmatched(const FileObservation& obs) {
  bool admitted = unmatched_.Observe(obs);
  PublishMetrics();
  return admitted;
}

void IncrementalAnalyzer::ObserveMatched(const FeedName& feed,
                                         const FileObservation& obs) {
  auto it = matched_.try_emplace(feed, options_.corpus).first;
  it->second.Observe(obs);
}

std::vector<NewFeedSuggestion> IncrementalAnalyzer::DiscoverNewFeeds() {
  DiscoveryResult discovered =
      unmatched_.Induce(options_.analyzer.discovery, pool());
  return BuildNewFeedSuggestions(std::move(discovered.feeds), logger_);
}

std::vector<FalseNegativeReport> IncrementalAnalyzer::DetectFalseNegatives() {
  DiscoveryOptions grouping = options_.analyzer.discovery;
  grouping.min_support = 1;
  DiscoveryResult groups = unmatched_.Induce(grouping, pool());
  std::vector<AtomicFeed> all = std::move(groups.feeds);
  all.insert(all.end(), groups.outliers.begin(), groups.outliers.end());
  // One generalization pass over the (bounded) retained corpus serves
  // every group lookup this cycle.
  auto buckets = unmatched_.GeneralizedBuckets();
  auto collect = [&buckets](const AtomicFeed& group) {
    auto it = buckets.find(group.pattern);
    return it != buckets.end() ? it->second : std::vector<std::string>{};
  };
  return BuildFalseNegativeReports(all, collect, *registry_,
                                   options_.analyzer.fn_threshold, logger_);
}

std::vector<FalsePositiveReport> IncrementalAnalyzer::DetectFalsePositives(
    const FeedName& feed) {
  auto it = matched_.find(feed);
  if (it == matched_.end() || it->second.size() == 0) return {};
  DiscoveryOptions grouping = options_.analyzer.discovery;
  grouping.min_support = 1;
  DiscoveryResult groups = it->second.Induce(grouping, pool());
  std::vector<AtomicFeed> all = std::move(groups.feeds);
  all.insert(all.end(), groups.outliers.begin(), groups.outliers.end());
  return BuildFalsePositiveReports(feed, std::move(all),
                                   options_.analyzer.fp_max_support, logger_);
}

IncrementalAnalyzer::CycleResult IncrementalAnalyzer::RunCycle() {
  auto start = std::chrono::steady_clock::now();
  CycleResult result;
  result.false_negatives = DetectFalseNegatives();
  // New-feed discovery runs on unmatched files NOT explained as false
  // negatives of an existing feed — those are new subfeeds.
  std::set<std::string> explained;
  for (const auto& report : result.false_negatives) {
    for (const auto& f : report.files) explained.insert(f);
  }
  DiscoveryResult discovered =
      explained.empty()
          ? unmatched_.Induce(options_.analyzer.discovery, pool())
          : unmatched_.InduceExcluding(explained, options_.analyzer.discovery);
  result.new_feeds = BuildNewFeedSuggestions(std::move(discovered.feeds),
                                             logger_);
  for (const auto& [feed, corpus] : matched_) {
    auto reports = DetectFalsePositives(feed);
    for (auto& r : reports) result.false_positives.push_back(std::move(r));
  }
  PublishMetrics();
  if (cycle_hist_ != nullptr) {
    cycle_hist_->Record(std::chrono::duration_cast<std::chrono::microseconds>(
                            std::chrono::steady_clock::now() - start)
                            .count());
  }
  return result;
}

}  // namespace bistro

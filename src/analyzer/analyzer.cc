#include "analyzer/analyzer.h"

#include <algorithm>

#include "common/strings.h"

namespace bistro {

std::vector<NewFeedSuggestion> BuildNewFeedSuggestions(
    std::vector<AtomicFeed> feeds, Logger* logger) {
  std::vector<NewFeedSuggestion> out;
  int counter = 0;
  for (AtomicFeed& feed : feeds) {
    NewFeedSuggestion suggestion;
    suggestion.suggested_spec.name =
        StrFormat("DISCOVERED.FEED%03d", counter++);
    suggestion.suggested_spec.pattern = feed.pattern;
    suggestion.feed = std::move(feed);
    logger->Info("analyzer",
                 StrFormat("discovered feed candidate: %s (%zu files, "
                           "period %s)",
                           suggestion.feed.pattern.c_str(),
                           suggestion.feed.file_count,
                           FormatDuration(suggestion.feed.est_period).c_str()));
    out.push_back(std::move(suggestion));
  }
  return out;
}

std::vector<FalseNegativeReport> BuildFalseNegativeReports(
    const std::vector<AtomicFeed>& groups,
    const std::function<std::vector<std::string>(const AtomicFeed&)>&
        collect_files,
    const FeedRegistry& registry, double fn_threshold, Logger* logger) {
  std::vector<FalseNegativeReport> out;
  for (const AtomicFeed& group : groups) {
    // Find the most similar registered feed (across every pattern a feed
    // carries, primary and alternates).
    const RegisteredFeed* best = nullptr;
    std::string best_pattern;
    double best_sim = 0;
    for (const RegisteredFeed* feed : registry.feeds()) {
      double sim = PatternSimilarity(group.pattern, feed->spec.pattern);
      std::string pattern = feed->spec.pattern;
      for (const auto& alt : feed->spec.alt_patterns) {
        double alt_sim = PatternSimilarity(group.pattern, alt);
        if (alt_sim > sim) {
          sim = alt_sim;
          pattern = alt;
        }
      }
      if (sim > best_sim) {
        best_sim = sim;
        best = feed;
        best_pattern = pattern;
      }
    }
    if (best == nullptr || best_sim < fn_threshold) continue;
    FalseNegativeReport report;
    report.feed = best->spec.name;
    report.feed_pattern = best_pattern;
    report.generalized = group.pattern;
    report.similarity = best_sim;
    report.suggested_spec = best->spec;
    report.suggested_spec.alt_patterns.push_back(group.pattern);
    report.files = collect_files(group);
    logger->Warning(
        "analyzer",
        StrFormat("possible false negatives for feed %s: %zu files match "
                  "generalized pattern %s (similarity %.2f)",
                  report.feed.c_str(), report.files.size(),
                  report.generalized.c_str(), best_sim));
    out.push_back(std::move(report));
  }
  std::sort(out.begin(), out.end(),
            [](const FalseNegativeReport& a, const FalseNegativeReport& b) {
              return a.similarity > b.similarity;
            });
  return out;
}

std::vector<FalsePositiveReport> BuildFalsePositiveReports(
    const FeedName& feed, std::vector<AtomicFeed> all, double fp_max_support,
    Logger* logger) {
  std::vector<FalsePositiveReport> out;
  if (all.size() < 2) return out;  // homogeneous feed: nothing suspicious
  std::sort(all.begin(), all.end(),
            [](const AtomicFeed& a, const AtomicFeed& b) {
              return a.file_count > b.file_count;
            });
  const std::string& dominant = all.front().pattern;
  for (size_t i = 1; i < all.size(); ++i) {
    if (all[i].support > fp_max_support) continue;
    FalsePositiveReport report;
    report.feed = feed;
    report.outlier = all[i];
    report.dominant_pattern = dominant;
    logger->Warning(
        "analyzer",
        StrFormat("possible false positives in feed %s: %zu files of shape "
                  "%s diverge from dominant %s",
                  feed.c_str(), report.outlier.file_count,
                  report.outlier.pattern.c_str(), dominant.c_str()));
    out.push_back(std::move(report));
  }
  return out;
}

FeedAnalyzer::FeedAnalyzer(const FeedRegistry* registry, Logger* logger,
                           Options options)
    : registry_(registry), logger_(logger), options_(options) {}

std::vector<NewFeedSuggestion> FeedAnalyzer::DiscoverNewFeeds(
    const std::vector<FileObservation>& unmatched) const {
  DiscoveryResult discovered = DiscoverFeeds(unmatched, options_.discovery);
  return BuildNewFeedSuggestions(std::move(discovered.feeds), logger_);
}

std::vector<FalseNegativeReport> FeedAnalyzer::DetectFalseNegatives(
    const std::vector<FileObservation>& unmatched) const {
  // Group unmatched files by generalized pattern first: one warning per
  // pattern, however many files exhibit it (§5.2).
  DiscoveryOptions grouping = options_.discovery;
  grouping.min_support = 1;
  DiscoveryResult groups = DiscoverFeeds(unmatched, grouping);
  std::vector<AtomicFeed> all = std::move(groups.feeds);
  all.insert(all.end(), groups.outliers.begin(), groups.outliers.end());
  auto collect = [&unmatched](const AtomicFeed& group) {
    std::vector<std::string> files;
    for (const auto& obs : unmatched) {
      if (GeneralizeName(obs.name) == group.pattern) {
        files.push_back(obs.name);
      }
    }
    return files;
  };
  return BuildFalseNegativeReports(all, collect, *registry_,
                                   options_.fn_threshold, logger_);
}

std::vector<FalsePositiveReport> FeedAnalyzer::DetectFalsePositives(
    const FeedName& feed,
    const std::vector<FileObservation>& matched) const {
  if (matched.empty()) return {};
  DiscoveryOptions grouping = options_.discovery;
  grouping.min_support = 1;
  DiscoveryResult groups = DiscoverFeeds(matched, grouping);
  std::vector<AtomicFeed> all = std::move(groups.feeds);
  all.insert(all.end(), groups.outliers.begin(), groups.outliers.end());
  return BuildFalsePositiveReports(feed, std::move(all),
                                   options_.fp_max_support, logger_);
}

}  // namespace bistro

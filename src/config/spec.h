#ifndef BISTRO_CONFIG_SPEC_H_
#define BISTRO_CONFIG_SPEC_H_

#include <optional>
#include <string>
#include <vector>

#include "core/types.h"
#include "pattern/normalizer.h"

namespace bistro {

/// Default tardiness bound: delivery deadline = arrival + tardiness.
constexpr Duration kDefaultTardiness = kMinute;

/// One data feed definition (paper §3.1 "Data Feeds").
///
/// Feeds live in a hierarchy expressed by their dotted full name
/// ("SNMP.CPU.POLLER1"); groups are name prefixes, so subscribing to
/// "SNMP.CPU" covers every feed beneath it.
struct FeedSpec {
  FeedName name;              // full dotted name
  std::string pattern;        // primary Bistro pattern for member filenames
  /// Alternative patterns also belonging to the feed. Real feeds change
  /// naming conventions over their lifetime (§2.1.3); rather than editing
  /// the primary pattern (and breaking old files), approved analyzer
  /// suggestions are appended here. The primary pattern's field layout
  /// drives normalization; alternates are classification-only.
  std::vector<std::string> alt_patterns;
  NormalizeSpec normalize;    // rename + compression policy
  Duration tardiness = kDefaultTardiness;  // delivery deadline bound

  bool operator==(const FeedSpec&) const = default;
};

/// How end-of-batch events are produced for a subscriber's trigger
/// (paper §2.3, §4.1).
struct BatchSpec {
  enum class Mode {
    kPerFile,      // trigger on every delivered file
    kCount,        // trigger after N files of one data interval
    kTime,         // trigger when a batch has spanned `timeout`
    kCountOrTime,  // whichever comes first (the paper's recommended combo)
    kPunctuation,  // trigger on source-provided end-of-batch markers
  };
  Mode mode = Mode::kPerFile;
  int count = 0;          // for kCount / kCountOrTime
  Duration timeout = 0;   // for kTime / kCountOrTime

  bool operator==(const BatchSpec&) const = default;
};

/// Subscriber notification hook (paper §3.1 "Notifications and triggers").
struct TriggerSpec {
  BatchSpec batch;
  std::string command;  // program to invoke; empty = no trigger
  bool remote = false;  // run on subscriber host (true) or locally (false)

  bool operator==(const TriggerSpec&) const = default;
};

/// How feed files reach a subscriber.
enum class DeliveryMethod {
  kPush,    // Bistro transmits file contents
  kNotify,  // hybrid push-pull: Bistro pushes a notification; the
            // subscriber retrieves the data at a time of its choosing
};

/// One subscriber definition (paper §3.1 "Subscribers").
struct SubscriberSpec {
  SubscriberName name;
  std::string host;         // transport endpoint identifier
  std::string destination;  // directory on the subscriber side
  std::vector<FeedName> feeds;  // feeds or feed groups of interest
  DeliveryMethod method = DeliveryMethod::kPush;
  TriggerSpec trigger;
  Duration window = 0;  // history this subscriber wants on subscribe (0 = all)

  bool operator==(const SubscriberSpec&) const = default;
};

/// A subscriber *group* (the config's `group <name> { feeds; members; }`
/// form): many endpoints that share ONE delivery identity. The server
/// schedules, dedupes and receipts the group as a single subscriber —
/// one delivery cursor, one pending entry, one receipt row per file —
/// and a local group relay re-fans each accepted file out to the
/// members. Distinguished from a feed-hierarchy `group { feed ...; }`
/// block by its attributes (members/feeds vs. nested feed definitions).
struct GroupSpec {
  SubscriberName name;          // the shared delivery identity
  std::vector<FeedName> feeds;  // feeds or feed groups of interest
  std::vector<std::string> members;  // member endpoint identifiers
  Duration window = 0;          // history wanted on subscribe (0 = all)
  /// Consecutive member failures before the relay stops holding the
  /// group ack for that member and moves it to straggler catch-up.
  std::optional<int> straggler_after;

  bool operator==(const GroupSpec&) const = default;
};

/// A dissemination relay (the config's `relay <name> { ... }` block):
/// one upstream send re-fans out to `children` endpoints, composing
/// with federation (children may be peers) so one upstream transmission
/// serves a downstream tree. The relay acks upstream only after the
/// message is durably spooled; forwarding then proceeds asynchronously
/// with retries, and downstream receipt/FileId dedupe absorbs replays.
struct RelaySpec {
  std::string name;                   // also the relay's endpoint name
  std::vector<std::string> children;  // downstream endpoint identifiers
  std::string spool;                  // durable spool directory
  std::optional<Duration> retry_backoff;
  std::optional<int> max_attempts;

  bool operator==(const RelaySpec&) const = default;
};

/// Receipt-store tuning (the config's `receipts { ... }` block). Every
/// field is optional, mirroring the other tuning blocks.
struct ReceiptTuningSpec {
  /// Hash-sharded WAL segments: receipt rows partition across this many
  /// independent KvStores, each group commit fsyncing only the shards it
  /// touched. 1 (default) = the seed's single-store layout, bit-compatible.
  std::optional<int> shards;

  bool empty() const { return !shards; }

  bool operator==(const ReceiptTuningSpec&) const = default;
};

/// The config's `classifier { ... }` block: which filename-lookup
/// strategy the server uses (see FeedClassifier::IndexMode).
struct ClassifierTuningSpec {
  /// "automaton" (default: the whole feed table compiled into one fused
  /// DFA), "trie" (literal-prefix index) or "linear" (scan every feed).
  std::optional<std::string> mode;

  bool empty() const { return !mode; }

  bool operator==(const ClassifierTuningSpec&) const = default;
};

/// Server-wide delivery/retry tuning (the config's `delivery { ... }`
/// block). Every field is optional: unset fields keep the engine's
/// compiled-in defaults, so configs written before a knob existed keep
/// their exact behavior.
struct DeliveryTuningSpec {
  std::optional<Duration> retry_backoff_min;  // key: retry_backoff[_min]
  std::optional<Duration> retry_backoff_max;
  std::optional<double> retry_multiplier;
  std::optional<bool> retry_jitter;           // on/off
  std::optional<int> max_attempts;
  std::optional<int> offline_after;
  std::optional<Duration> probe_interval;
  /// Pipelined per-subscriber send window (0 = unlimited, 1 = lockstep).
  std::optional<int> window;
  /// Coalesce small same-subscriber push files into one frame up to this
  /// many payload bytes (0 = off).
  std::optional<int64_t> coalesce_bytes;
  /// Staged-payload LRU cache byte budget (0 = no retention).
  std::optional<int64_t> cache_bytes;
  /// Delivery receipts per group commit (1 = immediate per-ack writes).
  std::optional<int> receipt_group;
  /// Max time a buffered delivery receipt waits for its group to fill.
  std::optional<Duration> receipt_flush_interval;

  bool empty() const {
    return !retry_backoff_min && !retry_backoff_max && !retry_multiplier &&
           !retry_jitter && !max_attempts && !offline_after &&
           !probe_interval && !window && !coalesce_bytes && !cache_bytes &&
           !receipt_group && !receipt_flush_interval;
  }

  bool operator==(const DeliveryTuningSpec&) const = default;
};

/// Ingest-pipeline tuning (the config's `ingest { ... }` block). Every
/// field is optional, mirroring DeliveryTuningSpec: unset keys keep the
/// pipeline's compiled-in defaults.
struct IngestTuningSpec {
  /// Normalize/compress worker threads. 0 = synchronous inline ingest
  /// (the deterministic default used under simulation).
  std::optional<int> workers;
  /// Bound on files queued inside the pipeline before the overload
  /// policy engages.
  std::optional<int> queue_depth;
  /// Max arrival receipts committed per group (one fsync per group).
  std::optional<int> batch;
  /// "block", "shed_oldest" or "spill" (validated at parse time).
  std::optional<std::string> overload_policy;

  bool empty() const {
    return !workers && !queue_depth && !batch && !overload_policy;
  }

  bool operator==(const IngestTuningSpec&) const = default;
};

/// Feed-analyzer tuning (the config's `analyzer { ... }` block). Every
/// field is optional, mirroring the delivery/ingest blocks: unset keys
/// keep the daemon's compiled-in defaults.
struct AnalyzerTuningSpec {
  /// Worker threads folding/inducing corpus shards. 0 = inline
  /// deterministic analysis (results are identical either way).
  std::optional<int> workers;
  /// Retention budget: unmatched names kept for analysis, oldest shed
  /// first once exceeded (bounds analyzer memory, not correctness).
  std::optional<int> max_corpus;
  /// Stem-keyed corpus shards (the unit of fold/induce parallelism).
  std::optional<int> shards;
  /// Analysis cycle cadence.
  std::optional<Duration> cycle_interval;

  bool empty() const {
    return !workers && !max_corpus && !shards && !cycle_interval;
  }

  bool operator==(const AnalyzerTuningSpec&) const = default;
};

/// This server's network identity and socket-transport tuning (the
/// config's `server { ... }` block). Every tuning field is optional,
/// mirroring the other tuning blocks: unset keys keep the transport's
/// compiled-in defaults.
struct ServerNetSpec {
  /// "ip:port" to accept Bistro-to-Bistro connections on; empty = this
  /// server does not listen (outbound-only or purely local).
  std::string listen;
  /// Bound on a single inbound frame body (bytes).
  std::optional<int64_t> max_frame_bytes;
  /// Per-peer outbound queue cap (bytes) before sends fail with
  /// backpressure.
  std::optional<int64_t> outbound_queue_bytes;
  /// Reconnect backoff envelope (decorrelated jitter between them).
  std::optional<Duration> reconnect_backoff_min;
  std::optional<Duration> reconnect_backoff_max;
  /// Unacked sends older than this fail and drop the connection.
  std::optional<Duration> ack_timeout;

  bool empty() const {
    return listen.empty() && !max_frame_bytes && !outbound_queue_bytes &&
           !reconnect_backoff_min && !reconnect_backoff_max && !ack_timeout;
  }

  bool operator==(const ServerNetSpec&) const = default;
};

/// A downstream Bistro server fed over the socket transport (the
/// config's `peer <name> { ... }` block) — paper Fig. 1's
/// server-feeds-server topology. A peer is registered as a push
/// subscriber whose endpoint is a TCP address; exactly-once handoff
/// rides the ordinary receipt machinery.
struct PeerSpec {
  std::string name;     // also the subscriber name upstream
  std::string address;  // "ip:port" of the peer's `server { listen; }`
  /// Feeds routed to this peer. Empty = route by sharding (below), or
  /// every feed when no sharding is set either.
  std::vector<FeedName> feeds;
  /// `shard <index> of <count>;` — feeds hash-partitioned by name across
  /// a fleet of count peers; this peer takes partition `index`.
  /// shard_count == 0 means sharding is off.
  int shard_index = -1;
  int shard_count = 0;
  /// `replicas <n>;` — with sharding, this peer carries its own shard
  /// plus the next n-1 shards (wrapping), so every feed reaches n peers
  /// and any single peer's data survives on a neighbor. 1 = plain
  /// sharding. Requires sharding; must not exceed shard_count.
  int replicas = 1;
  /// `failover <peer>;` — when this peer's health reaches `down`, its
  /// feeds re-route to the named peer until this one recovers. Must name
  /// another configured peer.
  std::string failover;
  /// Health state machine tuning (unset keys keep compiled-in defaults):
  /// keepalive-probe cadence while unhealthy, consecutive failures before
  /// healthy -> suspect, and before suspect -> down (circuit opens).
  std::optional<Duration> probe_interval;
  std::optional<int> suspect_after;
  std::optional<int> down_after;
  /// Backfill window on subscribe (0 = full history), as for subscribers.
  Duration window = 0;

  bool operator==(const PeerSpec&) const = default;
};

/// One arm of a plan's duplicate-delivery split: `split 50 to exp_a,
/// 50 to exp_b;`. Percentages must sum to 100 across a plan's arms.
struct PlanSplitArm {
  int percent = 0;        // share of files routed to this arm, in [1, 100]
  std::string to;         // subscriber/group/peer receiving the arm

  bool operator==(const PlanSplitArm&) const = default;
};

/// Default refill interval for plan quotas (`quota N per <interval>`).
constexpr Duration kDefaultQuotaInterval = kMinute;

/// A declarative ingestion plan (the config's `plan <feed-or-group> { }`
/// block): per-feed behavior for the staged pipeline, delivery routing
/// and scheduling — INGESTBASE-style "ingestion as a compiled plan"
/// layered over the paper's feed declarations. Every field is optional;
/// an unset field keeps the pipeline's default behavior for that stage.
/// Plans are validated against the registry and lowered by the plan
/// compiler (src/ingest/plan.h); a selector may be an exact feed name or
/// a group prefix, and the most specific plan wins per attribute.
struct PlanSpec {
  FeedName feed;                       // exact feed name or group prefix
  /// Restrict delivery of the plan's feeds to these subscriber/group/
  /// peer identities. Empty = every subscriber of the feed (default).
  std::vector<std::string> route;
  /// Duplicate-delivery A/B split: each file is routed to exactly one
  /// arm (deterministic name hash); arms keep independent receipts.
  std::vector<PlanSplitArm> split;
  /// Required redundancy across federated peers; validated against the
  /// configured peer fleet (replicate > peers is rejected).
  std::optional<int> replicate;
  /// Percent of files admitted into the feed (deterministic name-hash
  /// sampling); the rest never classify into it. In (0, 100].
  std::optional<double> sample;
  /// Format transform overriding the feed's normalize policy:
  /// "none", "rle", "lz" (compress) or "decompress".
  std::optional<std::string> transform;
  /// Admission quota: at most `quota_files` files (and/or `quota_bytes`
  /// bytes) per `quota_interval`, enforced as a token bucket at admit.
  /// Over-quota files stay in the landing zone for a later rescan.
  std::optional<int64_t> quota_files;
  std::optional<int64_t> quota_bytes;
  Duration quota_interval = kDefaultQuotaInterval;
  /// SLO class driving delivery priority: "interactive" (deadline pulled
  /// in 4x), "standard" (feed tardiness as-is) or "bulk" (relaxed 4x).
  std::optional<std::string> slo;
  /// Enrichment hooks run in the normalize/worker stage, in order:
  /// "provenance" (header with feed + arrival) and/or "checksum"
  /// (payload CRC32 header).
  std::vector<std::string> enrich;

  bool operator==(const PlanSpec&) const = default;
};

/// A parsed Bistro configuration.
struct ServerConfig {
  std::vector<FeedSpec> feeds;
  std::vector<SubscriberSpec> subscribers;
  std::vector<GroupSpec> groups;
  std::vector<RelaySpec> relays;
  DeliveryTuningSpec delivery;
  IngestTuningSpec ingest;
  AnalyzerTuningSpec analyzer;
  ReceiptTuningSpec receipts;
  ClassifierTuningSpec classifier;
  ServerNetSpec server;
  std::vector<PeerSpec> peers;
  std::vector<PlanSpec> plans;

  bool operator==(const ServerConfig&) const = default;
};

}  // namespace bistro

#endif  // BISTRO_CONFIG_SPEC_H_

#include "config/parser.h"

#include <cctype>
#include <set>

#include "common/strings.h"
#include "pattern/pattern.h"

namespace bistro {

namespace {

// ------------------------------------------------------------------ Lexer

enum class TokKind { kIdent, kString, kNumberUnit, kPunct, kEof };

struct Token {
  TokKind kind = TokKind::kEof;
  std::string text;
  int line = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
      } else if (c == '"') {
        BISTRO_ASSIGN_OR_RETURN(Token t, LexString());
        out.push_back(std::move(t));
      } else if (IsAlpha(c) || c == '_') {
        out.push_back(LexIdent());
      } else if (IsDigit(c) || c == '-') {
        out.push_back(LexNumberUnit());
      } else if (c == '{' || c == '}' || c == ';' || c == ',') {
        out.push_back(Token{TokKind::kPunct, std::string(1, c), line_});
        ++pos_;
      } else {
        return Status::InvalidArgument(
            StrFormat("config line %d: unexpected character '%c'", line_, c));
      }
    }
    out.push_back(Token{TokKind::kEof, "", line_});
    return out;
  }

 private:
  Result<Token> LexString() {
    int start_line = line_;
    ++pos_;  // opening quote
    std::string text;
    while (pos_ < src_.size() && src_[pos_] != '"') {
      char c = src_[pos_];
      if (c == '\\' && pos_ + 1 < src_.size()) {
        ++pos_;
        c = src_[pos_];
        if (c != '"' && c != '\\') {
          return Status::InvalidArgument(
              StrFormat("config line %d: bad escape \\%c", line_, c));
        }
      } else if (c == '\n') {
        return Status::InvalidArgument(
            StrFormat("config line %d: unterminated string", start_line));
      }
      text += c;
      ++pos_;
    }
    if (pos_ >= src_.size()) {
      return Status::InvalidArgument(
          StrFormat("config line %d: unterminated string", start_line));
    }
    ++pos_;  // closing quote
    return Token{TokKind::kString, std::move(text), start_line};
  }

  Token LexIdent() {
    size_t start = pos_;
    while (pos_ < src_.size() &&
           (IsAlnum(src_[pos_]) || src_[pos_] == '_' || src_[pos_] == '.')) {
      ++pos_;
    }
    return Token{TokKind::kIdent, std::string(src_.substr(start, pos_ - start)),
                 line_};
  }

  Token LexNumberUnit() {
    size_t start = pos_;
    if (src_[pos_] == '-') ++pos_;
    while (pos_ < src_.size() && (IsDigit(src_[pos_]) || src_[pos_] == '.')) ++pos_;
    while (pos_ < src_.size() && IsAlpha(src_[pos_])) ++pos_;  // unit suffix
    return Token{TokKind::kNumberUnit,
                 std::string(src_.substr(start, pos_ - start)), line_};
  }

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
};

// ----------------------------------------------------------------- Parser

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ServerConfig> Run() {
    ServerConfig config;
    while (!AtEof()) {
      const Token& t = Peek();
      if (t.kind == TokKind::kIdent && t.text == "group") {
        BISTRO_RETURN_IF_ERROR(ParseGroup("", &config));
      } else if (t.kind == TokKind::kIdent && t.text == "feed") {
        BISTRO_RETURN_IF_ERROR(ParseFeed("", &config));
      } else if (t.kind == TokKind::kIdent && t.text == "subscriber") {
        BISTRO_RETURN_IF_ERROR(ParseSubscriber(&config));
      } else if (t.kind == TokKind::kIdent && t.text == "delivery") {
        BISTRO_RETURN_IF_ERROR(ParseDelivery(&config));
      } else if (t.kind == TokKind::kIdent && t.text == "ingest") {
        BISTRO_RETURN_IF_ERROR(ParseIngest(&config));
      } else if (t.kind == TokKind::kIdent && t.text == "analyzer") {
        BISTRO_RETURN_IF_ERROR(ParseAnalyzer(&config));
      } else if (t.kind == TokKind::kIdent && t.text == "server") {
        BISTRO_RETURN_IF_ERROR(ParseServer(&config));
      } else if (t.kind == TokKind::kIdent && t.text == "peer") {
        BISTRO_RETURN_IF_ERROR(ParsePeer(&config));
      } else if (t.kind == TokKind::kIdent && t.text == "relay") {
        BISTRO_RETURN_IF_ERROR(ParseRelay(&config));
      } else if (t.kind == TokKind::kIdent && t.text == "receipts") {
        BISTRO_RETURN_IF_ERROR(ParseReceipts(&config));
      } else if (t.kind == TokKind::kIdent && t.text == "classifier") {
        BISTRO_RETURN_IF_ERROR(ParseClassifier(&config));
      } else if (t.kind == TokKind::kIdent && t.text == "plan") {
        BISTRO_RETURN_IF_ERROR(ParsePlan(&config));
      } else {
        return Err(
            "expected 'group', 'feed', 'subscriber', 'delivery', 'ingest', "
            "'analyzer', 'receipts', 'classifier', 'server', 'peer', "
            "'relay' or 'plan'");
      }
    }
    // Cross-peer checks need the full peer list.
    for (const PeerSpec& peer : config.peers) {
      if (peer.failover.empty()) continue;
      bool found = false;
      for (const PeerSpec& other : config.peers) {
        if (other.name == peer.failover) found = true;
      }
      if (!found) {
        return Status::InvalidArgument("peer " + peer.name +
                                       " names unknown failover peer '" +
                                       peer.failover + "'");
      }
    }
    // Group/subscriber/relay identities share one delivery namespace.
    for (const GroupSpec& group : config.groups) {
      for (const SubscriberSpec& sub : config.subscribers) {
        if (sub.name == group.name) {
          return Status::InvalidArgument(
              "group " + group.name + " is also a subscriber name");
        }
      }
      for (const GroupSpec& other : config.groups) {
        if (&other != &group && other.name == group.name) {
          return Status::InvalidArgument("duplicate group: " + group.name);
        }
      }
    }
    for (const RelaySpec& relay : config.relays) {
      for (const RelaySpec& other : config.relays) {
        if (&other != &relay && other.name == relay.name) {
          return Status::InvalidArgument("duplicate relay: " + relay.name);
        }
      }
    }
    // One plan per selector; deeper cross-checks (unknown feeds, route
    // targets, replication vs the peer fleet) run in the plan compiler,
    // which sees the resolved registry.
    for (const PlanSpec& plan : config.plans) {
      for (const PlanSpec& other : config.plans) {
        if (&other != &plan && other.feed == plan.feed) {
          return Status::InvalidArgument("duplicate plan for " + plan.feed);
        }
      }
    }
    return config;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Next() { return tokens_[pos_++]; }
  bool AtEof() const { return Peek().kind == TokKind::kEof; }

  Status Err(const std::string& what) const {
    return Status::InvalidArgument(
        StrFormat("config line %d: %s (got '%s')", Peek().line, what.c_str(),
                  Peek().text.c_str()));
  }

  Status Expect(TokKind kind, std::string_view text, const char* what) {
    const Token& t = Peek();
    if (t.kind != kind || (!text.empty() && t.text != text)) {
      return Err(std::string("expected ") + what);
    }
    ++pos_;
    return Status::OK();
  }

  Result<std::string> ExpectIdent() {
    if (Peek().kind != TokKind::kIdent) return Err("expected identifier");
    return Next().text;
  }

  Result<std::string> ExpectString() {
    if (Peek().kind != TokKind::kString) return Err("expected quoted string");
    return Next().text;
  }

  Result<Duration> ExpectDuration() {
    if (Peek().kind != TokKind::kNumberUnit) return Err("expected duration");
    auto d = ParseDuration(Peek().text);
    if (!d) return Err("bad duration");
    ++pos_;
    return *d;
  }

  Result<int64_t> ExpectInt() {
    if (Peek().kind != TokKind::kNumberUnit) return Err("expected integer");
    auto v = ParseInt(Peek().text);
    if (!v) return Err("bad integer");
    ++pos_;
    return *v;
  }

  Result<double> ExpectDouble() {
    if (Peek().kind != TokKind::kNumberUnit) return Err("expected number");
    auto v = ParseDouble(Peek().text);
    if (!v) return Err("bad number");
    ++pos_;
    return *v;
  }

  Result<bool> ExpectOnOff() {
    if (Peek().kind != TokKind::kIdent) return Err("expected 'on' or 'off'");
    const std::string& v = Peek().text;
    if (v != "on" && v != "off") return Err("expected 'on' or 'off'");
    ++pos_;
    return v == "on";
  }

  static bool IsGroupAttr(const std::string& word) {
    return word == "feeds" || word == "members" || word == "window" ||
           word == "straggler_after";
  }

  Status ParseGroup(const std::string& prefix, ServerConfig* config) {
    BISTRO_RETURN_IF_ERROR(Expect(TokKind::kIdent, "group", "'group'"));
    BISTRO_ASSIGN_OR_RETURN(std::string name, ExpectIdent());
    std::string full = prefix.empty() ? name : prefix + "." + name;
    BISTRO_RETURN_IF_ERROR(Expect(TokKind::kPunct, "{", "'{'"));
    // The keyword is overloaded: a block of nested `feed`/`group`
    // definitions is a feed-hierarchy prefix; a block of subscriber-ish
    // attributes (`feeds`, `members`, ...) is a *subscriber group* — one
    // shared delivery identity fanned out to many member endpoints.
    if (Peek().kind == TokKind::kIdent && IsGroupAttr(Peek().text)) {
      if (!prefix.empty()) {
        return Err("subscriber group '" + name +
                   "' cannot be nested inside feed group '" + prefix + "'");
      }
      return ParseSubscriberGroup(std::move(name), config);
    }
    while (!(Peek().kind == TokKind::kPunct && Peek().text == "}")) {
      if (AtEof()) return Err("unterminated group");
      const Token& t = Peek();
      if (t.kind == TokKind::kIdent && t.text == "group") {
        BISTRO_RETURN_IF_ERROR(ParseGroup(full, config));
      } else if (t.kind == TokKind::kIdent && t.text == "feed") {
        BISTRO_RETURN_IF_ERROR(ParseFeed(full, config));
      } else {
        return Err("expected 'group' or 'feed' inside group");
      }
    }
    ++pos_;  // consume '}'
    return Status::OK();
  }

  /// Body of a subscriber group; the opening `group <name> {` and the
  /// first attribute peek already happened in ParseGroup.
  Status ParseSubscriberGroup(std::string name, ServerConfig* config) {
    GroupSpec group;
    group.name = std::move(name);
    while (!(Peek().kind == TokKind::kPunct && Peek().text == "}")) {
      if (AtEof()) return Err("unterminated group");
      BISTRO_ASSIGN_OR_RETURN(std::string attr, ExpectIdent());
      if (attr == "feeds") {
        BISTRO_ASSIGN_OR_RETURN(std::string first, ExpectIdent());
        group.feeds.push_back(std::move(first));
        while (Peek().kind == TokKind::kPunct && Peek().text == ",") {
          ++pos_;
          BISTRO_ASSIGN_OR_RETURN(std::string next, ExpectIdent());
          group.feeds.push_back(std::move(next));
        }
      } else if (attr == "members") {
        BISTRO_ASSIGN_OR_RETURN(std::string first, ExpectIdent());
        group.members.push_back(std::move(first));
        while (Peek().kind == TokKind::kPunct && Peek().text == ",") {
          ++pos_;
          BISTRO_ASSIGN_OR_RETURN(std::string next, ExpectIdent());
          group.members.push_back(std::move(next));
        }
      } else if (attr == "window") {
        BISTRO_ASSIGN_OR_RETURN(group.window, ExpectDuration());
      } else if (attr == "straggler_after") {
        BISTRO_ASSIGN_OR_RETURN(int64_t n, ExpectInt());
        if (n < 1) return Err("straggler_after must be at least 1");
        group.straggler_after = static_cast<int>(n);
      } else {
        return Err("unknown group attribute '" + attr + "'");
      }
      BISTRO_RETURN_IF_ERROR(Expect(TokKind::kPunct, ";", "';'"));
    }
    ++pos_;  // consume '}'
    if (group.feeds.empty()) {
      return Status::InvalidArgument("group " + group.name +
                                     " subscribes to no feeds");
    }
    if (group.members.empty()) {
      return Status::InvalidArgument("group " + group.name + " has no members");
    }
    std::set<std::string> seen;
    for (const std::string& member : group.members) {
      if (!seen.insert(member).second) {
        return Status::InvalidArgument("group " + group.name +
                                       " lists member '" + member + "' twice");
      }
    }
    config->groups.push_back(std::move(group));
    return Status::OK();
  }

  Status ParseRelay(ServerConfig* config) {
    BISTRO_RETURN_IF_ERROR(Expect(TokKind::kIdent, "relay", "'relay'"));
    RelaySpec relay;
    BISTRO_ASSIGN_OR_RETURN(relay.name, ExpectIdent());
    BISTRO_RETURN_IF_ERROR(Expect(TokKind::kPunct, "{", "'{'"));
    while (!(Peek().kind == TokKind::kPunct && Peek().text == "}")) {
      if (AtEof()) return Err("unterminated relay");
      BISTRO_ASSIGN_OR_RETURN(std::string attr, ExpectIdent());
      if (attr == "children") {
        BISTRO_ASSIGN_OR_RETURN(std::string first, ExpectIdent());
        relay.children.push_back(std::move(first));
        while (Peek().kind == TokKind::kPunct && Peek().text == ",") {
          ++pos_;
          BISTRO_ASSIGN_OR_RETURN(std::string next, ExpectIdent());
          relay.children.push_back(std::move(next));
        }
      } else if (attr == "spool") {
        BISTRO_ASSIGN_OR_RETURN(relay.spool, ExpectString());
      } else if (attr == "retry_backoff") {
        BISTRO_ASSIGN_OR_RETURN(Duration v, ExpectDuration());
        if (v <= 0) return Err("retry_backoff must be positive");
        relay.retry_backoff = v;
      } else if (attr == "max_attempts") {
        BISTRO_ASSIGN_OR_RETURN(int64_t n, ExpectInt());
        if (n < 1) return Err("max_attempts must be at least 1");
        relay.max_attempts = static_cast<int>(n);
      } else {
        return Err("unknown relay attribute '" + attr + "'");
      }
      BISTRO_RETURN_IF_ERROR(Expect(TokKind::kPunct, ";", "';'"));
    }
    ++pos_;  // consume '}'
    if (relay.children.empty()) {
      return Status::InvalidArgument("relay " + relay.name +
                                     " has no children");
    }
    config->relays.push_back(std::move(relay));
    return Status::OK();
  }

  Status ParseReceipts(ServerConfig* config) {
    BISTRO_RETURN_IF_ERROR(Expect(TokKind::kIdent, "receipts", "'receipts'"));
    ReceiptTuningSpec* r = &config->receipts;
    BISTRO_RETURN_IF_ERROR(Expect(TokKind::kPunct, "{", "'{'"));
    while (!(Peek().kind == TokKind::kPunct && Peek().text == "}")) {
      if (AtEof()) return Err("unterminated receipts block");
      BISTRO_ASSIGN_OR_RETURN(std::string attr, ExpectIdent());
      if (attr == "shards") {
        BISTRO_ASSIGN_OR_RETURN(int64_t v, ExpectInt());
        if (v <= 0 || v > 256) return Err("shards must be in [1, 256]");
        r->shards = static_cast<int>(v);
      } else {
        return Err("unknown receipts attribute '" + attr + "'");
      }
      BISTRO_RETURN_IF_ERROR(Expect(TokKind::kPunct, ";", "';'"));
    }
    ++pos_;  // consume '}'
    return Status::OK();
  }

  Status ParseClassifier(ServerConfig* config) {
    BISTRO_RETURN_IF_ERROR(
        Expect(TokKind::kIdent, "classifier", "'classifier'"));
    ClassifierTuningSpec* c = &config->classifier;
    BISTRO_RETURN_IF_ERROR(Expect(TokKind::kPunct, "{", "'{'"));
    while (!(Peek().kind == TokKind::kPunct && Peek().text == "}")) {
      if (AtEof()) return Err("unterminated classifier block");
      BISTRO_ASSIGN_OR_RETURN(std::string attr, ExpectIdent());
      if (attr == "mode") {
        BISTRO_ASSIGN_OR_RETURN(std::string v, ExpectIdent());
        if (v != "automaton" && v != "trie" && v != "linear") {
          return Err("classifier mode must be automaton, trie or linear");
        }
        c->mode = v;
      } else {
        return Err("unknown classifier attribute '" + attr + "'");
      }
      BISTRO_RETURN_IF_ERROR(Expect(TokKind::kPunct, ";", "';'"));
    }
    ++pos_;  // consume '}'
    return Status::OK();
  }

  Status ParsePlan(ServerConfig* config) {
    BISTRO_RETURN_IF_ERROR(Expect(TokKind::kIdent, "plan", "'plan'"));
    PlanSpec plan;
    BISTRO_ASSIGN_OR_RETURN(plan.feed, ExpectIdent());
    BISTRO_RETURN_IF_ERROR(Expect(TokKind::kPunct, "{", "'{'"));
    bool has_attr = false;
    while (!(Peek().kind == TokKind::kPunct && Peek().text == "}")) {
      if (AtEof()) return Err("unterminated plan");
      BISTRO_ASSIGN_OR_RETURN(std::string attr, ExpectIdent());
      has_attr = true;
      if (attr == "route") {
        BISTRO_ASSIGN_OR_RETURN(std::string first, ExpectIdent());
        plan.route.push_back(std::move(first));
        while (Peek().kind == TokKind::kPunct && Peek().text == ",") {
          ++pos_;
          BISTRO_ASSIGN_OR_RETURN(std::string next, ExpectIdent());
          plan.route.push_back(std::move(next));
        }
      } else if (attr == "split") {
        for (;;) {
          PlanSplitArm arm;
          BISTRO_ASSIGN_OR_RETURN(int64_t pct, ExpectInt());
          if (pct < 1 || pct > 100) {
            return Err("split percent must be in [1, 100]");
          }
          arm.percent = static_cast<int>(pct);
          BISTRO_RETURN_IF_ERROR(Expect(TokKind::kIdent, "to", "'to'"));
          BISTRO_ASSIGN_OR_RETURN(arm.to, ExpectIdent());
          plan.split.push_back(std::move(arm));
          if (Peek().kind == TokKind::kPunct && Peek().text == ",") {
            ++pos_;
            continue;
          }
          break;
        }
        int total = 0;
        for (const PlanSplitArm& arm : plan.split) total += arm.percent;
        if (total != 100) return Err("split percents must sum to 100");
        std::set<std::string> arms;
        for (const PlanSplitArm& arm : plan.split) {
          if (!arms.insert(arm.to).second) {
            return Err("split lists arm '" + arm.to + "' twice");
          }
        }
      } else if (attr == "replicate") {
        BISTRO_ASSIGN_OR_RETURN(int64_t n, ExpectInt());
        if (n < 1) return Err("replicate must be at least 1");
        plan.replicate = static_cast<int>(n);
      } else if (attr == "sample") {
        BISTRO_ASSIGN_OR_RETURN(double v, ExpectDouble());
        if (v <= 0 || v > 100) return Err("sample must be in (0, 100]");
        plan.sample = v;
      } else if (attr == "transform") {
        BISTRO_ASSIGN_OR_RETURN(std::string v, ExpectIdent());
        if (v != "none" && v != "rle" && v != "lz" && v != "decompress") {
          return Err("transform must be none, rle, lz or decompress");
        }
        plan.transform = std::move(v);
      } else if (attr == "quota" || attr == "quota_bytes") {
        BISTRO_ASSIGN_OR_RETURN(int64_t n, ExpectInt());
        if (n < 1) return Err(attr + " must be at least 1");
        if (attr == "quota") {
          plan.quota_files = n;
        } else {
          plan.quota_bytes = n;
        }
        if (Peek().kind == TokKind::kIdent && Peek().text == "per") {
          ++pos_;
          BISTRO_ASSIGN_OR_RETURN(Duration v, ExpectDuration());
          if (v <= 0) return Err("quota interval must be positive");
          plan.quota_interval = v;
        }
      } else if (attr == "slo") {
        BISTRO_ASSIGN_OR_RETURN(std::string v, ExpectIdent());
        if (v != "interactive" && v != "standard" && v != "bulk") {
          return Err("slo must be interactive, standard or bulk");
        }
        plan.slo = std::move(v);
      } else if (attr == "enrich") {
        for (;;) {
          BISTRO_ASSIGN_OR_RETURN(std::string op, ExpectIdent());
          if (op != "provenance" && op != "checksum") {
            return Err("enrich op must be provenance or checksum");
          }
          plan.enrich.push_back(std::move(op));
          if (Peek().kind == TokKind::kPunct && Peek().text == ",") {
            ++pos_;
            continue;
          }
          break;
        }
      } else {
        return Err("unknown plan attribute '" + attr + "'");
      }
      BISTRO_RETURN_IF_ERROR(Expect(TokKind::kPunct, ";", "';'"));
    }
    ++pos_;  // consume '}'
    if (!has_attr) {
      return Status::InvalidArgument("plan " + plan.feed +
                                     " declares nothing");
    }
    config->plans.push_back(std::move(plan));
    return Status::OK();
  }

  Status ParseFeed(const std::string& prefix, ServerConfig* config) {
    BISTRO_RETURN_IF_ERROR(Expect(TokKind::kIdent, "feed", "'feed'"));
    BISTRO_ASSIGN_OR_RETURN(std::string name, ExpectIdent());
    FeedSpec feed;
    feed.name = prefix.empty() ? name : prefix + "." + name;
    BISTRO_RETURN_IF_ERROR(Expect(TokKind::kPunct, "{", "'{'"));
    while (!(Peek().kind == TokKind::kPunct && Peek().text == "}")) {
      if (AtEof()) return Err("unterminated feed");
      BISTRO_ASSIGN_OR_RETURN(std::string attr, ExpectIdent());
      if (attr == "pattern") {
        BISTRO_ASSIGN_OR_RETURN(std::string pattern, ExpectString());
        // Validate early: load-time errors beat classification-time errors.
        BISTRO_RETURN_IF_ERROR(Pattern::Compile(pattern).status());
        // First clause is the primary pattern; repeats are alternates
        // (typically analyzer-suggested revisions that were approved).
        if (feed.pattern.empty()) {
          feed.pattern = std::move(pattern);
        } else {
          feed.alt_patterns.push_back(std::move(pattern));
        }
      } else if (attr == "normalize") {
        BISTRO_ASSIGN_OR_RETURN(feed.normalize.rename_template, ExpectString());
        BISTRO_RETURN_IF_ERROR(
            Pattern::Compile(feed.normalize.rename_template).status());
      } else if (attr == "compress") {
        BISTRO_ASSIGN_OR_RETURN(std::string codec, ExpectIdent());
        BISTRO_ASSIGN_OR_RETURN(feed.normalize.codec, CodecKindFromName(codec));
        feed.normalize.action = CompressionAction::kCompress;
      } else if (attr == "decompress") {
        feed.normalize.action = CompressionAction::kDecompress;
      } else if (attr == "tardiness") {
        BISTRO_ASSIGN_OR_RETURN(feed.tardiness, ExpectDuration());
      } else {
        return Err("unknown feed attribute '" + attr + "'");
      }
      BISTRO_RETURN_IF_ERROR(Expect(TokKind::kPunct, ";", "';'"));
    }
    ++pos_;  // consume '}'
    if (feed.pattern.empty()) {
      return Status::InvalidArgument("feed " + feed.name + " has no pattern");
    }
    config->feeds.push_back(std::move(feed));
    return Status::OK();
  }

  Status ParseTrigger(TriggerSpec* trigger) {
    BISTRO_ASSIGN_OR_RETURN(std::string kind, ExpectIdent());
    if (kind == "file") {
      trigger->batch.mode = BatchSpec::Mode::kPerFile;
    } else if (kind == "punctuation") {
      trigger->batch.mode = BatchSpec::Mode::kPunctuation;
    } else if (kind == "batch") {
      bool has_count = false, has_timeout = false;
      while (Peek().kind == TokKind::kIdent &&
             (Peek().text == "count" || Peek().text == "timeout")) {
        std::string opt = Next().text;
        if (opt == "count") {
          BISTRO_ASSIGN_OR_RETURN(int64_t n, ExpectInt());
          if (n <= 0) return Err("batch count must be positive");
          trigger->batch.count = static_cast<int>(n);
          has_count = true;
        } else {
          BISTRO_ASSIGN_OR_RETURN(trigger->batch.timeout, ExpectDuration());
          has_timeout = true;
        }
      }
      if (has_count && has_timeout) {
        trigger->batch.mode = BatchSpec::Mode::kCountOrTime;
      } else if (has_count) {
        trigger->batch.mode = BatchSpec::Mode::kCount;
      } else if (has_timeout) {
        trigger->batch.mode = BatchSpec::Mode::kTime;
      } else {
        return Err("batch trigger needs count and/or timeout");
      }
    } else {
      return Err("unknown trigger kind '" + kind + "'");
    }
    while (Peek().kind == TokKind::kIdent &&
           (Peek().text == "exec" || Peek().text == "remote")) {
      std::string opt = Next().text;
      if (opt == "exec") {
        BISTRO_ASSIGN_OR_RETURN(trigger->command, ExpectString());
      } else {
        trigger->remote = true;
      }
    }
    return Status::OK();
  }

  Status ParseDelivery(ServerConfig* config) {
    BISTRO_RETURN_IF_ERROR(Expect(TokKind::kIdent, "delivery", "'delivery'"));
    DeliveryTuningSpec* d = &config->delivery;
    BISTRO_RETURN_IF_ERROR(Expect(TokKind::kPunct, "{", "'{'"));
    while (!(Peek().kind == TokKind::kPunct && Peek().text == "}")) {
      if (AtEof()) return Err("unterminated delivery block");
      BISTRO_ASSIGN_OR_RETURN(std::string attr, ExpectIdent());
      if (attr == "retry_backoff" || attr == "retry_backoff_min") {
        // "retry_backoff" predates the exponential schedule; it sets the
        // same floor the new name does.
        BISTRO_ASSIGN_OR_RETURN(Duration v, ExpectDuration());
        d->retry_backoff_min = v;
      } else if (attr == "retry_backoff_max") {
        BISTRO_ASSIGN_OR_RETURN(Duration v, ExpectDuration());
        d->retry_backoff_max = v;
      } else if (attr == "retry_multiplier") {
        BISTRO_ASSIGN_OR_RETURN(double v, ExpectDouble());
        if (v < 1.0) return Err("retry_multiplier must be >= 1");
        d->retry_multiplier = v;
      } else if (attr == "retry_jitter") {
        BISTRO_ASSIGN_OR_RETURN(bool v, ExpectOnOff());
        d->retry_jitter = v;
      } else if (attr == "max_attempts") {
        BISTRO_ASSIGN_OR_RETURN(int64_t v, ExpectInt());
        if (v <= 0) return Err("max_attempts must be positive");
        d->max_attempts = static_cast<int>(v);
      } else if (attr == "offline_after") {
        BISTRO_ASSIGN_OR_RETURN(int64_t v, ExpectInt());
        if (v <= 0) return Err("offline_after must be positive");
        d->offline_after = static_cast<int>(v);
      } else if (attr == "probe_interval") {
        BISTRO_ASSIGN_OR_RETURN(Duration v, ExpectDuration());
        d->probe_interval = v;
      } else if (attr == "window") {
        BISTRO_ASSIGN_OR_RETURN(int64_t v, ExpectInt());
        if (v < 0) return Err("window must be >= 0");
        d->window = static_cast<int>(v);
      } else if (attr == "coalesce_bytes") {
        BISTRO_ASSIGN_OR_RETURN(int64_t v, ExpectInt());
        if (v < 0) return Err("coalesce_bytes must be >= 0");
        d->coalesce_bytes = v;
      } else if (attr == "cache_bytes") {
        BISTRO_ASSIGN_OR_RETURN(int64_t v, ExpectInt());
        if (v < 0) return Err("cache_bytes must be >= 0");
        d->cache_bytes = v;
      } else if (attr == "receipt_group") {
        BISTRO_ASSIGN_OR_RETURN(int64_t v, ExpectInt());
        if (v <= 0) return Err("receipt_group must be positive");
        d->receipt_group = static_cast<int>(v);
      } else if (attr == "receipt_flush_interval") {
        BISTRO_ASSIGN_OR_RETURN(Duration v, ExpectDuration());
        d->receipt_flush_interval = v;
      } else {
        return Err("unknown delivery attribute '" + attr + "'");
      }
      BISTRO_RETURN_IF_ERROR(Expect(TokKind::kPunct, ";", "';'"));
    }
    ++pos_;  // consume '}'
    return Status::OK();
  }

  Status ParseIngest(ServerConfig* config) {
    BISTRO_RETURN_IF_ERROR(Expect(TokKind::kIdent, "ingest", "'ingest'"));
    IngestTuningSpec* g = &config->ingest;
    BISTRO_RETURN_IF_ERROR(Expect(TokKind::kPunct, "{", "'{'"));
    while (!(Peek().kind == TokKind::kPunct && Peek().text == "}")) {
      if (AtEof()) return Err("unterminated ingest block");
      BISTRO_ASSIGN_OR_RETURN(std::string attr, ExpectIdent());
      if (attr == "workers") {
        BISTRO_ASSIGN_OR_RETURN(int64_t v, ExpectInt());
        if (v < 0) return Err("workers must be >= 0");
        g->workers = static_cast<int>(v);
      } else if (attr == "queue_depth") {
        BISTRO_ASSIGN_OR_RETURN(int64_t v, ExpectInt());
        if (v <= 0) return Err("queue_depth must be positive");
        g->queue_depth = static_cast<int>(v);
      } else if (attr == "batch") {
        BISTRO_ASSIGN_OR_RETURN(int64_t v, ExpectInt());
        if (v <= 0) return Err("batch must be positive");
        g->batch = static_cast<int>(v);
      } else if (attr == "overload_policy") {
        BISTRO_ASSIGN_OR_RETURN(std::string v, ExpectIdent());
        if (v != "block" && v != "shed_oldest" && v != "spill") {
          return Err("overload_policy must be block, shed_oldest or spill");
        }
        g->overload_policy = std::move(v);
      } else {
        return Err("unknown ingest attribute '" + attr + "'");
      }
      BISTRO_RETURN_IF_ERROR(Expect(TokKind::kPunct, ";", "';'"));
    }
    ++pos_;  // consume '}'
    return Status::OK();
  }

  Status ParseAnalyzer(ServerConfig* config) {
    BISTRO_RETURN_IF_ERROR(Expect(TokKind::kIdent, "analyzer", "'analyzer'"));
    AnalyzerTuningSpec* a = &config->analyzer;
    BISTRO_RETURN_IF_ERROR(Expect(TokKind::kPunct, "{", "'{'"));
    while (!(Peek().kind == TokKind::kPunct && Peek().text == "}")) {
      if (AtEof()) return Err("unterminated analyzer block");
      BISTRO_ASSIGN_OR_RETURN(std::string attr, ExpectIdent());
      if (attr == "workers") {
        BISTRO_ASSIGN_OR_RETURN(int64_t v, ExpectInt());
        if (v < 0) return Err("workers must be >= 0");
        a->workers = static_cast<int>(v);
      } else if (attr == "max_corpus") {
        BISTRO_ASSIGN_OR_RETURN(int64_t v, ExpectInt());
        if (v <= 0) return Err("max_corpus must be positive");
        a->max_corpus = static_cast<int>(v);
      } else if (attr == "shards") {
        BISTRO_ASSIGN_OR_RETURN(int64_t v, ExpectInt());
        if (v <= 0) return Err("shards must be positive");
        a->shards = static_cast<int>(v);
      } else if (attr == "cycle_interval") {
        BISTRO_ASSIGN_OR_RETURN(Duration v, ExpectDuration());
        if (v <= 0) return Err("cycle_interval must be positive");
        a->cycle_interval = v;
      } else {
        return Err("unknown analyzer attribute '" + attr + "'");
      }
      BISTRO_RETURN_IF_ERROR(Expect(TokKind::kPunct, ";", "';'"));
    }
    ++pos_;  // consume '}'
    return Status::OK();
  }

  Status ParseServer(ServerConfig* config) {
    BISTRO_RETURN_IF_ERROR(Expect(TokKind::kIdent, "server", "'server'"));
    ServerNetSpec* s = &config->server;
    BISTRO_RETURN_IF_ERROR(Expect(TokKind::kPunct, "{", "'{'"));
    while (!(Peek().kind == TokKind::kPunct && Peek().text == "}")) {
      if (AtEof()) return Err("unterminated server block");
      BISTRO_ASSIGN_OR_RETURN(std::string attr, ExpectIdent());
      if (attr == "listen") {
        BISTRO_ASSIGN_OR_RETURN(s->listen, ExpectString());
      } else if (attr == "max_frame_bytes") {
        BISTRO_ASSIGN_OR_RETURN(int64_t v, ExpectInt());
        if (v <= 0) return Err("max_frame_bytes must be positive");
        s->max_frame_bytes = v;
      } else if (attr == "outbound_queue_bytes") {
        BISTRO_ASSIGN_OR_RETURN(int64_t v, ExpectInt());
        if (v <= 0) return Err("outbound_queue_bytes must be positive");
        s->outbound_queue_bytes = v;
      } else if (attr == "reconnect_backoff_min") {
        BISTRO_ASSIGN_OR_RETURN(Duration v, ExpectDuration());
        if (v <= 0) return Err("reconnect_backoff_min must be positive");
        s->reconnect_backoff_min = v;
      } else if (attr == "reconnect_backoff_max") {
        BISTRO_ASSIGN_OR_RETURN(Duration v, ExpectDuration());
        if (v <= 0) return Err("reconnect_backoff_max must be positive");
        s->reconnect_backoff_max = v;
      } else if (attr == "ack_timeout") {
        BISTRO_ASSIGN_OR_RETURN(Duration v, ExpectDuration());
        if (v <= 0) return Err("ack_timeout must be positive");
        s->ack_timeout = v;
      } else {
        return Err("unknown server attribute '" + attr + "'");
      }
      BISTRO_RETURN_IF_ERROR(Expect(TokKind::kPunct, ";", "';'"));
    }
    ++pos_;  // consume '}'
    return Status::OK();
  }

  Status ParsePeer(ServerConfig* config) {
    BISTRO_RETURN_IF_ERROR(Expect(TokKind::kIdent, "peer", "'peer'"));
    PeerSpec peer;
    BISTRO_ASSIGN_OR_RETURN(peer.name, ExpectIdent());
    BISTRO_RETURN_IF_ERROR(Expect(TokKind::kPunct, "{", "'{'"));
    while (!(Peek().kind == TokKind::kPunct && Peek().text == "}")) {
      if (AtEof()) return Err("unterminated peer");
      BISTRO_ASSIGN_OR_RETURN(std::string attr, ExpectIdent());
      if (attr == "address") {
        BISTRO_ASSIGN_OR_RETURN(peer.address, ExpectString());
      } else if (attr == "feeds") {
        BISTRO_ASSIGN_OR_RETURN(std::string first, ExpectIdent());
        peer.feeds.push_back(std::move(first));
        while (Peek().kind == TokKind::kPunct && Peek().text == ",") {
          ++pos_;
          BISTRO_ASSIGN_OR_RETURN(std::string next, ExpectIdent());
          peer.feeds.push_back(std::move(next));
        }
      } else if (attr == "shard") {
        BISTRO_ASSIGN_OR_RETURN(int64_t index, ExpectInt());
        BISTRO_RETURN_IF_ERROR(Expect(TokKind::kIdent, "of", "'of'"));
        BISTRO_ASSIGN_OR_RETURN(int64_t count, ExpectInt());
        if (count <= 0) return Err("shard count must be positive");
        if (index < 0 || index >= count) {
          return Err("shard index must be in [0, count)");
        }
        peer.shard_index = static_cast<int>(index);
        peer.shard_count = static_cast<int>(count);
      } else if (attr == "window") {
        BISTRO_ASSIGN_OR_RETURN(peer.window, ExpectDuration());
      } else if (attr == "replicas") {
        BISTRO_ASSIGN_OR_RETURN(int64_t n, ExpectInt());
        if (n < 1) return Err("replicas must be at least 1");
        peer.replicas = static_cast<int>(n);
      } else if (attr == "failover") {
        BISTRO_ASSIGN_OR_RETURN(peer.failover, ExpectIdent());
      } else if (attr == "probe_interval") {
        BISTRO_ASSIGN_OR_RETURN(Duration v, ExpectDuration());
        if (v <= 0) return Err("probe_interval must be positive");
        peer.probe_interval = v;
      } else if (attr == "suspect_after") {
        BISTRO_ASSIGN_OR_RETURN(int64_t n, ExpectInt());
        if (n < 1) return Err("suspect_after must be at least 1");
        peer.suspect_after = static_cast<int>(n);
      } else if (attr == "down_after") {
        BISTRO_ASSIGN_OR_RETURN(int64_t n, ExpectInt());
        if (n < 1) return Err("down_after must be at least 1");
        peer.down_after = static_cast<int>(n);
      } else {
        return Err("unknown peer attribute '" + attr + "'");
      }
      BISTRO_RETURN_IF_ERROR(Expect(TokKind::kPunct, ";", "';'"));
    }
    ++pos_;  // consume '}'
    if (peer.address.empty()) {
      return Status::InvalidArgument("peer " + peer.name + " has no address");
    }
    if (!peer.feeds.empty() && peer.shard_count > 0) {
      return Status::InvalidArgument(
          "peer " + peer.name + " sets both explicit feeds and sharding");
    }
    if (peer.replicas > 1 && peer.shard_count == 0) {
      return Status::InvalidArgument(
          "peer " + peer.name + " sets replicas without sharding");
    }
    if (peer.shard_count > 0 && peer.replicas > peer.shard_count) {
      return Status::InvalidArgument(
          "peer " + peer.name + " sets replicas above its shard count");
    }
    if (peer.failover == peer.name) {
      return Status::InvalidArgument(
          "peer " + peer.name + " names itself as failover");
    }
    if (peer.suspect_after && peer.down_after &&
        *peer.down_after < *peer.suspect_after) {
      return Status::InvalidArgument(
          "peer " + peer.name + " sets down_after below suspect_after");
    }
    config->peers.push_back(std::move(peer));
    return Status::OK();
  }

  Status ParseSubscriber(ServerConfig* config) {
    BISTRO_RETURN_IF_ERROR(
        Expect(TokKind::kIdent, "subscriber", "'subscriber'"));
    SubscriberSpec sub;
    BISTRO_ASSIGN_OR_RETURN(sub.name, ExpectIdent());
    BISTRO_RETURN_IF_ERROR(Expect(TokKind::kPunct, "{", "'{'"));
    while (!(Peek().kind == TokKind::kPunct && Peek().text == "}")) {
      if (AtEof()) return Err("unterminated subscriber");
      BISTRO_ASSIGN_OR_RETURN(std::string attr, ExpectIdent());
      if (attr == "host") {
        BISTRO_ASSIGN_OR_RETURN(sub.host, ExpectString());
      } else if (attr == "destination") {
        BISTRO_ASSIGN_OR_RETURN(sub.destination, ExpectString());
      } else if (attr == "feeds") {
        BISTRO_ASSIGN_OR_RETURN(std::string first, ExpectIdent());
        sub.feeds.push_back(std::move(first));
        while (Peek().kind == TokKind::kPunct && Peek().text == ",") {
          ++pos_;
          BISTRO_ASSIGN_OR_RETURN(std::string next, ExpectIdent());
          sub.feeds.push_back(std::move(next));
        }
      } else if (attr == "method") {
        BISTRO_ASSIGN_OR_RETURN(std::string m, ExpectIdent());
        if (m == "push") {
          sub.method = DeliveryMethod::kPush;
        } else if (m == "notify") {
          sub.method = DeliveryMethod::kNotify;
        } else {
          return Err("unknown delivery method '" + m + "'");
        }
      } else if (attr == "window") {
        BISTRO_ASSIGN_OR_RETURN(sub.window, ExpectDuration());
      } else if (attr == "trigger") {
        BISTRO_RETURN_IF_ERROR(ParseTrigger(&sub.trigger));
      } else {
        return Err("unknown subscriber attribute '" + attr + "'");
      }
      BISTRO_RETURN_IF_ERROR(Expect(TokKind::kPunct, ";", "';'"));
    }
    ++pos_;  // consume '}'
    if (sub.feeds.empty()) {
      return Status::InvalidArgument("subscriber " + sub.name +
                                     " subscribes to no feeds");
    }
    config->subscribers.push_back(std::move(sub));
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

// Emits a duration in the single-unit form the config lexer accepts
// (FormatDuration's human form like "1m30s" does not round-trip).
std::string DurationLiteral(Duration d) {
  if (d % kDay == 0 && d != 0) return StrFormat("%lldd", (long long)(d / kDay));
  if (d % kHour == 0 && d != 0) return StrFormat("%lldh", (long long)(d / kHour));
  if (d % kMinute == 0 && d != 0) {
    return StrFormat("%lldm", (long long)(d / kMinute));
  }
  if (d % kSecond == 0) return StrFormat("%llds", (long long)(d / kSecond));
  if (d % kMillisecond == 0) {
    return StrFormat("%lldms", (long long)(d / kMillisecond));
  }
  return StrFormat("%lldus", (long long)d);
}

std::string Quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Result<ServerConfig> ParseConfig(std::string_view text) {
  Lexer lexer(text);
  BISTRO_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Run());
  Parser parser(std::move(tokens));
  return parser.Run();
}

std::string FormatConfig(const ServerConfig& config) {
  std::string out;
  for (const auto& feed : config.feeds) {
    // Emit flat feeds with dotted names; groups are name prefixes, so the
    // flat form is semantically identical to the nested form.
    out += "feed " + feed.name + " {\n";
    out += "  pattern " + Quote(feed.pattern) + ";\n";
    for (const auto& alt : feed.alt_patterns) {
      out += "  pattern " + Quote(alt) + ";\n";
    }
    if (!feed.normalize.rename_template.empty()) {
      out += "  normalize " + Quote(feed.normalize.rename_template) + ";\n";
    }
    if (feed.normalize.action == CompressionAction::kCompress) {
      out += "  compress " + std::string(CodecKindName(feed.normalize.codec)) +
             ";\n";
    } else if (feed.normalize.action == CompressionAction::kDecompress) {
      out += "  decompress;\n";
    }
    if (feed.tardiness != kDefaultTardiness) {
      out += "  tardiness " + DurationLiteral(feed.tardiness) + ";\n";
    }
    out += "}\n";
  }
  for (const auto& sub : config.subscribers) {
    out += "subscriber " + sub.name + " {\n";
    if (!sub.host.empty()) out += "  host " + Quote(sub.host) + ";\n";
    if (!sub.destination.empty()) {
      out += "  destination " + Quote(sub.destination) + ";\n";
    }
    out += "  feeds " + Join(sub.feeds, ", ") + ";\n";
    out += std::string("  method ") +
           (sub.method == DeliveryMethod::kPush ? "push" : "notify") + ";\n";
    if (sub.window != 0) out += "  window " + DurationLiteral(sub.window) + ";\n";
    const TriggerSpec& t = sub.trigger;
    bool has_trigger = !t.command.empty() ||
                       t.batch.mode != BatchSpec::Mode::kPerFile;
    if (has_trigger) {
      out += "  trigger ";
      switch (t.batch.mode) {
        case BatchSpec::Mode::kPerFile:
          out += "file";
          break;
        case BatchSpec::Mode::kPunctuation:
          out += "punctuation";
          break;
        case BatchSpec::Mode::kCount:
          out += StrFormat("batch count %d", t.batch.count);
          break;
        case BatchSpec::Mode::kTime:
          out += "batch timeout " + DurationLiteral(t.batch.timeout);
          break;
        case BatchSpec::Mode::kCountOrTime:
          out += StrFormat("batch count %d timeout ", t.batch.count) +
                 DurationLiteral(t.batch.timeout);
          break;
      }
      if (!t.command.empty()) out += " exec " + Quote(t.command);
      if (t.remote) out += " remote";
      out += ";\n";
    }
    out += "}\n";
  }
  for (const GroupSpec& group : config.groups) {
    out += "group " + group.name + " {\n";
    out += "  feeds " + Join(group.feeds, ", ") + ";\n";
    out += "  members " + Join(group.members, ", ") + ";\n";
    if (group.window != 0) {
      out += "  window " + DurationLiteral(group.window) + ";\n";
    }
    if (group.straggler_after) {
      out += StrFormat("  straggler_after %d;\n", *group.straggler_after);
    }
    out += "}\n";
  }
  const DeliveryTuningSpec& d = config.delivery;
  if (!d.empty()) {
    out += "delivery {\n";
    if (d.retry_backoff_min) {
      out += "  retry_backoff_min " + DurationLiteral(*d.retry_backoff_min) +
             ";\n";
    }
    if (d.retry_backoff_max) {
      out += "  retry_backoff_max " + DurationLiteral(*d.retry_backoff_max) +
             ";\n";
    }
    if (d.retry_multiplier) {
      out += StrFormat("  retry_multiplier %g;\n", *d.retry_multiplier);
    }
    if (d.retry_jitter) {
      out += std::string("  retry_jitter ") + (*d.retry_jitter ? "on" : "off") +
             ";\n";
    }
    if (d.max_attempts) {
      out += StrFormat("  max_attempts %d;\n", *d.max_attempts);
    }
    if (d.offline_after) {
      out += StrFormat("  offline_after %d;\n", *d.offline_after);
    }
    if (d.probe_interval) {
      out += "  probe_interval " + DurationLiteral(*d.probe_interval) + ";\n";
    }
    if (d.window) out += StrFormat("  window %d;\n", *d.window);
    if (d.coalesce_bytes) {
      out += StrFormat("  coalesce_bytes %lld;\n",
                       (long long)*d.coalesce_bytes);
    }
    if (d.cache_bytes) {
      out += StrFormat("  cache_bytes %lld;\n", (long long)*d.cache_bytes);
    }
    if (d.receipt_group) {
      out += StrFormat("  receipt_group %d;\n", *d.receipt_group);
    }
    if (d.receipt_flush_interval) {
      out += "  receipt_flush_interval " +
             DurationLiteral(*d.receipt_flush_interval) + ";\n";
    }
    out += "}\n";
  }
  const IngestTuningSpec& g = config.ingest;
  if (!g.empty()) {
    out += "ingest {\n";
    if (g.workers) out += StrFormat("  workers %d;\n", *g.workers);
    if (g.queue_depth) out += StrFormat("  queue_depth %d;\n", *g.queue_depth);
    if (g.batch) out += StrFormat("  batch %d;\n", *g.batch);
    if (g.overload_policy) {
      out += "  overload_policy " + *g.overload_policy + ";\n";
    }
    out += "}\n";
  }
  const AnalyzerTuningSpec& a = config.analyzer;
  if (!a.empty()) {
    out += "analyzer {\n";
    if (a.workers) out += StrFormat("  workers %d;\n", *a.workers);
    if (a.max_corpus) out += StrFormat("  max_corpus %d;\n", *a.max_corpus);
    if (a.shards) out += StrFormat("  shards %d;\n", *a.shards);
    if (a.cycle_interval) {
      out += "  cycle_interval " + DurationLiteral(*a.cycle_interval) + ";\n";
    }
    out += "}\n";
  }
  const ReceiptTuningSpec& r = config.receipts;
  if (!r.empty()) {
    out += "receipts {\n";
    if (r.shards) out += StrFormat("  shards %d;\n", *r.shards);
    out += "}\n";
  }
  const ClassifierTuningSpec& cl = config.classifier;
  if (!cl.empty()) {
    out += "classifier {\n";
    if (cl.mode) out += "  mode " + *cl.mode + ";\n";
    out += "}\n";
  }
  for (const PlanSpec& plan : config.plans) {
    out += "plan " + plan.feed + " {\n";
    if (!plan.route.empty()) {
      out += "  route " + Join(plan.route, ", ") + ";\n";
    }
    if (!plan.split.empty()) {
      out += "  split ";
      for (size_t i = 0; i < plan.split.size(); ++i) {
        if (i > 0) out += ", ";
        out += StrFormat("%d to %s", plan.split[i].percent,
                         plan.split[i].to.c_str());
      }
      out += ";\n";
    }
    if (plan.replicate) out += StrFormat("  replicate %d;\n", *plan.replicate);
    if (plan.sample) out += StrFormat("  sample %g;\n", *plan.sample);
    if (plan.transform) out += "  transform " + *plan.transform + ";\n";
    if (plan.quota_files) {
      out += StrFormat("  quota %lld per ", (long long)*plan.quota_files) +
             DurationLiteral(plan.quota_interval) + ";\n";
    }
    if (plan.quota_bytes) {
      out +=
          StrFormat("  quota_bytes %lld per ", (long long)*plan.quota_bytes) +
          DurationLiteral(plan.quota_interval) + ";\n";
    }
    if (plan.slo) out += "  slo " + *plan.slo + ";\n";
    if (!plan.enrich.empty()) {
      out += "  enrich " + Join(plan.enrich, ", ") + ";\n";
    }
    out += "}\n";
  }
  const ServerNetSpec& srv = config.server;
  if (!srv.empty()) {
    out += "server {\n";
    if (!srv.listen.empty()) out += "  listen " + Quote(srv.listen) + ";\n";
    if (srv.max_frame_bytes) {
      out += StrFormat("  max_frame_bytes %lld;\n",
                       (long long)*srv.max_frame_bytes);
    }
    if (srv.outbound_queue_bytes) {
      out += StrFormat("  outbound_queue_bytes %lld;\n",
                       (long long)*srv.outbound_queue_bytes);
    }
    if (srv.reconnect_backoff_min) {
      out += "  reconnect_backoff_min " +
             DurationLiteral(*srv.reconnect_backoff_min) + ";\n";
    }
    if (srv.reconnect_backoff_max) {
      out += "  reconnect_backoff_max " +
             DurationLiteral(*srv.reconnect_backoff_max) + ";\n";
    }
    if (srv.ack_timeout) {
      out += "  ack_timeout " + DurationLiteral(*srv.ack_timeout) + ";\n";
    }
    out += "}\n";
  }
  for (const PeerSpec& peer : config.peers) {
    out += "peer " + peer.name + " {\n";
    out += "  address " + Quote(peer.address) + ";\n";
    if (!peer.feeds.empty()) out += "  feeds " + Join(peer.feeds, ", ") + ";\n";
    if (peer.shard_count > 0) {
      out += StrFormat("  shard %d of %d;\n", peer.shard_index,
                       peer.shard_count);
    }
    if (peer.replicas > 1) {
      out += StrFormat("  replicas %d;\n", peer.replicas);
    }
    if (!peer.failover.empty()) out += "  failover " + peer.failover + ";\n";
    if (peer.probe_interval) {
      out += "  probe_interval " + DurationLiteral(*peer.probe_interval) +
             ";\n";
    }
    if (peer.suspect_after) {
      out += StrFormat("  suspect_after %d;\n", *peer.suspect_after);
    }
    if (peer.down_after) {
      out += StrFormat("  down_after %d;\n", *peer.down_after);
    }
    if (peer.window != 0) {
      out += "  window " + DurationLiteral(peer.window) + ";\n";
    }
    out += "}\n";
  }
  for (const RelaySpec& relay : config.relays) {
    out += "relay " + relay.name + " {\n";
    out += "  children " + Join(relay.children, ", ") + ";\n";
    if (!relay.spool.empty()) out += "  spool " + Quote(relay.spool) + ";\n";
    if (relay.retry_backoff) {
      out += "  retry_backoff " + DurationLiteral(*relay.retry_backoff) + ";\n";
    }
    if (relay.max_attempts) {
      out += StrFormat("  max_attempts %d;\n", *relay.max_attempts);
    }
    out += "}\n";
  }
  return out;
}

}  // namespace bistro

#ifndef BISTRO_CONFIG_REGISTRY_H_
#define BISTRO_CONFIG_REGISTRY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "config/spec.h"
#include "pattern/normalizer.h"
#include "pattern/pattern.h"

namespace bistro {

/// One registered feed, with its compiled patterns and normalizer.
struct RegisteredFeed {
  FeedSpec spec;
  Pattern pattern;              // compiled primary pattern
  std::vector<Pattern> alts;    // compiled alternative patterns
  Normalizer normalizer;

  /// Matches `name` against the primary pattern, then the alternates.
  std::optional<MatchResult> Match(std::string_view name) const {
    if (auto m = pattern.Match(name)) return m;
    for (const Pattern& alt : alts) {
      if (auto m = alt.Match(name)) return m;
    }
    return std::nullopt;
  }
};

/// The server's view of a configuration: compiled feeds, subscriber
/// records, and hierarchy resolution ("SNMP.CPU" -> every feed under it).
///
/// Feed definitions can be revised at runtime (paper §4.2: "a feed
/// definition can be revised at any moment"); UpdateFeed replaces a spec
/// in place, and the delivery layer recomputes queues from receipts.
class FeedRegistry {
 public:
  /// Builds a registry from a parsed config. Rejects duplicate feed or
  /// subscriber names, subscriptions to unknown feeds/groups, and a feed
  /// name that is also used as a group prefix.
  static Result<std::unique_ptr<FeedRegistry>> Create(
      const ServerConfig& config);

  /// All registered feeds in name order.
  std::vector<const RegisteredFeed*> feeds() const;

  /// Looks up a feed by exact full name.
  const RegisteredFeed* FindFeed(const FeedName& name) const;

  /// Expands a feed-or-group name into the full names of every feed it
  /// covers ("SNMP.CPU" -> {"SNMP.CPU.POLLER1", ...}; an exact feed name
  /// expands to itself). Unknown names expand to the empty set.
  std::vector<FeedName> Expand(const FeedName& name_or_group) const;

  /// Expands a subscriber's interest set into concrete feed names.
  std::vector<FeedName> SubscribedFeeds(const SubscriberSpec& sub) const;

  /// All subscribers.
  const std::vector<SubscriberSpec>& subscribers() const { return subscribers_; }
  const SubscriberSpec* FindSubscriber(const SubscriberName& name) const;

  /// Subscribers whose interest set covers `feed`.
  ///
  /// This is a full scan over subscribers × interests — O(fanout) per
  /// call. Hot paths go through fanout::SubscriptionIndex instead; the
  /// scan counter below is the regression probe proving they do.
  std::vector<const SubscriberSpec*> SubscribersOf(const FeedName& feed) const;

  /// Number of SubscribersOf full scans ever performed. Delivery,
  /// backfill and refresh must leave this untouched once the
  /// subscription index is wired (asserted by fanout tests).
  uint64_t subscriber_scans() const { return subscriber_scans_; }

  /// Monotone mutation counter: bumped by every UpdateFeed /
  /// AddSubscriber / UpdateSubscriber. Derived structures (the
  /// subscription index) compare it to rebuild lazily instead of
  /// hooking every mutation site.
  uint64_t version() const { return version_; }

  /// Adds or replaces a feed definition (analyzer-approved revision).
  Status UpdateFeed(const FeedSpec& spec);

  /// Adds a subscriber at runtime (new subscribers can appear at any
  /// moment and expect history backfill, paper §4.2).
  Status AddSubscriber(const SubscriberSpec& spec);

  /// Replaces an existing subscriber's spec in place (failover re-routes
  /// a peer's feeds onto its replica and later restores them). The feed
  /// set may be empty — a subscriber of nothing receives nothing but
  /// keeps its receipts. NotFound when the name is unknown.
  Status UpdateSubscriber(const SubscriberSpec& spec);

 private:
  FeedRegistry() = default;

  std::map<FeedName, RegisteredFeed> feeds_;
  std::vector<SubscriberSpec> subscribers_;
  uint64_t version_ = 0;
  mutable uint64_t subscriber_scans_ = 0;
};

}  // namespace bistro

#endif  // BISTRO_CONFIG_REGISTRY_H_

#ifndef BISTRO_CONFIG_PARSER_H_
#define BISTRO_CONFIG_PARSER_H_

#include <string_view>

#include "config/spec.h"

namespace bistro {

/// Parses the Bistro configuration language (paper §3.1).
///
/// Grammar (informal):
///
///   config      := (group | feed | subscriber
///                   | delivery | ingest | analyzer)*
///   group       := "group" NAME "{" (group | feed)* "}"
///   feed        := "feed" NAME "{" feed_attr* "}"
///   feed_attr   := "pattern" STRING ";"
///                | "normalize" STRING ";"
///                | "compress" ("none"|"rle"|"lz") ";"
///                | "decompress" ";"
///                | "tardiness" DURATION ";"
///   subscriber  := "subscriber" NAME "{" sub_attr* "}"
///   sub_attr    := "host" STRING ";"
///                | "destination" STRING ";"
///                | "feeds" NAME ("," NAME)* ";"
///                | "method" ("push"|"notify") ";"
///                | "window" DURATION ";"
///                | "trigger" trigger_spec ";"
///   trigger_spec:= ("file" | "punctuation"
///                   | "batch" batch_opt+ ) ["exec" STRING] ["remote"]
///   batch_opt   := "count" INT | "timeout" DURATION
///   delivery    := "delivery" "{" (KEY VALUE ";")* "}"
///   ingest      := "ingest" "{" (KEY VALUE ";")* "}"
///   analyzer    := "analyzer" "{" (KEY VALUE ";")* "}"
///
/// The delivery/ingest/analyzer tuning blocks take flat KEY VALUE pairs;
/// every key is optional and unset keys keep compiled-in defaults (the
/// full key reference with defaults is docs/OPERATIONS.md).
///
/// NAME is dotted inside `feeds` lists ("SNMP.CPU"); `#` starts a
/// line comment; strings are double-quoted with \" and \\ escapes.
///
/// Feed patterns are compiled during parsing so configuration errors are
/// caught at load time, not at classification time.
Result<ServerConfig> ParseConfig(std::string_view text);

/// Serializes a config back to the configuration language (round-trips
/// through ParseConfig). Useful for emitting analyzer-suggested configs.
std::string FormatConfig(const ServerConfig& config);

}  // namespace bistro

#endif  // BISTRO_CONFIG_PARSER_H_

#include "config/registry.h"

#include <algorithm>
#include <set>

#include "common/strings.h"

namespace bistro {

namespace {
Result<RegisteredFeed> CompileFeed(const FeedSpec& spec) {
  BISTRO_ASSIGN_OR_RETURN(Pattern pattern, Pattern::Compile(spec.pattern));
  std::vector<Pattern> alts;
  for (const auto& alt : spec.alt_patterns) {
    BISTRO_ASSIGN_OR_RETURN(Pattern p, Pattern::Compile(alt));
    alts.push_back(std::move(p));
  }
  BISTRO_ASSIGN_OR_RETURN(Normalizer normalizer,
                          Normalizer::Create(spec.normalize));
  return RegisteredFeed{spec, std::move(pattern), std::move(alts),
                        std::move(normalizer)};
}

bool IsPrefixGroup(const FeedName& group, const FeedName& feed) {
  return feed.size() > group.size() && StartsWith(feed, group) &&
         feed[group.size()] == '.';
}
}  // namespace

Result<std::unique_ptr<FeedRegistry>> FeedRegistry::Create(
    const ServerConfig& config) {
  std::unique_ptr<FeedRegistry> registry(new FeedRegistry());
  for (const auto& spec : config.feeds) {
    if (registry->feeds_.count(spec.name) != 0) {
      return Status::InvalidArgument("duplicate feed: " + spec.name);
    }
    BISTRO_ASSIGN_OR_RETURN(RegisteredFeed feed, CompileFeed(spec));
    registry->feeds_.emplace(spec.name, std::move(feed));
  }
  // A feed name must not also denote a group (ambiguous expansion).
  for (const auto& [name, _] : registry->feeds_) {
    for (const auto& [other, __] : registry->feeds_) {
      if (IsPrefixGroup(name, other)) {
        return Status::InvalidArgument("feed '" + name +
                                       "' is also a group prefix of '" +
                                       other + "'");
      }
    }
  }
  std::set<SubscriberName> sub_names;
  for (const auto& sub : config.subscribers) {
    if (!sub_names.insert(sub.name).second) {
      return Status::InvalidArgument("duplicate subscriber: " + sub.name);
    }
    for (const auto& interest : sub.feeds) {
      if (registry->Expand(interest).empty()) {
        return Status::InvalidArgument("subscriber " + sub.name +
                                       " references unknown feed or group: " +
                                       interest);
      }
    }
    registry->subscribers_.push_back(sub);
  }
  return registry;
}

std::vector<const RegisteredFeed*> FeedRegistry::feeds() const {
  std::vector<const RegisteredFeed*> out;
  out.reserve(feeds_.size());
  for (const auto& [_, feed] : feeds_) out.push_back(&feed);
  return out;
}

const RegisteredFeed* FeedRegistry::FindFeed(const FeedName& name) const {
  auto it = feeds_.find(name);
  return it == feeds_.end() ? nullptr : &it->second;
}

std::vector<FeedName> FeedRegistry::Expand(const FeedName& name_or_group) const {
  std::vector<FeedName> out;
  auto it = feeds_.find(name_or_group);
  if (it != feeds_.end()) {
    out.push_back(name_or_group);
    return out;
  }
  std::string prefix = name_or_group + ".";
  for (auto fit = feeds_.lower_bound(prefix);
       fit != feeds_.end() && StartsWith(fit->first, prefix); ++fit) {
    out.push_back(fit->first);
  }
  return out;
}

std::vector<FeedName> FeedRegistry::SubscribedFeeds(
    const SubscriberSpec& sub) const {
  std::set<FeedName> expanded;
  for (const auto& interest : sub.feeds) {
    for (auto& feed : Expand(interest)) expanded.insert(std::move(feed));
  }
  return {expanded.begin(), expanded.end()};
}

const SubscriberSpec* FeedRegistry::FindSubscriber(
    const SubscriberName& name) const {
  for (const auto& sub : subscribers_) {
    if (sub.name == name) return &sub;
  }
  return nullptr;
}

std::vector<const SubscriberSpec*> FeedRegistry::SubscribersOf(
    const FeedName& feed) const {
  ++subscriber_scans_;
  std::vector<const SubscriberSpec*> out;
  for (const auto& sub : subscribers_) {
    for (const auto& interest : sub.feeds) {
      if (interest == feed || IsPrefixGroup(interest, feed)) {
        out.push_back(&sub);
        break;
      }
    }
  }
  return out;
}

Status FeedRegistry::UpdateFeed(const FeedSpec& spec) {
  BISTRO_ASSIGN_OR_RETURN(RegisteredFeed feed, CompileFeed(spec));
  feeds_.insert_or_assign(spec.name, std::move(feed));
  ++version_;
  return Status::OK();
}

Status FeedRegistry::AddSubscriber(const SubscriberSpec& spec) {
  if (FindSubscriber(spec.name) != nullptr) {
    return Status::AlreadyExists("subscriber: " + spec.name);
  }
  for (const auto& interest : spec.feeds) {
    if (Expand(interest).empty()) {
      return Status::InvalidArgument("unknown feed or group: " + interest);
    }
  }
  subscribers_.push_back(spec);
  ++version_;
  return Status::OK();
}

Status FeedRegistry::UpdateSubscriber(const SubscriberSpec& spec) {
  for (const auto& interest : spec.feeds) {
    if (Expand(interest).empty()) {
      return Status::InvalidArgument("unknown feed or group: " + interest);
    }
  }
  for (auto& sub : subscribers_) {
    if (sub.name == spec.name) {
      sub = spec;
      ++version_;
      return Status::OK();
    }
  }
  return Status::NotFound("subscriber: " + spec.name);
}

}  // namespace bistro

#ifndef BISTRO_OBS_TRACE_H_
#define BISTRO_OBS_TRACE_H_

#include <array>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/types.h"
#include "obs/metrics.h"

namespace bistro {

/// The pipeline stages a file passes through (paper §3 Fig. 2), in order.
/// The ingest pipeline stages its bytes *before* committing the arrival
/// receipt (stage write -> group commit -> scheduler handoff), so kReceipt
/// sits after kStage: a receipt must never point at bytes that do not
/// exist yet.
enum class PipelineStage {
  kLanding = 0,          // written into the landing zone
  kClassify,             // matched to its feeds
  kNormalize,            // renamed / compressed
  kStage,                // written into the staging area
  kReceipt,              // arrival receipt persisted (group commit)
  kSchedule,             // delivery jobs submitted to the scheduler
  kSend,                 // transport send started (per subscriber)
  kDeliveryReceipt,      // delivery receipt persisted (per subscriber)
  kTrigger,              // included in a closed trigger batch
};

inline constexpr size_t kNumPipelineStages = 9;

std::string_view PipelineStageName(PipelineStage stage);

/// One recorded stage transition.
struct StageMark {
  PipelineStage stage;
  TimePoint at = 0;
};

/// The lifecycle of one file through the pipeline.
struct FileTrace {
  FileId id = 0;
  std::string name;
  FeedName feed;  // primary feed
  std::vector<StageMark> marks;

  /// Landing time (first mark), 0 if empty.
  TimePoint start() const { return marks.empty() ? 0 : marks.front().at; }
};

/// Per-(feed, stage) latency aggregate.
struct StageRollup {
  uint64_t count = 0;
  Duration total = 0;
  Duration max = 0;

  Duration Mean() const {
    return count == 0 ? 0 : total / static_cast<Duration>(count);
  }
};

/// Records per-file lifecycle spans for every file the server ingests,
/// bounded to the most recent `capacity` files (older traces are evicted;
/// their rollup contributions remain).
///
/// Feeds three views:
///   - individual traces (operator drill-down: "where did file 123 stall?");
///   - per-feed, per-stage rollups (count / mean / max stage latency);
///   - registry histograms `bistro_pipeline_stage_<stage>_latency_us` and
///     `bistro_pipeline_e2e_latency_us` (landing -> delivery receipt).
///
/// Thread-safe, though the server only calls it from the event loop;
/// under SimClock the recorded spans are fully deterministic.
class FileTracer {
 public:
  struct Options {
    Options() {}
    /// Maximum retained traces (ring buffer, oldest evicted first).
    size_t capacity = 1024;
  };

  explicit FileTracer(MetricsRegistry* registry, Options options = Options());

  /// Starts a trace at its landing mark. Evicts the oldest trace at
  /// capacity.
  void Begin(FileId id, const std::string& name, const FeedName& feed,
             TimePoint landing_at);

  /// Appends a stage mark. The stage latency (at - previous mark) feeds
  /// the per-stage histogram and the per-feed rollup; kDeliveryReceipt
  /// additionally records the end-to-end (landing -> now) latency.
  /// Unknown (evicted or never-begun) ids are ignored.
  void Mark(FileId id, PipelineStage stage, TimePoint at);

  /// The trace for `id`, if still retained.
  std::optional<FileTrace> Trace(FileId id) const;

  /// Up to `n` most recent traces, newest first.
  std::vector<FileTrace> Recent(size_t n) const;

  /// Rollups for one feed, indexed by PipelineStage (kLanding unused).
  std::array<StageRollup, kNumPipelineStages> FeedRollup(
      const FeedName& feed) const;

  /// Feeds with any rollup data, sorted.
  std::vector<FeedName> RolledUpFeeds() const;

  size_t retained() const;

 private:
  MetricsRegistry* registry_;
  Options options_;
  Histogram* e2e_hist_;
  std::array<Histogram*, kNumPipelineStages> stage_hists_{};
  Counter* traces_started_;
  Counter* traces_evicted_;

  mutable std::mutex mu_;
  std::map<FileId, FileTrace> traces_;
  std::deque<FileId> order_;  // insertion order, for eviction
  std::map<FeedName, std::array<StageRollup, kNumPipelineStages>> rollups_;
};

}  // namespace bistro

#endif  // BISTRO_OBS_TRACE_H_

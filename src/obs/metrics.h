#ifndef BISTRO_OBS_METRICS_H_
#define BISTRO_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/time.h"

namespace bistro {

/// Monotonically increasing event count. Hot-path cheap: one relaxed
/// atomic add; safe from any thread.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time signed level (queue depths, stalled-feed counts).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Log-scale histogram of non-negative integer samples (microsecond
/// latencies, byte sizes). Bucket upper bounds grow geometrically from
/// `min_bound`; samples above the last bound land in an overflow bucket.
///
/// Recording is a couple of relaxed atomic adds, cheap enough for hot
/// paths. Quantiles are resolved to the upper bound of the containing
/// bucket, capped at the exact observed maximum — so a histogram whose
/// samples sit on bucket boundaries reports them exactly, and
/// Quantile(1.0) is always the true max. Deterministic: identical sample
/// sequences (e.g. under SimClock) produce identical quantiles.
class Histogram {
 public:
  struct Options {
    Options() {}
    /// Upper bound of the first bucket (samples <= min_bound, including 0).
    int64_t min_bound = 1;
    /// Geometric growth factor between consecutive bucket bounds.
    double growth = 2.0;
    /// Number of bounded buckets (an overflow bucket is always added).
    size_t num_buckets = 40;
  };

  explicit Histogram(Options options = Options());

  void Record(int64_t value);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  int64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Exact largest recorded sample (0 when empty).
  int64_t Max() const { return max_.load(std::memory_order_relaxed); }

  /// Value at quantile `q` in [0, 1]; 0 when empty. See class comment for
  /// resolution guarantees.
  int64_t Quantile(double q) const;

  /// Bounded-bucket upper bounds, ascending.
  const std::vector<int64_t>& bounds() const { return bounds_; }
  /// Count in bucket `i`; `i == bounds().size()` is the overflow bucket.
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::vector<int64_t> bounds_;
  /// bounds_.size() + 1 entries; the last is the overflow bucket.
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> max_{0};
};

/// Point-in-time copy of one registered metric, for exporters.
struct MetricSnapshot {
  enum class Type { kCounter, kGauge, kHistogram };

  std::string name;
  std::string help;
  Type type = Type::kCounter;

  uint64_t counter_value = 0;  // kCounter
  int64_t gauge_value = 0;     // kGauge

  // kHistogram:
  std::vector<int64_t> bounds;
  std::vector<uint64_t> buckets;  // bounds.size() + 1 (overflow last)
  uint64_t count = 0;
  int64_t sum = 0;
  int64_t max = 0;
  int64_t p50 = 0;
  int64_t p95 = 0;
  int64_t p99 = 0;
};

/// Process- or server-scoped registry of named metrics (paper §3.2:
/// "extensive logging to track the status of all the feeds, monitor
/// their progress").
///
/// Names follow `bistro_<subsystem>_<name>` (counters end in `_total`,
/// durations in `_us`). Get* registers on first use and returns the same
/// stable pointer for the same name afterwards, so independent components
/// (e.g. two WALs) can share one aggregate counter. Registration takes a
/// lock; the returned objects are lock-free to update.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name, const std::string& help);
  Gauge* GetGauge(const std::string& name, const std::string& help);
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          Histogram::Options options = Histogram::Options());

  /// Registers a callback run at the start of every Collect() — used to
  /// refresh gauges that mirror external state (queue depths etc.).
  /// Callbacks must guard against their captured objects being destroyed
  /// (weak_ptr token), as the registry may outlive them.
  void AddCollectHook(std::function<void()> hook);

  /// Snapshots every registered metric, sorted by name.
  std::vector<MetricSnapshot> Collect();

  /// Number of registered metrics.
  size_t size() const;

 private:
  struct Entry {
    MetricSnapshot::Type type;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> metrics_;
  std::vector<std::function<void()>> hooks_;
};

}  // namespace bistro

#endif  // BISTRO_OBS_METRICS_H_

#include "obs/trace.h"

#include <algorithm>

namespace bistro {

std::string_view PipelineStageName(PipelineStage stage) {
  switch (stage) {
    case PipelineStage::kLanding:
      return "landing";
    case PipelineStage::kClassify:
      return "classify";
    case PipelineStage::kReceipt:
      return "receipt";
    case PipelineStage::kNormalize:
      return "normalize";
    case PipelineStage::kStage:
      return "stage";
    case PipelineStage::kSchedule:
      return "schedule";
    case PipelineStage::kSend:
      return "send";
    case PipelineStage::kDeliveryReceipt:
      return "delivery_receipt";
    case PipelineStage::kTrigger:
      return "trigger";
  }
  return "unknown";
}

FileTracer::FileTracer(MetricsRegistry* registry, Options options)
    : registry_(registry), options_(options) {
  if (options_.capacity == 0) options_.capacity = 1;
  e2e_hist_ = registry_->GetHistogram(
      "bistro_pipeline_e2e_latency_us",
      "Landing to delivery-receipt latency per (file, subscriber)");
  for (size_t i = 0; i < kNumPipelineStages; ++i) {
    auto stage = static_cast<PipelineStage>(i);
    if (stage == PipelineStage::kLanding) continue;  // no span ends at landing
    stage_hists_[i] = registry_->GetHistogram(
        "bistro_pipeline_stage_" + std::string(PipelineStageName(stage)) +
            "_latency_us",
        "Time spent reaching the " + std::string(PipelineStageName(stage)) +
            " stage from the previous mark");
  }
  traces_started_ = registry_->GetCounter("bistro_trace_files_total",
                                          "File traces started");
  traces_evicted_ = registry_->GetCounter(
      "bistro_trace_evicted_total", "File traces evicted from the ring buffer");
}

void FileTracer::Begin(FileId id, const std::string& name, const FeedName& feed,
                       TimePoint landing_at) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = traces_.try_emplace(id);
  if (!inserted) return;  // duplicate Begin: keep the original
  FileTrace& trace = it->second;
  trace.id = id;
  trace.name = name;
  trace.feed = feed;
  trace.marks.push_back({PipelineStage::kLanding, landing_at});
  order_.push_back(id);
  traces_started_->Increment();
  while (order_.size() > options_.capacity) {
    traces_.erase(order_.front());
    order_.pop_front();
    traces_evicted_->Increment();
  }
}

void FileTracer::Mark(FileId id, PipelineStage stage, TimePoint at) {
  Duration span = 0;
  Duration e2e = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = traces_.find(id);
    if (it == traces_.end()) return;
    FileTrace& trace = it->second;
    TimePoint prev = trace.marks.empty() ? at : trace.marks.back().at;
    trace.marks.push_back({stage, at});
    span = std::max<Duration>(0, at - prev);
    if (stage == PipelineStage::kDeliveryReceipt) {
      e2e = std::max<Duration>(0, at - trace.start());
    }
    auto& agg = rollups_[trace.feed][static_cast<size_t>(stage)];
    agg.count++;
    agg.total += span;
    agg.max = std::max(agg.max, span);
  }
  if (Histogram* h = stage_hists_[static_cast<size_t>(stage)]) h->Record(span);
  if (e2e >= 0) e2e_hist_->Record(e2e);
}

std::optional<FileTrace> FileTracer::Trace(FileId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = traces_.find(id);
  if (it == traces_.end()) return std::nullopt;
  return it->second;
}

std::vector<FileTrace> FileTracer::Recent(size_t n) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FileTrace> out;
  out.reserve(std::min(n, order_.size()));
  for (auto it = order_.rbegin(); it != order_.rend() && out.size() < n; ++it) {
    auto found = traces_.find(*it);
    if (found != traces_.end()) out.push_back(found->second);
  }
  return out;
}

std::array<StageRollup, kNumPipelineStages> FileTracer::FeedRollup(
    const FeedName& feed) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = rollups_.find(feed);
  if (it == rollups_.end()) return {};
  return it->second;
}

std::vector<FeedName> FileTracer::RolledUpFeeds() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FeedName> out;
  out.reserve(rollups_.size());
  for (const auto& [feed, _] : rollups_) out.push_back(feed);
  return out;
}

size_t FileTracer::retained() const {
  std::lock_guard<std::mutex> lock(mu_);
  return traces_.size();
}

}  // namespace bistro

#ifndef BISTRO_OBS_EXPORT_H_
#define BISTRO_OBS_EXPORT_H_

#include <map>
#include <memory>
#include <string>

#include "common/status.h"
#include "obs/metrics.h"
#include "sim/event_loop.h"

namespace bistro {

/// Renders every registered metric in the Prometheus text exposition
/// format (counters, gauges, and histograms with cumulative `le` buckets,
/// `_sum` and `_count` series).
std::string ExportPrometheus(MetricsRegistry* registry);

/// Renders every registered metric as a JSON snapshot:
/// {"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
/// max, p50, p95, p99, buckets: [{le, count}...]}}}.
std::string ExportJson(MetricsRegistry* registry);

/// Parses Prometheus exposition text back into sample -> value, keyed by
/// the full sample name including labels (e.g. `m_bucket{le="8"}`).
/// Exists so exporter output can be verified mechanically (tests,
/// operator tooling); tolerates comments and blank lines.
Result<std::map<std::string, double>> ParsePrometheusText(
    std::string_view text);

/// Parses a JSON document into dotted-path -> value for every numeric
/// leaf (e.g. `histograms.bistro_x.count`; array elements use their
/// index). Strings and booleans are skipped. Minimal parser sufficient
/// for round-tripping ExportJson output.
Result<std::map<std::string, double>> ParseJsonNumbers(std::string_view text);

/// Cancellation token for a periodic scrape; dropping it stops future
/// scrapes (already-queued events become no-ops).
using ScrapeHandle = std::shared_ptr<void>;

/// Schedules a repeating scrape on the event loop: every `interval` the
/// registry is collected, rendered as Prometheus text, and handed to
/// `consume` (write to a file, serve over HTTP, append to a log...).
ScrapeHandle StartMetricsScrape(EventLoop* loop, MetricsRegistry* registry,
                                Duration interval,
                                std::function<void(const std::string&)> consume);

}  // namespace bistro

#endif  // BISTRO_OBS_EXPORT_H_

#include "obs/metrics.h"

#include <cassert>
#include <cmath>

namespace bistro {

Histogram::Histogram(Options options) {
  if (options.min_bound < 1) options.min_bound = 1;
  if (options.growth < 1.1) options.growth = 1.1;
  if (options.num_buckets == 0) options.num_buckets = 1;
  bounds_.reserve(options.num_buckets);
  double bound = static_cast<double>(options.min_bound);
  int64_t last = 0;
  for (size_t i = 0; i < options.num_buckets; ++i) {
    int64_t b = static_cast<int64_t>(std::llround(bound));
    if (b <= last) b = last + 1;  // keep bounds strictly increasing
    bounds_.push_back(b);
    last = b;
    bound *= options.growth;
  }
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
}

void Histogram::Record(int64_t value) {
  if (value < 0) value = 0;
  // Lower-bound search: first bucket whose upper bound >= value.
  size_t lo = 0, hi = bounds_.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (bounds_[mid] < value) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  buckets_[lo].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  int64_t prev = max_.load(std::memory_order_relaxed);
  while (value > prev &&
         !max_.compare_exchange_weak(prev, value, std::memory_order_relaxed)) {
  }
}

int64_t Histogram::Quantile(double q) const {
  uint64_t n = Count();
  if (n == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < bounds_.size(); ++i) {
    cumulative += BucketCount(i);
    if (cumulative >= rank) return std::min(bounds_[i], Max());
  }
  return Max();  // rank falls in the overflow bucket
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = metrics_[name];
  if (e.counter == nullptr) {
    assert(e.gauge == nullptr && e.histogram == nullptr &&
           "metric re-registered with a different type");
    e.type = MetricSnapshot::Type::kCounter;
    e.help = help;
    e.counter = std::make_unique<Counter>();
  }
  return e.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = metrics_[name];
  if (e.gauge == nullptr) {
    assert(e.counter == nullptr && e.histogram == nullptr &&
           "metric re-registered with a different type");
    e.type = MetricSnapshot::Type::kGauge;
    e.help = help;
    e.gauge = std::make_unique<Gauge>();
  }
  return e.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         Histogram::Options options) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = metrics_[name];
  if (e.histogram == nullptr) {
    assert(e.counter == nullptr && e.gauge == nullptr &&
           "metric re-registered with a different type");
    e.type = MetricSnapshot::Type::kHistogram;
    e.help = help;
    e.histogram = std::make_unique<Histogram>(options);
  }
  return e.histogram.get();
}

void MetricsRegistry::AddCollectHook(std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(mu_);
  hooks_.push_back(std::move(hook));
}

std::vector<MetricSnapshot> MetricsRegistry::Collect() {
  std::vector<std::function<void()>> hooks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    hooks = hooks_;
  }
  for (const auto& hook : hooks) hook();

  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSnapshot> out;
  out.reserve(metrics_.size());
  for (const auto& [name, e] : metrics_) {
    MetricSnapshot snap;
    snap.name = name;
    snap.help = e.help;
    snap.type = e.type;
    switch (e.type) {
      case MetricSnapshot::Type::kCounter:
        snap.counter_value = e.counter->value();
        break;
      case MetricSnapshot::Type::kGauge:
        snap.gauge_value = e.gauge->value();
        break;
      case MetricSnapshot::Type::kHistogram: {
        const Histogram& h = *e.histogram;
        snap.bounds = h.bounds();
        snap.buckets.reserve(snap.bounds.size() + 1);
        for (size_t i = 0; i <= snap.bounds.size(); ++i) {
          snap.buckets.push_back(h.BucketCount(i));
        }
        snap.count = h.Count();
        snap.sum = h.Sum();
        snap.max = h.Max();
        snap.p50 = h.Quantile(0.50);
        snap.p95 = h.Quantile(0.95);
        snap.p99 = h.Quantile(0.99);
        break;
      }
    }
    out.push_back(std::move(snap));
  }
  return out;
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_.size();
}

}  // namespace bistro

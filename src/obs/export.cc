#include "obs/export.h"

#include <cctype>

#include "common/strings.h"

namespace bistro {

namespace {

std::string_view TypeName(MetricSnapshot::Type type) {
  switch (type) {
    case MetricSnapshot::Type::kCounter:
      return "counter";
    case MetricSnapshot::Type::kGauge:
      return "gauge";
    case MetricSnapshot::Type::kHistogram:
      return "histogram";
  }
  return "untyped";
}

/// Escapes a HELP string per the exposition format.
std::string EscapeHelp(std::string_view help) {
  std::string out;
  out.reserve(help.size());
  for (char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string ExportPrometheus(MetricsRegistry* registry) {
  std::string out;
  for (const MetricSnapshot& m : registry->Collect()) {
    out += "# HELP " + m.name + " " + EscapeHelp(m.help) + "\n";
    out += "# TYPE " + m.name + " " + std::string(TypeName(m.type)) + "\n";
    switch (m.type) {
      case MetricSnapshot::Type::kCounter:
        out += StrFormat("%s %llu\n", m.name.c_str(),
                         (unsigned long long)m.counter_value);
        break;
      case MetricSnapshot::Type::kGauge:
        out += StrFormat("%s %lld\n", m.name.c_str(), (long long)m.gauge_value);
        break;
      case MetricSnapshot::Type::kHistogram: {
        uint64_t cumulative = 0;
        for (size_t i = 0; i < m.bounds.size(); ++i) {
          cumulative += m.buckets[i];
          out += StrFormat("%s_bucket{le=\"%lld\"} %llu\n", m.name.c_str(),
                           (long long)m.bounds[i],
                           (unsigned long long)cumulative);
        }
        out += StrFormat("%s_bucket{le=\"+Inf\"} %llu\n", m.name.c_str(),
                         (unsigned long long)m.count);
        out += StrFormat("%s_sum %lld\n", m.name.c_str(), (long long)m.sum);
        out += StrFormat("%s_count %llu\n", m.name.c_str(),
                         (unsigned long long)m.count);
        break;
      }
    }
  }
  return out;
}

namespace {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string ExportJson(MetricsRegistry* registry) {
  auto snapshots = registry->Collect();
  std::string counters, gauges, histograms;
  for (const MetricSnapshot& m : snapshots) {
    switch (m.type) {
      case MetricSnapshot::Type::kCounter:
        if (!counters.empty()) counters += ",\n";
        counters += StrFormat("    \"%s\": %llu", JsonEscape(m.name).c_str(),
                              (unsigned long long)m.counter_value);
        break;
      case MetricSnapshot::Type::kGauge:
        if (!gauges.empty()) gauges += ",\n";
        gauges += StrFormat("    \"%s\": %lld", JsonEscape(m.name).c_str(),
                            (long long)m.gauge_value);
        break;
      case MetricSnapshot::Type::kHistogram: {
        if (!histograms.empty()) histograms += ",\n";
        std::string buckets;
        for (size_t i = 0; i < m.bounds.size(); ++i) {
          if (!buckets.empty()) buckets += ", ";
          buckets += StrFormat("{\"le\": %lld, \"count\": %llu}",
                               (long long)m.bounds[i],
                               (unsigned long long)m.buckets[i]);
        }
        if (!buckets.empty()) buckets += ", ";
        buckets += StrFormat("{\"le\": \"overflow\", \"count\": %llu}",
                             (unsigned long long)m.buckets.back());
        histograms += StrFormat(
            "    \"%s\": {\"count\": %llu, \"sum\": %lld, \"max\": %lld, "
            "\"p50\": %lld, \"p95\": %lld, \"p99\": %lld,\n"
            "      \"buckets\": [%s]}",
            JsonEscape(m.name).c_str(), (unsigned long long)m.count,
            (long long)m.sum, (long long)m.max, (long long)m.p50,
            (long long)m.p95, (long long)m.p99, buckets.c_str());
        break;
      }
    }
  }
  std::string out = "{\n";
  out += "  \"counters\": {\n" + counters + "\n  },\n";
  out += "  \"gauges\": {\n" + gauges + "\n  },\n";
  out += "  \"histograms\": {\n" + histograms + "\n  }\n";
  out += "}\n";
  return out;
}

Result<std::map<std::string, double>> ParsePrometheusText(
    std::string_view text) {
  std::map<std::string, double> out;
  for (std::string_view line : Split(std::string(text), '\n')) {
    line = Trim(line);
    if (line.empty() || line.front() == '#') continue;
    // The sample name may contain a {label} block with spaces inside
    // quotes; the value is everything after the last space.
    size_t space = line.rfind(' ');
    if (space == std::string_view::npos) {
      return Status::InvalidArgument("malformed sample line: " +
                                     std::string(line));
    }
    std::string key = std::string(Trim(line.substr(0, space)));
    auto value = ParseDouble(Trim(line.substr(space + 1)));
    if (!value || key.empty()) {
      return Status::InvalidArgument("malformed sample line: " +
                                     std::string(line));
    }
    out[key] = *value;
  }
  return out;
}

namespace {

/// Minimal recursive-descent JSON reader that flattens numeric leaves
/// into dotted paths. Not a general validator — just enough structure
/// checking to round-trip ExportJson output safely.
class JsonFlattener {
 public:
  explicit JsonFlattener(std::string_view in) : in_(in) {}

  Status Run(std::map<std::string, double>* out) {
    out_ = out;
    SkipWs();
    BISTRO_RETURN_IF_ERROR(Value(""));
    SkipWs();
    if (pos_ != in_.size()) {
      return Status::InvalidArgument("trailing garbage after JSON document");
    }
    return Status::OK();
  }

 private:
  void SkipWs() {
    while (pos_ < in_.size() &&
           std::isspace(static_cast<unsigned char>(in_[pos_]))) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    if (pos_ < in_.size() && in_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseString(std::string* out) {
    if (!Eat('"')) return Status::InvalidArgument("expected string");
    out->clear();
    while (pos_ < in_.size() && in_[pos_] != '"') {
      char c = in_[pos_++];
      if (c == '\\' && pos_ < in_.size()) {
        char esc = in_[pos_++];
        switch (esc) {
          case 'n':
            out->push_back('\n');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 'u':
            // Skip 4 hex digits; exporter only emits control chars this
            // way, which never appear in metric names.
            pos_ = std::min(pos_ + 4, in_.size());
            break;
          default:
            out->push_back(esc);
        }
      } else {
        out->push_back(c);
      }
    }
    if (!Eat('"')) return Status::InvalidArgument("unterminated string");
    return Status::OK();
  }

  Status Value(const std::string& path) {
    SkipWs();
    if (pos_ >= in_.size()) return Status::InvalidArgument("truncated JSON");
    char c = in_[pos_];
    if (c == '{') return Object(path);
    if (c == '[') return Array(path);
    if (c == '"') {
      std::string ignored;
      return ParseString(&ignored);
    }
    if (StartsWith(in_.substr(pos_), "true")) {
      pos_ += 4;
      return Status::OK();
    }
    if (StartsWith(in_.substr(pos_), "false")) {
      pos_ += 5;
      return Status::OK();
    }
    if (StartsWith(in_.substr(pos_), "null")) {
      pos_ += 4;
      return Status::OK();
    }
    // Number.
    size_t start = pos_;
    while (pos_ < in_.size() &&
           (std::isdigit(static_cast<unsigned char>(in_[pos_])) ||
            in_[pos_] == '-' || in_[pos_] == '+' || in_[pos_] == '.' ||
            in_[pos_] == 'e' || in_[pos_] == 'E')) {
      ++pos_;
    }
    auto num = ParseDouble(in_.substr(start, pos_ - start));
    if (!num) return Status::InvalidArgument("malformed JSON number");
    (*out_)[path] = *num;
    return Status::OK();
  }

  Status Object(const std::string& path) {
    Eat('{');
    SkipWs();
    if (Eat('}')) return Status::OK();
    while (true) {
      SkipWs();
      std::string key;
      BISTRO_RETURN_IF_ERROR(ParseString(&key));
      SkipWs();
      if (!Eat(':')) return Status::InvalidArgument("expected ':' in object");
      BISTRO_RETURN_IF_ERROR(
          Value(path.empty() ? key : path + "." + key));
      SkipWs();
      if (Eat(',')) continue;
      if (Eat('}')) return Status::OK();
      return Status::InvalidArgument("expected ',' or '}' in object");
    }
  }

  Status Array(const std::string& path) {
    Eat('[');
    SkipWs();
    if (Eat(']')) return Status::OK();
    size_t index = 0;
    while (true) {
      BISTRO_RETURN_IF_ERROR(
          Value(path + "." + std::to_string(index++)));
      SkipWs();
      if (Eat(',')) continue;
      if (Eat(']')) return Status::OK();
      return Status::InvalidArgument("expected ',' or ']' in array");
    }
  }

  std::string_view in_;
  size_t pos_ = 0;
  std::map<std::string, double>* out_ = nullptr;
};

}  // namespace

Result<std::map<std::string, double>> ParseJsonNumbers(std::string_view text) {
  std::map<std::string, double> out;
  JsonFlattener flattener(text);
  BISTRO_RETURN_IF_ERROR(flattener.Run(&out));
  return out;
}

ScrapeHandle StartMetricsScrape(
    EventLoop* loop, MetricsRegistry* registry, Duration interval,
    std::function<void(const std::string&)> consume) {
  auto token = std::make_shared<char>(0);
  // The tick closure owns itself via shared_ptr so reposted copies stay
  // alive; the weak token makes every queued tick a no-op once the
  // caller drops the handle.
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [loop, registry, interval, consume = std::move(consume),
           weak = std::weak_ptr<char>(token), tick] {
    if (weak.expired()) return;
    consume(ExportPrometheus(registry));
    loop->PostAfter(interval, *tick);
  };
  loop->PostAfter(interval, *tick);
  return token;
}

}  // namespace bistro

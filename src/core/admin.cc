#include "core/admin.h"

#include "common/strings.h"
#include "federation/health.h"

namespace bistro {

std::string RenderStatusReport(BistroServer* server,
                               fanout::GroupManager* groups) {
  std::string out;
  ServerStats stats = server->stats();
  out += "=== Bistro server status ===\n";
  out += StrFormat(
      "pipeline: received %llu (%s), classified %llu, unmatched %llu, "
      "expired %llu, punctuations %llu\n",
      (unsigned long long)stats.files_received,
      HumanBytes(stats.bytes_received).c_str(),
      (unsigned long long)stats.files_classified,
      (unsigned long long)stats.files_unmatched,
      (unsigned long long)stats.files_expired,
      (unsigned long long)stats.punctuations);

  DeliveryStats d = server->delivery_stats();
  out += StrFormat(
      "delivery: %llu pushed, %llu notified, %llu batches, %llu triggers "
      "(%llu failed), %llu retries, %llu backfilled, %llu parked\n",
      (unsigned long long)d.files_delivered,
      (unsigned long long)d.notifications_sent,
      (unsigned long long)d.batches_closed,
      (unsigned long long)d.triggers_invoked,
      (unsigned long long)d.trigger_failures,
      (unsigned long long)d.retries, (unsigned long long)d.backfilled,
      (unsigned long long)d.parked);

  const SchedulerMetrics& m = server->scheduler_metrics();
  out += StrFormat(
      "scheduling: %llu completed, %llu failed, %llu late (%.1f%%), mean "
      "tardiness %s, max %s\n",
      (unsigned long long)m.completed, (unsigned long long)m.failed,
      (unsigned long long)m.late, 100.0 * m.LateFraction(),
      FormatDuration(static_cast<Duration>(m.MeanTardiness())).c_str(),
      FormatDuration(m.max_tardiness).c_str());

  if (groups != nullptr && !groups->groups().empty()) {
    size_t members = 0, stragglers = 0, lag = 0;
    for (const GroupSpec& spec : groups->groups()) {
      if (const fanout::GroupRelay* relay = groups->relay(spec.name)) {
        members += relay->member_count();
        stragglers += relay->straggler_count();
        lag += relay->straggler_lag();
      }
    }
    out += StrFormat(
        "groups: %zu group(s) covering %zu member(s), %zu straggler(s) "
        "owed %zu file(s)\n",
        groups->groups().size(), members, stragglers, lag);
  }

  out += "feeds:\n";
  for (const RegisteredFeed* feed : server->registry()->feeds()) {
    FeedProgress p = server->monitor()->Progress(feed->spec.name);
    out += StrFormat("  %-24s %6llu files %10s  pattern %s",
                     feed->spec.name.c_str(), (unsigned long long)p.files,
                     HumanBytes(p.bytes).c_str(), feed->spec.pattern.c_str());
    if (!feed->spec.alt_patterns.empty()) {
      out += StrFormat(" (+%zu alternates)", feed->spec.alt_patterns.size());
    }
    if (p.est_period > 0) {
      out += StrFormat("  period ~%s", FormatDuration(p.est_period).c_str());
    }
    if (p.stalled) out += "  [STALLED]";
    out += "\n";
  }

  out += "subscribers:\n";
  for (const SubscriberSpec& sub : server->registry()->subscribers()) {
    bool offline = server->delivery()->IsOffline(sub.name);
    out += StrFormat(
        "  %-24s %-7s %s  interests: %s\n", sub.name.c_str(),
        offline ? "OFFLINE" : "online",
        sub.method == DeliveryMethod::kPush ? "push  " : "notify",
        Join(sub.feeds, ", ").c_str());
  }

  // Latency histograms with data, from the shared registry.
  bool wrote_header = false;
  for (const MetricSnapshot& m : server->metrics()->Collect()) {
    if (m.type != MetricSnapshot::Type::kHistogram || m.count == 0) continue;
    if (!wrote_header) {
      out += "latency histograms:\n";
      wrote_header = true;
    }
    out += StrFormat("  %-44s n=%-7llu p50=%-12s p95=%-12s p99=%-12s max=%s\n",
                     m.name.c_str(), (unsigned long long)m.count,
                     FormatDuration(m.p50).c_str(),
                     FormatDuration(m.p95).c_str(),
                     FormatDuration(m.p99).c_str(),
                     FormatDuration(m.max).c_str());
  }

  // Per-feed pipeline stage rollups from the file tracer.
  auto feeds_with_traces = server->tracer()->RolledUpFeeds();
  if (!feeds_with_traces.empty()) {
    out += "pipeline stage latency by feed (mean/max):\n";
    for (const FeedName& feed : feeds_with_traces) {
      auto rollup = server->tracer()->FeedRollup(feed);
      out += StrFormat("  %-24s", feed.c_str());
      for (size_t i = 1; i < kNumPipelineStages; ++i) {
        if (rollup[i].count == 0) continue;
        out += StrFormat(
            " %s %s/%s", PipelineStageName(static_cast<PipelineStage>(i)).data(),
            FormatDuration(rollup[i].Mean()).c_str(),
            FormatDuration(rollup[i].max).c_str());
      }
      out += "\n";
    }
  }
  return out;
}

std::string RenderDeadLetters(BistroServer* server) {
  const std::vector<TransferJob>& dead = server->delivery()->dead_letters();
  if (dead.empty()) return "dead-letter queue empty\n";
  std::string out = StrFormat("=== Dead letters (%zu) ===\n", dead.size());
  for (const TransferJob& job : dead) {
    out += StrFormat("  file %-8llu %-32s -> %-20s feed %-16s %s, %d attempts\n",
                     (unsigned long long)job.file_id, job.name.c_str(),
                     job.subscriber.c_str(), job.feed.c_str(),
                     HumanBytes(job.size).c_str(), job.attempts);
  }
  return out;
}

std::string RenderSubscriptions(BistroServer* server,
                                const AdminFanout& fanout) {
  std::string out = "=== Subscriptions ===\n";
  size_t individuals = 0;
  for (const SubscriberSpec& sub : server->registry()->subscribers()) {
    if (fanout.groups != nullptr && fanout.groups->relay(sub.name) != nullptr) {
      continue;  // rendered below as a group
    }
    ++individuals;
  }
  out += StrFormat("individual subscribers: %zu\n", individuals);
  if (fanout.groups == nullptr || fanout.groups->groups().empty()) {
    out += "groups: none\n";
  } else {
    out += "groups:\n";
    for (const GroupSpec& spec : fanout.groups->groups()) {
      const fanout::GroupRelay* relay = fanout.groups->relay(spec.name);
      if (relay == nullptr) continue;
      out += StrFormat(
          "  %-20s %4zu member(s)  cursor %-8llu acked %-7llu "
          "stragglers %zu (owed %zu)  interests: %s\n",
          spec.name.c_str(), relay->member_count(),
          (unsigned long long)relay->cursor(),
          (unsigned long long)relay->files_acked(), relay->straggler_count(),
          relay->straggler_lag(), Join(spec.feeds, ", ").c_str());
      for (const fanout::GroupMemberStats& m : relay->member_stats()) {
        std::string flag =
            m.straggler ? StrFormat(" [STRAGGLER, owes %zu]", m.missed)
                        : std::string();
        out += StrFormat("    - %-20s delivered %-7llu%s\n", m.name.c_str(),
                         (unsigned long long)m.delivered, flag.c_str());
      }
    }
  }
  if (fanout.relay_specs.empty()) {
    out += "relays: none\n";
  } else {
    out += "relays:\n";
    for (const RelaySpec& spec : fanout.relay_specs) {
      int depth = fanout::RelayTreeDepth(fanout.relay_specs, spec.name);
      std::string live;
      for (const fanout::RelayNode* node : fanout.relay_nodes) {
        if (node != nullptr && node->name() == spec.name) {
          live = StrFormat("  backlog %zu, received %llu, forwarded %llu",
                           node->Backlog(),
                           (unsigned long long)node->received(),
                           (unsigned long long)node->forwarded());
        }
      }
      out += StrFormat("  %-20s depth %d  children: %s%s\n", spec.name.c_str(),
                       depth, Join(spec.children, ", ").c_str(), live.c_str());
    }
  }
  return out;
}

std::string RenderClassifier(BistroServer* server) {
  FeedClassifier* classifier = server->classifier();
  ClassifierStats stats = classifier->stats();
  std::string out = "=== Classifier ===\n";
  out += "mode: ";
  out += IndexModeName(classifier->mode());
  out += "\n";
  out += StrFormat("files classified: %llu (%llu matched, %llu unmatched)\n",
                   (unsigned long long)stats.files,
                   (unsigned long long)stats.matched,
                   (unsigned long long)stats.unmatched);
  double per_file = stats.files == 0
                        ? 0.0
                        : static_cast<double>(stats.candidate_checks) /
                              static_cast<double>(stats.files);
  out += StrFormat("candidate pattern checks: %llu (%.2f per file)\n",
                   (unsigned long long)stats.candidate_checks, per_file);
  std::shared_ptr<const FeedAutomaton> automaton = classifier->automaton();
  if (automaton != nullptr) {
    const AutomatonStats& a = automaton->stats();
    out += StrFormat(
        "automaton: %zu pattern(s) over %zu feed(s), registry version %llu\n",
        a.patterns, automaton->feed_count(),
        (unsigned long long)automaton->version());
    out += StrFormat("  dfa states: %zu (%zu dense, %zu sparse rows)\n",
                     a.dfa_states, a.dense_rows, a.sparse_rows);
    out += StrFormat("  accept sets: %zu\n", a.accept_sets);
    out += StrFormat("  table memory: %s\n", HumanBytes(a.memory_bytes).c_str());
    out += StrFormat("  last compile: %llu us\n",
                     (unsigned long long)a.compile_micros);
  }
  return out;
}

std::string RenderPlans(BistroServer* server) {
  PlanRuntime* plans = server->plans();
  if (plans == nullptr) return "no ingestion plans configured\n";
  std::shared_ptr<const CompiledPlans> snap = plans->snapshot();
  PlanStats stats = plans->stats();
  std::string out = "=== Ingestion plans ===\n";
  out += StrFormat(
      "governed feeds: %zu (registry version %llu, %llu rebuild(s), "
      "%llu rebuild error(s))\n",
      stats.governed_feeds, (unsigned long long)stats.snapshot_version,
      (unsigned long long)stats.rebuilds,
      (unsigned long long)stats.rebuild_errors);
  if (snap != nullptr) {
    for (const auto& [feed, fp] : snap->feeds) {
      out += StrFormat("  %-24s (plan %s)\n", feed.c_str(),
                       fp.selector.c_str());
      if (fp.quota != nullptr) {
        std::string budget;
        if (fp.quota->file_capacity() > 0) {
          budget += StrFormat("%lld file(s)",
                              (long long)fp.quota->file_capacity());
        }
        if (fp.quota->byte_capacity() > 0) {
          if (!budget.empty()) budget += " + ";
          budget += HumanBytes(
              static_cast<uint64_t>(fp.quota->byte_capacity()));
        }
        out += StrFormat("    quota: %s per %s (shared across plan %s)\n",
                         budget.c_str(),
                         FormatDuration(fp.quota->interval()).c_str(),
                         fp.selector.c_str());
      }
      if (fp.sample_keep_bp < 10000) {
        out += StrFormat("    sample: keep %.2f%%\n",
                         fp.sample_keep_bp / 100.0);
      }
      if (fp.transform) {
        const NormalizeSpec& t = fp.transform->spec();
        const char* action =
            t.action == CompressionAction::kCompress     ? "compress"
            : t.action == CompressionAction::kDecompress ? "decompress"
                                                         : "passthrough";
        out += StrFormat("    transform: %s (%s)\n", action,
                         std::string(CodecKindName(t.codec)).c_str());
      }
      if (!fp.route.empty()) {
        out += StrFormat("    route: %s\n", Join(fp.route, ", ").c_str());
      }
      if (!fp.split.empty()) {
        std::string arms;
        for (const PlanSplitArm& arm : fp.split) {
          if (!arms.empty()) arms += ", ";
          arms += StrFormat("%d%% -> %s", arm.percent, arm.to.c_str());
        }
        out += StrFormat("    split: %s\n", arms.c_str());
      }
      if (!fp.slo.empty()) {
        out += StrFormat("    slo: %s (deadline x%d/%d)\n", fp.slo.c_str(),
                         fp.deadline_scale_num, fp.deadline_scale_den);
      }
      if (fp.replicate > 0) {
        out += StrFormat("    replicate: %d\n", fp.replicate);
      }
      if (!fp.enrich.empty()) {
        std::string ops;
        for (EnrichOp op : fp.enrich) {
          if (!ops.empty()) ops += ", ";
          ops += op == EnrichOp::kProvenance ? "provenance" : "checksum";
        }
        out += StrFormat("    enrich: %s\n", ops.c_str());
      }
    }
  }
  out += StrFormat(
      "activity: %llu quota-shed, %llu sampled out, %llu route-filtered, "
      "%llu split-routed, %llu enriched, %llu transformed\n",
      (unsigned long long)stats.quota_shed,
      (unsigned long long)stats.sampled_out,
      (unsigned long long)stats.route_filtered,
      (unsigned long long)stats.split_routed,
      (unsigned long long)stats.enriched,
      (unsigned long long)stats.transformed);
  return out;
}

std::string ExecuteAdminCommand(BistroServer* server,
                                const std::string& command,
                                FederationRuntime* federation,
                                const AdminFanout& fanout) {
  std::string cmd(Trim(command));
  if (cmd == "status") return RenderStatusReport(server, fanout.groups);
  if (cmd == "classifier") return RenderClassifier(server);
  if (cmd == "subscriptions") return RenderSubscriptions(server, fanout);
  if (cmd == "deadletters") return RenderDeadLetters(server);
  if (cmd == "redrive") {
    size_t n = server->delivery()->dead_letters().size();
    server->delivery()->RedriveDeadLetters();
    return StrFormat("redriven %zu dead-letter job(s)\n", n);
  }
  if (cmd == "peers") {
    if (federation == nullptr) return "no federation peers wired\n";
    return federation->RenderPeers();
  }
  if (cmd == "plans") return RenderPlans(server);
  if (cmd == "help") {
    return "commands: status | classifier | subscriptions | deadletters | "
           "redrive | peers | plans | help\n";
  }
  return StrFormat("unknown admin command: '%s' (try 'help')\n", cmd.c_str());
}

}  // namespace bistro

#ifndef BISTRO_CORE_TYPES_H_
#define BISTRO_CORE_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"

namespace bistro {

/// Sequence number assigned by the server to every received file.
using FileId = uint64_t;

/// Feed names are hierarchical, dot-separated: "SNMP.CPU.POLLER1".
/// A feed group is addressed by any prefix of the hierarchy ("SNMP.CPU").
using FeedName = std::string;

/// Subscriber identifiers are flat strings ("dallas_warehouse").
using SubscriberName = std::string;

/// A file as it arrives in a landing directory, before classification.
struct IncomingFile {
  std::string name;        // bare filename as deposited by the source
  std::string landing_path;  // full path in the landing zone
  uint64_t size = 0;
  TimePoint arrival_time = 0;
  std::string source;      // landing zone / source identifier
};

/// A classified, normalized, staged file ready for delivery.
struct StagedFile {
  FileId id = 0;
  std::string name;          // original filename
  std::string staged_path;   // full normalized path in the staging area
  std::string rel_path;      // normalized path relative to the feed root
                             // (also the subscriber-side destination)
  uint64_t size = 0;         // size after normalization/compression
  TimePoint arrival_time = 0;
  TimePoint data_time = 0;   // timestamp extracted from the filename (0 = none)
  std::vector<FeedName> feeds;  // feeds this file belongs to
};

}  // namespace bistro

#endif  // BISTRO_CORE_TYPES_H_

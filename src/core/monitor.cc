#include "core/monitor.h"

#include "common/strings.h"

namespace bistro {

void FeedMonitor::AttachMetrics(MetricsRegistry* registry) {
  stall_alarms_ = registry->GetCounter("bistro_monitor_stall_alarms_total",
                                       "Feed stall alarms raised");
  resumes_ = registry->GetCounter("bistro_monitor_resumes_total",
                                  "Stalled feeds that resumed arrivals");
  stalled_feeds_ = registry->GetGauge("bistro_monitor_stalled_feeds",
                                      "Feeds currently flagged as stalled");
}

void FeedMonitor::OnArrival(const FeedName& feed, uint64_t bytes,
                            TimePoint now) {
  Entry& e = entries_[feed];
  if (e.stalled) {
    // Resume: the quiet gap is an outage, not a period sample — feeding
    // it into the estimate would inflate the period and delay (or
    // entirely mask) the alarm for the feed's NEXT stall episode.
    e.stalled = false;
    if (resumes_ != nullptr) resumes_->Increment();
    if (stalled_feeds_ != nullptr) stalled_feeds_->Add(-1);
    logger_->Info("monitor", "feed resumed: " + feed);
  } else if (e.files > 0) {
    Duration gap = now - e.last_arrival;
    // Feeds are batchy: several pollers deposit within seconds, then the
    // feed is quiet for a full period. Gaps much smaller than the current
    // estimate are intra-batch jitter, not the period — skip them so the
    // estimate converges to the batch cadence rather than their average.
    bool intra_batch =
        e.est_period > 0 && gap < e.est_period / 10;
    if (gap > 0 && !intra_batch) {
      e.est_period = e.est_period == 0
                         ? gap
                         : static_cast<Duration>(alpha_ * gap +
                                                 (1.0 - alpha_) * e.est_period);
    }
  }
  e.files++;
  e.bytes += bytes;
  e.last_arrival = now;
}

std::vector<FeedName> FeedMonitor::CheckStalls(TimePoint now) {
  std::vector<FeedName> newly_stalled;
  for (auto& [feed, e] : entries_) {
    // Warm-up guard: with very few arrivals the period estimate is still
    // dominated by intra-batch jitter; alarming on it is noise.
    if (e.stalled || e.est_period <= 0 || e.files < 5) continue;
    Duration quiet = now - e.last_arrival;
    if (static_cast<double>(quiet) >
        stall_factor_ * static_cast<double>(e.est_period)) {
      e.stalled = true;
      newly_stalled.push_back(feed);
      if (stall_alarms_ != nullptr) stall_alarms_->Increment();
      if (stalled_feeds_ != nullptr) stalled_feeds_->Add(1);
      logger_->Alarm(
          "monitor",
          StrFormat("feed stalled: %s (quiet for %s, expected period %s)",
                    feed.c_str(), FormatDuration(quiet).c_str(),
                    FormatDuration(e.est_period).c_str()));
    }
  }
  return newly_stalled;
}

FeedProgress FeedMonitor::Progress(const FeedName& feed) const {
  FeedProgress p;
  p.feed = feed;
  auto it = entries_.find(feed);
  if (it == entries_.end()) return p;
  p.files = it->second.files;
  p.bytes = it->second.bytes;
  p.last_arrival = it->second.last_arrival;
  p.est_period = it->second.est_period;
  p.stalled = it->second.stalled;
  return p;
}

std::vector<FeedProgress> FeedMonitor::AllProgress() const {
  std::vector<FeedProgress> out;
  out.reserve(entries_.size());
  for (const auto& [feed, _] : entries_) out.push_back(Progress(feed));
  return out;
}

}  // namespace bistro

#include "core/server.h"

#include "common/hash.h"
#include "common/strings.h"
#include "compress/codec.h"

namespace bistro {

BistroServer::BistroServer(Options options, FileSystem* fs,
                           Transport* transport, EventLoop* loop,
                           TriggerInvoker* invoker, Logger* logger)
    : options_(std::move(options)),
      fs_(fs),
      loop_(loop),
      logger_(logger),
      monitor_(logger) {
  (void)transport;
  (void)invoker;
  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
  } else {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  tracer_ = std::make_unique<FileTracer>(metrics_);
  files_received_ = metrics_->GetCounter("bistro_server_files_received_total",
                                         "Files entering the pipeline");
  files_classified_ = metrics_->GetCounter(
      "bistro_server_files_classified_total", "Files matched to >= 1 feed");
  files_unmatched_ = metrics_->GetCounter(
      "bistro_server_files_unmatched_total",
      "Files matching no feed (quarantined for the analyzer)");
  files_expired_ = metrics_->GetCounter(
      "bistro_server_files_expired_total",
      "Staged files expunged by the history-window cleaner");
  bytes_received_ = metrics_->GetCounter("bistro_server_bytes_received_total",
                                         "Bytes entering the pipeline");
  punctuations_ = metrics_->GetCounter(
      "bistro_server_punctuations_total", "Source end-of-batch markers");
  monitor_.AttachMetrics(metrics_);
}

BistroServer::~BistroServer() {
  if (pipeline_ != nullptr) pipeline_->Shutdown();
}

ServerStats BistroServer::stats() const {
  ServerStats s;
  s.files_received = files_received_->value();
  s.files_classified = files_classified_->value();
  s.files_unmatched = files_unmatched_->value();
  s.files_expired = files_expired_->value();
  s.bytes_received = bytes_received_->value();
  s.punctuations = punctuations_->value();
  return s;
}

Result<std::unique_ptr<BistroServer>> BistroServer::Create(
    Options options, const ServerConfig& config, FileSystem* fs,
    Transport* transport, EventLoop* loop, TriggerInvoker* invoker,
    Logger* logger, DeliveryScheduler* scheduler) {
  std::unique_ptr<BistroServer> server(
      new BistroServer(std::move(options), fs, transport, loop, invoker, logger));
  BISTRO_ASSIGN_OR_RETURN(server->registry_, FeedRegistry::Create(config));
  // Compile the declarative ingestion plans against the registry now, so
  // a plan naming an unknown feed, routing to an unknown target, or
  // asking for more replicas than peers fails config load — not delivery.
  if (!config.plans.empty()) {
    server->plans_ = std::make_unique<PlanRuntime>(
        config.plans, server->registry_.get(), PlanContextFromConfig(config));
    BISTRO_RETURN_IF_ERROR(
        server->plans_->Validate().WithContext("ingestion plans"));
    server->plans_->AttachMetrics(server->metrics_);
  }
  // Config-file delivery tuning overrides the compiled-in defaults (but
  // not the other way around: unset keys leave Options untouched).
  {
    const DeliveryTuningSpec& tune = config.delivery;
    DeliveryEngine::Options* d = &server->options_.delivery;
    if (tune.retry_backoff_min) d->retry_backoff = *tune.retry_backoff_min;
    if (tune.retry_backoff_max) d->retry_backoff_max = *tune.retry_backoff_max;
    if (tune.retry_multiplier) {
      d->retry_backoff_multiplier = *tune.retry_multiplier;
    }
    if (tune.retry_jitter) d->retry_jitter = *tune.retry_jitter;
    if (tune.max_attempts) d->max_attempts = *tune.max_attempts;
    if (tune.offline_after) d->offline_after_failures = *tune.offline_after;
    if (tune.probe_interval) d->probe_interval = *tune.probe_interval;
    if (tune.window) d->window = static_cast<size_t>(*tune.window);
    if (tune.coalesce_bytes) {
      d->coalesce_bytes = static_cast<size_t>(*tune.coalesce_bytes);
    }
    if (tune.cache_bytes) d->cache_bytes = static_cast<size_t>(*tune.cache_bytes);
    if (tune.receipt_group) {
      d->receipt_group = static_cast<size_t>(*tune.receipt_group);
    }
    if (tune.receipt_flush_interval) {
      d->receipt_flush_interval = *tune.receipt_flush_interval;
    }
  }
  BISTRO_RETURN_IF_ERROR(fs->MkDirs(server->options_.landing_root));
  BISTRO_RETURN_IF_ERROR(fs->MkDirs(server->options_.staging_root));
  int shards = server->options_.receipt_shards > 0
                   ? server->options_.receipt_shards
                   : config.receipts.shards.value_or(1);
  BISTRO_ASSIGN_OR_RETURN(
      server->receipts_,
      ReceiptDatabase::Open(fs, server->options_.db_dir, server->options_.kv,
                            shards));
  server->receipts_->AttachMetrics(server->metrics_);
  // Classifier strategy: the compiled feed-table automaton unless the
  // config's classifier block picks a legacy mode.
  FeedClassifier::IndexMode classifier_mode =
      FeedClassifier::IndexMode::kAutomaton;
  if (config.classifier.mode) {
    BISTRO_ASSIGN_OR_RETURN(classifier_mode,
                            IndexModeFromName(*config.classifier.mode));
  }
  server->classifier_ = std::make_unique<FeedClassifier>(
      server->registry_.get(), classifier_mode);
  server->classifier_->AttachMetrics(server->metrics_);
  if (scheduler == nullptr) {
    PartitionedScheduler::Options sched_opts;
    // With a pipelined window, each subscriber may legitimately hold
    // `window` transfers in flight; the default two slots per partition
    // would starve the window before the link does. Scale the partition
    // slot pool so windows, not slots, are the binding concurrency limit.
    size_t window = server->options_.delivery.window;
    if (window > sched_opts.slots_per_partition) {
      sched_opts.slots_per_partition = window * 2;
    }
    server->owned_scheduler_ =
        std::make_unique<PartitionedScheduler>(sched_opts);
    scheduler = server->owned_scheduler_.get();
  }
  scheduler->AttachMetrics(server->metrics_);
  transport->AttachMetrics(server->metrics_);
  AttachCodecMetrics(server->metrics_);
  server->delivery_ = std::make_unique<DeliveryEngine>(
      loop, server->registry_.get(), server->receipts_.get(), fs, transport,
      scheduler, invoker, logger, server->options_.delivery, server->metrics_,
      server->tracer_.get());
  if (server->plans_ != nullptr) {
    server->delivery_->AttachPlans(server->plans_.get());
  }
  // Config-file ingest tuning overrides the compiled-in defaults, same
  // contract as the delivery block above.
  {
    const IngestTuningSpec& tune = config.ingest;
    IngestPipeline::Options* g = &server->options_.ingest;
    if (tune.workers) g->workers = *tune.workers;
    if (tune.queue_depth) g->queue_depth = static_cast<size_t>(*tune.queue_depth);
    if (tune.batch) g->batch = static_cast<size_t>(*tune.batch);
    if (tune.overload_policy) {
      BISTRO_ASSIGN_OR_RETURN(g->overload_policy,
                              OverloadPolicyFromName(*tune.overload_policy));
    }
    g->staging_root = server->options_.staging_root;
    g->sync_staging = server->options_.sync_staging;
    g->spill_path = path::Join(server->options_.db_dir, "ingest.spill");
  }
  server->pipeline_ = std::make_unique<IngestPipeline>(
      server->options_.ingest, fs, server->classifier_.get(),
      server->registry_.get(), server->receipts_.get(), loop, logger,
      server->metrics_);
  if (server->plans_ != nullptr) {
    server->pipeline_->AttachPlans(server->plans_.get());
  }
  // In threaded mode the committed/error callbacks arrive via loop posts
  // that can outlive this server; the weak token turns them into no-ops.
  {
    auto weak = std::weak_ptr<char>(server->alive_);
    BistroServer* srv = server.get();
    server->pipeline_->SetCallbacks(
        [weak, srv](const IncomingFile&) {
          if (!weak.lock()) return;
          srv->files_classified_->Increment();
        },
        [weak, srv](const IncomingFile& file) {
          if (!weak.lock()) return;
          srv->files_unmatched_->Increment();
          // Tokenize once here (the table-driven scan the classifier
          // shares); the analyzer folds the observation without
          // re-walking the name.
          srv->unmatched_.push_back({file.name, file.arrival_time,
                                     Fnv1a64(file.name),
                                     TokenizeName(file.name)});
          srv->logger_->Debug("classifier", "unmatched file: " + file.name);
        },
        [weak, srv](const IngestPipeline::Committed& done) {
          if (!weak.lock()) return;
          srv->OnIngestCommitted(done);
        },
        [weak, srv](const IncomingFile& file, const Status& status) {
          if (!weak.lock()) return;
          srv->logger_->Error("ingest", "failed to ingest " +
                                            file.landing_path + ": " +
                                            status.ToString());
        });
  }
  server->pipeline_->Start();
  // Level gauges refresh at scrape time; the weak token makes the hook a
  // no-op once this server is gone (the registry may outlive it).
  Gauge* receipts_gauge = server->metrics_->GetGauge(
      "bistro_server_arrival_receipts", "Arrival receipts currently retained");
  Gauge* traces_gauge = server->metrics_->GetGauge(
      "bistro_trace_retained_files", "File traces held in the ring buffer");
  server->metrics_->AddCollectHook(
      [weak = std::weak_ptr<char>(server->alive_), srv = server.get(),
       receipts_gauge, traces_gauge] {
        if (!weak.lock()) return;
        receipts_gauge->Set(static_cast<int64_t>(srv->receipts_->ArrivalCount()));
        traces_gauge->Set(static_cast<int64_t>(srv->tracer_->retained()));
      });
  // Receipts may already hold undelivered history (crash recovery):
  // recompute every subscriber's queue at startup. Runs off the
  // subscription index, not a registry scan — same contract as the
  // delivery hot path.
  for (const auto& name :
       server->delivery_->subscription_index()->ActiveSubscribers()) {
    server->delivery_->Backfill(name);
  }
  return server;
}

Status BistroServer::Deposit(const std::string& source,
                             const std::string& filename,
                             std::string content) {
  std::string landing_dir = path::Join(options_.landing_root, source);
  std::string landing_path = path::Join(landing_dir, filename);
  BISTRO_RETURN_IF_ERROR(fs_->WriteFile(landing_path, content));
  // Threaded ingest acks the deposit at admission, before the receipt is
  // durable, so the landing copy must survive a crash on its own — it is
  // what the restart rescan re-admits.
  if (pipeline_->threaded()) {
    BISTRO_RETURN_IF_ERROR(fs_->Sync(landing_path));
  }
  IncomingFile file;
  file.name = filename;
  file.landing_path = landing_path;
  file.size = content.size();
  file.arrival_time = loop_->Now();
  file.source = source;
  return Ingest(file);
}

Result<size_t> BistroServer::ScanLandingZone() {
  BISTRO_ASSIGN_OR_RETURN(auto entries,
                          fs_->ListRecursive(options_.landing_root));
  size_t ingested = 0;
  for (const FileInfo& info : entries) {
    // Already admitted (threaded mode): the pipeline owns this file.
    if (pipeline_->InFlight(info.path)) continue;
    IncomingFile file;
    file.name = std::string(path::Basename(info.path));
    file.landing_path = info.path;
    file.size = info.size;
    file.arrival_time = loop_->Now();
    std::string_view dir = path::Dirname(info.path);
    file.source = std::string(path::Basename(dir));
    // A crash between a file's receipt commit and its landing-file
    // removal leaves this leftover behind; its receipt (found via the
    // name index) proves it was ingested, so finish the removal instead
    // of double-ingesting. (File names are assumed unique per file — the
    // paper's patterns embed timestamps, §3.1.)
    if (receipts_->FindIdByName(file.name).ok()) {
      Status removed = fs_->Delete(info.path);
      if (!removed.ok() && !removed.IsNotFound()) {
        logger_->Error("ingest",
                       "failed to remove leftover landing file " + info.path);
      }
      continue;
    }
    Status s = Ingest(file);
    if (!s.ok()) {
      logger_->Error("ingest",
                     "failed to ingest " + info.path + ": " + s.ToString());
      continue;
    }
    ++ingested;
  }
  return ingested;
}

Status BistroServer::Ingest(const IncomingFile& file) {
  files_received_->Increment();
  bytes_received_->Increment(file.size);
  // The pipeline runs classify -> normalize/compress -> stage -> receipt
  // group commit; unmatched files stay in the landing zone's quarantine
  // area for the analyzer to study. In sync mode (workers == 0) all of it
  // happens inside this call; in threaded mode this call only classifies
  // and admits, and OnIngestCommitted fires later on the event loop.
  return pipeline_->Submit(file);
}

void BistroServer::OnIngestCommitted(const IngestPipeline::Committed& done) {
  const StagedFile& staged = done.staged;
  tracer_->Begin(staged.id, staged.name, staged.feeds.front(),
                 staged.arrival_time);
  tracer_->Mark(staged.id, PipelineStage::kClassify, done.classify_at);
  tracer_->Mark(staged.id, PipelineStage::kNormalize, done.normalize_at);
  tracer_->Mark(staged.id, PipelineStage::kStage, done.stage_at);
  tracer_->Mark(staged.id, PipelineStage::kReceipt, done.receipt_at);
  for (const auto& feed : staged.feeds) {
    monitor_.OnArrival(feed, staged.size, staged.arrival_time);
  }
  delivery_->SubmitStagedFile(staged);
}

void BistroServer::SourceEndOfBatch(const FeedName& feed,
                                    TimePoint batch_time) {
  punctuations_->Increment();
  delivery_->OnSourcePunctuation(feed, batch_time);
}

Status BistroServer::AddSubscriber(const SubscriberSpec& spec) {
  BISTRO_RETURN_IF_ERROR(registry_->AddSubscriber(spec));
  logger_->Info("admin", "subscriber added: " + spec.name);
  delivery_->Backfill(spec.name);
  return Status::OK();
}

Status BistroServer::ReviseFeed(const FeedSpec& spec) {
  BISTRO_RETURN_IF_ERROR(registry_->UpdateFeed(spec));
  pipeline_->RebuildClassifier();
  logger_->Info("admin", "feed definition revised: " + spec.name);
  delivery_->BackfillFeed(spec.name);
  return Status::OK();
}

Result<std::string> BistroServer::Retrieve(FileId file_id) const {
  BISTRO_ASSIGN_OR_RETURN(ArrivalReceipt receipt,
                          receipts_->GetArrival(file_id));
  return fs_->ReadFile(receipt.staged_path);
}

void BistroServer::RunMaintenance() {
  TimePoint now = loop_->Now();
  if (options_.history_window > 0) {
    TimePoint cutoff = now - options_.history_window;
    if (cutoff > 0) {
      auto expired = receipts_->ExpireBefore(cutoff);
      if (expired.ok()) {
        for (const std::string& staged : *expired) {
          Status s = fs_->Delete(staged);
          if (!s.ok() && !s.IsNotFound()) {
            logger_->Error("cleaner", "failed to expunge " + staged);
          }
        }
        files_expired_->Increment(expired->size());
      } else {
        logger_->Error("cleaner", "expire failed: " + expired.status().ToString());
      }
    }
  }
  monitor_.CheckStalls(now);
  if (receipt_archiver_ != nullptr) {
    std::string snapshot_name =
        StrFormat("receipts-%016llu",
                  (unsigned long long)receipt_snapshot_seq_++);
    auto shipped =
        ShipReceiptState(fs_, options_.db_dir, receipt_archiver_, snapshot_name);
    if (!shipped.ok()) {
      logger_->Error("archiver", "receipt snapshot failed: " +
                                     shipped.status().ToString());
    }
  }
}

void BistroServer::StartMaintenanceTimer() {
  if (maintenance_running_) return;
  maintenance_running_ = true;
  loop_->PostAfter(options_.maintenance_interval,
                   [weak = std::weak_ptr<char>(alive_), this] {
                     if (!weak.lock()) return;
                     RunMaintenance();
                     maintenance_running_ = false;
                     StartMaintenanceTimer();
                   });
}

std::vector<FileObservation> BistroServer::DrainUnmatched() {
  std::vector<FileObservation> out;
  out.swap(unmatched_);
  return out;
}

Status BistroServer::HandleMessage(const Message& msg) {
  switch (msg.type) {
    case MessageType::kFileData:
      // An upstream Bistro server (or source agent) pushed a file: it
      // enters our pipeline exactly like a locally deposited file. A
      // checksum mismatch NACKs the delivery so the upstream retries.
      if (msg.payload_crc != 0 && Crc32(msg.payload) != msg.payload_crc) {
        return Status::Corruption("payload crc mismatch: " + msg.name);
      }
      return Deposit("upstream", msg.name, msg.payload.str());
    case MessageType::kEndOfBatch:
      SourceEndOfBatch(msg.feed, msg.batch_time);
      return Status::OK();
    case MessageType::kSourceNotify:
      // A cooperating source deposited files itself and is telling us.
      return ScanLandingZone().status();
    case MessageType::kHeartbeat:
    case MessageType::kAck:
      return Status::OK();
    case MessageType::kFileNotify:
      // Hybrid pull not implemented server-to-server; acknowledge.
      return Status::OK();
  }
  return Status::InvalidArgument("unhandled message type");
}

}  // namespace bistro

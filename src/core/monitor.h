#ifndef BISTRO_CORE_MONITOR_H_
#define BISTRO_CORE_MONITOR_H_

#include <map>
#include <vector>

#include "common/logging.h"
#include "core/types.h"
#include "obs/metrics.h"

namespace bistro {

/// Per-feed progress snapshot.
struct FeedProgress {
  FeedName feed;
  uint64_t files = 0;
  uint64_t bytes = 0;
  TimePoint last_arrival = 0;
  /// Smoothed inter-arrival estimate (0 until two arrivals seen).
  Duration est_period = 0;
  bool stalled = false;
};

/// Tracks the health of every feed the server manages (paper §3.2:
/// "extensive logging to track the status of all the feeds, monitor their
/// progress ... and alarm if it is unable to correct errors").
///
/// The monitor learns each feed's arrival period from observation (feeds
/// are not under the server's control, so declared rates cannot be
/// trusted) and raises an alarm through the logging subsystem when a feed
/// goes quiet for `stall_factor` periods.
class FeedMonitor {
 public:
  explicit FeedMonitor(Logger* logger, double stall_factor = 3.0,
                       double alpha = 0.3)
      : logger_(logger), stall_factor_(stall_factor), alpha_(alpha) {}

  /// Registers the monitor's counters/gauges (stall alarms, resumes,
  /// stalled-feed level) in `registry`. Optional; safe to skip in tests.
  void AttachMetrics(MetricsRegistry* registry);

  /// Records a classified arrival.
  void OnArrival(const FeedName& feed, uint64_t bytes, TimePoint now);

  /// Scans for stalled feeds; raises one alarm per feed per stall episode.
  /// Returns the feeds newly flagged as stalled.
  std::vector<FeedName> CheckStalls(TimePoint now);

  /// Current progress for one feed (default-constructed if unknown).
  FeedProgress Progress(const FeedName& feed) const;

  std::vector<FeedProgress> AllProgress() const;

 private:
  struct Entry {
    uint64_t files = 0;
    uint64_t bytes = 0;
    TimePoint last_arrival = 0;
    Duration est_period = 0;
    bool stalled = false;
  };

  Logger* logger_;
  double stall_factor_;
  double alpha_;
  std::map<FeedName, Entry> entries_;
  Counter* stall_alarms_ = nullptr;
  Counter* resumes_ = nullptr;
  Gauge* stalled_feeds_ = nullptr;
};

}  // namespace bistro

#endif  // BISTRO_CORE_MONITOR_H_

#ifndef BISTRO_CORE_SERVER_H_
#define BISTRO_CORE_SERVER_H_

#include <memory>
#include <string>
#include <vector>

#include "analyzer/infer.h"
#include "classify/classifier.h"
#include "common/logging.h"
#include "config/registry.h"
#include "core/monitor.h"
#include "core/types.h"
#include "delivery/archiver.h"
#include "delivery/engine.h"
#include "ingest/pipeline.h"
#include "ingest/plan.h"
#include "kv/receipts.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sched/scheduler.h"
#include "sim/event_loop.h"
#include "trigger/trigger.h"
#include "vfs/filesystem.h"

namespace bistro {

/// Snapshot of the server's ingest counters. The registry's
/// `bistro_server_*` counters are the source of truth; `stats()` assembles
/// this by-value view from them.
struct ServerStats {
  uint64_t files_received = 0;
  uint64_t files_classified = 0;
  uint64_t files_unmatched = 0;
  uint64_t files_expired = 0;
  uint64_t bytes_received = 0;
  uint64_t punctuations = 0;
};

/// The Bistro data feed manager (paper §3, Fig. 2).
///
/// Pipeline per incoming file: landing zone -> classification -> arrival
/// receipt -> normalization (rename/compress) -> staging directory ->
/// delivery scheduling -> transport -> delivery receipt -> triggers.
///
/// A BistroServer is also an Endpoint, so one server can subscribe to
/// another, forming a distributed feed delivery network (§3): pushed files
/// land in the downstream server's landing zone and flow through its own
/// pipeline.
///
/// Threading: the server runs entirely on its EventLoop. Under a SimClock
/// the whole server is deterministic; under a RealClock it runs live.
class BistroServer : public Endpoint {
 public:
  struct Options {
    Options() {}
    std::string landing_root = "/bistro/landing";
    std::string staging_root = "/bistro/staging";
    std::string db_dir = "/bistro/db";
    /// How long staged files and receipts are retained (§4.2). 0 = forever.
    Duration history_window = 0;
    /// Cadence of the window cleaner and stall checker.
    Duration maintenance_interval = kMinute;
    DeliveryEngine::Options delivery;
    /// Ingest-pipeline tuning (workers, queue bound, group-commit batch,
    /// overload policy). workers == 0 keeps ingest synchronous inline.
    /// staging_root/sync_staging/spill_path are overwritten from this
    /// struct's own fields at Create time.
    IngestPipeline::Options ingest;
    /// Receipt-database tuning (e.g. sync_wal for crash consistency).
    KvStore::Options kv;
    /// Receipt-database shard count. 0 = take the config file's
    /// `receipts { shards N; }` (default 1). See ReceiptDatabase::Open.
    int receipt_shards = 0;
    /// fsync each staged file before recording its arrival receipt, so a
    /// receipt never points at bytes a crash can take away. Off by
    /// default; chaos/crash tests and durable deployments enable it.
    bool sync_staging = false;
    /// Metrics registry shared with the embedding process (bench, daemon).
    /// When null the server owns a private registry; either way every
    /// subsystem's counters land in `metrics()`.
    MetricsRegistry* metrics = nullptr;
  };

  /// Wires a server. All dependencies are borrowed (caller owns them);
  /// `scheduler` defaults to a PartitionedScheduler if null.
  static Result<std::unique_ptr<BistroServer>> Create(
      Options options, const ServerConfig& config, FileSystem* fs,
      Transport* transport, EventLoop* loop, TriggerInvoker* invoker,
      Logger* logger, DeliveryScheduler* scheduler = nullptr);

  /// Stops the ingest pipeline's threads (if any) before members die.
  ~BistroServer() override;

  // ------------------------------------------------------------ Sources

  /// Source-facing deposit + notify (the cooperating-source protocol,
  /// §4.1): writes the file into the landing zone and ingests it
  /// immediately — no directory polling anywhere on the path.
  Status Deposit(const std::string& source, const std::string& filename,
                 std::string content);

  /// Source end-of-batch marker for a feed (§4.1 punctuation).
  void SourceEndOfBatch(const FeedName& feed, TimePoint batch_time);

  /// Picks up files deposited by non-cooperating sources that write into
  /// the landing zone without notifying. Because ingest moves files out
  /// immediately, the landing directory stays small and this scan is
  /// cheap (§4.1 "landing zones"). Returns the number ingested.
  Result<size_t> ScanLandingZone();

  // ------------------------------------------------------------ Admin

  /// Registers a new subscriber and backfills available history (§4.2).
  Status AddSubscriber(const SubscriberSpec& spec);

  /// Replaces a feed definition; files already received that match the
  /// *new* definition are re-offered to subscribers via queue
  /// recomputation (§4.2). (Reclassification applies to new arrivals.)
  Status ReviseFeed(const FeedSpec& spec);

  /// Hybrid push-pull retrieval (§4.1): a subscriber that received a
  /// kFileNotify notification pulls the file's bytes at a time of its
  /// choosing. Fails with NotFound once the file leaves the history
  /// window.
  Result<std::string> Retrieve(FileId file_id) const;

  /// Attaches an archiver node that receives periodic receipt-database
  /// snapshots during maintenance (§4.2: archivers keep "optionally
  /// undo/redo logs of delivery receipt database on tertiary storage").
  /// For feed-content archival, additionally subscribe the archiver like
  /// any subscriber. Pass nullptr to detach.
  void SetReceiptArchiver(ArchiverEndpoint* archiver) {
    receipt_archiver_ = archiver;
  }

  /// Runs one maintenance pass now: expire old files, check stalls,
  /// ship a receipt snapshot to the attached archiver (if any).
  void RunMaintenance();

  /// Starts the periodic maintenance timer on the event loop.
  void StartMaintenanceTimer();

  // ------------------------------------------------------------ Introspection

  ServerStats stats() const;
  DeliveryStats delivery_stats() const { return delivery_->stats(); }
  const SchedulerMetrics& scheduler_metrics() const {
    return delivery_->scheduler_metrics();
  }
  /// The registry holding every subsystem's metrics (owned or injected).
  MetricsRegistry* metrics() const { return metrics_; }
  /// Per-file pipeline lifecycle tracer.
  FileTracer* tracer() const { return tracer_.get(); }
  FeedRegistry* registry() { return registry_.get(); }
  ReceiptDatabase* receipts() { return receipts_.get(); }
  FeedMonitor* monitor() { return &monitor_; }
  FeedClassifier* classifier() { return classifier_.get(); }
  DeliveryEngine* delivery() { return delivery_.get(); }
  IngestPipeline* ingest() { return pipeline_.get(); }
  /// Compiled ingestion-plan runtime; null when the config has no plan
  /// blocks (plan hooks then cost nothing anywhere).
  PlanRuntime* plans() { return plans_.get(); }

  /// Names of files that matched no feed, for the analyzer (§5.1).
  /// Drains the buffer. Each observation carries a stable id (a name
  /// hash — unmatched files never receive a FileId) so the analyzer can
  /// dedupe files that are re-seen on every landing-zone scan.
  std::vector<FileObservation> DrainUnmatched();

  // ------------------------------------------------------------ Endpoint

  /// Upstream Bistro servers push into us as if we were a subscriber.
  Status HandleMessage(const Message& msg) override;

 private:
  BistroServer(Options options, FileSystem* fs, Transport* transport,
               EventLoop* loop, TriggerInvoker* invoker, Logger* logger);

  /// Counts the file and submits it to the ingest pipeline (which runs
  /// classify + normalize + stage + receipt inline or on workers).
  Status Ingest(const IncomingFile& file);

  /// Pipeline completion: trace the stages, feed the monitor, hand the
  /// staged file to delivery. Runs on the event loop in both modes.
  void OnIngestCommitted(const IngestPipeline::Committed& done);

  Options options_;
  FileSystem* fs_;
  EventLoop* loop_;
  Logger* logger_;

  /// Lifetime token: posted maintenance events check it so a destroyed
  /// server's timers become no-ops.
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);

  /// Backing registry when Options.metrics is null.
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_ = nullptr;
  std::unique_ptr<FileTracer> tracer_;

  std::unique_ptr<FeedRegistry> registry_;
  /// Must outlive delivery_ and pipeline_, which hold raw pointers to it
  /// (both are declared — and therefore destroyed — after it).
  std::unique_ptr<PlanRuntime> plans_;
  std::unique_ptr<ReceiptDatabase> receipts_;
  std::unique_ptr<FeedClassifier> classifier_;
  std::unique_ptr<DeliveryScheduler> owned_scheduler_;
  std::unique_ptr<DeliveryEngine> delivery_;
  FeedMonitor monitor_;
  ArchiverEndpoint* receipt_archiver_ = nullptr;
  uint64_t receipt_snapshot_seq_ = 0;
  Counter* files_received_;
  Counter* files_classified_;
  Counter* files_unmatched_;
  Counter* files_expired_;
  Counter* bytes_received_;
  Counter* punctuations_;
  std::vector<FileObservation> unmatched_;
  bool maintenance_running_ = false;

  /// Declared last: its worker threads call into the members above, so it
  /// must be destroyed (and its threads joined) before any of them.
  std::unique_ptr<IngestPipeline> pipeline_;
};

}  // namespace bistro

#endif  // BISTRO_CORE_SERVER_H_

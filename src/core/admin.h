#ifndef BISTRO_CORE_ADMIN_H_
#define BISTRO_CORE_ADMIN_H_

#include <string>

#include "core/server.h"

namespace bistro {

/// Renders a human-readable status report of a running server: per-feed
/// progress (files, volume, learned period, stall state), per-subscriber
/// delivery state (online/offline), pipeline counters and scheduler
/// quality metrics. The operational counterpart of the paper's
/// "extensive logging to track the status of all the feeds" (§3.2) —
/// what an operator reads when an alarm fires.
std::string RenderStatusReport(BistroServer* server);

/// Renders the delivery dead-letter queue: one line per job that
/// exhausted its retry budget, with the file, subscriber and attempt
/// count an operator needs to decide whether to redrive.
std::string RenderDeadLetters(BistroServer* server);

class FederationRuntime;

/// Executes one operator console command against a running server and
/// returns the rendered result. Commands:
///   status       — full status report (RenderStatusReport)
///   deadletters  — list parked dead-letter jobs (RenderDeadLetters)
///   redrive      — resubmit every dead-letter job with a fresh budget
///   peers        — per-peer health/wire table (needs a FederationRuntime)
///   help         — list available commands
/// Unknown commands return an error string (never crash): this is the
/// dispatch surface behind `bistrod --admin-file`. `federation` may be
/// null (non-federated daemon): `peers` then reports that no peers are
/// wired.
std::string ExecuteAdminCommand(BistroServer* server,
                                const std::string& command,
                                FederationRuntime* federation);
inline std::string ExecuteAdminCommand(BistroServer* server,
                                       const std::string& command) {
  return ExecuteAdminCommand(server, command, nullptr);
}

}  // namespace bistro

#endif  // BISTRO_CORE_ADMIN_H_

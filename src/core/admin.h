#ifndef BISTRO_CORE_ADMIN_H_
#define BISTRO_CORE_ADMIN_H_

#include <string>

#include "core/server.h"

namespace bistro {

/// Renders a human-readable status report of a running server: per-feed
/// progress (files, volume, learned period, stall state), per-subscriber
/// delivery state (online/offline), pipeline counters and scheduler
/// quality metrics. The operational counterpart of the paper's
/// "extensive logging to track the status of all the feeds" (§3.2) —
/// what an operator reads when an alarm fires.
std::string RenderStatusReport(BistroServer* server);

}  // namespace bistro

#endif  // BISTRO_CORE_ADMIN_H_

#ifndef BISTRO_CORE_ADMIN_H_
#define BISTRO_CORE_ADMIN_H_

#include <string>
#include <vector>

#include "core/server.h"
#include "fanout/group.h"
#include "fanout/relay.h"

namespace bistro {

/// Fan-out state the console renders when the embedding process wired
/// groups or relays (all optional; a plain server passes none).
struct AdminFanout {
  fanout::GroupManager* groups = nullptr;
  /// Config relay blocks (for the tree-depth view) and the live nodes
  /// hosted by this process (for spool backlog). Either may be empty.
  std::vector<RelaySpec> relay_specs;
  std::vector<const fanout::RelayNode*> relay_nodes;
};

/// Renders a human-readable status report of a running server: per-feed
/// progress (files, volume, learned period, stall state), per-subscriber
/// delivery state (online/offline), pipeline counters and scheduler
/// quality metrics. The operational counterpart of the paper's
/// "extensive logging to track the status of all the feeds" (§3.2) —
/// what an operator reads when an alarm fires. When `groups` is wired, a
/// one-line group rollup joins the delivery section.
std::string RenderStatusReport(BistroServer* server,
                               fanout::GroupManager* groups = nullptr);

/// Renders the fan-out view behind the `subscriptions` command: each
/// subscriber group's member count, shared delivery cursor, straggler
/// lag and per-member state, plus each relay's tree depth, children and
/// (for relays hosted in this process) live spool backlog.
std::string RenderSubscriptions(BistroServer* server,
                                const AdminFanout& fanout);

/// Renders the delivery dead-letter queue: one line per job that
/// exhausted its retry budget, with the file, subscriber and attempt
/// count an operator needs to decide whether to redrive.
std::string RenderDeadLetters(BistroServer* server);

/// Renders the compiled ingestion-plan table (the `plans` command): each
/// governed feed's lowered stage configuration (quota, sampling,
/// transform, routing/split, SLO class) plus the runtime's counters
/// (rebuilds, quota sheds, sampled-out drops, filtered deliveries).
std::string RenderPlans(BistroServer* server);

class FederationRuntime;

/// Executes one operator console command against a running server and
/// returns the rendered result. Commands:
///   status        — full status report (RenderStatusReport)
///   subscriptions — group/relay fan-out view (RenderSubscriptions)
///   deadletters   — list parked dead-letter jobs (RenderDeadLetters)
///   redrive       — resubmit every dead-letter job with a fresh budget
///   peers         — per-peer health/wire table (needs a FederationRuntime)
///   plans         — compiled ingestion-plan table (RenderPlans)
///   help          — list available commands
/// Unknown commands return an error string (never crash): this is the
/// dispatch surface behind `bistrod --admin-file`. `federation` may be
/// null (non-federated daemon): `peers` then reports that no peers are
/// wired; likewise `fanout` defaults to empty for a plain server.
std::string ExecuteAdminCommand(BistroServer* server,
                                const std::string& command,
                                FederationRuntime* federation,
                                const AdminFanout& fanout);
inline std::string ExecuteAdminCommand(BistroServer* server,
                                       const std::string& command,
                                       FederationRuntime* federation) {
  return ExecuteAdminCommand(server, command, federation, AdminFanout());
}
inline std::string ExecuteAdminCommand(BistroServer* server,
                                       const std::string& command) {
  return ExecuteAdminCommand(server, command, nullptr, AdminFanout());
}

}  // namespace bistro

#endif  // BISTRO_CORE_ADMIN_H_

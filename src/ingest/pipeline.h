#ifndef BISTRO_INGEST_PIPELINE_H_
#define BISTRO_INGEST_PIPELINE_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "classify/classifier.h"
#include "common/logging.h"
#include "config/registry.h"
#include "core/types.h"
#include "kv/receipts.h"
#include "obs/metrics.h"
#include "sim/event_loop.h"
#include "vfs/filesystem.h"

namespace bistro {

class PlanRuntime;

/// What the admit stage does when the pipeline's bounded queues are full
/// (paper §4.1: the server must absorb bursty arrivals without falling
/// over; INGESTBASE-style staged ingestion makes the policy explicit).
enum class OverloadPolicy {
  /// Submit() blocks until space frees: backpressure propagates to the
  /// depositing source. The default — no file is ever deferred.
  kBlock,
  /// Drop the *oldest* queued file to admit the new one. The dropped
  /// file's landing copy stays in place, so a later landing-zone scan
  /// re-admits it; freshest data flows first under overload.
  kShedOldest,
  /// Park the new file in an in-memory spill queue (journaled to disk
  /// for operators) and admit it automatically once the queues drain.
  /// Nothing is dropped, but spilled files may be reordered relative to
  /// files admitted while they waited.
  kSpillToDisk,
};

std::string_view OverloadPolicyName(OverloadPolicy policy);
Result<OverloadPolicy> OverloadPolicyFromName(std::string_view name);

/// By-value snapshot of the pipeline's counters and queue depths.
struct IngestStats {
  uint64_t admitted = 0;
  uint64_t committed = 0;
  uint64_t unmatched = 0;
  uint64_t shed = 0;
  uint64_t spilled = 0;
  uint64_t blocked = 0;
  uint64_t errors = 0;
  size_t queue_depth = 0;          // files in the classify/worker queues
  size_t receipt_queue_depth = 0;  // staged files awaiting group commit
  size_t spill_depth = 0;
  size_t in_flight = 0;            // admitted but not yet terminal
};

/// The staged ingest pipeline (replaces the synchronous per-file path in
/// BistroServer::Ingest):
///
///   admit -> classify -> [shard by feed] -> normalize/compress/stage
///         -> group-committed arrival receipts -> scheduler handoff
///
/// Two modes, selected by Options::workers:
///
///  - workers == 0 (default): every stage runs inline inside Submit() on
///    the caller's thread. Fully deterministic under a SimClock — the
///    mode every simulation-driven test and example uses.
///  - workers >= 1: Submit() classifies and enqueues, then returns. Files
///    are sharded onto workers by a hash of their primary feed name, so
///    one feed's files stay FIFO through one worker (per-feed arrival
///    order is preserved) while distinct feeds proceed in parallel. A
///    dedicated receipt thread batches staged files and commits their
///    arrival receipts as a group — one WAL append + one fsync per group
///    (classic group commit: while one fsync runs, arrivals accumulate
///    into the next group). Completions are posted to the EventLoop, so
///    all server state mutation stays on the loop thread.
///
/// Crash consistency (both modes): stage write (+ optional fsync) first,
/// then the receipt group commit, then landing-file deletion. A crash
/// before the commit leaves the landing file for the rescan; a crash
/// after it is caught by the receipt database's name index (the scan
/// skips files that already have a receipt); a crash between commit and
/// scheduler handoff is recovered by the startup backfill, which
/// recomputes delivery queues from receipts.
class IngestPipeline {
 public:
  struct Options {
    Options() {}
    /// Normalize/compress worker threads; 0 = synchronous inline mode.
    int workers = 0;
    /// Bound on files queued toward the workers before the overload
    /// policy engages (threaded mode only).
    size_t queue_depth = 256;
    /// Max arrival receipts per group commit.
    size_t batch = 32;
    OverloadPolicy overload_policy = OverloadPolicy::kBlock;
    /// Staging layout + durability (copied from the server's options).
    std::string staging_root = "/bistro/staging";
    bool sync_staging = false;
    /// Operator-visible journal of spilled files (kSpillToDisk).
    std::string spill_path = "/bistro/db/ingest.spill";
  };

  /// One committed file, handed back through the committed callback. The
  /// timestamps are when each stage finished (all equal in sync mode,
  /// where the stages complete within one Submit call).
  struct Committed {
    StagedFile staged;
    TimePoint classify_at = 0;
    TimePoint normalize_at = 0;
    TimePoint stage_at = 0;
    TimePoint receipt_at = 0;
  };

  using ClassifiedCallback = std::function<void(const IncomingFile&)>;
  using UnmatchedCallback = std::function<void(const IncomingFile&)>;
  using CommittedCallback = std::function<void(const Committed&)>;
  using ErrorCallback =
      std::function<void(const IncomingFile&, const Status&)>;

  /// All dependencies are borrowed. `metrics` may be null (the pipeline
  /// then keeps a private registry so stats() still works). Call
  /// SetCallbacks then Start before submitting.
  IngestPipeline(Options options, FileSystem* fs, FeedClassifier* classifier,
                 const FeedRegistry* registry, ReceiptDatabase* receipts,
                 EventLoop* loop, Logger* logger, MetricsRegistry* metrics);
  ~IngestPipeline();

  IngestPipeline(const IngestPipeline&) = delete;
  IngestPipeline& operator=(const IngestPipeline&) = delete;

  /// Callbacks fire inline in sync mode and on the EventLoop in threaded
  /// mode (classified/unmatched fire on the submitting thread in both).
  void SetCallbacks(ClassifiedCallback on_classified,
                    UnmatchedCallback on_unmatched,
                    CommittedCallback on_committed, ErrorCallback on_error);

  /// Attaches the compiled ingestion-plan table (may be null: no plans,
  /// exact legacy behavior). The plan hooks run after classification
  /// (sampling, quota admission) and in the worker stage (transform
  /// override, enrichment). Call before Start.
  void AttachPlans(PlanRuntime* plans) { plans_ = plans; }

  /// Spawns worker + receipt threads (no-op in sync mode).
  void Start();

  /// Admits one landed file. Sync mode: runs the whole pipeline inline
  /// and returns its outcome. Threaded mode: classifies, enqueues (or
  /// applies the overload policy) and returns; failures downstream are
  /// reported through the error callback and counted, and the landing
  /// file is left in place for the rescan to retry.
  Status Submit(const IncomingFile& file);

  /// True while `landing_path` is admitted but not yet terminal — the
  /// landing-zone scan uses this to avoid double-admitting.
  bool InFlight(const std::string& landing_path) const;

  /// Blocks until every admitted file reached a terminal state (committed
  /// or errored) and the spill queue drained. Completion callbacks may
  /// still be queued on the EventLoop afterwards — run the loop to
  /// deliver them. No-op in sync mode.
  void WaitIdle();

  /// Stops the threads. Queued (not yet staged) files are dropped — their
  /// landing files persist, so a restart's scan re-admits them; staged
  /// files already in the receipt queue are still committed.
  void Shutdown();

  /// Rebuilds the classifier under the pipeline's definition lock (feed
  /// revision must not race in-flight classification/normalization).
  void RebuildClassifier();

  bool threaded() const { return options_.workers > 0; }
  const Options& options() const { return options_; }
  IngestStats stats() const;

 private:
  struct Item {
    IncomingFile file;
    uint64_t seq = 0;  // admission order, for shed-oldest
    Classification c;
    TimePoint classify_at = 0;
    // Filled by the normalize/stage worker:
    std::string rel_path;
    std::string staged_path;
    uint64_t staged_size = 0;
    TimePoint data_time = 0;
    TimePoint normalize_at = 0;
    TimePoint stage_at = 0;
  };

  struct Shard {
    std::deque<Item> items;
  };

  Status IngestSync(const IncomingFile& file);
  /// Runs the plan admission hooks (sampling, quota) over a fresh
  /// classification. Returns false when the file must not proceed; the
  /// landing file is deleted for deterministic (sampling) drops and kept
  /// for quota deferrals so the rescan retries them.
  bool AdmitByPlan(const IncomingFile& file, Classification* c);
  Status Admit(Item item);
  void WorkerLoop(size_t shard_index);
  void ReceiptLoop();
  /// Read + normalize + stage one item (worker stage).
  Status StageItem(Item* item);
  /// Group-commit receipts for `group`, delete landing files, post
  /// completions.
  void CommitGroup(std::vector<Item> group);
  void FinishError(const Item& item, const Status& status);
  void DrainSpillLocked();
  void EraseInFlightLocked(const std::string& landing_path);
  Classification ClassifyLocked(const std::string& name);
  size_t ShardIndex(const FeedName& feed) const;
  ArrivalReceipt MakeReceipt(const Item& item) const;
  Committed BuildCommitted(const Item& item, const ArrivalReceipt& receipt,
                           TimePoint receipt_at) const;

  Options options_;
  FileSystem* fs_;
  FeedClassifier* classifier_;
  const FeedRegistry* registry_;
  ReceiptDatabase* receipts_;
  EventLoop* loop_;
  Clock* clock_;
  Logger* logger_;
  PlanRuntime* plans_ = nullptr;  // optional; see AttachPlans

  ClassifiedCallback on_classified_;
  UnmatchedCallback on_unmatched_;
  CommittedCallback on_committed_;
  ErrorCallback on_error_;

  /// Guards feed definitions: the worker's registry/normalizer reads
  /// take it shared, RebuildClassifier takes it exclusive. Classification
  /// takes the shared side only in linear/trie modes, which probe
  /// registry-owned Pattern objects; automaton mode classifies against an
  /// immutable shared_ptr snapshot (ClassifySnapshot) and skips this lock
  /// entirely.
  mutable std::shared_mutex defs_mu_;

  /// Guards every queue + the in-flight set below.
  mutable std::mutex mu_;
  std::vector<Shard> shards_;
  std::deque<Item> receipt_q_;
  std::deque<Item> spill_;
  /// Landing paths held by the pipeline. A multiset: the same path can be
  /// deposited again while its predecessor is still in flight, and each
  /// admission must be tracked independently.
  std::multiset<std::string> in_flight_;
  size_t queued_total_ = 0;  // items across all shards
  uint64_t next_seq_ = 0;
  size_t live_workers_ = 0;  // receipt thread drains until workers exit
  bool shutdown_ = false;
  bool started_ = false;
  std::condition_variable work_cv_;     // workers: shard queues non-empty
  std::condition_variable space_cv_;    // submitters: shard space freed
  std::condition_variable receipt_cv_;  // receipt thread: queue non-empty
  std::condition_variable receipt_space_cv_;  // workers: receipt space
  std::condition_variable idle_cv_;     // WaitIdle: in-flight drained

  std::vector<std::thread> workers_;
  std::thread receipt_thread_;

  /// Lifetime token for the metrics collect hook (the registry may
  /// outlive the pipeline).
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);

  /// Fallback registry when the caller passes none, so the counters below
  /// are always valid (stats() reads them).
  std::unique_ptr<MetricsRegistry> owned_metrics_;

  Counter* admitted_ = nullptr;
  Counter* committed_ = nullptr;
  Counter* unmatched_ = nullptr;
  Counter* shed_ = nullptr;
  Counter* spilled_ = nullptr;
  Counter* blocked_ = nullptr;
  Counter* errors_ = nullptr;
  Histogram* commit_batch_size_ = nullptr;
};

}  // namespace bistro

#endif  // BISTRO_INGEST_PIPELINE_H_

#ifndef BISTRO_INGEST_PLAN_H_
#define BISTRO_INGEST_PLAN_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "classify/classifier.h"
#include "config/registry.h"
#include "core/types.h"
#include "obs/metrics.h"
#include "pattern/normalizer.h"

namespace bistro {

/// Deterministic token bucket backing a plan's admission quota. Tokens
/// refill continuously at capacity-per-interval; both budgets (files,
/// bytes) share one bucket so a file is admitted atomically or not at
/// all. Driven by the event-loop clock, so it is exactly reproducible
/// under simulated time. Buckets survive plan recompilation (the runtime
/// keys them by plan selector), so a registry bump never refunds tokens.
class QuotaBucket {
 public:
  /// `files` / `bytes` <= 0 disables that budget.
  QuotaBucket(int64_t files, int64_t bytes, Duration interval);

  /// Admits one file of `size` bytes at `now`, consuming tokens, or
  /// refuses it leaving the bucket untouched.
  bool TryAdmit(TimePoint now, uint64_t size);

  int64_t file_capacity() const { return file_capacity_; }
  int64_t byte_capacity() const { return byte_capacity_; }
  Duration interval() const { return interval_; }

 private:
  void RefillLocked(TimePoint now);

  std::mutex mu_;
  const int64_t file_capacity_;
  const int64_t byte_capacity_;
  const Duration interval_;
  double file_tokens_;
  double byte_tokens_;
  TimePoint last_ = 0;
  bool primed_ = false;
};

/// Worker-stage enrichment hooks a plan may request.
enum class EnrichOp {
  kProvenance,  // prepend "#bistro-provenance feed=... arrival=..." header
  kChecksum,    // prepend "#bistro-crc32 <hex>" header over the content
};

/// One feed's lowered stage configuration: the result of resolving every
/// plan block that covers the feed (most specific selector wins per
/// attribute) into what each pipeline stage consumes directly.
struct FeedPlan {
  FeedName feed;
  FeedName selector;          // the winning plan block (for rendering)
  /// Admit stage: shared token bucket (null = no quota). Shared across
  /// every feed lowered from the same plan block — a group-prefix plan's
  /// quota is one budget for the whole subtree (multi-tenant semantics).
  std::shared_ptr<QuotaBucket> quota;
  /// Classify stage: basis points (of 10000) of files kept. Files are
  /// chosen by a deterministic hash of (feed, name), so replays and
  /// rescans make the same choice.
  int sample_keep_bp = 10000;
  /// Worker stage: normalizer overriding the feed's own (compiled from
  /// the feed spec with the plan's transform applied).
  std::optional<Normalizer> transform;
  std::vector<EnrichOp> enrich;
  /// Delivery stage: restrict fan-out to these identities (empty = all).
  std::vector<std::string> route;
  /// Duplicate-delivery split: a file goes to exactly one arm, chosen by
  /// name hash mod 100 against the cumulative percent table.
  std::vector<PlanSplitArm> split;
  /// Scheduler: deadline = arrival + tardiness * scale_num / scale_den.
  int deadline_scale_num = 1;
  int deadline_scale_den = 1;
  std::string slo;      // "", "interactive", "standard", "bulk"
  int replicate = 0;    // validated redundancy requirement (0 = unset)
};

/// An immutable compiled plan table, published RCU-style: readers grab
/// the shared_ptr and use it lock-free; rebuilds swap in a fresh table.
struct CompiledPlans {
  uint64_t registry_version = 0;  // what this table was compiled against
  std::map<FeedName, FeedPlan> feeds;

  const FeedPlan* Find(const FeedName& feed) const {
    auto it = feeds.find(feed);
    return it == feeds.end() ? nullptr : &it->second;
  }
};

/// Validation context: the delivery identities route/split may name and
/// the size of the peer fleet replicate is checked against.
struct PlanContext {
  std::vector<std::string> delivery_targets;
  size_t peer_count = 0;
};

/// Builds the context from a parsed config: subscribers, groups and
/// peers all share the delivery namespace.
PlanContext PlanContextFromConfig(const ServerConfig& config);

/// Validates `plans` against the registry and lowers them onto concrete
/// feeds. Rejects: a selector matching no feed or group, route/split
/// targets outside the delivery namespace, replicate above the peer
/// fleet, and two plan blocks both budgeting quota for one feed (a
/// feed's admission budget must come from exactly one plan). `buckets`
/// carries token-bucket state across recompilations (may be null: fresh
/// buckets, used by one-shot validation).
Result<std::shared_ptr<const CompiledPlans>> CompilePlans(
    const std::vector<PlanSpec>& plans, const FeedRegistry& registry,
    const PlanContext& context,
    std::map<FeedName, std::shared_ptr<QuotaBucket>>* buckets = nullptr);

/// By-value snapshot of the runtime's counters (admin `plans` command).
struct PlanStats {
  size_t governed_feeds = 0;
  uint64_t snapshot_version = 0;
  uint64_t rebuilds = 0;
  uint64_t rebuild_errors = 0;
  uint64_t quota_shed = 0;
  uint64_t sampled_out = 0;
  uint64_t route_filtered = 0;
  uint64_t split_routed = 0;
  uint64_t enriched = 0;
  uint64_t transformed = 0;
};

/// The live plan table: compiles the config's plan blocks against the
/// registry, publishes the result as an immutable snapshot, and rebuilds
/// lazily when the registry version moves (same idiom as the classifier
/// automaton and the subscription index). The ingest pipeline and the
/// delivery engine consult it on their hot paths; a null runtime (no
/// plans configured) costs nothing.
///
/// Thread contract: snapshot() and the hook methods are callable from
/// pipeline workers and the event loop concurrently. Rebuilds read the
/// registry, so callers on the ingest side invoke the hooks under the
/// pipeline's shared definitions lock (the same protection the
/// normalizer reads get); the delivery side shares the loop thread with
/// every registry mutation.
class PlanRuntime {
 public:
  PlanRuntime(std::vector<PlanSpec> plans, const FeedRegistry* registry,
              PlanContext context);

  /// Compiles now; the config-load error surface (BistroServer::Create
  /// fails on a plan that does not validate).
  Status Validate();

  /// Current compiled table, rebuilding first if the registry moved.
  /// A failed rebuild keeps serving the previous table (stale but safe)
  /// and counts bistro_plan_rebuild_errors_total.
  std::shared_ptr<const CompiledPlans> snapshot();

  /// Registers bistro_plan_* series.
  void AttachMetrics(MetricsRegistry* registry);

  // ------------------------------------------------- ingest-stage hooks

  /// What admission decided for a file after plan filtering.
  enum class ArrivalDecision {
    kAdmit,    // at least one feed survived; c->feeds holds the survivors
    kDefer,    // every feed refused by quota: leave the landing file so a
               // later rescan retries it once tokens refill
    kDiscard,  // every feed sampled out: the choice is a deterministic
               // hash, so retrying can never change it — drop the file
  };

  /// Applies sampling and quota to a fresh classification. Feeds the
  /// file was sampled out of (or that are over budget) are removed,
  /// and the primary match is refreshed when the leading feed changes.
  ArrivalDecision FilterArrival(const IncomingFile& file, TimePoint now,
                                Classification* c);

  /// Runs the plan's enrichment hooks over `content` (before the format
  /// transform, so headers compress with the payload).
  void Enrich(const FeedPlan& fp, const IncomingFile& file,
              const FeedName& feed, std::string* content);

  /// Counts one worker-stage transform override application.
  void NoteTransformed() { transformed_->Increment(); }

  // ----------------------------------------------- delivery-stage hooks

  /// Whether `sub` should receive `file_name` on `feed` under the plan's
  /// routing and split rules. True when the feed has no plan.
  bool AllowsDelivery(const FeedName& feed, const std::string& file_name,
                      const SubscriberName& sub);

  /// The feed's delivery deadline bound after SLO scaling.
  Duration TardinessFor(const FeedName& feed, Duration base);

  PlanStats stats();

 private:
  std::shared_ptr<const CompiledPlans> Rebuild();

  std::mutex mu_;
  const std::vector<PlanSpec> plans_;
  const FeedRegistry* registry_;
  const PlanContext context_;
  std::shared_ptr<const CompiledPlans> snap_;
  /// Registry version of the last failed rebuild, so a persistently
  /// broken revision is not recompiled on every lookup. Unset until a
  /// rebuild fails (version 0 is a legitimate registry version).
  std::optional<uint64_t> failed_version_;
  /// Token buckets keyed by plan selector; survive recompilation.
  std::map<FeedName, std::shared_ptr<QuotaBucket>> buckets_;

  /// Fallback registry so the counters below always exist.
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  Counter* rebuilds_ = nullptr;
  Counter* rebuild_errors_ = nullptr;
  Counter* quota_shed_ = nullptr;
  Counter* sampled_out_ = nullptr;
  Counter* route_filtered_ = nullptr;
  Counter* split_routed_ = nullptr;
  Counter* enriched_ = nullptr;
  Counter* transformed_ = nullptr;
  Gauge* governed_gauge_ = nullptr;
};

/// The deterministic choices the plan hooks make, exposed so tests and
/// documentation can state them exactly.
///
/// A file stays in a sampled feed iff
///   Fnv1a64("sample|" + feed + "|" + name) % 10000 < sample_keep_bp.
bool PlanSampleKeeps(const FeedName& feed, const std::string& name,
                     int sample_keep_bp);
/// A split file goes to the arm whose cumulative percent range contains
///   Fnv1a64("split|" + name) % 100.
const PlanSplitArm* PlanSplitArmFor(const std::vector<PlanSplitArm>& arms,
                                    const std::string& name);

}  // namespace bistro

#endif  // BISTRO_INGEST_PLAN_H_

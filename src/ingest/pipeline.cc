#include "ingest/pipeline.h"

#include <algorithm>

#include "common/hash.h"
#include "ingest/plan.h"
#include "pattern/normalizer.h"

namespace bistro {

std::string_view OverloadPolicyName(OverloadPolicy policy) {
  switch (policy) {
    case OverloadPolicy::kBlock:
      return "block";
    case OverloadPolicy::kShedOldest:
      return "shed_oldest";
    case OverloadPolicy::kSpillToDisk:
      return "spill";
  }
  return "block";
}

Result<OverloadPolicy> OverloadPolicyFromName(std::string_view name) {
  if (name == "block") return OverloadPolicy::kBlock;
  if (name == "shed_oldest") return OverloadPolicy::kShedOldest;
  if (name == "spill") return OverloadPolicy::kSpillToDisk;
  return Status::InvalidArgument("unknown overload policy: " +
                                 std::string(name));
}

IngestPipeline::IngestPipeline(Options options, FileSystem* fs,
                               FeedClassifier* classifier,
                               const FeedRegistry* registry,
                               ReceiptDatabase* receipts, EventLoop* loop,
                               Logger* logger, MetricsRegistry* metrics)
    : options_(std::move(options)),
      fs_(fs),
      classifier_(classifier),
      registry_(registry),
      receipts_(receipts),
      loop_(loop),
      clock_(loop->clock()),
      logger_(logger) {
  if (options_.workers < 0) options_.workers = 0;
  if (options_.queue_depth == 0) options_.queue_depth = 1;
  if (options_.batch == 0) options_.batch = 1;
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  admitted_ = metrics->GetCounter("bistro_ingest_admitted_total",
                                  "Files admitted into the ingest pipeline");
  committed_ = metrics->GetCounter(
      "bistro_ingest_committed_total",
      "Files whose arrival receipt reached durable storage");
  unmatched_ = metrics->GetCounter(
      "bistro_ingest_unmatched_total",
      "Files the classify stage matched to no feed");
  shed_ = metrics->GetCounter(
      "bistro_ingest_shed_total",
      "Oldest queued files evicted under the shed_oldest overload policy");
  spilled_ = metrics->GetCounter(
      "bistro_ingest_spilled_total",
      "Files parked in the spill queue under the spill overload policy");
  blocked_ = metrics->GetCounter(
      "bistro_ingest_blocked_total",
      "Submit calls that blocked on a full queue (block overload policy)");
  errors_ = metrics->GetCounter(
      "bistro_ingest_errors_total",
      "Files that failed a pipeline stage (left in landing for rescan)");
  Histogram::Options batch_opts;
  batch_opts.min_bound = 1;
  batch_opts.num_buckets = 12;  // covers group sizes up to 4096
  commit_batch_size_ = metrics->GetHistogram(
      "bistro_ingest_commit_batch_size",
      "Arrival receipts per group commit (one fsync each)", batch_opts);
  Gauge* queue_gauge = metrics->GetGauge(
      "bistro_ingest_queue_depth", "Files queued toward the ingest workers");
  Gauge* receipt_gauge =
      metrics->GetGauge("bistro_ingest_receipt_queue_depth",
                        "Staged files awaiting receipt group commit");
  Gauge* spill_gauge = metrics->GetGauge("bistro_ingest_spill_depth",
                                         "Files parked in the spill queue");
  Gauge* inflight_gauge = metrics->GetGauge(
      "bistro_ingest_in_flight", "Admitted files not yet committed or failed");
  metrics->AddCollectHook([weak = std::weak_ptr<char>(alive_), this,
                           queue_gauge, receipt_gauge, spill_gauge,
                           inflight_gauge] {
    if (!weak.lock()) return;
    IngestStats s = stats();
    queue_gauge->Set(static_cast<int64_t>(s.queue_depth));
    receipt_gauge->Set(static_cast<int64_t>(s.receipt_queue_depth));
    spill_gauge->Set(static_cast<int64_t>(s.spill_depth));
    inflight_gauge->Set(static_cast<int64_t>(s.in_flight));
  });
  if (threaded()) shards_.resize(static_cast<size_t>(options_.workers));
}

IngestPipeline::~IngestPipeline() { Shutdown(); }

void IngestPipeline::SetCallbacks(ClassifiedCallback on_classified,
                                  UnmatchedCallback on_unmatched,
                                  CommittedCallback on_committed,
                                  ErrorCallback on_error) {
  on_classified_ = std::move(on_classified);
  on_unmatched_ = std::move(on_unmatched);
  on_committed_ = std::move(on_committed);
  on_error_ = std::move(on_error);
}

void IngestPipeline::Start() {
  if (!threaded()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_ || shutdown_) return;
    started_ = true;
    live_workers_ = static_cast<size_t>(options_.workers);
  }
  // A previous process's spill journal describes files that are back in
  // the landing zone now; it is stale the moment we boot.
  (void)fs_->Delete(options_.spill_path);
  workers_.reserve(static_cast<size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back(&IngestPipeline::WorkerLoop, this,
                          static_cast<size_t>(i));
  }
  receipt_thread_ = std::thread(&IngestPipeline::ReceiptLoop, this);
}

Classification IngestPipeline::ClassifyLocked(const std::string& name) {
  // Automaton mode classifies against an immutable snapshot the worker
  // grabs with one atomic load — no lock at all, so a concurrent
  // RebuildClassifier (which compiles a new snapshot and swaps it in)
  // never stalls the ingest path. Other modes walk registry-owned
  // pattern objects, so they still need the shared side of the
  // definitions lock against RebuildClassifier's exclusive side.
  if (classifier_->mode() == FeedClassifier::IndexMode::kAutomaton) {
    return classifier_->ClassifySnapshot(name);
  }
  std::shared_lock<std::shared_mutex> lock(defs_mu_);
  return classifier_->Classify(name);
}

size_t IngestPipeline::ShardIndex(const FeedName& feed) const {
  return static_cast<size_t>(Fnv1a64(feed) % shards_.size());
}

Status IngestPipeline::Submit(const IncomingFile& file) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return Status::Unavailable("ingest pipeline shut down");
  }
  if (!threaded()) return IngestSync(file);

  Classification c = ClassifyLocked(file.name);
  if (!c.matched()) {
    unmatched_->Increment();
    if (on_unmatched_) on_unmatched_(file);
    return Status::OK();
  }
  if (!AdmitByPlan(file, &c)) return Status::OK();
  if (on_classified_) on_classified_(file);
  Item item;
  item.file = file;
  item.c = std::move(c);
  item.classify_at = clock_->Now();
  return Admit(std::move(item));
}

bool IngestPipeline::AdmitByPlan(const IncomingFile& file, Classification* c) {
  if (plans_ == nullptr) return true;
  PlanRuntime::ArrivalDecision decision;
  {
    // Shared: the plan hook reads the registry (lazy rebuild, primary
    // match refresh), the same reads the worker stage protects this way.
    std::shared_lock<std::shared_mutex> lock(defs_mu_);
    decision = plans_->FilterArrival(file, clock_->Now(), c);
  }
  switch (decision) {
    case PlanRuntime::ArrivalDecision::kAdmit:
      return true;
    case PlanRuntime::ArrivalDecision::kDefer:
      // Over budget on every feed: the landing file stays put so the
      // landing-zone rescan retries it once quota tokens refill.
      return false;
    case PlanRuntime::ArrivalDecision::kDiscard: {
      // Sampled out of every feed — a deterministic choice a retry can
      // never reverse, so drop the landing file too.
      Status removed = fs_->Delete(file.landing_path);
      if (!removed.ok() && !removed.IsNotFound()) {
        logger_->Warning("ingest", "failed to remove sampled-out file " +
                                       file.landing_path + ": " +
                                       removed.ToString());
      }
      return false;
    }
  }
  return true;
}

Status IngestPipeline::Admit(Item item) {
  std::unique_lock<std::mutex> lock(mu_);
  if (shutdown_) return Status::Unavailable("ingest pipeline shut down");
  if (queued_total_ >= options_.queue_depth) {
    switch (options_.overload_policy) {
      case OverloadPolicy::kBlock: {
        blocked_->Increment();
        space_cv_.wait(lock, [this] {
          return shutdown_ || queued_total_ < options_.queue_depth;
        });
        if (shutdown_) return Status::Unavailable("ingest pipeline shut down");
        break;
      }
      case OverloadPolicy::kShedOldest: {
        // Evict the globally oldest queued (not yet active) file; its
        // landing copy stays behind, so a rescan re-admits it later.
        Shard* oldest_shard = nullptr;
        for (Shard& shard : shards_) {
          if (shard.items.empty()) continue;
          if (oldest_shard == nullptr ||
              shard.items.front().seq < oldest_shard->items.front().seq) {
            oldest_shard = &shard;
          }
        }
        if (oldest_shard != nullptr) {
          Item victim = std::move(oldest_shard->items.front());
          oldest_shard->items.pop_front();
          --queued_total_;
          EraseInFlightLocked(victim.file.landing_path);
          shed_->Increment();
          logger_->Warning("ingest", "overload: shed oldest queued file " +
                                      victim.file.name);
        }
        break;
      }
      case OverloadPolicy::kSpillToDisk: {
        admitted_->Increment();
        spilled_->Increment();
        in_flight_.insert(item.file.landing_path);
        std::string journal_line =
            item.file.name + '\t' + item.file.landing_path + '\n';
        spill_.push_back(std::move(item));
        lock.unlock();
        // The journal is observational (operators inspecting an overloaded
        // server); recovery relies on the landing files themselves.
        Status journaled = fs_->AppendFile(options_.spill_path, journal_line);
        if (!journaled.ok()) {
          logger_->Warning("ingest",
                        "spill journal append failed: " + journaled.ToString());
        }
        return Status::OK();
      }
    }
  }
  admitted_->Increment();
  item.seq = next_seq_++;
  in_flight_.insert(item.file.landing_path);
  size_t si = ShardIndex(item.c.feeds.front());
  shards_[si].items.push_back(std::move(item));
  ++queued_total_;
  work_cv_.notify_all();
  return Status::OK();
}

void IngestPipeline::DrainSpillLocked() {
  while (!spill_.empty() && queued_total_ < options_.queue_depth) {
    Item item = std::move(spill_.front());
    spill_.pop_front();
    item.seq = next_seq_++;
    size_t si = ShardIndex(item.c.feeds.front());
    shards_[si].items.push_back(std::move(item));
    ++queued_total_;
    work_cv_.notify_all();
  }
}

void IngestPipeline::EraseInFlightLocked(const std::string& landing_path) {
  auto it = in_flight_.find(landing_path);
  if (it != in_flight_.end()) in_flight_.erase(it);
  if (in_flight_.empty()) idle_cv_.notify_all();
}

void IngestPipeline::WorkerLoop(size_t shard_index) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this, shard_index] {
      return shutdown_ || !shards_[shard_index].items.empty();
    });
    if (shutdown_) break;  // queued items drop; landing files persist
    Item item = std::move(shards_[shard_index].items.front());
    shards_[shard_index].items.pop_front();
    --queued_total_;
    DrainSpillLocked();
    space_cv_.notify_all();
    lock.unlock();

    Status staged = StageItem(&item);
    if (staged.ok()) {
      lock.lock();
      receipt_space_cv_.wait(lock, [this] {
        return shutdown_ || receipt_q_.size() < options_.queue_depth;
      });
      // Push even during shutdown: the item is staged, so committing its
      // receipt is strictly better than redoing the work after restart.
      receipt_q_.push_back(std::move(item));
      receipt_cv_.notify_all();
    } else {
      FinishError(item, staged);
      lock.lock();
    }
  }
  --live_workers_;
  receipt_cv_.notify_all();
}

Status IngestPipeline::StageItem(Item* item) {
  BISTRO_ASSIGN_OR_RETURN(std::string content,
                          fs_->ReadFile(item->file.landing_path));
  FeedName feed_name;
  Normalizer normalizer;
  std::shared_ptr<const CompiledPlans> plan_snap;
  const FeedPlan* fp = nullptr;
  {
    // Shared: many workers may read feed definitions concurrently; feed
    // revision (RebuildClassifier) takes the exclusive side. The
    // normalizer is copied out so compression runs without the lock.
    std::shared_lock<std::shared_mutex> lock(defs_mu_);
    const RegisteredFeed* primary = registry_->FindFeed(item->c.feeds.front());
    if (primary == nullptr) {
      return Status::Internal("classified into unknown feed: " +
                              item->c.feeds.front());
    }
    feed_name = primary->spec.name;
    normalizer = primary->normalizer;
    if (plans_ != nullptr) {
      plan_snap = plans_->snapshot();  // held so `fp` stays valid unlocked
      fp = plan_snap ? plan_snap->Find(feed_name) : nullptr;
      if (fp != nullptr && fp->transform) {
        normalizer = *fp->transform;
        plans_->NoteTransformed();
      }
    }
  }
  if (fp != nullptr && !fp->enrich.empty()) {
    // Enrichment precedes the format transform so headers are part of
    // the (possibly compressed) staged payload.
    plans_->Enrich(*fp, item->file, feed_name, &content);
  }
  BISTRO_ASSIGN_OR_RETURN(
      NormalizedFile normalized,
      normalizer.Apply(item->file.name, item->c.primary_match,
                       std::move(content)));
  item->normalize_at = clock_->Now();
  item->data_time = item->c.primary_match.timestamp.value_or(0);
  item->rel_path = path::Join(feed_name, normalized.relative_path);
  item->staged_path = path::Join(options_.staging_root, item->rel_path);
  item->staged_size = normalized.content.size();
  BISTRO_RETURN_IF_ERROR(fs_->WriteFile(item->staged_path, normalized.content));
  if (options_.sync_staging) {
    BISTRO_RETURN_IF_ERROR(fs_->Sync(item->staged_path));
  }
  item->stage_at = clock_->Now();
  return Status::OK();
}

void IngestPipeline::ReceiptLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    receipt_cv_.wait(lock, [this] {
      return !receipt_q_.empty() || (shutdown_ && live_workers_ == 0);
    });
    if (receipt_q_.empty()) break;  // shutdown and workers are done
    std::vector<Item> group;
    size_t n = std::min(options_.batch, receipt_q_.size());
    group.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      group.push_back(std::move(receipt_q_.front()));
      receipt_q_.pop_front();
    }
    receipt_space_cv_.notify_all();
    lock.unlock();
    CommitGroup(std::move(group));
    lock.lock();
  }
}

void IngestPipeline::CommitGroup(std::vector<Item> group) {
  std::vector<ArrivalReceipt> receipts;
  receipts.reserve(group.size());
  for (const Item& item : group) receipts.push_back(MakeReceipt(item));
  Status committed = receipts_->RecordArrivalGroup(&receipts);
  if (!committed.ok()) {
    // Nothing durable happened (the whole group rolls back); every
    // landing file survives for the rescan to retry.
    for (const Item& item : group) FinishError(item, committed);
    return;
  }
  commit_batch_size_->Record(static_cast<int64_t>(group.size()));
  TimePoint receipt_at = clock_->Now();
  for (size_t i = 0; i < group.size(); ++i) {
    // The receipt is durable: a leftover landing file is now only noise
    // (the scan's name-index check skips it), so a failed delete is a
    // warning, not an ingest failure.
    Status removed = fs_->Delete(group[i].file.landing_path);
    if (!removed.ok() && !removed.IsNotFound()) {
      logger_->Warning("ingest", "failed to remove landing file " +
                                  group[i].file.landing_path + ": " +
                                  removed.ToString());
    }
    committed_->Increment();
    Committed done = BuildCommitted(group[i], receipts[i], receipt_at);
    // Copy the callback into the closure: the posted lambda must not
    // reach back into the pipeline, which may be gone when it runs.
    if (on_committed_) {
      loop_->Post([cb = on_committed_, done = std::move(done)] { cb(done); });
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const Item& item : group) EraseInFlightLocked(item.file.landing_path);
}

void IngestPipeline::FinishError(const Item& item, const Status& status) {
  errors_->Increment();
  logger_->Error("ingest", "pipeline failed for " + item.file.landing_path +
                               ": " + status.ToString() +
                               " (left for rescan)");
  if (on_error_) {
    loop_->Post(
        [cb = on_error_, file = item.file, status] { cb(file, status); });
  }
  std::lock_guard<std::mutex> lock(mu_);
  EraseInFlightLocked(item.file.landing_path);
}

ArrivalReceipt IngestPipeline::MakeReceipt(const Item& item) const {
  ArrivalReceipt r;
  r.name = item.file.name;
  r.staged_path = item.staged_path;
  r.rel_path = item.rel_path;
  r.size = item.staged_size;
  r.arrival_time = item.file.arrival_time;
  r.data_time = item.data_time;
  r.feeds = item.c.feeds;
  return r;
}

IngestPipeline::Committed IngestPipeline::BuildCommitted(
    const Item& item, const ArrivalReceipt& receipt,
    TimePoint receipt_at) const {
  Committed done;
  done.staged.id = receipt.file_id;
  done.staged.name = item.file.name;
  done.staged.staged_path = item.staged_path;
  done.staged.rel_path = item.rel_path;
  done.staged.size = item.staged_size;
  done.staged.arrival_time = item.file.arrival_time;
  done.staged.data_time = item.data_time;
  done.staged.feeds = item.c.feeds;
  done.classify_at = item.classify_at;
  done.normalize_at = item.normalize_at;
  done.stage_at = item.stage_at;
  done.receipt_at = receipt_at;
  return done;
}

Status IngestPipeline::IngestSync(const IncomingFile& file) {
  Classification c = ClassifyLocked(file.name);
  if (!c.matched()) {
    unmatched_->Increment();
    if (on_unmatched_) on_unmatched_(file);
    return Status::OK();
  }
  if (!AdmitByPlan(file, &c)) return Status::OK();
  if (on_classified_) on_classified_(file);
  admitted_->Increment();

  Item item;
  item.file = file;
  item.c = std::move(c);
  item.classify_at = clock_->Now();
  BISTRO_RETURN_IF_ERROR(StageItem(&item));

  std::vector<ArrivalReceipt> receipts;
  receipts.push_back(MakeReceipt(item));
  BISTRO_RETURN_IF_ERROR(receipts_->RecordArrivalGroup(&receipts));
  commit_batch_size_->Record(1);
  TimePoint receipt_at = clock_->Now();
  Status removed = fs_->Delete(file.landing_path);
  if (!removed.ok() && !removed.IsNotFound()) {
    logger_->Warning("ingest", "failed to remove landing file " +
                                file.landing_path + ": " + removed.ToString());
  }
  committed_->Increment();
  Committed done = BuildCommitted(item, receipts.front(), receipt_at);
  if (on_committed_) on_committed_(done);
  return Status::OK();
}

bool IngestPipeline::InFlight(const std::string& landing_path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_.count(landing_path) > 0;
}

void IngestPipeline::WaitIdle() {
  if (!threaded()) return;
  std::unique_lock<std::mutex> lock(mu_);
  DrainSpillLocked();
  idle_cv_.wait(lock, [this] { return shutdown_ || in_flight_.empty(); });
}

void IngestPipeline::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  receipt_cv_.notify_all();
  receipt_space_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  if (receipt_thread_.joinable()) receipt_thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Shard& shard : shards_) {
      for (const Item& item : shard.items) {
        EraseInFlightLocked(item.file.landing_path);
      }
      shard.items.clear();
    }
    queued_total_ = 0;
    for (const Item& item : spill_) {
      EraseInFlightLocked(item.file.landing_path);
    }
    spill_.clear();
  }
  idle_cv_.notify_all();
}

void IngestPipeline::RebuildClassifier() {
  std::unique_lock<std::shared_mutex> lock(defs_mu_);
  classifier_->Rebuild();
}

IngestStats IngestPipeline::stats() const {
  IngestStats s;
  s.admitted = admitted_->value();
  s.committed = committed_->value();
  s.unmatched = unmatched_->value();
  s.shed = shed_->value();
  s.spilled = spilled_->value();
  s.blocked = blocked_->value();
  s.errors = errors_->value();
  std::lock_guard<std::mutex> lock(mu_);
  s.queue_depth = queued_total_;
  s.receipt_queue_depth = receipt_q_.size();
  s.spill_depth = spill_.size();
  s.in_flight = in_flight_.size();
  return s;
}

}  // namespace bistro

#include "ingest/plan.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <utility>

#include "common/hash.h"

namespace bistro {

// ---------------------------------------------------------------- QuotaBucket

QuotaBucket::QuotaBucket(int64_t files, int64_t bytes, Duration interval)
    : file_capacity_(files > 0 ? files : 0),
      byte_capacity_(bytes > 0 ? bytes : 0),
      interval_(interval > 0 ? interval : kDefaultQuotaInterval),
      file_tokens_(static_cast<double>(file_capacity_)),
      byte_tokens_(static_cast<double>(byte_capacity_)) {}

void QuotaBucket::RefillLocked(TimePoint now) {
  // The bucket starts full; the first admission pins the refill origin so
  // simulated clocks that begin at arbitrary epochs behave identically.
  if (!primed_) {
    last_ = now;
    primed_ = true;
    return;
  }
  if (now <= last_) return;
  double fraction =
      static_cast<double>(now - last_) / static_cast<double>(interval_);
  file_tokens_ = std::min(static_cast<double>(file_capacity_),
                          file_tokens_ + fraction * file_capacity_);
  byte_tokens_ = std::min(static_cast<double>(byte_capacity_),
                          byte_tokens_ + fraction * byte_capacity_);
  last_ = now;
}

bool QuotaBucket::TryAdmit(TimePoint now, uint64_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  RefillLocked(now);
  if (file_capacity_ > 0 && file_tokens_ < 1.0) return false;
  if (byte_capacity_ > 0 && byte_tokens_ < static_cast<double>(size)) {
    return false;
  }
  if (file_capacity_ > 0) file_tokens_ -= 1.0;
  if (byte_capacity_ > 0) byte_tokens_ -= static_cast<double>(size);
  return true;
}

// ------------------------------------------------------- deterministic choices

bool PlanSampleKeeps(const FeedName& feed, const std::string& name,
                     int sample_keep_bp) {
  if (sample_keep_bp >= 10000) return true;
  return Fnv1a64("sample|" + feed + "|" + name) % 10000 <
         static_cast<uint64_t>(sample_keep_bp);
}

const PlanSplitArm* PlanSplitArmFor(const std::vector<PlanSplitArm>& arms,
                                    const std::string& name) {
  if (arms.empty()) return nullptr;
  uint64_t bucket = Fnv1a64("split|" + name) % 100;
  uint64_t cumulative = 0;
  for (const PlanSplitArm& arm : arms) {
    cumulative += static_cast<uint64_t>(arm.percent);
    if (bucket < cumulative) return &arm;
  }
  return &arms.back();
}

// ------------------------------------------------------------------- compiler

namespace {

/// The feed's own normalize policy with the plan's transform applied.
Result<NormalizeSpec> TransformedSpec(const NormalizeSpec& base,
                                      const std::string& transform) {
  NormalizeSpec spec = base;
  if (transform == "none") {
    spec.action = CompressionAction::kPassthrough;
  } else if (transform == "decompress") {
    spec.action = CompressionAction::kDecompress;
  } else {
    BISTRO_ASSIGN_OR_RETURN(spec.codec, CodecKindFromName(transform));
    spec.action = CompressionAction::kCompress;
  }
  return spec;
}

}  // namespace

PlanContext PlanContextFromConfig(const ServerConfig& config) {
  PlanContext context;
  for (const SubscriberSpec& sub : config.subscribers) {
    context.delivery_targets.push_back(sub.name);
  }
  for (const GroupSpec& group : config.groups) {
    context.delivery_targets.push_back(group.name);
  }
  for (const PeerSpec& peer : config.peers) {
    context.delivery_targets.push_back(peer.name);
  }
  context.peer_count = config.peers.size();
  return context;
}

Result<std::shared_ptr<const CompiledPlans>> CompilePlans(
    const std::vector<PlanSpec>& plans, const FeedRegistry& registry,
    const PlanContext& context,
    std::map<FeedName, std::shared_ptr<QuotaBucket>>* buckets) {
  const std::set<std::string> targets(context.delivery_targets.begin(),
                                      context.delivery_targets.end());
  auto compiled = std::make_shared<CompiledPlans>();
  compiled->registry_version = registry.version();

  // Validate every block against the registry and the delivery namespace.
  struct Covered {
    const PlanSpec* plan;
    std::vector<FeedName> feeds;
  };
  std::vector<Covered> covered;
  covered.reserve(plans.size());
  for (const PlanSpec& plan : plans) {
    std::vector<FeedName> feeds = registry.Expand(plan.feed);
    if (feeds.empty()) {
      return Status::InvalidArgument("plan " + plan.feed +
                                     " does not name a registered feed "
                                     "or feed group");
    }
    for (const std::string& target : plan.route) {
      if (!targets.count(target)) {
        return Status::InvalidArgument("plan " + plan.feed +
                                       " routes to unknown target " + target);
      }
    }
    for (const PlanSplitArm& arm : plan.split) {
      if (!targets.count(arm.to)) {
        return Status::InvalidArgument("plan " + plan.feed +
                                       " splits to unknown target " + arm.to);
      }
    }
    if (plan.replicate &&
        static_cast<size_t>(*plan.replicate) > context.peer_count) {
      return Status::InvalidArgument(
          "plan " + plan.feed + " asks for replicate " +
          std::to_string(*plan.replicate) + " but only " +
          std::to_string(context.peer_count) + " peers are configured");
    }
    covered.push_back({&plan, std::move(feeds)});
  }

  // A feed's admission budget must come from exactly one plan: letting
  // two buckets race for the same feed makes the effective quota depend
  // on classification order, so the ambiguity is rejected outright.
  std::map<FeedName, const PlanSpec*> quota_owner;
  for (const Covered& c : covered) {
    if (!c.plan->quota_files && !c.plan->quota_bytes) continue;
    for (const FeedName& feed : c.feeds) {
      auto [it, inserted] = quota_owner.emplace(feed, c.plan);
      if (!inserted && it->second != c.plan) {
        return Status::InvalidArgument(
            "conflicting quota for feed " + feed + ": plans " +
            it->second->feed + " and " + c.plan->feed + " both budget it");
      }
    }
  }

  // Lower least-specific selectors first so a more specific plan (longer
  // dotted prefix, or the exact feed name) overrides per attribute.
  std::stable_sort(covered.begin(), covered.end(),
                   [](const Covered& a, const Covered& b) {
                     return a.plan->feed.size() < b.plan->feed.size();
                   });
  for (const Covered& c : covered) {
    const PlanSpec& plan = *c.plan;
    std::shared_ptr<QuotaBucket> bucket;
    if (plan.quota_files || plan.quota_bytes) {
      // One bucket per plan block: a group-prefix quota is a single
      // budget shared by the whole subtree. Buckets persist across
      // recompilations so a registry bump never refunds tokens.
      if (buckets) {
        std::shared_ptr<QuotaBucket>& slot = (*buckets)[plan.feed];
        if (!slot) {
          slot = std::make_shared<QuotaBucket>(plan.quota_files.value_or(0),
                                               plan.quota_bytes.value_or(0),
                                               plan.quota_interval);
        }
        bucket = slot;
      } else {
        bucket = std::make_shared<QuotaBucket>(plan.quota_files.value_or(0),
                                               plan.quota_bytes.value_or(0),
                                               plan.quota_interval);
      }
    }
    for (const FeedName& feed : c.feeds) {
      FeedPlan& fp = compiled->feeds[feed];
      fp.feed = feed;
      fp.selector = plan.feed;
      if (bucket) fp.quota = bucket;
      if (plan.sample) {
        fp.sample_keep_bp = static_cast<int>(*plan.sample * 100.0 + 0.5);
      }
      if (plan.transform) {
        const RegisteredFeed* rf = registry.FindFeed(feed);
        if (rf == nullptr) {
          return Status::Internal("plan lowering lost feed " + feed);
        }
        BISTRO_ASSIGN_OR_RETURN(
            NormalizeSpec spec,
            TransformedSpec(rf->spec.normalize, *plan.transform));
        BISTRO_ASSIGN_OR_RETURN(fp.transform, Normalizer::Create(spec));
      }
      if (!plan.enrich.empty()) {
        fp.enrich.clear();
        for (const std::string& op : plan.enrich) {
          fp.enrich.push_back(op == "provenance" ? EnrichOp::kProvenance
                                                 : EnrichOp::kChecksum);
        }
      }
      if (!plan.route.empty()) fp.route = plan.route;
      if (!plan.split.empty()) fp.split = plan.split;
      if (plan.replicate) fp.replicate = *plan.replicate;
      if (plan.slo) {
        fp.slo = *plan.slo;
        if (fp.slo == "interactive") {
          fp.deadline_scale_num = 1;
          fp.deadline_scale_den = 4;
        } else if (fp.slo == "bulk") {
          fp.deadline_scale_num = 4;
          fp.deadline_scale_den = 1;
        } else {
          fp.deadline_scale_num = 1;
          fp.deadline_scale_den = 1;
        }
      }
    }
  }
  return std::shared_ptr<const CompiledPlans>(std::move(compiled));
}

// -------------------------------------------------------------- PlanRuntime

PlanRuntime::PlanRuntime(std::vector<PlanSpec> plans,
                         const FeedRegistry* registry, PlanContext context)
    : plans_(std::move(plans)),
      registry_(registry),
      context_(std::move(context)),
      owned_metrics_(std::make_unique<MetricsRegistry>()) {
  AttachMetrics(owned_metrics_.get());
}

void PlanRuntime::AttachMetrics(MetricsRegistry* registry) {
  rebuilds_ = registry->GetCounter(
      "bistro_plan_rebuilds_total",
      "Plan table compilations (initial compile included)");
  rebuild_errors_ = registry->GetCounter(
      "bistro_plan_rebuild_errors_total",
      "Plan recompilations that failed (stale table kept serving)");
  quota_shed_ = registry->GetCounter(
      "bistro_plan_quota_shed_total",
      "Feed admissions refused by a plan quota (file deferred to rescan)");
  sampled_out_ = registry->GetCounter(
      "bistro_plan_sampled_out_total",
      "Feed admissions dropped by plan sampling");
  route_filtered_ = registry->GetCounter(
      "bistro_plan_route_filtered_total",
      "Deliveries suppressed by plan routing or an unchosen split arm");
  split_routed_ = registry->GetCounter(
      "bistro_plan_split_routed_total",
      "Deliveries sent to the chosen arm of a plan split");
  enriched_ = registry->GetCounter(
      "bistro_plan_enriched_total",
      "Enrichment hooks applied in the worker stage");
  transformed_ = registry->GetCounter(
      "bistro_plan_transformed_total",
      "Files staged through a plan transform override");
  governed_gauge_ = registry->GetGauge(
      "bistro_plan_governed_feeds",
      "Feeds currently governed by an ingestion plan");
}

Status PlanRuntime::Validate() {
  std::lock_guard<std::mutex> lock(mu_);
  auto result = CompilePlans(plans_, *registry_, context_, &buckets_);
  if (!result.ok()) return result.status();
  snap_ = std::move(result).value();
  rebuilds_->Increment();
  governed_gauge_->Set(static_cast<int64_t>(snap_->feeds.size()));
  return Status::OK();
}

std::shared_ptr<const CompiledPlans> PlanRuntime::snapshot() {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t version = registry_->version();
  if ((!snap_ || snap_->registry_version != version) &&
      failed_version_ != version) {
    auto result = CompilePlans(plans_, *registry_, context_, &buckets_);
    if (result.ok()) {
      snap_ = std::move(result).value();
      failed_version_.reset();
      rebuilds_->Increment();
      governed_gauge_->Set(static_cast<int64_t>(snap_->feeds.size()));
    } else {
      // Keep serving the previous table (stale but internally consistent)
      // and remember the broken version so we do not recompile per call.
      failed_version_ = version;
      rebuild_errors_->Increment();
    }
  }
  return snap_;
}

PlanRuntime::ArrivalDecision PlanRuntime::FilterArrival(
    const IncomingFile& file, TimePoint now, Classification* c) {
  std::shared_ptr<const CompiledPlans> snap = snapshot();
  if (!snap || snap->feeds.empty() || c->feeds.empty()) {
    return ArrivalDecision::kAdmit;
  }
  const FeedName original_front = c->feeds.front();
  std::vector<FeedName> kept;
  kept.reserve(c->feeds.size());
  bool quota_refused = false;
  for (FeedName& feed : c->feeds) {
    const FeedPlan* fp = snap->Find(feed);
    if (fp != nullptr) {
      if (!PlanSampleKeeps(feed, file.name, fp->sample_keep_bp)) {
        sampled_out_->Increment();
        continue;
      }
      if (fp->quota && !fp->quota->TryAdmit(now, file.size)) {
        quota_shed_->Increment();
        quota_refused = true;
        continue;
      }
    }
    kept.push_back(std::move(feed));
  }
  if (kept.empty()) {
    return quota_refused ? ArrivalDecision::kDefer : ArrivalDecision::kDiscard;
  }
  const bool front_changed = kept.front() != original_front;
  c->feeds = std::move(kept);
  if (front_changed) {
    // Staging uses the leading feed's match fields; re-derive them for
    // the new front so rename templates keep seeing the right fields.
    if (const RegisteredFeed* rf = registry_->FindFeed(c->feeds.front())) {
      if (auto m = rf->Match(file.name)) c->primary_match = *m;
    }
  }
  return ArrivalDecision::kAdmit;
}

void PlanRuntime::Enrich(const FeedPlan& fp, const IncomingFile& file,
                         const FeedName& feed, std::string* content) {
  for (EnrichOp op : fp.enrich) {
    switch (op) {
      case EnrichOp::kProvenance: {
        std::string header = "#bistro-provenance feed=" + feed +
                             " file=" + file.name +
                             " arrival=" + std::to_string(file.arrival_time) +
                             "\n";
        content->insert(0, header);
        break;
      }
      case EnrichOp::kChecksum: {
        char header[32];
        std::snprintf(header, sizeof(header), "#bistro-crc32 %08x\n",
                      Crc32(*content));
        content->insert(0, header);
        break;
      }
    }
    enriched_->Increment();
  }
}

bool PlanRuntime::AllowsDelivery(const FeedName& feed,
                                 const std::string& file_name,
                                 const SubscriberName& sub) {
  std::shared_ptr<const CompiledPlans> snap = snapshot();
  const FeedPlan* fp = snap ? snap->Find(feed) : nullptr;
  if (fp == nullptr) return true;
  if (!fp->split.empty()) {
    bool is_arm = false;
    for (const PlanSplitArm& arm : fp->split) {
      if (arm.to == sub) {
        is_arm = true;
        break;
      }
    }
    if (is_arm) {
      // An arm subscriber receives exactly the files hashed into its
      // percent range; arms bypass the route list.
      const PlanSplitArm* chosen = PlanSplitArmFor(fp->split, file_name);
      if (chosen != nullptr && chosen->to == sub) {
        split_routed_->Increment();
        return true;
      }
      route_filtered_->Increment();
      return false;
    }
  }
  if (!fp->route.empty()) {
    for (const std::string& target : fp->route) {
      if (target == sub) return true;
    }
    route_filtered_->Increment();
    return false;
  }
  return true;
}

Duration PlanRuntime::TardinessFor(const FeedName& feed, Duration base) {
  std::shared_ptr<const CompiledPlans> snap = snapshot();
  const FeedPlan* fp = snap ? snap->Find(feed) : nullptr;
  if (fp == nullptr || fp->deadline_scale_num == fp->deadline_scale_den) {
    return base;
  }
  Duration scaled = base * fp->deadline_scale_num / fp->deadline_scale_den;
  return scaled > 0 ? scaled : 1;
}

PlanStats PlanRuntime::stats() {
  PlanStats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (snap_) {
      s.governed_feeds = snap_->feeds.size();
      s.snapshot_version = snap_->registry_version;
    }
  }
  s.rebuilds = rebuilds_->value();
  s.rebuild_errors = rebuild_errors_->value();
  s.quota_shed = quota_shed_->value();
  s.sampled_out = sampled_out_->value();
  s.route_filtered = route_filtered_->value();
  s.split_routed = split_routed_->value();
  s.enriched = enriched_->value();
  s.transformed = transformed_->value();
  return s;
}

}  // namespace bistro

#include "federation/federation.h"

#include <algorithm>

#include "common/hash.h"

namespace bistro {

FederationInbound::FederationInbound(BistroServer* server, Logger* logger)
    : server_(server), logger_(logger) {}

void FederationInbound::AttachMetrics(MetricsRegistry* registry) {
  m_files_ = registry->GetCounter("bistro_federation_files_ingested_total",
                                  "Files ingested from upstream servers");
  m_duplicates_ = registry->GetCounter(
      "bistro_federation_duplicates_total",
      "Redelivered files absorbed by receipt/name dedupe");
  m_batches_ = registry->GetCounter(
      "bistro_federation_batches_total",
      "End-of-batch punctuations received from upstream");
  m_rejected_ = registry->GetCounter(
      "bistro_federation_rejected_total",
      "Inbound messages rejected (corruption or ingest failure)");
}

Status FederationInbound::HandleMessage(const Message& msg) {
  if (msg.type == MessageType::kFileData) {
    // Dedupe BEFORE the payload CRC check runs inside the server: a
    // redelivered file is acked from the receipt alone.
    bool seen = recent_names_.count(msg.name) != 0;
    if (!seen && !msg.name.empty()) {
      seen = server_->receipts()->FindIdByName(msg.name).ok();
    }
    if (seen) {
      ++duplicates_absorbed_;
      if (m_duplicates_ != nullptr) m_duplicates_->Increment();
      logger_->Debug("federation", "duplicate absorbed: " + msg.name);
      return Status::OK();
    }
  }
  Status handled = server_->HandleMessage(msg);
  switch (msg.type) {
    case MessageType::kFileData:
      if (handled.ok()) {
        ++files_ingested_;
        if (m_files_ != nullptr) m_files_->Increment();
        recent_names_.insert(msg.name);
        recent_order_.push_back(msg.name);
        while (recent_order_.size() > recent_capacity_) {
          recent_names_.erase(recent_order_.front());
          recent_order_.pop_front();
        }
      }
      break;
    case MessageType::kEndOfBatch:
      if (handled.ok() && m_batches_ != nullptr) m_batches_->Increment();
      break;
    default:
      break;
  }
  if (!handled.ok() && m_rejected_ != nullptr) m_rejected_->Increment();
  return handled;
}

bool FeedInShard(const FeedName& feed, int index, int count) {
  if (count <= 0) return true;
  return Fnv1a64(feed) % static_cast<uint64_t>(count) ==
         static_cast<uint64_t>(index);
}

namespace {
/// With `replicas n`, peer `index` carries its own shard plus the n-1
/// preceding shards (wrapping): the feed hashed to shard h lands on peers
/// h, h+1, ..., h+n-1 mod count, so losing any single peer leaves every
/// feed on a live neighbor.
bool FeedInReplicatedShard(const FeedName& feed, int index, int count,
                           int replicas) {
  if (count <= 0) return true;
  uint64_t home = Fnv1a64(feed) % static_cast<uint64_t>(count);
  int distance = (index - static_cast<int>(home) + count) % count;
  return distance < std::max(1, replicas);
}

/// True when some other peer names `peer` as its failover target.
bool IsFailoverTarget(const ServerConfig& config, const PeerSpec& peer) {
  for (const PeerSpec& other : config.peers) {
    if (other.failover == peer.name) return true;
  }
  return false;
}
}  // namespace

std::vector<FeedName> PeerFeeds(const ServerConfig& config,
                                const PeerSpec& peer) {
  if (!peer.feeds.empty()) return peer.feeds;
  if (peer.shard_count <= 0) {
    // A peer with no explicit feeds and no shard normally takes every
    // feed — but a pure standby (declared only to be someone's failover
    // target) takes nothing until the failover activates.
    if (IsFailoverTarget(config, peer)) return {};
    std::vector<FeedName> out;
    for (const FeedSpec& feed : config.feeds) out.push_back(feed.name);
    return out;
  }
  std::vector<FeedName> out;
  for (const FeedSpec& feed : config.feeds) {
    if (FeedInReplicatedShard(feed.name, peer.shard_index, peer.shard_count,
                              peer.replicas)) {
      out.push_back(feed.name);
    }
  }
  return out;
}

SocketTransport::Options SocketOptionsFromSpec(const ServerNetSpec& spec,
                                               uint64_t backoff_seed) {
  SocketTransport::Options options;
  options.listen_address = spec.listen;
  if (spec.max_frame_bytes) {
    options.max_frame_bytes = static_cast<size_t>(*spec.max_frame_bytes);
  }
  if (spec.outbound_queue_bytes) {
    options.outbound_queue_bytes =
        static_cast<size_t>(*spec.outbound_queue_bytes);
  }
  if (spec.reconnect_backoff_min) {
    options.reconnect_backoff_min = *spec.reconnect_backoff_min;
  }
  if (spec.reconnect_backoff_max) {
    options.reconnect_backoff_max = *spec.reconnect_backoff_max;
  }
  if (spec.ack_timeout) options.ack_timeout = *spec.ack_timeout;
  options.backoff_seed = backoff_seed;
  return options;
}

Status WirePeers(const ServerConfig& config, BistroServer* server,
                 SocketTransport* transport, Logger* logger) {
  for (const PeerSpec& peer : config.peers) {
    transport->AddPeer(peer.name, peer.address);
    SubscriberSpec sub;
    sub.name = peer.name;
    sub.host = peer.name;  // transport endpoint == peer name
    sub.method = DeliveryMethod::kPush;
    sub.feeds = PeerFeeds(config, peer);
    sub.window = peer.window;
    if (sub.feeds.empty()) {
      if (IsFailoverTarget(config, peer)) {
        logger->Info("federation", "peer " + peer.name +
                                       " is a standby (failover target); "
                                       "takes no feeds until activated");
      } else {
        logger->Warning(
            "federation",
            "peer " + peer.name + " routes no feeds (empty shard?)");
      }
      continue;
    }
    Status added = server->AddSubscriber(sub);
    if (added.IsAlreadyExists()) {
      // Restart/rewire path: the subscriber (and its receipts) persist;
      // only the transport address needed refreshing.
      logger->Info("federation", "peer already subscribed: " + peer.name);
      continue;
    }
    BISTRO_RETURN_IF_ERROR(added);
    logger->Info("federation",
                 "peer " + peer.name + " at " + peer.address + " takes " +
                     std::to_string(sub.feeds.size()) + " feed(s)");
  }
  return Status::OK();
}

}  // namespace bistro

#ifndef BISTRO_FEDERATION_FEDERATION_H_
#define BISTRO_FEDERATION_FEDERATION_H_

#include <deque>
#include <set>
#include <string>
#include <vector>

#include "common/logging.h"
#include "config/spec.h"
#include "core/server.h"
#include "net/socket_transport.h"

namespace bistro {

/// Bistro-to-Bistro federation (paper Fig. 1): an upstream server treats
/// each configured peer as a push subscriber whose endpoint is a TCP
/// address, and a downstream server ingests what arrives on its listener
/// exactly like locally deposited files.
///
/// Exactly-once across real process crashes is the composition of three
/// at-least-once mechanisms, each WAL-backed on its own side:
///  - upstream delivery receipts: a file is retransmitted until its ack
///    is durable, so a downstream crash before ingest only delays it;
///  - downstream arrival receipts: a file whose name is already
///    receipted (FindIdByName) is acknowledged without re-ingesting, so
///    an upstream crash after delivery but before its receipt commit —
///    which redelivers on restart — is absorbed as a duplicate;
///  - an in-memory recent-name set covering the window between admission
///    and durable receipt under threaded ingest, so rapid-fire
///    redelivery cannot double-admit either.

/// Downstream inbound endpoint: dedupes by receipt before handing the
/// message to the server. Register as the SocketTransport's inbound
/// endpoint (and with the upstream-facing name for loopback tests).
class FederationInbound : public Endpoint {
 public:
  FederationInbound(BistroServer* server, Logger* logger);

  Status HandleMessage(const Message& msg) override;

  /// Registers bistro_federation_* counters.
  void AttachMetrics(MetricsRegistry* registry);

  uint64_t files_ingested() const { return files_ingested_; }
  uint64_t duplicates_absorbed() const { return duplicates_absorbed_; }

 private:
  BistroServer* server_;
  Logger* logger_;

  /// Names admitted recently, guarding the admission-to-durable-receipt
  /// window (bounded; receipts carry the long-term dedupe).
  std::set<std::string> recent_names_;
  std::deque<std::string> recent_order_;
  size_t recent_capacity_ = 8192;

  uint64_t files_ingested_ = 0;
  uint64_t duplicates_absorbed_ = 0;

  Counter* m_files_ = nullptr;
  Counter* m_duplicates_ = nullptr;
  Counter* m_batches_ = nullptr;
  Counter* m_rejected_ = nullptr;
};

/// True when `feed` belongs to shard `index` of `count` under the
/// federation's stable hash partitioning (FNV-1a of the feed name).
bool FeedInShard(const FeedName& feed, int index, int count);

/// Feeds of `config` routed to `peer`: the explicit list when present;
/// the peer's hash shard (widened to `replicas` consecutive shards) when
/// sharding is set; every feed otherwise — except that a peer declared
/// only as another peer's `failover` target is a standby and takes no
/// feeds until the failover activates.
std::vector<FeedName> PeerFeeds(const ServerConfig& config,
                                const PeerSpec& peer);

/// SocketTransport options derived from a parsed `server { ... }` block.
SocketTransport::Options SocketOptionsFromSpec(const ServerNetSpec& spec,
                                               uint64_t backoff_seed = 1);

/// Upstream wiring: declares every configured peer on the transport and
/// registers it as a push subscriber (name == host == peer name) so the
/// ordinary delivery engine — receipts, retries, send windows,
/// coalescing — drives the federated handoff. Idempotent per peer name
/// (an AlreadyExists subscriber is re-addressed, not duplicated).
Status WirePeers(const ServerConfig& config, BistroServer* server,
                 SocketTransport* transport, Logger* logger);

}  // namespace bistro

#endif  // BISTRO_FEDERATION_FEDERATION_H_

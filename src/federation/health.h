#ifndef BISTRO_FEDERATION_HEALTH_H_
#define BISTRO_FEDERATION_HEALTH_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/logging.h"
#include "config/spec.h"
#include "core/server.h"
#include "net/socket_transport.h"

namespace bistro {

/// Per-peer liveness verdict. The numeric values are stable: they are
/// exported as the `bistro_peer_health_<name>` gauge.
///
///   healthy --failures--> suspect --more failures--> down
///      ^                     |                        |
///      |<----- success ------+                        |
///      |                                           success
///      +<-- probation_successes --- probation <-------+
///
/// `down` opens the circuit: non-heartbeat sends to the peer fail fast
/// instead of queueing toward the outbound byte cap. Any failure during
/// probation re-opens it.
enum class PeerHealth {
  kHealthy = 0,
  kSuspect = 1,
  kDown = 2,
  kProbation = 3,
};

std::string_view PeerHealthName(PeerHealth health);

/// Tuning for one tracked peer (config keys under `peer { ... }`).
struct PeerHealthOptions {
  /// Keepalive-probe cadence while the peer is not healthy. Probes are
  /// kHeartbeat messages, exempt from the circuit breaker, so a down
  /// peer's recovery is detected even with no real traffic pending.
  Duration probe_interval = 5 * kSecond;
  /// Consecutive failures before healthy -> suspect.
  int suspect_after = 1;
  /// Consecutive failures before -> down (circuit opens).
  int down_after = 3;
  /// Ack successes required to leave probation for healthy.
  int probation_successes = 2;
};

/// Drives the per-peer health state machine from the transport's
/// connection-lifecycle evidence and gates sends through it.
///
/// Evidence flows EXCLUSIVELY through the PeerObserver callbacks — a
/// failed connect, a dropped connection, and an ack timeout each count
/// once; any matched ack (even one carrying a remote handler error)
/// proves the peer end-to-end alive. A successful connect alone is NOT
/// success evidence: a black-holed peer may complete TCP handshakes
/// while delivering nothing, so only acks close the loop.
class PeerHealthTracker : public SocketTransport::PeerObserver {
 public:
  /// Invoked after each state transition (state already updated, gauge
  /// already set). May call back into the tracker or transport.
  using TransitionHandler = std::function<void(
      const std::string& peer, PeerHealth from, PeerHealth to)>;

  PeerHealthTracker(EventLoop* loop, SocketTransport* transport,
                    Logger* logger);
  ~PeerHealthTracker() override;

  PeerHealthTracker(const PeerHealthTracker&) = delete;
  PeerHealthTracker& operator=(const PeerHealthTracker&) = delete;

  /// Starts tracking a peer (initially healthy). Untracked peers pass
  /// the gate untouched and produce no transitions.
  void Track(const std::string& peer, PeerHealthOptions options);

  /// Installs this tracker as the transport's observer and send gate.
  void Attach();

  void SetTransitionHandler(TransitionHandler handler) {
    on_transition_ = std::move(handler);
  }

  /// Registers bistro_peer_health_* series.
  void AttachMetrics(MetricsRegistry* registry);

  /// Current verdict; kHealthy for untracked peers.
  PeerHealth Health(const std::string& peer) const;
  std::vector<std::string> TrackedPeers() const;

  /// Sends refused by the open circuit (peer down, non-heartbeat).
  uint64_t fast_fails() const { return fast_fails_; }
  /// Total state transitions across all peers.
  uint64_t transitions() const { return transitions_; }

  // ------------------------------------------- SocketTransport::PeerObserver
  void OnPeerConnectFailed(const std::string& peer,
                           const Status& cause) override;
  void OnPeerDisconnected(const std::string& peer,
                          const Status& cause) override;
  void OnPeerAckTimeout(const std::string& peer) override;
  void OnPeerAck(const std::string& peer, const Status& status) override;

 private:
  struct Tracked {
    PeerHealthOptions options;
    PeerHealth health = PeerHealth::kHealthy;
    int consecutive_failures = 0;
    int probation_count = 0;
    bool probe_scheduled = false;
    bool probe_inflight = false;
    Gauge* m_health = nullptr;
  };

  Status GateSend(const std::string& peer, const Message& msg);
  void RecordFailure(const std::string& peer, const Status& cause);
  void RecordSuccess(const std::string& peer);
  void Transition(const std::string& peer, Tracked* t, PeerHealth to);
  /// Arms the probe timer if the peer is unhealthy and none is armed.
  void ScheduleProbe(const std::string& peer, Tracked* t);
  void ProbeTick(const std::string& peer);

  EventLoop* loop_;
  SocketTransport* transport_;
  Logger* logger_;
  TransitionHandler on_transition_;
  MetricsRegistry* registry_ = nullptr;

  std::map<std::string, Tracked> tracked_;
  bool attached_ = false;
  uint64_t fast_fails_ = 0;
  uint64_t transitions_ = 0;
  Counter* m_transitions_ = nullptr;

  /// Liveness token for probe timers (see SocketTransport::alive_).
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

/// Ties federation wiring, peer health, and replica failover together for
/// a live server: WirePeers + a PeerHealthTracker whose `down`/`healthy`
/// transitions re-route a failed primary's feeds onto its configured
/// `failover` replica and back.
///
/// Failover keeps exactly-once intact without coordination: re-routing
/// only ever *adds* at-least-once delivery attempts (the replica receives
/// files the primary may also have received), and the downstream
/// arrival-receipt dedupe absorbs any overlap. Fail-back is the same
/// argument in reverse — the recovered primary's catch-up rides the
/// delivery engine's ordinary offline-probe -> backfill path.
class FederationRuntime {
 public:
  FederationRuntime(BistroServer* server, SocketTransport* transport,
                    EventLoop* loop, Logger* logger);

  /// Wires peers (WirePeers), tracks each one, installs the gate, and
  /// records the failover routing table.
  Status Start(const ServerConfig& config);

  PeerHealthTracker* tracker() { return &tracker_; }

  /// Human-readable peer table for the admin console (`peers` command).
  std::string RenderPeers() const;

  uint64_t failovers() const { return failovers_; }
  uint64_t failbacks() const { return failbacks_; }

 private:
  struct Route {
    std::vector<FeedName> feeds;  // the primary's wired feed set
    std::string failover;         // replica peer name
    bool failed_over = false;
  };

  void OnTransition(const std::string& peer, PeerHealth from, PeerHealth to);
  void ActivateFailover(const std::string& primary, Route* route);
  void DeactivateFailover(const std::string& primary, Route* route);

  BistroServer* server_;
  SocketTransport* transport_;
  Logger* logger_;
  PeerHealthTracker tracker_;

  std::map<std::string, Route> routes_;  // primaries with a failover target
  /// Every wired peer's own (pre-failover) feed set and window, for
  /// building the replica's union spec and restoring it afterwards.
  std::map<std::string, std::vector<FeedName>> base_feeds_;
  std::map<std::string, Duration> windows_;

  uint64_t failovers_ = 0;
  uint64_t failbacks_ = 0;
};

}  // namespace bistro

#endif  // BISTRO_FEDERATION_HEALTH_H_

#include "federation/health.h"

#include <cstdio>
#include <set>
#include <sstream>

#include "federation/federation.h"

namespace bistro {

std::string_view PeerHealthName(PeerHealth health) {
  switch (health) {
    case PeerHealth::kHealthy:
      return "healthy";
    case PeerHealth::kSuspect:
      return "suspect";
    case PeerHealth::kDown:
      return "down";
    case PeerHealth::kProbation:
      return "probation";
  }
  return "unknown";
}

PeerHealthTracker::PeerHealthTracker(EventLoop* loop,
                                     SocketTransport* transport,
                                     Logger* logger)
    : loop_(loop), transport_(transport), logger_(logger) {}

PeerHealthTracker::~PeerHealthTracker() {
  *alive_ = false;
  // Detach from the transport: its own teardown (dropping live
  // connections) must not call back into a destroyed tracker.
  if (attached_) {
    transport_->SetPeerObserver(nullptr);
    transport_->SetSendGate(nullptr);
  }
}

void PeerHealthTracker::Track(const std::string& peer,
                              PeerHealthOptions options) {
  if (options.probe_interval <= 0) options.probe_interval = 5 * kSecond;
  if (options.suspect_after < 1) options.suspect_after = 1;
  if (options.down_after < options.suspect_after) {
    options.down_after = options.suspect_after;
  }
  if (options.probation_successes < 1) options.probation_successes = 1;
  Tracked& t = tracked_[peer];
  t.options = options;
  if (registry_ != nullptr && t.m_health == nullptr) {
    t.m_health = registry_->GetGauge(
        "bistro_peer_health_" + peer,
        "peer health state (0 healthy, 1 suspect, 2 down, 3 probation)");
  }
}

void PeerHealthTracker::Attach() {
  attached_ = true;
  transport_->SetPeerObserver(this);
  transport_->SetSendGate([this](const std::string& peer, const Message& msg) {
    return GateSend(peer, msg);
  });
}

void PeerHealthTracker::AttachMetrics(MetricsRegistry* registry) {
  registry_ = registry;
  m_transitions_ = registry->GetCounter("bistro_peer_health_transitions_total",
                                        "peer health state transitions");
  for (auto& [name, t] : tracked_) {
    if (t.m_health == nullptr) {
      t.m_health = registry->GetGauge(
          "bistro_peer_health_" + name,
          "peer health state (0 healthy, 1 suspect, 2 down, 3 probation)");
    }
  }
}

PeerHealth PeerHealthTracker::Health(const std::string& peer) const {
  auto it = tracked_.find(peer);
  return it == tracked_.end() ? PeerHealth::kHealthy : it->second.health;
}

std::vector<std::string> PeerHealthTracker::TrackedPeers() const {
  std::vector<std::string> out;
  out.reserve(tracked_.size());
  for (const auto& [name, _] : tracked_) out.push_back(name);
  return out;
}

Status PeerHealthTracker::GateSend(const std::string& peer,
                                   const Message& msg) {
  auto it = tracked_.find(peer);
  if (it == tracked_.end()) return Status::OK();
  // Heartbeats stay exempt so both this tracker's probes and the delivery
  // engine's offline probes can detect the heal while the circuit is open.
  if (it->second.health == PeerHealth::kDown &&
      msg.type != MessageType::kHeartbeat) {
    ++fast_fails_;
    return Status::Unavailable("peer " + peer + " is down (circuit open)");
  }
  return Status::OK();
}

void PeerHealthTracker::OnPeerConnectFailed(const std::string& peer,
                                            const Status& cause) {
  RecordFailure(peer, cause);
}

void PeerHealthTracker::OnPeerDisconnected(const std::string& peer,
                                           const Status& cause) {
  RecordFailure(peer, cause);
}

void PeerHealthTracker::OnPeerAckTimeout(const std::string& peer) {
  RecordFailure(peer, Status::Unavailable("ack timeout"));
}

void PeerHealthTracker::OnPeerAck(const std::string& peer, const Status&) {
  // Any matched ack — even one carrying a remote handler error — proves
  // the wire round trip works, which is all health tracks.
  RecordSuccess(peer);
}

void PeerHealthTracker::RecordFailure(const std::string& peer,
                                      const Status& cause) {
  auto it = tracked_.find(peer);
  if (it == tracked_.end()) return;
  Tracked& t = it->second;
  ++t.consecutive_failures;
  t.probation_count = 0;
  switch (t.health) {
    case PeerHealth::kHealthy:
      if (t.consecutive_failures >= t.options.suspect_after) {
        Transition(peer, &t, PeerHealth::kSuspect);
      }
      [[fallthrough]];
    case PeerHealth::kSuspect:
      if (t.consecutive_failures >= t.options.down_after) {
        Transition(peer, &t, PeerHealth::kDown);
      }
      break;
    case PeerHealth::kProbation:
      // A recovering peer that fails again is not recovering.
      Transition(peer, &t, PeerHealth::kDown);
      break;
    case PeerHealth::kDown:
      break;
  }
  if (logger_ != nullptr && t.health != PeerHealth::kHealthy) {
    logger_->Debug("federation", "peer " + peer + " failure #" +
                                     std::to_string(t.consecutive_failures) +
                                     " (" + cause.message() + "), " +
                                     std::string(PeerHealthName(t.health)));
  }
}

void PeerHealthTracker::RecordSuccess(const std::string& peer) {
  auto it = tracked_.find(peer);
  if (it == tracked_.end()) return;
  Tracked& t = it->second;
  t.consecutive_failures = 0;
  switch (t.health) {
    case PeerHealth::kHealthy:
      break;
    case PeerHealth::kSuspect:
      Transition(peer, &t, PeerHealth::kHealthy);
      break;
    case PeerHealth::kDown:
      t.probation_count = 1;
      Transition(peer, &t, PeerHealth::kProbation);
      if (t.probation_count >= t.options.probation_successes) {
        Transition(peer, &t, PeerHealth::kHealthy);
      }
      break;
    case PeerHealth::kProbation:
      ++t.probation_count;
      if (t.probation_count >= t.options.probation_successes) {
        Transition(peer, &t, PeerHealth::kHealthy);
      }
      break;
  }
}

void PeerHealthTracker::Transition(const std::string& peer, Tracked* t,
                                   PeerHealth to) {
  PeerHealth from = t->health;
  if (from == to) return;
  t->health = to;
  ++transitions_;
  if (m_transitions_ != nullptr) m_transitions_->Increment();
  if (t->m_health != nullptr) t->m_health->Set(static_cast<int64_t>(to));
  if (logger_ != nullptr) {
    LogLevel level = to == PeerHealth::kDown ? LogLevel::kWarning
                                             : LogLevel::kInfo;
    logger_->Log(level, "federation",
                 "peer " + peer + ": " + std::string(PeerHealthName(from)) +
                     " -> " + std::string(PeerHealthName(to)));
  }
  if (to != PeerHealth::kHealthy) ScheduleProbe(peer, t);
  if (on_transition_) on_transition_(peer, from, to);
}

void PeerHealthTracker::ScheduleProbe(const std::string& peer, Tracked* t) {
  if (t->probe_scheduled) return;
  t->probe_scheduled = true;
  std::weak_ptr<bool> alive = alive_;
  loop_->PostAfter(t->options.probe_interval, [this, alive, peer] {
    auto token = alive.lock();
    if (token == nullptr || !*token) return;
    ProbeTick(peer);
  });
}

void PeerHealthTracker::ProbeTick(const std::string& peer) {
  auto it = tracked_.find(peer);
  if (it == tracked_.end()) return;
  Tracked& t = it->second;
  t.probe_scheduled = false;
  if (t.health == PeerHealth::kHealthy) return;  // probes stop on recovery
  if (!t.probe_inflight) {
    t.probe_inflight = true;
    Message probe;
    probe.type = MessageType::kHeartbeat;
    std::weak_ptr<bool> alive = alive_;
    // The completion callback records NOTHING: every piece of evidence a
    // probe produces (ack, ack timeout, drop) already arrives through the
    // observer, and counting it here too would double-weigh failures.
    transport_->Send(peer, probe, [this, alive, peer](const Status&) {
      auto token = alive.lock();
      if (token == nullptr || !*token) return;
      auto pit = tracked_.find(peer);
      if (pit != tracked_.end()) pit->second.probe_inflight = false;
    });
  }
  ScheduleProbe(peer, &t);
}

// --------------------------------------------------------------------------
// FederationRuntime

FederationRuntime::FederationRuntime(BistroServer* server,
                                     SocketTransport* transport,
                                     EventLoop* loop, Logger* logger)
    : server_(server),
      transport_(transport),
      logger_(logger),
      tracker_(loop, transport, logger) {}

Status FederationRuntime::Start(const ServerConfig& config) {
  BISTRO_RETURN_IF_ERROR(WirePeers(config, server_, transport_, logger_));
  for (const auto& peer : config.peers) {
    std::vector<FeedName> feeds = PeerFeeds(config, peer);
    base_feeds_[peer.name] = feeds;
    windows_[peer.name] = peer.window;
    PeerHealthOptions opts;
    if (peer.probe_interval) opts.probe_interval = *peer.probe_interval;
    if (peer.suspect_after) opts.suspect_after = *peer.suspect_after;
    if (peer.down_after) opts.down_after = *peer.down_after;
    tracker_.Track(peer.name, opts);
    if (!peer.failover.empty()) {
      routes_[peer.name] = Route{std::move(feeds), peer.failover, false};
    }
  }
  if (server_->metrics() != nullptr) {
    tracker_.AttachMetrics(server_->metrics());
  }
  tracker_.SetTransitionHandler(
      [this](const std::string& peer, PeerHealth from, PeerHealth to) {
        OnTransition(peer, from, to);
      });
  tracker_.Attach();
  return Status::OK();
}

void FederationRuntime::OnTransition(const std::string& peer, PeerHealth,
                                     PeerHealth to) {
  auto it = routes_.find(peer);
  if (it == routes_.end()) return;
  if (to == PeerHealth::kDown && !it->second.failed_over) {
    ActivateFailover(peer, &it->second);
  } else if (to == PeerHealth::kHealthy && it->second.failed_over) {
    DeactivateFailover(peer, &it->second);
  }
}

void FederationRuntime::ActivateFailover(const std::string& primary,
                                         Route* route) {
  const std::string& replica = route->failover;
  // The replica now carries its own feeds plus the primary's.
  std::set<FeedName> merged(route->feeds.begin(), route->feeds.end());
  auto bit = base_feeds_.find(replica);
  if (bit != base_feeds_.end()) {
    merged.insert(bit->second.begin(), bit->second.end());
  }
  SubscriberSpec spec;
  spec.name = replica;
  spec.host = replica;
  spec.feeds = {merged.begin(), merged.end()};
  spec.method = DeliveryMethod::kPush;
  auto wit = windows_.find(replica);
  spec.window = wit != windows_.end() ? wit->second : 0;

  Status status;
  if (server_->registry()->FindSubscriber(replica) != nullptr) {
    status = server_->registry()->UpdateSubscriber(spec);
  } else {
    // A pure standby (no feeds of its own) was never registered as a
    // subscriber by WirePeers; registering it now also backfills.
    status = server_->AddSubscriber(spec);
  }
  if (!status.ok()) {
    if (logger_ != nullptr) {
      logger_->Error("federation", "failover " + primary + " -> " + replica +
                                       " failed: " + status.message());
    }
    return;
  }
  ++failovers_;
  route->failed_over = true;
  if (logger_ != nullptr) {
    logger_->Alarm("federation",
                   "peer " + primary + " down; re-routing " +
                       std::to_string(route->feeds.size()) + " feeds to " +
                       replica);
  }
  // Files already queued (or receipted-but-undelivered) toward the dead
  // primary are re-offered to the replica. Overlap with what the primary
  // already has — or will receive again after recovery — is absorbed by
  // the downstream arrival-receipt dedupe.
  server_->delivery()->RerouteUndelivered(primary, replica);
}

void FederationRuntime::DeactivateFailover(const std::string& primary,
                                           Route* route) {
  const std::string& replica = route->failover;
  SubscriberSpec spec;
  spec.name = replica;
  spec.host = replica;
  auto bit = base_feeds_.find(replica);
  if (bit != base_feeds_.end()) spec.feeds = bit->second;
  spec.method = DeliveryMethod::kPush;
  auto wit = windows_.find(replica);
  spec.window = wit != windows_.end() ? wit->second : 0;

  Status status = server_->registry()->UpdateSubscriber(spec);
  if (!status.ok() && logger_ != nullptr) {
    logger_->Error("federation", "failback " + primary + " <- " + replica +
                                     " failed: " + status.message());
    return;
  }
  ++failbacks_;
  route->failed_over = false;
  if (logger_ != nullptr) {
    logger_->Info("federation",
                  "peer " + primary + " recovered; " + replica +
                      " restored to its own feeds (primary catches up via "
                      "backfill)");
  }
}

std::string FederationRuntime::RenderPeers() const {
  std::ostringstream out;
  out << "peer                 health     conn  reconn  down_secs  "
         "last_ack   queued_b  pending\n";
  for (const auto& name : transport_->PeerNames()) {
    SocketTransport::PeerNetStats stats = transport_->GetPeerStats(name);
    char line[256];
    std::string ack_age = "never";
    if (stats.last_ack_age >= 0) {
      ack_age = std::to_string(stats.last_ack_age / kMillisecond) + "ms";
    }
    std::string health(PeerHealthName(tracker_.Health(name)));
    auto rit = routes_.find(name);
    if (rit != routes_.end() && rit->second.failed_over) {
      health += "*";  // feeds currently re-routed to the failover peer
    }
    std::snprintf(line, sizeof(line),
                  "%-20s %-10s %-5s %-7llu %-10lld %-10s %-9zu %zu\n",
                  name.c_str(), health.c_str(),
                  stats.connected ? "yes" : "no",
                  static_cast<unsigned long long>(stats.reconnect_attempts),
                  static_cast<long long>(stats.disconnected_total / kSecond),
                  ack_age.c_str(), stats.queued_bytes, stats.pending_acks);
    out << line;
  }
  for (const auto& [primary, route] : routes_) {
    out << "failover: " << primary << " -> " << route.failover
        << (route.failed_over ? " (ACTIVE)" : " (standby)") << "\n";
  }
  return out.str();
}

}  // namespace bistro

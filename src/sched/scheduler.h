#ifndef BISTRO_SCHED_SCHEDULER_H_
#define BISTRO_SCHED_SCHEDULER_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "sched/policy.h"
#include "sched/responsiveness.h"

namespace bistro {

/// Aggregate delivery quality metrics (drives experiment E3).
struct SchedulerMetrics {
  uint64_t completed = 0;
  uint64_t failed = 0;
  /// Sum / max of lateness past the deadline, over completed jobs
  /// (on-time jobs contribute 0).
  Duration total_tardiness = 0;
  Duration max_tardiness = 0;
  uint64_t late = 0;  // completed after their deadline
  /// Per-job queue wait (completion - arrival), for starvation analysis.
  Duration max_wait = 0;

  double MeanTardiness() const {
    return completed == 0 ? 0.0
                          : static_cast<double>(total_tardiness) / completed;
  }
  double LateFraction() const {
    return completed == 0 ? 0.0 : static_cast<double>(late) / completed;
  }
};

/// The delivery engine's view of a scheduler: submit jobs, dequeue the
/// next job when a transfer slot frees up, and report outcomes.
class DeliveryScheduler {
 public:
  virtual ~DeliveryScheduler() = default;

  virtual void Submit(TransferJob job) = 0;

  /// Returns the next job to run, honoring the scheduler's internal
  /// capacity accounting, or nullopt if nothing is runnable (queue empty
  /// or all capacity in flight).
  virtual std::optional<TransferJob> Dequeue() = 0;

  /// Reports the outcome of a dequeued job. `now` is the completion time
  /// and `elapsed` the transfer duration. Frees the job's capacity.
  virtual void OnComplete(const TransferJob& job, bool success,
                          TimePoint now, Duration elapsed) = 0;

  virtual size_t pending() const = 0;
  virtual size_t in_flight() const = 0;

  /// Caps how many of one subscriber's jobs may be in flight at once —
  /// the pipelined send window. 0 (default) = unlimited, i.e. only the
  /// scheduler's slot capacity limits concurrency; the delivery engine
  /// sets this from config `delivery { window; }`. Jobs popped while
  /// their subscriber is at the cap park in a per-subscriber side queue
  /// (they already won their policy pop) and are dispatched first once a
  /// window slot frees — O(1) per dequeue, no policy re-scans.
  void SetSubscriberWindow(size_t window) { window_ = window; }
  size_t subscriber_window() const { return window_; }
  /// Jobs currently parked behind a full subscriber window.
  size_t parked() const { return parked_count_; }
  /// In-flight jobs for one subscriber (window accounting).
  size_t InFlightFor(const SubscriberName& sub) const {
    auto it = window_inflight_.find(sub);
    return it == window_inflight_.end() ? 0 : it->second;
  }

  const SchedulerMetrics& metrics() const { return metrics_; }
  ResponsivenessTracker* tracker() { return &tracker_; }

  /// Mirrors every outcome into registry metrics (completion counters,
  /// tardiness/wait/transfer-time histograms) alongside the in-struct
  /// aggregates above, which remain the source of truth for callers.
  void AttachMetrics(MetricsRegistry* registry);

  /// Observer invoked on every completion report (job, success,
  /// completion time, elapsed). Used by experiments and monitoring to
  /// break metrics down per subscriber.
  using CompletionHook =
      std::function<void(const TransferJob&, bool, TimePoint, Duration)>;
  void SetCompletionHook(CompletionHook hook) { hook_ = std::move(hook); }

 protected:
  void RecordOutcome(const TransferJob& job, bool success, TimePoint now,
                     Duration elapsed);

  // ----- Window accounting helpers for subclass Dequeue/OnComplete -----
  bool WindowPermits(const SubscriberName& sub) const {
    return window_ == 0 || InFlightFor(sub) < window_;
  }
  void NoteDispatched(const SubscriberName& sub) { window_inflight_[sub]++; }
  void NoteDone(const SubscriberName& sub) {
    auto it = window_inflight_.find(sub);
    if (it == window_inflight_.end()) return;
    if (--it->second == 0) window_inflight_.erase(it);
    // The completion may have reopened this subscriber's window; if it
    // holds parked jobs, put it on the ready queue so TakeParked finds it
    // without scanning the parked map (O(parked subscribers) per dequeue
    // at high fanout, which is exactly when windows fill).
    if (parked_.count(sub) != 0 && WindowPermits(sub) &&
        ready_set_.insert(sub).second) {
      ready_.push_back(sub);
    }
  }
  /// Parks a job popped while its subscriber's window was full.
  void Park(TransferJob job) {
    parked_[job.subscriber].push_back(std::move(job));
    ++parked_count_;
  }
  /// First parked job whose subscriber window has reopened and that the
  /// subclass's own capacity check (`admit`) accepts. FIFO per
  /// subscriber. Consults only the ready queue NoteDone maintains, so a
  /// dequeue costs O(ready subscribers), not O(parked subscribers).
  std::optional<TransferJob> TakeParked(
      const std::function<bool(const TransferJob&)>& admit);

  SchedulerMetrics metrics_;
  ResponsivenessTracker tracker_;
  CompletionHook hook_;
  size_t window_ = 0;
  size_t parked_count_ = 0;
  std::map<SubscriberName, size_t> window_inflight_;
  std::map<SubscriberName, std::deque<TransferJob>> parked_;
  /// Subscribers with parked jobs whose window has reopened, in reopen
  /// order; ready_set_ guards against duplicate enqueues.
  std::deque<SubscriberName> ready_;
  std::set<SubscriberName> ready_set_;
  Counter* completed_counter_ = nullptr;
  Counter* failed_counter_ = nullptr;
  Counter* late_counter_ = nullptr;
  Histogram* tardiness_hist_ = nullptr;
  Histogram* wait_hist_ = nullptr;
  Histogram* transfer_hist_ = nullptr;
};

/// Baseline: one global policy (FIFO / EDF / RR) and one global slot pool.
/// This is what a naive DFMS does — and what lets one slow subscriber's
/// backlog starve everyone under FIFO, or dominate slots under EDF when
/// its deadlines are oldest.
class SinglePolicyScheduler : public DeliveryScheduler {
 public:
  SinglePolicyScheduler(PolicyKind kind, size_t capacity);

  void Submit(TransferJob job) override;
  std::optional<TransferJob> Dequeue() override;
  void OnComplete(const TransferJob& job, bool success, TimePoint now,
                  Duration elapsed) override;
  size_t pending() const override { return policy_->Size() + parked_count_; }
  size_t in_flight() const override { return in_flight_; }

 private:
  std::unique_ptr<SchedulingPolicy> policy_;
  size_t capacity_;
  size_t in_flight_ = 0;
};

/// Bistro's partitioned scheduler (paper §4.3): subscribers are placed in
/// a small fixed number of levels by responsiveness; each level owns a
/// fixed share of transfer slots and runs its own intra-partition policy
/// (EDF by default). A slow or backlogged level can exhaust only its own
/// slots. A locality heuristic prefers delivering the file just sent to
/// other subscribers of the same partition while it is hot.
class PartitionedScheduler : public DeliveryScheduler {
 public:
  struct Options {
    Options() {}
    size_t num_partitions = 3;
    /// Transfer slots per partition.
    size_t slots_per_partition = 2;
    PolicyKind intra_policy = PolicyKind::kEdf;
    /// Enable the same-file locality preference.
    bool locality = true;
    /// If > 0, re-evaluate a subscriber's partition from its observed
    /// responsiveness every N completions (the paper's future-work
    /// dynamic migration; off by default, used as an ablation).
    uint64_t rebalance_every = 0;
  };

  explicit PartitionedScheduler(Options options = Options());

  /// Pins a subscriber to a partition (0 = most responsive). Unassigned
  /// subscribers default to partition 0.
  void SetPartition(const SubscriberName& sub, size_t partition);
  size_t PartitionOf(const SubscriberName& sub) const;

  void Submit(TransferJob job) override;
  std::optional<TransferJob> Dequeue() override;
  void OnComplete(const TransferJob& job, bool success, TimePoint now,
                  Duration elapsed) override;
  size_t pending() const override;
  size_t in_flight() const override;

 private:
  struct Partition {
    std::unique_ptr<SchedulingPolicy> policy;
    size_t in_flight = 0;
    FileId last_file = 0;  // locality anchor
  };

  void MaybeRebalance(const SubscriberName& sub);

  Options options_;
  std::vector<Partition> partitions_;
  std::map<SubscriberName, size_t> assignment_;
  /// Partition a dequeued job's slot belongs to; keyed by (file, sub) so
  /// rebalancing between dequeue and completion cannot corrupt slot
  /// accounting.
  std::map<std::pair<FileId, SubscriberName>, size_t> slot_owner_;
  size_t rr_cursor_ = 0;
  uint64_t completions_ = 0;
};

}  // namespace bistro

#endif  // BISTRO_SCHED_SCHEDULER_H_

#ifndef BISTRO_SCHED_JOB_H_
#define BISTRO_SCHED_JOB_H_

#include <string>

#include "core/types.h"

namespace bistro {

/// One file-to-subscriber transmission awaiting scheduling (paper §4.3).
struct TransferJob {
  FileId file_id = 0;
  SubscriberName subscriber;
  FeedName feed;
  std::string name;         // original filename
  std::string staged_path;  // where the normalized file lives
  std::string dest_path;    // subscriber-relative destination
  uint64_t size = 0;
  TimePoint arrival_time = 0;
  TimePoint data_time = 0;
  /// Delivery deadline: arrival_time + the feed's tardiness bound.
  TimePoint deadline = 0;
  /// True if this job came from backlog recomputation (a subscriber
  /// returning online) rather than a fresh arrival. Bistro delivers
  /// backfill concurrently with real-time data (§4.3).
  bool backfill = false;
  /// Delivery attempts so far (for retry/backoff bookkeeping).
  int attempts = 0;
  /// The last backoff slept before requeueing this job; drives the
  /// decorrelated-jitter exponential growth in the delivery engine.
  Duration last_backoff = 0;
};

}  // namespace bistro

#endif  // BISTRO_SCHED_JOB_H_

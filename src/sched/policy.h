#ifndef BISTRO_SCHED_POLICY_H_
#define BISTRO_SCHED_POLICY_H_

#include <memory>
#include <optional>
#include <string>

#include "common/status.h"
#include "sched/job.h"

namespace bistro {

/// Queueing discipline for transfer jobs within one scheduling domain.
///
/// The paper surveys EDF, prioritized EDF and rate-monotonic approaches
/// and observes that classical policies behave well within a homogeneous
/// partition (§4.3); these are the interchangeable building blocks the
/// partitioned scheduler composes — and the baselines E3 compares.
class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;

  virtual void Add(TransferJob job) = 0;
  /// Removes and returns the next job to run, or nullopt if empty.
  virtual std::optional<TransferJob> Next() = 0;
  virtual size_t Size() const = 0;

  /// Removes and returns a pending job for `file_id` if one exists
  /// (locality heuristic: deliver the same file to several subscribers
  /// back-to-back while it is hot). Default: linear scan subclasses may
  /// override; policies that cannot support it return nullopt.
  virtual std::optional<TransferJob> NextForFile(FileId file_id) {
    (void)file_id;
    return std::nullopt;
  }
};

enum class PolicyKind { kFifo, kEdf, kRoundRobin, kMaxBenefit };

/// Parses "fifo" / "edf" / "rr" / "maxbenefit".
Result<PolicyKind> PolicyKindFromName(std::string_view name);
std::string_view PolicyKindName(PolicyKind kind);

/// Creates a fresh policy instance.
std::unique_ptr<SchedulingPolicy> MakePolicy(PolicyKind kind);

}  // namespace bistro

#endif  // BISTRO_SCHED_POLICY_H_

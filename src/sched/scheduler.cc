#include "sched/scheduler.h"

#include <algorithm>

namespace bistro {

void DeliveryScheduler::AttachMetrics(MetricsRegistry* registry) {
  completed_counter_ = registry->GetCounter("bistro_sched_completed_total",
                                            "Transfer jobs completed");
  failed_counter_ = registry->GetCounter("bistro_sched_failed_total",
                                         "Transfer jobs that failed");
  late_counter_ = registry->GetCounter(
      "bistro_sched_late_total", "Jobs completed after their tardiness deadline");
  tardiness_hist_ = registry->GetHistogram(
      "bistro_sched_tardiness_us", "Lateness past the deadline (late jobs)");
  wait_hist_ = registry->GetHistogram(
      "bistro_sched_job_wait_us", "Arrival-to-completion wait per job");
  transfer_hist_ = registry->GetHistogram(
      "bistro_sched_transfer_elapsed_us", "Transport transfer duration");
}

void DeliveryScheduler::RecordOutcome(const TransferJob& job, bool success,
                                      TimePoint now, Duration elapsed) {
  if (hook_) hook_(job, success, now, elapsed);
  if (!success) {
    metrics_.failed++;
    if (failed_counter_ != nullptr) failed_counter_->Increment();
    tracker_.RecordFailure(job.subscriber);
    return;
  }
  metrics_.completed++;
  tracker_.RecordTransfer(job.subscriber, job.size, elapsed);
  Duration wait = now - job.arrival_time;
  metrics_.max_wait = std::max(metrics_.max_wait, wait);
  if (completed_counter_ != nullptr) {
    completed_counter_->Increment();
    wait_hist_->Record(wait);
    transfer_hist_->Record(elapsed);
  }
  if (now > job.deadline) {
    Duration tardiness = now - job.deadline;
    metrics_.late++;
    metrics_.total_tardiness += tardiness;
    metrics_.max_tardiness = std::max(metrics_.max_tardiness, tardiness);
    if (late_counter_ != nullptr) {
      late_counter_->Increment();
      tardiness_hist_->Record(tardiness);
    }
  }
}

std::optional<TransferJob> DeliveryScheduler::TakeParked(
    const std::function<bool(const TransferJob&)>& admit) {
  // One pass over the ready queue (subscribers NoteDone saw reopen), not
  // the whole parked map. Entries whose window closed again are dropped —
  // the next NoteDone for them re-enqueues; entries the subclass's
  // capacity check rejects stay ready for the next dequeue.
  for (size_t i = ready_.size(); i > 0; --i) {
    SubscriberName sub = std::move(ready_.front());
    ready_.pop_front();
    auto it = parked_.find(sub);
    if (it == parked_.end() || !WindowPermits(sub)) {
      ready_set_.erase(sub);
      continue;
    }
    std::deque<TransferJob>& queue = it->second;
    if (!admit(queue.front())) {
      ready_.push_back(std::move(sub));
      continue;
    }
    TransferJob job = std::move(queue.front());
    queue.pop_front();
    --parked_count_;
    if (queue.empty()) {
      parked_.erase(it);
      ready_set_.erase(sub);
    } else {
      // More parked jobs; window state is rechecked on next access.
      ready_.push_back(std::move(sub));
    }
    return job;
  }
  return std::nullopt;
}

SinglePolicyScheduler::SinglePolicyScheduler(PolicyKind kind, size_t capacity)
    : policy_(MakePolicy(kind)), capacity_(capacity == 0 ? 1 : capacity) {}

void SinglePolicyScheduler::Submit(TransferJob job) {
  policy_->Add(std::move(job));
}

std::optional<TransferJob> SinglePolicyScheduler::Dequeue() {
  if (in_flight_ >= capacity_) return std::nullopt;
  // A parked job whose window reopened goes first — it already won a
  // policy pop before its subscriber's window filled.
  auto job = TakeParked([](const TransferJob&) { return true; });
  while (!job.has_value()) {
    job = policy_->Next();
    if (!job.has_value()) return std::nullopt;
    if (!WindowPermits(job->subscriber)) {
      Park(std::move(*job));
      job.reset();
    }
  }
  ++in_flight_;
  NoteDispatched(job->subscriber);
  return job;
}

void SinglePolicyScheduler::OnComplete(const TransferJob& job, bool success,
                                       TimePoint now, Duration elapsed) {
  if (in_flight_ > 0) --in_flight_;
  NoteDone(job.subscriber);
  RecordOutcome(job, success, now, elapsed);
}

PartitionedScheduler::PartitionedScheduler(Options options)
    : options_(options) {
  if (options_.num_partitions == 0) options_.num_partitions = 1;
  if (options_.slots_per_partition == 0) options_.slots_per_partition = 1;
  partitions_.resize(options_.num_partitions);
  for (auto& p : partitions_) p.policy = MakePolicy(options_.intra_policy);
}

void PartitionedScheduler::SetPartition(const SubscriberName& sub,
                                        size_t partition) {
  assignment_[sub] = std::min(partition, partitions_.size() - 1);
}

size_t PartitionedScheduler::PartitionOf(const SubscriberName& sub) const {
  auto it = assignment_.find(sub);
  return it == assignment_.end() ? 0 : it->second;
}

void PartitionedScheduler::Submit(TransferJob job) {
  partitions_[PartitionOf(job.subscriber)].policy->Add(std::move(job));
}

std::optional<TransferJob> PartitionedScheduler::Dequeue() {
  // A parked job whose subscriber window reopened goes first, charged to
  // its (current) partition's slots.
  auto admit = [this](const TransferJob& j) {
    return partitions_[PartitionOf(j.subscriber)].in_flight <
           options_.slots_per_partition;
  };
  if (auto job = TakeParked(admit)) {
    size_t idx = PartitionOf(job->subscriber);
    Partition& p = partitions_[idx];
    p.in_flight++;
    p.last_file = job->file_id;
    slot_owner_[{job->file_id, job->subscriber}] = idx;
    NoteDispatched(job->subscriber);
    return job;
  }
  // Visit partitions round-robin so each level gets slot-refill turns;
  // capacity is per-partition, so a backlogged level never consumes
  // another level's slots.
  for (size_t tried = 0; tried < partitions_.size(); ++tried) {
    size_t idx = (rr_cursor_ + tried) % partitions_.size();
    Partition& p = partitions_[idx];
    if (p.in_flight >= options_.slots_per_partition) continue;
    std::optional<TransferJob> job;
    for (;;) {
      job.reset();
      if (options_.locality && p.last_file != 0) {
        job = p.policy->NextForFile(p.last_file);
      }
      if (!job.has_value()) job = p.policy->Next();
      if (!job.has_value()) break;
      if (WindowPermits(job->subscriber)) break;
      // Full window: park the pop and keep draining this partition —
      // each job parks at most once, so this stays O(1) amortized.
      Park(std::move(*job));
    }
    if (!job.has_value()) continue;
    p.in_flight++;
    p.last_file = job->file_id;
    slot_owner_[{job->file_id, job->subscriber}] = idx;
    rr_cursor_ = (idx + 1) % partitions_.size();
    NoteDispatched(job->subscriber);
    return job;
  }
  return std::nullopt;
}

void PartitionedScheduler::OnComplete(const TransferJob& job, bool success,
                                      TimePoint now, Duration elapsed) {
  size_t idx = PartitionOf(job.subscriber);
  auto slot = slot_owner_.find({job.file_id, job.subscriber});
  if (slot != slot_owner_.end()) {
    idx = slot->second;
    slot_owner_.erase(slot);
  }
  Partition& p = partitions_[idx];
  if (p.in_flight > 0) --p.in_flight;
  NoteDone(job.subscriber);
  RecordOutcome(job, success, now, elapsed);
  ++completions_;
  if (options_.rebalance_every > 0 &&
      completions_ % options_.rebalance_every == 0) {
    MaybeRebalance(job.subscriber);
  }
}

void PartitionedScheduler::MaybeRebalance(const SubscriberName& sub) {
  // Dynamic migration (paper future work, ablation flag): order known
  // subscribers by responsiveness score and split into equal bands.
  std::vector<std::pair<double, SubscriberName>> scored;
  for (const auto& [name, _] : assignment_) {
    scored.emplace_back(tracker_.Score(name), name);
  }
  if (scored.size() < partitions_.size()) {
    (void)sub;
    return;
  }
  std::sort(scored.rbegin(), scored.rend());
  size_t band = (scored.size() + partitions_.size() - 1) / partitions_.size();
  for (size_t i = 0; i < scored.size(); ++i) {
    assignment_[scored[i].second] = std::min(i / band, partitions_.size() - 1);
  }
}

size_t PartitionedScheduler::pending() const {
  size_t total = parked_count_;
  for (const auto& p : partitions_) total += p.policy->Size();
  return total;
}

size_t PartitionedScheduler::in_flight() const {
  size_t total = 0;
  for (const auto& p : partitions_) total += p.in_flight;
  return total;
}

}  // namespace bistro

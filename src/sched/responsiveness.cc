#include "sched/responsiveness.h"

#include <algorithm>

namespace bistro {

void ResponsivenessTracker::RecordTransfer(const SubscriberName& sub,
                                           uint64_t bytes, Duration elapsed) {
  Entry& e = entries_[sub];
  double secs = std::max<double>(static_cast<double>(elapsed) / kSecond, 1e-9);
  double bps = static_cast<double>(bytes) / secs;
  if (!e.seen) {
    e.throughput_bps = bps;
    e.seen = true;
  } else {
    e.throughput_bps = alpha_ * bps + (1.0 - alpha_) * e.throughput_bps;
  }
  e.failure_score /= 2.0;
  e.consecutive_failures = 0;
}

void ResponsivenessTracker::RecordFailure(const SubscriberName& sub) {
  Entry& e = entries_[sub];
  e.failure_score += 1.0;
  e.consecutive_failures += 1;
}

double ResponsivenessTracker::ThroughputBps(const SubscriberName& sub) const {
  auto it = entries_.find(sub);
  return it == entries_.end() ? 0.0 : it->second.throughput_bps;
}

double ResponsivenessTracker::FailureScore(const SubscriberName& sub) const {
  auto it = entries_.find(sub);
  return it == entries_.end() ? 0.0 : it->second.failure_score;
}

double ResponsivenessTracker::Score(const SubscriberName& sub) const {
  auto it = entries_.find(sub);
  if (it == entries_.end()) return 0.0;
  const Entry& e = it->second;
  return e.throughput_bps / (1.0 + e.failure_score);
}

int ResponsivenessTracker::ConsecutiveFailures(const SubscriberName& sub) const {
  auto it = entries_.find(sub);
  return it == entries_.end() ? 0 : it->second.consecutive_failures;
}

void ResponsivenessTracker::Reset(const SubscriberName& sub) {
  entries_.erase(sub);
}

}  // namespace bistro

#include "sched/policy.h"

#include <deque>
#include <map>
#include <queue>
#include <vector>

namespace bistro {

namespace {

// Shared helper: extract one job for `file_id` from a deque, if present.
std::optional<TransferJob> TakeForFile(std::deque<TransferJob>* q,
                                       FileId file_id) {
  for (auto it = q->begin(); it != q->end(); ++it) {
    if (it->file_id == file_id) {
      TransferJob job = std::move(*it);
      q->erase(it);
      return job;
    }
  }
  return std::nullopt;
}

/// First-come first-served: jobs run in submission order. The natural
/// behaviour of a cron-driven pipeline; backlogs head-of-line block
/// everything behind them.
class FifoPolicy : public SchedulingPolicy {
 public:
  void Add(TransferJob job) override { queue_.push_back(std::move(job)); }

  std::optional<TransferJob> Next() override {
    if (queue_.empty()) return std::nullopt;
    TransferJob job = std::move(queue_.front());
    queue_.pop_front();
    return job;
  }

  std::optional<TransferJob> NextForFile(FileId file_id) override {
    return TakeForFile(&queue_, file_id);
  }

  size_t Size() const override { return queue_.size(); }

 private:
  std::deque<TransferJob> queue_;
};

/// Earliest Deadline First: the job with the smallest deadline runs next.
class EdfPolicy : public SchedulingPolicy {
 public:
  void Add(TransferJob job) override {
    queue_.emplace(std::make_pair(job.deadline, seq_++), std::move(job));
  }

  std::optional<TransferJob> Next() override {
    if (queue_.empty()) return std::nullopt;
    auto it = queue_.begin();
    TransferJob job = std::move(it->second);
    queue_.erase(it);
    return job;
  }

  std::optional<TransferJob> NextForFile(FileId file_id) override {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->second.file_id == file_id) {
        TransferJob job = std::move(it->second);
        queue_.erase(it);
        return job;
      }
    }
    return std::nullopt;
  }

  size_t Size() const override { return queue_.size(); }

 private:
  // (deadline, insertion seq) -> job; ties resolve FIFO.
  std::map<std::pair<TimePoint, uint64_t>, TransferJob> queue_;
  uint64_t seq_ = 0;
};

/// Round-robin across subscribers: each subscriber has a FIFO lane and
/// lanes take turns, so one backlogged subscriber cannot monopolize the
/// head of the queue (but gets no deadline awareness either).
class RoundRobinPolicy : public SchedulingPolicy {
 public:
  void Add(TransferJob job) override {
    auto [it, inserted] = lanes_.try_emplace(job.subscriber);
    it->second.push_back(std::move(job));
    if (inserted) order_.push_back(it->first);
    ++size_;
  }

  std::optional<TransferJob> Next() override {
    if (size_ == 0) return std::nullopt;
    for (size_t tried = 0; tried < order_.size(); ++tried) {
      cursor_ = (cursor_ + 1) % order_.size();
      auto it = lanes_.find(order_[cursor_]);
      if (it != lanes_.end() && !it->second.empty()) {
        TransferJob job = std::move(it->second.front());
        it->second.pop_front();
        --size_;
        return job;
      }
    }
    return std::nullopt;
  }

  std::optional<TransferJob> NextForFile(FileId file_id) override {
    for (auto& [_, lane] : lanes_) {
      auto job = TakeForFile(&lane, file_id);
      if (job.has_value()) {
        --size_;
        return job;
      }
    }
    return std::nullopt;
  }

  size_t Size() const override { return size_; }

 private:
  std::map<SubscriberName, std::deque<TransferJob>> lanes_;
  std::vector<SubscriberName> order_;
  size_t cursor_ = 0;
  size_t size_ = 0;
};

/// Max-Benefit scheduling (cited by the paper from the stream-warehouse
/// update literature [6]): run the job with the highest benefit per unit
/// of resource. Transfer cost is proportional to file size, and all
/// deliveries carry equal benefit, so priority is benefit density 1/size
/// (shortest transfer first), with the earlier deadline breaking ties —
/// small real-time files overtake bulk backfill.
class MaxBenefitPolicy : public SchedulingPolicy {
 public:
  void Add(TransferJob job) override {
    queue_.emplace(Key{job.size, job.deadline, seq_++}, std::move(job));
  }

  std::optional<TransferJob> Next() override {
    if (queue_.empty()) return std::nullopt;
    auto it = queue_.begin();
    TransferJob job = std::move(it->second);
    queue_.erase(it);
    return job;
  }

  std::optional<TransferJob> NextForFile(FileId file_id) override {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->second.file_id == file_id) {
        TransferJob job = std::move(it->second);
        queue_.erase(it);
        return job;
      }
    }
    return std::nullopt;
  }

  size_t Size() const override { return queue_.size(); }

 private:
  struct Key {
    uint64_t size;
    TimePoint deadline;
    uint64_t seq;
    bool operator<(const Key& o) const {
      if (size != o.size) return size < o.size;  // highest 1/size first
      if (deadline != o.deadline) return deadline < o.deadline;
      return seq < o.seq;
    }
  };
  std::map<Key, TransferJob> queue_;
  uint64_t seq_ = 0;
};

}  // namespace

Result<PolicyKind> PolicyKindFromName(std::string_view name) {
  if (name == "fifo") return PolicyKind::kFifo;
  if (name == "edf") return PolicyKind::kEdf;
  if (name == "rr") return PolicyKind::kRoundRobin;
  if (name == "maxbenefit") return PolicyKind::kMaxBenefit;
  return Status::InvalidArgument("unknown policy: " + std::string(name));
}

std::string_view PolicyKindName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kFifo:
      return "fifo";
    case PolicyKind::kEdf:
      return "edf";
    case PolicyKind::kRoundRobin:
      return "rr";
    case PolicyKind::kMaxBenefit:
      return "maxbenefit";
  }
  return "?";
}

std::unique_ptr<SchedulingPolicy> MakePolicy(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kFifo:
      return std::make_unique<FifoPolicy>();
    case PolicyKind::kEdf:
      return std::make_unique<EdfPolicy>();
    case PolicyKind::kRoundRobin:
      return std::make_unique<RoundRobinPolicy>();
    case PolicyKind::kMaxBenefit:
      return std::make_unique<MaxBenefitPolicy>();
  }
  return nullptr;
}

}  // namespace bistro

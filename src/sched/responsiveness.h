#ifndef BISTRO_SCHED_RESPONSIVENESS_H_
#define BISTRO_SCHED_RESPONSIVENESS_H_

#include <map>
#include <string>

#include "core/types.h"

namespace bistro {

/// Per-subscriber responsiveness statistics (paper §4.3): an EWMA of
/// observed transfer throughput plus a decaying failure score. The
/// partitioned scheduler uses these to place subscribers into levels so
/// slow or failing subscribers cannot starve responsive ones.
class ResponsivenessTracker {
 public:
  /// `alpha` is the EWMA weight of the newest observation.
  explicit ResponsivenessTracker(double alpha = 0.2) : alpha_(alpha) {}

  /// Records a successful transfer of `bytes` taking `elapsed`.
  void RecordTransfer(const SubscriberName& sub, uint64_t bytes,
                      Duration elapsed);

  /// Records a failed delivery attempt.
  void RecordFailure(const SubscriberName& sub);

  /// Smoothed throughput estimate in bytes/sec (0 if never observed).
  double ThroughputBps(const SubscriberName& sub) const;

  /// Decaying failure score (each failure adds 1, each success halves).
  double FailureScore(const SubscriberName& sub) const;

  /// Overall responsiveness score: higher is better. Combines throughput
  /// with a penalty factor for recent failures.
  double Score(const SubscriberName& sub) const;

  /// Consecutive failures since the last success (drives offline
  /// detection in the delivery engine, §4.2).
  int ConsecutiveFailures(const SubscriberName& sub) const;

  void Reset(const SubscriberName& sub);

 private:
  struct Entry {
    double throughput_bps = 0;
    bool seen = false;
    double failure_score = 0;
    int consecutive_failures = 0;
  };

  double alpha_;
  std::map<SubscriberName, Entry> entries_;
};

}  // namespace bistro

#endif  // BISTRO_SCHED_RESPONSIVENESS_H_

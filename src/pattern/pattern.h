#ifndef BISTRO_PATTERN_PATTERN_H_
#define BISTRO_PATTERN_PATTERN_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/time.h"

namespace bistro {

/// One element of a compiled feed pattern.
///
/// Bistro patterns use a printf-inspired syntax instead of full regular
/// expressions (paper §3.1): simpler to write, and each specifier carries
/// *semantics* — `%Y%m%d` is not just "8 digits", it is the file's data
/// timestamp, which drives normalization and batching.
struct PatternToken {
  enum class Kind {
    kLiteral,   // exact text
    kString,    // %s : non-empty arbitrary string (lazy)
    kInt,       // %i : decimal integer, arbitrary width
    kYear4,     // %Y : 4-digit year
    kYear2,     // %y : 2-digit year (2000-based)
    kMonth,     // %m : 2-digit month
    kDay,       // %d : 2-digit day
    kHour,      // %H : 2-digit hour
    kMinute,    // %M : 2-digit minute
    kSecond,    // %S : 2-digit second
  };
  Kind kind = Kind::kLiteral;
  std::string literal;  // only for kLiteral

  bool IsTimeField() const {
    return kind != Kind::kLiteral && kind != Kind::kString && kind != Kind::kInt;
  }
  /// Fixed match width for fixed-width kinds, 0 for variable-width.
  int FixedWidth() const;

  bool operator==(const PatternToken&) const = default;
};

/// The fields extracted from a successful pattern match.
struct MatchResult {
  /// Values of %s fields, in order of appearance.
  std::vector<std::string> strings;
  /// Values of %i fields, in order of appearance.
  std::vector<int64_t> ints;
  /// Timestamp assembled from the time fields present (missing components
  /// default to the epoch's). Unset if the pattern has no time fields.
  std::optional<TimePoint> timestamp;
  /// The civil components that were actually present in the pattern.
  CivilTime civil;
  bool has_time = false;
};

/// A compiled feed filename pattern, e.g. "MEMORY%s.%Y%m%d.gz".
///
/// Supports matching (with field extraction) and longest-literal-prefix
/// queries (used by the classifier's pattern index).
class Pattern {
 public:
  /// Compiles `spec`. Errors on unknown % specifiers; "%%" is a literal %.
  static Result<Pattern> Compile(std::string_view spec);

  /// Matches the full `name`; returns extracted fields on success.
  std::optional<MatchResult> Match(std::string_view name) const;

  /// Non-allocating match. With `out == nullptr` this is a pure accept
  /// test: the matcher runs with captures compiled out, so reject paths
  /// build no strings and no vectors at all. With `out` non-null the
  /// fields are written into `*out` (clearing it first); a caller that
  /// reuses one MatchResult across calls amortizes its buffers. Returns
  /// whether the name matched.
  bool TryMatch(std::string_view name, MatchResult* out) const;

  /// True if `name` matches (cheaper than Match when fields are unneeded:
  /// no MatchResult vectors are constructed on either path).
  bool Matches(std::string_view name) const {
    return TryMatch(name, nullptr);
  }

  /// The literal prefix before the first variable token ("MEMORY" above).
  const std::string& literal_prefix() const { return literal_prefix_; }

  /// Original spec text.
  const std::string& spec() const { return spec_; }

  const std::vector<PatternToken>& tokens() const { return tokens_; }

  /// Renders this pattern with fields substituted back in — the inverse of
  /// Match, used by the normalizer (see normalizer.h). Fails if the match
  /// lacks a field the pattern needs.
  Result<std::string> Render(const MatchResult& fields) const;

 private:
  std::string spec_;
  std::vector<PatternToken> tokens_;
  std::string literal_prefix_;
};

}  // namespace bistro

#endif  // BISTRO_PATTERN_PATTERN_H_

#include "pattern/pattern.h"

#include <algorithm>

#include "common/strings.h"

namespace bistro {

int PatternToken::FixedWidth() const {
  switch (kind) {
    case Kind::kLiteral:
      return static_cast<int>(literal.size());
    case Kind::kYear4:
      return 4;
    case Kind::kYear2:
    case Kind::kMonth:
    case Kind::kDay:
    case Kind::kHour:
    case Kind::kMinute:
    case Kind::kSecond:
      return 2;
    case Kind::kString:
    case Kind::kInt:
      return 0;
  }
  return 0;
}

Result<Pattern> Pattern::Compile(std::string_view spec) {
  Pattern p;
  p.spec_ = std::string(spec);
  std::string current_literal;
  auto flush_literal = [&] {
    if (!current_literal.empty()) {
      PatternToken t;
      t.kind = PatternToken::Kind::kLiteral;
      t.literal = std::move(current_literal);
      current_literal.clear();
      p.tokens_.push_back(std::move(t));
    }
  };
  for (size_t i = 0; i < spec.size(); ++i) {
    char c = spec[i];
    if (c != '%') {
      current_literal += c;
      continue;
    }
    if (i + 1 >= spec.size()) {
      return Status::InvalidArgument("pattern ends with bare %: " + p.spec_);
    }
    char f = spec[++i];
    if (f == '%') {
      current_literal += '%';
      continue;
    }
    PatternToken t;
    switch (f) {
      case 's':
        t.kind = PatternToken::Kind::kString;
        break;
      case 'i':
        t.kind = PatternToken::Kind::kInt;
        break;
      case 'Y':
        t.kind = PatternToken::Kind::kYear4;
        break;
      case 'y':
        t.kind = PatternToken::Kind::kYear2;
        break;
      case 'm':
        t.kind = PatternToken::Kind::kMonth;
        break;
      case 'd':
        t.kind = PatternToken::Kind::kDay;
        break;
      case 'H':
        t.kind = PatternToken::Kind::kHour;
        break;
      case 'M':
        t.kind = PatternToken::Kind::kMinute;
        break;
      case 'S':
        t.kind = PatternToken::Kind::kSecond;
        break;
      default:
        return Status::InvalidArgument(
            StrFormat("unknown pattern specifier %%%c in '%s'", f,
                      p.spec_.c_str()));
    }
    flush_literal();
    p.tokens_.push_back(std::move(t));
  }
  flush_literal();
  // Adjacent variable-width tokens of the same open-ended type are
  // ambiguous (%s%s); reject them so every field has a deterministic value.
  for (size_t i = 0; i + 1 < p.tokens_.size(); ++i) {
    const auto& a = p.tokens_[i];
    const auto& b = p.tokens_[i + 1];
    if (a.FixedWidth() == 0 && b.kind == PatternToken::Kind::kString) {
      return Status::InvalidArgument(
          "ambiguous pattern: %s preceded by variable-width field in '" +
          p.spec_ + "'");
    }
    if (a.kind == PatternToken::Kind::kInt &&
        b.kind == PatternToken::Kind::kInt) {
      return Status::InvalidArgument("ambiguous pattern: %i%i in '" + p.spec_ +
                                     "'");
    }
  }
  if (!p.tokens_.empty() &&
      p.tokens_[0].kind == PatternToken::Kind::kLiteral) {
    p.literal_prefix_ = p.tokens_[0].literal;
  }
  return p;
}

namespace {

/// Capture state for the matcher. %s fields are recorded as (pos, len)
/// spans into the name — no string is materialized until the whole match
/// succeeds, so backtracking over reject paths never allocates (beyond
/// the amortized vector capacity, which the thread-local scratch reuses).
struct MatchState {
  std::vector<std::pair<size_t, size_t>> string_spans;
  std::vector<int64_t> ints;
  CivilTime civil;
  bool has_time = false;

  void Reset() {
    string_spans.clear();
    ints.clear();
    civil = CivilTime{};
    has_time = false;
  }
};

bool ParseFixedDigits(std::string_view name, size_t pos, int width, int* out) {
  if (pos + static_cast<size_t>(width) > name.size()) return false;
  int v = 0;
  for (int i = 0; i < width; ++i) {
    char c = name[pos + static_cast<size_t>(i)];
    if (!IsDigit(c)) return false;
    v = v * 10 + (c - '0');
  }
  *out = v;
  return true;
}

// Recursive matcher with backtracking on the variable-width tokens.
// Compiled twice: Capture=false is the pure accept test (no state writes
// at all, only the range checks that gate acceptance), Capture=true
// records spans/values into `state`.
template <bool Capture>
bool MatchTokens(const std::vector<PatternToken>& tokens, size_t ti,
                 std::string_view name, size_t pos, MatchState* state) {
  if (ti == tokens.size()) return pos == name.size();
  const PatternToken& t = tokens[ti];
  using Kind = PatternToken::Kind;
  switch (t.kind) {
    case Kind::kLiteral: {
      if (name.compare(pos, t.literal.size(), t.literal) != 0) return false;
      return MatchTokens<Capture>(tokens, ti + 1, name,
                                  pos + t.literal.size(), state);
    }
    case Kind::kString: {
      // Lazy: try the shortest non-empty span first, extending on failure.
      for (size_t len = 1; pos + len <= name.size(); ++len) {
        if constexpr (Capture) state->string_spans.emplace_back(pos, len);
        if (MatchTokens<Capture>(tokens, ti + 1, name, pos + len, state)) {
          return true;
        }
        if constexpr (Capture) state->string_spans.pop_back();
        // Prune: if the next token is a literal, jump to its next occurrence.
        if (ti + 1 < tokens.size() &&
            tokens[ti + 1].kind == Kind::kLiteral) {
          size_t next = name.find(tokens[ti + 1].literal, pos + len + 1);
          if (next == std::string_view::npos) return false;
          len = next - pos - 1;
        }
      }
      return false;
    }
    case Kind::kInt: {
      size_t len = 0;
      while (pos + len < name.size() && IsDigit(name[pos + len])) ++len;
      if (len == 0) return false;
      // Greedy with backtracking: prefer the longest digit run.
      for (size_t use = len; use >= 1; --use) {
        auto v = ParseInt(name.substr(pos, use));
        if (!v) continue;  // overflow for absurd lengths
        if constexpr (Capture) state->ints.push_back(*v);
        if (MatchTokens<Capture>(tokens, ti + 1, name, pos + use, state)) {
          return true;
        }
        if constexpr (Capture) state->ints.pop_back();
      }
      return false;
    }
    default: {
      int v = 0;
      int width = t.FixedWidth();
      if (!ParseFixedDigits(name, pos, width, &v)) return false;
      CivilTime saved;
      bool saved_has_time = false;
      if constexpr (Capture) {
        saved = state->civil;
        saved_has_time = state->has_time;
      }
      switch (t.kind) {
        case Kind::kYear4:
          if constexpr (Capture) state->civil.year = v;
          break;
        case Kind::kYear2:
          if constexpr (Capture) state->civil.year = 2000 + v;
          break;
        case Kind::kMonth:
          if (v < 1 || v > 12) return false;
          if constexpr (Capture) state->civil.month = v;
          break;
        case Kind::kDay:
          if (v < 1 || v > 31) return false;
          if constexpr (Capture) state->civil.day = v;
          break;
        case Kind::kHour:
          if (v > 23) return false;
          if constexpr (Capture) state->civil.hour = v;
          break;
        case Kind::kMinute:
          if (v > 59) return false;
          if constexpr (Capture) state->civil.minute = v;
          break;
        case Kind::kSecond:
          if (v > 59) return false;
          if constexpr (Capture) state->civil.second = v;
          break;
        default:
          return false;
      }
      if constexpr (Capture) state->has_time = true;
      if (MatchTokens<Capture>(tokens, ti + 1, name,
                               pos + static_cast<size_t>(width), state)) {
        return true;
      }
      if constexpr (Capture) {
        state->civil = saved;
        state->has_time = saved_has_time;
      }
      return false;
    }
  }
}

}  // namespace

bool Pattern::TryMatch(std::string_view name, MatchResult* out) const {
  if (out == nullptr) {
    return MatchTokens<false>(tokens_, 0, name, 0, nullptr);
  }
  // Thread-local scratch: the span/int vectors keep their capacity across
  // calls, so steady-state matching performs no heap allocation except
  // the strings of a *successful* capture.
  static thread_local MatchState state;
  state.Reset();
  if (!MatchTokens<true>(tokens_, 0, name, 0, &state)) return false;
  out->strings.resize(state.string_spans.size());
  for (size_t i = 0; i < state.string_spans.size(); ++i) {
    const auto& [pos, len] = state.string_spans[i];
    out->strings[i].assign(name.data() + pos, len);
  }
  out->ints.assign(state.ints.begin(), state.ints.end());
  out->civil = state.civil;
  out->has_time = state.has_time;
  out->timestamp.reset();
  if (state.has_time) out->timestamp = FromCivil(state.civil);
  return true;
}

std::optional<MatchResult> Pattern::Match(std::string_view name) const {
  MatchResult r;
  if (!TryMatch(name, &r)) return std::nullopt;
  return r;
}

Result<std::string> Pattern::Render(const MatchResult& fields) const {
  std::string out;
  size_t si = 0, ii = 0;
  using Kind = PatternToken::Kind;
  for (const auto& t : tokens_) {
    switch (t.kind) {
      case Kind::kLiteral:
        out += t.literal;
        break;
      case Kind::kString:
        if (si >= fields.strings.size()) {
          return Status::InvalidArgument("render: missing %s field for " + spec_);
        }
        out += fields.strings[si++];
        break;
      case Kind::kInt:
        if (ii >= fields.ints.size()) {
          return Status::InvalidArgument("render: missing %i field for " + spec_);
        }
        out += std::to_string(fields.ints[ii++]);
        break;
      case Kind::kYear4:
        out += StrFormat("%04d", fields.civil.year);
        break;
      case Kind::kYear2:
        out += StrFormat("%02d", fields.civil.year % 100);
        break;
      case Kind::kMonth:
        out += StrFormat("%02d", fields.civil.month);
        break;
      case Kind::kDay:
        out += StrFormat("%02d", fields.civil.day);
        break;
      case Kind::kHour:
        out += StrFormat("%02d", fields.civil.hour);
        break;
      case Kind::kMinute:
        out += StrFormat("%02d", fields.civil.minute);
        break;
      case Kind::kSecond:
        out += StrFormat("%02d", fields.civil.second);
        break;
    }
  }
  return out;
}

}  // namespace bistro

#include "pattern/normalizer.h"

namespace bistro {

Result<Normalizer> Normalizer::Create(const NormalizeSpec& spec) {
  Normalizer n;
  n.spec_ = spec;
  if (!spec.rename_template.empty()) {
    BISTRO_ASSIGN_OR_RETURN(Pattern p, Pattern::Compile(spec.rename_template));
    n.template_ = std::move(p);
  }
  return n;
}

Result<NormalizedFile> Normalizer::Apply(std::string_view name,
                                         const MatchResult& fields,
                                         std::string content) const {
  NormalizedFile out;
  if (template_.has_value()) {
    BISTRO_ASSIGN_OR_RETURN(out.relative_path, template_->Render(fields));
  } else {
    out.relative_path = std::string(name);
  }
  switch (spec_.action) {
    case CompressionAction::kPassthrough:
      out.content = std::move(content);
      break;
    case CompressionAction::kCompress:
      out.content = GetCodec(spec_.codec)->Compress(content);
      break;
    case CompressionAction::kDecompress: {
      BISTRO_ASSIGN_OR_RETURN(out.content, AutoDecompress(content));
      break;
    }
  }
  return out;
}

}  // namespace bistro

#ifndef BISTRO_PATTERN_NORMALIZER_H_
#define BISTRO_PATTERN_NORMALIZER_H_

#include <optional>
#include <string>

#include "compress/codec.h"
#include "pattern/pattern.h"

namespace bistro {

/// What to do with file contents while normalizing (paper §3.1 item 2).
enum class CompressionAction {
  kPassthrough,  // leave bytes as-is
  kCompress,     // compress with the configured codec
  kDecompress,   // expand a Bistro codec frame (plain data passes through)
};

/// Per-feed normalization policy: how a classified file is renamed and
/// recoded before it is placed in the staging area.
///
/// The rename template is itself a Bistro pattern; its fields are filled
/// from the *source* pattern's match, so semantic knowledge embedded in the
/// feed pattern (timestamps, poller ids) drives the normalized layout —
/// e.g. source "MEMORY%s.%Y%m%d.gz" with template "%Y/%m/%d/MEMORY%s.dat"
/// produces daily directories.
struct NormalizeSpec {
  /// Rename template; empty keeps the original filename.
  std::string rename_template;
  CompressionAction action = CompressionAction::kPassthrough;
  CodecKind codec = CodecKind::kLz;

  bool operator==(const NormalizeSpec&) const = default;
};

/// Result of normalizing one file.
struct NormalizedFile {
  std::string relative_path;  // path relative to the feed's staging root
  std::string content;
};

/// Applies a NormalizeSpec to a classified file.
class Normalizer {
 public:
  /// Validates and compiles the spec (template syntax, codec).
  static Result<Normalizer> Create(const NormalizeSpec& spec);

  /// Normalizes `name` (which matched a feed pattern yielding `fields`)
  /// with contents `content`.
  Result<NormalizedFile> Apply(std::string_view name,
                               const MatchResult& fields,
                               std::string content) const;

  const NormalizeSpec& spec() const { return spec_; }

 private:
  NormalizeSpec spec_;
  std::optional<Pattern> template_;
};

}  // namespace bistro

#endif  // BISTRO_PATTERN_NORMALIZER_H_

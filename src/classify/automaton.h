#ifndef BISTRO_CLASSIFY_AUTOMATON_H_
#define BISTRO_CLASSIFY_AUTOMATON_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "analyzer/tokenizer.h"
#include "config/registry.h"
#include "pattern/pattern.h"

namespace bistro {

/// Compile/size statistics for one compiled feed-table automaton, exposed
/// through metrics and the `classifier` admin command.
struct AutomatonStats {
  uint64_t patterns = 0;       // (feed, pattern) pairs compiled in
  uint64_t nfa_states = 0;     // states before subset construction
  uint64_t dfa_states = 0;
  uint64_t dense_rows = 0;     // byte-indexed 256-entry rows (hot states)
  uint64_t sparse_rows = 0;    // range-list fallback rows (cold states)
  uint64_t accept_sets = 0;    // distinct terminal (feed, pattern) sets
  uint64_t memory_bytes = 0;   // resident footprint of the tables
  uint64_t compile_micros = 0;
};

/// The entire feed table compiled into one DFA (ROADMAP item 3): every
/// registered feed's primary and alternative patterns fuse into a single
/// table-driven automaton, so classifying a filename is one left-to-right
/// scan — no per-candidate pattern dispatch, however many feeds overlap.
///
/// Construction is the classic pipeline: each printf-style pattern lowers
/// to an NFA fragment (literals become byte chains; the constrained
/// two-digit time fields become tiny alternations over their positional
/// digit classes, e.g. month = '0'[1-9] | '1'[0-2]; `%s`/`%i` become
/// self-loop states), the fragments share one start state, and subset
/// construction produces a DFA whose terminal states carry a precomputed
/// *accept set*: the (feed, pattern) pairs that match, in registry order,
/// deduplicated to the feed-name list a Classification needs plus the
/// first matching pattern as the field-capture plan. Hot states (breadth-
/// first from the root) get dense 256-entry rows; the long cold tails of
/// 10^4–10^5-pattern tables fall back to sorted byte-range rows, keeping
/// the table tens of bytes per pattern instead of a kilobyte per state.
///
/// Exactness: the DFA accepts a name iff some backtracking split of
/// `Pattern::Match` accepts it, with one deliberate exception — `%i`
/// compiles to an unbounded digit self-loop, while the interpreter's
/// ParseInt refuses spans that overflow int64. The two can only diverge
/// when the name contains a digit run of >= kVerifyDigitRun characters,
/// which the scan detects as it goes; callers re-verify the accept set
/// with the exact matcher on that (vanishingly rare) path. Everything
/// else — `%s` non-emptiness, time-field ranges, `%%` literals — is
/// encoded in the states themselves.
///
/// Layout: state ids are assigned depth-first after construction, so the
/// long single-successor chains at the bottom of the table (each
/// pattern's literal suffix) occupy consecutive States and consecutive
/// ranges — a whole chain is a couple of cache lines instead of one miss
/// per byte. The dense-row budget is still granted breadth-first: the
/// shallowest states are the ones every scan walks through.
///
/// An automaton is immutable once compiled and safe to share across
/// threads; FeedClassifier swaps snapshots via an atomic shared_ptr
/// (RCU-style) so ingest workers classify lock-free during rebuilds. It
/// is also self-contained — patterns and feed names are copied in — so a
/// stale snapshot never dangles into a registry that was revised after
/// the compile.
class FeedAutomaton {
 public:
  /// A digit run at least this long can make ParseInt's int64-overflow
  /// backoff visible; the scan flags such names for re-verification.
  static constexpr uint32_t kVerifyDigitRun = 19;

  /// One (feed, pattern) pair a terminal state accepts. Indices point
  /// into feed_names() / pattern(); entries are ordered by registry feed
  /// order, then primary-before-alternates within a feed — the same
  /// order the linear classifier probes in.
  struct AcceptEntry {
    uint32_t feed = 0;
    uint32_t pattern = 0;
  };

  /// Precomputed classification for one terminal state.
  struct AcceptSet {
    std::vector<AcceptEntry> entries;
    /// Deduplicated feed names in entry order — copied verbatim into
    /// Classification::feeds.
    std::vector<FeedName> feeds;
    /// The capture plan: entries[0].pattern, i.e. the first matching
    /// pattern of the first matching feed. The classifier runs one
    /// non-allocating TryMatch with it to extract the primary fields.
    uint32_t primary_pattern = 0;
  };

  struct ScanOutcome {
    /// Terminal accept set, or nullptr if no feed matches. Points into
    /// the automaton; valid while the snapshot is held.
    const AcceptSet* accepts = nullptr;
    /// True when the name contains a >= kVerifyDigitRun digit run and
    /// `accepts` must be re-verified with the exact pattern matcher.
    bool verify = false;
  };

  /// Compiles every feed in `registry` (primary + alternative patterns).
  /// The snapshot records registry.version() for lazy rebuild checks.
  static std::shared_ptr<const FeedAutomaton> Compile(
      const FeedRegistry& registry);

  /// Classifies `name` in one scan.
  ScanOutcome Scan(std::string_view name) const;

  /// The fused scan: classifies `name` and, in the same pass over the
  /// bytes, appends the analyzer's NameToken segmentation to `tokens`
  /// (identical to TokenizeName(name) — both run off kNameCharClass).
  ScanOutcome ScanAndTokenize(std::string_view name,
                              std::vector<NameToken>* tokens) const;

  const Pattern& pattern(uint32_t idx) const { return patterns_[idx]; }
  const FeedName& feed_name(uint32_t idx) const { return feed_names_[idx]; }
  size_t feed_count() const { return feed_names_.size(); }

  /// Registry version this automaton was compiled at.
  uint64_t version() const { return version_; }

  const AutomatonStats& stats() const { return stats_; }

 private:
  static constexpr uint32_t kNoState = 0xFFFFFFFFu;
  static constexpr uint32_t kNoAccept = 0xFFFFFFFFu;
  /// States created this early in the breadth-first construction order
  /// get dense rows; everything deeper uses range rows.
  static constexpr uint32_t kDenseRowLimit = 2048;

  /// One contiguous byte range [lo, hi] -> target state.
  struct Range {
    uint8_t lo = 0;
    uint8_t hi = 0;
    uint32_t target = kNoState;
  };

  /// 12 bytes; `dense` fits int16 because kDenseRowLimit < 32768. Keeping
  /// the row small matters: a scan touches one State per byte, and the
  /// cold tail of a 10^5-pattern table lives or dies on cache lines.
  struct State {
    uint32_t accept = kNoAccept;   // index into accept_sets_
    uint32_t first_range = 0;      // offset into ranges_
    uint16_t num_ranges = 0;
    int16_t dense = -1;            // index into dense_rows_, or -1
  };

  FeedAutomaton() = default;

  uint32_t Step(uint32_t state, uint8_t byte) const {
    const State& s = states_[state];
    if (s.dense >= 0) return dense_rows_[static_cast<size_t>(s.dense)][byte];
    const Range* r = &ranges_[s.first_range];
    for (uint16_t i = 0; i < s.num_ranges; ++i, ++r) {
      if (byte < r->lo) break;  // ranges are sorted and disjoint
      if (byte <= r->hi) return r->target;
    }
    return kNoState;
  }

  std::vector<State> states_;
  std::vector<Range> ranges_;
  std::vector<std::array<uint32_t, 256>> dense_rows_;
  std::vector<AcceptSet> accept_sets_;
  /// Snapshot-owned copies (see class comment on self-containment).
  std::vector<Pattern> patterns_;
  std::vector<FeedName> feed_names_;
  uint64_t version_ = 0;
  AutomatonStats stats_;
};

}  // namespace bistro

#endif  // BISTRO_CLASSIFY_AUTOMATON_H_

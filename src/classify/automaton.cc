#include "classify/automaton.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>

namespace bistro {

namespace {

/// One NFA transition over a contiguous byte range.
struct NfaEdge {
  uint8_t lo = 0;
  uint8_t hi = 0;
  uint32_t target = 0;
};

struct NfaState {
  std::vector<NfaEdge> edges;
  std::vector<uint32_t> eps;
  int32_t accept = -1;  // global pattern id, -1 = none
};

/// Lowers each pattern's token list to an NFA fragment hanging off the
/// shared start state 0.
class NfaBuilder {
 public:
  NfaBuilder() { states.emplace_back(); }  // state 0 = start

  void AddPattern(const Pattern& pattern, int32_t pattern_id) {
    uint32_t cur = NewState();
    states[0].eps.push_back(cur);
    for (const PatternToken& t : pattern.tokens()) {
      using Kind = PatternToken::Kind;
      switch (t.kind) {
        case Kind::kLiteral:
          for (char c : t.literal) cur = ByteEdge(cur, static_cast<uint8_t>(c));
          break;
        case Kind::kString: {
          // Non-empty arbitrary string: enter the loop on any byte, then
          // self-loop. Exit is implicit: the loop state continues the chain.
          uint32_t loop = NewState();
          Edge(cur, 0, 255, loop);
          Edge(loop, 0, 255, loop);
          cur = loop;
          break;
        }
        case Kind::kInt: {
          // Unbounded digit self-loop; int64-overflow exactness is
          // restored by the scan's long-run verify flag (see header).
          uint32_t loop = NewState();
          Edge(cur, '0', '9', loop);
          Edge(loop, '0', '9', loop);
          cur = loop;
          break;
        }
        case Kind::kYear4:
          cur = DigitChain(cur, 4);
          break;
        case Kind::kYear2:
          cur = DigitChain(cur, 2);
          break;
        case Kind::kMonth:
          cur = TwoDigitRange(cur, 1, 12);
          break;
        case Kind::kDay:
          cur = TwoDigitRange(cur, 1, 31);
          break;
        case Kind::kHour:
          cur = TwoDigitRange(cur, 0, 23);
          break;
        case Kind::kMinute:
        case Kind::kSecond:
          cur = TwoDigitRange(cur, 0, 59);
          break;
      }
    }
    states[cur].accept = pattern_id;
  }

  std::vector<NfaState> states;

 private:
  uint32_t NewState() {
    states.emplace_back();
    return static_cast<uint32_t>(states.size() - 1);
  }
  void Edge(uint32_t from, uint8_t lo, uint8_t hi, uint32_t to) {
    states[from].edges.push_back({lo, hi, to});
  }
  uint32_t ByteEdge(uint32_t cur, uint8_t c) {
    uint32_t n = NewState();
    Edge(cur, c, c, n);
    return n;
  }
  uint32_t DigitChain(uint32_t cur, int width) {
    for (int i = 0; i < width; ++i) {
      uint32_t n = NewState();
      Edge(cur, '0', '9', n);
      cur = n;
    }
    return cur;
  }
  /// A constrained two-digit field [lo, hi] decomposes into positional
  /// digit classes: month [1,12] = '0'[1-9] | '1'[0-2], hour [0,23] =
  /// [0-1][0-9] | '2'[0-3], and so on — exactly the interpreter's range
  /// check, expressed as states.
  uint32_t TwoDigitRange(uint32_t cur, int lo, int hi) {
    uint32_t out = NewState();
    for (int d1 = lo / 10; d1 <= hi / 10; ++d1) {
      int lo2 = (d1 == lo / 10) ? lo % 10 : 0;
      int hi2 = (d1 == hi / 10) ? hi % 10 : 9;
      uint32_t mid = NewState();
      Edge(cur, static_cast<uint8_t>('0' + d1), static_cast<uint8_t>('0' + d1),
           mid);
      Edge(mid, static_cast<uint8_t>('0' + lo2),
           static_cast<uint8_t>('0' + hi2), out);
    }
    return out;
  }
};

struct VecHash {
  size_t operator()(const std::vector<uint32_t>& v) const {
    uint64_t h = 1469598103934665603ull;
    for (uint32_t x : v) {
      h ^= x;
      h *= 1099511628211ull;
    }
    return static_cast<size_t>(h);
  }
};

struct IntVecHash {
  size_t operator()(const std::vector<int32_t>& v) const {
    uint64_t h = 1469598103934665603ull;
    for (int32_t x : v) {
      h ^= static_cast<uint32_t>(x);
      h *= 1099511628211ull;
    }
    return static_cast<size_t>(h);
  }
};

}  // namespace

std::shared_ptr<const FeedAutomaton> FeedAutomaton::Compile(
    const FeedRegistry& registry) {
  auto t0 = std::chrono::steady_clock::now();
  auto automaton = std::shared_ptr<FeedAutomaton>(new FeedAutomaton());
  FeedAutomaton& a = *automaton;
  a.version_ = registry.version();

  // Snapshot-owned copies of the table: feed names and compiled patterns
  // in registry order, primary before alternates. Global pattern ids are
  // therefore ordered exactly the way the linear classifier probes.
  std::vector<uint32_t> pattern_feed;  // pattern id -> feed index
  for (const RegisteredFeed* feed : registry.feeds()) {
    uint32_t fi = static_cast<uint32_t>(a.feed_names_.size());
    a.feed_names_.push_back(feed->spec.name);
    a.patterns_.push_back(feed->pattern);
    pattern_feed.push_back(fi);
    for (const Pattern& alt : feed->alts) {
      a.patterns_.push_back(alt);
      pattern_feed.push_back(fi);
    }
  }

  NfaBuilder nfa;
  for (size_t pid = 0; pid < a.patterns_.size(); ++pid) {
    nfa.AddPattern(a.patterns_[pid], static_cast<int32_t>(pid));
  }

  // Subset construction. The worklist is processed in creation order
  // (breadth-first from the root); the relayout pass below renumbers the
  // result depth-first for locality while the dense-row budget keeps
  // following this breadth-first discovery order.
  std::unordered_map<std::vector<uint32_t>, uint32_t, VecHash> subset_ids;
  std::vector<std::vector<uint32_t>> subsets;
  std::unordered_map<std::vector<int32_t>, uint32_t, IntVecHash> accept_ids;

  std::vector<uint32_t> mark(nfa.states.size(), 0);
  uint32_t epoch = 0;

  // Expands `set` (members already marked with `epoch`) through epsilon
  // edges and canonicalizes it.
  auto close = [&](std::vector<uint32_t>* set) {
    for (size_t i = 0; i < set->size(); ++i) {
      for (uint32_t e : nfa.states[(*set)[i]].eps) {
        if (mark[e] != epoch) {
          mark[e] = epoch;
          set->push_back(e);
        }
      }
    }
    std::sort(set->begin(), set->end());
  };

  auto intern = [&](std::vector<uint32_t>&& set) {
    auto it = subset_ids.find(set);
    if (it != subset_ids.end()) return it->second;
    uint32_t id = static_cast<uint32_t>(subsets.size());
    subset_ids.emplace(set, id);
    subsets.push_back(std::move(set));
    a.states_.emplace_back();
    // Accept set: the pattern ids of accepting members, sorted = ordered
    // by (feed, primary-before-alt) thanks to the id assignment above.
    std::vector<int32_t> pats;
    for (uint32_t s : subsets[id]) {
      if (nfa.states[s].accept >= 0) pats.push_back(nfa.states[s].accept);
    }
    if (!pats.empty()) {
      std::sort(pats.begin(), pats.end());
      auto ait = accept_ids.find(pats);
      if (ait != accept_ids.end()) {
        a.states_[id].accept = ait->second;
      } else {
        uint32_t aid = static_cast<uint32_t>(a.accept_sets_.size());
        accept_ids.emplace(pats, aid);
        AcceptSet set_out;
        set_out.entries.reserve(pats.size());
        for (int32_t p : pats) {
          set_out.entries.push_back({pattern_feed[static_cast<size_t>(p)],
                                     static_cast<uint32_t>(p)});
        }
        for (const AcceptEntry& e : set_out.entries) {
          if (set_out.feeds.empty() ||
              a.feed_names_[e.feed] != set_out.feeds.back()) {
            set_out.feeds.push_back(a.feed_names_[e.feed]);
          }
        }
        set_out.primary_pattern = set_out.entries.front().pattern;
        a.accept_sets_.push_back(std::move(set_out));
        a.states_[id].accept = aid;
      }
    }
    return id;
  };

  {
    ++epoch;
    std::vector<uint32_t> start{0};
    mark[0] = epoch;
    close(&start);
    intern(std::move(start));
  }

  std::vector<NfaEdge> edges;
  std::vector<int> bounds;
  std::vector<uint32_t> seed;
  for (uint32_t id = 0; id < subsets.size(); ++id) {
    edges.clear();
    for (uint32_t s : subsets[id]) {
      const auto& es = nfa.states[s].edges;
      edges.insert(edges.end(), es.begin(), es.end());
    }
    // Split the byte axis at every edge boundary; within one segment the
    // active edge set — and so the successor subset — is constant.
    bounds.clear();
    for (const NfaEdge& e : edges) {
      bounds.push_back(e.lo);
      bounds.push_back(e.hi + 1);
    }
    std::sort(bounds.begin(), bounds.end());
    bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
    uint32_t first_range = static_cast<uint32_t>(a.ranges_.size());
    for (size_t bi = 0; bi + 1 <= bounds.size(); ++bi) {
      int b = bounds[bi];
      if (b > 255) break;
      int hi = (bi + 1 < bounds.size()) ? bounds[bi + 1] - 1 : 255;
      ++epoch;
      seed.clear();
      for (const NfaEdge& e : edges) {
        if (e.lo <= b && b <= e.hi && mark[e.target] != epoch) {
          mark[e.target] = epoch;
          seed.push_back(e.target);
        }
      }
      if (seed.empty()) continue;
      close(&seed);
      uint32_t target = intern(std::vector<uint32_t>(seed));
      // Merge with the previous range when contiguous and same target.
      if (a.states_[id].num_ranges > 0) {
        Range& prev = a.ranges_.back();
        if (prev.target == target && static_cast<int>(prev.hi) + 1 == b) {
          prev.hi = static_cast<uint8_t>(hi);
          continue;
        }
      }
      a.ranges_.push_back({static_cast<uint8_t>(b), static_cast<uint8_t>(hi),
                           target});
      a.states_[id].first_range = first_range;
      ++a.states_[id].num_ranges;
    }
  }

  // Path-contiguous relayout: renumber states depth-first. Construction
  // order is breadth-first, which scatters each pattern's suffix chain
  // (one state per literal byte) across distant layers — at 10^5 patterns
  // every byte of a scan was a fresh cache miss. Pre-order DFS lays each
  // chain out consecutively in states_ and ranges_, so walking it touches
  // a couple of lines instead.
  const size_t n = a.states_.size();
  std::vector<uint32_t> order;  // new id -> construction id
  order.reserve(n);
  {
    std::vector<uint32_t> remap(n, kNoState);
    std::vector<uint32_t> stack{0};
    remap[0] = 0;
    while (!stack.empty()) {
      uint32_t old_id = stack.back();
      stack.pop_back();
      order.push_back(old_id);
      const State& os = a.states_[old_id];
      // Push children reversed so the lowest byte range is walked first.
      for (uint16_t i = os.num_ranges; i > 0; --i) {
        uint32_t t = a.ranges_[os.first_range + i - 1].target;
        if (remap[t] == kNoState) {
          remap[t] = 0;  // mark visited; final id assigned below
          stack.push_back(t);
        }
      }
    }
    for (uint32_t new_id = 0; new_id < order.size(); ++new_id) {
      remap[order[new_id]] = new_id;
    }
    std::vector<State> new_states(n);
    std::vector<Range> new_ranges;
    new_ranges.reserve(a.ranges_.size());
    for (uint32_t new_id = 0; new_id < order.size(); ++new_id) {
      const State& os = a.states_[order[new_id]];
      State ns = os;
      ns.first_range = static_cast<uint32_t>(new_ranges.size());
      for (uint16_t i = 0; i < os.num_ranges; ++i) {
        const Range& r = a.ranges_[os.first_range + i];
        new_ranges.push_back({r.lo, r.hi, remap[r.target]});
      }
      new_states[new_id] = ns;
    }
    a.states_ = std::move(new_states);
    a.ranges_ = std::move(new_ranges);

    // Dense rows go to the breadth-first head — the states every scan
    // passes through — not the DFS head (which is one deep leftmost path).
    size_t dense_count =
        std::min<size_t>(n, FeedAutomaton::kDenseRowLimit);
    a.dense_rows_.resize(dense_count);
    size_t next_row = 0;
    for (uint32_t old_id = 0; old_id < dense_count; ++old_id) {
      uint32_t id = remap[old_id];
      auto& row = a.dense_rows_[next_row];
      row.fill(kNoState);
      const State& st = a.states_[id];
      for (uint16_t i = 0; i < st.num_ranges; ++i) {
        const Range& r = a.ranges_[st.first_range + i];
        for (int b = r.lo; b <= r.hi; ++b) {
          row[static_cast<size_t>(b)] = r.target;
        }
      }
      a.states_[id].dense = static_cast<int16_t>(next_row++);
    }
  }

  auto t1 = std::chrono::steady_clock::now();
  AutomatonStats& st = a.stats_;
  st.patterns = a.patterns_.size();
  st.nfa_states = nfa.states.size();
  st.dfa_states = a.states_.size();
  st.dense_rows = a.dense_rows_.size();
  st.sparse_rows = a.states_.size() - a.dense_rows_.size();
  st.accept_sets = a.accept_sets_.size();
  st.compile_micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count());
  uint64_t bytes = a.states_.size() * sizeof(State) +
                   a.ranges_.size() * sizeof(Range) +
                   a.dense_rows_.size() * sizeof(a.dense_rows_[0]);
  for (const AcceptSet& s : a.accept_sets_) {
    bytes += s.entries.size() * sizeof(AcceptEntry);
    for (const FeedName& f : s.feeds) bytes += f.size() + sizeof(FeedName);
  }
  for (const Pattern& p : a.patterns_) {
    bytes += p.spec().size() * 2 + p.tokens().size() * sizeof(PatternToken);
  }
  for (const FeedName& f : a.feed_names_) bytes += f.size() + sizeof(FeedName);
  st.memory_bytes = bytes;
  return automaton;
}

FeedAutomaton::ScanOutcome FeedAutomaton::Scan(std::string_view name) const {
  ScanOutcome out;
  uint32_t s = 0;
  uint32_t digit_run = 0;
  for (char ch : name) {
    uint8_t c = static_cast<uint8_t>(ch);
    if (kNameCharClass[c] == NameCharKind::kDigit) {
      if (++digit_run >= kVerifyDigitRun) out.verify = true;
    } else {
      digit_run = 0;
    }
    s = Step(s, c);
    if (s == kNoState) return out;  // no pattern can match any extension
  }
  const State& st = states_[s];
  if (st.accept != kNoAccept) out.accepts = &accept_sets_[st.accept];
  return out;
}

FeedAutomaton::ScanOutcome FeedAutomaton::ScanAndTokenize(
    std::string_view name, std::vector<NameToken>* tokens) const {
  ScanOutcome out;
  uint32_t s = 0;
  uint32_t digit_run = 0;
  bool in_run = false;
  size_t run_start = 0;
  NameCharKind run_kind = NameCharKind::kSep;
  auto flush = [&](size_t end) {
    tokens->push_back({run_kind == NameCharKind::kAlpha
                           ? NameToken::Kind::kAlpha
                           : NameToken::Kind::kDigits,
                       std::string(name.substr(run_start, end - run_start))});
  };
  for (size_t i = 0; i < name.size(); ++i) {
    uint8_t c = static_cast<uint8_t>(name[i]);
    NameCharKind k = kNameCharClass[c];
    if (k == NameCharKind::kSep) {
      if (in_run) {
        flush(i);
        in_run = false;
      }
      tokens->push_back({NameToken::Kind::kSep, std::string(1, name[i])});
      digit_run = 0;
    } else {
      if (in_run && k != run_kind) {
        flush(i);
        in_run = false;
      }
      if (!in_run) {
        in_run = true;
        run_kind = k;
        run_start = i;
      }
      if (k == NameCharKind::kDigit) {
        if (++digit_run >= kVerifyDigitRun) out.verify = true;
      } else {
        digit_run = 0;
      }
    }
    if (s != kNoState) s = Step(s, c);  // keep tokenizing past a dead DFA
  }
  if (in_run) flush(name.size());
  if (s != kNoState && states_[s].accept != kNoAccept) {
    out.accepts = &accept_sets_[states_[s].accept];
  }
  return out;
}

}  // namespace bistro

#include "classify/classifier.h"

#include <algorithm>

namespace bistro {

FeedClassifier::FeedClassifier(const FeedRegistry* registry, IndexMode mode)
    : registry_(registry), mode_(mode) {
  Rebuild();
}

void FeedClassifier::Rebuild() {
  root_ = std::make_unique<TrieNode>();
  if (mode_ != IndexMode::kPrefixIndex) return;
  for (const RegisteredFeed* feed : registry_->feeds()) {
    Insert(feed, &feed->pattern);
    for (const Pattern& alt : feed->alts) Insert(feed, &alt);
  }
}

void FeedClassifier::Insert(const RegisteredFeed* feed, const Pattern* pattern) {
  TrieNode* node = root_.get();
  for (char c : pattern->literal_prefix()) {
    auto& child = node->children[c];
    if (!child) child = std::make_unique<TrieNode>();
    node = child.get();
  }
  node->candidates.emplace_back(feed, pattern);
}

void FeedClassifier::CollectCandidates(const std::string& name,
                                       std::vector<Candidate>* out) const {
  // Walk the trie along the filename; every node passed contributes the
  // candidates whose literal prefix ends there (including the root's
  // prefix-less patterns, which must always be tried).
  const TrieNode* node = root_.get();
  out->insert(out->end(), node->candidates.begin(), node->candidates.end());
  for (char c : name) {
    auto it = node->children.find(c);
    if (it == node->children.end()) break;
    node = it->second.get();
    out->insert(out->end(), node->candidates.begin(), node->candidates.end());
  }
}

Classification FeedClassifier::Classify(const std::string& name) const {
  Classification result;
  files_.fetch_add(1, std::memory_order_relaxed);
  std::vector<Candidate> candidates;
  if (mode_ == IndexMode::kPrefixIndex) {
    CollectCandidates(name, &candidates);
  } else {
    for (const RegisteredFeed* feed : registry_->feeds()) {
      candidates.emplace_back(feed, &feed->pattern);
      for (const Pattern& alt : feed->alts) candidates.emplace_back(feed, &alt);
    }
  }
  // A feed may contribute several patterns; it belongs to the result at
  // most once (first matching pattern wins for field extraction). The
  // registry hands out stable RegisteredFeed pointers, so a flat set of
  // pointers dedupes in O(matched) per candidate instead of comparing
  // dotted names against the whole result list.
  std::vector<const RegisteredFeed*> matched_feeds;
  matched_feeds.reserve(4);
  for (const auto& [feed, pattern] : candidates) {
    if (std::find(matched_feeds.begin(), matched_feeds.end(), feed) !=
        matched_feeds.end()) {
      continue;
    }
    candidate_checks_.fetch_add(1, std::memory_order_relaxed);
    auto match = pattern->Match(name);
    if (!match.has_value()) continue;
    if (result.feeds.empty()) result.primary_match = std::move(*match);
    matched_feeds.push_back(feed);
    result.feeds.push_back(feed->spec.name);
  }
  if (result.matched()) {
    matched_.fetch_add(1, std::memory_order_relaxed);
  } else {
    unmatched_.fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

}  // namespace bistro

#include "classify/classifier.h"

#include <algorithm>

namespace bistro {

FeedClassifier::TrieNode* FeedClassifier::TrieNode::Child(char c) const {
  auto it = std::lower_bound(
      children.begin(), children.end(), c,
      [](const auto& entry, char key) { return entry.first < key; });
  if (it == children.end() || it->first != c) return nullptr;
  return it->second.get();
}

FeedClassifier::TrieNode* FeedClassifier::TrieNode::ChildOrNew(char c) {
  auto it = std::lower_bound(
      children.begin(), children.end(), c,
      [](const auto& entry, char key) { return entry.first < key; });
  if (it != children.end() && it->first == c) return it->second.get();
  it = children.emplace(it, c, std::make_unique<TrieNode>());
  return it->second.get();
}

FeedClassifier::FeedClassifier(const FeedRegistry* registry, IndexMode mode)
    : registry_(registry), mode_(mode) {
  Rebuild();
}

void FeedClassifier::RebuildAutomatonLocked() const {
  std::shared_ptr<const FeedAutomaton> fresh = FeedAutomaton::Compile(*registry_);
  if (rebuilds_metric_ != nullptr) {
    const AutomatonStats& s = fresh->stats();
    rebuilds_metric_->Increment();
    states_metric_->Set(static_cast<int64_t>(s.dfa_states));
    accept_sets_metric_->Set(static_cast<int64_t>(s.accept_sets));
    memory_metric_->Set(static_cast<int64_t>(s.memory_bytes));
    compile_metric_->Record(static_cast<int64_t>(s.compile_micros));
  }
  snapshot_.store(std::move(fresh), std::memory_order_release);
}

void FeedClassifier::Rebuild() {
  if (mode_ == IndexMode::kAutomaton) {
    std::lock_guard<std::mutex> lock(rebuild_mu_);
    RebuildAutomatonLocked();
    return;
  }
  root_ = std::make_unique<TrieNode>();
  if (mode_ != IndexMode::kPrefixIndex) return;
  for (const RegisteredFeed* feed : registry_->feeds()) {
    Insert(feed, &feed->pattern);
    for (const Pattern& alt : feed->alts) Insert(feed, &alt);
  }
}

void FeedClassifier::AttachMetrics(MetricsRegistry* metrics) {
  rebuilds_metric_ = metrics->GetCounter(
      "bistro_classifier_rebuilds_total",
      "Feed-table automaton recompilations (feed revisions)");
  states_metric_ = metrics->GetGauge("bistro_classifier_dfa_states",
                                     "DFA states in the compiled feed table");
  accept_sets_metric_ =
      metrics->GetGauge("bistro_classifier_accept_sets",
                        "Distinct terminal (feed, pattern) accept sets");
  memory_metric_ = metrics->GetGauge(
      "bistro_classifier_table_bytes",
      "Resident footprint of the compiled classifier tables");
  compile_metric_ = metrics->GetHistogram(
      "bistro_classifier_compile_micros",
      "Feed-table automaton compile time in microseconds");
  // Surface the stats of the snapshot compiled before metrics attached.
  if (auto snap = automaton()) {
    const AutomatonStats& s = snap->stats();
    states_metric_->Set(static_cast<int64_t>(s.dfa_states));
    accept_sets_metric_->Set(static_cast<int64_t>(s.accept_sets));
    memory_metric_->Set(static_cast<int64_t>(s.memory_bytes));
  }
}

void FeedClassifier::Insert(const RegisteredFeed* feed, const Pattern* pattern) {
  TrieNode* node = root_.get();
  for (char c : pattern->literal_prefix()) node = node->ChildOrNew(c);
  node->candidates.emplace_back(feed, pattern);
}

void FeedClassifier::CollectCandidates(const std::string& name,
                                       std::vector<Candidate>* out) const {
  // Walk the trie along the filename; every node passed contributes the
  // candidates whose literal prefix ends there (including the root's
  // prefix-less patterns, which must always be tried).
  const TrieNode* node = root_.get();
  out->insert(out->end(), node->candidates.begin(), node->candidates.end());
  for (char c : name) {
    const TrieNode* child = node->Child(c);
    if (child == nullptr) break;
    node = child;
    out->insert(out->end(), node->candidates.begin(), node->candidates.end());
  }
}

Classification FeedClassifier::ClassifyCandidates(
    const std::string& name) const {
  Classification result;
  std::vector<Candidate> candidates;
  if (mode_ == IndexMode::kPrefixIndex) {
    CollectCandidates(name, &candidates);
  } else {
    for (const RegisteredFeed* feed : registry_->feeds()) {
      candidates.emplace_back(feed, &feed->pattern);
      for (const Pattern& alt : feed->alts) candidates.emplace_back(feed, &alt);
    }
  }
  // A feed may contribute several patterns; it belongs to the result at
  // most once (first matching pattern wins for field extraction). The
  // registry hands out stable RegisteredFeed pointers, so a flat set of
  // pointers dedupes in O(matched) per candidate instead of comparing
  // dotted names against the whole result list.
  std::vector<const RegisteredFeed*> matched_feeds;
  matched_feeds.reserve(4);
  for (const auto& [feed, pattern] : candidates) {
    if (std::find(matched_feeds.begin(), matched_feeds.end(), feed) !=
        matched_feeds.end()) {
      continue;
    }
    candidate_checks_.fetch_add(1, std::memory_order_relaxed);
    // Fields are only extracted for the primary (first) match; every
    // other candidate runs the capture-free accept test, which builds
    // no MatchResult vectors on accept or reject.
    if (result.feeds.empty()) {
      if (!pattern->TryMatch(name, &result.primary_match)) continue;
    } else {
      if (!pattern->Matches(name)) continue;
    }
    matched_feeds.push_back(feed);
    result.feeds.push_back(feed->spec.name);
  }
  return result;
}

Classification FeedClassifier::ClassifyAutomaton(
    const FeedAutomaton& automaton, const std::string& name) const {
  Classification result;
  FeedAutomaton::ScanOutcome scan = automaton.Scan(name);
  if (scan.accepts == nullptr) return result;
  const FeedAutomaton::AcceptSet& accepts = *scan.accepts;
  if (!scan.verify) {
    result.feeds = accepts.feeds;
    automaton.pattern(accepts.primary_pattern)
        .TryMatch(name, &result.primary_match);
    return result;
  }
  // Rare exact-verification path: the name carries a digit run long
  // enough that %i's int64-overflow backoff can disagree with the DFA's
  // digit loops. Re-check each accepted (feed, pattern) with the exact
  // matcher; entries are feed-major, so duplicates are adjacent.
  uint32_t last_feed = 0;
  bool have_feed = false;
  for (const FeedAutomaton::AcceptEntry& e : accepts.entries) {
    if (have_feed && e.feed == last_feed) continue;
    candidate_checks_.fetch_add(1, std::memory_order_relaxed);
    const Pattern& pattern = automaton.pattern(e.pattern);
    if (result.feeds.empty()) {
      if (!pattern.TryMatch(name, &result.primary_match)) continue;
    } else {
      if (!pattern.Matches(name)) continue;
    }
    result.feeds.push_back(automaton.feed_name(e.feed));
    last_feed = e.feed;
    have_feed = true;
  }
  return result;
}

Classification FeedClassifier::Classify(const std::string& name) const {
  if (mode_ == IndexMode::kAutomaton) {
    std::shared_ptr<const FeedAutomaton> snap =
        snapshot_.load(std::memory_order_acquire);
    if (snap == nullptr || snap->version() != registry_->version()) {
      // Lazy rebuild off the registry version bump (the
      // SubscriptionIndex idiom). Serialized so concurrent detections
      // compile once; losers re-read the fresh snapshot.
      std::lock_guard<std::mutex> lock(rebuild_mu_);
      snap = snapshot_.load(std::memory_order_acquire);
      if (snap == nullptr || snap->version() != registry_->version()) {
        RebuildAutomatonLocked();
        snap = snapshot_.load(std::memory_order_acquire);
      }
    }
    files_.fetch_add(1, std::memory_order_relaxed);
    Classification result = ClassifyAutomaton(*snap, name);
    (result.matched() ? matched_ : unmatched_)
        .fetch_add(1, std::memory_order_relaxed);
    return result;
  }
  files_.fetch_add(1, std::memory_order_relaxed);
  Classification result = ClassifyCandidates(name);
  (result.matched() ? matched_ : unmatched_)
      .fetch_add(1, std::memory_order_relaxed);
  return result;
}

Classification FeedClassifier::ClassifySnapshot(const std::string& name) const {
  if (mode_ != IndexMode::kAutomaton) return Classify(name);
  std::shared_ptr<const FeedAutomaton> snap =
      snapshot_.load(std::memory_order_acquire);
  files_.fetch_add(1, std::memory_order_relaxed);
  Classification result = ClassifyAutomaton(*snap, name);
  (result.matched() ? matched_ : unmatched_)
      .fetch_add(1, std::memory_order_relaxed);
  return result;
}

std::string_view IndexModeName(FeedClassifier::IndexMode mode) {
  switch (mode) {
    case FeedClassifier::IndexMode::kLinear:
      return "linear";
    case FeedClassifier::IndexMode::kPrefixIndex:
      return "trie";
    case FeedClassifier::IndexMode::kAutomaton:
      return "automaton";
  }
  return "automaton";
}

Result<FeedClassifier::IndexMode> IndexModeFromName(std::string_view name) {
  if (name == "automaton") return FeedClassifier::IndexMode::kAutomaton;
  if (name == "trie") return FeedClassifier::IndexMode::kPrefixIndex;
  if (name == "linear") return FeedClassifier::IndexMode::kLinear;
  return Status::InvalidArgument("unknown classifier mode '" +
                                 std::string(name) +
                                 "' (expected automaton, trie or linear)");
}

}  // namespace bistro

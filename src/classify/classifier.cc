#include "classify/classifier.h"

#include <algorithm>

namespace bistro {

FeedClassifier::FeedClassifier(const FeedRegistry* registry, IndexMode mode)
    : registry_(registry), mode_(mode) {
  Rebuild();
}

void FeedClassifier::Rebuild() {
  root_ = std::make_unique<TrieNode>();
  if (mode_ != IndexMode::kPrefixIndex) return;
  for (const RegisteredFeed* feed : registry_->feeds()) {
    Insert(feed, &feed->pattern);
    for (const Pattern& alt : feed->alts) Insert(feed, &alt);
  }
}

void FeedClassifier::Insert(const RegisteredFeed* feed, const Pattern* pattern) {
  TrieNode* node = root_.get();
  for (char c : pattern->literal_prefix()) {
    auto& child = node->children[c];
    if (!child) child = std::make_unique<TrieNode>();
    node = child.get();
  }
  node->candidates.emplace_back(feed, pattern);
}

void FeedClassifier::CollectCandidates(const std::string& name,
                                       std::vector<Candidate>* out) const {
  // Walk the trie along the filename; every node passed contributes the
  // candidates whose literal prefix ends there (including the root's
  // prefix-less patterns, which must always be tried).
  const TrieNode* node = root_.get();
  out->insert(out->end(), node->candidates.begin(), node->candidates.end());
  for (char c : name) {
    auto it = node->children.find(c);
    if (it == node->children.end()) break;
    node = it->second.get();
    out->insert(out->end(), node->candidates.begin(), node->candidates.end());
  }
}

Classification FeedClassifier::Classify(const std::string& name) {
  Classification result;
  stats_.files++;
  std::vector<Candidate> candidates;
  if (mode_ == IndexMode::kPrefixIndex) {
    CollectCandidates(name, &candidates);
  } else {
    for (const RegisteredFeed* feed : registry_->feeds()) {
      candidates.emplace_back(feed, &feed->pattern);
      for (const Pattern& alt : feed->alts) candidates.emplace_back(feed, &alt);
    }
  }
  for (const auto& [feed, pattern] : candidates) {
    // A feed may contribute several patterns; it belongs to the result
    // at most once (first matching pattern wins for field extraction).
    if (std::find(result.feeds.begin(), result.feeds.end(), feed->spec.name) !=
        result.feeds.end()) {
      continue;
    }
    stats_.candidate_checks++;
    auto match = pattern->Match(name);
    if (!match.has_value()) continue;
    if (result.feeds.empty()) result.primary_match = std::move(*match);
    result.feeds.push_back(feed->spec.name);
  }
  if (result.matched()) {
    stats_.matched++;
  } else {
    stats_.unmatched++;
  }
  return result;
}

}  // namespace bistro

#ifndef BISTRO_CLASSIFY_CLASSIFIER_H_
#define BISTRO_CLASSIFY_CLASSIFIER_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "config/registry.h"
#include "pattern/pattern.h"

namespace bistro {

/// Result of classifying one incoming filename.
struct Classification {
  /// Feeds the file belongs to (a file may match several feeds).
  std::vector<FeedName> feeds;
  /// The match of the *first* feed (staging uses its fields).
  MatchResult primary_match;
  bool matched() const { return !feeds.empty(); }
};

/// Counters exposed by the classifier for monitoring and experiment E5.
struct ClassifierStats {
  uint64_t files = 0;
  uint64_t matched = 0;
  uint64_t unmatched = 0;
  uint64_t candidate_checks = 0;  // pattern match attempts performed
};

/// Matches incoming filenames to registered consumer feeds (paper §3.2).
///
/// Two lookup strategies:
///  - kLinear: try every feed pattern (the obvious baseline);
///  - kPrefixIndex: a byte-trie over the patterns' literal prefixes prunes
///    the candidate set to feeds whose prefix matches the filename, which
///    keeps per-file cost near-constant as the number of feeds grows.
/// Experiment E5 compares the two.
class FeedClassifier {
 public:
  enum class IndexMode { kLinear, kPrefixIndex };

  explicit FeedClassifier(const FeedRegistry* registry,
                          IndexMode mode = IndexMode::kPrefixIndex);

  /// Classifies `name` against all registered feeds. Const and thread
  /// safe against concurrent Classify calls (stats are atomic), so the
  /// ingest pipeline's workers can classify under a shared lock; only
  /// Rebuild still needs exclusion.
  Classification Classify(const std::string& name) const;

  /// Rebuilds the index after feed definitions change. NOT safe against
  /// concurrent Classify; callers serialize (IngestPipeline holds its
  /// defs_mu_ exclusively here).
  void Rebuild();

  ClassifierStats stats() const {
    ClassifierStats s;
    s.files = files_.load(std::memory_order_relaxed);
    s.matched = matched_.load(std::memory_order_relaxed);
    s.unmatched = unmatched_.load(std::memory_order_relaxed);
    s.candidate_checks = candidate_checks_.load(std::memory_order_relaxed);
    return s;
  }
  void ResetStats() {
    files_.store(0, std::memory_order_relaxed);
    matched_.store(0, std::memory_order_relaxed);
    unmatched_.store(0, std::memory_order_relaxed);
    candidate_checks_.store(0, std::memory_order_relaxed);
  }

 private:
  /// One candidate to try: a feed and one of its compiled patterns
  /// (feeds may carry alternative patterns, §2.1.3 feed evolution).
  using Candidate = std::pair<const RegisteredFeed*, const Pattern*>;

  struct TrieNode {
    // Candidates whose whole literal prefix ends at or above this node.
    std::vector<Candidate> candidates;
    std::map<char, std::unique_ptr<TrieNode>> children;
  };

  void Insert(const RegisteredFeed* feed, const Pattern* pattern);
  void CollectCandidates(const std::string& name,
                         std::vector<Candidate>* out) const;

  const FeedRegistry* registry_;
  IndexMode mode_;
  std::unique_ptr<TrieNode> root_;
  /// Relaxed atomics: Classify is logically const (a read of the index);
  /// the counters are monitoring side-band, not synchronization.
  mutable std::atomic<uint64_t> files_{0};
  mutable std::atomic<uint64_t> matched_{0};
  mutable std::atomic<uint64_t> unmatched_{0};
  mutable std::atomic<uint64_t> candidate_checks_{0};
};

}  // namespace bistro

#endif  // BISTRO_CLASSIFY_CLASSIFIER_H_

#ifndef BISTRO_CLASSIFY_CLASSIFIER_H_
#define BISTRO_CLASSIFY_CLASSIFIER_H_

#include <memory>
#include <string>
#include <vector>

#include "config/registry.h"
#include "pattern/pattern.h"

namespace bistro {

/// Result of classifying one incoming filename.
struct Classification {
  /// Feeds the file belongs to (a file may match several feeds).
  std::vector<FeedName> feeds;
  /// The match of the *first* feed (staging uses its fields).
  MatchResult primary_match;
  bool matched() const { return !feeds.empty(); }
};

/// Counters exposed by the classifier for monitoring and experiment E5.
struct ClassifierStats {
  uint64_t files = 0;
  uint64_t matched = 0;
  uint64_t unmatched = 0;
  uint64_t candidate_checks = 0;  // pattern match attempts performed
};

/// Matches incoming filenames to registered consumer feeds (paper §3.2).
///
/// Two lookup strategies:
///  - kLinear: try every feed pattern (the obvious baseline);
///  - kPrefixIndex: a byte-trie over the patterns' literal prefixes prunes
///    the candidate set to feeds whose prefix matches the filename, which
///    keeps per-file cost near-constant as the number of feeds grows.
/// Experiment E5 compares the two.
class FeedClassifier {
 public:
  enum class IndexMode { kLinear, kPrefixIndex };

  explicit FeedClassifier(const FeedRegistry* registry,
                          IndexMode mode = IndexMode::kPrefixIndex);

  /// Classifies `name` against all registered feeds.
  Classification Classify(const std::string& name);

  /// Rebuilds the index after feed definitions change.
  void Rebuild();

  ClassifierStats stats() const { return stats_; }
  void ResetStats() { stats_ = ClassifierStats{}; }

 private:
  /// One candidate to try: a feed and one of its compiled patterns
  /// (feeds may carry alternative patterns, §2.1.3 feed evolution).
  using Candidate = std::pair<const RegisteredFeed*, const Pattern*>;

  struct TrieNode {
    // Candidates whose whole literal prefix ends at or above this node.
    std::vector<Candidate> candidates;
    std::map<char, std::unique_ptr<TrieNode>> children;
  };

  void Insert(const RegisteredFeed* feed, const Pattern* pattern);
  void CollectCandidates(const std::string& name,
                         std::vector<Candidate>* out) const;

  const FeedRegistry* registry_;
  IndexMode mode_;
  std::unique_ptr<TrieNode> root_;
  ClassifierStats stats_;
};

}  // namespace bistro

#endif  // BISTRO_CLASSIFY_CLASSIFIER_H_

#ifndef BISTRO_CLASSIFY_CLASSIFIER_H_
#define BISTRO_CLASSIFY_CLASSIFIER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "classify/automaton.h"
#include "config/registry.h"
#include "obs/metrics.h"
#include "pattern/pattern.h"

namespace bistro {

/// Result of classifying one incoming filename.
struct Classification {
  /// Feeds the file belongs to (a file may match several feeds).
  std::vector<FeedName> feeds;
  /// The match of the *first* feed (staging uses its fields).
  MatchResult primary_match;
  bool matched() const { return !feeds.empty(); }
};

/// Counters exposed by the classifier for monitoring and experiment E5.
struct ClassifierStats {
  uint64_t files = 0;
  uint64_t matched = 0;
  uint64_t unmatched = 0;
  uint64_t candidate_checks = 0;  // pattern match attempts performed
};

/// Matches incoming filenames to registered consumer feeds (paper §3.2).
///
/// Three lookup strategies (experiments E5/E14 compare them):
///  - kLinear: try every feed pattern (the obvious baseline);
///  - kPrefixIndex: a byte-trie over the patterns' literal prefixes prunes
///    the candidate set to feeds whose prefix matches the filename — but
///    each surviving candidate still pays a full pattern match, so tables
///    whose patterns share prefixes (or have none) degrade to linear;
///  - kAutomaton (default): the whole feed table compiled into one fused
///    DFA (classify/automaton.h). One scan of the name yields every
///    matching feed; per-file cost is independent of the table size.
///
/// Concurrency: in kAutomaton mode the compiled table lives behind an
/// atomic shared_ptr snapshot. Classify reads the current snapshot and,
/// if the registry version moved, rebuilds lazily (serialized by an
/// internal mutex) — the SubscriptionIndex idiom. ClassifySnapshot never
/// rebuilds: it classifies against whatever snapshot is current, so
/// ingest workers run it with no lock at all while Rebuild swaps a new
/// snapshot in underneath them. Registry *mutations* must still be
/// serialized against rebuilds by the caller (the ingest pipeline's
/// defs_mu_ does this), because compiling reads the registry.
/// In the legacy trie/linear modes Classify is const and thread-safe but
/// Rebuild requires external exclusion, exactly as before.
class FeedClassifier {
 public:
  enum class IndexMode { kLinear, kPrefixIndex, kAutomaton };

  explicit FeedClassifier(const FeedRegistry* registry,
                          IndexMode mode = IndexMode::kAutomaton);

  IndexMode mode() const { return mode_; }

  /// Classifies `name` against all registered feeds. Const and thread
  /// safe against concurrent Classify calls (stats are atomic). In
  /// kAutomaton mode a stale snapshot (registry version moved) is
  /// recompiled lazily before classifying.
  Classification Classify(const std::string& name) const;

  /// kAutomaton: classifies against the current snapshot without any
  /// staleness check or lock — the ingest workers' lock-free path; the
  /// loop thread refreshes the snapshot via Rebuild after revisions.
  /// Other modes: identical to Classify.
  Classification ClassifySnapshot(const std::string& name) const;

  /// Rebuilds the index after feed definitions change. kAutomaton:
  /// compiles a new snapshot and atomically swaps it in — concurrent
  /// ClassifySnapshot calls keep using the old one until the swap.
  /// Trie/linear: NOT safe against concurrent Classify; callers
  /// serialize (IngestPipeline holds its defs_mu_ exclusively here).
  void Rebuild();

  /// Registers compile/size gauges and rebuild counters with `metrics`
  /// (idempotent metric names; call once at server startup).
  void AttachMetrics(MetricsRegistry* metrics);

  /// Current automaton snapshot (kAutomaton mode; nullptr otherwise).
  /// Admin/introspection surface — holds the tables alive independently
  /// of any concurrent rebuild.
  std::shared_ptr<const FeedAutomaton> automaton() const {
    return snapshot_.load(std::memory_order_acquire);
  }

  ClassifierStats stats() const {
    ClassifierStats s;
    s.files = files_.load(std::memory_order_relaxed);
    s.matched = matched_.load(std::memory_order_relaxed);
    s.unmatched = unmatched_.load(std::memory_order_relaxed);
    s.candidate_checks = candidate_checks_.load(std::memory_order_relaxed);
    return s;
  }
  void ResetStats() {
    files_.store(0, std::memory_order_relaxed);
    matched_.store(0, std::memory_order_relaxed);
    unmatched_.store(0, std::memory_order_relaxed);
    candidate_checks_.store(0, std::memory_order_relaxed);
  }

 private:
  /// One candidate to try: a feed and one of its compiled patterns
  /// (feeds may carry alternative patterns, §2.1.3 feed evolution).
  using Candidate = std::pair<const RegisteredFeed*, const Pattern*>;

  struct TrieNode {
    // Candidates whose whole literal prefix ends at or above this node.
    std::vector<Candidate> candidates;
    // Sorted flat child array: trie nodes are tiny (feed-name alphabets
    // run a dozen distinct bytes), so a binary-searched vector beats
    // pointer-chasing through red-black map nodes on the hot descent.
    std::vector<std::pair<char, std::unique_ptr<TrieNode>>> children;

    TrieNode* Child(char c) const;
    TrieNode* ChildOrNew(char c);
  };

  void Insert(const RegisteredFeed* feed, const Pattern* pattern);
  void CollectCandidates(const std::string& name,
                         std::vector<Candidate>* out) const;
  Classification ClassifyCandidates(const std::string& name) const;
  Classification ClassifyAutomaton(const FeedAutomaton& automaton,
                                   const std::string& name) const;
  /// Compiles a fresh snapshot from the registry and swaps it in.
  void RebuildAutomatonLocked() const;

  const FeedRegistry* registry_;
  IndexMode mode_;
  std::unique_ptr<TrieNode> root_;

  /// kAutomaton state: RCU-style snapshot + rebuild serialization.
  mutable std::atomic<std::shared_ptr<const FeedAutomaton>> snapshot_;
  mutable std::mutex rebuild_mu_;

  /// Metrics (optional; see AttachMetrics).
  Counter* rebuilds_metric_ = nullptr;
  Gauge* states_metric_ = nullptr;
  Gauge* accept_sets_metric_ = nullptr;
  Gauge* memory_metric_ = nullptr;
  Histogram* compile_metric_ = nullptr;

  /// Relaxed atomics: Classify is logically const (a read of the index);
  /// the counters are monitoring side-band, not synchronization.
  mutable std::atomic<uint64_t> files_{0};
  mutable std::atomic<uint64_t> matched_{0};
  mutable std::atomic<uint64_t> unmatched_{0};
  mutable std::atomic<uint64_t> candidate_checks_{0};
};

/// Parse/format helpers for the `classifier { mode ...; }` config key.
std::string_view IndexModeName(FeedClassifier::IndexMode mode);
Result<FeedClassifier::IndexMode> IndexModeFromName(std::string_view name);

}  // namespace bistro

#endif  // BISTRO_CLASSIFY_CLASSIFIER_H_

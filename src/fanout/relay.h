#ifndef BISTRO_FANOUT_RELAY_H_
#define BISTRO_FANOUT_RELAY_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/logging.h"
#include "config/spec.h"
#include "kv/kvstore.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "sim/event_loop.h"

namespace bistro {
namespace fanout {

/// A dissemination relay (the config's `relay <name> { children; }`
/// block): receives ONE upstream send and re-fans it out to its children
/// over the transport, so a wide-area fan-out tree costs the origin one
/// send per relay instead of one per leaf. Children are ordinary
/// transport endpoints — subscribers, downstream Bistro servers
/// (federation peers), or further relays, which is what makes the tree
/// compose with the federation failover path.
///
/// Exactly-once across the extra hop: HandleMessage spools the encoded
/// message plus its pending-children set durably (a KvStore batch) and
/// only then acks the upstream — so an acked file can never be lost in
/// the relay. Forwarding is asynchronous with retries; each child ack
/// shrinks the durable pending set, and the spool entry is deleted when
/// the last child acks. A crash replays every incomplete entry on
/// Open(), and the at-least-once replays are absorbed by the children's
/// own dedupe (FileId at sinks, name dedupe at federated servers) —
/// the same argument the engine's retry path already relies on.
class RelayNode : public Endpoint {
 public:
  struct Options {
    Options() {}
    /// Spool directory (a KvStore root).
    std::string spool_dir = "/bistro/relay";
    /// Delay before re-sending to a failed child; grows linearly with
    /// the per-child attempt count, capped at 10x once a child has
    /// failed `max_attempts` times (slow-sweep mode — the relay never
    /// gives a file up while it stays in the history window).
    Duration retry_backoff = 2 * kSecond;
    int max_attempts = 8;
    KvStore::Options kv;
  };

  /// Opens the spool, replays incomplete entries, starts forwarding.
  static Result<std::unique_ptr<RelayNode>> Open(
      std::string name, std::vector<std::string> children, FileSystem* fs,
      Transport* transport, EventLoop* loop, Logger* logger,
      Options options = Options());

  ~RelayNode() { *alive_ = false; }

  /// Upstream entry point: durable spool -> ack -> async fan-out.
  /// Heartbeats pass through to all children unspooled.
  Status HandleMessage(const Message& msg) override;

  /// Spool entries with at least one child un-acked.
  size_t Backlog() const { return pending_.size(); }
  const std::string& name() const { return name_; }
  const std::vector<std::string>& children() const { return children_; }
  uint64_t received() const { return received_; }
  uint64_t forwarded() const { return forwarded_; }
  uint64_t replayed() const { return replayed_; }

  /// Registers bistro_fanout_relay_* series.
  void AttachMetrics(MetricsRegistry* registry);

 private:
  RelayNode(std::string name, std::vector<std::string> children,
            Transport* transport, EventLoop* loop, Logger* logger,
            Options options)
      : name_(std::move(name)),
        children_(std::move(children)),
        transport_(transport),
        loop_(loop),
        logger_(logger),
        options_(options) {}

  struct Entry {
    Message msg;
    std::set<std::string> waiting;   // children not yet acked
    std::set<std::string> inflight;  // children with a send outstanding
    std::map<std::string, int> attempts;
  };

  Status Recover();
  void Forward(uint64_t seq);
  void OnChildResult(uint64_t seq, const std::string& child,
                     const Status& status);
  Status PersistWaiting(uint64_t seq, const Entry& entry);

  std::string name_;
  std::vector<std::string> children_;
  Transport* transport_;
  EventLoop* loop_;
  Logger* logger_;
  Options options_;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  std::unique_ptr<KvStore> spool_;
  uint64_t seq_ = 0;
  std::map<uint64_t, Entry> pending_;
  uint64_t received_ = 0;
  uint64_t forwarded_ = 0;
  uint64_t replayed_ = 0;
  Counter* m_received_ = nullptr;
  Counter* m_forwarded_ = nullptr;
  Counter* m_retries_ = nullptr;
  Gauge* m_backlog_ = nullptr;
};

/// Depth of `name`'s relay tree within `relays`: 1 for a leaf relay,
/// 1 + the deepest child relay otherwise (admin `subscriptions` view).
/// Cycles (a misconfiguration) are cut rather than recursed into.
int RelayTreeDepth(const std::vector<RelaySpec>& relays,
                   const std::string& name);

}  // namespace fanout
}  // namespace bistro

#endif  // BISTRO_FANOUT_RELAY_H_

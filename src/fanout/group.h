#ifndef BISTRO_FANOUT_GROUP_H_
#define BISTRO_FANOUT_GROUP_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/logging.h"
#include "config/spec.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "sim/event_loop.h"

namespace bistro {

class BistroServer;

namespace fanout {

/// Snapshot of one group member (admin `subscriptions`, tests).
struct GroupMemberStats {
  std::string name;
  uint64_t delivered = 0;
  int consecutive_failures = 0;
  bool straggler = false;
  size_t missed = 0;  // catch-up backlog owed to this member
};

/// The local fan-out endpoint of a subscriber group.
///
/// The server schedules a group as ONE subscriber — one delivery cursor,
/// one pending-dedupe entry, one receipt row per file — and this relay
/// turns each accepted file into member-many local handoffs. Delivery
/// cost upstream of the relay is therefore O(groups), not O(members).
///
/// Ack policy: the relay acks a file only when every *non-straggler*
/// member accepted it. Any member failure NACKs the whole file, so the
/// engine retries it against the group; members that already took it
/// absorb the repeat via their own FileId dedupe. A member that fails
/// `straggler_after` consecutive deliveries stops holding the group ack:
/// it becomes a straggler, the files it misses are tracked per member,
/// and CatchUp() later replays exactly that delta (recorded as
/// d/<group>~<member>/ receipts by the caller) until the member drains
/// its backlog and rejoins the ack set.
class GroupRelay : public Endpoint {
 public:
  GroupRelay(std::string group, int straggler_after, Logger* logger)
      : group_(std::move(group)),
        straggler_after_(straggler_after),
        logger_(logger) {}

  /// Members are borrowed endpoints (caller owns them).
  void AddMember(const std::string& name, Endpoint* target);

  /// Fan a message out to the members (see ack policy above).
  Status HandleMessage(const Message& msg) override;

  /// Post-restart re-offer: sends to every member, but a failure is
  /// queued on that member's missed set (drained by CatchUp) instead of
  /// NACKing — nobody retries a resync, so dropping the failure would
  /// lose the file for members that never took the original delivery.
  void Reoffer(const Message& msg);

  /// Rebuilds a file's Message by id (receipts + staging read).
  using MessageLoader = std::function<Result<Message>(FileId)>;
  /// Observes one per-member catch-up delivery (delta receipt hook).
  using DeltaRecorder =
      std::function<void(const std::string& member, FileId, bool ok)>;

  /// Replays every member's missed files in id order; a straggler that
  /// drains its backlog rejoins the ack set. Files the loader reports
  /// NotFound for (expired from the history window) are dropped from the
  /// backlog. Returns the number of (member, file) deltas delivered.
  size_t CatchUp(const MessageLoader& load, const DeltaRecorder& record);

  /// Highest file id the group acked (the shared cursor).
  FileId cursor() const { return cursor_; }
  size_t member_count() const { return members_.size(); }
  size_t straggler_count() const;
  /// Total files owed to stragglers (the group's straggler lag).
  size_t straggler_lag() const;
  uint64_t files_acked() const { return files_acked_; }
  uint64_t nacks() const { return nacks_; }
  std::vector<GroupMemberStats> member_stats() const;

 private:
  struct Member {
    std::string name;
    Endpoint* target = nullptr;
    uint64_t delivered = 0;
    int consecutive_failures = 0;
    bool straggler = false;
    std::set<FileId> missed;
  };

  std::string group_;
  int straggler_after_;
  Logger* logger_;
  std::vector<Member> members_;
  FileId cursor_ = 0;
  uint64_t files_acked_ = 0;
  uint64_t nacks_ = 0;
};

/// Wires `group { }` config blocks into a running BistroServer.
///
/// Layered above the server like the federation runtime: for each
/// GroupSpec it builds a GroupRelay over the resolved member endpoints,
/// registers the relay with the transport under the group's name, and
/// registers the group as a single SubscriberSpec (which backfills
/// history through the normal queue-recomputation path). A periodic
/// timer drains straggler backlogs via GroupRelay::CatchUp, recording a
/// per-member delta receipt d/<group>~<member>/<id> for each replay.
///
/// Resync() re-offers every group-delivered file in the window to the
/// whole group after a restart (in-memory straggler state is gone; the
/// members' own dedupe absorbs files they already have, and members that
/// are still down fail back into straggler catch-up).
class GroupManager {
 public:
  struct Options {
    Options() {}
    /// Default for groups whose spec omits straggler_after.
    int straggler_after = 3;
    /// Cadence of the straggler catch-up timer (0 = manual CatchUp only).
    Duration catchup_interval = 30 * kSecond;
  };

  /// Maps a member identifier to its in-process endpoint.
  using MemberResolver = std::function<Endpoint*(const std::string&)>;
  /// Registers the group relay with the transport (name -> endpoint).
  using EndpointRegistrar =
      std::function<void(const std::string&, Endpoint*)>;

  GroupManager(BistroServer* server, FileSystem* fs, EventLoop* loop,
               Logger* logger, Options options = Options());
  ~GroupManager() { *alive_ = false; }

  /// Builds relays for `groups`, registers each with the transport and
  /// the server, and starts the catch-up timer. Call once after boot.
  Status Wire(const std::vector<GroupSpec>& groups,
              const MemberResolver& resolve,
              const EndpointRegistrar& register_endpoint);

  /// Runs one catch-up pass over all groups now. Returns deltas delivered.
  size_t CatchUpStragglers();

  /// Post-restart re-offer of delivered history (see class comment).
  Status Resync();

  GroupRelay* relay(const std::string& group) const;
  const std::vector<GroupSpec>& groups() const { return specs_; }

  /// Registers bistro_fanout_group_* series.
  void AttachMetrics(MetricsRegistry* registry);

 private:
  Result<Message> LoadMessage(FileId id) const;
  void ScheduleCatchUp();

  BistroServer* server_;
  FileSystem* fs_;
  EventLoop* loop_;
  Logger* logger_;
  Options options_;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  std::vector<GroupSpec> specs_;
  std::map<std::string, std::unique_ptr<GroupRelay>> relays_;
  Counter* m_catchup_deliveries_ = nullptr;
  Counter* m_resync_offers_ = nullptr;
  Gauge* m_straggler_lag_ = nullptr;
};

}  // namespace fanout
}  // namespace bistro

#endif  // BISTRO_FANOUT_GROUP_H_

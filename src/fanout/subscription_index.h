#ifndef BISTRO_FANOUT_SUBSCRIPTION_INDEX_H_
#define BISTRO_FANOUT_SUBSCRIPTION_INDEX_H_

#include <map>
#include <string>
#include <vector>

#include "config/registry.h"
#include "obs/metrics.h"

namespace bistro {
namespace fanout {

/// Per-feed subscription postings: feed -> the subscribers (individuals,
/// groups, peers — anything registered) whose interest set covers it.
///
/// The seed resolved fan-out with FeedRegistry::SubscribersOf, a full
/// scan over subscribers × interests on EVERY staged file, punctuation
/// and feed backfill — O(fanout) work per event even when one feed has
/// two subscribers. The index inverts the interest sets once and makes
/// each lookup O(postings for that feed).
///
/// Rebuilds are lazy: the registry bumps a version counter on every
/// mutation (feed revision, subscriber add/update) and the index
/// compares it per lookup. Config mutations are rare and human-scale;
/// file arrivals are not. Returned pointers alias the registry's
/// subscriber storage and are valid until its next mutation — consume
/// them immediately, never cache across events.
class SubscriptionIndex {
 public:
  explicit SubscriptionIndex(const FeedRegistry* registry)
      : registry_(registry) {}

  /// Subscribers covering `feed`, in registration order (matching what
  /// SubscribersOf would return). Unknown feeds yield an empty list.
  const std::vector<const SubscriberSpec*>& PostingsFor(const FeedName& feed);

  /// Names of subscribers holding at least one posting, name-ordered.
  /// Startup backfill iterates this instead of the raw subscriber list.
  const std::vector<SubscriberName>& ActiveSubscribers();

  /// Forces a rebuild on next lookup regardless of the version counter
  /// (tests; callers that mutate specs in place behind the registry).
  void Invalidate() { built_ = false; }

  uint64_t lookups() const { return lookups_; }
  uint64_t rebuilds() const { return rebuilds_; }

  /// Registers bistro_fanout_index_* series.
  void AttachMetrics(MetricsRegistry* registry);

 private:
  void MaybeRebuild();

  const FeedRegistry* registry_;
  bool built_ = false;
  uint64_t built_version_ = 0;
  uint64_t lookups_ = 0;
  uint64_t rebuilds_ = 0;
  std::map<FeedName, std::vector<const SubscriberSpec*>> postings_;
  std::vector<SubscriberName> active_;
  std::vector<const SubscriberSpec*> empty_;
  Counter* m_rebuilds_ = nullptr;
  Counter* m_lookups_ = nullptr;
  Gauge* m_postings_ = nullptr;
};

}  // namespace fanout
}  // namespace bistro

#endif  // BISTRO_FANOUT_SUBSCRIPTION_INDEX_H_

#include "fanout/subscription_index.h"

#include <set>

namespace bistro {
namespace fanout {

void SubscriptionIndex::AttachMetrics(MetricsRegistry* registry) {
  m_rebuilds_ = registry->GetCounter("bistro_fanout_index_rebuilds_total",
                                     "Subscription index rebuilds");
  m_lookups_ = registry->GetCounter("bistro_fanout_index_lookups_total",
                                    "Subscription index postings lookups");
  m_postings_ = registry->GetGauge("bistro_fanout_index_postings",
                                   "Total (feed, subscriber) postings");
}

void SubscriptionIndex::MaybeRebuild() {
  if (built_ && built_version_ == registry_->version()) return;
  postings_.clear();
  active_.clear();
  size_t total = 0;
  std::set<SubscriberName> active_set;
  for (const SubscriberSpec& sub : registry_->subscribers()) {
    // One posting per concrete feed, even when several interests (an
    // exact name plus a covering group prefix) expand to the same feed —
    // mirroring SubscribersOf's first-match-wins contract.
    std::set<FeedName> covered;
    for (const FeedName& interest : sub.feeds) {
      for (FeedName& feed : registry_->Expand(interest)) {
        covered.insert(std::move(feed));
      }
    }
    for (const FeedName& feed : covered) {
      postings_[feed].push_back(&sub);
      ++total;
    }
    if (!covered.empty()) active_set.insert(sub.name);
  }
  active_.assign(active_set.begin(), active_set.end());
  built_ = true;
  built_version_ = registry_->version();
  ++rebuilds_;
  if (m_rebuilds_ != nullptr) m_rebuilds_->Increment();
  if (m_postings_ != nullptr) m_postings_->Set(static_cast<int64_t>(total));
}

const std::vector<const SubscriberSpec*>& SubscriptionIndex::PostingsFor(
    const FeedName& feed) {
  MaybeRebuild();
  ++lookups_;
  if (m_lookups_ != nullptr) m_lookups_->Increment();
  auto it = postings_.find(feed);
  return it == postings_.end() ? empty_ : it->second;
}

const std::vector<SubscriberName>& SubscriptionIndex::ActiveSubscribers() {
  MaybeRebuild();
  return active_;
}

}  // namespace fanout
}  // namespace bistro

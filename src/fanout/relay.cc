#include "fanout/relay.h"

#include <algorithm>

#include "common/hash.h"
#include "common/strings.h"

namespace bistro {
namespace fanout {

namespace {
// Spool key space:
//   m/<seq16x> -> EncodeMessage(msg)
//   w/<seq16x> -> '\x1f'-joined children still waiting for an ack
//   seq        -> last assigned spool sequence (decimal)
constexpr char kSep = '\x1f';

std::string SeqKey(const char* prefix, uint64_t seq) {
  return StrFormat("%s%016llx", prefix,
                   static_cast<unsigned long long>(seq));
}

std::string JoinWaiting(const std::set<std::string>& waiting) {
  std::string out;
  for (const std::string& child : waiting) {
    if (!out.empty()) out.push_back(kSep);
    out += child;
  }
  return out;
}
}  // namespace

Result<std::unique_ptr<RelayNode>> RelayNode::Open(
    std::string name, std::vector<std::string> children, FileSystem* fs,
    Transport* transport, EventLoop* loop, Logger* logger, Options options) {
  if (children.empty()) {
    return Status::InvalidArgument("relay " + name + " has no children");
  }
  std::unique_ptr<RelayNode> relay(new RelayNode(
      std::move(name), std::move(children), transport, loop, logger, options));
  BISTRO_ASSIGN_OR_RETURN(
      relay->spool_, KvStore::Open(fs, options.spool_dir, options.kv));
  BISTRO_RETURN_IF_ERROR(relay->Recover());
  return relay;
}

Status RelayNode::Recover() {
  if (auto seq = spool_->Get("seq"); seq.ok()) {
    seq_ = std::stoull(*seq);
  }
  for (auto& [key, value] : spool_->ScanPrefix("w/")) {
    uint64_t seq = std::stoull(key.substr(2), nullptr, 16);
    BISTRO_ASSIGN_OR_RETURN(std::string encoded, spool_->Get(SeqKey("m/", seq)));
    BISTRO_ASSIGN_OR_RETURN(Message msg, DecodeMessage(encoded));
    Entry entry;
    entry.msg = std::move(msg);
    for (std::string& child : SplitSkipEmpty(value, kSep)) {
      entry.waiting.insert(std::move(child));
    }
    pending_.emplace(seq, std::move(entry));
    ++replayed_;
    std::shared_ptr<bool> alive = alive_;
    loop_->Post([this, alive, seq] {
      if (*alive) Forward(seq);
    });
  }
  if (replayed_ > 0) {
    logger_->Info("fanout", "relay " + name_ + " replaying " +
                                std::to_string(replayed_) +
                                " spooled files after restart");
  }
  return Status::OK();
}

Status RelayNode::HandleMessage(const Message& msg) {
  if (msg.type == MessageType::kHeartbeat) {
    // Liveness probes answer for the relay itself, not the tree; pass
    // them along unspooled so child health still gets exercised.
    for (const std::string& child : children_) {
      transport_->Send(child, msg, [](const Status&) {});
    }
    return Status::OK();
  }
  if (msg.type == MessageType::kFileData && msg.payload_crc != 0 &&
      Crc32(msg.payload) != msg.payload_crc) {
    // Verify before spool: acking a payload corrupted in flight would
    // durably poison the spool — every child rejects the forward forever
    // while the upstream, already acked, never resends. NACK instead so
    // the upstream's retry carries a clean copy.
    return Status::Corruption("relay " + name_ +
                              ": payload crc mismatch: " + msg.name);
  }
  ++received_;
  if (m_received_ != nullptr) m_received_->Increment();
  uint64_t seq = ++seq_;
  Entry entry;
  entry.msg = msg;
  entry.waiting.insert(children_.begin(), children_.end());
  // Ack-after-durable-spool: once this batch commits, the upstream may
  // forget the file — a crash here replays it from the spool.
  BISTRO_RETURN_IF_ERROR(spool_->Apply({
      KvStore::Write::Put("seq", std::to_string(seq)),
      KvStore::Write::Put(SeqKey("m/", seq), EncodeMessage(msg)),
      KvStore::Write::Put(SeqKey("w/", seq), JoinWaiting(entry.waiting)),
  }));
  pending_.emplace(seq, std::move(entry));
  if (m_backlog_ != nullptr) {
    m_backlog_->Set(static_cast<int64_t>(pending_.size()));
  }
  std::shared_ptr<bool> alive = alive_;
  loop_->Post([this, alive, seq] {
    if (*alive) Forward(seq);
  });
  return Status::OK();
}

void RelayNode::Forward(uint64_t seq) {
  auto it = pending_.find(seq);
  if (it == pending_.end()) return;
  Entry& entry = it->second;
  std::shared_ptr<bool> alive = alive_;
  for (const std::string& child : entry.waiting) {
    if (entry.inflight.count(child) != 0) continue;
    entry.inflight.insert(child);
    transport_->Send(child, entry.msg,
                     [this, alive, seq, child](const Status& status) {
                       if (*alive) OnChildResult(seq, child, status);
                     });
  }
}

void RelayNode::OnChildResult(uint64_t seq, const std::string& child,
                              const Status& status) {
  auto it = pending_.find(seq);
  if (it == pending_.end()) return;
  Entry& entry = it->second;
  entry.inflight.erase(child);
  if (!status.ok()) {
    if (m_retries_ != nullptr) m_retries_->Increment();
    int attempts = ++entry.attempts[child];
    // Linear backoff; after max_attempts drop to a 10x slow sweep. The
    // relay never abandons a spooled file — the upstream already got its
    // ack, so giving up here would break exactly-once.
    Duration delay = attempts >= options_.max_attempts
                         ? options_.retry_backoff * 10
                         : options_.retry_backoff * attempts;
    if (attempts == options_.max_attempts) {
      logger_->Warning("fanout", "relay " + name_ + " child " + child +
                                     " unreachable after " +
                                     std::to_string(attempts) +
                                     " attempts; slow-sweeping");
    }
    std::shared_ptr<bool> alive = alive_;
    loop_->PostAfter(delay, [this, alive, seq] {
      if (*alive) Forward(seq);
    });
    return;
  }
  entry.waiting.erase(child);
  entry.attempts.erase(child);
  ++forwarded_;
  if (m_forwarded_ != nullptr) m_forwarded_->Increment();
  PersistWaiting(seq, entry);
  if (entry.waiting.empty()) {
    pending_.erase(it);
    if (m_backlog_ != nullptr) {
      m_backlog_->Set(static_cast<int64_t>(pending_.size()));
    }
  }
}

Status RelayNode::PersistWaiting(uint64_t seq, const Entry& entry) {
  if (entry.waiting.empty()) {
    return spool_->Apply({KvStore::Write::Del(SeqKey("m/", seq)),
                          KvStore::Write::Del(SeqKey("w/", seq))});
  }
  return spool_->Apply(
      {KvStore::Write::Put(SeqKey("w/", seq), JoinWaiting(entry.waiting))});
}

void RelayNode::AttachMetrics(MetricsRegistry* registry) {
  m_received_ = registry->GetCounter("bistro_fanout_relay_received_total",
                                     "Files accepted into the relay spool");
  m_forwarded_ = registry->GetCounter(
      "bistro_fanout_relay_forwarded_total",
      "Per-child forwards acknowledged downstream");
  m_retries_ = registry->GetCounter("bistro_fanout_relay_retries_total",
                                    "Failed child forwards scheduled to retry");
  m_backlog_ = registry->GetGauge("bistro_fanout_relay_backlog",
                                  "Spool entries with un-acked children");
  spool_->wal()->AttachMetrics(registry);
}

int RelayTreeDepth(const std::vector<RelaySpec>& relays,
                   const std::string& name) {
  const RelaySpec* spec = nullptr;
  for (const RelaySpec& r : relays) {
    if (r.name == name) spec = &r;
  }
  if (spec == nullptr) return 0;
  // Iterative worklist with a visited set: a cycle contributes no depth.
  std::set<std::string> visited{name};
  int depth = 1;
  std::vector<std::pair<const RelaySpec*, int>> work{{spec, 1}};
  while (!work.empty()) {
    auto [cur, d] = work.back();
    work.pop_back();
    for (const std::string& child : cur->children) {
      if (!visited.insert(child).second) continue;
      for (const RelaySpec& r : relays) {
        if (r.name == child) {
          depth = std::max(depth, d + 1);
          work.push_back({&r, d + 1});
        }
      }
    }
  }
  return depth;
}

}  // namespace fanout
}  // namespace bistro

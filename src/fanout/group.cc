#include "fanout/group.h"

#include <algorithm>

#include "common/hash.h"
#include "core/server.h"

namespace bistro {
namespace fanout {

void GroupRelay::AddMember(const std::string& name, Endpoint* target) {
  Member m;
  m.name = name;
  m.target = target;
  members_.push_back(std::move(m));
}

Status GroupRelay::HandleMessage(const Message& msg) {
  if (msg.type == MessageType::kHeartbeat) return Status::OK();
  if (msg.type == MessageType::kFileData && msg.payload_crc != 0 &&
      Crc32(msg.payload) != msg.payload_crc) {
    // End-to-end integrity at the fan-in point: a payload corrupted in
    // flight must NACK here, before it touches member state — otherwise
    // every member rejects it and racks up failures toward a straggler
    // flag it never earned.
    return Status::Corruption("group " + group_ +
                              ": payload crc mismatch: " + msg.name);
  }
  if (msg.type == MessageType::kEndOfBatch ||
      msg.type == MessageType::kSourceNotify) {
    // Batch markers carry no file: best-effort to current members, never
    // NACKed (a marker retry storm would stall real files behind it).
    for (Member& m : members_) {
      if (!m.straggler) m.target->HandleMessage(msg);
    }
    return Status::OK();
  }
  Status worst = Status::OK();
  for (Member& m : members_) {
    if (m.straggler) {
      m.missed.insert(msg.file_id);
      continue;
    }
    Status st = m.target->HandleMessage(msg);
    if (st.ok()) {
      ++m.delivered;
      m.consecutive_failures = 0;
      continue;
    }
    if (++m.consecutive_failures >= straggler_after_) {
      m.straggler = true;
      m.missed.insert(msg.file_id);
      logger_->Warning("fanout", "group " + group_ + " member " + m.name +
                                  " is a straggler after " +
                                  std::to_string(m.consecutive_failures) +
                                  " failures; deferring to catch-up");
    } else if (worst.ok()) {
      worst = st;
    }
  }
  if (!worst.ok()) {
    // A healthy member refused the file: NACK so the engine retries the
    // whole group. Members that took it dedupe the repeat by FileId.
    ++nacks_;
    return worst;
  }
  cursor_ = std::max(cursor_, msg.file_id);
  ++files_acked_;
  return Status::OK();
}

void GroupRelay::Reoffer(const Message& msg) {
  for (Member& m : members_) {
    Status st = m.target->HandleMessage(msg);
    if (st.ok()) {
      ++m.delivered;
    } else {
      m.missed.insert(msg.file_id);
    }
  }
}

size_t GroupRelay::CatchUp(const MessageLoader& load,
                           const DeltaRecorder& record) {
  size_t delivered = 0;
  for (Member& m : members_) {
    if (m.missed.empty()) continue;
    // In id order; stop at the first failure — the member is likely
    // still down, and order keeps its catch-up stream monotone.
    for (auto it = m.missed.begin(); it != m.missed.end();) {
      Result<Message> msg = load(*it);
      if (!msg.ok()) {
        if (msg.status().code() == StatusCode::kNotFound) {
          it = m.missed.erase(it);  // expired from the history window
          continue;
        }
        return delivered;  // receipts/staging unavailable; retry later
      }
      Status st = m.target->HandleMessage(*msg);
      record(m.name, *it, st.ok());
      if (!st.ok()) break;
      it = m.missed.erase(it);
      ++m.delivered;
      ++delivered;
    }
    if (m.missed.empty() && m.straggler) {
      m.straggler = false;
      m.consecutive_failures = 0;
      logger_->Info("fanout", "group " + group_ + " member " + m.name +
                                  " caught up; rejoining ack set");
    }
  }
  return delivered;
}

size_t GroupRelay::straggler_count() const {
  size_t n = 0;
  for (const Member& m : members_) n += m.straggler ? 1 : 0;
  return n;
}

size_t GroupRelay::straggler_lag() const {
  size_t n = 0;
  for (const Member& m : members_) n += m.missed.size();
  return n;
}

std::vector<GroupMemberStats> GroupRelay::member_stats() const {
  std::vector<GroupMemberStats> out;
  out.reserve(members_.size());
  for (const Member& m : members_) {
    out.push_back({m.name, m.delivered, m.consecutive_failures, m.straggler,
                   m.missed.size()});
  }
  return out;
}

GroupManager::GroupManager(BistroServer* server, FileSystem* fs,
                           EventLoop* loop, Logger* logger, Options options)
    : server_(server),
      fs_(fs),
      loop_(loop),
      logger_(logger),
      options_(options) {}

Status GroupManager::Wire(const std::vector<GroupSpec>& groups,
                          const MemberResolver& resolve,
                          const EndpointRegistrar& register_endpoint) {
  for (const GroupSpec& spec : groups) {
    int after = spec.straggler_after.value_or(options_.straggler_after);
    auto relay = std::make_unique<GroupRelay>(spec.name, after, logger_);
    for (const std::string& member : spec.members) {
      Endpoint* target = resolve(member);
      if (target == nullptr) {
        return Status::InvalidArgument("group " + spec.name + " member " +
                                       member + " has no endpoint");
      }
      relay->AddMember(member, target);
    }
    register_endpoint(spec.name, relay.get());
    SubscriberSpec sub;
    sub.name = spec.name;
    sub.host = spec.name;
    sub.feeds = spec.feeds;
    sub.method = DeliveryMethod::kPush;
    sub.window = spec.window;
    // AddSubscriber backfills available history through the normal
    // queue-recomputation path — the group needs no special bootstrap.
    BISTRO_RETURN_IF_ERROR(server_->AddSubscriber(sub));
    relays_[spec.name] = std::move(relay);
    specs_.push_back(spec);
  }
  if (options_.catchup_interval > 0 && !specs_.empty()) ScheduleCatchUp();
  return Status::OK();
}

void GroupManager::ScheduleCatchUp() {
  std::shared_ptr<bool> alive = alive_;
  loop_->PostAfter(options_.catchup_interval, [this, alive] {
    if (!*alive) return;
    CatchUpStragglers();
    ScheduleCatchUp();
  });
}

size_t GroupManager::CatchUpStragglers() {
  size_t delivered = 0;
  for (auto& [group, relay] : relays_) {
    const std::string& name = group;
    delivered += relay->CatchUp(
        [this](FileId id) { return LoadMessage(id); },
        [this, &name](const std::string& member, FileId id, bool ok) {
          if (!ok) return;
          // Per-member delta receipt: the straggler's catch-up history
          // is auditable without per-member rows on the hot path.
          server_->receipts()->RecordDelivery(name + "~" + member, id,
                                              loop_->Now());
        });
  }
  if (m_catchup_deliveries_ != nullptr && delivered > 0) {
    m_catchup_deliveries_->Increment(delivered);
  }
  if (m_straggler_lag_ != nullptr) {
    size_t lag = 0;
    for (auto& [_, relay] : relays_) lag += relay->straggler_lag();
    m_straggler_lag_->Set(static_cast<int64_t>(lag));
  }
  return delivered;
}

Status GroupManager::Resync() {
  for (const GroupSpec& spec : specs_) {
    GroupRelay* relay = relays_[spec.name].get();
    std::set<FileId> ids;
    for (const FeedName& interest : spec.feeds) {
      for (const FeedName& feed : server_->registry()->Expand(interest)) {
        for (FileId id : server_->receipts()->FilesInFeed(feed)) {
          ids.insert(id);
        }
      }
    }
    for (FileId id : ids) {
      // Only files the group already acked: undelivered ones are still in
      // the engine's queue and arrive through the normal path.
      if (!server_->receipts()->Delivered(spec.name, id)) continue;
      Result<Message> msg = LoadMessage(id);
      if (!msg.ok()) continue;  // expired mid-scan
      relay->Reoffer(*msg);
      if (m_resync_offers_ != nullptr) m_resync_offers_->Increment();
    }
  }
  return Status::OK();
}

Result<Message> GroupManager::LoadMessage(FileId id) const {
  BISTRO_ASSIGN_OR_RETURN(ArrivalReceipt receipt,
                          server_->receipts()->GetArrival(id));
  BISTRO_ASSIGN_OR_RETURN(std::string bytes,
                          fs_->ReadFile(receipt.staged_path));
  Message msg;
  msg.type = MessageType::kFileData;
  msg.file_id = id;
  msg.feed = receipt.feeds.empty() ? FeedName() : receipt.feeds[0];
  msg.name = receipt.name;
  msg.dest_path = receipt.rel_path.empty() ? receipt.name : receipt.rel_path;
  msg.data_time = receipt.data_time;
  msg.payload_crc = Crc32(bytes);
  msg.payload = SharedPayload(std::move(bytes));
  return msg;
}

GroupRelay* GroupManager::relay(const std::string& group) const {
  auto it = relays_.find(group);
  return it == relays_.end() ? nullptr : it->second.get();
}

void GroupManager::AttachMetrics(MetricsRegistry* registry) {
  m_catchup_deliveries_ =
      registry->GetCounter("bistro_fanout_catchup_deliveries_total",
                           "Straggler catch-up (member, file) deliveries");
  m_resync_offers_ =
      registry->GetCounter("bistro_fanout_resync_offers_total",
                           "Post-restart re-offers of delivered history");
  m_straggler_lag_ = registry->GetGauge(
      "bistro_fanout_straggler_lag", "Files owed to stragglers, all groups");
}

}  // namespace fanout
}  // namespace bistro

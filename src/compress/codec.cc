#include "compress/codec.h"

#include <atomic>
#include <cstring>
#include <memory>
#include <vector>

#include "common/hash.h"
#include "common/strings.h"

namespace bistro {

namespace {

// Frame layout: magic(4) kind(1) orig_size(varint) crc32(4) payload.
constexpr char kMagic[4] = {'B', 'Z', 'F', '1'};

void PutVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

bool GetVarint(std::string_view* in, uint64_t* v) {
  *v = 0;
  int shift = 0;
  while (!in->empty() && shift <= 63) {
    uint8_t byte = static_cast<uint8_t>(in->front());
    in->remove_prefix(1);
    *v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return true;
    shift += 7;
  }
  return false;
}

void PutFixed32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

bool GetFixed32(std::string_view* in, uint32_t* v) {
  if (in->size() < 4) return false;
  std::memcpy(v, in->data(), 4);
  in->remove_prefix(4);
  return true;
}

std::string Frame(CodecKind kind, std::string_view original,
                  std::string payload) {
  std::string out;
  out.reserve(payload.size() + 16);
  out.append(kMagic, 4);
  out.push_back(static_cast<char>(kind));
  PutVarint(&out, original.size());
  PutFixed32(&out, Crc32(original));
  out += payload;
  return out;
}

struct FrameHeader {
  CodecKind kind;
  uint64_t orig_size;
  uint32_t crc;
  std::string_view payload;
};

Result<FrameHeader> ParseFrame(std::string_view input) {
  if (input.size() < 9 || std::memcmp(input.data(), kMagic, 4) != 0) {
    return Status::InvalidArgument("not a bistro codec frame");
  }
  FrameHeader h;
  uint8_t kind_byte = static_cast<uint8_t>(input[4]);
  if (kind_byte > 2) return Status::Corruption("unknown codec kind");
  h.kind = static_cast<CodecKind>(kind_byte);
  std::string_view rest = input.substr(5);
  if (!GetVarint(&rest, &h.orig_size)) {
    return Status::Corruption("truncated frame varint");
  }
  if (!GetFixed32(&rest, &h.crc)) return Status::Corruption("truncated frame crc");
  h.payload = rest;
  return h;
}

Status VerifyCrc(const FrameHeader& h, std::string_view decoded) {
  if (decoded.size() != h.orig_size) {
    return Status::Corruption(StrFormat("size mismatch: got %zu want %llu",
                                        decoded.size(),
                                        (unsigned long long)h.orig_size));
  }
  if (Crc32(decoded) != h.crc) return Status::Corruption("crc mismatch");
  return Status::OK();
}

// ------------------------------------------------------------------ None

class NoneCodec : public Codec {
 public:
  CodecKind kind() const override { return CodecKind::kNone; }

  std::string CompressImpl(std::string_view input) const override {
    return Frame(CodecKind::kNone, input, std::string(input));
  }

  Result<std::string> DecompressImpl(std::string_view input) const override {
    BISTRO_ASSIGN_OR_RETURN(FrameHeader h, ParseFrame(input));
    std::string out(h.payload);
    BISTRO_RETURN_IF_ERROR(VerifyCrc(h, out));
    return out;
  }
};

// ------------------------------------------------------------------ RLE

// Byte-level run-length encoding: (count varint, byte) pairs. Effective on
// the long constant stretches common in padded measurement records.
class RleCodec : public Codec {
 public:
  CodecKind kind() const override { return CodecKind::kRle; }

  std::string CompressImpl(std::string_view input) const override {
    std::string payload;
    payload.reserve(input.size() / 2 + 16);
    size_t i = 0;
    while (i < input.size()) {
      char c = input[i];
      size_t run = 1;
      while (i + run < input.size() && input[i + run] == c) ++run;
      PutVarint(&payload, run);
      payload.push_back(c);
      i += run;
    }
    return Frame(CodecKind::kRle, input, std::move(payload));
  }

  Result<std::string> DecompressImpl(std::string_view input) const override {
    BISTRO_ASSIGN_OR_RETURN(FrameHeader h, ParseFrame(input));
    std::string out;
    out.reserve(h.orig_size);
    std::string_view p = h.payload;
    while (!p.empty()) {
      uint64_t run;
      if (!GetVarint(&p, &run)) return Status::Corruption("rle: bad run length");
      if (p.empty()) return Status::Corruption("rle: missing run byte");
      if (out.size() + run > h.orig_size) {
        return Status::Corruption("rle: overflow");
      }
      out.append(run, p.front());
      p.remove_prefix(1);
    }
    BISTRO_RETURN_IF_ERROR(VerifyCrc(h, out));
    return out;
  }
};

// ------------------------------------------------------------------ LZ

// LZ77 with a 64 KiB window and a 4-byte-hash chain matcher. Token stream:
//   literal run:  varint (len << 1 | 0), then len raw bytes
//   match:        varint (len << 1 | 1), varint distance
constexpr size_t kMinMatch = 4;
constexpr size_t kMaxMatch = 4096;
constexpr size_t kWindow = 64 * 1024;
constexpr size_t kHashBits = 16;

class LzCodec : public Codec {
 public:
  CodecKind kind() const override { return CodecKind::kLz; }

  std::string CompressImpl(std::string_view input) const override {
    std::string payload;
    payload.reserve(input.size() / 2 + 16);
    const size_t n = input.size();
    std::vector<int64_t> head(size_t{1} << kHashBits, -1);

    size_t lit_start = 0;
    size_t i = 0;
    auto flush_literals = [&](size_t end) {
      size_t pos = lit_start;
      while (pos < end) {
        size_t len = std::min<size_t>(end - pos, 1 << 20);
        PutVarint(&payload, (static_cast<uint64_t>(len) << 1) | 0);
        payload.append(input.data() + pos, len);
        pos += len;
      }
    };

    while (i + kMinMatch <= n) {
      uint32_t h = HashAt(input, i);
      int64_t cand = head[h];
      head[h] = static_cast<int64_t>(i);
      size_t best_len = 0;
      size_t best_dist = 0;
      if (cand >= 0 && i - static_cast<size_t>(cand) <= kWindow) {
        size_t c = static_cast<size_t>(cand);
        size_t len = 0;
        size_t max_len = std::min(kMaxMatch, n - i);
        while (len < max_len && input[c + len] == input[i + len]) ++len;
        if (len >= kMinMatch) {
          best_len = len;
          best_dist = i - c;
        }
      }
      if (best_len >= kMinMatch) {
        flush_literals(i);
        PutVarint(&payload, (static_cast<uint64_t>(best_len) << 1) | 1);
        PutVarint(&payload, best_dist);
        // Insert a few positions inside the match to keep the chain fresh.
        size_t step = best_len > 16 ? best_len / 8 : 1;
        for (size_t j = i + 1; j + kMinMatch <= i + best_len && j + kMinMatch <= n;
             j += step) {
          head[HashAt(input, j)] = static_cast<int64_t>(j);
        }
        i += best_len;
        lit_start = i;
      } else {
        ++i;
      }
    }
    flush_literals(n);
    return Frame(CodecKind::kLz, input, std::move(payload));
  }

  Result<std::string> DecompressImpl(std::string_view input) const override {
    BISTRO_ASSIGN_OR_RETURN(FrameHeader h, ParseFrame(input));
    std::string out;
    out.reserve(h.orig_size);
    std::string_view p = h.payload;
    while (!p.empty()) {
      uint64_t tok;
      if (!GetVarint(&p, &tok)) return Status::Corruption("lz: bad token");
      uint64_t len = tok >> 1;
      if ((tok & 1) == 0) {
        if (p.size() < len) return Status::Corruption("lz: short literal run");
        out.append(p.data(), len);
        p.remove_prefix(len);
      } else {
        uint64_t dist;
        if (!GetVarint(&p, &dist)) return Status::Corruption("lz: bad distance");
        if (dist == 0 || dist > out.size()) {
          return Status::Corruption("lz: distance out of range");
        }
        if (out.size() + len > h.orig_size) return Status::Corruption("lz: overflow");
        size_t src = out.size() - dist;
        // Byte-by-byte: matches may overlap their own output.
        for (uint64_t k = 0; k < len; ++k) out.push_back(out[src + k]);
      }
    }
    BISTRO_RETURN_IF_ERROR(VerifyCrc(h, out));
    return out;
  }

 private:
  static uint32_t HashAt(std::string_view s, size_t i) {
    uint32_t v;
    std::memcpy(&v, s.data() + i, 4);
    return (v * 2654435761u) >> (32 - kHashBits);
  }
};

// Codecs are stateless process-wide singletons, so their activity totals
// are process-wide too. AttachCodecMetrics() bridges these raw atomics
// into a per-registry view by pushing deltas from a collect hook.
struct CodecTotals {
  std::atomic<uint64_t> compress_calls{0};
  std::atomic<uint64_t> compress_bytes_in{0};
  std::atomic<uint64_t> compress_bytes_out{0};
  std::atomic<uint64_t> decompress_calls{0};
  std::atomic<uint64_t> decompress_failures{0};
};

CodecTotals& Totals() {
  static CodecTotals totals;
  return totals;
}

}  // namespace

std::string Codec::Compress(std::string_view input) const {
  std::string out = CompressImpl(input);
  CodecTotals& t = Totals();
  t.compress_calls.fetch_add(1, std::memory_order_relaxed);
  t.compress_bytes_in.fetch_add(input.size(), std::memory_order_relaxed);
  t.compress_bytes_out.fetch_add(out.size(), std::memory_order_relaxed);
  return out;
}

Result<std::string> Codec::Decompress(std::string_view input) const {
  Result<std::string> out = DecompressImpl(input);
  CodecTotals& t = Totals();
  t.decompress_calls.fetch_add(1, std::memory_order_relaxed);
  if (!out.ok()) t.decompress_failures.fetch_add(1, std::memory_order_relaxed);
  return out;
}

void AttachCodecMetrics(MetricsRegistry* registry) {
  struct Counters {
    Counter* compress_calls;
    Counter* compress_bytes_in;
    Counter* compress_bytes_out;
    Counter* decompress_calls;
    Counter* decompress_failures;
    CodecTotals last;  // totals already pushed into this registry
  };
  auto c = std::make_shared<Counters>();
  c->compress_calls = registry->GetCounter(
      "bistro_codec_compress_calls_total", "Blocks compressed (all codecs)");
  c->compress_bytes_in = registry->GetCounter(
      "bistro_codec_compress_bytes_in_total", "Raw bytes given to Compress");
  c->compress_bytes_out = registry->GetCounter(
      "bistro_codec_compress_bytes_out_total",
      "Framed bytes produced by Compress");
  c->decompress_calls = registry->GetCounter(
      "bistro_codec_decompress_calls_total", "Blocks decompressed");
  c->decompress_failures = registry->GetCounter(
      "bistro_codec_decompress_failures_total",
      "Decompress calls that returned an error");
  registry->AddCollectHook([c] {
    CodecTotals& t = Totals();
    auto push = [](std::atomic<uint64_t>& now, std::atomic<uint64_t>& seen,
                   Counter* counter) {
      uint64_t cur = now.load(std::memory_order_relaxed);
      uint64_t prev = seen.exchange(cur, std::memory_order_relaxed);
      if (cur > prev) counter->Increment(cur - prev);
    };
    push(t.compress_calls, c->last.compress_calls, c->compress_calls);
    push(t.compress_bytes_in, c->last.compress_bytes_in, c->compress_bytes_in);
    push(t.compress_bytes_out, c->last.compress_bytes_out,
         c->compress_bytes_out);
    push(t.decompress_calls, c->last.decompress_calls, c->decompress_calls);
    push(t.decompress_failures, c->last.decompress_failures,
         c->decompress_failures);
  });
}

Result<CodecKind> CodecKindFromName(std::string_view name) {
  if (name == "none") return CodecKind::kNone;
  if (name == "rle") return CodecKind::kRle;
  if (name == "lz") return CodecKind::kLz;
  return Status::InvalidArgument("unknown codec: " + std::string(name));
}

std::string_view CodecKindName(CodecKind kind) {
  switch (kind) {
    case CodecKind::kNone:
      return "none";
    case CodecKind::kRle:
      return "rle";
    case CodecKind::kLz:
      return "lz";
  }
  return "?";
}

const Codec* GetCodec(CodecKind kind) {
  static const NoneCodec none;
  static const RleCodec rle;
  static const LzCodec lz;
  switch (kind) {
    case CodecKind::kNone:
      return &none;
    case CodecKind::kRle:
      return &rle;
    case CodecKind::kLz:
      return &lz;
  }
  return &none;
}

bool HasCodecFrame(std::string_view input) {
  return input.size() >= 9 && std::memcmp(input.data(), kMagic, 4) == 0;
}

Result<std::string> AutoDecompress(std::string_view input) {
  if (!HasCodecFrame(input)) return std::string(input);
  uint8_t kind_byte = static_cast<uint8_t>(input[4]);
  if (kind_byte > 2) return Status::Corruption("unknown codec kind");
  return GetCodec(static_cast<CodecKind>(kind_byte))->Decompress(input);
}

}  // namespace bistro

#ifndef BISTRO_COMPRESS_CODEC_H_
#define BISTRO_COMPRESS_CODEC_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "obs/metrics.h"

namespace bistro {

/// Codec identifiers usable in feed configuration (`compress lz;`).
enum class CodecKind { kNone = 0, kRle = 1, kLz = 2 };

/// Parses "none" / "rle" / "lz".
Result<CodecKind> CodecKindFromName(std::string_view name);
std::string_view CodecKindName(CodecKind kind);

/// Block compressor. All codecs frame their output with a small header
/// (magic, kind, original size, CRC32 of the original data) so that
/// Decompress can verify integrity and AutoDetect can route.
class Codec {
 public:
  virtual ~Codec() = default;

  virtual CodecKind kind() const = 0;

  /// Compresses `input` into a framed block.
  std::string Compress(std::string_view input) const;

  /// Decompresses a framed block; verifies frame CRC.
  Result<std::string> Decompress(std::string_view input) const;

 protected:
  virtual std::string CompressImpl(std::string_view input) const = 0;
  virtual Result<std::string> DecompressImpl(std::string_view input) const = 0;
};

/// Registers process-wide codec counters (calls, bytes in/out, failures)
/// in `registry`. Codecs are process-wide singletons, so their raw totals
/// are process-wide too; each attached registry receives deltas from the
/// moment of attachment via a collect hook.
void AttachCodecMetrics(MetricsRegistry* registry);

/// Returns the process-wide codec instance for `kind`.
const Codec* GetCodec(CodecKind kind);

/// Inspects the frame header and decompresses with the right codec.
/// Data without a Bistro frame header is returned unchanged (feeds often
/// deliver already-compressed or plain files we must pass through).
Result<std::string> AutoDecompress(std::string_view input);

/// True if `input` starts with a Bistro codec frame.
bool HasCodecFrame(std::string_view input);

}  // namespace bistro

#endif  // BISTRO_COMPRESS_CODEC_H_

#ifndef BISTRO_NET_STREAM_H_
#define BISTRO_NET_STREAM_H_

#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "net/protocol.h"

namespace bistro {

/// Incremental decoder for a byte stream of concatenated EncodeMessage
/// frames — the building block for running the Bistro protocol over any
/// stream transport (TCP, pipes). Feed it arbitrary chunks; complete
/// messages become available in order. Corruption is reported once and
/// poisons the stream (a stream transport cannot resynchronize after a
/// framing error; the connection must be dropped).
class MessageStreamDecoder {
 public:
  /// `max_frame_bytes` bounds a single frame's claimed body size; a frame
  /// claiming more poisons the stream immediately, before any buffering
  /// grows toward the bogus length. This is the defense that makes the
  /// decoder safe on bytes from an untrusted socket.
  explicit MessageStreamDecoder(size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Appends received bytes; decodes any complete frames.
  /// Returns the first error encountered (sticky).
  Status Feed(std::string_view bytes);

  /// Pops the next decoded message, if any.
  std::optional<Message> Next();

  size_t pending() const { return decoded_.size(); }
  bool poisoned() const { return !status_.ok(); }
  const Status& status() const { return status_; }

  /// Bytes buffered awaiting a complete frame.
  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  size_t max_frame_bytes_;
  std::string buffer_;
  std::deque<Message> decoded_;
  Status status_;
};

/// Encodes a sequence of messages as one contiguous stream (what a sender
/// writes to the wire).
std::string EncodeMessageStream(const std::vector<Message>& messages);

}  // namespace bistro

#endif  // BISTRO_NET_STREAM_H_

#include "net/stream.h"

namespace bistro {

namespace {
// Peeks the total frame size (varint length prefix + 4-byte CRC + body)
// at the front of `data`; returns 0 if more bytes are needed, or an error
// sentinel of SIZE_MAX on malformed varint.
size_t FrameSize(std::string_view data, uint64_t* body_len) {
  uint64_t len = 0;
  int shift = 0;
  size_t i = 0;
  while (i < data.size()) {
    uint8_t byte = static_cast<uint8_t>(data[i]);
    ++i;
    len |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *body_len = len;
      return i + 4 + len;
    }
    shift += 7;
    if (shift > 63) return SIZE_MAX;
  }
  return 0;  // length prefix itself incomplete
}
}  // namespace

Status MessageStreamDecoder::Feed(std::string_view bytes) {
  if (!status_.ok()) return status_;
  buffer_.append(bytes.data(), bytes.size());
  while (true) {
    uint64_t body_len = 0;
    size_t frame = FrameSize(buffer_, &body_len);
    if (frame == SIZE_MAX) {
      status_ = Status::Corruption("message stream: malformed length prefix");
      return status_;
    }
    // Reject an oversized claim the moment the prefix is readable — the
    // buffer must never grow toward a hostile length. (This also guards
    // the prefix + 4 + len sum against wrap for lengths near UINT64_MAX.)
    if (frame != 0 && body_len > max_frame_bytes_) {
      status_ = Status::Corruption("message stream: frame exceeds max bytes");
      return status_;
    }
    if (frame == 0 || buffer_.size() < frame) return Status::OK();
    auto msg =
        DecodeMessage(std::string_view(buffer_).substr(0, frame),
                      max_frame_bytes_);
    if (!msg.ok()) {
      status_ = msg.status();
      return status_;
    }
    decoded_.push_back(std::move(*msg));
    buffer_.erase(0, frame);
  }
}

std::optional<Message> MessageStreamDecoder::Next() {
  if (decoded_.empty()) return std::nullopt;
  Message msg = std::move(decoded_.front());
  decoded_.pop_front();
  return msg;
}

std::string EncodeMessageStream(const std::vector<Message>& messages) {
  std::string out;
  for (const Message& msg : messages) out += EncodeMessage(msg);
  return out;
}

}  // namespace bistro

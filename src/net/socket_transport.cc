#include "net/socket_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace bistro {

namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

void SetNoDelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

Result<std::pair<uint32_t, uint16_t>> ParseInetAddress(
    const std::string& address) {
  size_t colon = address.rfind(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("address needs host:port: " + address);
  }
  std::string host = address.substr(0, colon);
  std::string port_str = address.substr(colon + 1);
  if (port_str.empty() ||
      port_str.find_first_not_of("0123456789") != std::string::npos) {
    return Status::InvalidArgument("bad port in address: " + address);
  }
  unsigned long port = std::strtoul(port_str.c_str(), nullptr, 10);
  if (port > 65535) {
    return Status::InvalidArgument("port out of range: " + address);
  }
  uint32_t host_be;
  if (host.empty() || host == "0.0.0.0") {
    host_be = htonl(INADDR_ANY);
  } else if (host == "localhost") {
    host_be = htonl(INADDR_LOOPBACK);
  } else {
    in_addr parsed;
    if (inet_pton(AF_INET, host.c_str(), &parsed) != 1) {
      return Status::InvalidArgument("bad IPv4 host in address: " + address);
    }
    host_be = parsed.s_addr;
  }
  return std::make_pair(host_be, static_cast<uint16_t>(port));
}

SocketTransport::SocketTransport(EventLoop* loop, Options options)
    : loop_(loop),
      options_(std::move(options)),
      backoff_rng_(options_.backoff_seed) {}

SocketTransport::~SocketTransport() {
  // By destructor time the metrics registry (owned by the server, which
  // is usually destroyed first) may already be gone; the increments the
  // final teardown would make are unobservable anyway.
  DetachMetrics();
  Shutdown();
}

void SocketTransport::DetachMetrics() {
  DetachBaseMetrics();
  m_connects_ = nullptr;
  m_accepts_ = nullptr;
  m_disconnects_ = nullptr;
  m_reconnects_ = nullptr;
  m_acks_ = nullptr;
  m_ack_timeouts_ = nullptr;
  m_frames_in_ = nullptr;
  m_bytes_in_ = nullptr;
  m_queue_rejects_ = nullptr;
  m_gate_rejects_ = nullptr;
  m_connections_ = nullptr;
  registry_ = nullptr;
  for (auto& [name, peer] : peers_) {
    peer.m_peer_reconnects = nullptr;
    peer.m_peer_disconnected_secs = nullptr;
  }
}

Status SocketTransport::Listen() {
  if (options_.listen_address.empty()) return Status::OK();
  if (listen_fd_ >= 0) return Status::OK();
  BISTRO_ASSIGN_OR_RETURN(auto addr, ParseInetAddress(options_.listen_address));
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return Status::IoError(Errno("socket"));
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in sin{};
  sin.sin_family = AF_INET;
  sin.sin_addr.s_addr = addr.first;
  sin.sin_port = htons(addr.second);
  if (bind(fd, reinterpret_cast<sockaddr*>(&sin), sizeof(sin)) != 0) {
    Status s = Status::IoError(
        Errno(("bind " + options_.listen_address).c_str()));
    close(fd);
    return s;
  }
  if (listen(fd, SOMAXCONN) != 0) {
    Status s = Status::IoError(Errno("listen"));
    close(fd);
    return s;
  }
  socklen_t len = sizeof(sin);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&sin), &len) == 0) {
    listen_port_ = ntohs(sin.sin_port);
  }
  listen_fd_ = fd;
  loop_->WatchFd(fd, [this](bool readable, bool) {
    if (readable) OnListenReadable();
  });
  return Status::OK();
}

void SocketTransport::AddPeer(const std::string& name,
                              const std::string& address) {
  Peer& peer = peers_[name];
  if (peer.conn == nullptr) {
    peer.conn = std::make_unique<Conn>(options_.max_frame_bytes);
    // Outage time accrues from declaration until the first connect: a
    // peer that never comes up reads as 100% disconnected.
    peer.disconnected_since = loop_->Now();
    AttachPeerMetrics(name, &peer);
  } else if (peer.address != address) {
    // Re-addressed (typically a peer that restarted on a fresh ephemeral
    // port): the old connection is dead weight, start over immediately.
    DropPeerConn(name, &peer, Status::Unavailable("peer re-addressed"),
                 /*reconnect=*/false);
    peer.last_backoff = 0;
  }
  peer.address = address;
}

void SocketTransport::RemovePeer(const std::string& name) {
  auto it = peers_.find(name);
  if (it == peers_.end()) return;
  DropPeerConn(name, &it->second, Status::Unavailable("peer removed"),
               /*reconnect=*/false);
  peers_.erase(it);
}

void SocketTransport::Register(const std::string& name, Endpoint* endpoint) {
  local_endpoints_[name] = endpoint;
}

void SocketTransport::Unregister(const std::string& name) {
  local_endpoints_.erase(name);
}

void SocketTransport::Shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  *alive_ = false;
  for (auto& [name, peer] : peers_) {
    DropPeerConn(name, &peer, Status::Unavailable("transport shutdown"),
                 /*reconnect=*/false);
  }
  std::vector<int> inbound_fds;
  for (const auto& [fd, conn] : inbound_) inbound_fds.push_back(fd);
  for (int fd : inbound_fds) DropInbound(fd);
  if (listen_fd_ >= 0) {
    loop_->UnwatchFd(listen_fd_);
    close(listen_fd_);
    listen_fd_ = -1;
  }
}

// ------------------------------------------------------------------ send

void SocketTransport::FailCallback(const SendCallback& done,
                                   const Status& status) {
  CountOutcome(status);
  if (done) done(status);
}

void SocketTransport::SendLocal(Endpoint* ep, const Message& msg,
                                SendCallback done) {
  // Same round-trip through the wire encoding as LoopbackTransport, so
  // the protocol layer is exercised even for in-process endpoints.
  std::string wire = EncodeMessage(msg);
  std::weak_ptr<bool> alive = alive_;
  loop_->Post([this, alive, ep, wire = std::move(wire), done] {
    auto self = alive.lock();
    if (self == nullptr || !*self) return;
    auto decoded = DecodeMessage(wire, options_.max_frame_bytes);
    if (!decoded.ok()) {
      FailCallback(done, decoded.status());
      return;
    }
    Status s = ep->HandleMessage(*decoded);
    CountOutcome(s);
    if (done) done(s);
  });
}

void SocketTransport::Send(const std::string& endpoint, const Message& msg,
                           SendCallback done) {
  CountSend(msg.payload.size());
  auto lit = local_endpoints_.find(endpoint);
  if (lit != local_endpoints_.end()) {
    SendLocal(lit->second, msg, std::move(done));
    return;
  }
  auto pit = peers_.find(endpoint);
  if (pit == peers_.end()) {
    std::weak_ptr<bool> alive = alive_;
    loop_->Post([this, alive, endpoint, done] {
      auto self = alive.lock();
      if (self == nullptr || !*self) return;
      FailCallback(done, Status::Unavailable("no endpoint: " + endpoint));
    });
    return;
  }
  Peer& peer = pit->second;
  Conn* conn = peer.conn.get();

  if (gate_) {
    Status gated = gate_(endpoint, msg);
    if (!gated.ok()) {
      ++gate_rejects_;
      if (m_gate_rejects_ != nullptr) m_gate_rejects_->Increment();
      FailCallback(done, gated);
      return;
    }
  }

  Message framed = msg;  // cheap: payload bytes are shared
  framed.net_seq = peer.next_seq++;
  std::string frame = EncodeMessage(framed);
  if (conn->outq_bytes + frame.size() > options_.outbound_queue_bytes) {
    if (m_queue_rejects_ != nullptr) m_queue_rejects_->Increment();
    FailCallback(done,
                 Status::Unavailable("outbound queue full: " + endpoint));
    return;
  }
  peer.pending[framed.net_seq] = PendingSend{std::move(done), loop_->Now()};
  ArmAckSweep();
  EnqueueFrame(conn, std::move(frame));
  EnsureConnected(endpoint, &peer);
  if (conn->fd >= 0 && !conn->connecting) {
    Status s = FlushWrites(conn);
    if (!s.ok()) DropPeerConn(endpoint, &peer, s, /*reconnect=*/true);
  }
}

void SocketTransport::SendBundle(const std::string& endpoint,
                                 std::vector<BundleItem> items) {
  if (local_endpoints_.count(endpoint) != 0 ||
      peers_.count(endpoint) == 0) {
    // Local endpoints and unknown names take the per-message path (which
    // resolves them identically to Send).
    Transport::SendBundle(endpoint, std::move(items));
    return;
  }
  Peer& peer = peers_[endpoint];
  Conn* conn = peer.conn.get();

  if (gate_ && !items.empty()) {
    // Bundles are homogeneous (coalesced push files), so one gate
    // decision covers the frame; every item fails together.
    Status gated = gate_(endpoint, items[0].msg);
    if (!gated.ok()) {
      ++gate_rejects_;
      if (m_gate_rejects_ != nullptr) m_gate_rejects_->Increment();
      for (BundleItem& item : items) FailCallback(item.done, gated);
      return;
    }
  }

  // One contiguous write burst; each inner frame keeps its own sequence
  // and callback, so per-file acks survive coalescing.
  std::string burst;
  std::vector<std::pair<uint64_t, SendCallback>> seqs;
  seqs.reserve(items.size());
  uint64_t first_seq = peer.next_seq;
  for (BundleItem& item : items) {
    CountSend(item.msg.payload.size());
    Message framed = std::move(item.msg);
    framed.net_seq = peer.next_seq++;
    burst += EncodeMessage(framed);
    seqs.emplace_back(framed.net_seq, std::move(item.done));
  }
  if (conn->outq_bytes + burst.size() > options_.outbound_queue_bytes) {
    if (m_queue_rejects_ != nullptr) m_queue_rejects_->Increment();
    peer.next_seq = first_seq;  // nothing went on the wire
    Status s = Status::Unavailable("outbound queue full: " + endpoint);
    for (auto& [seq, done] : seqs) FailCallback(done, s);
    return;
  }
  TimePoint now = loop_->Now();
  for (auto& [seq, done] : seqs) {
    peer.pending[seq] = PendingSend{std::move(done), now};
  }
  ArmAckSweep();
  EnqueueFrame(conn, std::move(burst));
  EnsureConnected(endpoint, &peer);
  if (conn->fd >= 0 && !conn->connecting) {
    Status s = FlushWrites(conn);
    if (!s.ok()) DropPeerConn(endpoint, &peer, s, /*reconnect=*/true);
  }
}

// ------------------------------------------------------------- wire I/O

void SocketTransport::EnqueueFrame(Conn* conn, std::string frame) {
  conn->outq_bytes += frame.size();
  conn->outq.push_back(std::move(frame));
}

Status SocketTransport::FlushWrites(Conn* conn) {
  while (!conn->outq.empty()) {
    const std::string& frame = conn->outq.front();
    size_t left = frame.size() - conn->out_head;
    // SIGPIPE audit: this send() is the transport's ONLY write(2)-family
    // call (peer, inbound-ack and shutdown paths all funnel here), and
    // MSG_NOSIGNAL is mandatory — a reader that died mid-stream must
    // surface as EPIPE below (a retryable Unavailable) rather than
    // killing the process. Pinned by SocketTransportTest.
    // SigpipeSafeWhenReaderDiesMidStream.
    ssize_t n = send(conn->fd, frame.data() + conn->out_head, left,
                     MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_head += static_cast<size_t>(n);
      conn->outq_bytes -= static_cast<size_t>(n);
      if (conn->out_head == frame.size()) {
        conn->outq.pop_front();
        conn->out_head = 0;
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn->want_write) {
        conn->want_write = true;
        loop_->SetFdWriteInterest(conn->fd, true);
      }
      return Status::OK();
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::Unavailable(Errno("send"));
  }
  if (conn->want_write) {
    conn->want_write = false;
    loop_->SetFdWriteInterest(conn->fd, false);
  }
  return Status::OK();
}

bool SocketTransport::ReadReady(Conn* conn, Status* error) {
  char buf[65536];
  for (;;) {
    ssize_t n = read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      if (m_bytes_in_ != nullptr) {
        m_bytes_in_->Increment(static_cast<uint64_t>(n));
      }
      Status fed = conn->decoder.Feed(std::string_view(buf, n));
      if (!fed.ok()) {
        // A framing error is unrecoverable on a stream: drop the
        // connection (Unavailable to in-flight sends; the poison cause
        // rides in the message).
        *error = Status::Unavailable("stream poisoned: " + fed.ToString());
        return false;
      }
      continue;
    }
    if (n == 0) {
      *error = Status::Unavailable("peer closed connection");
      return false;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    *error = Status::Unavailable(Errno("read"));
    return false;
  }
}

// ------------------------------------------------------ peer lifecycle

void SocketTransport::EnsureConnected(const std::string& name, Peer* peer) {
  if (shut_down_) return;
  Conn* conn = peer->conn.get();
  if (conn->fd >= 0 || conn->connecting) return;
  if (peer->reconnect_scheduled) return;  // backoff in progress
  StartConnect(name, peer);
}

void SocketTransport::StartConnect(const std::string& name, Peer* peer) {
  auto addr = ParseInetAddress(peer->address);
  if (!addr.ok()) {
    // A misconfigured address never connects; fail sends with the real
    // cause rather than a generic Unavailable, and don't retry-loop.
    DropPeerConn(name, peer, addr.status(), /*reconnect=*/false);
    return;
  }
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    DropPeerConn(name, peer, Status::Unavailable(Errno("socket")),
                 /*reconnect=*/true);
    return;
  }
  sockaddr_in sin{};
  sin.sin_family = AF_INET;
  sin.sin_addr.s_addr = addr->first;
  sin.sin_port = htons(addr->second);
  Conn* conn = peer->conn.get();
  conn->fd = fd;
  int rc = connect(fd, reinterpret_cast<sockaddr*>(&sin), sizeof(sin));
  if (rc == 0) {
    FinishConnect(name, peer);
    return;
  }
  if (errno != EINPROGRESS) {
    DropPeerConn(name, peer, Status::Unavailable(Errno("connect")),
                 /*reconnect=*/true);
    return;
  }
  conn->connecting = true;
  conn->want_write = true;
  loop_->WatchFd(fd, [this, name](bool readable, bool writable) {
    OnPeerFdEvent(name, readable, writable);
  });
  loop_->SetFdWriteInterest(fd, true);
}

void SocketTransport::FinishConnect(const std::string& name, Peer* peer) {
  Conn* conn = peer->conn.get();
  bool was_connecting = conn->connecting;
  conn->connecting = false;
  conn->established = true;
  peer->last_backoff = 0;  // healthy again: next failure backs off afresh
  MarkConnected(peer);
  SetNoDelay(conn->fd);
  ++connects_;
  if (m_connects_ != nullptr) m_connects_->Increment();
  if (m_connections_ != nullptr) m_connections_->Add(1);
  if (!was_connecting) {
    // connect() completed synchronously, so the fd was never watched.
    loop_->WatchFd(conn->fd, [this, name](bool readable, bool writable) {
      OnPeerFdEvent(name, readable, writable);
    });
  }
  if (observer_ != nullptr) observer_->OnPeerConnected(name);
  Status s = FlushWrites(conn);
  if (!s.ok()) DropPeerConn(name, peer, s, /*reconnect=*/true);
}

void SocketTransport::OnPeerFdEvent(const std::string& name, bool readable,
                                    bool writable) {
  auto it = peers_.find(name);
  if (it == peers_.end()) return;
  Peer& peer = it->second;
  Conn* conn = peer.conn.get();
  if (conn == nullptr || conn->fd < 0) return;

  if (conn->connecting) {
    // Readiness (or error, reported as readable) resolves the
    // non-blocking connect.
    int err = 0;
    socklen_t len = sizeof(err);
    if (getsockopt(conn->fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      err = errno;
    }
    if (err != 0) {
      DropPeerConn(name, &peer,
                   Status::Unavailable(std::string("connect: ") +
                                       std::strerror(err)),
                   /*reconnect=*/true);
      return;
    }
    FinishConnect(name, &peer);
    return;
  }

  if (writable) {
    Status s = FlushWrites(conn);
    if (!s.ok()) {
      DropPeerConn(name, &peer, s, /*reconnect=*/true);
      return;
    }
  }
  if (readable) {
    Status error;
    bool alive = ReadReady(conn, &error);
    while (auto msg = conn->decoder.Next()) {
      if (m_frames_in_ != nullptr) m_frames_in_->Increment();
      if (msg->type == MessageType::kAck) {
        HandleAck(name, &peer, *msg);
      }
      // Non-ack traffic on an outbound connection is not part of the
      // protocol (each federation direction uses its own connection);
      // ignore rather than guess.
    }
    if (!alive) DropPeerConn(name, &peer, error, /*reconnect=*/true);
  }
}

void SocketTransport::HandleAck(const std::string& name, Peer* peer,
                                const Message& ack) {
  auto it = peer->pending.find(ack.net_seq);
  if (it == peer->pending.end()) return;  // late ack after timeout/redrive
  SendCallback done = std::move(it->second.done);
  peer->pending.erase(it);
  peer->last_ack_at = loop_->Now();
  if (m_acks_ != nullptr) m_acks_->Increment();
  Status result =
      ack.ack_code == 0
          ? Status::OK()
          : Status(static_cast<StatusCode>(ack.ack_code), ack.name);
  CountOutcome(result);
  // Any matched ack — even one carrying a handler error — proves the
  // peer is alive and responsive; the observer treats it as liveness.
  if (observer_ != nullptr) observer_->OnPeerAck(name, result);
  if (done) done(result);
}

void SocketTransport::DropPeerConn(const std::string& name, Peer* peer,
                                   const Status& status, bool reconnect,
                                   bool notify_observer) {
  Conn* conn = peer->conn.get();
  bool had_fd = conn->fd >= 0;
  bool established = conn->established;
  if (had_fd) {
    loop_->UnwatchFd(conn->fd);
    close(conn->fd);
    conn->fd = -1;
    ++disconnects_;
    if (m_disconnects_ != nullptr) m_disconnects_->Increment();
    if (established && m_connections_ != nullptr) m_connections_->Add(-1);
  }
  MarkDisconnected(peer);
  conn->connecting = false;
  conn->established = false;
  conn->want_write = false;
  conn->decoder = MessageStreamDecoder(options_.max_frame_bytes);
  conn->outq.clear();
  conn->out_head = 0;
  conn->outq_bytes = 0;

  // Every in-flight send dies with the connection. Transport-level
  // failures surface as Unavailable (retryable); anything already more
  // specific (bad address) passes through.
  Status failure = status.ok() || status.IsUnavailable()
                       ? (status.ok() ? Status::Unavailable("connection reset")
                                      : status)
                       : status;
  auto pending = std::move(peer->pending);
  peer->pending.clear();
  for (auto& [seq, p] : pending) FailCallback(p.done, failure);

  if (notify_observer && had_fd && observer_ != nullptr) {
    if (established) {
      observer_->OnPeerDisconnected(name, failure);
    } else {
      observer_->OnPeerConnectFailed(name, failure);
    }
  }

  if (reconnect) ScheduleReconnect(name, peer);
}

void SocketTransport::MarkConnected(Peer* peer) {
  if (peer->disconnected_since == 0) return;
  peer->disconnected_total += loop_->Now() - peer->disconnected_since;
  peer->disconnected_since = 0;
  if (peer->m_peer_disconnected_secs != nullptr) {
    peer->m_peer_disconnected_secs->Set(peer->disconnected_total / kSecond);
  }
}

void SocketTransport::MarkDisconnected(Peer* peer) {
  if (peer->disconnected_since != 0) return;  // outage already running
  peer->disconnected_since = loop_->Now();
}

Duration SocketTransport::NextReconnectBackoff(Peer* peer) {
  const Duration base = std::max<Duration>(options_.reconnect_backoff_min, 1);
  const Duration cap = std::max<Duration>(options_.reconnect_backoff_max, base);
  Duration next;
  if (peer->last_backoff <= 0) {
    next = base;
  } else {
    // Decorrelated jitter, same scheme as delivery retries: grow from the
    // previous draw, jitter uniformly back toward the base.
    Duration grown = peer->last_backoff > cap / 3 ? cap
                                                  : peer->last_backoff * 3;
    next = base + static_cast<Duration>(backoff_rng_.Uniform(
                      static_cast<uint64_t>(grown - base) + 1));
  }
  peer->last_backoff = next;
  return next;
}

void SocketTransport::ScheduleReconnect(const std::string& name, Peer* peer) {
  if (shut_down_ || peer->reconnect_scheduled) return;
  peer->reconnect_scheduled = true;
  Duration backoff = NextReconnectBackoff(peer);
  std::weak_ptr<bool> alive = alive_;
  loop_->PostAfter(backoff, [this, alive, name] {
    auto self = alive.lock();
    if (self == nullptr || !*self) return;
    auto it = peers_.find(name);
    if (it == peers_.end()) return;
    Peer& peer = it->second;
    peer.reconnect_scheduled = false;
    Conn* conn = peer.conn.get();
    if (conn->fd >= 0 || conn->connecting) return;
    ++peer.reconnect_attempts;
    if (m_reconnects_ != nullptr) m_reconnects_->Increment();
    if (peer.m_peer_reconnects != nullptr) peer.m_peer_reconnects->Increment();
    StartConnect(name, &peer);
  });
}

bool SocketTransport::PeerConnected(const std::string& name) const {
  auto it = peers_.find(name);
  if (it == peers_.end()) return false;
  const Conn* conn = it->second.conn.get();
  return conn != nullptr && conn->fd >= 0 && !conn->connecting;
}

// ------------------------------------------------------- ack timeouts

void SocketTransport::ArmAckSweep() {
  if (ack_sweep_armed_ || shut_down_) return;
  ack_sweep_armed_ = true;
  Duration interval =
      std::max<Duration>(options_.ack_timeout / 4, 50 * kMillisecond);
  std::weak_ptr<bool> alive = alive_;
  loop_->PostAfter(interval, [this, alive] {
    auto self = alive.lock();
    if (self == nullptr || !*self) return;
    ack_sweep_armed_ = false;
    SweepAckTimeouts();
  });
}

void SocketTransport::SweepAckTimeouts() {
  TimePoint now = loop_->Now();
  bool any_pending = false;
  std::vector<std::string> expired;
  for (auto& [name, peer] : peers_) {
    bool timed_out = false;
    for (const auto& [seq, p] : peer.pending) {
      if (p.sent_at + options_.ack_timeout <= now) {
        timed_out = true;
        break;
      }
    }
    if (timed_out) {
      expired.push_back(name);
    } else if (!peer.pending.empty()) {
      any_pending = true;
    }
  }
  for (const std::string& name : expired) {
    auto it = peers_.find(name);
    if (it == peers_.end()) continue;
    ++ack_timeouts_;
    if (m_ack_timeouts_ != nullptr) m_ack_timeouts_->Increment();
    // A connection that stopped acking is indistinguishable from a
    // half-open peer: drop it wholesale (all pending fail, delivery
    // retries) rather than cherry-picking sequences. The observer hears
    // OnPeerAckTimeout only — the drop it causes is the same piece of
    // evidence, not a second failure.
    if (observer_ != nullptr) observer_->OnPeerAckTimeout(name);
    DropPeerConn(name, &it->second, Status::Unavailable("ack timeout"),
                 /*reconnect=*/true, /*notify_observer=*/false);
  }
  if (any_pending) ArmAckSweep();
}

// ------------------------------------------------------- inbound side

void SocketTransport::OnListenReadable() {
  for (;;) {
    int fd = accept4(listen_fd_, nullptr, nullptr,
                     SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient accept error: poll again later
    }
    SetNoDelay(fd);
    ++accepts_;
    if (m_accepts_ != nullptr) m_accepts_->Increment();
    if (m_connections_ != nullptr) m_connections_->Add(1);
    auto conn = std::make_unique<Conn>(options_.max_frame_bytes);
    conn->fd = fd;
    inbound_[fd] = std::move(conn);
    loop_->WatchFd(fd, [this, fd](bool readable, bool writable) {
      OnInboundFdEvent(fd, readable, writable);
    });
  }
}

void SocketTransport::OnInboundFdEvent(int fd, bool readable, bool writable) {
  auto it = inbound_.find(fd);
  if (it == inbound_.end()) return;
  Conn* conn = it->second.get();

  if (writable) {
    Status s = FlushWrites(conn);
    if (!s.ok()) {
      DropInbound(fd);
      return;
    }
  }
  if (readable) {
    Status error;
    bool alive = ReadReady(conn, &error);
    while (auto msg = conn->decoder.Next()) {
      if (m_frames_in_ != nullptr) m_frames_in_->Increment();
      DispatchInbound(conn, *msg);
      // DispatchInbound drops the connection (erasing *conn) if the ack
      // write fails; re-resolve before touching it again.
      if (inbound_.find(fd) == inbound_.end()) return;
    }
    if (!alive) DropInbound(fd);
  }
}

void SocketTransport::DispatchInbound(Conn* conn, const Message& msg) {
  if (msg.type == MessageType::kAck) return;  // senders don't ack acks
  Status handled =
      inbound_endpoint_ != nullptr
          ? inbound_endpoint_->HandleMessage(msg)
          : Status::Unavailable("no inbound endpoint configured");
  if (msg.net_seq == 0) return;  // sender did not ask for correlation
  Message ack;
  ack.type = MessageType::kAck;
  ack.net_seq = msg.net_seq;
  ack.file_id = msg.file_id;
  ack.feed = msg.feed;
  ack.ack_code = static_cast<uint32_t>(handled.code());
  if (!handled.ok()) ack.name = std::string(handled.message());
  EnqueueFrame(conn, EncodeMessage(ack));
  Status s = FlushWrites(conn);
  if (!s.ok()) DropInbound(conn->fd);
}

void SocketTransport::DropInbound(int fd) {
  auto it = inbound_.find(fd);
  if (it == inbound_.end()) return;
  loop_->UnwatchFd(fd);
  close(fd);
  it->second->fd = -1;
  inbound_.erase(it);
  ++disconnects_;
  if (m_disconnects_ != nullptr) m_disconnects_->Increment();
  if (m_connections_ != nullptr) m_connections_->Add(-1);
}

// ----------------------------------------------------------- metrics

void SocketTransport::AttachMetrics(MetricsRegistry* registry) {
  Transport::AttachMetrics(registry);
  m_connects_ = registry->GetCounter("bistro_net_connects_total",
                                     "Outbound TCP connections established");
  m_accepts_ = registry->GetCounter("bistro_net_accepts_total",
                                    "Inbound TCP connections accepted");
  m_disconnects_ = registry->GetCounter(
      "bistro_net_disconnects_total",
      "TCP connections closed (either side, any cause)");
  m_reconnects_ = registry->GetCounter("bistro_net_reconnects_total",
                                       "Reconnect attempts after backoff");
  m_acks_ = registry->GetCounter("bistro_net_acks_total",
                                 "Delivery acks matched to in-flight sends");
  m_ack_timeouts_ = registry->GetCounter(
      "bistro_net_ack_timeouts_total",
      "Connections dropped for exceeding ack_timeout");
  m_frames_in_ = registry->GetCounter("bistro_net_frames_in_total",
                                      "Protocol frames decoded from sockets");
  m_bytes_in_ = registry->GetCounter("bistro_net_bytes_in_total",
                                     "Bytes read from sockets");
  m_queue_rejects_ = registry->GetCounter(
      "bistro_net_queue_rejects_total",
      "Sends refused because the peer outbound queue was full");
  m_gate_rejects_ = registry->GetCounter(
      "bistro_net_gate_rejects_total",
      "Sends refused by the installed send gate (open circuit)");
  m_connections_ = registry->GetGauge("bistro_net_connections",
                                      "Established TCP connections");
  registry_ = registry;
  for (auto& [name, peer] : peers_) AttachPeerMetrics(name, &peer);
}

void SocketTransport::AttachPeerMetrics(const std::string& name, Peer* peer) {
  if (registry_ == nullptr || peer->m_peer_reconnects != nullptr) return;
  peer->m_peer_reconnects = registry_->GetCounter(
      "bistro_net_peer_" + name + "_reconnects_total",
      "Reconnect attempts toward peer " + name);
  peer->m_peer_disconnected_secs = registry_->GetGauge(
      "bistro_net_peer_" + name + "_disconnected_seconds",
      "Cumulative seconds peer " + name + " lacked a connection");
}

SocketTransport::PeerNetStats SocketTransport::GetPeerStats(
    const std::string& name) const {
  PeerNetStats stats;
  auto it = peers_.find(name);
  if (it == peers_.end()) return stats;
  const Peer& peer = it->second;
  const Conn* conn = peer.conn.get();
  stats.known = true;
  stats.connected = conn != nullptr && conn->fd >= 0 && !conn->connecting;
  stats.reconnect_attempts = peer.reconnect_attempts;
  stats.disconnected_total = peer.disconnected_total;
  if (peer.disconnected_since != 0) {
    stats.disconnected_total += loop_->Now() - peer.disconnected_since;
  }
  stats.last_ack_age =
      peer.last_ack_at == 0 ? -1 : loop_->Now() - peer.last_ack_at;
  stats.queued_bytes = conn != nullptr ? conn->outq_bytes : 0;
  stats.pending_acks = peer.pending.size();
  return stats;
}

std::vector<std::string> SocketTransport::PeerNames() const {
  std::vector<std::string> names;
  names.reserve(peers_.size());
  for (const auto& [name, peer] : peers_) names.push_back(name);
  return names;
}

}  // namespace bistro

#ifndef BISTRO_NET_SOCKET_TRANSPORT_H_
#define BISTRO_NET_SOCKET_TRANSPORT_H_

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "net/stream.h"
#include "net/transport.h"

namespace bistro {

/// Real TCP transport speaking the CRC'd frame protocol of net/protocol.*
/// between Bistro processes — the wire under Bistro-to-Bistro federation
/// (paper Fig. 1: servers feeding other servers).
///
/// Everything runs on the owning EventLoop's thread: non-blocking sockets
/// are registered with EventLoop::WatchFd and serviced from the loop's
/// poll(2) wait, so no internal locking is needed and the discrete-event
/// semantics of the rest of the server are preserved. The loop must run
/// under a RealClock (a SimClock loop never polls fds; simulated
/// deployments use SimTransport).
///
/// Sending. Each outbound message is assigned a per-peer `net_seq`,
/// framed with EncodeMessage, and appended to the peer's outbound queue;
/// the completion callback fires when the remote side's kAck for that
/// sequence arrives (carrying the remote HandleMessage status), when the
/// ack times out, or when the connection drops — the latter two always as
/// Unavailable, so the delivery engine's retry/backoff/dead-letter
/// machinery treats socket trouble exactly like a flaky simulated link.
/// SendBundle concatenates the frames into one queue entry (one write
/// burst) but keeps per-item sequences and callbacks.
///
/// Receiving. An accepting transport hands every non-ack inbound message
/// to the endpoint set with SetInboundEndpoint (a federated downstream
/// passes its BistroServer) and writes back a kAck echoing the sequence
/// with the handler's StatusCode.
///
/// Reconnect. A failed or dropped peer connection is retried with
/// decorrelated-jitter backoff (same scheme as delivery retries);
/// messages sent while disconnected queue up to `outbound_queue_bytes`
/// and flush on connect.
///
/// Names registered with Register() are served in-process (loopback
/// semantics), so one transport can carry a server's local subscribers
/// and its federated peers at once; a name that is both registered and a
/// peer resolves to the local endpoint.
class SocketTransport : public Transport {
 public:
  struct Options {
    /// "ip:port" to accept peer connections on ("127.0.0.1:4400",
    /// "0.0.0.0:4400", "localhost:0"); empty = outbound-only transport.
    /// Port 0 binds an ephemeral port (see listen_port()).
    std::string listen_address;
    /// Per-frame body bound enforced on inbound bytes (see
    /// kDefaultMaxFrameBytes); oversized claims drop the connection.
    size_t max_frame_bytes = kDefaultMaxFrameBytes;
    /// Cap on bytes queued toward one peer; sends over the cap fail
    /// immediately with Unavailable (backpressure surfaces to the
    /// delivery engine instead of buffering without bound).
    size_t outbound_queue_bytes = 64u << 20;
    /// Reconnect backoff envelope (decorrelated jitter between them).
    Duration reconnect_backoff_min = 200 * kMillisecond;
    Duration reconnect_backoff_max = 10 * kSecond;
    /// A send unacknowledged for this long fails (Unavailable) and drops
    /// the connection, which also catches half-open peers.
    Duration ack_timeout = 30 * kSecond;
    /// Seed for the reconnect jitter RNG.
    uint64_t backoff_seed = 1;
  };

  /// Observer of per-peer connection-lifecycle evidence — the hooks the
  /// federation health state machine feeds on. Callbacks run on the loop
  /// thread after the transport's own state is consistent; observers may
  /// call back into the transport (e.g. to send probes). An ack-timeout
  /// drop reports as OnPeerAckTimeout only (not also a disconnect), so
  /// each failure counts once.
  class PeerObserver {
   public:
    virtual ~PeerObserver() = default;
    virtual void OnPeerConnected(const std::string& /*peer*/) {}
    virtual void OnPeerConnectFailed(const std::string& /*peer*/,
                                     const Status& /*cause*/) {}
    virtual void OnPeerDisconnected(const std::string& /*peer*/,
                                    const Status& /*cause*/) {}
    virtual void OnPeerAckTimeout(const std::string& /*peer*/) {}
    virtual void OnPeerAck(const std::string& /*peer*/,
                           const Status& /*status*/) {}
  };

  /// Circuit breaker hook: consulted before a message is queued toward a
  /// peer (never for local/loopback endpoints). A non-OK status fails
  /// the send immediately with that status — no bytes queue, so a dead
  /// peer stops burning outbound_queue_bytes.
  using SendGate =
      std::function<Status(const std::string& peer, const Message& msg)>;

  /// Point-in-time per-peer wire statistics (admin console, tests).
  struct PeerNetStats {
    bool known = false;
    bool connected = false;
    uint64_t reconnect_attempts = 0;
    /// Committed time spent wanting-but-lacking a connection, plus the
    /// ongoing outage when disconnected now (counted from AddPeer).
    Duration disconnected_total = 0;
    /// Age of the last matched ack; -1 = never acked.
    Duration last_ack_age = -1;
    size_t queued_bytes = 0;
    size_t pending_acks = 0;
  };

  SocketTransport(EventLoop* loop, Options options);
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  /// Binds and listens on options.listen_address. No-op (OK) when the
  /// address is empty.
  Status Listen();

  /// Port actually bound (resolves port 0); -1 when not listening.
  int listen_port() const { return listen_port_; }

  /// Receiver of inbound non-ack messages on accepted connections.
  void SetInboundEndpoint(Endpoint* endpoint) { inbound_endpoint_ = endpoint; }

  /// Declares a remote peer reachable at "ip:port". Re-adding with a
  /// different address drops any existing connection and reconnects —
  /// peers that restart on an ephemeral port are re-addressed this way.
  void AddPeer(const std::string& name, const std::string& address);

  /// Forgets a peer: drops its connection, fails queued sends.
  void RemovePeer(const std::string& name);

  /// Registers an in-process endpoint (loopback semantics).
  void Register(const std::string& name, Endpoint* endpoint);
  void Unregister(const std::string& name);

  /// Closes every socket and fails every in-flight send. Called by the
  /// destructor; callable earlier for orderly daemon shutdown.
  void Shutdown();

  // ------------------------------------------------------- Transport API
  void Send(const std::string& endpoint, const Message& msg,
            SendCallback done) override;
  void SendBundle(const std::string& endpoint,
                  std::vector<BundleItem> items) override;
  Duration EstimateCost(const std::string&, uint64_t) const override {
    return 0;
  }
  void AttachMetrics(MetricsRegistry* registry) override;

  /// Installs (or clears, with nullptr) the lifecycle observer.
  void SetPeerObserver(PeerObserver* observer) { observer_ = observer; }

  /// Installs (or clears, with an empty function) the send gate.
  void SetSendGate(SendGate gate) { gate_ = std::move(gate); }

  // --------------------------------------------- introspection (tests)
  uint64_t connects() const { return connects_; }
  uint64_t accepts() const { return accepts_; }
  uint64_t disconnects() const { return disconnects_; }
  uint64_t ack_timeouts() const { return ack_timeouts_; }
  /// Sends refused by the installed SendGate.
  uint64_t gate_rejects() const { return gate_rejects_; }
  /// True when the named peer has an established (not merely connecting)
  /// connection.
  bool PeerConnected(const std::string& name) const;
  /// Wire statistics for one peer (known == false for unknown names).
  PeerNetStats GetPeerStats(const std::string& name) const;
  /// Names of all declared peers, in name order.
  std::vector<std::string> PeerNames() const;

 private:
  /// One TCP connection (outbound to a peer, or accepted inbound).
  struct Conn {
    int fd = -1;
    bool connecting = false;       // non-blocking connect() in flight
    bool established = false;      // FinishConnect completed on this fd
    bool want_write = false;       // POLLOUT interest currently enabled
    MessageStreamDecoder decoder;
    /// Outbound frames; the head entry may be partially written
    /// (out_head bytes already on the wire).
    std::deque<std::string> outq;
    size_t out_head = 0;
    size_t outq_bytes = 0;

    explicit Conn(size_t max_frame_bytes) : decoder(max_frame_bytes) {}
  };

  struct PendingSend {
    SendCallback done;
    TimePoint sent_at = 0;
  };

  struct Peer {
    std::string address;
    std::unique_ptr<Conn> conn;
    uint64_t next_seq = 1;  // 0 means "no sequence" on the wire
    std::map<uint64_t, PendingSend> pending;
    Duration last_backoff = 0;
    bool reconnect_scheduled = false;
    // Health bookkeeping surfaced via GetPeerStats and per-peer metrics.
    uint64_t reconnect_attempts = 0;
    TimePoint disconnected_since = 0;  // 0 = connected right now
    Duration disconnected_total = 0;   // committed outage time
    TimePoint last_ack_at = 0;         // 0 = never acked
    Counter* m_peer_reconnects = nullptr;
    Gauge* m_peer_disconnected_secs = nullptr;
  };

  // Connection lifecycle.
  void EnsureConnected(const std::string& name, Peer* peer);
  void StartConnect(const std::string& name, Peer* peer);
  void FinishConnect(const std::string& name, Peer* peer);
  /// `notify_observer` false suppresses the disconnect/connect-failed
  /// observer callback (the ack-timeout sweep reports its own event).
  void DropPeerConn(const std::string& name, Peer* peer,
                    const Status& status, bool reconnect,
                    bool notify_observer = true);
  /// Commits outage bookkeeping when a connection is lost/established.
  void MarkDisconnected(Peer* peer);
  void MarkConnected(Peer* peer);
  /// Registers the per-peer counter/gauge pair when a registry is known.
  void AttachPeerMetrics(const std::string& name, Peer* peer);
  /// Nulls every registry-owned metric pointer. The destructor calls
  /// this before Shutdown(): the registry (owned by the server, usually
  /// destroyed first) may no longer exist by then.
  void DetachMetrics();
  void ScheduleReconnect(const std::string& name, Peer* peer);
  Duration NextReconnectBackoff(Peer* peer);

  // Wire I/O (shared by peer and inbound connections).
  /// Writes queued frames until EAGAIN or empty; adjusts POLLOUT
  /// interest. Errors mean the connection died (caller tears it down).
  Status FlushWrites(Conn* conn);
  void EnqueueFrame(Conn* conn, std::string frame);
  /// Reads until EAGAIN; returns false when the connection died (caller
  /// must tear it down).
  bool ReadReady(Conn* conn, Status* error);

  // Peer-side (outbound) events.
  void OnPeerFdEvent(const std::string& name, bool readable, bool writable);
  void HandleAck(const std::string& name, Peer* peer, const Message& ack);
  void ArmAckSweep();
  void SweepAckTimeouts();

  // Listener-side (inbound) events.
  void OnListenReadable();
  void OnInboundFdEvent(int fd, bool readable, bool writable);
  void DropInbound(int fd);
  void DispatchInbound(Conn* conn, const Message& msg);

  // Loopback path for locally registered endpoints.
  void SendLocal(Endpoint* ep, const Message& msg, SendCallback done);

  void FailCallback(const SendCallback& done, const Status& status);

  EventLoop* loop_;
  Options options_;
  Rng backoff_rng_;
  Endpoint* inbound_endpoint_ = nullptr;
  PeerObserver* observer_ = nullptr;
  SendGate gate_;
  MetricsRegistry* registry_ = nullptr;

  int listen_fd_ = -1;
  int listen_port_ = -1;

  std::map<std::string, Endpoint*> local_endpoints_;
  std::map<std::string, Peer> peers_;
  std::map<int, std::unique_ptr<Conn>> inbound_;

  bool ack_sweep_armed_ = false;
  bool shut_down_ = false;
  /// Liveness token for timers posted to the loop (reconnects, ack
  /// sweeps): they capture a weak_ptr and no-op once the transport shut
  /// down, so stale posts never touch a dead object.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);

  // Plain tallies always kept (tests); mirrored into the registry when
  // AttachMetrics ran.
  uint64_t connects_ = 0;
  uint64_t accepts_ = 0;
  uint64_t disconnects_ = 0;
  uint64_t ack_timeouts_ = 0;
  uint64_t gate_rejects_ = 0;

  Counter* m_connects_ = nullptr;
  Counter* m_accepts_ = nullptr;
  Counter* m_disconnects_ = nullptr;
  Counter* m_reconnects_ = nullptr;
  Counter* m_acks_ = nullptr;
  Counter* m_ack_timeouts_ = nullptr;
  Counter* m_frames_in_ = nullptr;
  Counter* m_bytes_in_ = nullptr;
  Counter* m_queue_rejects_ = nullptr;
  Counter* m_gate_rejects_ = nullptr;
  Gauge* m_connections_ = nullptr;
};

/// Parses "host:port" where host is an IPv4 dotted quad, "localhost", or
/// empty (meaning INADDR_ANY for listeners). Returns InvalidArgument on
/// anything else — the transport deliberately avoids resolver calls, so
/// federation configs name peers by address.
Result<std::pair<uint32_t, uint16_t>> ParseInetAddress(
    const std::string& address);

}  // namespace bistro

#endif  // BISTRO_NET_SOCKET_TRANSPORT_H_

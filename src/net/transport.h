#ifndef BISTRO_NET_TRANSPORT_H_
#define BISTRO_NET_TRANSPORT_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "net/protocol.h"
#include "obs/metrics.h"
#include "sim/event_loop.h"
#include "sim/network.h"
#include "vfs/filesystem.h"

namespace bistro {

/// Receiver of protocol messages: a subscriber application, or another
/// Bistro server acting as a subscriber (distributed feed network, §3).
class Endpoint {
 public:
  virtual ~Endpoint() = default;

  /// Handles one message. Returning an error signals a failed delivery;
  /// the server's sender will retry per its policy.
  virtual Status HandleMessage(const Message& msg) = 0;
};

/// Completion callback for an asynchronous send.
using SendCallback = std::function<void(const Status&)>;

/// One message of a coalesced multi-file frame, with its own completion
/// callback — per-file acks survive coalescing, so exactly-once
/// bookkeeping never depends on frame boundaries.
struct BundleItem {
  Message msg;
  SendCallback done;
};

/// Abstract message transport from the server to named endpoints.
///
/// Send is asynchronous: the callback fires when the transfer completes
/// (or fails). Implementations define what "the wire" is — a simulated
/// WAN, or an in-process call for live local deployments.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual void Send(const std::string& endpoint, const Message& msg,
                    SendCallback done) = 0;

  /// Sends several messages to one endpoint as a single wire frame when
  /// the transport supports it (one link round trip covers the group).
  /// The base implementation degrades to per-message Send, so transports
  /// and decorators that never see bundles keep working. Each item's
  /// callback fires individually: one rejected file NACKs alone without
  /// poisoning its frame-mates.
  virtual void SendBundle(const std::string& endpoint,
                          std::vector<BundleItem> items);

  /// Rough transfer cost estimate used by the scheduler's locality
  /// heuristics; 0 when unknown.
  virtual Duration EstimateCost(const std::string& endpoint,
                                uint64_t bytes) const = 0;

  /// Registers send/failure/byte counters in `registry`. Optional.
  /// Virtual so transports with their own machinery (sockets:
  /// connections, acks, reconnects) can register additional series.
  virtual void AttachMetrics(MetricsRegistry* registry);

 protected:
  /// Implementations call these around each Send.
  void CountSend(uint64_t payload_bytes);
  void CountOutcome(const Status& status);
  /// Forgets the registry-owned counters. For teardown paths where the
  /// registry may no longer exist (see SocketTransport's destructor).
  void DetachBaseMetrics();

 private:
  Counter* sends_ = nullptr;
  Counter* send_failures_ = nullptr;
  Counter* bytes_sent_ = nullptr;
};

/// In-process transport: messages are encoded, decoded and handed to the
/// registered Endpoint synchronously via the event loop. Used by the
/// examples and integration tests (substitutes for real sockets; the
/// protocol layer is still exercised byte-for-byte).
class LoopbackTransport : public Transport {
 public:
  explicit LoopbackTransport(EventLoop* loop) : loop_(loop) {}

  void Register(const std::string& name, Endpoint* endpoint);
  void Unregister(const std::string& name);

  void Send(const std::string& endpoint, const Message& msg,
            SendCallback done) override;
  void SendBundle(const std::string& endpoint,
                  std::vector<BundleItem> items) override;
  Duration EstimateCost(const std::string&, uint64_t) const override {
    return 0;
  }

 private:
  EventLoop* loop_;
  std::map<std::string, Endpoint*> endpoints_;
};

/// Simulated-WAN transport: consults a SimNetwork for link capacity,
/// failures and offline subscribers, and delivers the message to the
/// endpoint at the simulated completion time.
class SimTransport : public Transport {
 public:
  SimTransport(EventLoop* loop, SimNetwork* network)
      : loop_(loop), network_(network) {}

  void Register(const std::string& name, Endpoint* endpoint);
  /// Takes the endpoint off the wire: messages in flight to it (resolved
  /// at delivery time) bounce with Unavailable, as for a crashed process.
  void Unregister(const std::string& name);

  void Send(const std::string& endpoint, const Message& msg,
            SendCallback done) override;
  void SendBundle(const std::string& endpoint,
                  std::vector<BundleItem> items) override;
  Duration EstimateCost(const std::string& endpoint,
                        uint64_t bytes) const override;

 private:
  EventLoop* loop_;
  SimNetwork* network_;
  std::map<std::string, Endpoint*> endpoints_;
};

/// A simple subscriber endpoint that lands pushed files on a filesystem
/// under a destination root, tracks notifications, and optionally invokes
/// a callback per message — the reference implementation of the
/// subscriber-side contract used by examples and tests.
class FileSinkEndpoint : public Endpoint {
 public:
  /// `dedupe_capacity` bounds the redelivery-dedupe set (long-lived
  /// subscribers would otherwise grow it by one FileId per file ever
  /// received). Oldest-first eviction: an evicted id can in principle be
  /// re-landed if the server redelivers it much later, which overwrites
  /// the same destination file — safe, just no longer counted as a
  /// duplicate. Size the capacity above the server's redelivery horizon
  /// (its in-flight + retry window), not its full history.
  explicit FileSinkEndpoint(FileSystem* fs, std::string dest_root,
                            size_t dedupe_capacity = 65536)
      : fs_(fs),
        dest_root_(std::move(dest_root)),
        dedupe_capacity_(dedupe_capacity == 0 ? 1 : dedupe_capacity) {}

  /// Optional hook invoked after each successfully handled message.
  void SetMessageHook(std::function<void(const Message&)> hook) {
    hook_ = std::move(hook);
  }

  /// Simulate a subscriber-side failure: while set, every message errors.
  void SetFailing(bool failing) { failing_ = failing; }

  Status HandleMessage(const Message& msg) override;

  uint64_t files_received() const { return files_received_; }
  uint64_t notifications() const { return notifications_; }
  uint64_t batches() const { return batches_; }
  /// Redeliveries absorbed by the dedupe set (counted, not re-landed).
  uint64_t duplicates() const { return duplicates_; }
  /// Payload pushes rejected because the end-to-end CRC did not match.
  uint64_t corrupt_rejected() const { return corrupt_rejected_; }
  /// FileIds aged out of the bounded dedupe set.
  uint64_t dedupe_evictions() const { return dedupe_evictions_; }
  size_t dedupe_size() const { return delivered_ids_.size(); }

 private:
  FileSystem* fs_;
  std::string dest_root_;
  size_t dedupe_capacity_;
  std::function<void(const Message&)> hook_;
  bool failing_ = false;
  uint64_t files_received_ = 0;
  uint64_t notifications_ = 0;
  uint64_t batches_ = 0;
  uint64_t duplicates_ = 0;
  uint64_t corrupt_rejected_ = 0;
  uint64_t dedupe_evictions_ = 0;
  // FileIds already landed: redelivery (lost ack, crash between delivery
  // and receipt) is acknowledged without writing or counting again, so
  // at-least-once retries read as exactly-once to the subscriber.
  // Bounded to dedupe_capacity_ ids, oldest evicted first (the deque
  // remembers landing order).
  std::set<FileId> delivered_ids_;
  std::deque<FileId> delivered_order_;
};

}  // namespace bistro

#endif  // BISTRO_NET_TRANSPORT_H_

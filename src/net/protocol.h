#ifndef BISTRO_NET_PROTOCOL_H_
#define BISTRO_NET_PROTOCOL_H_

#include <string>

#include "common/status.h"
#include "core/types.h"

namespace bistro {

/// Wire messages of the Bistro communication interface (paper §4.1).
///
/// The interface is deliberately lightweight: sources notify the server
/// that data is ready; the server pushes file data (or availability
/// notifications, in the hybrid push-pull method) and end-of-batch markers
/// downstream; receivers acknowledge.
enum class MessageType : uint8_t {
  kFileData = 1,      // push delivery: name + destination + contents
  kFileNotify = 2,    // hybrid push-pull: availability notification only
  kEndOfBatch = 3,    // punctuation: a logical batch boundary
  kSourceNotify = 4,  // source -> server: file deposited in landing zone
  kAck = 5,
  kHeartbeat = 6,
};

/// A protocol message. Fields are used according to `type`; unused fields
/// stay empty/zero and serialize compactly.
struct Message {
  MessageType type = MessageType::kHeartbeat;
  FileId file_id = 0;
  FeedName feed;          // feed the file/batch belongs to
  std::string name;       // original filename
  std::string dest_path;  // destination path (kFileData/kFileNotify)
  std::string payload;    // file contents (kFileData)
  /// End-to-end payload checksum, computed by the sender from the staged
  /// bytes (not the wire bytes). The frame CRC below only covers the hop;
  /// this one travels with the message so the receiving Endpoint can
  /// detect corruption introduced anywhere between the staging read and
  /// the final write (bad buffers, proxies, re-encodes). 0 = not set.
  uint32_t payload_crc = 0;
  TimePoint data_time = 0;   // timestamp extracted from the filename
  TimePoint batch_time = 0;  // batch interval marker (kEndOfBatch)
  uint64_t batch_count = 0;  // files in the closed batch (kEndOfBatch)

  bool operator==(const Message&) const = default;
};

/// Serializes a message to a CRC-framed binary blob.
std::string EncodeMessage(const Message& msg);

/// Parses a blob produced by EncodeMessage; verifies the CRC.
Result<Message> DecodeMessage(std::string_view data);

}  // namespace bistro

#endif  // BISTRO_NET_PROTOCOL_H_

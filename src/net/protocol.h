#ifndef BISTRO_NET_PROTOCOL_H_
#define BISTRO_NET_PROTOCOL_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/types.h"

namespace bistro {

/// Immutable, cheaply shareable payload bytes.
///
/// A staged file fanning out to N subscribers used to be copied into N
/// Messages; a SharedPayload is a refcounted handle to one immutable
/// buffer, so every copy of the Message aliases the same bytes (the
/// delivery engine's staged-payload cache hands the same handle to every
/// fan-out job). Converts implicitly to std::string_view, so read-side
/// call sites (CRC, file writes, codecs) are unchanged.
class SharedPayload {
 public:
  SharedPayload() = default;
  SharedPayload(std::string s)  // NOLINT: implicit by design
      : data_(std::make_shared<const std::string>(std::move(s))) {}
  SharedPayload(const char* s) : SharedPayload(std::string(s)) {}
  explicit SharedPayload(std::shared_ptr<const std::string> s)
      : data_(std::move(s)) {}

  operator std::string_view() const { return view(); }  // NOLINT
  std::string_view view() const {
    return data_ ? std::string_view(*data_) : std::string_view();
  }
  const std::string& str() const {
    static const std::string kEmpty;
    return data_ ? *data_ : kEmpty;
  }
  size_t size() const { return data_ ? data_->size() : 0; }
  bool empty() const { return size() == 0; }

  /// Copy-on-write escape hatch for callers that mutate payload bytes
  /// (fault injection, tests). Detaches from any shared buffer first so
  /// the mutation never leaks into other aliasing Messages.
  std::string& mutable_str() {
    if (owned_ == nullptr || data_.get() != owned_ || data_.use_count() > 1) {
      auto fresh = std::make_shared<std::string>(str());
      owned_ = fresh.get();
      data_ = std::move(fresh);
    }
    return *owned_;
  }

  char operator[](size_t i) const { return (*data_)[i]; }

  /// Content equality (not handle identity).
  bool operator==(const SharedPayload& o) const { return view() == o.view(); }

 private:
  std::shared_ptr<const std::string> data_;
  // When the buffer was created by mutable_str() it is uniquely ours and
  // writable; points into data_ (or null when data_ is shared/immutable).
  std::string* owned_ = nullptr;
};

/// Wire messages of the Bistro communication interface (paper §4.1).
///
/// The interface is deliberately lightweight: sources notify the server
/// that data is ready; the server pushes file data (or availability
/// notifications, in the hybrid push-pull method) and end-of-batch markers
/// downstream; receivers acknowledge.
enum class MessageType : uint8_t {
  kFileData = 1,      // push delivery: name + destination + contents
  kFileNotify = 2,    // hybrid push-pull: availability notification only
  kEndOfBatch = 3,    // punctuation: a logical batch boundary
  kSourceNotify = 4,  // source -> server: file deposited in landing zone
  kAck = 5,
  kHeartbeat = 6,
};

/// A protocol message. Fields are used according to `type`; unused fields
/// stay empty/zero and serialize compactly.
struct Message {
  MessageType type = MessageType::kHeartbeat;
  FileId file_id = 0;
  FeedName feed;          // feed the file/batch belongs to
  std::string name;       // original filename
  std::string dest_path;  // destination path (kFileData/kFileNotify)
  SharedPayload payload;  // file contents (kFileData); aliased on fan-out
  /// End-to-end payload checksum, computed by the sender from the staged
  /// bytes (not the wire bytes). The frame CRC below only covers the hop;
  /// this one travels with the message so the receiving Endpoint can
  /// detect corruption introduced anywhere between the staging read and
  /// the final write (bad buffers, proxies, re-encodes). 0 = not set.
  uint32_t payload_crc = 0;
  TimePoint data_time = 0;   // timestamp extracted from the filename
  TimePoint batch_time = 0;  // batch interval marker (kEndOfBatch)
  uint64_t batch_count = 0;  // files in the closed batch (kEndOfBatch)
  /// Transport-level correlation id. Stream transports (TCP) assign a
  /// per-connection sequence to every request they put on the wire; the
  /// remote side echoes it in the kAck so the sender can match an ack to
  /// the in-flight send it answers. 0 = unused (datagram-style transports
  /// correlate by position).
  uint64_t net_seq = 0;
  /// kAck only: StatusCode of the remote endpoint's HandleMessage result
  /// (0 = OK). On failure the remote puts the error text in `name`, so
  /// the sender's retry machinery sees the same Status it would have seen
  /// in-process.
  uint32_t ack_code = 0;

  bool operator==(const Message&) const = default;
};

/// Default bound on a decoded message body (and on stream-decoder
/// buffering). Frames from untrusted sockets claiming more than this are
/// rejected as corrupt before any allocation happens.
inline constexpr size_t kDefaultMaxFrameBytes = 64u << 20;

/// Serializes a message to a CRC-framed binary blob.
std::string EncodeMessage(const Message& msg);

/// Parses a blob produced by EncodeMessage; verifies the CRC. Bodies
/// larger than `max_frame_bytes` are rejected without allocating.
Result<Message> DecodeMessage(std::string_view data,
                              size_t max_frame_bytes = kDefaultMaxFrameBytes);

/// Serializes several messages into one multi-message wire frame
/// (varint count + concatenated EncodeMessage blobs). Used by the
/// delivery coalescing path: many small files to one subscriber ride a
/// single frame — one link round trip — while each inner message keeps
/// its own CRC and ack bookkeeping.
std::string EncodeBundle(const std::vector<Message>& msgs);

/// Parses a frame produced by EncodeBundle. Callers must know a frame is
/// a bundle (the transports keep bundle and single sends on separate
/// paths); the format is not self-describing against EncodeMessage.
/// The claimed message count is validated against the bytes actually
/// present before any allocation sized from it.
Result<std::vector<Message>> DecodeBundle(
    std::string_view data, size_t max_frame_bytes = kDefaultMaxFrameBytes);

}  // namespace bistro

#endif  // BISTRO_NET_PROTOCOL_H_

#include "net/protocol.h"

#include <cstring>

#include "common/hash.h"

namespace bistro {

namespace {
void PutVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

bool GetVarint(std::string_view* in, uint64_t* v) {
  *v = 0;
  int shift = 0;
  while (!in->empty() && shift <= 63) {
    uint8_t byte = static_cast<uint8_t>(in->front());
    in->remove_prefix(1);
    *v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return true;
    shift += 7;
  }
  return false;
}

// ZigZag for signed TimePoints.
uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

void PutString(std::string* out, std::string_view s) {
  PutVarint(out, s.size());
  out->append(s.data(), s.size());
}

bool GetString(std::string_view* in, std::string* s) {
  uint64_t len;
  if (!GetVarint(in, &len) || in->size() < len) return false;
  s->assign(in->data(), len);
  in->remove_prefix(len);
  return true;
}
}  // namespace

std::string EncodeMessage(const Message& msg) {
  std::string body;
  body.push_back(static_cast<char>(msg.type));
  PutVarint(&body, msg.file_id);
  PutString(&body, msg.feed);
  PutString(&body, msg.name);
  PutString(&body, msg.dest_path);
  PutString(&body, msg.payload);
  PutVarint(&body, msg.payload_crc);
  PutVarint(&body, ZigZag(msg.data_time));
  PutVarint(&body, ZigZag(msg.batch_time));
  PutVarint(&body, msg.batch_count);
  PutVarint(&body, msg.net_seq);
  PutVarint(&body, msg.ack_code);
  std::string out;
  out.reserve(body.size() + 8);
  PutVarint(&out, body.size());
  uint32_t crc = Crc32(body);
  char crc_buf[4];
  std::memcpy(crc_buf, &crc, 4);
  out.append(crc_buf, 4);
  out += body;
  return out;
}

Result<Message> DecodeMessage(std::string_view data, size_t max_frame_bytes) {
  uint64_t len;
  if (!GetVarint(&data, &len)) return Status::Corruption("message: bad length");
  // Bound check before the size comparison below: a hostile length prefix
  // must not drive any downstream allocation, and 4 + len could otherwise
  // wrap for lengths near UINT64_MAX.
  if (len > max_frame_bytes) {
    return Status::Corruption("message: body exceeds max_frame_bytes");
  }
  if (data.size() < 4 + len) return Status::Corruption("message: truncated");
  uint32_t crc;
  std::memcpy(&crc, data.data(), 4);
  data.remove_prefix(4);
  std::string_view body = data.substr(0, len);
  if (Crc32(body) != crc) return Status::Corruption("message: crc mismatch");
  Message msg;
  if (body.empty()) return Status::Corruption("message: empty body");
  uint8_t type = static_cast<uint8_t>(body.front());
  if (type < 1 || type > 6) return Status::Corruption("message: bad type");
  msg.type = static_cast<MessageType>(type);
  body.remove_prefix(1);
  uint64_t u;
  if (!GetVarint(&body, &u)) return Status::Corruption("message: file_id");
  msg.file_id = u;
  std::string payload;
  if (!GetString(&body, &msg.feed) || !GetString(&body, &msg.name) ||
      !GetString(&body, &msg.dest_path) || !GetString(&body, &payload)) {
    return Status::Corruption("message: strings");
  }
  msg.payload = std::move(payload);
  if (!GetVarint(&body, &u)) return Status::Corruption("message: payload_crc");
  msg.payload_crc = static_cast<uint32_t>(u);
  if (!GetVarint(&body, &u)) return Status::Corruption("message: data_time");
  msg.data_time = UnZigZag(u);
  if (!GetVarint(&body, &u)) return Status::Corruption("message: batch_time");
  msg.batch_time = UnZigZag(u);
  if (!GetVarint(&body, &u)) return Status::Corruption("message: batch_count");
  msg.batch_count = u;
  if (!GetVarint(&body, &u)) return Status::Corruption("message: net_seq");
  msg.net_seq = u;
  if (!GetVarint(&body, &u)) return Status::Corruption("message: ack_code");
  msg.ack_code = static_cast<uint32_t>(u);
  return msg;
}

std::string EncodeBundle(const std::vector<Message>& msgs) {
  std::string out;
  PutVarint(&out, msgs.size());
  for (const Message& msg : msgs) out += EncodeMessage(msg);
  return out;
}

Result<std::vector<Message>> DecodeBundle(std::string_view data,
                                          size_t max_frame_bytes) {
  uint64_t count;
  if (!GetVarint(&data, &count)) return Status::Corruption("bundle: bad count");
  // The claimed count sizes the reserve below, so validate it against the
  // bytes actually present first: every encoded message occupies at least
  // one byte, so a count beyond the remaining size is provably a lie (in
  // practice a hostile header) and must not drive an allocation.
  if (count > data.size()) {
    return Status::Corruption("bundle: count exceeds data");
  }
  // Each inner blob is self-delimiting (varint body length + 4-byte frame
  // CRC + body), so peel off one exact extent per message.
  std::vector<Message> msgs;
  msgs.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::string_view probe = data;
    uint64_t body_len;
    if (!GetVarint(&probe, &body_len)) {
      return Status::Corruption("bundle: truncated");
    }
    if (body_len > max_frame_bytes) {
      return Status::Corruption("bundle: body exceeds max_frame_bytes");
    }
    if (probe.size() < 4 + body_len) {
      return Status::Corruption("bundle: truncated");
    }
    size_t blob_len = (data.size() - probe.size()) + 4 + body_len;
    BISTRO_ASSIGN_OR_RETURN(
        Message msg, DecodeMessage(data.substr(0, blob_len), max_frame_bytes));
    msgs.push_back(std::move(msg));
    data.remove_prefix(blob_len);
  }
  if (!data.empty()) return Status::Corruption("bundle: trailing bytes");
  return msgs;
}

}  // namespace bistro

#include "net/transport.h"

#include "common/hash.h"

namespace bistro {

void Transport::AttachMetrics(MetricsRegistry* registry) {
  sends_ = registry->GetCounter("bistro_net_sends_total",
                                "Messages handed to the transport");
  send_failures_ = registry->GetCounter("bistro_net_send_failures_total",
                                        "Sends completing with an error");
  bytes_sent_ = registry->GetCounter("bistro_net_payload_bytes_total",
                                     "Payload bytes handed to the transport");
}

void Transport::CountSend(uint64_t payload_bytes) {
  if (sends_ == nullptr) return;
  sends_->Increment();
  bytes_sent_->Increment(payload_bytes);
}

void Transport::DetachBaseMetrics() {
  sends_ = nullptr;
  send_failures_ = nullptr;
  bytes_sent_ = nullptr;
}

void Transport::CountOutcome(const Status& status) {
  if (send_failures_ != nullptr && !status.ok()) send_failures_->Increment();
}

void Transport::SendBundle(const std::string& endpoint,
                           std::vector<BundleItem> items) {
  for (BundleItem& item : items) {
    Send(endpoint, item.msg, std::move(item.done));
  }
}

void LoopbackTransport::Register(const std::string& name, Endpoint* endpoint) {
  endpoints_[name] = endpoint;
}

void LoopbackTransport::Unregister(const std::string& name) {
  endpoints_.erase(name);
}

void LoopbackTransport::Send(const std::string& endpoint, const Message& msg,
                             SendCallback done) {
  CountSend(msg.payload.size());
  auto it = endpoints_.find(endpoint);
  if (it == endpoints_.end()) {
    loop_->Post([this, done, endpoint] {
      Status s = Status::Unavailable("no endpoint: " + endpoint);
      CountOutcome(s);
      done(s);
    });
    return;
  }
  Endpoint* ep = it->second;
  // Round-trip through the wire encoding so the protocol layer is
  // exercised even in-process.
  std::string wire = EncodeMessage(msg);
  loop_->Post([this, ep, wire = std::move(wire), done] {
    auto decoded = DecodeMessage(wire);
    if (!decoded.ok()) {
      CountOutcome(decoded.status());
      done(decoded.status());
      return;
    }
    Status s = ep->HandleMessage(*decoded);
    CountOutcome(s);
    done(s);
  });
}

void LoopbackTransport::SendBundle(const std::string& endpoint,
                                   std::vector<BundleItem> items) {
  std::vector<Message> msgs;
  std::vector<SendCallback> dones;
  msgs.reserve(items.size());
  dones.reserve(items.size());
  for (BundleItem& item : items) {
    CountSend(item.msg.payload.size());
    msgs.push_back(std::move(item.msg));
    dones.push_back(std::move(item.done));
  }
  auto it = endpoints_.find(endpoint);
  if (it == endpoints_.end()) {
    loop_->Post([this, endpoint, dones = std::move(dones)] {
      Status s = Status::Unavailable("no endpoint: " + endpoint);
      for (const SendCallback& done : dones) {
        CountOutcome(s);
        done(s);
      }
    });
    return;
  }
  Endpoint* ep = it->second;
  std::string wire = EncodeBundle(msgs);
  loop_->Post([this, ep, wire = std::move(wire), dones = std::move(dones)] {
    auto decoded = DecodeBundle(wire);
    if (!decoded.ok()) {
      for (const SendCallback& done : dones) {
        CountOutcome(decoded.status());
        done(decoded.status());
      }
      return;
    }
    for (size_t i = 0; i < dones.size(); ++i) {
      Status s = i < decoded->size() ? ep->HandleMessage((*decoded)[i])
                                     : Status::Corruption("bundle: short");
      CountOutcome(s);
      dones[i](s);
    }
  });
}

void SimTransport::Register(const std::string& name, Endpoint* endpoint) {
  endpoints_[name] = endpoint;
}

void SimTransport::Unregister(const std::string& name) {
  endpoints_.erase(name);
}

void SimTransport::Send(const std::string& endpoint, const Message& msg,
                        SendCallback done) {
  CountSend(msg.payload.size());
  uint64_t bytes = msg.payload.size() + msg.name.size() + 64;
  auto completion = network_->ScheduleTransfer(endpoint, bytes, loop_->Now());
  if (!completion.ok()) {
    // Failure surfaces after the link latency it burned (if the link is
    // known) or immediately (unknown/offline).
    loop_->Post([this, done, status = completion.status()] {
      CountOutcome(status);
      done(status);
    });
    return;
  }
  std::string wire = EncodeMessage(msg);
  // The endpoint resolves at DELIVERY time, not send time: a receiver
  // that is replaced (or torn down by a crash) mid-flight gets the
  // message at its current incarnation, or an Unavailable bounce.
  loop_->PostAt(*completion,
                [this, endpoint, wire = std::move(wire), done] {
    auto it = endpoints_.find(endpoint);
    Endpoint* ep = it == endpoints_.end() ? nullptr : it->second;
    if (ep == nullptr) {
      Status s = Status::Unavailable("no endpoint: " + endpoint);
      CountOutcome(s);
      done(s);
      return;
    }
    auto decoded = DecodeMessage(wire);
    if (!decoded.ok()) {
      CountOutcome(decoded.status());
      done(decoded.status());
      return;
    }
    Status s = ep->HandleMessage(*decoded);
    CountOutcome(s);
    done(s);
  });
}

void SimTransport::SendBundle(const std::string& endpoint,
                              std::vector<BundleItem> items) {
  // One frame on the link: a single 64-byte frame header covers the whole
  // group, each inner message paying only a small per-record overhead —
  // and, crucially, the link's latency is charged once for the frame
  // instead of once per file.
  uint64_t bytes = 64;
  std::vector<Message> msgs;
  std::vector<SendCallback> dones;
  msgs.reserve(items.size());
  dones.reserve(items.size());
  for (BundleItem& item : items) {
    CountSend(item.msg.payload.size());
    bytes += item.msg.payload.size() + item.msg.name.size() + 16;
    msgs.push_back(std::move(item.msg));
    dones.push_back(std::move(item.done));
  }
  auto completion = network_->ScheduleTransfer(endpoint, bytes, loop_->Now());
  if (!completion.ok()) {
    loop_->Post([this, dones = std::move(dones), status = completion.status()] {
      for (const SendCallback& done : dones) {
        CountOutcome(status);
        done(status);
      }
    });
    return;
  }
  std::string wire = EncodeBundle(msgs);
  // Delivery-time endpoint resolution, as in Send above.
  loop_->PostAt(*completion, [this, endpoint, wire = std::move(wire),
                              dones = std::move(dones)] {
    auto it = endpoints_.find(endpoint);
    Endpoint* ep = it == endpoints_.end() ? nullptr : it->second;
    if (ep == nullptr) {
      Status s = Status::Unavailable("no endpoint: " + endpoint);
      for (const SendCallback& done : dones) {
        CountOutcome(s);
        done(s);
      }
      return;
    }
    auto decoded = DecodeBundle(wire);
    if (!decoded.ok()) {
      for (const SendCallback& done : dones) {
        CountOutcome(decoded.status());
        done(decoded.status());
      }
      return;
    }
    for (size_t i = 0; i < dones.size(); ++i) {
      Status s = i < decoded->size() ? ep->HandleMessage((*decoded)[i])
                                     : Status::Corruption("bundle: short");
      CountOutcome(s);
      dones[i](s);
    }
  });
}

Duration SimTransport::EstimateCost(const std::string& endpoint,
                                    uint64_t bytes) const {
  auto d = network_->TransferDuration(endpoint, bytes);
  return d.ok() ? *d : 0;
}

Status FileSinkEndpoint::HandleMessage(const Message& msg) {
  if (failing_) return Status::Unavailable("subscriber failing");
  switch (msg.type) {
    case MessageType::kFileData: {
      if (msg.payload_crc != 0 && Crc32(msg.payload) != msg.payload_crc) {
        ++corrupt_rejected_;
        return Status::Corruption("payload crc mismatch: " + msg.name);
      }
      if (msg.file_id != 0) {
        if (!delivered_ids_.insert(msg.file_id).second) {
          ++duplicates_;
          break;  // already landed; ack without writing again
        }
        delivered_order_.push_back(msg.file_id);
        while (delivered_order_.size() > dedupe_capacity_) {
          delivered_ids_.erase(delivered_order_.front());
          delivered_order_.pop_front();
          ++dedupe_evictions_;
        }
      }
      std::string dest = path::Join(dest_root_, msg.dest_path.empty()
                                                    ? msg.name
                                                    : msg.dest_path);
      Status wrote = fs_->WriteFile(dest, msg.payload);
      if (!wrote.ok()) {
        if (msg.file_id != 0) {
          // The id was optimistically inserted above; a failed land must
          // stay retryable, or the retry would be absorbed as a
          // "duplicate" of a write that never happened.
          delivered_ids_.erase(msg.file_id);
          if (!delivered_order_.empty() &&
              delivered_order_.back() == msg.file_id) {
            delivered_order_.pop_back();
          }
        }
        // Sink-side I/O trouble (full disk, unmounted volume, dropped
        // connection behind a network filesystem) is transient from the
        // sender's point of view: surface it as Unavailable so the
        // delivery retry/backoff/dead-letter machinery applies uniformly
        // instead of treating it as a poison failure.
        return Status::Unavailable("sink write: " + wrote.ToString());
      }
      ++files_received_;
      break;
    }
    case MessageType::kFileNotify:
      ++notifications_;
      break;
    case MessageType::kEndOfBatch:
      ++batches_;
      break;
    default:
      break;
  }
  if (hook_) hook_(msg);
  return Status::OK();
}

}  // namespace bistro

// Experiment E5 (paper §3.2): classifier throughput at scale.
//
// Claim context: classification happens on every incoming file, for 100+
// feeds; Bistro's prefix-index keeps the per-file cost near-constant as
// the number of registered feeds grows, while naive matching is linear.
//
// google-benchmark: Classify/<mode>/<num_feeds>.

#include <benchmark/benchmark.h>

#include "classify/classifier.h"
#include "common/random.h"
#include "common/strings.h"
#include "config/parser.h"

using namespace bistro;

namespace {

std::unique_ptr<FeedRegistry> MakeRegistry(int num_feeds) {
  std::string config;
  for (int i = 0; i < num_feeds; ++i) {
    config += StrFormat(
        "feed F%04d { pattern \"metric%04d_POLL%%i_%%Y%%m%%d%%H%%M.csv\"; }\n",
        i, i);
  }
  auto parsed = ParseConfig(config);
  auto registry = FeedRegistry::Create(*parsed);
  return std::move(*registry);
}

std::vector<std::string> MakeNames(int num_feeds, size_t n) {
  Rng rng(7);
  std::vector<std::string> names;
  names.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.1)) {
      names.push_back(rng.AlnumString(24));  // unmatched junk
    } else {
      names.push_back(StrFormat("metric%04d_POLL%d_201009250%d%d5.csv",
                                (int)rng.Uniform(num_feeds),
                                (int)rng.Uniform(8), (int)rng.Uniform(10),
                                (int)rng.Uniform(6)));
    }
  }
  return names;
}

void BM_Classify(benchmark::State& state) {
  int num_feeds = static_cast<int>(state.range(0));
  auto mode = state.range(1) == 0 ? FeedClassifier::IndexMode::kLinear
                                  : FeedClassifier::IndexMode::kPrefixIndex;
  auto registry = MakeRegistry(num_feeds);
  FeedClassifier classifier(registry.get(), mode);
  auto names = MakeNames(num_feeds, 4096);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(classifier.Classify(names[i]));
    i = (i + 1) % names.size();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["pattern_checks_per_file"] =
      static_cast<double>(classifier.stats().candidate_checks) /
      static_cast<double>(classifier.stats().files);
}

}  // namespace

BENCHMARK(BM_Classify)
    ->ArgsProduct({{10, 100, 1000}, {0, 1}})
    ->ArgNames({"feeds", "indexed"});

BENCHMARK_MAIN();

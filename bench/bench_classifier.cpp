// Experiment E14 (DESIGN.md §15), superseding E5's flattering sweep: the
// fused classify+extract automaton against the per-candidate strategies
// on workloads the prefix trie cannot prune.
//
// The old E5 sweep gave every feed a distinct literal prefix — the trie's
// best case, one candidate per file. Real feed tables are adversarial:
// hundreds of pollers share one naming family ("SNMP_CPU_POLL..."), and
// analyzer-suggested patterns often start with a variable field, which the
// trie cannot index at all. Three workloads cover the spectrum:
//
//   unique_prefix   metric<N>_POLL%i_%Y%m%d%H%M.csv   trie best case
//   shared_prefix   SNMP_CPU_POLL%i_host<N>.%Y%m%d.csv  one family, the
//                   distinguishing digits come after the first %i, so
//                   every feed shares the literal prefix "SNMP_CPU_POLL"
//   prefixless      %s_POLL%i_f<N>.csv                 no literal prefix;
//                   the trie checks every feed for every file
//
// A separate scale sweep (m<NNNNN>_%i.csv) grows the table to 10^5
// patterns to show the automaton's per-file cost stays flat: the scan is
// O(name length) whatever the table size.
//
// Time base: wall clock (the classifier is pure CPU).
//
// Acceptance: automaton >= 10x trie files/sec at 1000 shared-prefix
// feeds, and automaton per-file cost at the largest scale row <= 1.5x its
// 1000-feed cost.
//
// Env:
//   BISTRO_BENCH_QUICK  non-empty -> smaller corpus, scale stops at 10^4
//   BISTRO_BENCH_OUT    JSON output path (default BENCH_classifier.json)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "classify/classifier.h"
#include "common/random.h"
#include "common/strings.h"
#include "config/parser.h"

using namespace bistro;

namespace {

std::unique_ptr<FeedRegistry> MakeRegistry(const std::string& config_text) {
  auto parsed = ParseConfig(config_text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "config: %s\n", parsed.status().ToString().c_str());
    std::abort();
  }
  auto registry = FeedRegistry::Create(*parsed);
  if (!registry.ok()) {
    std::fprintf(stderr, "registry: %s\n",
                 registry.status().ToString().c_str());
    std::abort();
  }
  return std::move(*registry);
}

struct Workload {
  const char* name;
  std::string (*pattern)(int i);                 // feed i's pattern
  std::string (*file)(Rng& rng, int num_feeds);  // a matching filename
  std::string (*junk)(Rng& rng);                 // an unmatched filename
};

const Workload kWorkloads[] = {
    {"unique_prefix",
     [](int i) {
       return StrFormat("metric%04d_POLL%%i_%%Y%%m%%d%%H%%M.csv", i);
     },
     [](Rng& rng, int n) {
       return StrFormat("metric%04d_POLL%d_201009250%d%d5.csv",
                        (int)rng.Uniform(n), (int)rng.Uniform(8),
                        (int)rng.Uniform(10), (int)rng.Uniform(6));
     },
     [](Rng& rng) { return rng.AlnumString(24); }},
    {"shared_prefix",
     [](int i) {
       return StrFormat("SNMP_CPU_POLL%%i_host%04d.%%Y%%m%%d.csv", i);
     },
     [](Rng& rng, int n) {
       return StrFormat("SNMP_CPU_POLL%d_host%04d.20100925.csv",
                        (int)rng.Uniform(64), (int)rng.Uniform(n));
     },
     // Junk that still wears the family prefix, so the trie walks deep
     // before every candidate fails.
     [](Rng& rng) {
       return StrFormat("SNMP_CPU_POLL%d_host%04d.20100925.txt",
                        (int)rng.Uniform(64), (int)rng.Uniform(1000));
     }},
    {"prefixless",
     [](int i) { return StrFormat("%%s_POLL%%i_f%04d.csv", i); },
     [](Rng& rng, int n) {
       return StrFormat("%s_POLL%d_f%04d.csv", rng.AlnumString(6).c_str(),
                        (int)rng.Uniform(9), (int)rng.Uniform(n));
     },
     [](Rng& rng) { return rng.AlnumString(24); }},
};

std::string BuildConfig(const Workload& w, int num_feeds) {
  std::string config;
  config.reserve(static_cast<size_t>(num_feeds) * 64);
  for (int i = 0; i < num_feeds; ++i) {
    config += StrFormat("feed F%05d { pattern \"%s\"; }\n", i,
                        w.pattern(i).c_str());
  }
  return config;
}

std::vector<std::string> MakeNames(const Workload& w, int num_feeds,
                                   size_t n) {
  Rng rng(7);
  std::vector<std::string> names;
  names.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    names.push_back(rng.Bernoulli(0.1) ? w.junk(rng) : w.file(rng, num_feeds));
  }
  return names;
}

struct RunResult {
  std::string workload;
  std::string mode;
  int feeds = 0;
  size_t files = 0;
  double ns_per_file = 0;
  double checks_per_file = 0;
  double matched_pct = 0;
  double compile_ms = 0;  // automaton only
  AutomatonStats automaton;
};

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

RunResult RunOne(const Workload& w, FeedClassifier::IndexMode mode,
                 FeedRegistry* registry, int num_feeds,
                 const std::vector<std::string>& names) {
  FeedClassifier classifier(registry, mode);
  double t_compile0 = NowMs();
  classifier.Rebuild();
  double compile_ms = NowMs() - t_compile0;

  // Warm-up pass over a slice: faults the tables in and settles the
  // branch predictors before the timed pass.
  size_t warm = names.size() < 2048 ? names.size() : 2048;
  for (size_t i = 0; i < warm; ++i) (void)classifier.Classify(names[i]);
  classifier.ResetStats();

  double t0 = NowMs();
  for (const std::string& name : names) (void)classifier.Classify(name);
  double elapsed_ms = NowMs() - t0;

  ClassifierStats stats = classifier.stats();
  RunResult r;
  r.workload = w.name;
  r.mode = std::string(IndexModeName(mode));
  r.feeds = num_feeds;
  r.files = names.size();
  r.ns_per_file = elapsed_ms * 1e6 / static_cast<double>(names.size());
  r.checks_per_file = static_cast<double>(stats.candidate_checks) /
                      static_cast<double>(stats.files);
  r.matched_pct =
      100.0 * static_cast<double>(stats.matched) / static_cast<double>(stats.files);
  r.compile_ms = compile_ms;
  if (auto snapshot = classifier.automaton(); snapshot != nullptr) {
    r.automaton = snapshot->stats();
  }
  return r;
}

}  // namespace

int main() {
  const bool quick = std::getenv("BISTRO_BENCH_QUICK") != nullptr;
  const char* out_env = std::getenv("BISTRO_BENCH_OUT");
  const std::string out_path =
      out_env != nullptr ? out_env : "BENCH_classifier.json";

  const size_t linear_names = quick ? 2000 : 6000;
  const size_t fast_names = quick ? 10000 : 40000;

  std::printf("=== Classifier: workload x mode sweep%s ===\n\n",
              quick ? " (quick)" : "");
  std::printf("%-14s %-9s %7s %10s %12s %9s %11s\n", "workload", "mode",
              "feeds", "ns/file", "checks/file", "matched", "compile ms");

  std::vector<RunResult> sweep;
  double trie_shared_1000 = 0, automaton_shared_1000 = 0;
  for (const Workload& w : kWorkloads) {
    for (int num_feeds : {100, 1000}) {
      auto registry = MakeRegistry(BuildConfig(w, num_feeds));
      auto names = MakeNames(w, num_feeds, fast_names);
      std::vector<std::string> short_names(
          names.begin(),
          names.begin() + static_cast<ptrdiff_t>(
                              linear_names < names.size() ? linear_names
                                                          : names.size()));
      for (auto mode : {FeedClassifier::IndexMode::kLinear,
                        FeedClassifier::IndexMode::kPrefixIndex,
                        FeedClassifier::IndexMode::kAutomaton}) {
        // Linear at 1000 shared-prefix feeds is ~1000 full match attempts
        // per file; give it the smaller corpus so the row stays cheap.
        const auto& corpus =
            mode == FeedClassifier::IndexMode::kLinear ? short_names : names;
        RunResult r = RunOne(w, mode, registry.get(), num_feeds, corpus);
        if (w.name == std::string("shared_prefix") && num_feeds == 1000) {
          if (mode == FeedClassifier::IndexMode::kPrefixIndex) {
            trie_shared_1000 = r.ns_per_file;
          }
          if (mode == FeedClassifier::IndexMode::kAutomaton) {
            automaton_shared_1000 = r.ns_per_file;
          }
        }
        sweep.push_back(r);
        std::printf("%-14s %-9s %7d %10.0f %12.1f %8.1f%% %11.1f\n",
                    r.workload.c_str(), r.mode.c_str(), r.feeds, r.ns_per_file,
                    r.checks_per_file, r.matched_pct, r.compile_ms);
      }
    }
    std::printf("\n");
  }

  // ---- Scale sweep: the automaton's per-file cost vs table size.
  // Arrival order follows the landing zone's real shape: a feed's
  // generator deposits a cycle's worth of files at once (paper §2.1 —
  // feeds are periodic batches), so consecutive arrivals cluster by feed
  // rather than sampling 10^5 feeds uniformly one file at a time.
  const Workload scale_workload = {
      "scale", [](int i) { return StrFormat("m%05d_%%i.csv", i); },
      [](Rng& rng, int n) {
        return StrFormat("m%05d_%d.csv", (int)rng.Uniform(n),
                         (int)rng.Uniform(100000));
      },
      [](Rng& rng) { return rng.AlnumString(20); }};
  auto make_burst_names = [](int num_feeds, size_t n) {
    Rng rng(7);
    std::vector<std::string> names;
    names.reserve(n);
    while (names.size() < n) {
      if (rng.Bernoulli(0.1)) {
        names.push_back(rng.AlnumString(20));  // unmatched junk
        continue;
      }
      int feed = (int)rng.Uniform(num_feeds);
      size_t burst = 4 + rng.Uniform(12);
      for (size_t b = 0; b < burst && names.size() < n; ++b) {
        names.push_back(
            StrFormat("m%05d_%d.csv", feed, (int)rng.Uniform(100000)));
      }
    }
    return names;
  };
  std::vector<int> scales = {1000, 10000};
  if (!quick) scales.push_back(100000);

  std::printf("=== Automaton scale sweep (m<NNNNN>_%%i.csv) ===\n\n");
  std::printf("%7s %10s %11s %11s %9s %9s %10s %10s\n", "feeds", "ns/file",
              "compile ms", "dfa states", "dense", "sparse", "accepts",
              "table MB");
  std::vector<RunResult> scale_rows;
  double scale_base_ns = 0, scale_top_ns = 0;
  for (int num_feeds : scales) {
    auto registry = MakeRegistry(BuildConfig(scale_workload, num_feeds));
    auto names = make_burst_names(num_feeds, fast_names);
    RunResult r = RunOne(scale_workload, FeedClassifier::IndexMode::kAutomaton,
                         registry.get(), num_feeds, names);
    if (num_feeds == 1000) scale_base_ns = r.ns_per_file;
    scale_top_ns = r.ns_per_file;
    scale_rows.push_back(r);
    std::printf("%7d %10.0f %11.1f %11llu %9llu %9llu %10llu %10.1f\n",
                r.feeds, r.ns_per_file, r.compile_ms,
                (unsigned long long)r.automaton.dfa_states,
                (unsigned long long)r.automaton.dense_rows,
                (unsigned long long)r.automaton.sparse_rows,
                (unsigned long long)r.automaton.accept_sets,
                static_cast<double>(r.automaton.memory_bytes) / 1e6);
  }
  std::printf("\n");

  const double speedup =
      automaton_shared_1000 > 0 ? trie_shared_1000 / automaton_shared_1000 : 0;
  const double flatness = scale_base_ns > 0 ? scale_top_ns / scale_base_ns : 0;

  std::string json = StrFormat(
      "{\n  \"bench\": \"classifier\",\n  \"quick\": %s,\n"
      "  \"sweep\": [\n",
      quick ? "true" : "false");
  for (size_t i = 0; i < sweep.size(); ++i) {
    const RunResult& r = sweep[i];
    json += StrFormat(
        "    {\"workload\": \"%s\", \"mode\": \"%s\", \"feeds\": %d, "
        "\"files\": %zu, \"ns_per_file\": %.1f, \"checks_per_file\": %.2f, "
        "\"matched_pct\": %.1f, \"compile_ms\": %.2f}%s\n",
        r.workload.c_str(), r.mode.c_str(), r.feeds, r.files, r.ns_per_file,
        r.checks_per_file, r.matched_pct, r.compile_ms,
        i + 1 < sweep.size() ? "," : "");
  }
  json += "  ],\n  \"scale\": [\n";
  for (size_t i = 0; i < scale_rows.size(); ++i) {
    const RunResult& r = scale_rows[i];
    json += StrFormat(
        "    {\"feeds\": %d, \"ns_per_file\": %.1f, \"compile_ms\": %.2f, "
        "\"dfa_states\": %llu, \"dense_rows\": %llu, \"sparse_rows\": %llu, "
        "\"accept_sets\": %llu, \"memory_bytes\": %llu}%s\n",
        r.feeds, r.ns_per_file, r.compile_ms,
        (unsigned long long)r.automaton.dfa_states,
        (unsigned long long)r.automaton.dense_rows,
        (unsigned long long)r.automaton.sparse_rows,
        (unsigned long long)r.automaton.accept_sets,
        (unsigned long long)r.automaton.memory_bytes,
        i + 1 < scale_rows.size() ? "," : "");
  }
  json += StrFormat(
      "  ],\n  \"speedup_vs_trie_shared_prefix_1000\": %.2f,\n"
      "  \"scale_per_file_ratio\": %.3f,\n  \"scale_top_feeds\": %d\n}\n",
      speedup, flatness, scales.back());
  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }

  std::printf("\nExpected shape: on shared-prefix and prefixless tables the "
              "trie's candidate\nloop degenerates to ~feeds checks per file "
              "while the automaton stays a single\nscan (0 checks); on the "
              "scale sweep the automaton's per-file cost is flat in\ntable "
              "size. Acceptance: automaton >= 10x trie at 1000 shared-prefix "
              "feeds;\nscale per-file ratio <= 1.5x.\n");
  bool ok = true;
  if (speedup < 10.0) {
    std::fprintf(stderr,
                 "ACCEPTANCE FAIL: automaton %.0f ns/file vs trie %.0f "
                 "ns/file = %.1fx < 10x at 1000 shared-prefix feeds\n",
                 automaton_shared_1000, trie_shared_1000, speedup);
    ok = false;
  } else {
    std::printf("ACCEPTANCE PASS: automaton %.1fx trie at 1000 "
                "shared-prefix feeds\n",
                speedup);
  }
  if (flatness > 1.5) {
    std::fprintf(stderr,
                 "ACCEPTANCE FAIL: per-file cost at %d feeds is %.2fx the "
                 "1000-feed cost (> 1.5x)\n",
                 scales.back(), flatness);
    ok = false;
  } else {
    std::printf("ACCEPTANCE PASS: per-file cost at %d feeds is %.2fx the "
                "1000-feed cost\n",
                scales.back(), flatness);
  }
  return ok ? 0 : 1;
}

// Ablations of Bistro design choices (DESIGN.md §6).
//
// A1  Same-file locality heuristic (§4.3): when one file fans out to many
//     subscribers of a partition, delivering it to all of them
//     back-to-back reuses the staged read while the file is hot. Measures
//     staging reads per delivered file with the heuristic on vs off.
// A2  Dynamic subscriber re-partitioning (the paper's future work,
//     exposed behind an option): subscribers whose responsiveness was
//     misjudged at configuration time get re-placed from observed
//     behaviour. Measures fast-subscriber lateness with a deliberately
//     wrong initial partition assignment.
// A3  Receipt checkpointing: recovery time with WAL-only vs checkpointed
//     state at equal history (also covered by E8; summarized here).

#include <cstdio>
#include <map>

#include "common/strings.h"
#include "config/parser.h"
#include "core/server.h"
#include "kv/receipts.h"
#include "vfs/memfs.h"

using namespace bistro;

namespace {

// ------------------------------------------------------------------ A1

struct LocalityResult {
  uint64_t staging_reads = 0;
  uint64_t delivered = 0;
};

LocalityResult RunLocality(bool locality) {
  TimePoint start = FromCivil(CivilTime{2010, 9, 25});
  SimClock clock(start);
  EventLoop loop(&clock);
  InMemoryFileSystem fs;
  Rng rng(3);
  SimNetwork network(&rng);
  SimTransport transport(&loop, &network);
  CallbackInvoker invoker;
  Logger logger(&clock);
  logger.SetMinLevel(LogLevel::kAlarm);

  const int kSubs = 12;
  std::string config_text = "feed F { pattern \"f_%i_%Y%m%d%H%M.dat\"; }\n";
  for (int s = 0; s < kSubs; ++s) {
    config_text += StrFormat("subscriber sub%02d { feeds F; method push; }\n", s);
  }
  auto config = ParseConfig(config_text);
  std::vector<std::unique_ptr<FileSinkEndpoint>> sinks;
  std::vector<std::unique_ptr<InMemoryFileSystem>> sub_fs;
  for (int s = 0; s < kSubs; ++s) {
    network.SetLink(StrFormat("sub%02d", s), LinkSpec::Fast());
    sub_fs.push_back(std::make_unique<InMemoryFileSystem>());
    sinks.push_back(
        std::make_unique<FileSinkEndpoint>(sub_fs.back().get(), "/r"));
    transport.Register(StrFormat("sub%02d", s), sinks.back().get());
  }
  PartitionedScheduler::Options sopts;
  sopts.num_partitions = 1;
  sopts.slots_per_partition = 4;
  sopts.locality = locality;
  // Round-robin inside the partition: a fairness discipline that
  // interleaves subscribers — exactly the dequeue order that thrashes the
  // hot-file cache unless the locality heuristic regroups same-file jobs.
  sopts.intra_policy = PolicyKind::kRoundRobin;
  PartitionedScheduler scheduler(sopts);
  auto server = BistroServer::Create(BistroServer::Options(), *config, &fs,
                                     &transport, &loop, &invoker, &logger,
                                     &scheduler);
  // Burst arrivals so many files' jobs are queued simultaneously.
  for (int i = 0; i < 100; ++i) {
    TimePoint t = start + (i / 20) * 30 * kSecond;
    CivilTime c = ToCivil(t);
    std::string name = StrFormat("f_%d_%04d%02d%02d%02d%02d.dat", i, c.year,
                                 c.month, c.day, c.hour, c.minute);
    loop.PostAt(t, [&, name] {
      (void)(*server)->Deposit("src", name, std::string(10000, 'x'));
    });
  }
  loop.RunUntil(start + 2 * kHour);
  LocalityResult r;
  r.staging_reads = (*server)->delivery_stats().staging_reads;
  r.delivered = (*server)->delivery_stats().files_delivered;
  return r;
}

// ------------------------------------------------------------------ A2

double RunRebalance(bool dynamic) {
  TimePoint start = FromCivil(CivilTime{2010, 9, 25});
  SimClock clock(start);
  EventLoop loop(&clock);
  InMemoryFileSystem fs;
  Rng rng(5);
  SimNetwork network(&rng);
  SimTransport transport(&loop, &network);
  CallbackInvoker invoker;
  Logger logger(&clock);
  logger.SetMinLevel(LogLevel::kAlarm);

  // 4 fast subscribers, 2 actually-slow ones that the operator wrongly
  // placed in the fast partition.
  std::string config_text = "feed F { pattern \"f_%i_%Y%m%d%H%M%S.dat\"; tardiness 60s; }\n";
  std::map<std::string, bool> is_fast;
  for (int s = 0; s < 6; ++s) {
    std::string name = StrFormat("sub%d", s);
    is_fast[name] = s < 4;
    config_text += "subscriber " + name + " { feeds F; method push; }\n";
  }
  auto config = ParseConfig(config_text);
  std::vector<std::unique_ptr<FileSinkEndpoint>> sinks;
  std::vector<std::unique_ptr<InMemoryFileSystem>> sub_fs;
  for (auto& [name, fast] : is_fast) {
    LinkSpec link;
    link.bandwidth_bytes_per_sec = fast ? 5000 * 1000 : 10 * 1000;
    network.SetLink(name, link);
    sub_fs.push_back(std::make_unique<InMemoryFileSystem>());
    sinks.push_back(
        std::make_unique<FileSinkEndpoint>(sub_fs.back().get(), "/r"));
    transport.Register(name, sinks.back().get());
  }
  PartitionedScheduler::Options sopts;
  sopts.num_partitions = 2;
  sopts.slots_per_partition = 2;
  sopts.rebalance_every = dynamic ? 50 : 0;
  PartitionedScheduler scheduler(sopts);
  // Deliberately wrong assignment: everyone starts in partition 0.
  for (auto& [name, _] : is_fast) scheduler.SetPartition(name, 0);

  std::map<std::string, std::pair<uint64_t, uint64_t>> late_of;  // late, total
  scheduler.SetCompletionHook([&](const TransferJob& job, bool ok,
                                  TimePoint now, Duration) {
    if (!ok) return;
    auto& [late, total] = late_of[job.subscriber];
    total++;
    if (now > job.deadline) late++;
  });
  auto server = BistroServer::Create(BistroServer::Options(), *config, &fs,
                                     &transport, &loop, &invoker, &logger,
                                     &scheduler);
  // Oversubscribe the slow links (60 KB / 10 KB/s = 6 s service vs 5 s
  // inter-arrival): their queues grow without bound, and in the static
  // misconfiguration those ever-longer transfers pin the fast
  // partition's slots.
  for (int i = 0; i < 600; ++i) {
    TimePoint t = start + i * 5 * kSecond;
    CivilTime c = ToCivil(t);
    std::string name = StrFormat("f_%d_%04d%02d%02d%02d%02d%02d.dat", i,
                                 c.year, c.month, c.day, c.hour, c.minute,
                                 c.second);
    loop.PostAt(t, [&, name] {
      (void)(*server)->Deposit("src", name, std::string(60000, 'x'));
    });
  }
  loop.RunUntil(start + 4 * kHour);
  uint64_t late = 0, total = 0;
  for (auto& [name, counts] : late_of) {
    if (!is_fast[name]) continue;
    late += counts.first;
    total += counts.second;
  }
  return total == 0 ? 0.0 : 100.0 * static_cast<double>(late) / total;
}

}  // namespace

int main() {
  std::printf("=== Ablations of Bistro design choices ===\n\n");

  std::printf("--- A1: same-file delivery locality (12 subscribers/file) ---\n");
  LocalityResult with = RunLocality(true);
  LocalityResult without = RunLocality(false);
  std::printf("locality on:  %llu staging reads for %llu deliveries "
              "(%.2f reads/delivery)\n",
              (unsigned long long)with.staging_reads,
              (unsigned long long)with.delivered,
              static_cast<double>(with.staging_reads) / with.delivered);
  std::printf("locality off: %llu staging reads for %llu deliveries "
              "(%.2f reads/delivery)\n",
              (unsigned long long)without.staging_reads,
              (unsigned long long)without.delivered,
              static_cast<double>(without.staging_reads) / without.delivered);
  std::printf("(finding: with the engine's single-entry hot-file cache, "
              "~1 staging read per\nfile is achieved in BOTH "
              "configurations — fan-out submission already groups\njobs "
              "by file, so the explicit heuristic is a safety net for "
              "dequeue orders\nthat would break the grouping, not a "
              "steady-state win. Recorded as-is.)\n");

  std::printf("\n--- A2: dynamic re-partitioning after misconfiguration ---\n");
  std::printf("(2 slow subscribers wrongly placed in the fast partition)\n");
  double static_late = RunRebalance(false);
  double dynamic_late = RunRebalance(true);
  std::printf("static partitions (paper's current impl): fast subscribers "
              "%.1f%% late\n",
              static_late);
  std::printf("dynamic re-partitioning (paper's future work): fast "
              "subscribers %.1f%% late\n",
              dynamic_late);

  std::printf("\n--- A3: receipt checkpointing ---\n");
  std::printf("see bench_receipts: BM_CrashRecovery/100000 (WAL-only) vs\n"
              "BM_RecoveryAfterCheckpoint/100000 — checkpointing bounds "
              "recovery and WAL size.\n");
  return 0;
}

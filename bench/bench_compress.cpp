// Experiment E9 (paper §3.1): normalization/compression pipeline cost.
//
// The Bistro normalizer can compress or expand feed files between landing
// and staging. Measures codec throughput and ratio on representative feed
// payloads (CSV measurement rows, already-random data, padded records).

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "common/strings.h"
#include "compress/codec.h"

using namespace bistro;

namespace {

std::string MakePayload(int shape, size_t n) {
  Rng rng(11);
  std::string out;
  out.reserve(n);
  switch (shape) {
    case 0:  // csv measurement rows
      while (out.size() < n) {
        out += StrFormat("router_%llu,cpu,poller%llu,%llu,2010-09-25 04:%02llu\n",
                         (unsigned long long)rng.Uniform(500),
                         (unsigned long long)rng.Uniform(4),
                         (unsigned long long)rng.Uniform(100),
                         (unsigned long long)rng.Uniform(60));
      }
      break;
    case 1:  // random (incompressible)
      while (out.size() < n) out += static_cast<char>(rng.Next() & 0xFF);
      break;
    case 2:  // padded fixed-width records (long runs)
      while (out.size() < n) {
        out += StrFormat("%-64llu", (unsigned long long)rng.Uniform(1000));
      }
      break;
  }
  out.resize(n);
  return out;
}

const char* ShapeName(int shape) {
  switch (shape) {
    case 0:
      return "csv";
    case 1:
      return "random";
    default:
      return "padded";
  }
}

void BM_Compress(benchmark::State& state) {
  CodecKind kind = static_cast<CodecKind>(state.range(0));
  int shape = static_cast<int>(state.range(1));
  std::string payload = MakePayload(shape, 1 << 20);
  const Codec* codec = GetCodec(kind);
  size_t compressed_size = 0;
  for (auto _ : state) {
    std::string out = codec->Compress(payload);
    compressed_size = out.size();
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(payload.size()));
  state.counters["ratio"] =
      static_cast<double>(payload.size()) / static_cast<double>(compressed_size);
  state.SetLabel(std::string(CodecKindName(kind)) + "/" + ShapeName(shape));
}

void BM_Decompress(benchmark::State& state) {
  CodecKind kind = static_cast<CodecKind>(state.range(0));
  int shape = static_cast<int>(state.range(1));
  std::string payload = MakePayload(shape, 1 << 20);
  std::string compressed = GetCodec(kind)->Compress(payload);
  const Codec* codec = GetCodec(kind);
  for (auto _ : state) {
    auto out = codec->Decompress(compressed);
    benchmark::DoNotOptimize(out);
    if (!out.ok()) state.SkipWithError("decompress failed");
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(payload.size()));
  state.SetLabel(std::string(CodecKindName(kind)) + "/" + ShapeName(shape));
}

}  // namespace

BENCHMARK(BM_Compress)
    ->ArgsProduct({{1, 2}, {0, 1, 2}})
    ->ArgNames({"codec", "shape"});
BENCHMARK(BM_Decompress)
    ->ArgsProduct({{1, 2}, {0, 1, 2}})
    ->ArgNames({"codec", "shape"});

BENCHMARK_MAIN();

// Experiment E6 (paper §2.3, §4.1): end-of-batch detection policies.
//
// Claims: fixed file-count batching is fragile when pollers drop out (a
// missing file delays the trigger into the next interval AND then fires
// mid-interval); pure time-based batching adds fixed delay; the
// count-OR-time combination "works well in practice"; source punctuation
// is exact but needs cooperating sources.
//
// Metrics per policy, per dropout rate, over 200 five-minute intervals
// with 5 pollers (deposit jitter <= 15 s):
//   delay   = batch close time - last on-time file of that interval
//   splits  = batches that cover only part of an interval's files
//   stale   = batches closing more than one full period late

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "common/random.h"
#include "common/strings.h"
#include "trigger/batcher.h"

using namespace bistro;

namespace {

struct Delivery {
  TimePoint when;        // arrival at subscriber
  TimePoint data_time;   // interval stamp
  FileId file;
};

struct Outcome {
  std::vector<Duration> delays;  // close - last on-time arrival of interval
  int batches = 0;
  int splits = 0;  // intervals covered by >1 batch
  int stale = 0;   // closes > 1 period after interval completion

  double MeanDelaySec() const {
    if (delays.empty()) return 0;
    double total = 0;
    for (auto d : delays) total += static_cast<double>(d);
    return total / delays.size() / kSecond;
  }
};

constexpr int kPollers = 5;
constexpr Duration kPeriod = 5 * kMinute;
constexpr int kIntervals = 200;

struct Trace {
  std::vector<Delivery> deliveries;                 // sorted by arrival
  std::map<TimePoint, TimePoint> interval_done_at;  // last on-time arrival
  std::map<TimePoint, int> interval_files;
};

Trace MakeTrace(double dropout, uint64_t seed) {
  Rng rng(seed);
  Trace trace;
  FileId next_id = 1;
  for (int i = 0; i < kIntervals; ++i) {
    TimePoint interval = static_cast<TimePoint>(i) * kPeriod;
    for (int p = 0; p < kPollers; ++p) {
      if (rng.Bernoulli(dropout)) continue;
      Delivery d;
      d.data_time = interval;
      d.when = interval + static_cast<Duration>(rng.Uniform(15 * kSecond));
      d.file = next_id++;
      trace.deliveries.push_back(d);
      auto [it, _] = trace.interval_done_at.try_emplace(interval, d.when);
      if (d.when > it->second) it->second = d.when;
      trace.interval_files[interval]++;
    }
  }
  std::sort(trace.deliveries.begin(), trace.deliveries.end(),
            [](const Delivery& a, const Delivery& b) { return a.when < b.when; });
  return trace;
}

Outcome RunPolicy(const Trace& trace, BatchSpec spec, bool punctuate) {
  Batcher batcher("F", "s", spec);
  Outcome out;
  std::map<TimePoint, int> batches_per_interval;
  auto consume = [&](const BatchEvent& e) {
    out.batches++;
    batches_per_interval[e.batch_time]++;
    auto done = trace.interval_done_at.find(e.batch_time);
    if (done != trace.interval_done_at.end()) {
      Duration delay = e.close_time - done->second;
      if (delay < 0) delay = 0;  // split batch closed before stragglers
      out.delays.push_back(delay);
      if (e.close_time > done->second + kPeriod) out.stale++;
    }
  };
  size_t i = 0;
  // Tick once a second of simulated time between deliveries.
  TimePoint now = 0;
  TimePoint horizon = kIntervals * kPeriod + 2 * kPeriod;
  TimePoint last_interval_punctuated = -1;
  while (now <= horizon) {
    while (i < trace.deliveries.size() && trace.deliveries[i].when <= now) {
      const Delivery& d = trace.deliveries[i];
      auto e = batcher.OnFileDelivered(d.file, d.data_time, d.when);
      if (e.has_value()) consume(*e);
      ++i;
    }
    if (punctuate) {
      // Source emits punctuation right after the last on-time file of
      // each completed interval.
      for (const auto& [interval, done_at] : trace.interval_done_at) {
        if (interval <= last_interval_punctuated) continue;
        if (done_at <= now) {
          auto e = batcher.OnPunctuation(done_at);
          if (e.has_value()) consume(*e);
          last_interval_punctuated = interval;
        }
        break;
      }
    }
    auto e = batcher.OnTick(now);
    if (e.has_value()) consume(*e);
    now += kSecond;
  }
  auto tail = batcher.Flush(horizon);
  if (tail.has_value()) consume(*tail);
  for (const auto& [interval, count] : batches_per_interval) {
    if (count > 1) out.splits++;
  }
  return out;
}

}  // namespace

int main() {
  std::printf("=== E6: batch boundary detection policies ===\n");
  std::printf("(%d pollers, %d x %s intervals, arrival jitter <=15s)\n\n",
              kPollers, kIntervals, FormatDuration(kPeriod).c_str());
  std::printf("%-22s %8s | %10s %7s %7s\n", "policy", "dropout",
              "mean delay", "splits", "stale");
  for (double dropout : {0.0, 0.05, 0.20}) {
    Trace trace = MakeTrace(dropout, /*seed=*/1234);
    struct Row {
      const char* name;
      BatchSpec spec;
      bool punctuate;
    };
    BatchSpec count_spec;
    count_spec.mode = BatchSpec::Mode::kCount;
    count_spec.count = kPollers;
    BatchSpec time_spec;
    time_spec.mode = BatchSpec::Mode::kTime;
    time_spec.timeout = 60 * kSecond;
    BatchSpec combo_spec;
    combo_spec.mode = BatchSpec::Mode::kCountOrTime;
    combo_spec.count = kPollers;
    combo_spec.timeout = 60 * kSecond;
    BatchSpec punc_spec;
    punc_spec.mode = BatchSpec::Mode::kPunctuation;
    Row rows[] = {
        {"count=N", count_spec, false},
        {"time=60s", time_spec, false},
        {"count-or-time", combo_spec, false},
        {"punctuation", punc_spec, true},
    };
    for (const Row& row : rows) {
      Outcome out = RunPolicy(trace, row.spec, row.punctuate);
      std::printf("%-22s %7.0f%% | %9.1fs %7d %7d\n", row.name,
                  dropout * 100, out.MeanDelaySec(), out.splits, out.stale);
    }
    std::printf("\n");
  }
  std::printf("Expected shape: count=N is perfect at 0%% dropout but grows "
              "stale/split\nbatches as dropout rises (missing files stall "
              "the count until the next\ninterval); time-based pays a "
              "constant ~60s; count-or-time tracks count's\nlow delay at "
              "0%% and degrades gracefully; punctuation is exact "
              "throughout.\n");
  return 0;
}

// Fault-tolerance experiment (DESIGN.md §8): goodput and delivery latency
// as the injected failure probability rises from 0% to 30%.
//
// Setup: one feed, two pollers, one simulated hour of 5-minute intervals
// pushed to one subscriber over a simulated link, with a FaultyTransport
// injecting send failures (probability p), payload corruption (p/4, which
// the end-to-end CRC turns into NACK + retry) and lost acks (p/8, which
// the endpoint dedupe absorbs). Delivery hardening under test: exponential
// backoff with decorrelated jitter, bounded-but-large retry budgets, and
// receipt-based redelivery.
//
// Expected shape: goodput degrades gracefully (every file still arrives,
// paid for in retries), while p99 deposit->delivered latency grows with p
// as more files ride the backoff schedule. Nothing dead-letters.

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "common/strings.h"
#include "config/parser.h"
#include "core/server.h"
#include "fault/faulty_transport.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "obs/export.h"
#include "sim/sources.h"
#include "vfs/memfs.h"

using namespace bistro;

namespace {

struct SweepResult {
  double failure_prob = 0.0;
  uint64_t files_delivered = 0;
  uint64_t payload_bytes = 0;
  uint64_t retries = 0;
  uint64_t dead_lettered = 0;
  uint64_t injected = 0;
  Duration p50 = 0, p99 = 0, max = 0;
};

Duration Percentile(std::vector<Duration>* delays, double p) {
  if (delays->empty()) return 0;
  std::sort(delays->begin(), delays->end());
  size_t idx = static_cast<size_t>(p * (delays->size() - 1));
  return (*delays)[idx];
}

SweepResult RunPoint(double failure_prob, bool write_snapshot) {
  const Duration kRun = kHour;
  TimePoint start = FromCivil(CivilTime{2010, 9, 25});

  SimClock clock(start);
  EventLoop loop(&clock);
  InMemoryFileSystem fs;
  Rng rng(17);
  MetricsRegistry metrics;

  FaultPlan plan;
  plan.seed = 1000 + static_cast<uint64_t>(failure_prob * 1000);
  plan.net.send_failure_prob = failure_prob;
  plan.net.corrupt_prob = failure_prob / 4;
  plan.net.ack_loss_prob = failure_prob / 8;
  FaultInjector injector(plan, &metrics);

  SimNetwork network(&rng);
  SimTransport sim_transport(&loop, &network);
  FaultyTransport transport(&sim_transport, &loop, &injector);
  CallbackInvoker invoker;
  Logger logger(&clock);
  logger.SetMinLevel(LogLevel::kAlarm);

  auto config = ParseConfig(R"(
feed CPU { pattern "CPU_POLL%i_%Y%m%d%H%M.dat"; tardiness 60s; }
subscriber app { feeds CPU; method push; }
)");
  if (!config.ok()) {
    std::fprintf(stderr, "config: %s\n", config.status().ToString().c_str());
    return {};
  }
  network.SetLink("app", LinkSpec::Fast());
  InMemoryFileSystem app_fs;
  FileSinkEndpoint app(&app_fs, "/app");
  sim_transport.Register("app", &app);

  BistroServer::Options opts;
  opts.metrics = &metrics;
  opts.delivery.retry_backoff = 2 * kSecond;
  opts.delivery.retry_backoff_max = 30 * kSecond;
  opts.delivery.max_attempts = 100000;
  auto server = BistroServer::Create(opts, *config, &fs, &transport, &loop,
                                     &invoker, &logger);
  if (!server.ok()) {
    std::fprintf(stderr, "server: %s\n", server.status().ToString().c_str());
    return {};
  }

  std::map<std::string, TimePoint> deposited_at;
  std::vector<Duration> delays;
  uint64_t payload_bytes = 0;
  app.SetMessageHook([&](const Message& msg) {
    if (msg.type != MessageType::kFileData) return;
    payload_bytes += msg.payload.size();
    auto it = deposited_at.find(msg.name);
    if (it != deposited_at.end()) delays.push_back(clock.Now() - it->second);
  });

  PollerFleet::Options fleet_opts;
  fleet_opts.metric = "CPU";
  fleet_opts.source = "pollers";
  fleet_opts.extension = "dat";
  fleet_opts.num_pollers = 2;
  fleet_opts.period = 5 * kMinute;
  fleet_opts.max_delay = 5 * kSecond;
  fleet_opts.file_size = 43 * 1000;
  PollerFleet fleet(&loop, &rng, fleet_opts,
                    [&](const std::string& source, const std::string& name,
                        std::string content) {
                      deposited_at[name] = clock.Now();
                      (void)(*server)->Deposit(source, name,
                                               std::move(content));
                    });
  fleet.AttachMetrics(&metrics);
  fleet.ScheduleInterval(start, start + kRun);

  // Generous settle window: at 30% failure some files need many rides on
  // the capped backoff schedule.
  loop.RunUntil(start + kRun + 30 * kMinute);

  if (write_snapshot) {
    const char* path = "bench_metrics_faults.json";
    std::string snapshot = ExportJson(&metrics);
    if (std::FILE* f = std::fopen(path, "w")) {
      std::fwrite(snapshot.data(), 1, snapshot.size(), f);
      std::fclose(f);
      std::printf("\nmetrics snapshot: %s (%zu metrics)\n", path,
                  metrics.size());
    } else {
      std::fprintf(stderr, "cannot write %s\n", path);
    }
  }

  DeliveryStats d = (*server)->delivery_stats();
  SweepResult r;
  r.failure_prob = failure_prob;
  r.files_delivered = d.files_delivered;
  r.payload_bytes = payload_bytes;
  r.retries = d.retries;
  r.dead_lettered = d.dead_lettered;
  r.injected = injector.injected();
  r.p50 = Percentile(&delays, 0.50);
  r.p99 = Percentile(&delays, 0.99);
  r.max = Percentile(&delays, 1.0);
  return r;
}

}  // namespace

int main() {
  std::printf("=== Fault sweep: goodput & delivery latency vs failure "
              "probability ===\n\n");
  std::printf("%-6s %-9s %-11s %-8s %-6s %-9s %-10s %-10s %-10s\n", "p", "files",
              "goodput/h", "retries", "dead", "injected", "p50", "p99", "max");
  const std::vector<double> sweep = {0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30};
  for (double p : sweep) {
    SweepResult r = RunPoint(p, /*write_snapshot=*/p == sweep.back());
    std::printf("%-6.2f %-9llu %-11s %-8llu %-6llu %-9llu %-10s %-10s %-10s\n",
                r.failure_prob, (unsigned long long)r.files_delivered,
                HumanBytes(r.payload_bytes).c_str(),
                (unsigned long long)r.retries,
                (unsigned long long)r.dead_lettered,
                (unsigned long long)r.injected,
                FormatDuration(r.p50).c_str(), FormatDuration(r.p99).c_str(),
                FormatDuration(r.max).c_str());
  }
  std::printf("\nExpected shape: files delivered stays constant across the "
              "sweep (no loss,\nno dead letters); retries and tail latency "
              "grow with p as the exponential\nbackoff schedule absorbs the "
              "injected failures.\n");
  return 0;
}

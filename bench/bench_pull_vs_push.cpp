// Experiment E1 (paper §2.2.1): pull-based delivery vs Bistro push.
//
// Claim: with pull, every subscriber must repeatedly list the provider's
// directories, so (a) metadata operations per poll grow linearly with the
// stored history, (b) total provider load multiplies with the number of
// polling subscribers, and (c) capping the scan window to bound the cost
// silently drops late files. Bistro's landing-zone push issues O(new
// files) operations regardless of history size.
//
// Output: one table per sub-claim; series should show pull's scan cost
// growing with history while push stays flat.

#include <cstdio>

#include "baseline/pull_poller.h"
#include "common/strings.h"
#include "config/parser.h"
#include "core/server.h"
#include "vfs/memfs.h"

using namespace bistro;

namespace {

// Populates `fs` with a feed history of `n` files under /provider/feed.
void MakeHistory(InMemoryFileSystem* fs, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    CivilTime c = ToCivil(static_cast<TimePoint>(i) * 5 * kMinute);
    std::string name = StrFormat("/provider/feed/CPU_POLL1_%04d%02d%02d%02d%02d.txt",
                                 c.year, c.month, c.day, c.hour, c.minute);
    (void)fs->WriteFile(name, "x");
  }
}

void HistorySweep() {
  std::printf("--- E1a: metadata ops per polling cycle vs stored history ---\n");
  std::printf("%10s %18s %18s %22s\n", "history", "pull ops/poll",
              "push ops/file", "pull simulated time");
  for (size_t history : {1000u, 5000u, 20000u, 100000u, 400000u}) {
    // Pull side: a subscriber polls a provider holding `history` files.
    SimClock clock(0);
    InMemoryFileSystem provider(&clock, FsCostModel::RemoteFileServer());
    MakeHistory(&provider, history);
    InMemoryFileSystem local;
    PullPoller poller(&provider, "/provider/feed", &local, "/sub");
    (void)poller.Poll(clock.Now());  // initial sync
    provider.ResetStats();
    TimePoint t0 = clock.Now();
    (void)poller.Poll(clock.Now());  // steady-state poll: nothing new
    uint64_t pull_ops = provider.stats().MetadataOps();
    Duration pull_time = clock.Now() - t0;

    // Push side: Bistro ingests ONE new file into a server already
    // holding the same history; count provider-side metadata ops.
    SimClock clock2(0);
    InMemoryFileSystem fs2(&clock2, FsCostModel::RemoteFileServer());
    EventLoop loop(&clock2);
    LoopbackTransport transport(&loop);
    CallbackInvoker invoker;
    Logger logger(&clock2);
    auto config = ParseConfig(R"(
feed CPU { pattern "CPU_POLL%i_%Y%m%d%H%M.txt"; }
subscriber sub { feeds CPU; method push; }
)");
    FileSinkEndpoint sink(&fs2, "/sub");
    transport.Register("sub", &sink);
    auto server = BistroServer::Create(BistroServer::Options(), *config, &fs2,
                                       &transport, &loop, &invoker, &logger);
    // Pre-existing staged history (same number of files).
    for (size_t i = 0; i < history; ++i) {
      (void)fs2.WriteFile(StrFormat("/bistro/staging/CPU/old%06zu.txt", i), "x");
    }
    fs2.ResetStats();
    (void)(*server)->Deposit("src", "CPU_POLL1_201009250400.txt", "x");
    loop.RunUntilIdle();
    uint64_t push_ops = fs2.stats().MetadataOps();

    std::printf("%10zu %18llu %18llu %20s\n", history,
                (unsigned long long)pull_ops, (unsigned long long)push_ops,
                FormatDuration(pull_time).c_str());
  }
}

void SubscriberSweep() {
  std::printf("\n--- E1b: provider metadata load vs number of pull subscribers ---\n");
  std::printf("(history fixed at 20000 files; one poll cycle each)\n");
  std::printf("%12s %22s\n", "subscribers", "provider ops/cycle");
  for (int subs : {1, 4, 16, 64}) {
    SimClock clock(0);
    InMemoryFileSystem provider(&clock, FsCostModel::RemoteFileServer());
    MakeHistory(&provider, 20000);
    std::vector<std::unique_ptr<InMemoryFileSystem>> locals;
    std::vector<std::unique_ptr<PullPoller>> pollers;
    for (int s = 0; s < subs; ++s) {
      locals.push_back(std::make_unique<InMemoryFileSystem>());
      pollers.push_back(std::make_unique<PullPoller>(
          &provider, "/provider/feed", locals.back().get(), "/sub"));
      (void)pollers.back()->Poll(clock.Now());
    }
    provider.ResetStats();
    for (auto& p : pollers) (void)p->Poll(clock.Now());
    std::printf("%12d %22llu\n", subs,
                (unsigned long long)provider.stats().MetadataOps());
  }
}

void LookbackTradeoff() {
  std::printf("\n--- E1c: lookback cap vs late data loss (pull) ---\n");
  std::printf("(10000-file history; 200 files arrive 2-26h late)\n");
  std::printf("%12s %16s %14s\n", "lookback", "ops/poll", "files missed");
  for (Duration lookback : {Duration{0}, kHour, 6 * kHour, 24 * kHour}) {
    SimClock clock(0);
    InMemoryFileSystem provider(&clock, FsCostModel::RemoteFileServer());
    InMemoryFileSystem local;
    PullPoller::Options options;
    options.lookback = lookback;
    PullPoller poller(&provider, "/provider/feed", &local, "/sub", options);
    Rng rng(1);
    // History accumulates over simulated days; the poller polls hourly.
    size_t counter = 0;
    for (int hour = 0; hour < 100; ++hour) {
      clock.AdvanceTo(hour * kHour);
      for (int f = 0; f < 100; ++f) {
        (void)provider.WriteFile(
            StrFormat("/provider/feed/f%07zu.txt", counter++), "x");
      }
      (void)poller.Poll(clock.Now());
    }
    // Now 200 files arrive whose mtimes are hours old (sources with
    // buffered uplinks). InMemoryFileSystem stamps "now", so emulate by
    // NOT advancing the clock after the burst and advancing before the
    // next poll instead.
    clock.AdvanceTo(100 * kHour);
    for (int f = 0; f < 200; ++f) {
      (void)provider.WriteFile(StrFormat("/provider/feed/late%04d.txt", f), "x");
    }
    // Time passes before the subscriber polls again (it was offline).
    clock.AdvanceTo(100 * kHour + 26 * kHour);
    for (int f = 0; f < 50; ++f) {
      (void)provider.WriteFile(StrFormat("/provider/feed/fresh%04d.txt", f), "x");
    }
    provider.ResetStats();
    (void)poller.Poll(clock.Now());
    std::printf("%12s %16llu %14zu\n",
                lookback == 0 ? "unbounded" : FormatDuration(lookback).c_str(),
                (unsigned long long)provider.stats().MetadataOps(),
                poller.files_missed());
  }
  std::printf("(push delivery has no lookback knob: receipts make late "
              "files ordinary)\n");
}

}  // namespace

int main() {
  std::printf("=== E1: pull-based vs push-based feed delivery ===\n\n");
  HistorySweep();
  SubscriberSweep();
  LookbackTradeoff();
  return 0;
}

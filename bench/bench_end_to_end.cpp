// Experiment E4 (paper §1, §4.1): end-to-end scale and propagation delay.
//
// Claims: Bistro servers manage 100+ feeds delivering up to 300 GB/day in
// real time; the landing-zone design achieved "sub-minute data source to
// application propagation delays" even with non-cooperating sources.
//
// Setup: 120 feeds (one per poller program), 2 pollers each, 5-minute
// intervals, one simulated hour, pushed to two subscribers over simulated
// links. Payload sizes are scaled 1:100 against the paper's deployment
// (in-memory substrate); the *delay* results depend on scheduling and
// notification, not on absolute byte counts.
//
// Two source modes are compared:
//   cooperating: deposit+notify (Bistro's lightweight client protocol);
//   non-cooperating: sources drop files silently; the server scans the
//     landing zone every 30 s (cheap, because ingest keeps it empty).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/strings.h"
#include "config/parser.h"
#include "core/server.h"
#include "obs/export.h"
#include "sim/sources.h"
#include "vfs/memfs.h"

using namespace bistro;

namespace {

struct DelayStats {
  std::vector<Duration> delays;

  void Add(Duration d) { delays.push_back(d); }
  Duration Percentile(double p) {
    if (delays.empty()) return 0;
    std::sort(delays.begin(), delays.end());
    size_t idx = static_cast<size_t>(p * (delays.size() - 1));
    return delays[idx];
  }
};

struct ModeSummary {
  bool cooperating = false;
  uint64_t files = 0;
  uint64_t bytes = 0;
  Duration p50 = 0, p95 = 0, p99 = 0, max = 0;
};

ModeSummary RunMode(bool cooperating) {
  const int kFeeds = 120;
  const int kPollersPerFeed = 2;
  const Duration kPeriod = 5 * kMinute;
  const Duration kRun = kHour;
  TimePoint start = FromCivil(CivilTime{2010, 9, 25});

  SimClock clock(start);
  EventLoop loop(&clock);
  InMemoryFileSystem fs;
  Rng rng(9);
  SimNetwork network(&rng);
  SimTransport transport(&loop, &network);
  CallbackInvoker invoker;
  Logger logger(&clock);
  logger.SetMinLevel(LogLevel::kAlarm);

  std::string config_text;
  for (int f = 0; f < kFeeds; ++f) {
    config_text += StrFormat(
        "feed M%03d { pattern \"M%03d_POLL%%i_%%Y%%m%%d%%H%%M.dat\"; "
        "tardiness 60s; }\n",
        f, f);
  }
  config_text +=
      "subscriber warehouse { feeds ";
  for (int f = 0; f < kFeeds; ++f) {
    config_text += StrFormat("M%03d%s", f, f + 1 < kFeeds ? ", " : "; ");
  }
  config_text += "method push; }\n";
  auto config = ParseConfig(config_text);
  if (!config.ok()) {
    std::fprintf(stderr, "config: %s\n", config.status().ToString().c_str());
    return {};
  }

  network.SetLink("warehouse", LinkSpec::Fast());
  FileSinkEndpoint warehouse(&fs, "/warehouse");
  transport.Register("warehouse", &warehouse);

  PartitionedScheduler scheduler;
  DelayStats source_to_app;  // deposit -> delivered at subscriber
  scheduler.SetCompletionHook(
      [&](const TransferJob& job, bool ok, TimePoint now, Duration) {
        if (ok) source_to_app.Add(now - job.arrival_time);
      });

  MetricsRegistry metrics;
  BistroServer::Options server_options;
  server_options.metrics = &metrics;
  auto server = BistroServer::Create(server_options, *config, &fs, &transport,
                                     &loop, &invoker, &logger, &scheduler);
  if (!server.ok()) {
    std::fprintf(stderr, "server: %s\n", server.status().ToString().c_str());
    return {};
  }

  // Track per-file deposit times for the scan mode (arrival_time is set
  // at ingest, which for scans happens at the NEXT scan tick — we want
  // true source-deposit-to-app delay, so measure from the write).
  std::map<std::string, TimePoint> deposited_at;
  DelayStats deposit_to_app;
  warehouse.SetMessageHook([&](const Message& msg) {
    auto it = deposited_at.find(msg.name);
    if (it != deposited_at.end()) {
      deposit_to_app.Add(clock.Now() - it->second);
    }
  });

  uint64_t total_bytes = 0;
  auto deposit = [&](const std::string& source, const std::string& name,
                     std::string content) {
    total_bytes += content.size();
    deposited_at[name] = clock.Now();
    if (cooperating) {
      (void)(*server)->Deposit(source, name, std::move(content));
    } else {
      // Non-cooperating: write into the landing zone, no notification.
      (void)fs.WriteFile(
          path::Join(path::Join("/bistro/landing", source), name), content);
    }
  };

  std::vector<std::unique_ptr<PollerFleet>> fleets;
  for (int f = 0; f < kFeeds; ++f) {
    PollerFleet::Options opts;
    opts.metric = StrFormat("M%03d", f);
    opts.source = StrFormat("src%03d", f);
    opts.extension = "dat";
    opts.num_pollers = kPollersPerFeed;
    opts.period = kPeriod;
    opts.max_delay = 5 * kSecond;
    // 300 GB/day over ~69k files/day in the deployment ~ 4.3 MB/file;
    // scaled 1:100 -> ~43 KB.
    opts.file_size = 43 * 1000;
    fleets.push_back(std::make_unique<PollerFleet>(&loop, &rng, opts, deposit));
    fleets.back()->ScheduleInterval(start, start + kRun);
  }

  if (!cooperating) {
    // Periodic landing-zone scan. The closure owns itself via shared_ptr
    // so the reposted copies outlive this block.
    auto scan = std::make_shared<std::function<void()>>();
    *scan = [&loop, &server, scan] {
      (void)(*server)->ScanLandingZone();
      loop.PostAfter(30 * kSecond, *scan);
    };
    loop.PostAfter(30 * kSecond, *scan);
  }

  loop.RunUntil(start + kRun + 5 * kMinute);

  // Persist the full registry as a JSON artifact next to the bench output.
  std::string snapshot_path = StrFormat(
      "bench_metrics_%s.json", cooperating ? "cooperating" : "noncooperating");
  std::string snapshot = ExportJson(&metrics);
  if (std::FILE* f = std::fopen(snapshot_path.c_str(), "w")) {
    std::fwrite(snapshot.data(), 1, snapshot.size(), f);
    std::fclose(f);
    std::printf("metrics snapshot: %s (%zu metrics)\n", snapshot_path.c_str(),
                metrics.size());
  } else {
    std::fprintf(stderr, "cannot write %s\n", snapshot_path.c_str());
  }

  ServerStats stats = (*server)->stats();
  std::printf("%-16s files %5llu  volume %9s (scaled 1:100 => %7s/day "
              "equivalent)\n",
              cooperating ? "cooperating" : "non-cooperating",
              (unsigned long long)stats.files_received,
              HumanBytes(total_bytes).c_str(),
              HumanBytes(total_bytes * 24 * 100).c_str());
  std::printf("                 deposit->app delay p50 %-9s p95 %-9s p99 "
              "%-9s max %-9s\n",
              FormatDuration(deposit_to_app.Percentile(0.50)).c_str(),
              FormatDuration(deposit_to_app.Percentile(0.95)).c_str(),
              FormatDuration(deposit_to_app.Percentile(0.99)).c_str(),
              FormatDuration(deposit_to_app.Percentile(1.0)).c_str());
  std::printf("                 landing-zone residue after run: %zu files\n",
              [&] {
                auto entries = fs.ListRecursive("/bistro/landing");
                return entries.ok() ? entries->size() : size_t{0};
              }());

  ModeSummary summary;
  summary.cooperating = cooperating;
  summary.files = stats.files_received;
  summary.bytes = total_bytes;
  summary.p50 = deposit_to_app.Percentile(0.50);
  summary.p95 = deposit_to_app.Percentile(0.95);
  summary.p99 = deposit_to_app.Percentile(0.99);
  summary.max = deposit_to_app.Percentile(1.0);
  return summary;
}

}  // namespace

int main() {
  std::printf("=== E4: 120 feeds, scaled 300GB/day, propagation delay ===\n\n");
  ModeSummary coop = RunMode(/*cooperating=*/true);
  ModeSummary noncoop = RunMode(/*cooperating=*/false);
  std::printf("\nExpected shape: cooperating sources see second-scale "
              "propagation;\nnon-cooperating sources add up to one scan "
              "interval (30s) — both sub-minute,\nmatching the paper's "
              "claim; the landing zone stays empty either way.\n");

  // CI artifact: a compact summary of both modes (BISTRO_BENCH_JSON names
  // the output path; unset means no file, matching the old behavior).
  if (const char* out_path = std::getenv("BISTRO_BENCH_JSON")) {
    std::string json = "{\n  \"bench\": \"end_to_end\",\n  \"modes\": [\n";
    const ModeSummary* modes[] = {&coop, &noncoop};
    for (size_t i = 0; i < 2; ++i) {
      const ModeSummary& m = *modes[i];
      json += StrFormat(
          "    {\"mode\": \"%s\", \"files\": %llu, \"bytes\": %llu, "
          "\"delay_p50_us\": %lld, \"delay_p95_us\": %lld, "
          "\"delay_p99_us\": %lld, \"delay_max_us\": %lld}%s\n",
          m.cooperating ? "cooperating" : "noncooperating",
          (unsigned long long)m.files, (unsigned long long)m.bytes,
          (long long)(m.p50 / kMicrosecond), (long long)(m.p95 / kMicrosecond),
          (long long)(m.p99 / kMicrosecond), (long long)(m.max / kMicrosecond),
          i == 0 ? "," : "");
    }
    json += "  ]\n}\n";
    if (std::FILE* f = std::fopen(out_path, "w")) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("wrote %s\n", out_path);
    } else {
      std::fprintf(stderr, "cannot write %s\n", out_path);
      return 1;
    }
  }
  return 0;
}

// Experiment E7 (paper §5): feed analyzer quality and throughput.
//
// E7a  New-feed discovery: labelled corpora with known ground-truth
//      templates + junk; report recovered templates, precision/recall of
//      the file->feed assignment implied by the discovered patterns.
// E7b  False-negative detection: apply naming-convention mutations the
//      paper describes (case change, separator change, new field) and
//      measure how often the generalized-pattern similarity ranks the
//      true feed first — against the raw edit-distance baseline (which
//      the paper's TRAP example defeats).
// E7c  Discovery throughput on large corpora (names/second).

#include <cstdio>
#include <set>

#include "analyzer/analyzer.h"
#include "common/strings.h"
#include "config/parser.h"
#include "pattern/pattern.h"
#include "sim/sources.h"

using namespace bistro;

namespace {

void DiscoveryQuality() {
  std::printf("--- E7a: new-feed discovery on labelled corpora ---\n");
  std::printf("%10s %6s %12s %11s %11s\n", "templates", "junk",
              "recovered", "precision", "recall");
  Rng rng(31);
  for (int num_templates : {2, 5, 10}) {
    CorpusGenerator gen(&rng);
    std::vector<CorpusGenerator::FeedTemplate> templates;
    for (int t = 0; t < num_templates; ++t) {
      CorpusGenerator::FeedTemplate tpl;
      tpl.metric = StrFormat("METRIC%c", 'A' + t);
      tpl.pollers = 2 + t % 3;
      tpl.intervals = 24;
      tpl.style = static_cast<CorpusGenerator::FeedTemplate::Style>(t % 3);
      templates.push_back(tpl);
    }
    size_t junk = 20;
    auto corpus = gen.Generate(templates, junk,
                               FromCivil(CivilTime{2010, 9, 25}));
    std::vector<FileObservation> observations;
    for (const auto& l : corpus) observations.push_back(l.obs);
    DiscoveryOptions options;
    options.min_support = 3;
    auto result = DiscoverFeeds(observations, options);

    // Recovered = ground-truth patterns found verbatim.
    std::set<std::string> truth;
    for (const auto& t : templates) truth.insert(CorpusGenerator::TruthPattern(t));
    int recovered = 0;
    for (const auto& feed : result.feeds) {
      if (truth.count(feed.pattern)) ++recovered;
    }
    // Precision/recall of implied classification: compile each
    // discovered pattern, assign every labelled file, check against truth.
    std::vector<Pattern> compiled;
    for (const auto& feed : result.feeds) {
      auto p = Pattern::Compile(feed.pattern);
      if (p.ok()) compiled.push_back(std::move(*p));
    }
    uint64_t tp = 0, fp = 0, fn = 0;
    for (const auto& l : corpus) {
      bool matched = false;
      for (const auto& p : compiled) {
        if (p.Matches(l.obs.name)) {
          matched = true;
          break;
        }
      }
      if (matched && l.truth >= 0) ++tp;
      if (matched && l.truth < 0) ++fp;
      if (!matched && l.truth >= 0) ++fn;
    }
    double precision = tp + fp == 0 ? 0 : double(tp) / double(tp + fp);
    double recall = tp + fn == 0 ? 0 : double(tp) / double(tp + fn);
    std::printf("%10d %6zu %9d/%-2d %10.3f %10.3f\n", num_templates, junk,
                recovered, num_templates, precision, recall);
  }
}

void FalseNegativeDetection() {
  std::printf("\n--- E7b: false-negative ranking, pattern-sim vs edit distance ---\n");
  // Registry of 8 realistic feeds.
  auto config = ParseConfig(R"(
feed MEMORY { pattern "MEMORY_poller%i_%Y%m%d.gz"; }
feed CPU    { pattern "CPU_POLL%i_%Y%m%d%H%M.txt"; }
feed BPS    { pattern "BPS_%s_%Y%m%d%H.csv"; }
feed PPS    { pattern "PPS_%s_%Y%m%d%H.csv"; }
feed TRAP   { pattern "TRAP__%Y%m%d_DCTAGN_klpi.txt"; }
feed LOSS   { pattern "LOSS_P%i_%Y%m%d.dat"; }
feed ALARM  { pattern "ALARMHISTORY%i%Y%m%d%H%M.gz"; }
feed CONFIG { pattern "router_config_%s_%Y%m%d.xml"; }
)");
  auto registry = FeedRegistry::Create(*config);
  Logger logger;
  logger.SetMinLevel(LogLevel::kAlarm);
  FeedAnalyzer analyzer(registry->get(), &logger);

  // Mutated files with their true feed (the paper's evolution scenarios).
  struct Case {
    const char* file;
    const char* truth;
    const char* mutation;
  };
  Case cases[] = {
      {"MEMORY_Poller1_20100926.gz", "MEMORY", "capitalized field"},
      {"MEMORY_poller12_20100926.bz2", "MEMORY", "new extension"},
      {"CPU-POLL3-201009250500.txt", "CPU", "separator change"},
      {"CPU_POLL3_201009250500_v2.txt", "CPU", "appended field"},
      {"BPS_newpoller_2010092510.csv.tmp", "BPS", "suffix added"},
      {"TRAP_2010030817_UVIPTV-PER-BAN-DSPS-IPTV_MOM-rcsntxsqlcv122_9234SEC_klpi.txt",
       "TRAP", "the paper's TRAP example"},
      {"LOSS_P44_2010_12_30.dat", "LOSS", "date split with separators"},
      {"ALARMHISTORY7201009250500.bz2", "ALARM", "new compression"},
  };
  // A detector needs an absolute threshold that separates true false
  // negatives from unrelated junk — ranking alone is not enough. Compute
  // each method's junk ceiling (highest score any junk file achieves
  // against any feed), then check whether the mutated files clear it.
  Rng rng(13);
  // Junk = filenames from unrelated systems that happen to share the
  // environment's lingua franca (dates, counters, common extensions) —
  // the traffic an FN detector must NOT flag. Pure random strings would
  // flatter edit distance; real unmatched streams look like this.
  static const char* kWords[] = {"billing", "report",  "backup", "syslog",
                                 "invoice", "weekly",  "db",     "export",
                                 "audit",   "session", "core",   "dump"};
  static const char* kExts[] = {"pdf", "tar", "log", "tmp", "xml", "csv"};
  double psim_junk_ceiling = 0, ed_junk_ceiling = 0;
  for (int j = 0; j < 200; ++j) {
    std::string junk = std::string(kWords[rng.Uniform(12)]) + "_" +
                       kWords[rng.Uniform(12)] +
                       std::to_string(rng.Uniform(100)) + "_2010092" +
                       std::to_string(rng.Uniform(10)) + "." +
                       kExts[rng.Uniform(6)];
    std::string gen = GeneralizeName(junk);
    for (const RegisteredFeed* feed : (*registry)->feeds()) {
      psim_junk_ceiling = std::max(
          psim_junk_ceiling, PatternSimilarity(gen, feed->spec.pattern));
      ed_junk_ceiling = std::max(
          ed_junk_ceiling, EditDistanceSimilarity(junk, feed->spec.pattern));
    }
  }
  std::printf("junk ceiling (max score of 200 structured junk files): "
              "pattern-sim %.2f, edit-dist %.2f\n",
              psim_junk_ceiling, ed_junk_ceiling);
  int psim_detected = 0, ed_detected = 0;
  std::printf("%-34s %-10s %-26s %8s %8s\n", "mutated file (truncated)",
              "truth", "mutation", "psim", "edit");
  for (const Case& c : cases) {
    std::string generalized = GeneralizeName(c.file);
    const RegisteredFeed* truth_feed = (*registry)->FindFeed(c.truth);
    double ps = PatternSimilarity(generalized, truth_feed->spec.pattern);
    double es = EditDistanceSimilarity(c.file, truth_feed->spec.pattern);
    bool ps_ok = ps > psim_junk_ceiling;
    bool ed_ok = es > ed_junk_ceiling;
    psim_detected += ps_ok;
    ed_detected += ed_ok;
    std::string shown(c.file);
    if (shown.size() > 32) shown = shown.substr(0, 29) + "...";
    std::printf("%-34s %-10s %-26s %5.2f %s %5.2f %s\n", shown.c_str(),
                c.truth, c.mutation, ps, ps_ok ? "+" : "-", es,
                ed_ok ? "+" : "-");
  }
  std::printf("detected above junk ceiling: pattern similarity %d/8, "
              "edit distance %d/8\n",
              psim_detected, ed_detected);
}

void Throughput() {
  std::printf("\n--- E7c: discovery throughput ---\n");
  Rng rng(5);
  CorpusGenerator gen(&rng);
  std::vector<CorpusGenerator::FeedTemplate> templates;
  for (int t = 0; t < 50; ++t) {
    CorpusGenerator::FeedTemplate tpl;
    // Alphabetic metric names: a trailing digit would merge structurally
    // identical templates into one atomic feed (correct, but we want 50
    // distinct clusters for the throughput run).
    tpl.metric = StrFormat("METRIC%c%c", 'A' + t % 26, 'A' + t / 26);
    tpl.pollers = 4;
    tpl.intervals = 250;
    tpl.style = static_cast<CorpusGenerator::FeedTemplate::Style>(t % 3);
    templates.push_back(tpl);
  }
  auto corpus = gen.Generate(templates, 1000, FromCivil(CivilTime{2010, 9, 25}));
  std::vector<FileObservation> observations;
  for (const auto& l : corpus) observations.push_back(l.obs);
  RealClock clock;
  TimePoint t0 = clock.Now();
  auto result = DiscoverFeeds(observations);
  Duration elapsed = clock.Now() - t0;
  double rate = elapsed > 0
                    ? double(observations.size()) / (double(elapsed) / kSecond)
                    : 0;
  std::printf("%zu names -> %zu atomic feeds in %s (%.0f names/s)\n",
              observations.size(), result.feeds.size(),
              FormatDuration(elapsed).c_str(), rate);
}

}  // namespace

int main() {
  std::printf("=== E7: feed analyzer quality and throughput ===\n\n");
  DiscoveryQuality();
  FalseNegativeDetection();
  Throughput();
  return 0;
}

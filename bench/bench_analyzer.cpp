// Experiment E7 (paper §5): feed analyzer quality and throughput.
//
// E7a  New-feed discovery: labelled corpora with known ground-truth
//      templates + junk; report recovered templates, precision/recall of
//      the file->feed assignment implied by the discovered patterns.
// E7b  False-negative detection: apply naming-convention mutations the
//      paper describes (case change, separator change, new field) and
//      measure how often the generalized-pattern similarity ranks the
//      true feed first — against the raw edit-distance baseline (which
//      the paper's TRAP example defeats).
// E7c  Discovery throughput on large corpora (names/second).
//
// E12  Incremental vs batch analysis (DESIGN.md §11): a drifting corpus
//      arrives in cycles; the batch baseline re-clusters the full
//      retained history every cycle while the incremental engine folds
//      only the new names and re-induces its live clusters. Sweep of
//      corpus size x workers; JSON snapshot for CI trend tracking.
//
// Env:
//   BISTRO_BENCH_QUICK  non-empty -> smaller corpora (CI smoke mode)
//   BISTRO_BENCH_OUT    JSON output path (default BENCH_analyzer.json)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <set>

#include "analyzer/analyzer.h"
#include "analyzer/stream.h"
#include "common/strings.h"
#include "common/threadpool.h"
#include "config/parser.h"
#include "pattern/pattern.h"
#include "sim/sources.h"

using namespace bistro;

namespace {

void DiscoveryQuality() {
  std::printf("--- E7a: new-feed discovery on labelled corpora ---\n");
  std::printf("%10s %6s %12s %11s %11s\n", "templates", "junk",
              "recovered", "precision", "recall");
  Rng rng(31);
  for (int num_templates : {2, 5, 10}) {
    CorpusGenerator gen(&rng);
    std::vector<CorpusGenerator::FeedTemplate> templates;
    for (int t = 0; t < num_templates; ++t) {
      CorpusGenerator::FeedTemplate tpl;
      tpl.metric = StrFormat("METRIC%c", 'A' + t);
      tpl.pollers = 2 + t % 3;
      tpl.intervals = 24;
      tpl.style = static_cast<CorpusGenerator::FeedTemplate::Style>(t % 3);
      templates.push_back(tpl);
    }
    size_t junk = 20;
    auto corpus = gen.Generate(templates, junk,
                               FromCivil(CivilTime{2010, 9, 25}));
    std::vector<FileObservation> observations;
    for (const auto& l : corpus) observations.push_back(l.obs);
    DiscoveryOptions options;
    options.min_support = 3;
    auto result = DiscoverFeeds(observations, options);

    // Recovered = ground-truth patterns found verbatim.
    std::set<std::string> truth;
    for (const auto& t : templates) truth.insert(CorpusGenerator::TruthPattern(t));
    int recovered = 0;
    for (const auto& feed : result.feeds) {
      if (truth.count(feed.pattern)) ++recovered;
    }
    // Precision/recall of implied classification: compile each
    // discovered pattern, assign every labelled file, check against truth.
    std::vector<Pattern> compiled;
    for (const auto& feed : result.feeds) {
      auto p = Pattern::Compile(feed.pattern);
      if (p.ok()) compiled.push_back(std::move(*p));
    }
    uint64_t tp = 0, fp = 0, fn = 0;
    for (const auto& l : corpus) {
      bool matched = false;
      for (const auto& p : compiled) {
        if (p.Matches(l.obs.name)) {
          matched = true;
          break;
        }
      }
      if (matched && l.truth >= 0) ++tp;
      if (matched && l.truth < 0) ++fp;
      if (!matched && l.truth >= 0) ++fn;
    }
    double precision = tp + fp == 0 ? 0 : double(tp) / double(tp + fp);
    double recall = tp + fn == 0 ? 0 : double(tp) / double(tp + fn);
    std::printf("%10d %6zu %9d/%-2d %10.3f %10.3f\n", num_templates, junk,
                recovered, num_templates, precision, recall);
  }
}

void FalseNegativeDetection() {
  std::printf("\n--- E7b: false-negative ranking, pattern-sim vs edit distance ---\n");
  // Registry of 8 realistic feeds.
  auto config = ParseConfig(R"(
feed MEMORY { pattern "MEMORY_poller%i_%Y%m%d.gz"; }
feed CPU    { pattern "CPU_POLL%i_%Y%m%d%H%M.txt"; }
feed BPS    { pattern "BPS_%s_%Y%m%d%H.csv"; }
feed PPS    { pattern "PPS_%s_%Y%m%d%H.csv"; }
feed TRAP   { pattern "TRAP__%Y%m%d_DCTAGN_klpi.txt"; }
feed LOSS   { pattern "LOSS_P%i_%Y%m%d.dat"; }
feed ALARM  { pattern "ALARMHISTORY%i%Y%m%d%H%M.gz"; }
feed CONFIG { pattern "router_config_%s_%Y%m%d.xml"; }
)");
  auto registry = FeedRegistry::Create(*config);
  Logger logger;
  logger.SetMinLevel(LogLevel::kAlarm);
  FeedAnalyzer analyzer(registry->get(), &logger);

  // Mutated files with their true feed (the paper's evolution scenarios).
  struct Case {
    const char* file;
    const char* truth;
    const char* mutation;
  };
  Case cases[] = {
      {"MEMORY_Poller1_20100926.gz", "MEMORY", "capitalized field"},
      {"MEMORY_poller12_20100926.bz2", "MEMORY", "new extension"},
      {"CPU-POLL3-201009250500.txt", "CPU", "separator change"},
      {"CPU_POLL3_201009250500_v2.txt", "CPU", "appended field"},
      {"BPS_newpoller_2010092510.csv.tmp", "BPS", "suffix added"},
      {"TRAP_2010030817_UVIPTV-PER-BAN-DSPS-IPTV_MOM-rcsntxsqlcv122_9234SEC_klpi.txt",
       "TRAP", "the paper's TRAP example"},
      {"LOSS_P44_2010_12_30.dat", "LOSS", "date split with separators"},
      {"ALARMHISTORY7201009250500.bz2", "ALARM", "new compression"},
  };
  // A detector needs an absolute threshold that separates true false
  // negatives from unrelated junk — ranking alone is not enough. Compute
  // each method's junk ceiling (highest score any junk file achieves
  // against any feed), then check whether the mutated files clear it.
  Rng rng(13);
  // Junk = filenames from unrelated systems that happen to share the
  // environment's lingua franca (dates, counters, common extensions) —
  // the traffic an FN detector must NOT flag. Pure random strings would
  // flatter edit distance; real unmatched streams look like this.
  static const char* kWords[] = {"billing", "report",  "backup", "syslog",
                                 "invoice", "weekly",  "db",     "export",
                                 "audit",   "session", "core",   "dump"};
  static const char* kExts[] = {"pdf", "tar", "log", "tmp", "xml", "csv"};
  double psim_junk_ceiling = 0, ed_junk_ceiling = 0;
  for (int j = 0; j < 200; ++j) {
    std::string junk = std::string(kWords[rng.Uniform(12)]) + "_" +
                       kWords[rng.Uniform(12)] +
                       std::to_string(rng.Uniform(100)) + "_2010092" +
                       std::to_string(rng.Uniform(10)) + "." +
                       kExts[rng.Uniform(6)];
    std::string gen = GeneralizeName(junk);
    for (const RegisteredFeed* feed : (*registry)->feeds()) {
      psim_junk_ceiling = std::max(
          psim_junk_ceiling, PatternSimilarity(gen, feed->spec.pattern));
      ed_junk_ceiling = std::max(
          ed_junk_ceiling, EditDistanceSimilarity(junk, feed->spec.pattern));
    }
  }
  std::printf("junk ceiling (max score of 200 structured junk files): "
              "pattern-sim %.2f, edit-dist %.2f\n",
              psim_junk_ceiling, ed_junk_ceiling);
  int psim_detected = 0, ed_detected = 0;
  std::printf("%-34s %-10s %-26s %8s %8s\n", "mutated file (truncated)",
              "truth", "mutation", "psim", "edit");
  for (const Case& c : cases) {
    std::string generalized = GeneralizeName(c.file);
    const RegisteredFeed* truth_feed = (*registry)->FindFeed(c.truth);
    double ps = PatternSimilarity(generalized, truth_feed->spec.pattern);
    double es = EditDistanceSimilarity(c.file, truth_feed->spec.pattern);
    bool ps_ok = ps > psim_junk_ceiling;
    bool ed_ok = es > ed_junk_ceiling;
    psim_detected += ps_ok;
    ed_detected += ed_ok;
    std::string shown(c.file);
    if (shown.size() > 32) shown = shown.substr(0, 29) + "...";
    std::printf("%-34s %-10s %-26s %5.2f %s %5.2f %s\n", shown.c_str(),
                c.truth, c.mutation, ps, ps_ok ? "+" : "-", es,
                ed_ok ? "+" : "-");
  }
  std::printf("detected above junk ceiling: pattern similarity %d/8, "
              "edit distance %d/8\n",
              psim_detected, ed_detected);
}

void Throughput() {
  std::printf("\n--- E7c: discovery throughput ---\n");
  Rng rng(5);
  CorpusGenerator gen(&rng);
  std::vector<CorpusGenerator::FeedTemplate> templates;
  for (int t = 0; t < 50; ++t) {
    CorpusGenerator::FeedTemplate tpl;
    // Alphabetic metric names: a trailing digit would merge structurally
    // identical templates into one atomic feed (correct, but we want 50
    // distinct clusters for the throughput run).
    tpl.metric = StrFormat("METRIC%c%c", 'A' + t % 26, 'A' + t / 26);
    tpl.pollers = 4;
    tpl.intervals = 250;
    tpl.style = static_cast<CorpusGenerator::FeedTemplate::Style>(t % 3);
    templates.push_back(tpl);
  }
  auto corpus = gen.Generate(templates, 1000, FromCivil(CivilTime{2010, 9, 25}));
  std::vector<FileObservation> observations;
  for (const auto& l : corpus) observations.push_back(l.obs);
  RealClock clock;
  TimePoint t0 = clock.Now();
  auto result = DiscoverFeeds(observations);
  Duration elapsed = clock.Now() - t0;
  double rate = elapsed > 0
                    ? double(observations.size()) / (double(elapsed) / kSecond)
                    : 0;
  std::printf("%zu names -> %zu atomic feeds in %s (%.0f names/s)\n",
              observations.size(), result.feeds.size(),
              FormatDuration(elapsed).c_str(), rate);
}

// ------------------------------------------------- E12: incremental sweep

struct SweepResult {
  size_t names = 0;
  size_t workers = 0;
  double batch_sec = 0;
  double incremental_sec = 0;
  double speedup = 0;
  double folds_per_sec = 0;
  size_t clusters = 0;
  size_t feeds = 0;
};

double Seconds(std::chrono::steady_clock::time_point t0,
               std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

void IncrementalSweep(bool quick, const std::string& out_path) {
  std::printf("\n--- E12: incremental vs batch analysis, size x workers ---\n");
  // The corpus streams in over `cycles` analysis sweeps, the scenario the
  // analyzer daemon actually runs: with the default 10-minute
  // cycle_interval a daemon performs 144 sweeps per day, so 50 models
  // roughly a work shift of accumulation and is conservative. Batch cost
  // grows quadratically in the number of sweeps (it re-clusters the full
  // retained history each time); incremental grows linearly.
  const size_t cycles = 50;
  const std::vector<size_t> sizes =
      quick ? std::vector<size_t>{2000, 10000}
            : std::vector<size_t>{10000, 100000, 1000000};
  const std::vector<size_t> worker_sweep = {0, 1, 4};
  DiscoveryOptions discovery;
  discovery.min_support = 3;

  std::printf("%-9s %-8s %11s %11s %9s %13s %9s\n", "names", "workers",
              "batch_sec", "incr_sec", "speedup", "folds/sec", "clusters");
  std::vector<SweepResult> results;
  for (size_t names : sizes) {
    Rng rng(1912);
    CorpusGenerator gen(&rng);
    CorpusGenerator::DriftOptions drift;
    drift.total = names;
    auto corpus =
        gen.GenerateDrifting(drift, FromCivil(CivilTime{2010, 9, 25}));
    const size_t delta = (corpus.size() + cycles - 1) / cycles;

    // Batch baseline: every cycle re-clusters the full retained history —
    // the pre-incremental daemon's cost model. Worker count is irrelevant
    // (DiscoverFeeds is single-threaded), so time it once per size.
    std::vector<FileObservation> history;
    history.reserve(corpus.size());
    auto b0 = std::chrono::steady_clock::now();
    size_t batch_feeds = 0;
    for (size_t off = 0; off < corpus.size(); off += delta) {
      size_t end = std::min(off + delta, corpus.size());
      history.insert(history.end(), corpus.begin() + off, corpus.begin() + end);
      batch_feeds = DiscoverFeeds(history, discovery).feeds.size();
    }
    double batch_sec = Seconds(b0, std::chrono::steady_clock::now());

    for (size_t workers : worker_sweep) {
      ThreadPool pool(workers);
      ThreadPool* p = workers > 0 ? &pool : nullptr;
      IncrementalCorpus::Options copts;
      copts.max_corpus = corpus.size();  // same population as the baseline
      IncrementalCorpus inc(copts);
      auto i0 = std::chrono::steady_clock::now();
      size_t inc_feeds = 0;
      for (size_t off = 0; off < corpus.size(); off += delta) {
        size_t end = std::min(off + delta, corpus.size());
        inc.ObserveBatch({corpus.begin() + off, corpus.begin() + end}, p);
        inc_feeds = inc.Induce(discovery, p).feeds.size();
      }
      double inc_sec = Seconds(i0, std::chrono::steady_clock::now());
      if (inc_feeds != batch_feeds) {
        std::fprintf(stderr,
                     "E12 MISMATCH at %zu names: batch %zu feeds vs "
                     "incremental %zu\n",
                     names, batch_feeds, inc_feeds);
      }

      SweepResult r;
      r.names = corpus.size();
      r.workers = workers;
      r.batch_sec = batch_sec;
      r.incremental_sec = inc_sec;
      r.speedup = inc_sec > 0 ? batch_sec / inc_sec : 0;
      r.folds_per_sec = inc_sec > 0 ? double(corpus.size()) / inc_sec : 0;
      r.clusters = inc.cluster_count();
      r.feeds = inc_feeds;
      results.push_back(r);
      std::printf("%-9zu %-8zu %11.3f %11.3f %8.1fx %13.0f %9zu\n", r.names,
                  r.workers, r.batch_sec, r.incremental_sec, r.speedup,
                  r.folds_per_sec, r.clusters);
    }
  }

  // Bounded-memory mode: a tight retention budget keeps the corpus (and
  // cycle cost) flat no matter how much junk streams past.
  {
    Rng rng(1912);
    CorpusGenerator gen(&rng);
    CorpusGenerator::DriftOptions drift;
    drift.total = sizes.back();
    auto corpus =
        gen.GenerateDrifting(drift, FromCivil(CivilTime{2010, 9, 25}));
    IncrementalCorpus::Options copts;
    copts.max_corpus = 10000;
    IncrementalCorpus inc(copts);
    auto t0 = std::chrono::steady_clock::now();
    inc.ObserveBatch(corpus);
    double sec = Seconds(t0, std::chrono::steady_clock::now());
    std::printf("bounded: %zu names through a %zu budget in %.3fs "
                "(retained %zu, shed %llu, clusters %zu)\n",
                corpus.size(), copts.max_corpus, sec, inc.size(),
                (unsigned long long)inc.stats().shed, inc.cluster_count());
  }

  std::string json = StrFormat(
      "{\n  \"bench\": \"analyzer\",\n  \"quick\": %s,\n"
      "  \"cycles\": %zu,\n  \"results\": [\n",
      quick ? "true" : "false", cycles);
  for (size_t i = 0; i < results.size(); ++i) {
    const SweepResult& r = results[i];
    json += StrFormat(
        "    {\"names\": %zu, \"workers\": %zu, \"batch_sec\": %.4f, "
        "\"incremental_sec\": %.4f, \"speedup\": %.2f, "
        "\"folds_per_sec\": %.0f, \"clusters\": %zu, \"feeds\": %zu}%s\n",
        r.names, r.workers, r.batch_sec, r.incremental_sec, r.speedup,
        r.folds_per_sec, r.clusters, r.feeds,
        i + 1 < results.size() ? "," : "");
  }
  json += "  ]\n}\n";
  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
  }
}

}  // namespace

int main() {
  const bool quick = std::getenv("BISTRO_BENCH_QUICK") != nullptr;
  const char* out_env = std::getenv("BISTRO_BENCH_OUT");
  const std::string out_path =
      out_env != nullptr ? out_env : "BENCH_analyzer.json";
  std::printf("=== E7/E12: feed analyzer quality and throughput ===\n\n");
  DiscoveryQuality();
  FalseNegativeDetection();
  Throughput();
  IncrementalSweep(quick, out_path);
  return 0;
}

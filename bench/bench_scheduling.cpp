// Experiment E3 (paper §4.3): delivery scheduling policies under
// heterogeneous subscribers with backlogs.
//
// Claims reproduced:
//  - a global FIFO or EDF queue lets a slow/backlogged subscriber starve
//    responsive ones (their tardiness explodes);
//  - Bistro's partitioned scheduler (per-level slots + intra-partition
//    EDF) isolates the damage: fast subscribers stay on time even while
//    a returning subscriber's backlog is being backfilled concurrently;
//  - the same-file locality heuristic reduces repeated staging reads.
//
// Scenario: one feed, a file every 10 seconds for 2 simulated hours.
// Subscribers: 6 fast links, 2 slow links (64x less bandwidth), and one
// subscriber that is offline for the first half and then returns with a
// backlog. Each policy runs the identical trace.

#include <cstdio>
#include <map>

#include "common/strings.h"
#include "config/parser.h"
#include "core/server.h"
#include "vfs/memfs.h"

using namespace bistro;

namespace {

struct ClassStats {
  uint64_t completed = 0;
  uint64_t late = 0;
  Duration total_tardiness = 0;
  Duration max_tardiness = 0;
};

struct RunResult {
  std::map<std::string, ClassStats> per_class;  // "fast", "slow", "returning"
  SchedulerMetrics overall;
  uint64_t staging_reads = 0;
  uint64_t backfilled = 0;
};

RunResult RunPolicy(const std::string& label,
                    std::unique_ptr<DeliveryScheduler> scheduler,
                    PartitionedScheduler* partitioned) {
  (void)label;
  TimePoint start = FromCivil(CivilTime{2010, 9, 25});
  SimClock clock(start);
  EventLoop loop(&clock);
  InMemoryFileSystem fs;
  Rng rng(42);
  SimNetwork network(&rng);
  SimTransport transport(&loop, &network);
  CallbackInvoker invoker;
  Logger logger(&clock);
  logger.SetMinLevel(LogLevel::kAlarm);

  std::string config_text = "feed F { pattern \"f_%i_%Y%m%d%H%M%S.dat\"; tardiness 60s; }\n";
  std::map<std::string, std::string> klass;  // subscriber -> class
  std::vector<std::string> subs;
  for (int i = 0; i < 6; ++i) {
    std::string name = StrFormat("fast%d", i);
    klass[name] = "fast";
    subs.push_back(name);
  }
  for (int i = 0; i < 2; ++i) {
    std::string name = StrFormat("slow%d", i);
    klass[name] = "slow";
    subs.push_back(name);
  }
  klass["returning"] = "returning";
  subs.push_back("returning");
  for (const auto& s : subs) {
    config_text += "subscriber " + s + " { feeds F; method push; }\n";
  }
  auto config = ParseConfig(config_text);
  auto sinks = std::make_unique<std::vector<std::unique_ptr<FileSinkEndpoint>>>();
  for (const auto& s : subs) {
    LinkSpec link;
    if (klass[s] == "slow") {
      link.bandwidth_bytes_per_sec = 100 * 1000;  // 64x slower
    } else if (klass[s] == "returning") {
      // The returning subscriber is ALSO on a thin pipe (25 KB/s): its
      // hour-long backlog takes ~2 s per file to backfill, which is what
      // lets it monopolize a global scheduler's slots.
      link.bandwidth_bytes_per_sec = 25 * 1000;
    } else {
      link.bandwidth_bytes_per_sec = 6400 * 1000;
    }
    link.latency = 5 * kMillisecond;
    network.SetLink(s, link);
    sinks->push_back(std::make_unique<FileSinkEndpoint>(&fs, "/" + s));
    transport.Register(s, sinks->back().get());
  }
  if (partitioned != nullptr) {
    // The paper's configuration: partition by known responsiveness.
    for (const auto& s : subs) {
      if (klass[s] == "fast") {
        partitioned->SetPartition(s, 0);
      } else if (klass[s] == "slow") {
        partitioned->SetPartition(s, 1);
      } else {
        partitioned->SetPartition(s, 2);
      }
    }
  }

  RunResult result;
  scheduler->SetCompletionHook([&](const TransferJob& job, bool success,
                                   TimePoint now, Duration) {
    if (!success) return;
    ClassStats& cs = result.per_class[klass[job.subscriber]];
    cs.completed++;
    if (now > job.deadline) {
      Duration t = now - job.deadline;
      cs.late++;
      cs.total_tardiness += t;
      if (t > cs.max_tardiness) cs.max_tardiness = t;
    }
  });

  BistroServer::Options opts;
  opts.delivery.retry_backoff = 10 * kSecond;
  opts.delivery.probe_interval = 60 * kSecond;
  auto server = BistroServer::Create(opts, *config, &fs, &transport, &loop,
                                     &invoker, &logger, scheduler.get());
  if (!server.ok()) {
    std::fprintf(stderr, "server: %s\n", server.status().ToString().c_str());
    return result;
  }

  // The "returning" subscriber is down for the first hour.
  network.SetOnline("returning", false);
  loop.PostAt(start + kHour, [&] { network.SetOnline("returning", true); });

  // One 50 KB file every 10 seconds for 2 hours.
  const Duration kPeriod = 10 * kSecond;
  const int kFiles = 2 * 3600 / 10;
  for (int i = 0; i < kFiles; ++i) {
    TimePoint t = start + i * kPeriod;
    CivilTime c = ToCivil(t);
    std::string name = StrFormat("f_%d_%04d%02d%02d%02d%02d%02d.dat", i,
                                 c.year, c.month, c.day, c.hour, c.minute,
                                 c.second);
    loop.PostAt(t, [&, name] {
      (void)(*server)->Deposit("src", name, std::string(50 * 1000, 'd'));
    });
  }

  loop.RunUntil(start + 3 * kHour);
  loop.RunUntilIdle();
  result.overall = (*server)->scheduler_metrics();
  result.staging_reads = fs.stats().reads;
  result.backfilled = (*server)->delivery_stats().backfilled;
  return result;
}

void PrintRow(const std::string& policy, const RunResult& r) {
  auto cls = [&](const std::string& k) -> const ClassStats& {
    static ClassStats empty;
    auto it = r.per_class.find(k);
    return it == r.per_class.end() ? empty : it->second;
  };
  auto fmt = [](const ClassStats& c) {
    double late_pct = c.completed ? 100.0 * c.late / c.completed : 0.0;
    return StrFormat("%5.1f%% late, max %-9s",
                     late_pct,
                     FormatDuration(c.max_tardiness).c_str());
  };
  std::printf("%-16s fast: %s  slow: %s  returning: %s\n", policy.c_str(),
              fmt(cls("fast")).c_str(), fmt(cls("slow")).c_str(),
              fmt(cls("returning")).c_str());
}

}  // namespace

int main() {
  std::printf("=== E3: transfer scheduling under heterogeneous subscribers ===\n");
  std::printf("(6 fast, 2 slow (64x), 1 offline-then-backfilled; 720 files "
              "x 50KB over 2h; tardiness bound 60s)\n\n");

  const size_t kTotalSlots = 6;

  PrintRow("global FIFO", RunPolicy("fifo",
                                    std::make_unique<SinglePolicyScheduler>(
                                        PolicyKind::kFifo, kTotalSlots),
                                    nullptr));
  PrintRow("global EDF", RunPolicy("edf",
                                   std::make_unique<SinglePolicyScheduler>(
                                       PolicyKind::kEdf, kTotalSlots),
                                   nullptr));
  PrintRow("round robin", RunPolicy("rr",
                                    std::make_unique<SinglePolicyScheduler>(
                                        PolicyKind::kRoundRobin, kTotalSlots),
                                    nullptr));
  PrintRow("global max-benefit",
           RunPolicy("maxbenefit",
                     std::make_unique<SinglePolicyScheduler>(
                         PolicyKind::kMaxBenefit, kTotalSlots),
                     nullptr));
  {
    PartitionedScheduler::Options opts;
    opts.num_partitions = 3;
    opts.slots_per_partition = 2;
    auto sched = std::make_unique<PartitionedScheduler>(opts);
    PartitionedScheduler* raw = sched.get();
    PrintRow("partitioned EDF", RunPolicy("partitioned", std::move(sched), raw));
  }
  {
    // Ablation: partitioning without the locality heuristic.
    PartitionedScheduler::Options opts;
    opts.num_partitions = 3;
    opts.slots_per_partition = 2;
    opts.locality = false;
    auto sched = std::make_unique<PartitionedScheduler>(opts);
    PartitionedScheduler* raw = sched.get();
    PrintRow("  (no locality)", RunPolicy("partitioned-noloc", std::move(sched), raw));
  }

  std::printf("\nExpected shape: global FIFO/EDF show high late fractions "
              "for FAST subscribers\n(starved by the slow links' backlog and "
              "the returning subscriber's backfill);\npartitioned EDF keeps "
              "fast subscribers near 0%% late while still backfilling.\n");
  return 0;
}
